// Quickstart: infer a DTD (and an XSD) from a handful of XML documents.
//
//   $ ./examples/quickstart
//
// This walks the primary public API: DtdInferrer::AddXml folds documents
// into per-element summaries, InferDtd() runs iDTD/CRX per element, and
// the result serializes as a DOCTYPE or an XML Schema.

#include <cstdio>
#include <string>
#include <vector>

#include "dtd/dtd_writer.h"
#include "dtd/validator.h"
#include "infer/inferrer.h"
#include "xml/parser.h"

int main() {
  const std::vector<std::string> corpus = {
      R"(<library>
           <book id="b1">
             <title>Data on the Web</title>
             <author>Abiteboul</author><author>Buneman</author>
             <year>1999</year>
           </book>
           <book id="b2">
             <title>XML Schema</title><author>van der Vlist</author>
           </book>
         </library>)",
      R"(<library>
           <book id="b3">
             <title>Automata Theory</title><author>Hopcroft</author>
             <author>Ullman</author><year>1979</year><isbn/>
           </book>
         </library>)",
  };

  condtd::DtdInferrer inferrer;
  for (const std::string& doc : corpus) {
    condtd::Status status = inferrer.AddXml(doc);
    if (!status.ok()) {
      std::printf("failed to parse document: %s\n",
                  status.ToString().c_str());
      return 1;
    }
  }

  condtd::Result<condtd::Dtd> dtd = inferrer.InferDtd();
  if (!dtd.ok()) {
    std::printf("inference failed: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  std::printf("Inferred DTD:\n%s\n",
              condtd::WriteDoctype(dtd.value(), *inferrer.alphabet())
                  .c_str());

  // The inferred DTD validates its own training corpus by construction.
  for (const std::string& text : corpus) {
    condtd::Result<condtd::XmlDocument> doc = condtd::ParseXml(text);
    condtd::ValidationReport report =
        condtd::Validate(doc.value(), dtd.value(), inferrer.alphabet());
    std::printf("document valid: %s\n", report.valid() ? "yes" : "no");
  }

  condtd::Result<std::string> xsd = inferrer.InferXsd();
  if (xsd.ok()) {
    std::printf("\nEquivalent XML Schema (with datatype heuristics):\n%s",
                xsd->c_str());
  }
  return 0;
}
