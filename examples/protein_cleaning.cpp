// Schema cleaning (Section 1.1): the Protein Sequence Database declares
//
//   refinfo: authors, citation, volume?, month?, year, pages?,
//            (title | description)?, xrefs?
//
// but in the actual corpus `volume` and `month` never co-occur — a paper
// is either a journal article (volume) or a conference paper (month).
// Running inference over the data yields the stricter
//
//   authors, citation, (volume | month), year, pages?, ...
//
// exposing semantics the hand-written schema hides. This example builds
// a synthetic corpus with the same bias and shows the cleaned schema.

#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dtd/diff.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "gen/regex_sampler.h"
#include "gen/xml_gen.h"
#include "infer/inferrer.h"

int main() {
  using condtd::Alphabet;
  using condtd::Dtd;
  using condtd::Result;

  // The "official" schema, as published.
  Alphabet alphabet;
  Result<Dtd> official = condtd::ParseDtd(
      "<!ELEMENT ProteinDatabase (ProteinEntry+)>\n"
      "<!ELEMENT ProteinEntry (header, reference+, sequence)>\n"
      "<!ELEMENT header (#PCDATA)>\n"
      "<!ELEMENT reference (refinfo)>\n"
      "<!ELEMENT refinfo (authors, citation, volume?, month?, year, "
      "pages?, (title | description)?, xrefs?)>\n"
      "<!ELEMENT authors (#PCDATA)>\n"
      "<!ELEMENT citation (#PCDATA)>\n"
      "<!ELEMENT volume (#PCDATA)>\n"
      "<!ELEMENT month (#PCDATA)>\n"
      "<!ELEMENT year (#PCDATA)>\n"
      "<!ELEMENT pages (#PCDATA)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT description (#PCDATA)>\n"
      "<!ELEMENT xrefs (#PCDATA)>\n"
      "<!ELEMENT sequence (#PCDATA)>\n",
      &alphabet);
  if (!official.ok()) return 1;
  std::printf("Official refinfo definition:\n  %s\n\n",
              "(authors, citation, volume?, month?, year, pages?, "
              "(title | description)?, xrefs?)");

  // What the data actually does: volume XOR month. Generate documents
  // from a biased copy of the schema.
  Alphabet biased_alphabet;
  Result<Dtd> biased = condtd::ParseDtd(
      "<!ELEMENT ProteinDatabase (ProteinEntry+)>\n"
      "<!ELEMENT ProteinEntry (header, reference+, sequence)>\n"
      "<!ELEMENT header (#PCDATA)>\n"
      "<!ELEMENT reference (refinfo)>\n"
      "<!ELEMENT refinfo (authors, citation, (volume | month), year, "
      "pages?, (title | description)?, xrefs?)>\n"
      "<!ELEMENT authors (#PCDATA)>\n"
      "<!ELEMENT citation (#PCDATA)>\n"
      "<!ELEMENT volume (#PCDATA)>\n"
      "<!ELEMENT month (#PCDATA)>\n"
      "<!ELEMENT year (#PCDATA)>\n"
      "<!ELEMENT pages (#PCDATA)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT description (#PCDATA)>\n"
      "<!ELEMENT xrefs (#PCDATA)>\n"
      "<!ELEMENT sequence (#PCDATA)>\n",
      &biased_alphabet);
  if (!biased.ok()) return 1;

  condtd::Rng rng(1984);
  condtd::DtdInferrer inferrer;
  int documents = 0;
  for (int i = 0; i < 400; ++i) {
    Result<condtd::XmlDocument> doc =
        condtd::GenerateDocument(biased.value(), biased_alphabet, &rng);
    if (!doc.ok()) return 1;
    if (!inferrer.AddXml(doc->ToXml()).ok()) return 1;
    ++documents;
  }

  Result<Dtd> inferred = inferrer.InferDtd();
  if (!inferred.ok()) {
    std::printf("inference failed: %s\n",
                inferred.status().ToString().c_str());
    return 1;
  }
  condtd::Symbol refinfo = inferrer.alphabet()->Find("refinfo");
  std::printf("Inferred from %d documents:\n  refinfo: %s\n\n", documents,
              condtd::ContentModelToString(
                  inferred.value().elements.at(refinfo),
                  *inferrer.alphabet())
                  .c_str());
  std::printf(
      "The inferred model makes volume/month mutually exclusive — the "
      "semantics the\nofficial schema only hints at. Full inferred "
      "DTD:\n\n%s",
      condtd::WriteDtd(inferred.value(), *inferrer.alphabet()).c_str());

  // The diff engine makes the cleaning explicit: parse the official
  // schema into the inferrer's alphabet and compare element by element.
  Result<Dtd> official_shared = condtd::ParseDtd(
      "<!ELEMENT ProteinDatabase (ProteinEntry+)>\n"
      "<!ELEMENT ProteinEntry (header, reference+, sequence)>\n"
      "<!ELEMENT header (#PCDATA)>\n"
      "<!ELEMENT reference (refinfo)>\n"
      "<!ELEMENT refinfo (authors, citation, volume?, month?, year, "
      "pages?, (title | description)?, xrefs?)>\n"
      "<!ELEMENT authors (#PCDATA)>\n"
      "<!ELEMENT citation (#PCDATA)>\n"
      "<!ELEMENT volume (#PCDATA)>\n"
      "<!ELEMENT month (#PCDATA)>\n"
      "<!ELEMENT year (#PCDATA)>\n"
      "<!ELEMENT pages (#PCDATA)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT description (#PCDATA)>\n"
      "<!ELEMENT xrefs (#PCDATA)>\n"
      "<!ELEMENT sequence (#PCDATA)>\n",
      inferrer.alphabet());
  if (!official_shared.ok()) return 1;
  condtd::DtdDiff diff =
      condtd::CompareDtds(inferred.value(), official_shared.value());
  std::printf(
      "\nDiff against the official schema (%d element(s) where the data "
      "is stricter):\n\n%s",
      diff.CountWhere(condtd::ModelRelation::kStricter),
      condtd::DiffToString(diff, inferred.value(),
                           official_shared.value(), *inferrer.alphabet())
          .c_str());
  return 0;
}
