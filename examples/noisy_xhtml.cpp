// Noise handling (Section 9): 89% of real-world XHTML fails validation,
// and disallowed children (table inside p, ...) appear with tiny support.
// Inferring with a support threshold recovers the clean content model and
// the validator then gives a uniform view of exactly which occurrences
// were the noise.

#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dtd/dtd_writer.h"
#include "dtd/validator.h"
#include "gen/corpus.h"
#include "infer/inferrer.h"
#include "regex/properties.h"
#include "xml/dom.h"

int main() {
  // A paragraph-like corpus: 41 legal inline elements, with intruders in
  // a handful of the 4000 paragraphs (the Section 9 statistics, scaled).
  condtd::ExperimentCase corpus = condtd::BuildNoisyParagraphCase(
      /*num_words=*/4000, /*num_noisy_words=*/3, /*seed=*/7);

  // Both runs use CRX (mixed-content paragraphs are the sparse,
  // generalization-friendly regime); they differ only in the support
  // threshold.
  condtd::InferenceOptions noisy_options;
  noisy_options.algorithm = condtd::InferenceAlgorithm::kCrx;
  condtd::DtdInferrer noisy_inferrer(noisy_options);
  condtd::InferenceOptions clean_options;
  clean_options.algorithm = condtd::InferenceAlgorithm::kCrx;
  clean_options.noise_symbol_threshold = 50;
  condtd::DtdInferrer clean_inferrer(clean_options);

  auto feed = [&](condtd::DtdInferrer* inferrer) {
    condtd::Symbol p = inferrer->alphabet()->Intern("p");
    std::vector<condtd::Word> words;
    for (const condtd::Word& w : corpus.sample) {
      condtd::Word mapped;
      for (condtd::Symbol s : w) {
        mapped.push_back(
            inferrer->alphabet()->Intern(corpus.alphabet.Name(s)));
      }
      words.push_back(std::move(mapped));
    }
    inferrer->AddWords(p, words);
    return p;
  };
  condtd::Symbol p_noisy = feed(&noisy_inferrer);
  condtd::Symbol p_clean = feed(&clean_inferrer);

  auto model_size = [](const condtd::Result<condtd::ContentModel>& m) {
    return m.ok() && m->regex != nullptr
               ? static_cast<int>(condtd::SymbolsOf(m->regex).size())
               : 0;
  };
  condtd::Result<condtd::ContentModel> noisy_model =
      noisy_inferrer.InferContentModel(p_noisy);
  condtd::Result<condtd::ContentModel> clean_model =
      clean_inferrer.InferContentModel(p_clean);
  if (!noisy_model.ok() || !clean_model.ok()) return 1;

  std::printf("without noise handling : %d distinct child elements\n",
              model_size(noisy_model));
  std::printf("with support threshold : %d distinct child elements\n\n",
              model_size(clean_model));
  std::printf("cleaned content model  : p %s\n\n",
              condtd::ContentModelToString(clean_model.value(),
                                           *clean_inferrer.alphabet())
                  .c_str());

  // Use the cleaned model to locate the noise: validate each paragraph.
  condtd::Dtd dtd;
  dtd.root = p_clean;
  dtd.elements[p_clean] = clean_model.value();
  // Declare the legal children as EMPTY so only the paragraph content is
  // checked.
  if (clean_model->regex != nullptr) {
    for (condtd::Symbol s : condtd::SymbolsOf(clean_model->regex)) {
      dtd.elements[s].kind = condtd::ContentKind::kEmpty;
    }
  }
  int invalid = 0;
  for (const condtd::Word& w : corpus.sample) {
    condtd::XmlDocument doc;
    doc.root = std::make_unique<condtd::XmlElement>("p");
    for (condtd::Symbol s : w) {
      doc.root->AddChild(corpus.alphabet.Name(s));
    }
    condtd::ValidationReport report =
        condtd::Validate(doc, dtd, clean_inferrer.alphabet());
    if (!report.valid()) ++invalid;
  }
  std::printf(
      "validating the corpus against the cleaned model flags %d of %zu "
      "paragraphs —\nexactly the occurrences carrying intruder elements.\n",
      invalid, corpus.sample.size());
  return 0;
}
