// XSD generation with numerical predicates (Section 9): SOREs cannot
// count, but XML Schema can. After inference, the exact occurrence
// statistics tighten + and * factors into minOccurs/maxOccurs facets
// (the paper's a=2 b>=2 example), and text content gets datatype
// heuristics (xs:integer, xs:date, ...).

#include <cstdio>
#include <string>
#include <vector>

#include "infer/inferrer.h"
#include "xml/parser.h"
#include "xsd/numeric.h"

int main() {
  // Chess games: always exactly two players; at least two moves; an
  // optional ISO date.
  const std::vector<std::string> games = {
      R"(<game>
           <player>white</player><player>black</player>
           <date>2006-09-12</date>
           <move>e4</move><move>e5</move><move>Nf3</move>
           <elo>2800</elo>
         </game>)",
      R"(<game>
           <player>a</player><player>b</player>
           <move>d4</move><move>d5</move>
           <elo>1500</elo>
         </game>)",
      R"(<game>
           <player>c</player><player>d</player>
           <date>2026-07-04</date>
           <move>c4</move><move>e5</move><move>g3</move><move>Nf6</move>
           <elo>2000</elo>
         </game>)",
  };

  condtd::DtdInferrer inferrer;
  for (const std::string& game : games) {
    if (!inferrer.AddXml(game).ok()) return 1;
  }

  // The plain SORE view: player+ move+ — the counting is invisible.
  condtd::Symbol game = inferrer.alphabet()->Find("game");
  condtd::Result<condtd::ContentModel> model =
      inferrer.InferContentModel(game);
  if (!model.ok()) return 1;
  std::printf("DTD content model : game %s\n",
              condtd::ContentModelToString(model.value(),
                                           *inferrer.alphabet())
                  .c_str());

  // The paper's numerical-predicate notation from the same statistics.
  // (Here derived directly from the sample for illustration.)
  condtd::Alphabet scratch = *inferrer.alphabet();
  std::vector<condtd::Word> words;
  for (const std::string& text : games) {
    condtd::Result<condtd::XmlDocument> doc = condtd::ParseXml(text);
    for (const auto& child : doc->root->children()) {
      (void)child;
    }
    condtd::Word w;
    for (const auto& child : doc->root->children()) {
      w.push_back(scratch.Intern(child->name()));
    }
    words.push_back(std::move(w));
  }
  if (model->regex != nullptr) {
    condtd::NumericAnnotations annotations =
        condtd::AnnotateNumeric(model->regex, words);
    std::printf("with numerical predicates : game %s\n\n",
                condtd::ToNumericString(model->regex, annotations, scratch)
                    .c_str());
  }

  // The full XSD: minOccurs/maxOccurs facets plus datatype heuristics
  // (date -> xs:date, elo -> xs:integer, player/move -> xs:string).
  condtd::Result<std::string> xsd = inferrer.InferXsd();
  if (!xsd.ok()) {
    std::printf("XSD generation failed: %s\n",
                xsd.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", xsd->c_str());
  return 0;
}
