// The paper's future-work direction made concrete (Sections 1.2 and 10):
// XSDs are DTDs with *vertical* context — an element's type may depend
// on its ancestors. This example runs the 1-local contextual inferrer on
// a corpus where <name> means different things under <person> and under
// <company>, shows the per-context types a DTD cannot express, and the
// pooled DTD approximation a plain inference must settle for.

#include <cstdio>
#include <string>
#include <vector>

#include "dtd/dtd_writer.h"
#include "infer/contextual.h"
#include "infer/inferrer.h"

int main() {
  const std::vector<std::string> corpus = {
      R"(<directory>
           <person><name><first>Ada</first><last>L</last></name>
                   <phone>1</phone></person>
           <company><name><legal>ACME Corp</legal></name>
                    <phone>2</phone><phone>3</phone></company>
         </directory>)",
      R"(<directory>
           <person><name><first>Alan</first><last>T</last></name></person>
           <person><name><first>Kurt</first><last>G</last></name>
                   <phone>4</phone></person>
           <company><name><legal>Initech</legal></name></company>
         </directory>)",
  };

  condtd::ContextualInferrer contextual;
  for (const std::string& doc : corpus) {
    if (!contextual.AddXml(doc).ok()) return 1;
  }
  condtd::Result<condtd::ContextualInferrer::Report> report =
      contextual.Infer();
  if (!report.ok()) {
    std::printf("inference failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "1-local (XSD-style) types — %d element(s) need vertical "
      "context:\n\n%s\n",
      report->NumContextDependent(),
      contextual.ReportToString(report.value()).c_str());

  // The plain DTD for comparison: <name>'s two shapes collapse into one
  // union type that accepts both everywhere.
  condtd::DtdInferrer flat;
  for (const std::string& doc : corpus) {
    if (!flat.AddXml(doc).ok()) return 1;
  }
  condtd::Result<condtd::Dtd> dtd = flat.InferDtd();
  if (!dtd.ok()) return 1;
  std::printf("Plain DTD (vertical context lost):\n%s",
              condtd::WriteDtd(dtd.value(), *flat.alphabet()).c_str());
  std::printf(
      "\nA DTD must allow <legal> inside a person's <name> (and vice "
      "versa); an XSD with\nlocal element declarations enforces the "
      "contextual types instead:\n\n");
  condtd::Result<std::string> xsd = contextual.InferLocalXsd();
  if (!xsd.ok()) return 1;
  std::printf("%s", xsd->c_str());
  return 0;
}
