// The sparse-data regime (Sections 1.2, 7): XML arriving as web-service
// responses trickles in a few documents at a time. iDTD would
// over-specialize; CRX's strong generalization gets a sensible CHARE
// from a handful of examples, and the incremental state lets the schema
// be refined as more responses arrive — without keeping the XML around.

#include <cstdio>
#include <string>
#include <vector>

#include "crx/crx.h"
#include "dtd/model.h"
#include "idtd/idtd.h"
#include "infer/inferrer.h"
#include "xml/extract.h"
#include "xml/parser.h"

int main() {
  // Three early responses from a fictional stock-quote service.
  const std::vector<std::string> responses = {
      "<quote><sym>ACME</sym><bid>10</bid><ask>11</ask></quote>",
      "<quote><sym>INIT</sym><bid>5</bid><ask>6</ask><warn/><warn/>"
      "</quote>",
      "<quote><sym>EMCA</sym><last>8</last></quote>",
  };

  condtd::InferenceOptions options;
  options.algorithm = condtd::InferenceAlgorithm::kCrx;  // sparse regime
  condtd::DtdInferrer inferrer(options);
  for (const std::string& r : responses) {
    if (!inferrer.AddXml(r).ok()) return 1;
  }

  condtd::Symbol quote = inferrer.alphabet()->Find("quote");
  condtd::Result<condtd::ContentModel> after3 =
      inferrer.InferContentModel(quote);
  if (!after3.ok()) return 1;
  std::printf("after 3 responses  : quote %s\n",
              condtd::ContentModelToString(after3.value(),
                                           *inferrer.alphabet())
                  .c_str());

  // More responses arrive; fold them in (no re-parse of old data).
  const std::vector<std::string> more = {
      "<quote><sym>X</sym><bid>1</bid><ask>2</ask><last>1</last></quote>",
      "<quote><sym>Y</sym><last>3</last><warn/></quote>",
      "<quote><sym>Z</sym><bid>4</bid><ask>5</ask></quote>",
  };
  for (const std::string& r : more) {
    if (!inferrer.AddXml(r).ok()) return 1;
  }
  condtd::Result<condtd::ContentModel> after6 =
      inferrer.InferContentModel(quote);
  if (!after6.ok()) return 1;
  std::printf("after 6 responses  : quote %s\n",
              condtd::ContentModelToString(after6.value(),
                                           *inferrer.alphabet())
                  .c_str());

  // Contrast with iDTD on the same six child sequences: with this little
  // data its repair rules have to guess, and the result is a crude
  // collapsed superset (the paper's motivation for using CRX here).
  condtd::Alphabet scratch;
  std::vector<condtd::Word> words;
  for (const std::string& r : responses) {
    condtd::Result<condtd::XmlDocument> doc = condtd::ParseXml(r);
    condtd::ElementContexts ctx =
        condtd::ExtractContexts(doc.value(), &scratch);
    for (auto& [sym, ws] : ctx.contexts) {
      if (scratch.Name(sym) == "quote") {
        words.insert(words.end(), ws.begin(), ws.end());
      }
    }
  }
  for (const std::string& r : more) {
    condtd::Result<condtd::XmlDocument> doc = condtd::ParseXml(r);
    condtd::ElementContexts ctx =
        condtd::ExtractContexts(doc.value(), &scratch);
    for (auto& [sym, ws] : ctx.contexts) {
      if (scratch.Name(sym) == "quote") {
        words.insert(words.end(), ws.begin(), ws.end());
      }
    }
  }
  condtd::Result<condtd::ReRef> idtd = condtd::IdtdInfer(words);
  if (idtd.ok()) {
    std::printf("iDTD on the same 6 : quote (%s)\n",
                condtd::ToString(idtd.value(), scratch).c_str());
  }
  std::printf(
      "\nCRX generalizes from very small samples (Theorem 4/5); iDTD's "
      "specific SORE is\nthe better choice once hundreds of responses "
      "have been folded in.\n");
  return 0;
}
