// A guided tour of the paper's worked example (Sections 4-6, Figures
// 1-3): 2T-INF builds the SOA from three strings, rewrite reduces it
// rule by rule to ((b?(a+c))+d)+e, and iDTD repairs the incomplete
// two-string automaton of Figure 2 back to the same result. Graphviz
// snapshots are printed so the figures can be re-drawn with `dot -Tpng`.

#include <cstdio>
#include <vector>

#include "automaton/dot.h"
#include "automaton/state_elimination.h"
#include "automaton/two_t_inf.h"
#include "gfa/rewrite.h"
#include "idtd/idtd.h"
#include "regex/equivalence.h"
#include "regex/normalize.h"
#include "regex/properties.h"

int main() {
  using condtd::Alphabet;
  using condtd::Word;

  Alphabet alphabet;
  std::vector<Word> sample = {
      alphabet.WordFromChars("bacacdacde"),
      alphabet.WordFromChars("cbacdbacde"),
      alphabet.WordFromChars("abccaadcde"),
  };

  // Section 4: 2T-INF. I = {a,b,c}, F = {e}, 14 two-grams.
  condtd::Soa soa = condtd::Infer2T(sample);
  std::printf("Figure 1 — the SOA inferred by 2T-INF from\n"
              "  {bacacdacde, cbacdbacde, abccaadcde}:\n\n%s\n",
              condtd::SoaToDot(soa, alphabet).c_str());

  // Section 5: rewrite, one rule application at a time (Figure 3).
  condtd::Gfa gfa = condtd::Gfa::FromSoa(soa);
  std::printf("Figure 3 — rewriting:\n");
  int step = 0;
  while (!gfa.IsFinal()) {
    const char* rule = nullptr;
    if (condtd::ApplySelfLoopRule(&gfa)) {
      rule = "self-loop";
    } else if (condtd::ApplyConcatenationRule(&gfa)) {
      rule = "concatenation";
    } else if (condtd::ApplyDisjunctionRule(&gfa)) {
      rule = "disjunction";
    } else if (condtd::ApplyOptionalRule(&gfa)) {
      rule = "optional";
    } else if (condtd::ApplyRedundantSkipEdgeRule(&gfa)) {
      rule = "skip-edge cleanup";
    } else {
      std::printf("  stuck!\n");
      break;
    }
    std::printf("  step %d: %-18s ->", ++step, rule);
    for (int v : gfa.LiveNodes()) {
      std::printf(" [%s]",
                  condtd::ToString(gfa.Label(v), alphabet,
                                   condtd::PrintStyle::kPaper)
                      .c_str());
    }
    std::printf("\n");
  }
  condtd::ReRef sore = condtd::Normalize(gfa.FinalExpression());
  std::printf("\n  resulting SORE (‡): %s\n\n",
              condtd::ToString(sore, alphabet, condtd::PrintStyle::kPaper)
                  .c_str());

  // The state-elimination contrast (expression (†)).
  condtd::Result<condtd::ReRef> eliminated =
      condtd::StateEliminationRegex(soa);
  std::printf(
      "Classical state elimination on the same automaton produces an\n"
      "equivalent expression with %d symbol occurrences (the paper's "
      "(†));\nrewrite needs %d. Languages equal: %s.\n\n",
      condtd::CountSymbolOccurrences(eliminated.value()),
      condtd::CountSymbolOccurrences(sore),
      condtd::LanguageEquivalent(eliminated.value(), sore) ? "yes" : "no");

  // Section 6: Figure 2 (only two strings) and the repair rules.
  std::vector<Word> partial(sample.begin(), sample.begin() + 2);
  condtd::Soa soa2 = condtd::Infer2T(partial);
  std::printf("Figure 2 — the SOA from only two strings:\n\n%s\n",
              condtd::SoaToDot(soa2, alphabet).c_str());
  condtd::Result<condtd::ReRef> plain = condtd::RewriteSoaToSore(soa2);
  std::printf("plain rewrite: %s\n", plain.status().ToString().c_str());
  condtd::Result<condtd::ReRef> repaired = condtd::IdtdFromSoa(soa2);
  std::printf("iDTD (with repair rules): %s\n",
              condtd::ToString(repaired.value(), alphabet,
                               condtd::PrintStyle::kPaper)
                  .c_str());
  std::printf("same language as the intended SORE: %s\n",
              condtd::LanguageEquivalent(repaired.value(), sore) ? "yes"
                                                                 : "no");
  return 0;
}
