// Fuzz target: the bump arena behind per-document ingestion state.
// Interprets the input as an op stream (allocate / copy / append /
// reset) and mirrors every arena view in owned storage, so any
// overlap, misalignment, or reuse-after-reset bug shows up either as a
// content mismatch (abort) or as an ASan report when the replay runs
// under the sanitizer lane. The reset op immediately re-copies through
// the recycled blocks — the steady-state pattern of the streaming
// folder, and the path where a stale bump pointer would corrupt the
// next document's samples.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "base/arena.h"

namespace {

void CheckView(std::string_view view, const std::string& expected) {
  if (view.size() != expected.size() ||
      std::memcmp(view.data(), expected.data(), view.size()) != 0) {
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;
  condtd::Arena arena(/*first_block_bytes=*/64);

  // Views handed out since the last Reset, with owned mirrors.
  std::vector<std::string_view> views;
  std::vector<std::string> mirrors;
  std::string_view head;  // current Append accumulator
  std::string head_mirror;

  size_t pos = 0;
  auto take = [&](size_t want) {
    size_t n = want < size - pos ? want : size - pos;
    std::string_view chunk(reinterpret_cast<const char*>(data) + pos, n);
    pos += n;
    return chunk;
  };

  while (pos < size) {
    uint8_t op = data[pos++];
    switch (op % 4) {
      case 0: {  // Allocate: fill the slice, check alignment.
        size_t n = (op >> 2) + 1;
        char* slice = arena.Allocate(n);
        if (reinterpret_cast<uintptr_t>(slice) % 8 != 0) std::abort();
        std::memset(slice, static_cast<char>(op), n);
        break;
      }
      case 1: {  // Copy: arena copy must match the source bytes.
        std::string_view chunk = take((op >> 2) + 1);
        std::string_view view = arena.Copy(chunk);
        CheckView(view, std::string(chunk));
        views.push_back(view);
        mirrors.emplace_back(chunk);
        break;
      }
      case 2: {  // Append: grow the accumulator, in place or relocated.
        std::string_view chunk = take((op >> 2) + 1);
        head = arena.Append(head, chunk);
        head_mirror.append(chunk.data(), chunk.size());
        CheckView(head, head_mirror);
        break;
      }
      case 3: {  // Reset, then immediately reuse the recycled blocks.
        // Every outstanding view must still match its mirror first —
        // Copy/Append are not allowed to clobber earlier slices.
        for (size_t i = 0; i < views.size(); ++i) {
          CheckView(views[i], mirrors[i]);
        }
        arena.Reset();
        if (arena.bytes_used() != 0) std::abort();
        views.clear();
        mirrors.clear();
        head = std::string_view();
        head_mirror.clear();
        std::string_view reused = arena.Copy("post-reset probe");
        CheckView(reused, "post-reset probe");
        views.push_back(reused);
        mirrors.emplace_back("post-reset probe");
        break;
      }
    }
  }
  for (size_t i = 0; i < views.size(); ++i) CheckView(views[i], mirrors[i]);
  if (!head.empty()) CheckView(head, head_mirror);
  return 0;
}
