// Fuzz target: the DOM-path XML pull lexer. Drains the token stream
// until EOF or the first parse error; any crash, hang or sanitizer
// report is a bug (parse errors are fine).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "xml/lexer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 65536) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  condtd::XmlLexer lexer(input);
  while (true) {
    condtd::Result<condtd::XmlToken> token = lexer.Next();
    if (!token.ok()) break;
    if (token->kind == condtd::XmlTokenKind::kEof) break;
  }
  return 0;
}
