// Fuzz target: the versioned summary-state loader. Regression corpus
// covers numeric-overflow counts (previously undefined behavior through
// std::atoll/std::atoi), truncated files and junk count fields. Loaded
// stores are re-saved and re-loaded: a state the loader accepted must
// round-trip through its own serializer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "alphabet/alphabet.h"
#include "infer/summary.h"

namespace {

void LoadWith(std::string_view input, int max_retained_words) {
  condtd::SummaryLimits limits;
  limits.max_retained_words = max_retained_words;
  condtd::SummaryStore store(limits);
  condtd::Alphabet alphabet;
  if (!store.Load(input, &alphabet).ok()) return;
  std::string saved = store.Save(alphabet);
  condtd::SummaryStore reloaded(limits);
  condtd::Alphabet reloaded_alphabet;
  if (!reloaded.Load(saved, &reloaded_alphabet).ok()) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 65536) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  LoadWith(input, 0);
  LoadWith(input, 4);
  return 0;
}
