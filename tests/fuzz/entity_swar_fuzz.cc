// Differential fuzz target for the SWAR entity-decoder fast path:
// DecodeXmlEntities (word-at-a-time '&' scan + unaligned-load named-
// entity matching) against a byte-at-a-time reference decoder with the
// exact documented semantics. Any divergence in status or output traps.
//
// The seed corpus stresses what the SWAR path changes: mixed multi-byte
// UTF-8 around entities, truncated references, and '&' at the buffer
// tail (the memcpy-guarded loads must not read past the end — under
// ASan/libFuzzer the input buffer edge stands in for an mmap page
// boundary).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "xml/lexer.h"

namespace {

/// Reference decoder: the pre-SWAR specification, one byte at a time.
/// Mirrors DecodeXmlEntities' contract — five named entities, numeric
/// references with 64-bit accumulator and range/NUL/surrogate checks,
/// unknown entities kept verbatim, "unterminated entity reference" when
/// no ';' follows a '&'.
bool ReferenceDecode(std::string_view raw, std::string* out) {
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      *out += raw[i++];
      continue;
    }
    size_t end = raw.find(';', i);
    if (end == std::string_view::npos) return false;
    std::string_view entity = raw.substr(i + 1, end - i - 1);
    if (entity == "amp") {
      *out += '&';
    } else if (entity == "lt") {
      *out += '<';
    } else if (entity == "gt") {
      *out += '>';
    } else if (entity == "apos") {
      *out += '\'';
    } else if (entity == "quot") {
      *out += '"';
    } else if (!entity.empty() && entity[0] == '#') {
      int64_t code = 0;
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      size_t digit_start = hex ? 2 : 1;
      if (digit_start >= entity.size()) return false;
      for (size_t j = digit_start; j < entity.size(); ++j) {
        char c = entity[j];
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return false;
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) return false;
      }
      if (code == 0 || (code >= 0xD800 && code <= 0xDFFF)) return false;
      if (code < 0x80) {
        *out += static_cast<char>(code);
      } else if (code < 0x800) {
        *out += static_cast<char>(0xC0 | (code >> 6));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        *out += static_cast<char>(0xE0 | (code >> 12));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        *out += static_cast<char>(0xF0 | (code >> 18));
        *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      *out += '&';
      *out += entity;
      *out += ';';
    }
    i = end + 1;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 65536) return 0;
  std::string_view raw(reinterpret_cast<const char*>(data), size);

  std::string fast;
  condtd::Status status = condtd::DecodeXmlEntities(raw, &fast);

  std::string reference;
  bool reference_ok = ReferenceDecode(raw, &reference);

  if (status.ok() != reference_ok) __builtin_trap();
  if (status.ok() && fast != reference) __builtin_trap();
  return 0;
}
