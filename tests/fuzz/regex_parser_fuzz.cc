// Fuzz target: the regular-expression parser, in both symbol modes.
// Successful parses are checked for the print/re-parse fixed point
// (parse(print(r)) must be structurally equal to r) — a cheap invariant
// that catches precedence and whitespace-sensitivity bugs without any
// automaton construction.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "alphabet/alphabet.h"
#include "regex/ast.h"
#include "regex/parser.h"

namespace {

void RoundTrip(std::string_view input, bool char_symbols) {
  condtd::Alphabet alphabet;
  condtd::RegexParseOptions options;
  options.char_symbols = char_symbols;
  condtd::Result<condtd::ReRef> parsed =
      condtd::ParseRegex(input, &alphabet, options);
  if (!parsed.ok()) return;
  std::string printed = condtd::ToString(parsed.value(), alphabet,
                                         condtd::PrintStyle::kParseable);
  // Same options on the way back: char_symbols mode can intern digit
  // names the identifier grammar cannot spell.
  condtd::Result<condtd::ReRef> reparsed =
      condtd::ParseRegex(printed, &alphabet, options);
  if (!reparsed.ok()) __builtin_trap();
  if (!condtd::StructurallyEqual(parsed.value(), reparsed.value())) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  RoundTrip(input, false);
  RoundTrip(input, true);
  return 0;
}
