// Fuzz target: the `&`-extended regular-expression grammar. Beyond the
// plain parser round trip (parse(print(r)) structurally equal to r —
// shuffle printing has its own precedence level between | and
// concatenation, an easy place for parenthesization bugs), successful
// parses are checked for the shuffle-specific invariants that hold
// without building any automaton:
//
//   * the parser enforces the product-size bound, so every accepted
//     expression satisfies MatchNfaSizeBound <= kMaxShuffleProduct;
//   * cheap predicates (ContainsShuffle, IsSire, Nullable, CountTokens)
//     are fixed points of the print/re-parse cycle.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "alphabet/alphabet.h"
#include "regex/ast.h"
#include "regex/parser.h"
#include "regex/properties.h"
#include "regex/shuffle.h"

namespace {

void RoundTrip(std::string_view input, bool char_symbols) {
  condtd::Alphabet alphabet;
  condtd::RegexParseOptions options;
  options.char_symbols = char_symbols;
  condtd::Result<condtd::ReRef> parsed =
      condtd::ParseRegex(input, &alphabet, options);
  if (!parsed.ok()) return;
  if (condtd::MatchNfaSizeBound(parsed.value()) >
      condtd::kMaxShuffleProduct) {
    __builtin_trap();  // the parser must reject oversized shuffles
  }
  std::string printed = condtd::ToString(parsed.value(), alphabet,
                                         condtd::PrintStyle::kParseable);
  condtd::Result<condtd::ReRef> reparsed =
      condtd::ParseRegex(printed, &alphabet, options);
  if (!reparsed.ok()) __builtin_trap();
  if (!condtd::StructurallyEqual(parsed.value(), reparsed.value())) {
    __builtin_trap();
  }
  if (condtd::ContainsShuffle(parsed.value()) !=
      condtd::ContainsShuffle(reparsed.value())) {
    __builtin_trap();
  }
  if (condtd::IsSire(parsed.value()) != condtd::IsSire(reparsed.value())) {
    __builtin_trap();
  }
  if (condtd::Nullable(parsed.value()) !=
      condtd::Nullable(reparsed.value())) {
    __builtin_trap();
  }
  if (condtd::CountTokens(parsed.value()) !=
      condtd::CountTokens(reparsed.value())) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  RoundTrip(input, false);
  RoundTrip(input, true);
  return 0;
}
