// Fuzz target: the zero-copy SAX pull lexer plus both DOM parser modes
// (strict and tag-soup lenient). The SAX lexer and XmlLexer share the
// grammar, so differential crashes between them surface here too.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xml/parser.h"
#include "xml/sax.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 65536) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);

  condtd::SaxLexer lexer(input);
  while (true) {
    condtd::Result<condtd::SaxEvent> event = lexer.Next();
    if (!event.ok()) break;
    if (event->kind == condtd::SaxEventKind::kEof) break;
    // Touch the borrowed views so ASan sees out-of-bounds storage.
    if (event->kind == condtd::SaxEventKind::kStartElement) {
      for (const condtd::SaxAttribute& attr : lexer.attributes()) {
        volatile size_t sink = attr.key.size() + attr.value.size();
        (void)sink;
      }
    }
  }

  (void)condtd::ParseXml(input);
  std::vector<std::string> recovered;
  (void)condtd::ParseXmlLenient(input, &recovered);
  return 0;
}
