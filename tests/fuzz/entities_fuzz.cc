// Fuzz target: DecodeXmlEntities. Regression corpus covers the numeric
// character-reference bugs fixed alongside this harness (64-bit overflow
// in the digit accumulator, &#; / &#x; accepted as NUL, astral code
// points truncated to 3-byte UTF-8, surrogate code points emitted).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "xml/lexer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 65536) return 0;
  std::string_view raw(reinterpret_cast<const char*>(data), size);
  std::string decoded;
  condtd::Status status = condtd::DecodeXmlEntities(raw, &decoded);
  if (status.ok()) {
    // Decoded output must never contain NUL or UTF-16 surrogate
    // encodings (0xED 0xA0..0xBF lead): both are forbidden XML
    // characters that earlier versions let through.
    for (size_t i = 0; i < decoded.size(); ++i) {
      unsigned char c = static_cast<unsigned char>(decoded[i]);
      if (c == 0) __builtin_trap();
      if (c == 0xED && i + 1 < decoded.size() &&
          static_cast<unsigned char>(decoded[i + 1]) >= 0xA0) {
        __builtin_trap();
      }
    }
  }
  return 0;
}
