// Corpus-replay driver: the fallback main() linked into the fuzz
// targets when CONDTD_FUZZ is OFF (e.g. plain GCC builds, where
// libFuzzer is unavailable). Replays every file under the given paths
// through LLVMFuzzerTestOneInput once, so the checked-in corpora —
// including the minimized regression inputs for previously fixed
// crashes — run as ordinary ctest cases under whatever sanitizers the
// build enables.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<std::filesystem::path> CollectInputs(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      inputs.push_back(path);
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   argv[i]);
    }
  }
  std::sort(inputs.begin(), inputs.end());
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 1;
  }
  std::vector<std::filesystem::path> inputs = CollectInputs(argc, argv);
  if (inputs.empty()) {
    std::fprintf(stderr, "replay: no corpus inputs found\n");
    return 1;
  }
  for (const std::filesystem::path& path : inputs) {
    std::ifstream file(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    std::printf("replay: %s (%zu bytes)\n", path.string().c_str(),
                bytes.size());
    std::fflush(stdout);
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("replayed %zu inputs without crashing\n", inputs.size());
  return 0;
}
