// Fuzz target: the DTD declaration parser and the recursive-descent
// content-model parser. Regression corpus covers the stack-overflow
// inputs (deep '(' nesting, unbounded postfix chains) that the depth
// caps now reject.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "alphabet/alphabet.h"
#include "dtd/dtd_parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 65536) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  {
    condtd::Alphabet alphabet;
    (void)condtd::ParseDtd(input, &alphabet, "");
  }
  {
    condtd::Alphabet alphabet;
    (void)condtd::ParseDoctype(input, &alphabet);
  }
  {
    condtd::Alphabet alphabet;
    (void)condtd::ParseContentModel(input, &alphabet);
  }
  return 0;
}
