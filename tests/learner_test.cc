// The Learner/LearnerRegistry seam: registry contents, AutoPolicy,
// every registered learner end-to-end on the Table 1 mini-corpus, and
// the reservoir-backed failure modes of the word-hungry XTRACT baseline.

#include "learn/learner.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dtd/dtd_writer.h"
#include "gen/corpus.h"
#include "infer/inferrer.h"
#include "regex/matcher.h"
#include "regex/determinism.h"

namespace condtd {
namespace {

TEST(LearnerRegistry, BuiltinsRegisteredInDisplayOrder) {
  const LearnerRegistry& registry = LearnerRegistry::Global();
  EXPECT_EQ(registry.NamesForDisplay("|"),
            "auto|idtd|crx|isore|sire|rewrite|trang|xtract");
  for (const Learner* learner : registry.All()) {
    EXPECT_EQ(registry.Find(learner->name()), learner);
    EXPECT_FALSE(learner->description().empty());
  }
  EXPECT_EQ(registry.Find("no-such-learner"), nullptr);
  // Capability bits: the interleaving learners and the XTRACT baseline
  // need raw words; the summary-only learners must not ask for them.
  for (const Learner* learner : registry.All()) {
    bool wants_words = learner->name() == "xtract" ||
                       learner->name() == "isore" ||
                       learner->name() == "sire";
    EXPECT_EQ(learner->needs_full_words(), wants_words) << learner->name();
  }
}

TEST(LearnerRegistry, DuplicateRegistrationFails) {
  class Dup : public Learner {
   public:
    std::string_view name() const override { return "crx"; }
    std::string_view description() const override { return "dup"; }
    Result<ReRef> Learn(const ElementSummary&,
                        const LearnOptions&) const override {
      return Status::Internal("unreachable");
    }
  };
  Status status = LearnerRegistry::Global().Register(std::make_unique<Dup>());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("already registered"), std::string::npos);
}

TEST(AutoPolicy, SwitchesOnOccurrenceCount) {
  ElementSummary sparse;
  sparse.occurrences = 99;
  ElementSummary dense;
  dense.occurrences = 100;
  AutoPolicy policy(/*idtd_min_words=*/100);
  EXPECT_EQ(policy.Pick(sparse).name(), "crx");
  EXPECT_EQ(policy.Pick(dense).name(), "idtd");
}

TEST(DtdInferrer, UnknownLearnerNameFailsWithRegisteredList) {
  InferenceOptions options;
  options.learner = "bogus";
  DtdInferrer inferrer(options);
  EXPECT_EQ(inferrer.learner(), nullptr);
  ASSERT_TRUE(inferrer.AddXml("<r><a/><a/></r>").ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dtd.status().ToString().find("bogus"), std::string::npos);
  EXPECT_NE(dtd.status().ToString().find(
                "auto, idtd, crx, isore, sire, rewrite, trang, xtract"),
            std::string::npos);
}

// --- round trip: every learner over the Table 1 mini-corpus --------------

// Feeds a Table 1 case's words through DtdInferrer::AddWords and runs
// the learner end-to-end. Learners differ in generalization, so the
// check is semantic: the result must be a deterministic RE accepting
// every word it was trained on (rewrite and xtract are allowed to fail
// on specific cases — rewrite needs representative data, xtract needs
// the words to fit its budget — but must never crash or mis-learn).
void RoundTripCase(const ExperimentCase& experiment,
                   const std::string& learner_name) {
  InferenceOptions options;
  options.learner = learner_name;
  // Keep the reservoir within xtract's feasible range on the big cases.
  std::vector<Word> sample = experiment.sample;
  if (learner_name == "xtract" && experiment.xtract_sample_size > 0 &&
      static_cast<int>(sample.size()) > experiment.xtract_sample_size) {
    sample.resize(experiment.xtract_sample_size);
  }
  DtdInferrer inferrer(options);
  *inferrer.alphabet() = experiment.alphabet;
  Symbol element = inferrer.alphabet()->Intern("__case_root");
  inferrer.AddWords(element, sample);
  Result<ContentModel> model = inferrer.InferContentModel(element);
  if (!model.ok()) {
    EXPECT_TRUE(learner_name == "rewrite" || learner_name == "xtract")
        << experiment.name << " via " << learner_name << ": "
        << model.status().ToString();
    return;
  }
  ASSERT_EQ(model->kind, ContentKind::kChildren)
      << experiment.name << " via " << learner_name;
  EXPECT_TRUE(IsDeterministic(model->regex))
      << experiment.name << " via " << learner_name << ": "
      << ToDtdString(model->regex, *inferrer.alphabet());
  for (const Word& word : sample) {
    ASSERT_TRUE(Matches(model->regex, word))
        << experiment.name << " via " << learner_name
        << " rejects a training word: "
        << ToDtdString(model->regex, *inferrer.alphabet());
  }
}

TEST(LearnerRoundTrip, EveryLearnerOnTable1) {
  std::vector<ExperimentCase> cases = BuildTable1Cases(20060912);
  ASSERT_FALSE(cases.empty());
  for (const Learner* learner : LearnerRegistry::Global().All()) {
    for (const ExperimentCase& experiment : cases) {
      RoundTripCase(experiment, std::string(learner->name()));
    }
  }
}

// --- reservoir-backed failure modes --------------------------------------

// A corpus whose element has more distinct child sequences than
// xtract.max_strings: the reservoir overflows and the learner reports
// the baseline's documented infeasibility instead of learning from a
// truncated sample.
TEST(XtractLearner, OverflowingReservoirIsResourceExhausted) {
  InferenceOptions options;
  options.learner = "xtract";
  options.xtract.max_strings = 8;
  DtdInferrer inferrer(options);
  Symbol root = inferrer.alphabet()->Intern("root");
  Symbol a = inferrer.alphabet()->Intern("a");
  std::vector<Word> words;
  for (int n = 1; n <= 20; ++n) {
    words.emplace_back(Word(n, a));  // 20 distinct lengths
  }
  inferrer.AddWords(root, words);
  Result<ContentModel> model = inferrer.InferContentModel(root);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(model.status().ToString().find("8"), std::string::npos);
}

// Words within budget but above max_strings still fail — through
// XtractInfer's own check (the reservoir keeps max_strings + 2 words of
// headroom precisely so that path stays reachable).
TEST(XtractLearner, JustOverBudgetFailsThroughXtractItself) {
  InferenceOptions options;
  options.learner = "xtract";
  options.xtract.max_strings = 8;
  DtdInferrer inferrer(options);
  Symbol root = inferrer.alphabet()->Intern("root");
  Symbol a = inferrer.alphabet()->Intern("a");
  std::vector<Word> words;
  for (int n = 1; n <= 9; ++n) {
    words.emplace_back(Word(n, a));  // 9 distinct non-empty words
  }
  inferrer.AddWords(root, words);
  Result<ContentModel> model = inferrer.InferContentModel(root);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kResourceExhausted);
}

// A summary folded for a summary-only learner carries no reservoir;
// pointing xtract at it must fail loudly, not learn from nothing.
TEST(XtractLearner, SummaryWithoutWordsIsFailedPrecondition) {
  DtdInferrer folded;  // default options: reservoir disabled
  ASSERT_TRUE(folded.AddXml("<r><a/><a/></r>").ok());
  InferenceOptions options;
  options.learner = "xtract";
  DtdInferrer xtract_side(options);
  ASSERT_TRUE(xtract_side.LoadState(folded.SaveState()).ok());
  Result<Dtd> dtd = xtract_side.InferDtd();
  ASSERT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kFailedPrecondition);
}

// With the reservoir enabled end-to-end, xtract works across save/load
// and across shard merges.
TEST(XtractLearner, ReservoirSurvivesSaveLoadAndMerge) {
  InferenceOptions options;
  options.learner = "xtract";
  DtdInferrer a(options);
  ASSERT_TRUE(a.AddXml("<r><x/><y/></r>").ok());
  DtdInferrer b(options);
  ASSERT_TRUE(b.AddXml("<r><x/></r>").ok());
  a.MergeFrom(b);
  DtdInferrer restored(options);
  ASSERT_TRUE(restored.LoadState(a.SaveState()).ok());
  Result<Dtd> direct = a.InferDtd();
  Result<Dtd> roundtripped = restored.InferDtd();
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(roundtripped.ok()) << roundtripped.status().ToString();
  EXPECT_EQ(WriteDtd(direct.value(), *a.alphabet()),
            WriteDtd(roundtripped.value(), *restored.alphabet()));
}

// Streaming ingestion collects the reservoir too (the weighted folds
// are multiplicity-invariant for the distinct-word set).
TEST(XtractLearner, StreamingIngestionFeedsTheReservoir) {
  InferenceOptions options;
  options.learner = "xtract";
  DtdInferrer inferrer(options);
  ASSERT_TRUE(inferrer.AddXmlStreaming("<r><x/><y/></r>").ok());
  ASSERT_TRUE(inferrer.AddXmlStreaming("<r><x/><y/></r>").ok());
  const ElementSummary* summary =
      inferrer.summaries().Find(inferrer.alphabet()->Find("r"));
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->words_complete);
  EXPECT_FALSE(summary->words_overflowed);
  EXPECT_EQ(summary->retained_words.size(), 1u);  // deduplicated
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
}

}  // namespace
}  // namespace condtd
