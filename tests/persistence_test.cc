#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/validator.h"
#include "gen/random_dtd.h"
#include "gen/xml_gen.h"
#include "infer/inferrer.h"
#include "infer/summary.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/properties.h"
#include "xml/parser.h"
#include "xsd/parser.h"
#include "xsd/writer.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;

// --- XSD reader -----------------------------------------------------------

TEST(XsdParser, RoundTripThroughWriterAndReader) {
  // DTD -> XSD (writer) -> DTD (reader): the content models must stay
  // language-equivalent.
  Alphabet alphabet;
  Result<Dtd> original = ParseDtd(
      "<!ELEMENT r (a+, (b | c)?, d*)>\n"
      "<!ELEMENT a (#PCDATA)>\n"
      "<!ELEMENT b EMPTY>\n"
      "<!ELEMENT c (#PCDATA | a)*>\n"
      "<!ELEMENT d ANY>\n"
      "<!ATTLIST r id CDATA #REQUIRED note CDATA #IMPLIED>\n",
      &alphabet);
  ASSERT_TRUE(original.ok());
  std::string xsd = WriteXsd(original.value(), alphabet);

  Alphabet alphabet2;
  Result<Dtd> parsed = ParseXsd(xsd, &alphabet2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << xsd;
  ASSERT_EQ(parsed->elements.size(), original->elements.size());
  for (const auto& [symbol, model] : original->elements) {
    Symbol symbol2 = alphabet2.Find(alphabet.Name(symbol));
    ASSERT_NE(symbol2, kInvalidSymbol);
    const ContentModel& model2 = parsed->elements.at(symbol2);
    EXPECT_EQ(model2.kind, model.kind) << alphabet.Name(symbol);
    if (model.kind == ContentKind::kChildren) {
      // Symbol ids coincide here because both alphabets intern the same
      // names in compatible order; verify to be safe, then compare.
      for (Symbol s : SymbolsOf(model.regex)) {
        ASSERT_EQ(alphabet2.Find(alphabet.Name(s)), s);
      }
      EXPECT_TRUE(LanguageEquivalent(model.regex, model2.regex))
          << alphabet.Name(symbol);
    }
  }
  const auto& attrs = parsed->attributes.at(alphabet2.Find("r"));
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].default_decl, "#REQUIRED");
  EXPECT_EQ(attrs[1].default_decl, "#IMPLIED");
}

TEST(XsdParser, NumericBoundsExpand) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseXsd(
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
      "<xs:element name=\"game\"><xs:complexType><xs:sequence>"
      "<xs:element ref=\"player\" minOccurs=\"2\" maxOccurs=\"2\"/>"
      "<xs:element ref=\"move\" minOccurs=\"2\" maxOccurs=\"unbounded\"/>"
      "<xs:element ref=\"note\" minOccurs=\"0\" maxOccurs=\"3\"/>"
      "</xs:sequence></xs:complexType></xs:element>"
      "<xs:element name=\"player\" type=\"xs:string\"/>"
      "<xs:element name=\"move\" type=\"xs:string\"/>"
      "<xs:element name=\"note\" type=\"xs:string\"/>"
      "</xs:schema>",
      &alphabet);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const ContentModel& game = dtd->elements.at(alphabet.Find("game"));
  ASSERT_EQ(game.kind, ContentKind::kChildren);
  condtd::Matcher matcher(game.regex);
  Symbol p = alphabet.Find("player");
  Symbol m = alphabet.Find("move");
  Symbol n = alphabet.Find("note");
  EXPECT_TRUE(matcher.Matches({p, p, m, m}));
  EXPECT_TRUE(matcher.Matches({p, p, m, m, m, n, n, n}));
  EXPECT_FALSE(matcher.Matches({p, m, m}));        // one player
  EXPECT_FALSE(matcher.Matches({p, p, p, m, m}));  // three players
  EXPECT_FALSE(matcher.Matches({p, p, m}));        // one move
  EXPECT_FALSE(matcher.Matches({p, p, m, m, n, n, n, n}));  // four notes
}

TEST(XsdParser, RejectsUnsupportedConstructs) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseXsd("<not-a-schema/>", &alphabet).ok());
  EXPECT_FALSE(
      ParseXsd("<xs:schema><xs:complexType name=\"t\"/></xs:schema>",
               &alphabet)
          .ok());
  EXPECT_FALSE(
      ParseXsd("<xs:schema><xs:element name=\"e\"><xs:complexType>"
               "<xs:all/></xs:complexType></xs:element></xs:schema>",
               &alphabet)
          .ok());
}

TEST(ExpandOccurrences, AllShapes) {
  Alphabet alphabet;
  ReRef a = ParseChars("a", &alphabet);
  EXPECT_EQ(ToString(ExpandOccurrences(a, 1, 1), alphabet), "a");
  EXPECT_EQ(ToString(ExpandOccurrences(a, 0, 1), alphabet), "a?");
  EXPECT_EQ(ToString(ExpandOccurrences(a, 0, -1), alphabet), "a*");
  EXPECT_EQ(ToString(ExpandOccurrences(a, 1, -1), alphabet), "a+");
  EXPECT_EQ(ToString(ExpandOccurrences(a, 3, -1), alphabet), "a a a+");
  EXPECT_EQ(ToString(ExpandOccurrences(a, 2, 4), alphabet),
            "a a (a a?)?");
  EXPECT_EQ(ExpandOccurrences(a, 0, 0), nullptr);
  // Language check: {2,4} accepts exactly 2..4 repetitions.
  ReRef bounded = ExpandOccurrences(a, 2, 4);
  Symbol s = alphabet.Find("a");
  Matcher matcher(bounded);
  EXPECT_FALSE(matcher.Matches({s}));
  EXPECT_TRUE(matcher.Matches({s, s}));
  EXPECT_TRUE(matcher.Matches({s, s, s, s}));
  EXPECT_FALSE(matcher.Matches({s, s, s, s, s}));
}

TEST(XsdParser, RandomDtdRoundTripFuzz) {
  // Random DTDs through writer → reader: every content model must come
  // back language-equivalent (symbol ids align because both alphabets
  // intern e0..e(n-1) in order).
  Rng rng(20060912);
  for (int trial = 0; trial < 15; ++trial) {
    Alphabet alphabet;
    Dtd truth = RandomDtd(&alphabet, &rng);
    std::string xsd = WriteXsd(truth, alphabet);

    Alphabet alphabet2;
    for (int i = 0; i < alphabet.size(); ++i) {
      alphabet2.Intern(alphabet.Name(i));
    }
    Result<Dtd> parsed = ParseXsd(xsd, &alphabet2);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << xsd;
    ASSERT_EQ(parsed->elements.size(), truth.elements.size());
    for (const auto& [symbol, model] : truth.elements) {
      const ContentModel& model2 = parsed->elements.at(symbol);
      ASSERT_EQ(model2.kind, model.kind) << alphabet.Name(symbol);
      if (model.kind == ContentKind::kChildren) {
        EXPECT_TRUE(LanguageEquivalent(model.regex, model2.regex))
            << alphabet.Name(symbol) << " in\n"
            << xsd;
      }
    }
  }
}

// --- Inferrer state persistence ------------------------------------------------

TEST(StatePersistence, SaveLoadRoundTripsTheDtd) {
  Alphabet gen_alphabet;
  Result<Dtd> truth = ParseDtd(
      "<!ELEMENT db (rec+)>\n"
      "<!ELEMENT rec (k, v?, note*)>\n"
      "<!ELEMENT k (#PCDATA)>\n"
      "<!ELEMENT v (#PCDATA)>\n"
      "<!ELEMENT note (#PCDATA)>\n"
      "<!ATTLIST rec id CDATA #REQUIRED>\n",
      &gen_alphabet);
  ASSERT_TRUE(truth.ok());
  Rng rng(77);
  DtdInferrer original;
  for (int i = 0; i < 60; ++i) {
    Result<XmlDocument> doc =
        GenerateDocument(truth.value(), gen_alphabet, &rng);
    ASSERT_TRUE(original.AddXml(doc->ToXml()).ok());
  }
  std::string state = original.SaveState();

  DtdInferrer restored;
  ASSERT_TRUE(restored.LoadState(state).ok());
  Result<Dtd> a = original.InferDtd();
  Result<Dtd> b = restored.InferDtd();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(WriteDtd(a.value(), *original.alphabet()),
            WriteDtd(b.value(), *restored.alphabet()));
  // XSD output (numeric predicates + datatypes from text samples) also
  // survives.
  EXPECT_EQ(original.InferXsd().value(), restored.InferXsd().value());
  // And the state re-serializes identically (canonical form).
  EXPECT_EQ(restored.SaveState(), state);
}

TEST(StatePersistence, LoadMergesShards) {
  // Two inferrers fed disjoint halves must merge into the same state as
  // one fed everything (map-reduce style sharding).
  std::vector<std::string> docs = {
      "<db><rec><k/><v/></rec></db>",
      "<db><rec><k/></rec><rec><k/><v/><v/></rec></db>",
      "<db><rec><k/><note>t</note></rec></db>",
      "<db/>",
  };
  DtdInferrer shard1;
  DtdInferrer shard2;
  DtdInferrer full;
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE((i % 2 == 0 ? shard1 : shard2).AddXml(docs[i]).ok());
    ASSERT_TRUE(full.AddXml(docs[i]).ok());
  }
  DtdInferrer merged;
  ASSERT_TRUE(merged.LoadState(shard1.SaveState()).ok());
  ASSERT_TRUE(merged.LoadState(shard2.SaveState()).ok());
  EXPECT_EQ(WriteDtd(merged.InferDtd().value(), *merged.alphabet()),
            WriteDtd(full.InferDtd().value(), *full.alphabet()));
}

TEST(StatePersistence, ContinuesIncrementallyAfterRestore) {
  DtdInferrer first;
  ASSERT_TRUE(first.AddXml("<r><a/></r>").ok());
  DtdInferrer second;
  ASSERT_TRUE(second.LoadState(first.SaveState()).ok());
  ASSERT_TRUE(second.AddXml("<r><a/><a/><b/></r>").ok());

  DtdInferrer reference;
  ASSERT_TRUE(reference.AddXml("<r><a/></r>").ok());
  ASSERT_TRUE(reference.AddXml("<r><a/><a/><b/></r>").ok());
  EXPECT_EQ(WriteDtd(second.InferDtd().value(), *second.alphabet()),
            WriteDtd(reference.InferDtd().value(), *reference.alphabet()));
}

TEST(StatePersistence, RejectsCorruptedInput) {
  DtdInferrer inferrer;
  EXPECT_FALSE(inferrer.LoadState("").ok());
  EXPECT_FALSE(inferrer.LoadState("bogus header\nend\n").ok());
  EXPECT_FALSE(inferrer.LoadState("condtd-state 1\n").ok());  // no end
  EXPECT_FALSE(
      inferrer.LoadState("condtd-state 1\nattr x 3\nend\n").ok());
  EXPECT_FALSE(
      inferrer.LoadState("condtd-state 1\nelement e 1\nend\n").ok());
  EXPECT_FALSE(
      inferrer
          .LoadState("condtd-state 1\nelement e 1 0\nwhat 1\nend\n")
          .ok());
}

TEST(StatePersistence, TextSamplesSurviveEscaping) {
  DtdInferrer first;
  ASSERT_TRUE(
      first.AddXml("<r><t>hello world 100% \n ok</t></r>").ok());
  DtdInferrer second;
  ASSERT_TRUE(second.LoadState(first.SaveState()).ok());
  EXPECT_EQ(second.SaveState(), first.SaveState());
}

// --- format versioning ----------------------------------------------------

// A state file saved by the pre-reservoir engine (format version 1),
// verbatim. It was produced from:
//   <db><rec id="1"><k>alpha</k><v>9</v></rec><rec id="2"><k>b</k></rec></db>
//   <db><rec id="3"><k>c</k><note>hi there 100%</note></rec></db>
constexpr char kVersion1State[] =
    "condtd-state 1\n"
    "root db 2\n"
    "child rec\n"
    "child k\n"
    "child v\n"
    "child note\n"
    "element db 2 0\n"
    "soa.state rec 3\n"
    "soa.init rec 2\n"
    "soa.final rec 2\n"
    "soa.edge rec rec 1\n"
    "crx.edge rec rec\n"
    "crx.hist 1 rec=1\n"
    "crx.hist 1 rec=2\n"
    "element rec 3 0\n"
    "attr id 3\n"
    "soa.state k 3\n"
    "soa.init k 3\n"
    "soa.final k 1\n"
    "soa.edge k v 1\n"
    "soa.edge k note 1\n"
    "soa.state v 1\n"
    "soa.final v 1\n"
    "soa.state note 1\n"
    "soa.final note 1\n"
    "crx.edge k v\n"
    "crx.edge k note\n"
    "crx.hist 1 k=1\n"
    "crx.hist 1 k=1 v=1\n"
    "crx.hist 1 k=1 note=1\n"
    "element k 3 1\n"
    "text alpha\n"
    "text b\n"
    "text c\n"
    "soa.empty 3\n"
    "crx.empty 3\n"
    "element v 1 1\n"
    "text 9\n"
    "soa.empty 1\n"
    "crx.empty 1\n"
    "element note 1 1\n"
    "text hi%20there%20100%25\n"
    "soa.empty 1\n"
    "crx.empty 1\n"
    "end\n";

TEST(StatePersistence, LoadsVersion1StateFiles) {
  DtdInferrer inferrer;
  ASSERT_TRUE(inferrer.LoadState(kVersion1State).ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(WriteDtd(dtd.value(), *inferrer.alphabet()),
            "<!ELEMENT db (rec)+>\n"
            "<!ELEMENT rec (k, (v | note)?)>\n"
            "<!ATTLIST rec\n"
            "  id CDATA #REQUIRED>\n"
            "<!ELEMENT k (#PCDATA)>\n"
            "<!ELEMENT v (#PCDATA)>\n"
            "<!ELEMENT note (#PCDATA)>\n");
}

TEST(StatePersistence, Version1SummariesAreMarkedWordsIncomplete) {
  // A v1 file cannot carry the distinct-word reservoir, so a word-hungry
  // learner (xtract) must refuse the restored summaries rather than
  // learn from an empty sample.
  InferenceOptions options;
  options.learner = "xtract";
  DtdInferrer inferrer(options);
  ASSERT_TRUE(inferrer.LoadState(kVersion1State).ok());
  const ElementSummary* summary =
      inferrer.summaries().Find(inferrer.alphabet()->Find("db"));
  ASSERT_NE(summary, nullptr);
  EXPECT_FALSE(summary->words_complete);
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StatePersistence, RejectsUnsupportedFutureVersion) {
  DtdInferrer inferrer;
  Status status = inferrer.LoadState("condtd-state 3\nend\n");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find(
                "state file format version 3 is not supported"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("supported: 1, 2"), std::string::npos)
      << status.ToString();
}

TEST(StatePersistence, ReservoirStateRoundTripsCanonically) {
  InferenceOptions options;
  options.learner = "xtract";
  DtdInferrer first(options);
  ASSERT_TRUE(first.AddXml("<r><x/><y/><x/></r>").ok());
  ASSERT_TRUE(first.AddXml("<r><x/></r>").ok());
  std::string saved = first.SaveState();
  // The current format is version 2 and carries the reservoir.
  EXPECT_EQ(saved.rfind("condtd-state 2\n", 0), 0u) << saved;
  EXPECT_NE(saved.find("\nword "), std::string::npos) << saved;
  DtdInferrer second(options);
  ASSERT_TRUE(second.LoadState(saved).ok());
  EXPECT_EQ(second.SaveState(), saved);
  // And the restored reservoir still feeds the learner.
  Result<Dtd> a = first.InferDtd();
  Result<Dtd> b = second.InferDtd();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(WriteDtd(a.value(), *first.alphabet()),
            WriteDtd(b.value(), *second.alphabet()));
}

TEST(StatePersistence, TruncatedVersion2StateRejected) {
  DtdInferrer inferrer{InferenceOptions{}};
  Status status = inferrer.LoadState("condtd-state 2\nelement e 2 0\n");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("truncated"), std::string::npos)
      << status.ToString();
}

TEST(StatePersistence, RejectsNonNumericAndOverflowingCounts) {
  // Every count field goes through the strict parser; std::atoll/atoi
  // previously had undefined behavior on out-of-range input.
  const char* bad[] = {
      "condtd-state 2\nelement e 12x 0\nend\n",
      "condtd-state 2\nelement e -4 0\nend\n",
      "condtd-state 2\nroot r 99999999999999999999\nend\n",
      "condtd-state 2\nelement e 1 0\nsoa.state a 3000000000\nend\n",
      "condtd-state 2\nelement e 1 0\ncrx.hist 4 a=99999999999\nend\n",
  };
  for (const char* state : bad) {
    DtdInferrer inferrer{InferenceOptions{}};
    EXPECT_FALSE(inferrer.LoadState(state).ok()) << state;
  }
}

TEST(StatePersistence, DuplicateElementSectionsMerge) {
  SummaryStore store;
  Alphabet alphabet;
  ASSERT_TRUE(store
                  .Load("condtd-state 2\n"
                        "element e 3 0\n"
                        "element e 4 1\n"
                        "end\n",
                        &alphabet)
                  .ok());
  const ElementSummary* summary = store.Find(alphabet.Intern("e"));
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->occurrences, 7);
  EXPECT_TRUE(summary->has_text);
}

TEST(StatePersistence, ReservoirBeyondDeclaredBoundClampsAndOverflows) {
  SummaryLimits limits;
  limits.max_retained_words = 2;
  SummaryStore store(limits);
  Alphabet alphabet;
  ASSERT_TRUE(store
                  .Load("condtd-state 2\n"
                        "element e 4 0\n"
                        "word a\n"
                        "word b\n"
                        "word c\n"
                        "word d\n"
                        "end\n",
                        &alphabet)
                  .ok());
  const ElementSummary* summary = store.Find(alphabet.Intern("e"));
  ASSERT_NE(summary, nullptr);
  EXPECT_LE(static_cast<int>(summary->retained_words.size()),
            limits.max_retained_words);
  EXPECT_TRUE(summary->words_overflowed);
  EXPECT_NE(store.Save(alphabet).find("words.overflowed"),
            std::string::npos);
}

}  // namespace
}  // namespace condtd
