#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/soa.h"
#include "automaton/two_t_inf.h"
#include "base/rng.h"
#include "crx/crx.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "gen/xml_gen.h"
#include "infer/inferrer.h"
#include "infer/parallel.h"
#include "infer/streaming.h"
#include "tests/testing.h"
#include "xml/sax.h"

namespace condtd {
namespace {

using testing_util::WordsFromStrings;

// --- weighted fold algebra ------------------------------------------------

/// Structural equality plus every support count (Soa::Equals ignores
/// supports on purpose; these tests must not).
void ExpectSoaIdentical(const Soa& a, const Soa& b) {
  ASSERT_TRUE(a.Equals(b));
  EXPECT_EQ(a.empty_support(), b.empty_support());
  for (int q = 0; q < a.NumStates(); ++q) {
    int bq = b.StateOf(a.LabelOf(q));
    ASSERT_GE(bq, 0);
    EXPECT_EQ(a.StateSupport(q), b.StateSupport(bq));
    EXPECT_EQ(a.InitialSupport(q), b.InitialSupport(bq));
    EXPECT_EQ(a.FinalSupport(q), b.FinalSupport(bq));
    for (int to : a.Successors(q)) {
      EXPECT_EQ(a.EdgeSupport(q, to),
                b.EdgeSupport(bq, b.StateOf(a.LabelOf(to))));
    }
  }
}

void ExpectCrxIdentical(const CrxState& a, const CrxState& b) {
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.histograms(), b.histograms());
  EXPECT_EQ(a.empty_count(), b.empty_count());
  EXPECT_EQ(a.num_words(), b.num_words());
}

TEST(WeightedFold, Fold2TTimesKEqualsKFolds) {
  Alphabet alphabet;
  std::vector<Word> words =
      WordsFromStrings({"abc", "", "ab", "cba", "b", "aab"}, &alphabet);
  for (int k : {1, 2, 7, 100}) {
    Soa weighted;
    Soa repeated;
    for (const Word& word : words) {
      Fold2T(word, &weighted, k);
      for (int i = 0; i < k; ++i) Fold2T(word, &repeated);
    }
    ExpectSoaIdentical(weighted, repeated);
  }
}

TEST(WeightedFold, CrxAddWordTimesKEqualsKAdds) {
  Alphabet alphabet;
  std::vector<Word> words =
      WordsFromStrings({"aab", "", "ba", "ab", "c", "aab"}, &alphabet);
  for (int k : {1, 3, 50}) {
    CrxState weighted;
    CrxState repeated;
    for (const Word& word : words) {
      weighted.AddWord(word, k);
      for (int i = 0; i < k; ++i) repeated.AddWord(word);
    }
    ExpectCrxIdentical(weighted, repeated);
  }
}

TEST(WeightedFold, NonPositiveMultiplicityIsANoOp) {
  Alphabet alphabet;
  Word word = alphabet.WordFromChars("ab");
  Soa soa;
  Fold2T(word, &soa, 0);
  Fold2T(word, &soa, -3);
  EXPECT_EQ(soa.NumStates(), 0);
  CrxState crx;
  crx.AddWord(word, 0);
  crx.AddWord(word, -1);
  EXPECT_EQ(crx.num_words(), 0);
}

// --- corpus fixtures ------------------------------------------------------

std::vector<std::string> GenerateCorpus(int count, uint64_t seed) {
  Alphabet alphabet;
  Result<Dtd> truth = ParseDtd(
      "<!ELEMENT feed (entry+)>\n"
      "<!ELEMENT entry (title, updated?, (link | content)*, author)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT updated (#PCDATA)>\n"
      "<!ELEMENT link EMPTY>\n"
      "<!ELEMENT content (#PCDATA)>\n"
      "<!ELEMENT author (name, email?)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT email (#PCDATA)>\n",
      &alphabet);
  EXPECT_TRUE(truth.ok());
  Rng rng(seed);
  std::vector<std::string> documents;
  documents.reserve(count);
  for (int i = 0; i < count; ++i) {
    Result<XmlDocument> doc =
        GenerateDocument(truth.value(), alphabet, &rng);
    EXPECT_TRUE(doc.ok());
    documents.push_back(doc->ToXml());
  }
  return documents;
}

/// Strict documents exercising every lexical feature the SAX path must
/// reproduce: entities (named + numeric), CDATA, comments, PIs, DOCTYPE,
/// attributes (quoted both ways, entity-bearing, valueless), mixed text,
/// self-closing tags, deep nesting, repeated words for the dedup cache.
std::vector<std::string> HandwrittenStrictCorpus() {
  return {
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE feed [<!ELEMENT feed ANY>]>\n"
      "<feed><entry id=\"1\" lang='en'><title>A &amp; B &#65;</title>"
      "<author/></entry></feed>",
      "<feed><!-- comment --><entry id=\"2&amp;3\"><title><![CDATA[raw "
      "<markup>&amp; kept]]></title><author selected/></entry>"
      "<entry><title>plain</title><author/></entry></feed>",
      "<feed><?pi data?><entry><title>x</title>tail text"
      "<author/></entry></feed>",
      "<deep><a><b><c><d>leaf</d></c></b><a><b><c/></b></a></a></deep>",
      "<feed><entry><title>dup</title><author/></entry>"
      "<entry><title>dup</title><author/></entry>"
      "<entry><title>dup</title><author/></entry></feed>",
  };
}

/// Tag-soup documents for the lenient mode: mismatched end tags (auto-
/// close), stray end tags (dropped), unclosed elements (closed at EOF),
/// and content after the root (dropped without interning).
std::vector<std::string> TagSoupCorpus() {
  return {
      "<html><body><p>one<p>two</body></html>",
      "<html><body><b>bold</i></b></body>",
      "<html><body><p>unclosed",
      "<html><body/></html><junk>after</junk> trailing text",
      "<html></stray><body><p>ok</p></body></html>",
      "<html><head><title>t</title></head><body><p>a</p><p>b</body></html>",
  };
}

std::string DomDtd(const std::vector<std::string>& documents,
                   InferenceOptions options = {}) {
  DtdInferrer inferrer(options);
  for (const std::string& doc : documents) {
    Status status = inferrer.AddXml(doc);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

std::string StreamingDtd(const std::vector<std::string>& documents,
                         InferenceOptions options = {},
                         StreamingFolder::Options folder_options = {}) {
  DtdInferrer inferrer(options);
  StreamingFolder folder(&inferrer, folder_options);
  for (const std::string& doc : documents) {
    Status status = folder.AddXml(doc);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  folder.Flush();
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

std::string ParallelDtd(const std::vector<std::string>& documents,
                        int num_threads, InferenceOptions options = {}) {
  ParallelDtdInferrer inferrer(options, num_threads);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.merged()->alphabet());
}

/// The tentpole contract: DOM, streaming (dedup on and off, per-call and
/// corpus-level, tiny flush threshold), and the sharded parallel pipeline
/// at several job counts must all emit byte-identical DTDs.
void ExpectAllPathsIdentical(const std::vector<std::string>& documents,
                             InferenceOptions options = {}) {
  std::string expected = DomDtd(documents, options);
  EXPECT_EQ(StreamingDtd(documents, options), expected) << "streaming";
  StreamingFolder::Options no_dedup;
  no_dedup.dedup_words = false;
  EXPECT_EQ(StreamingDtd(documents, options, no_dedup), expected)
      << "streaming without dedup";
  StreamingFolder::Options tiny_cache;
  tiny_cache.max_distinct_words = 2;
  EXPECT_EQ(StreamingDtd(documents, options, tiny_cache), expected)
      << "streaming with per-document flushes";
  {
    DtdInferrer per_call(options);
    for (const std::string& doc : documents) {
      Status status = per_call.AddXmlStreaming(doc);
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
    Result<Dtd> dtd = per_call.InferDtd();
    ASSERT_TRUE(dtd.ok());
    EXPECT_EQ(WriteDtd(dtd.value(), *per_call.alphabet()), expected)
        << "AddXmlStreaming per call";
  }
  for (int jobs : {1, 2, 7}) {
    EXPECT_EQ(ParallelDtd(documents, jobs, options), expected)
        << "parallel streaming, " << jobs << " jobs";
    InferenceOptions dom_options = options;
    dom_options.streaming_ingest = false;
    EXPECT_EQ(ParallelDtd(documents, jobs, dom_options), expected)
        << "parallel DOM, " << jobs << " jobs";
  }
}

// --- differential: all ingestion paths agree ------------------------------

TEST(StreamingDifferential, GeneratedCorpus) {
  ExpectAllPathsIdentical(GenerateCorpus(240, 20060912));
}

TEST(StreamingDifferential, HandwrittenStrictCorpus) {
  ExpectAllPathsIdentical(HandwrittenStrictCorpus());
}

TEST(StreamingDifferential, LenientTagSoupCorpus) {
  InferenceOptions options;
  options.lenient_xml = true;
  ExpectAllPathsIdentical(TagSoupCorpus(), options);
}

TEST(StreamingDifferential, SummariesMatchExactly) {
  // Beyond the DTD: the retained per-element summaries themselves must
  // agree between the DOM and streaming paths (same SaveState text).
  std::vector<std::string> documents = HandwrittenStrictCorpus();
  DtdInferrer dom;
  DtdInferrer sax;
  for (const std::string& doc : documents) {
    ASSERT_TRUE(dom.AddXml(doc).ok());
    ASSERT_TRUE(sax.AddXmlStreaming(doc).ok());
  }
  EXPECT_EQ(dom.SaveState(), sax.SaveState());
}

// --- error parity and transactionality ------------------------------------

TEST(StreamingErrors, StrictErrorsMatchDomParser) {
  const std::vector<std::string> bad = {
      "<a><b></a>",                 // mismatched closing tag
      "<a></a></b>",                // stray closing tag
      "<a><b>",                     // unexpected end of document
      "",                           // no root element
      "<a/><b/>",                   // multiple roots
      "<a/>text after root",        // character data outside root
      "<a/><!DOCTYPE x>",           // DOCTYPE after the root
      "<a attr=unquoted/>",         // lexical error
      "<a><!-- unterminated",       // lexical error
  };
  for (const std::string& doc : bad) {
    DtdInferrer dom;
    DtdInferrer sax;
    Status dom_status = dom.AddXml(doc);
    Status sax_status = sax.AddXmlStreaming(doc);
    EXPECT_FALSE(dom_status.ok()) << doc;
    EXPECT_FALSE(sax_status.ok()) << doc;
    EXPECT_EQ(dom_status.ToString(), sax_status.ToString()) << doc;
  }
}

TEST(StreamingErrors, FailedDocumentContributesNoSummaries) {
  std::vector<std::string> documents = GenerateCorpus(20, 5);
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  int64_t failures = 0;
  for (size_t i = 0; i < documents.size(); ++i) {
    const std::string& doc =
        (i == 7) ? "<broken><unclosed></broken>"
                 : (i == 13 ? "not xml at all" : documents[i]);
    failures += folder.AddXml(doc).ok() ? 0 : 1;
  }
  folder.Flush();
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(folder.documents_folded(), 18);
  EXPECT_EQ(inferrer.WordCount(inferrer.alphabet()->Find("feed")), 18);
  // The partially-parsed <broken> document must not have left state.
  EXPECT_EQ(inferrer.WordCount(inferrer.alphabet()->Find("broken")), 0);
}

TEST(StreamingErrors, ParallelStreamingKeepsErrorReporting) {
  // The PR 1 error-reporting pin, now exercised through streaming shards.
  std::vector<std::string> documents = GenerateCorpus(20, 5);
  documents[7] = "<broken><unclosed></broken>";
  documents[13] = "not xml at all";
  ParallelDtdInferrer inferrer(InferenceOptions{}, 3);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Status status = inferrer.Finish();
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(inferrer.errors().size(), 2u);
  EXPECT_EQ(inferrer.errors()[0].doc_index, 7);
  EXPECT_EQ(inferrer.errors()[1].doc_index, 13);
  EXPECT_EQ(inferrer.merged()->WordCount(
                inferrer.merged()->alphabet()->Find("feed")),
            18);
}

// --- dedup accounting -----------------------------------------------------

TEST(StreamingDedup, RepeatedWordsFoldOnce) {
  // 50 identical documents: every (element, word) pair is cached once and
  // applied as a single weighted fold at Flush().
  std::vector<std::string> documents(
      50, "<feed><entry><title>t</title><author/></entry></feed>");
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  for (const std::string& doc : documents) {
    ASSERT_TRUE(folder.AddXml(doc).ok());
  }
  EXPECT_EQ(folder.documents_folded(), 50);
  EXPECT_EQ(folder.words_folded(), 50 * 4);
  EXPECT_EQ(folder.distinct_words_cached(), 4);  // feed, entry, title, author
  folder.Flush();
  EXPECT_EQ(folder.weighted_folds_applied(), 4);
  EXPECT_EQ(inferrer.WordCount(inferrer.alphabet()->Find("entry")), 50);
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(WriteDtd(dtd.value(), *inferrer.alphabet()),
            DomDtd(documents));
}

TEST(StreamingDedup, FlushIsIdempotent) {
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  ASSERT_TRUE(folder.AddXml("<a><b/><b/></a>").ok());
  folder.Flush();
  int64_t count = inferrer.WordCount(inferrer.alphabet()->Find("b"));
  folder.Flush();
  EXPECT_EQ(inferrer.WordCount(inferrer.alphabet()->Find("b")), count);
}

// --- SAX lexer surface ----------------------------------------------------

TEST(SaxLexer, EmitsDecodedTextAndAttributes) {
  SaxLexer lexer("<a x=\"1 &amp; 2\" y='&#65;' z>T &lt; U</a>");
  Result<SaxEvent> start = lexer.Next();
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(start->kind, SaxEventKind::kStartElement);
  EXPECT_EQ(start->name, "a");
  ASSERT_EQ(lexer.attributes().size(), 3u);
  EXPECT_EQ(lexer.attributes()[0].key, "x");
  EXPECT_EQ(lexer.attributes()[0].value, "1 & 2");
  EXPECT_EQ(lexer.attributes()[1].value, "A");
  EXPECT_EQ(lexer.attributes()[2].key, "z");
  EXPECT_EQ(lexer.attributes()[2].value, "");
  Result<SaxEvent> text = lexer.Next();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->kind, SaxEventKind::kText);
  EXPECT_EQ(text->text, "T < U");
  Result<SaxEvent> end = lexer.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end->kind, SaxEventKind::kEndElement);
  EXPECT_EQ(end->name, "a");
  EXPECT_EQ(lexer.Next()->kind, SaxEventKind::kEof);
}

TEST(SaxLexer, SkipsCommentsPIsAndWhitespaceRuns) {
  SaxLexer lexer("<a>\n  <!-- c --> <?pi?> <![CDATA[ ]]></a>");
  EXPECT_EQ(lexer.Next()->kind, SaxEventKind::kStartElement);
  EXPECT_EQ(lexer.Next()->kind, SaxEventKind::kEndElement);
  EXPECT_EQ(lexer.Next()->kind, SaxEventKind::kEof);
}

}  // namespace
}  // namespace condtd
