// The serve daemon: journal framing and torn-tail replay, crash
// recovery (snapshot + journal), the IngestSession consistency
// contract under concurrent readers and writers, registry hygiene, and
// the wire protocol end-to-end over a real socket.
//
// The load-bearing property throughout is the determinism contract:
// after any crash/replay or reader/writer interleaving, a QUERY answer
// must be byte-identical to a batch run over some prefix of the
// acknowledged document sequence — checked here by precomputing every
// prefix's reference output with the plain sequential engine and
// asserting set membership, which is much stronger than "looks like a
// DTD".

#include <arpa/inet.h>
#include <dirent.h>
#include <ftw.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/file.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "infer/inferrer.h"
#include "infer/session.h"
#include "infer/streaming.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/corpus.h"
#include "serve/journal.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace condtd {
namespace {

int RemoveEntry(const char* path, const struct stat*, int,
                struct FTW*) {
  return ::remove(path);
}

/// Self-cleaning temp dir for corpus data directories.
class TempDir {
 public:
  TempDir() {
    char buffer[] = "/tmp/condtd_serve_test_XXXXXX";
    EXPECT_NE(mkdtemp(buffer), nullptr);
    path_ = buffer;
  }
  ~TempDir() {
    ::nftw(path_.c_str(), RemoveEntry, 16, FTW_DEPTH | FTW_PHYS);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Distinct per-index documents, so every prefix of the sequence has a
/// distinct inference state.
std::string Doc(int index) {
  std::string xml = "<library>";
  for (int book = 0; book <= index % 5; ++book) {
    xml += "<book><title>t</title>";
    if ((index + book) % 2 == 0) xml += "<author>a</author>";
    xml += "</book>";
  }
  xml += "</library>";
  return xml;
}

/// Reference: the sequential engine's SaveState after folding
/// docs[0..prefix).
std::string PrefixState(const std::vector<std::string>& docs,
                        size_t prefix) {
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  for (size_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(folder.AddXml(docs[i]).ok());
  }
  folder.Flush();
  return inferrer.SaveState();
}

/// Sorted directory listing (regular entries only).
std::vector<std::string> ListDir(const std::string& path) {
  std::vector<std::string> names;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

/// Reference: the sequential engine's DTD text after folding
/// docs[0..prefix).
std::string PrefixDtd(const std::vector<std::string>& docs,
                      size_t prefix) {
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  for (size_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(folder.AddXml(docs[i]).ok());
  }
  folder.Flush();
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

// ---------------------------------------------------------------------
// Journal

TEST(Journal, AppendAndReplayRoundTrip) {
  TempDir dir;
  std::string path = dir.path() + "/journal.log";
  {
    Result<serve::Journal> journal =
        serve::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal->Append(0, "<a/>").ok());
    ASSERT_TRUE(journal->Append(1, "<b>with\nnewlines\n</b>").ok());
    ASSERT_TRUE(journal->Append(2, "").ok());  // empty doc is framed fine
  }
  std::vector<std::pair<int64_t, std::string>> seen;
  Result<serve::Journal::ReplayStats> stats = serve::Journal::Replay(
      path, [&seen](int64_t seq, std::string_view doc) {
        seen.emplace_back(seq, std::string(doc));
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 3);
  EXPECT_EQ(stats->torn_tail_bytes, 0);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<int64_t, std::string>{0, "<a/>"}));
  EXPECT_EQ(seen[1].second, "<b>with\nnewlines\n</b>");
  EXPECT_EQ(seen[2].second, "");
}

TEST(Journal, MissingFileReplaysNothing) {
  TempDir dir;
  Result<serve::Journal::ReplayStats> stats = serve::Journal::Replay(
      dir.path() + "/nope.log",
      [](int64_t, std::string_view) { return Status::OK(); });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 0);
}

TEST(Journal, TornTailIsDiscarded) {
  TempDir dir;
  std::string path = dir.path() + "/journal.log";
  {
    Result<serve::Journal> journal =
        serve::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(0, "<a/>").ok());
    ASSERT_TRUE(journal->Append(1, "<b/>").ok());
  }
  // A crash mid-append leaves a record whose announced length exceeds
  // the bytes actually on disk.
  Result<std::string> intact = ReadFileToString(path);
  ASSERT_TRUE(intact.ok());
  for (const std::string torn :
       {std::string("doc 2 4000\n<c/"), std::string("doc 2 "),
        std::string("garbage that is not a header\n")}) {
    ASSERT_TRUE(WriteStringToFile(path, *intact + torn).ok());
    int64_t records = 0;
    Result<serve::Journal::ReplayStats> stats = serve::Journal::Replay(
        path, [&records](int64_t, std::string_view) {
          ++records;
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(records, 2) << "torn tail: " << torn;
    EXPECT_EQ(stats->torn_tail_bytes,
              static_cast<int64_t>(torn.size()));
  }
}

// ---------------------------------------------------------------------
// IngestSession: concurrent snapshot consistency (the serve analogue of
// "concurrent SaveState while ingestion is in flight").

TEST(IngestSession, ConcurrentSnapshotsAreAlwaysAPrefixState) {
  constexpr int kDocs = 24;
  std::vector<std::string> docs;
  for (int i = 0; i < kDocs; ++i) docs.push_back(Doc(i));

  // Reference states for every prefix, computed sequentially.
  std::set<std::string> prefix_states;
  for (size_t prefix = 0; prefix <= docs.size(); ++prefix) {
    prefix_states.insert(PrefixState(docs, prefix));
  }

  IngestSession session{InferenceOptions{}};
  std::vector<std::string> snapshots;
  std::vector<int64_t> epochs;
  std::thread reader([&session, &snapshots, &epochs] {
    for (int i = 0; i < 50; ++i) {
      std::string state;
      int64_t epoch = 0;
      session.Snapshot(&state, &epoch);
      snapshots.push_back(std::move(state));
      epochs.push_back(epoch);
    }
  });
  for (const std::string& doc : docs) {
    ASSERT_TRUE(session.Ingest(doc).ok());
  }
  reader.join();

  // Every snapshot taken mid-ingest equals the sequential SaveState of
  // SOME prefix — never a torn intermediate.
  for (const std::string& snapshot : snapshots) {
    EXPECT_TRUE(prefix_states.count(snapshot) > 0)
        << "snapshot is not any prefix state";
  }
  // Epochs are monotone in snapshot order (reader is one thread).
  for (size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_LE(epochs[i - 1], epochs[i]);
  }
  // The final state is the full corpus.
  std::string final_state;
  session.Snapshot(&final_state, nullptr);
  EXPECT_EQ(final_state, PrefixState(docs, docs.size()));
  EXPECT_EQ(session.documents(), kDocs);
}

TEST(IngestSession, FailedDocumentContributesNothing) {
  IngestSession session{InferenceOptions{}};
  ASSERT_TRUE(session.Ingest(Doc(0)).ok());
  std::string before;
  session.Snapshot(&before, nullptr);
  int64_t epoch_before = session.epoch();

  EXPECT_FALSE(session.Ingest("<broken><unclosed>").ok());
  std::string after;
  session.Snapshot(&after, nullptr);
  EXPECT_EQ(before, after);
  EXPECT_EQ(session.epoch(), epoch_before);
  EXPECT_EQ(session.failed_documents(), 1);
}

TEST(IngestSession, ApproxBytesGrowsWithRetainedState) {
  IngestSession session{InferenceOptions{}};
  size_t empty = session.ApproxBytes();
  ASSERT_TRUE(session.Ingest(Doc(0)).ok());
  size_t one = session.ApproxBytes();
  for (int i = 1; i < 10; ++i) {
    ASSERT_TRUE(session.Ingest(Doc(i)).ok());
  }
  size_t ten = session.ApproxBytes();
  EXPECT_LT(empty, one);
  EXPECT_LT(one, ten);
}

// ---------------------------------------------------------------------
// Corpus durability

TEST(Corpus, RecoversFromJournalAloneAfterCrash) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;  // in-process "crash" keeps the bytes

  std::vector<std::string> docs;
  for (int i = 0; i < 6; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
    // No snapshot, no clean shutdown: the object is dropped with only
    // the journal on disk — exactly the kill -9 disk image.
  }

  Result<std::unique_ptr<serve::Corpus>> recovered =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Result<std::string> dtd = (*recovered)->Query("", /*xsd=*/false);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
  EXPECT_EQ((*recovered)->GetStats().replayed_documents, 6);
}

TEST(Corpus, RecoversFromSnapshotPlusJournal) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;

  std::vector<std::string> docs;
  for (int i = 0; i < 8; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*corpus)->Ingest(docs[i]).ok());
    }
    ASSERT_TRUE((*corpus)->WriteSnapshot().ok());
    for (int i = 5; i < 8; ++i) {
      ASSERT_TRUE((*corpus)->Ingest(docs[i]).ok());
    }
  }

  Result<std::unique_ptr<serve::Corpus>> recovered =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  serve::CorpusStats stats = (*recovered)->GetStats();
  EXPECT_EQ(stats.generation, 1);
  EXPECT_EQ(stats.replayed_documents, 3);  // only the post-snapshot tail

  Result<std::string> dtd = (*recovered)->Query("", /*xsd=*/false);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

TEST(Corpus, TornJournalTailRecoversAcknowledgedPrefix) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;

  std::vector<std::string> docs;
  for (int i = 0; i < 4; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok());
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
  }
  // Crash mid-append of a 5th document: header + half the payload.
  std::string journal = dir.path() + "/lib/journal-0.log";
  Result<std::string> intact = ReadFileToString(journal);
  ASSERT_TRUE(intact.ok());
  ASSERT_TRUE(
      WriteStringToFile(journal, *intact + "doc 4 64\n<library><bo").ok());

  Result<std::unique_ptr<serve::Corpus>> recovered =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Result<std::string> dtd = (*recovered)->Query("", /*xsd=*/false);
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

TEST(Corpus, QueriesDuringIngestionAnswerForAConsistentPrefix) {
  constexpr int kDocs = 16;
  std::vector<std::string> docs;
  for (int i = 0; i < kDocs; ++i) docs.push_back(Doc(i));

  std::set<std::string> prefix_dtds;
  for (size_t prefix = 1; prefix <= docs.size(); ++prefix) {
    prefix_dtds.insert(PrefixDtd(docs, prefix));
  }

  serve::Corpus::Options options;  // ephemeral: no data_dir
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Ingest(docs[0]).ok());  // never query empty

  std::vector<std::string> answers;
  std::thread reader([&corpus, &answers] {
    for (int i = 0; i < 40; ++i) {
      Result<std::string> dtd = (*corpus)->Query("", /*xsd=*/false);
      ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
      answers.push_back(std::move(*dtd));
    }
  });
  for (int i = 1; i < kDocs; ++i) {
    ASSERT_TRUE((*corpus)->Ingest(docs[i]).ok());
  }
  reader.join();

  for (const std::string& answer : answers) {
    // Byte-identical to the sequential answer for SOME prefix of the
    // acknowledged sequence: the concurrent reader can never observe a
    // half-folded document.
    EXPECT_TRUE(prefix_dtds.count(answer) > 0)
        << "query answered for a non-prefix state:\n"
        << answer;
    // And it is well-formed DTD text.
    Alphabet alphabet;
    EXPECT_TRUE(ParseDtd(answer, &alphabet).ok());
  }
  Result<std::string> final_dtd = (*corpus)->Query("", /*xsd=*/false);
  ASSERT_TRUE(final_dtd.ok());
  EXPECT_EQ(*final_dtd, PrefixDtd(docs, docs.size()));
}

TEST(Corpus, QueryCacheHitsOnlyWhenUnchanged) {
  serve::Corpus::Options options;
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Ingest(Doc(0)).ok());

  Result<std::string> first = (*corpus)->Query("", false);
  Result<std::string> second = (*corpus)->Query("", false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ((*corpus)->GetStats().query_cache_hits, 1);

  ASSERT_TRUE((*corpus)->Ingest(Doc(1)).ok());
  Result<std::string> third = (*corpus)->Query("", false);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*corpus)->GetStats().query_cache_hits, 1);  // invalidated
  EXPECT_NE(*first, *third);
}

TEST(Corpus, MemoryCapRefusesFurtherIngestion) {
  serve::Corpus::Options options;
  options.max_corpus_bytes = 1;  // below even an empty session
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  Status refused = (*corpus)->Ingest(Doc(0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);

  serve::Corpus::Options roomy;
  roomy.max_corpus_bytes = 64 << 20;
  Result<std::unique_ptr<serve::Corpus>> ok_corpus =
      serve::Corpus::Open("lib2", roomy);
  ASSERT_TRUE(ok_corpus.ok());
  EXPECT_TRUE((*ok_corpus)->Ingest(Doc(0)).ok());
}

TEST(Corpus, XsdQueryAndAlgorithmOverride) {
  serve::Corpus::Options options;
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Ingest(Doc(3)).ok());

  Result<std::string> xsd = (*corpus)->Query("", /*xsd=*/true);
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  EXPECT_NE(xsd->find("schema"), std::string::npos);

  Result<std::string> crx = (*corpus)->Query("crx", /*xsd=*/false);
  ASSERT_TRUE(crx.ok()) << crx.status().ToString();

  Result<std::string> bogus = (*corpus)->Query("nonsense", false);
  EXPECT_FALSE(bogus.ok());
}

// ---------------------------------------------------------------------
// Registry

TEST(CorpusRegistry, ValidatesIdsAndDistinguishesGetFromCreate) {
  serve::CorpusRegistry registry{serve::Corpus::Options{}};
  for (const char* bad :
       {"", ".", "..", "a/b", "a b", "a\nb", "../../etc/passwd"}) {
    EXPECT_FALSE(serve::CorpusRegistry::ValidCorpusId(bad)) << bad;
    EXPECT_FALSE(registry.GetOrCreate(bad).ok()) << bad;
  }
  EXPECT_FALSE(
      serve::CorpusRegistry::ValidCorpusId(std::string(129, 'a')));

  EXPECT_FALSE(registry.Get("lib").ok());  // NotFound before creation
  EXPECT_EQ(registry.Get("lib").status().code(), StatusCode::kNotFound);

  Result<std::shared_ptr<serve::Corpus>> created = registry.GetOrCreate("lib");
  ASSERT_TRUE(created.ok());
  Result<std::shared_ptr<serve::Corpus>> again = registry.GetOrCreate("lib");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*created, *again);  // same live instance
  EXPECT_EQ(registry.List().size(), 1u);
}

TEST(CorpusRegistry, RecoverAllReopensPersistedCorpora) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;
  {
    serve::CorpusRegistry registry{options};
    Result<std::shared_ptr<serve::Corpus>> a = registry.GetOrCreate("alpha");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE((*a)->Ingest(Doc(0)).ok());
    Result<std::shared_ptr<serve::Corpus>> b = registry.GetOrCreate("beta");
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*b)->Ingest(Doc(1)).ok());
  }
  serve::CorpusRegistry registry{options};
  ASSERT_TRUE(registry.RecoverAll().ok());
  ASSERT_EQ(registry.List().size(), 2u);
  EXPECT_TRUE(registry.Get("alpha").ok());
  EXPECT_TRUE(registry.Get("beta").ok());
}

TEST(Corpus, SizeTriggeredCompactionBoundsJournalAndCollectsOldGens) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;
  options.compact_journal_bytes = 200;  // a couple of Doc() records

  std::vector<std::string> docs;
  for (int i = 0; i < 12; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
    serve::CorpusStats stats = (*corpus)->GetStats();
    EXPECT_GT(stats.compactions, 0) << "journal never hit the size trigger";
    EXPECT_EQ(stats.snapshots, stats.compactions);
    EXPECT_GT(stats.generation, 0);
    // The live journal holds at most the documents since the last
    // rotation: one record past the threshold plus the one that
    // triggered the check.
    EXPECT_LE(stats.journal_bytes,
              options.compact_journal_bytes + 512);

    // Old generations are garbage-collected at rotation: the directory
    // holds exactly the live pair plus CURRENT.
    std::string generation = std::to_string(stats.generation);
    std::vector<std::string> expect = {
        "CURRENT", "journal-" + generation + ".log",
        "snapshot-" + generation + ".state"};
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(ListDir(dir.path() + "/lib"), expect);
  }

  // Replay after close: snapshot + short journal reproduce the batch
  // answer byte-identically.
  Result<std::unique_ptr<serve::Corpus>> reopened =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Result<std::string> dtd = (*reopened)->Query("", false);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
  // What compaction buys: replay touches only the live journal's few
  // records, not all 12 documents.
  EXPECT_LT((*reopened)->GetStats().replayed_documents,
            static_cast<int64_t>(docs.size()));
}

TEST(Corpus, OpenCollectsOrphanGenerationsAndTmpFiles) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;

  std::vector<std::string> docs = {Doc(0), Doc(1), Doc(2)};
  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok());
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
    ASSERT_TRUE((*corpus)->WriteSnapshot().ok());  // live generation: 1
  }

  // A crash between the CURRENT rename and the old-generation unlink
  // leaves unreachable generation files and staging temps behind.
  for (const char* orphan : {"snapshot-99.state", "journal-99.log",
                             "snapshot-0.state.tmp"}) {
    std::FILE* file =
        std::fopen((dir.path() + "/lib/" + orphan).c_str(), "w");
    ASSERT_NE(file, nullptr);
    std::fputs("junk", file);
    std::fclose(file);
  }

  Result<std::unique_ptr<serve::Corpus>> reopened =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<std::string> expect = {"CURRENT", "journal-1.log",
                                     "snapshot-1.state"};
  EXPECT_EQ(ListDir(dir.path() + "/lib"), expect);
  Result<std::string> dtd = (*reopened)->Query("", false);
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

// ---------------------------------------------------------------------
// Registry eviction / TTL

TEST(CorpusRegistry, TtlEvictionIsInvisibleToClients) {
  TempDir dir;
  int64_t now_ns = 0;
  serve::CorpusRegistry::Options options;
  options.corpus.data_dir = dir.path();
  options.corpus.fsync_journal = false;
  options.corpus_ttl_seconds = 60;
  options.clock_ns = [&now_ns] { return now_ns; };
  serve::CorpusRegistry registry(options);

  std::vector<std::string> docs;
  for (int i = 0; i < 4; ++i) docs.push_back(Doc(i));

  int64_t epoch_before = 0;
  std::string dtd_before;
  {
    Result<std::shared_ptr<serve::Corpus>> corpus =
        registry.GetOrCreate("lib");
    ASSERT_TRUE(corpus.ok());
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
    Result<std::string> dtd = (*corpus)->Query("", false);
    ASSERT_TRUE(dtd.ok());
    dtd_before = *dtd;
    epoch_before = (*corpus)->epoch();
  }  // drop the handle: the corpus is now unpinned

  // Fresh corpora survive a sweep.
  now_ns += int64_t{59} * 1000000000;
  EXPECT_EQ(registry.SweepNow(), 0);
  ASSERT_EQ(registry.List().size(), 1u);

  // Past the TTL the corpus is snapshotted and closed.
  now_ns += int64_t{2} * 1000000000;
  EXPECT_EQ(registry.SweepNow(), 1);
  EXPECT_TRUE(registry.List().empty());

  // ... but not deleted: the next Get transparently re-opens it with a
  // byte-identical answer and monotone counters.
  Result<std::shared_ptr<serve::Corpus>> again = registry.Get("lib");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  Result<std::string> dtd_after = (*again)->Query("", false);
  ASSERT_TRUE(dtd_after.ok());
  EXPECT_EQ(*dtd_after, dtd_before);
  EXPECT_EQ(*dtd_after, PrefixDtd(docs, docs.size()));
  serve::CorpusStats stats = (*again)->GetStats();
  EXPECT_EQ(stats.documents, static_cast<int64_t>(docs.size()));
  EXPECT_GE((*again)->epoch(), epoch_before);

  // The ack counters keep counting up from where they left off.
  ASSERT_TRUE((*again)->Ingest(Doc(9)).ok());
  EXPECT_EQ((*again)->GetStats().documents,
            static_cast<int64_t>(docs.size()) + 1);
}

TEST(CorpusRegistry, SweepSkipsPinnedCorpora) {
  TempDir dir;
  int64_t now_ns = 0;
  serve::CorpusRegistry::Options options;
  options.corpus.data_dir = dir.path();
  options.corpus.fsync_journal = false;
  options.corpus_ttl_seconds = 1;
  options.clock_ns = [&now_ns] { return now_ns; };
  serve::CorpusRegistry registry(options);

  Result<std::shared_ptr<serve::Corpus>> pinned =
      registry.GetOrCreate("lib");
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE((*pinned)->Ingest(Doc(0)).ok());

  // Idle far past the TTL, but a request still holds the handle: the
  // sweeper must not close a corpus out from under it.
  now_ns += int64_t{3600} * 1000000000;
  EXPECT_EQ(registry.SweepNow(), 0);
  ASSERT_EQ(registry.List().size(), 1u);

  pinned->reset();
  EXPECT_EQ(registry.SweepNow(), 1);
  EXPECT_TRUE(registry.List().empty());
}

TEST(CorpusRegistry, MaxCorporaEvictsLeastRecentlyTouched) {
  TempDir dir;
  int64_t now_ns = 0;
  serve::CorpusRegistry::Options options;
  options.corpus.data_dir = dir.path();
  options.corpus.fsync_journal = false;
  options.max_corpora = 2;
  options.clock_ns = [&now_ns] { return now_ns; };
  serve::CorpusRegistry registry(options);

  auto create_and_release = [&](const std::string& id) {
    now_ns += 1000000000;
    Result<std::shared_ptr<serve::Corpus>> corpus =
        registry.GetOrCreate(id);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    ASSERT_TRUE((*corpus)->Ingest(Doc(0)).ok());
  };
  create_and_release("aa");
  create_and_release("bb");
  now_ns += 1000000000;
  ASSERT_TRUE(registry.Get("aa").ok());  // "bb" is now the LRU tenant

  create_and_release("cc");  // over the cap: evicts "bb" at creation
  std::vector<std::string> open;
  for (const std::shared_ptr<serve::Corpus>& corpus : registry.List()) {
    open.push_back(corpus->id());
  }
  EXPECT_EQ(open, (std::vector<std::string>{"aa", "cc"}));

  // The evicted tenant is still reachable (transparent reopen), and a
  // sweep re-establishes the cap afterwards.
  ASSERT_TRUE(registry.Get("bb").ok());
  ASSERT_EQ(registry.List().size(), 3u);
  EXPECT_EQ(registry.SweepNow(), 1);
  EXPECT_EQ(registry.List().size(), 2u);
}

TEST(CorpusRegistry, EphemeralCapRefusesInsteadOfEvicting) {
  serve::CorpusRegistry::Options options;  // no data_dir: nothing durable
  options.max_corpora = 1;
  serve::CorpusRegistry registry(options);

  Result<std::shared_ptr<serve::Corpus>> first =
      registry.GetOrCreate("aa");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->Ingest(Doc(0)).ok());

  // Evicting an ephemeral corpus would silently drop acknowledged
  // documents, so the cap refuses new tenants instead.
  Result<std::shared_ptr<serve::Corpus>> second =
      registry.GetOrCreate("bb");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  // The resident tenant is untouched.
  EXPECT_TRUE(registry.GetOrCreate("aa").ok());
  EXPECT_EQ(registry.List().size(), 1u);
  EXPECT_EQ(registry.SweepNow(), 0);
}

// ---------------------------------------------------------------------
// Server + Client over a real unix socket

class ServeEndToEnd : public ::testing::Test {
 protected:
  void StartServer(serve::ServerOptions options) {
    options.unix_socket = socket_path();
    server_.emplace(std::move(options));
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }
  serve::Client Connect() {
    Result<serve::Client> client =
        serve::Client::ConnectUnix(socket_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }
  std::string socket_path() const { return dir_.path() + "/condtd.sock"; }
  void TearDown() override {
    if (server_) server_->Stop();
  }

  TempDir dir_;
  std::optional<serve::Server> server_;
};

TEST_F(ServeEndToEnd, ProtocolRoundTrip) {
  serve::ServerOptions options;
  options.workers = 2;
  options.corpus.data_dir = dir_.path() + "/data";
  options.corpus.fsync_journal = false;
  StartServer(std::move(options));

  serve::Client client = Connect();
  Result<std::string> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "pong");

  std::vector<std::string> docs;
  for (int i = 0; i < 5; ++i) docs.push_back(Doc(i));
  for (const std::string& doc : docs) {
    Result<std::string> ack = client.IngestInline("lib", doc);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  }

  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));

  Result<std::string> xsd = client.Query("lib", "", /*xsd=*/true);
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  EXPECT_NE(xsd->find("schema"), std::string::npos);

  Result<std::string> snap = client.Snapshot("lib");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_NE(snap->find("generation=1"), std::string::npos);

  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* key :
       {"\"condtd_serve_stats_version\": 1", "\"lib\"",
        "\"documents_ingested\": 5", "\"condtd_corpus_bytes\"",
        "\"ingest_latency\"", "\"query_latency\"", "\"process\"",
        "\"condtd_stats_version\": 1"}) {
    EXPECT_NE(stats->find(key), std::string::npos)
        << key << "\n" << *stats;
  }

  Result<std::string> bye = client.Shutdown();
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  server_->Wait();
  server_.reset();
}

TEST_F(ServeEndToEnd, ErrorsComeBackWithCodes) {
  serve::ServerOptions options;  // ephemeral corpora
  StartServer(std::move(options));
  serve::Client client = Connect();

  // Unknown command.
  Result<std::string> unknown = client.Roundtrip("FROBNICATE");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  // QUERY against a corpus that never ingested.
  Result<std::string> missing = client.Query("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Invalid corpus id.
  Result<std::string> bad_id = client.IngestInline("a/b", "<x/>");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.status().code(), StatusCode::kInvalidArgument);

  // A malformed document reports the parse error; the connection (and
  // the corpus) survive it.
  Result<std::string> bad_doc =
      client.IngestInline("lib", "<broken><unclosed>");
  ASSERT_FALSE(bad_doc.ok());
  EXPECT_EQ(bad_doc.status().code(), StatusCode::kParseError);
  Result<std::string> good_doc = client.IngestInline("lib", Doc(0));
  ASSERT_TRUE(good_doc.ok()) << good_doc.status().ToString();
  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok());
  std::vector<std::string> docs = {Doc(0)};
  EXPECT_EQ(*dtd, PrefixDtd(docs, 1));
}

TEST_F(ServeEndToEnd, ConcurrentClientsOnDistinctCorpora) {
  serve::ServerOptions options;
  options.workers = 4;
  StartServer(std::move(options));

  constexpr int kClients = 4;
  constexpr int kDocsPerClient = 8;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c] {
      serve::Client client = Connect();
      std::string corpus = "tenant" + std::to_string(c);
      for (int i = 0; i < kDocsPerClient; ++i) {
        Result<std::string> ack =
            client.IngestInline(corpus, Doc((c + i) % 7));
        ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      }
      Result<std::string> dtd = client.Query(corpus);
      ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Each tenant's answer equals a fresh batch run over its own docs —
  // tenants are fully isolated.
  serve::Client client = Connect();
  for (int c = 0; c < kClients; ++c) {
    std::vector<std::string> docs;
    for (int i = 0; i < kDocsPerClient; ++i) {
      docs.push_back(Doc((c + i) % 7));
    }
    Result<std::string> dtd =
        client.Query("tenant" + std::to_string(c));
    ASSERT_TRUE(dtd.ok());
    EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
  }
}

TEST_F(ServeEndToEnd, RestartAfterUncleanStopServesRecoveredCorpora) {
  serve::ServerOptions options;
  options.corpus.data_dir = dir_.path() + "/data";
  options.corpus.fsync_journal = false;
  std::vector<std::string> docs;
  for (int i = 0; i < 5; ++i) docs.push_back(Doc(i));

  StartServer(options);
  {
    serve::Client client = Connect();
    for (const std::string& doc : docs) {
      ASSERT_TRUE(client.IngestInline("lib", doc).ok());
    }
  }
  // Stop without SNAPSHOT or SHUTDOWN bookkeeping: state must come back
  // from the journal alone.
  server_->Stop();
  server_.reset();

  StartServer(options);
  serve::Client client = Connect();
  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

// ---------------------------------------------------------------------
// Wire-protocol input validation

TEST_F(ServeEndToEnd, RejectsMalformedInlineLengths) {
  StartServer(serve::ServerOptions{});  // ephemeral corpora
  serve::Client client = Connect();

  // "-1" used to wrap through strtoull to ULLONG_MAX; every entry here
  // must be rejected before any payload byte is read or allocated.
  for (const char* bad : {"-1", "0", "-9223372036854775808",
                          "99999999999999999999", "12x", "+5", "0x10"}) {
    Result<std::string> rejected =
        client.Roundtrip(std::string("INGEST lib INLINE ") + bad);
    ASSERT_FALSE(rejected.ok()) << bad;
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument)
        << bad;
    // The connection stays framed and usable after each rejection.
    Result<std::string> pong = client.Ping();
    ASSERT_TRUE(pong.ok()) << bad << ": " << pong.status().ToString();
  }
}

TEST_F(ServeEndToEnd, OversizedInlineIsDrainedNotBuffered) {
  serve::ServerOptions options;
  options.max_inline_bytes = 1024;
  StartServer(std::move(options));
  serve::Client client = Connect();

  // The announced payload exceeds the cap: the server must reject it,
  // drain it in bounded chunks, and keep the connection framed.
  std::string payload(4096, 'x');
  Result<std::string> rejected =
      client.Roundtrip("INGEST lib INLINE 4096\n" + payload);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("max-inline-bytes"),
            std::string::npos)
      << rejected.status().ToString();
  Result<std::string> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();

  // Same framing rule when the corpus id (not the size) is at fault.
  Result<std::string> bad_id =
      client.Roundtrip("INGEST bad/id INLINE 5\nhello");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.Ping().ok());

  // At the cap is still fine.
  ASSERT_TRUE(client.IngestInline("lib", Doc(0)).ok());
}

TEST_F(ServeEndToEnd, PathIngestSurvivesRepeatedSpaces) {
  StartServer(serve::ServerOptions{});
  serve::Client client = Connect();

  std::vector<std::string> docs = {Doc(0), Doc(1)};
  // A filename with an interior space, referenced through a command
  // line with collapsed-looking space runs between the tokens.
  std::string path = dir_.path() + "/doc one.xml";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs(docs[0].c_str(), file);
  std::fclose(file);

  Result<std::string> spaced =
      client.Roundtrip("INGEST  lib  PATH  " + path);
  ASSERT_TRUE(spaced.ok()) << spaced.status().ToString();
  ASSERT_TRUE(client.IngestInline("lib", docs[1]).ok());

  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));

  // Still an error when the path is genuinely missing.
  Result<std::string> empty = client.Roundtrip("INGEST lib PATH   ");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// HTTP front-end

/// One blocking HTTP exchange against 127.0.0.1:port; returns the raw
/// response (status line, headers, body).
std::string HttpRequest(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // Connection: close terminates the response
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ServeEndToEnd, HttpMetricsAndHealthEndpoints) {
  // The process-level families carry live values only when the obs
  // registry is collecting (the CLI always enables it for serve).
  obs::EnableStats(true);
  obs::ResetStats();
  serve::ServerOptions options;
  options.http_port = 0;  // ephemeral; read back below
  options.corpus.data_dir = dir_.path() + "/data";
  options.corpus.fsync_journal = false;
  StartServer(std::move(options));
  ASSERT_GT(server_->http_port(), 0);
  int port = server_->http_port();

  serve::Client client = Connect();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.IngestInline("lib", Doc(i)).ok());
  }
  ASSERT_TRUE(client.Query("lib").ok());

  std::string health =
      HttpRequest(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos) << health;

  std::string metrics =
      HttpRequest(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << metrics.substr(0, 200);
  // Structural invariants of the exposition format: HELP/TYPE headers,
  // _total-suffixed counters, labelled samples, cumulative buckets
  // ending at +Inf with matching _sum/_count.
  for (const char* needle :
       {"# HELP condtd_corpora_open ", "# TYPE condtd_corpora_open gauge",
        "condtd_corpora_open 1",
        "# TYPE condtd_corpus_documents_total counter",
        "condtd_corpus_documents_total{corpus=\"lib\"} 3",
        "# TYPE condtd_corpus_ingest_latency_seconds histogram",
        "condtd_corpus_ingest_latency_seconds_bucket{corpus=\"lib\","
        "le=\"+Inf\"} 3",
        "condtd_corpus_ingest_latency_seconds_count{corpus=\"lib\"} 3",
        "condtd_corpus_ingest_latency_seconds_sum{corpus=\"lib\"} ",
        "condtd_corpus_queries_total{corpus=\"lib\"} 1",
        "# TYPE condtd_process_serve_ingest_requests_total counter",
        "condtd_process_serve_ingest_requests_total 3",
        "condtd_process_http_requests_total "}) {
    EXPECT_NE(metrics.find(needle), std::string::npos) << needle;
  }

  std::string missing =
      HttpRequest(port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  std::string posted =
      HttpRequest(port, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(posted.find("HTTP/1.1 405"), std::string::npos);

  // The wire protocol is untouched by HTTP traffic.
  EXPECT_TRUE(client.Ping().ok());
  server_->Stop();
  server_.reset();
  obs::EnableStats(false);
}

// ---------------------------------------------------------------------
// Daemon-level eviction

TEST_F(ServeEndToEnd, EvictionIsInvisibleOverTheWire) {
  auto now_ns = std::make_shared<std::atomic<int64_t>>(0);
  serve::ServerOptions options;
  options.corpus.data_dir = dir_.path() + "/data";
  options.corpus.fsync_journal = false;
  options.corpus_ttl_seconds = 60;
  options.clock_ns = [now_ns] { return now_ns->load(); };
  StartServer(std::move(options));
  serve::Client client = Connect();

  std::vector<std::string> docs;
  for (int i = 0; i < 4; ++i) docs.push_back(Doc(i));
  for (const std::string& doc : docs) {
    ASSERT_TRUE(client.IngestInline("lib", doc).ok());
  }
  Result<std::string> before = client.Query("lib");
  ASSERT_TRUE(before.ok());

  now_ns->fetch_add(int64_t{61} * 1000000000);
  ASSERT_EQ(server_->registry()->SweepNow(), 1);
  {
    // The evicted corpus no longer renders in STATS...
    Result<std::string> stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->find("\"lib\""), std::string::npos);
  }

  // ... but QUERY transparently re-opens it, byte-identical, and the
  // ack counters continue from where they left off.
  Result<std::string> after = client.Query("lib");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, *before);
  EXPECT_EQ(*after, PrefixDtd(docs, docs.size()));

  Result<std::string> ack = client.IngestInline("lib", Doc(7));
  ASSERT_TRUE(ack.ok());
  EXPECT_NE(ack->find("documents=5"), std::string::npos) << *ack;
}

}  // namespace
}  // namespace condtd
