// The serve daemon: journal framing and torn-tail replay, crash
// recovery (snapshot + journal), the IngestSession consistency
// contract under concurrent readers and writers, registry hygiene, and
// the wire protocol end-to-end over a real socket.
//
// The load-bearing property throughout is the determinism contract:
// after any crash/replay or reader/writer interleaving, a QUERY answer
// must be byte-identical to a batch run over some prefix of the
// acknowledged document sequence — checked here by precomputing every
// prefix's reference output with the plain sequential engine and
// asserting set membership, which is much stronger than "looks like a
// DTD".

#include <ftw.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/file.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "infer/inferrer.h"
#include "infer/session.h"
#include "infer/streaming.h"
#include "serve/client.h"
#include "serve/corpus.h"
#include "serve/journal.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace condtd {
namespace {

int RemoveEntry(const char* path, const struct stat*, int,
                struct FTW*) {
  return ::remove(path);
}

/// Self-cleaning temp dir for corpus data directories.
class TempDir {
 public:
  TempDir() {
    char buffer[] = "/tmp/condtd_serve_test_XXXXXX";
    EXPECT_NE(mkdtemp(buffer), nullptr);
    path_ = buffer;
  }
  ~TempDir() {
    ::nftw(path_.c_str(), RemoveEntry, 16, FTW_DEPTH | FTW_PHYS);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Distinct per-index documents, so every prefix of the sequence has a
/// distinct inference state.
std::string Doc(int index) {
  std::string xml = "<library>";
  for (int book = 0; book <= index % 5; ++book) {
    xml += "<book><title>t</title>";
    if ((index + book) % 2 == 0) xml += "<author>a</author>";
    xml += "</book>";
  }
  xml += "</library>";
  return xml;
}

/// Reference: the sequential engine's SaveState after folding
/// docs[0..prefix).
std::string PrefixState(const std::vector<std::string>& docs,
                        size_t prefix) {
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  for (size_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(folder.AddXml(docs[i]).ok());
  }
  folder.Flush();
  return inferrer.SaveState();
}

/// Reference: the sequential engine's DTD text after folding
/// docs[0..prefix).
std::string PrefixDtd(const std::vector<std::string>& docs,
                      size_t prefix) {
  DtdInferrer inferrer;
  StreamingFolder folder(&inferrer);
  for (size_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(folder.AddXml(docs[i]).ok());
  }
  folder.Flush();
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

// ---------------------------------------------------------------------
// Journal

TEST(Journal, AppendAndReplayRoundTrip) {
  TempDir dir;
  std::string path = dir.path() + "/journal.log";
  {
    Result<serve::Journal> journal =
        serve::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal->Append(0, "<a/>").ok());
    ASSERT_TRUE(journal->Append(1, "<b>with\nnewlines\n</b>").ok());
    ASSERT_TRUE(journal->Append(2, "").ok());  // empty doc is framed fine
  }
  std::vector<std::pair<int64_t, std::string>> seen;
  Result<serve::Journal::ReplayStats> stats = serve::Journal::Replay(
      path, [&seen](int64_t seq, std::string_view doc) {
        seen.emplace_back(seq, std::string(doc));
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 3);
  EXPECT_EQ(stats->torn_tail_bytes, 0);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<int64_t, std::string>{0, "<a/>"}));
  EXPECT_EQ(seen[1].second, "<b>with\nnewlines\n</b>");
  EXPECT_EQ(seen[2].second, "");
}

TEST(Journal, MissingFileReplaysNothing) {
  TempDir dir;
  Result<serve::Journal::ReplayStats> stats = serve::Journal::Replay(
      dir.path() + "/nope.log",
      [](int64_t, std::string_view) { return Status::OK(); });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 0);
}

TEST(Journal, TornTailIsDiscarded) {
  TempDir dir;
  std::string path = dir.path() + "/journal.log";
  {
    Result<serve::Journal> journal =
        serve::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(0, "<a/>").ok());
    ASSERT_TRUE(journal->Append(1, "<b/>").ok());
  }
  // A crash mid-append leaves a record whose announced length exceeds
  // the bytes actually on disk.
  Result<std::string> intact = ReadFileToString(path);
  ASSERT_TRUE(intact.ok());
  for (const std::string torn :
       {std::string("doc 2 4000\n<c/"), std::string("doc 2 "),
        std::string("garbage that is not a header\n")}) {
    ASSERT_TRUE(WriteStringToFile(path, *intact + torn).ok());
    int64_t records = 0;
    Result<serve::Journal::ReplayStats> stats = serve::Journal::Replay(
        path, [&records](int64_t, std::string_view) {
          ++records;
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(records, 2) << "torn tail: " << torn;
    EXPECT_EQ(stats->torn_tail_bytes,
              static_cast<int64_t>(torn.size()));
  }
}

// ---------------------------------------------------------------------
// IngestSession: concurrent snapshot consistency (the serve analogue of
// "concurrent SaveState while ingestion is in flight").

TEST(IngestSession, ConcurrentSnapshotsAreAlwaysAPrefixState) {
  constexpr int kDocs = 24;
  std::vector<std::string> docs;
  for (int i = 0; i < kDocs; ++i) docs.push_back(Doc(i));

  // Reference states for every prefix, computed sequentially.
  std::set<std::string> prefix_states;
  for (size_t prefix = 0; prefix <= docs.size(); ++prefix) {
    prefix_states.insert(PrefixState(docs, prefix));
  }

  IngestSession session{InferenceOptions{}};
  std::vector<std::string> snapshots;
  std::vector<int64_t> epochs;
  std::thread reader([&session, &snapshots, &epochs] {
    for (int i = 0; i < 50; ++i) {
      std::string state;
      int64_t epoch = 0;
      session.Snapshot(&state, &epoch);
      snapshots.push_back(std::move(state));
      epochs.push_back(epoch);
    }
  });
  for (const std::string& doc : docs) {
    ASSERT_TRUE(session.Ingest(doc).ok());
  }
  reader.join();

  // Every snapshot taken mid-ingest equals the sequential SaveState of
  // SOME prefix — never a torn intermediate.
  for (const std::string& snapshot : snapshots) {
    EXPECT_TRUE(prefix_states.count(snapshot) > 0)
        << "snapshot is not any prefix state";
  }
  // Epochs are monotone in snapshot order (reader is one thread).
  for (size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_LE(epochs[i - 1], epochs[i]);
  }
  // The final state is the full corpus.
  std::string final_state;
  session.Snapshot(&final_state, nullptr);
  EXPECT_EQ(final_state, PrefixState(docs, docs.size()));
  EXPECT_EQ(session.documents(), kDocs);
}

TEST(IngestSession, FailedDocumentContributesNothing) {
  IngestSession session{InferenceOptions{}};
  ASSERT_TRUE(session.Ingest(Doc(0)).ok());
  std::string before;
  session.Snapshot(&before, nullptr);
  int64_t epoch_before = session.epoch();

  EXPECT_FALSE(session.Ingest("<broken><unclosed>").ok());
  std::string after;
  session.Snapshot(&after, nullptr);
  EXPECT_EQ(before, after);
  EXPECT_EQ(session.epoch(), epoch_before);
  EXPECT_EQ(session.failed_documents(), 1);
}

TEST(IngestSession, ApproxBytesGrowsWithRetainedState) {
  IngestSession session{InferenceOptions{}};
  size_t empty = session.ApproxBytes();
  ASSERT_TRUE(session.Ingest(Doc(0)).ok());
  size_t one = session.ApproxBytes();
  for (int i = 1; i < 10; ++i) {
    ASSERT_TRUE(session.Ingest(Doc(i)).ok());
  }
  size_t ten = session.ApproxBytes();
  EXPECT_LT(empty, one);
  EXPECT_LT(one, ten);
}

// ---------------------------------------------------------------------
// Corpus durability

TEST(Corpus, RecoversFromJournalAloneAfterCrash) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;  // in-process "crash" keeps the bytes

  std::vector<std::string> docs;
  for (int i = 0; i < 6; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
    // No snapshot, no clean shutdown: the object is dropped with only
    // the journal on disk — exactly the kill -9 disk image.
  }

  Result<std::unique_ptr<serve::Corpus>> recovered =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Result<std::string> dtd = (*recovered)->Query("", /*xsd=*/false);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
  EXPECT_EQ((*recovered)->GetStats().replayed_documents, 6);
}

TEST(Corpus, RecoversFromSnapshotPlusJournal) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;

  std::vector<std::string> docs;
  for (int i = 0; i < 8; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*corpus)->Ingest(docs[i]).ok());
    }
    ASSERT_TRUE((*corpus)->WriteSnapshot().ok());
    for (int i = 5; i < 8; ++i) {
      ASSERT_TRUE((*corpus)->Ingest(docs[i]).ok());
    }
  }

  Result<std::unique_ptr<serve::Corpus>> recovered =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  serve::CorpusStats stats = (*recovered)->GetStats();
  EXPECT_EQ(stats.generation, 1);
  EXPECT_EQ(stats.replayed_documents, 3);  // only the post-snapshot tail

  Result<std::string> dtd = (*recovered)->Query("", /*xsd=*/false);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

TEST(Corpus, TornJournalTailRecoversAcknowledgedPrefix) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;

  std::vector<std::string> docs;
  for (int i = 0; i < 4; ++i) docs.push_back(Doc(i));

  {
    Result<std::unique_ptr<serve::Corpus>> corpus =
        serve::Corpus::Open("lib", options);
    ASSERT_TRUE(corpus.ok());
    for (const std::string& doc : docs) {
      ASSERT_TRUE((*corpus)->Ingest(doc).ok());
    }
  }
  // Crash mid-append of a 5th document: header + half the payload.
  std::string journal = dir.path() + "/lib/journal-0.log";
  Result<std::string> intact = ReadFileToString(journal);
  ASSERT_TRUE(intact.ok());
  ASSERT_TRUE(
      WriteStringToFile(journal, *intact + "doc 4 64\n<library><bo").ok());

  Result<std::unique_ptr<serve::Corpus>> recovered =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Result<std::string> dtd = (*recovered)->Query("", /*xsd=*/false);
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

TEST(Corpus, QueriesDuringIngestionAnswerForAConsistentPrefix) {
  constexpr int kDocs = 16;
  std::vector<std::string> docs;
  for (int i = 0; i < kDocs; ++i) docs.push_back(Doc(i));

  std::set<std::string> prefix_dtds;
  for (size_t prefix = 1; prefix <= docs.size(); ++prefix) {
    prefix_dtds.insert(PrefixDtd(docs, prefix));
  }

  serve::Corpus::Options options;  // ephemeral: no data_dir
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Ingest(docs[0]).ok());  // never query empty

  std::vector<std::string> answers;
  std::thread reader([&corpus, &answers] {
    for (int i = 0; i < 40; ++i) {
      Result<std::string> dtd = (*corpus)->Query("", /*xsd=*/false);
      ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
      answers.push_back(std::move(*dtd));
    }
  });
  for (int i = 1; i < kDocs; ++i) {
    ASSERT_TRUE((*corpus)->Ingest(docs[i]).ok());
  }
  reader.join();

  for (const std::string& answer : answers) {
    // Byte-identical to the sequential answer for SOME prefix of the
    // acknowledged sequence: the concurrent reader can never observe a
    // half-folded document.
    EXPECT_TRUE(prefix_dtds.count(answer) > 0)
        << "query answered for a non-prefix state:\n"
        << answer;
    // And it is well-formed DTD text.
    Alphabet alphabet;
    EXPECT_TRUE(ParseDtd(answer, &alphabet).ok());
  }
  Result<std::string> final_dtd = (*corpus)->Query("", /*xsd=*/false);
  ASSERT_TRUE(final_dtd.ok());
  EXPECT_EQ(*final_dtd, PrefixDtd(docs, docs.size()));
}

TEST(Corpus, QueryCacheHitsOnlyWhenUnchanged) {
  serve::Corpus::Options options;
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Ingest(Doc(0)).ok());

  Result<std::string> first = (*corpus)->Query("", false);
  Result<std::string> second = (*corpus)->Query("", false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ((*corpus)->GetStats().query_cache_hits, 1);

  ASSERT_TRUE((*corpus)->Ingest(Doc(1)).ok());
  Result<std::string> third = (*corpus)->Query("", false);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*corpus)->GetStats().query_cache_hits, 1);  // invalidated
  EXPECT_NE(*first, *third);
}

TEST(Corpus, MemoryCapRefusesFurtherIngestion) {
  serve::Corpus::Options options;
  options.max_corpus_bytes = 1;  // below even an empty session
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  Status refused = (*corpus)->Ingest(Doc(0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);

  serve::Corpus::Options roomy;
  roomy.max_corpus_bytes = 64 << 20;
  Result<std::unique_ptr<serve::Corpus>> ok_corpus =
      serve::Corpus::Open("lib2", roomy);
  ASSERT_TRUE(ok_corpus.ok());
  EXPECT_TRUE((*ok_corpus)->Ingest(Doc(0)).ok());
}

TEST(Corpus, XsdQueryAndAlgorithmOverride) {
  serve::Corpus::Options options;
  Result<std::unique_ptr<serve::Corpus>> corpus =
      serve::Corpus::Open("lib", options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Ingest(Doc(3)).ok());

  Result<std::string> xsd = (*corpus)->Query("", /*xsd=*/true);
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  EXPECT_NE(xsd->find("schema"), std::string::npos);

  Result<std::string> crx = (*corpus)->Query("crx", /*xsd=*/false);
  ASSERT_TRUE(crx.ok()) << crx.status().ToString();

  Result<std::string> bogus = (*corpus)->Query("nonsense", false);
  EXPECT_FALSE(bogus.ok());
}

// ---------------------------------------------------------------------
// Registry

TEST(CorpusRegistry, ValidatesIdsAndDistinguishesGetFromCreate) {
  serve::CorpusRegistry registry{serve::Corpus::Options{}};
  for (const char* bad :
       {"", ".", "..", "a/b", "a b", "a\nb", "../../etc/passwd"}) {
    EXPECT_FALSE(serve::CorpusRegistry::ValidCorpusId(bad)) << bad;
    EXPECT_FALSE(registry.GetOrCreate(bad).ok()) << bad;
  }
  EXPECT_FALSE(
      serve::CorpusRegistry::ValidCorpusId(std::string(129, 'a')));

  EXPECT_FALSE(registry.Get("lib").ok());  // NotFound before creation
  EXPECT_EQ(registry.Get("lib").status().code(), StatusCode::kNotFound);

  Result<serve::Corpus*> created = registry.GetOrCreate("lib");
  ASSERT_TRUE(created.ok());
  Result<serve::Corpus*> again = registry.GetOrCreate("lib");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*created, *again);  // same live instance
  EXPECT_EQ(registry.List().size(), 1u);
}

TEST(CorpusRegistry, RecoverAllReopensPersistedCorpora) {
  TempDir dir;
  serve::Corpus::Options options;
  options.data_dir = dir.path();
  options.fsync_journal = false;
  {
    serve::CorpusRegistry registry{options};
    Result<serve::Corpus*> a = registry.GetOrCreate("alpha");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE((*a)->Ingest(Doc(0)).ok());
    Result<serve::Corpus*> b = registry.GetOrCreate("beta");
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*b)->Ingest(Doc(1)).ok());
  }
  serve::CorpusRegistry registry{options};
  ASSERT_TRUE(registry.RecoverAll().ok());
  ASSERT_EQ(registry.List().size(), 2u);
  EXPECT_TRUE(registry.Get("alpha").ok());
  EXPECT_TRUE(registry.Get("beta").ok());
}

// ---------------------------------------------------------------------
// Server + Client over a real unix socket

class ServeEndToEnd : public ::testing::Test {
 protected:
  void StartServer(serve::ServerOptions options) {
    options.unix_socket = socket_path();
    server_.emplace(std::move(options));
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }
  serve::Client Connect() {
    Result<serve::Client> client =
        serve::Client::ConnectUnix(socket_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }
  std::string socket_path() const { return dir_.path() + "/condtd.sock"; }
  void TearDown() override {
    if (server_) server_->Stop();
  }

  TempDir dir_;
  std::optional<serve::Server> server_;
};

TEST_F(ServeEndToEnd, ProtocolRoundTrip) {
  serve::ServerOptions options;
  options.workers = 2;
  options.corpus.data_dir = dir_.path() + "/data";
  options.corpus.fsync_journal = false;
  StartServer(std::move(options));

  serve::Client client = Connect();
  Result<std::string> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "pong");

  std::vector<std::string> docs;
  for (int i = 0; i < 5; ++i) docs.push_back(Doc(i));
  for (const std::string& doc : docs) {
    Result<std::string> ack = client.IngestInline("lib", doc);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  }

  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));

  Result<std::string> xsd = client.Query("lib", "", /*xsd=*/true);
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  EXPECT_NE(xsd->find("schema"), std::string::npos);

  Result<std::string> snap = client.Snapshot("lib");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_NE(snap->find("generation=1"), std::string::npos);

  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* key :
       {"\"condtd_serve_stats_version\": 1", "\"lib\"",
        "\"documents_ingested\": 5", "\"condtd_corpus_bytes\"",
        "\"ingest_latency\"", "\"query_latency\"", "\"process\"",
        "\"condtd_stats_version\": 1"}) {
    EXPECT_NE(stats->find(key), std::string::npos)
        << key << "\n" << *stats;
  }

  Result<std::string> bye = client.Shutdown();
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  server_->Wait();
  server_.reset();
}

TEST_F(ServeEndToEnd, ErrorsComeBackWithCodes) {
  serve::ServerOptions options;  // ephemeral corpora
  StartServer(std::move(options));
  serve::Client client = Connect();

  // Unknown command.
  Result<std::string> unknown = client.Roundtrip("FROBNICATE");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  // QUERY against a corpus that never ingested.
  Result<std::string> missing = client.Query("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Invalid corpus id.
  Result<std::string> bad_id = client.IngestInline("a/b", "<x/>");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.status().code(), StatusCode::kInvalidArgument);

  // A malformed document reports the parse error; the connection (and
  // the corpus) survive it.
  Result<std::string> bad_doc =
      client.IngestInline("lib", "<broken><unclosed>");
  ASSERT_FALSE(bad_doc.ok());
  EXPECT_EQ(bad_doc.status().code(), StatusCode::kParseError);
  Result<std::string> good_doc = client.IngestInline("lib", Doc(0));
  ASSERT_TRUE(good_doc.ok()) << good_doc.status().ToString();
  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok());
  std::vector<std::string> docs = {Doc(0)};
  EXPECT_EQ(*dtd, PrefixDtd(docs, 1));
}

TEST_F(ServeEndToEnd, ConcurrentClientsOnDistinctCorpora) {
  serve::ServerOptions options;
  options.workers = 4;
  StartServer(std::move(options));

  constexpr int kClients = 4;
  constexpr int kDocsPerClient = 8;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c] {
      serve::Client client = Connect();
      std::string corpus = "tenant" + std::to_string(c);
      for (int i = 0; i < kDocsPerClient; ++i) {
        Result<std::string> ack =
            client.IngestInline(corpus, Doc((c + i) % 7));
        ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      }
      Result<std::string> dtd = client.Query(corpus);
      ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Each tenant's answer equals a fresh batch run over its own docs —
  // tenants are fully isolated.
  serve::Client client = Connect();
  for (int c = 0; c < kClients; ++c) {
    std::vector<std::string> docs;
    for (int i = 0; i < kDocsPerClient; ++i) {
      docs.push_back(Doc((c + i) % 7));
    }
    Result<std::string> dtd =
        client.Query("tenant" + std::to_string(c));
    ASSERT_TRUE(dtd.ok());
    EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
  }
}

TEST_F(ServeEndToEnd, RestartAfterUncleanStopServesRecoveredCorpora) {
  serve::ServerOptions options;
  options.corpus.data_dir = dir_.path() + "/data";
  options.corpus.fsync_journal = false;
  std::vector<std::string> docs;
  for (int i = 0; i < 5; ++i) docs.push_back(Doc(i));

  StartServer(options);
  {
    serve::Client client = Connect();
    for (const std::string& doc : docs) {
      ASSERT_TRUE(client.IngestInline("lib", doc).ok());
    }
  }
  // Stop without SNAPSHOT or SHUTDOWN bookkeeping: state must come back
  // from the journal alone.
  server_->Stop();
  server_.reset();

  StartServer(options);
  serve::Client client = Connect();
  Result<std::string> dtd = client.Query("lib");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(*dtd, PrefixDtd(docs, docs.size()));
}

}  // namespace
}  // namespace condtd
