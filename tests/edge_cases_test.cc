// Edge cases and robustness tests across modules: malformed inputs,
// boundary sizes, unusual-but-legal XML/DTD constructs, and invariants
// under stress.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/soa.h"
#include "automaton/state_elimination.h"
#include "automaton/two_t_inf.h"
#include "base/rng.h"
#include "baseline/xtract.h"
#include "crx/crx.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gfa/rewrite.h"
#include "idtd/idtd.h"
#include "infer/inferrer.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/normalize.h"
#include "regex/parser.h"
#include "regex/properties.h"
#include "xml/parser.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

// --- XML corner cases --------------------------------------------------------

TEST(XmlEdge, DeeplyNestedDocument) {
  std::string open;
  std::string close;
  const int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) {
    open += "<d>";
    close += "</d>";
  }
  Result<XmlDocument> doc = ParseXml(open + close);
  ASSERT_TRUE(doc.ok());
  // Extraction and inference must survive the depth (iterative walks).
  DtdInferrer inferrer;
  ASSERT_TRUE(inferrer.AddXml(open + close).ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok());
  // d contains either one d or nothing.
  const ContentModel& model =
      dtd->elements.at(inferrer.alphabet()->Find("d"));
  ASSERT_EQ(model.kind, ContentKind::kChildren);
  EXPECT_TRUE(Nullable(model.regex));
}

TEST(XmlEdge, HexEntitiesAndSupplementaryPlanes) {
  Result<XmlDocument> doc = ParseXml("<r>&#x41;&#x20AC;</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "A\xE2\x82\xAC");  // 'A' + euro sign
}

TEST(XmlEdge, WhitespaceOnlyTextIsNotContent) {
  Result<XmlDocument> doc = ParseXml("<r>\n  <a/>\n  \t\n</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->root->HasSignificantText());
}

TEST(XmlEdge, AttributesWithAngleInValue) {
  Result<XmlDocument> doc = ParseXml("<r a=\"x&lt;y&gt;z\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root->FindAttribute("a"), "x<y>z");
}

TEST(XmlEdge, MultipleCdataSections) {
  Result<XmlDocument> doc =
      ParseXml("<r><![CDATA[a]]>mid<![CDATA[b]]></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "amidb");
}

TEST(XmlEdge, DoctypeWithoutSubsetRoundTrips) {
  Result<XmlDocument> doc =
      ParseXml("<!DOCTYPE html SYSTEM \"x.dtd\"><html/>");
  ASSERT_TRUE(doc.ok());
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDoctype(doc->doctype, &alphabet);
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->root, alphabet.Find("html"));
  EXPECT_TRUE(dtd->elements.empty());
}

// --- Lenient (tag-soup) parsing -------------------------------------------------

TEST(LenientXml, RepairsMismatchedAndMissingTags) {
  std::vector<std::string> repairs;
  Result<XmlDocument> doc = ParseXmlLenient(
      "<html><body><p>one<p>two</body><div>tail</html>", &repairs);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // </body> auto-closes the two open <p>s (generic recovery keeps the
  // second <p> nested — unlike an HTML5 parser, no implied end tags);
  // </html> auto-closes <div>.
  EXPECT_GE(repairs.size(), 2u);
  ASSERT_EQ(doc->root->name(), "html");
  const auto& body = doc->root->children()[0];
  EXPECT_EQ(body->name(), "body");
  ASSERT_EQ(body->children().size(), 1u);
  EXPECT_EQ(body->children()[0]->name(), "p");
  ASSERT_EQ(body->children()[0]->children().size(), 1u);
  EXPECT_EQ(body->children()[0]->children()[0]->name(), "p");
  // The <div> after </body> stayed inside <html>.
  ASSERT_EQ(doc->root->children().size(), 2u);
  EXPECT_EQ(doc->root->children()[1]->name(), "div");
}

TEST(LenientXml, DropsStrayEndTagsAndClosesAtEof) {
  std::vector<std::string> repairs;
  Result<XmlDocument> doc =
      ParseXmlLenient("<a></b><c>", &repairs);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(repairs.size(), 2u);  // stray </b>, unclosed at EOF
  EXPECT_EQ(doc->root->children().size(), 1u);
}

TEST(LenientXml, StrictModeStillRejects) {
  EXPECT_FALSE(ParseXml("<a><b></a>").ok());
  EXPECT_TRUE(ParseXmlLenient("<a><b></a>").ok());
}

TEST(LenientXml, InferrerLenientOption) {
  InferenceOptions options;
  options.lenient_xml = true;
  DtdInferrer inferrer(options);
  ASSERT_TRUE(
      inferrer.AddXml("<html><body><p>x<p>y</body></html>").ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok());
  // The tag soup became a tree: body contains p (which nests p), and
  // everything got a declaration.
  EXPECT_TRUE(dtd->elements.count(inferrer.alphabet()->Find("body")) > 0);
  EXPECT_TRUE(dtd->elements.count(inferrer.alphabet()->Find("p")) > 0);
}

// --- DTD corner cases ----------------------------------------------------------

TEST(DtdEdge, NestedGroupsAndAllOperators) {
  Alphabet alphabet;
  Result<ContentModel> model = ParseContentModel(
      "((a, (b | c)+)?, ((d, e)* | f)+)", &alphabet);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Round trip through the printer.
  std::string printed = ToDtdString(model->regex, alphabet);
  Result<ContentModel> again = ParseContentModel(printed, &alphabet);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_TRUE(LanguageEquivalent(model->regex, again->regex));
}

TEST(DtdEdge, CommentsAndPEReferencesAreSkipped) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!-- preamble -->\n"
      "%common;\n"
      "<!ELEMENT r (a)>\n"
      "<?pi data?>\n"
      "<!ENTITY % common \"ignored\">\n"
      "<!ELEMENT a EMPTY>\n",
      &alphabet);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->elements.size(), 2u);
}

TEST(DtdEdge, AttlistDefaultsWithQuotedGt) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT r EMPTY>\n"
      "<!ATTLIST r label CDATA \"a > b\">\n",
      &alphabet);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const auto& attrs = dtd->attributes.at(alphabet.Find("r"));
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].default_decl, "\"a > b\"");
}

TEST(DtdEdge, WriterEscapesNothingButStaysParseable) {
  // Inferred DTDs over odd-but-legal names (colons, dots, dashes).
  DtdInferrer inferrer;
  ASSERT_TRUE(
      inferrer.AddXml("<ns:root><x.y-z_1/><x.y-z_1/></ns:root>").ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok());
  std::string text = WriteDtd(dtd.value(), *inferrer.alphabet());
  Alphabet alphabet;
  EXPECT_TRUE(ParseDtd(text, &alphabet).ok()) << text;
}

// --- Regex parser corner cases ---------------------------------------------------

TEST(RegexEdge, DeepNestingParses) {
  Alphabet alphabet;
  std::string text;
  for (int i = 0; i < 200; ++i) text += "(";
  text += "a";
  for (int i = 0; i < 200; ++i) text += ")?";
  Result<ReRef> re = ParseRegex(text, &alphabet);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(ToString(Normalize(re.value()), alphabet), "a?");
}

TEST(RegexEdge, PostfixChains) {
  Alphabet alphabet;
  ReRef re = ParseChars("a+?*", &alphabet);
  // ((a+)?)* normalizes to a*.
  EXPECT_EQ(ToString(Normalize(re), alphabet), "a*");
}

// --- Algorithm boundary sizes -----------------------------------------------------

TEST(BoundarySizes, SingleSymbolEverything) {
  Alphabet alphabet;
  std::vector<Word> sample = WordsFromStrings({"a"}, &alphabet);
  EXPECT_EQ(ToString(RewriteInfer(sample).value(), alphabet), "a");
  EXPECT_EQ(ToString(IdtdInfer(sample).value(), alphabet), "a");
  EXPECT_EQ(ToString(CrxInfer(sample).value(), alphabet), "a");
  EXPECT_EQ(ToString(XtractInfer(sample).value(), alphabet), "a");
}

TEST(BoundarySizes, LargeAlphabetRewrite) {
  // 61 symbols in a simple chain: a0 a1 ... a60 — linear rewrite.
  const int n = 61;
  Word chain;
  for (Symbol s = 0; s < n; ++s) chain.push_back(s);
  Result<ReRef> re = RewriteInfer({chain});
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(CountSymbolOccurrences(re.value()), n);
  EXPECT_TRUE(Matches(re.value(), chain));
}

TEST(BoundarySizes, LongWordsMatchQuickly) {
  Alphabet alphabet;
  ReRef re = ParseChars("(a|b)*c", &alphabet);
  Word w;
  for (int i = 0; i < 100000; ++i) {
    w.push_back(i % 2);
  }
  w.push_back(alphabet.Find("c"));
  Matcher matcher(re);
  EXPECT_TRUE(matcher.Matches(w));
  w.push_back(alphabet.Find("a"));
  EXPECT_FALSE(matcher.Matches(w));
}

TEST(BoundarySizes, StateEliminationOnDenseAutomaton) {
  // Dense random SOA: elimination must still terminate and agree across
  // orders (language-wise), even where the output is huge.
  Rng rng(13);
  Soa soa;
  const int n = 6;
  for (Symbol s = 0; s < n; ++s) soa.AddState(s);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) soa.AddEdge(i, j);
    }
  }
  soa.AddInitial(0);
  soa.AddFinal(n - 1);
  soa.AddEdge(0, n - 1);
  Result<ReRef> natural =
      StateEliminationRegex(soa, EliminationOrder::kNatural);
  Result<ReRef> greedy =
      StateEliminationRegex(soa, EliminationOrder::kMinDegreeProduct);
  ASSERT_TRUE(natural.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(LanguageEquivalent(natural.value(), greedy.value()));
}

// --- XTRACT guards ----------------------------------------------------------------

TEST(XtractEdge, EmptyWordsOnlyFails) {
  EXPECT_EQ(XtractInfer({Word{}, Word{}}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(XtractEdge, EmptyWordMakesResultNullable) {
  Alphabet alphabet;
  std::vector<Word> sample = WordsFromStrings({"ab"}, &alphabet);
  sample.push_back(Word{});
  Result<ReRef> re = XtractInfer(sample);
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(Nullable(re.value()));
  EXPECT_TRUE(Matches(re.value(), Word{}));
}

TEST(XtractEdge, CandidateBudget) {
  XtractOptions options;
  options.max_candidates = 3;
  Rng rng(3);
  std::vector<Word> sample;
  for (int i = 0; i < 50; ++i) {
    Word w;
    for (int j = 0; j < 6; ++j) {
      w.push_back(static_cast<Symbol>(rng.NextBelow(5)));
    }
    sample.push_back(std::move(w));
  }
  EXPECT_EQ(XtractInfer(sample, options).status().code(),
            StatusCode::kResourceExhausted);
}

// --- SOA pruning --------------------------------------------------------------------

TEST(SoaPruning, RemovesWeakStatesKeepsStrong) {
  Alphabet alphabet;
  std::vector<std::string> strings(20, "ab");
  strings.push_back("axb");
  Soa soa = Infer2T(WordsFromStrings(strings, &alphabet));
  Soa pruned = PruneSoaByStateSupport(soa, 5);
  EXPECT_EQ(pruned.NumStates(), 2);
  EXPECT_LT(pruned.StateOf(alphabet.Find("x")), 0);
  int a = pruned.StateOf(alphabet.Find("a"));
  int b = pruned.StateOf(alphabet.Find("b"));
  EXPECT_TRUE(pruned.HasEdge(a, b));
  EXPECT_EQ(pruned.EdgeSupport(a, b), 20);
}

TEST(SoaPruning, NoSupportsMeansNoPruning) {
  // SOAs built without supports (e.g. SoaFromRegex) are untouched.
  Alphabet alphabet;
  Soa soa = SoaFromRegex(ParseChars("ab", &alphabet));
  Soa pruned = PruneSoaByStateSupport(soa, 100);
  EXPECT_TRUE(pruned.Equals(soa));
}

// --- CRX stress ---------------------------------------------------------------------

TEST(CrxStress, ManySymbolsManyWords) {
  // 61 symbols, 5000 words: must finish quickly and produce a CHARE
  // covering the sample (matches the Section 7 complexity claim).
  Rng rng(17);
  ReRef target = RandomChare(61, &rng);
  std::vector<Word> sample = SampleWords(target, 5000, &rng);
  Result<ReRef> learned = CrxInfer(sample);
  ASSERT_TRUE(learned.ok());
  EXPECT_TRUE(IsChare(learned.value()));
  Matcher matcher(learned.value());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(matcher.Matches(sample[i * 25 % sample.size()]));
  }
}

}  // namespace
}  // namespace condtd
