#include "gfa/rewrite.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/soa.h"
#include "automaton/two_t_inf.h"
#include "base/rng.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "gfa/gfa.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/normalize.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

// --- Individual rewrite rules ---------------------------------------------

TEST(RewriteRules, SelfLoopRemovesEdgeAndAddsPlus) {
  Alphabet alphabet;
  Soa soa;
  int a = soa.AddState(alphabet.Intern("a"));
  soa.AddInitial(a);
  soa.AddFinal(a);
  soa.AddEdge(a, a);
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_TRUE(ApplySelfLoopRule(&gfa));
  std::vector<int> live = gfa.LiveNodes();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(ToString(gfa.Label(live[0]), alphabet), "a+");
  EXPECT_FALSE(gfa.HasEdge(live[0], live[0]));
  EXPECT_FALSE(ApplySelfLoopRule(&gfa));  // idempotent
}

TEST(RewriteRules, ConcatenationMergesChain) {
  // L = {abc}: src->a->b->c->snk is one maximal chain.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"abc"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_TRUE(ApplyConcatenationRule(&gfa));
  ASSERT_TRUE(gfa.IsFinal());
  EXPECT_EQ(ToString(gfa.FinalExpression(), alphabet), "a b c");
}

TEST(RewriteRules, ConcatenationHandlesWrapEdgeAsSelfLoop) {
  // L((ab)+) has SOA a->b, b->a; merging the chain [a, b] must turn the
  // wrap edge b->a into a self edge on the merged node.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab", "abab"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_TRUE(ApplyConcatenationRule(&gfa));
  std::vector<int> live = gfa.LiveNodes();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_TRUE(gfa.HasEdge(live[0], live[0]));
  EXPECT_TRUE(ApplySelfLoopRule(&gfa));
  ASSERT_TRUE(gfa.IsFinal());
  EXPECT_EQ(ToString(Normalize(gfa.FinalExpression()), alphabet), "(a b)+");
}

TEST(RewriteRules, DisjunctionMergesEquivalentStates) {
  // L = {ac, bc}: a and b share pred {src} and succ {c}.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ac", "bc"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_TRUE(ApplyDisjunctionRule(&gfa));
  EXPECT_EQ(gfa.NumLiveNodes(), 2);
}

TEST(RewriteRules, DisjunctionCaseTwoAddsSelfEdge) {
  // L((a|b)+): all four edges between a, b exist after self-loop
  // cleanup; the merged disjunction must get a self edge.
  Alphabet alphabet;
  Soa soa =
      Infer2T(WordsFromStrings({"aa", "ab", "ba", "bb", "a", "b"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  ApplySelfLoopRule(&gfa);
  EXPECT_TRUE(ApplyDisjunctionRule(&gfa));
  std::vector<int> live = gfa.LiveNodes();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_TRUE(gfa.HasEdge(live[0], live[0]));
}

TEST(RewriteRules, OptionalRemovesSkipEdges) {
  // L(a?b): optional must relabel a and drop the src->b skip edge.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab", "b"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_TRUE(ApplyOptionalRule(&gfa));
  int b_node = -1;
  for (int v : gfa.LiveNodes()) {
    if (ToString(gfa.Label(v), alphabet) == "b") b_node = v;
  }
  ASSERT_GE(b_node, 0);
  EXPECT_FALSE(gfa.HasEdge(gfa.source(), b_node));
}

TEST(RewriteRules, OptionalRequiresRemovableEdge) {
  // L = {ab}: no skip evidence, optional must not fire anywhere.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_FALSE(ApplyOptionalRule(&gfa));
}

// --- End-to-end rewrite ----------------------------------------------------

struct RewriteCase {
  std::string name;
  std::string regex;  // char-symbol paper notation
};

class RewriteRecoversSore : public ::testing::TestWithParam<RewriteCase> {};

TEST_P(RewriteRecoversSore, FromRepresentativeSample) {
  Alphabet alphabet;
  ReRef target = ParseChars(GetParam().regex, &alphabet);
  ASSERT_TRUE(IsSore(target)) << GetParam().regex;
  std::vector<Word> sample = RepresentativeSample(target);
  Result<ReRef> learned = RewriteInfer(sample);
  ASSERT_TRUE(learned.ok()) << GetParam().regex << ": "
                            << learned.status().ToString();
  EXPECT_TRUE(LanguageEquivalent(target, learned.value()))
      << GetParam().regex << " vs "
      << ToString(learned.value(), alphabet);
}

INSTANTIATE_TEST_SUITE_P(
    PaperShapes, RewriteRecoversSore,
    ::testing::Values(
        RewriteCase{"single", "a"}, RewriteCase{"concat", "abc"},
        RewriteCase{"plus", "a+"}, RewriteCase{"star", "a*b"},
        RewriteCase{"opt_chain", "a?b?c"},
        RewriteCase{"figure1", "((b?(a|c))+d)+e"},
        RewriteCase{"disj_plus", "(a|b)+c"},
        RewriteCase{"nested", "(a(b|c)?)+d"},
        RewriteCase{"nullable_whole", "(ab)?"},
        RewriteCase{"nullable_pair", "a?b?"},
        RewriteCase{"inner_star", "a(b|c)*d+(e|f)?"},
        RewriteCase{"all_optional", "a?b?c?"},
        RewriteCase{"loop_of_pair", "((ab)+c)+"},
        RewriteCase{"star_of_union", "(a|b|c)*"},
        RewriteCase{"deep", "((a|b)?c)+(d(e|f))?g"}),
    [](const ::testing::TestParamInfo<RewriteCase>& info) {
      return info.param.name;
    });

TEST(Rewrite, Figure1AutomatonYieldsPaperExpression) {
  // Section 4's W = {bacacdacde, cbacdbacde, abccaadcde}; the paper's
  // equivalent SORE is ((b?(a+c))+d)+e (or the equivalent variant with an
  // inner + — both denote the same language).
  Alphabet alphabet;
  std::vector<Word> sample = WordsFromStrings(
      {"bacacdacde", "cbacdbacde", "abccaadcde"}, &alphabet);
  Result<ReRef> learned = RewriteInfer(sample);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  ReRef paper = ParseChars("((b?(a|c))+d)+e", &alphabet);
  EXPECT_TRUE(LanguageEquivalent(paper, learned.value()))
      << ToString(learned.value(), alphabet);
}

TEST(Rewrite, FailsOnNonSoreDefinableAutomaton) {
  // Figure 2's automaton (two strings only) has no equivalent SORE.
  Alphabet alphabet;
  std::vector<Word> sample =
      WordsFromStrings({"bacacdacde", "cbacdbacde"}, &alphabet);
  Result<ReRef> learned = RewriteInfer(sample);
  ASSERT_FALSE(learned.ok());
  EXPECT_EQ(learned.status().code(), StatusCode::kNoEquivalentSore);
}

TEST(Rewrite, FailsOnEmptySample) {
  Result<ReRef> learned = RewriteInfer({});
  ASSERT_FALSE(learned.ok());
  EXPECT_EQ(learned.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Rewrite, EmptyWordOnlySampleFails) {
  Result<ReRef> learned = RewriteInfer({Word{}});
  ASSERT_FALSE(learned.ok());
  EXPECT_EQ(learned.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Rewrite, OutputIsAlwaysSore) {
  Rng rng(20060912);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(8));
    ReRef target = RandomSore(n, &rng);
    std::vector<Word> sample = RepresentativeSample(target);
    Result<ReRef> learned = RewriteInfer(sample);
    ASSERT_TRUE(learned.ok()) << learned.status().ToString();
    EXPECT_TRUE(IsSore(learned.value()));
  }
}

// Theorem 1 + Claim 2 as a randomized property: for random SOREs the
// SOA built by 2T-INF from a representative sample rewrites back to a
// language-equivalent SORE.
class RewriteRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RewriteRandomSweep, RandomSoresRoundTrip) {
  const int num_symbols = GetParam();
  Rng rng(42 + num_symbols);
  for (int trial = 0; trial < 25; ++trial) {
    ReRef target = RandomSore(num_symbols, &rng);
    std::vector<Word> sample = RepresentativeSample(target);
    Result<ReRef> learned = RewriteInfer(sample);
    Alphabet names;
    for (int i = 0; i < num_symbols; ++i) names.Intern(std::string(1, 'a' + i));
    ASSERT_TRUE(learned.ok())
        << "target " << ToString(target, names) << ": "
        << learned.status().ToString();
    EXPECT_TRUE(LanguageEquivalent(target, learned.value()))
        << "target " << ToString(target, names) << " learned "
        << ToString(learned.value(), names);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RewriteRandomSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 16,
                                           20));

TEST(Rewrite, PreservesSampleMembership) {
  // Soundness on arbitrary (non-representative) samples whenever rewrite
  // happens to succeed: every sample word must be accepted.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    ReRef target = RandomSore(2 + rng.NextBelow(6), &rng);
    std::vector<Word> sample = SampleWords(target, 12, &rng);
    Result<ReRef> learned = RewriteInfer(sample);
    if (!learned.ok()) continue;  // not SORE-definable; fine
    Matcher matcher(learned.value());
    for (const Word& w : sample) {
      EXPECT_TRUE(matcher.Matches(w));
    }
  }
}

}  // namespace
}  // namespace condtd
