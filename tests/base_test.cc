#include <gtest/gtest.h>

#include <string>

#include "alphabet/alphabet.h"
#include "base/status.h"
#include "base/strings.h"

namespace condtd {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::ParseError("bad input");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad input");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(Strings, SplitJoinStrip) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("<!ELEMENT", "<!"));
  EXPECT_FALSE(StartsWith("<", "<!"));
  EXPECT_TRUE(EndsWith("file.dtd", ".dtd"));
}

TEST(Alphabet, InterningIsStableAndBidirectional) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("author");
  Symbol b = alphabet.Intern("book");
  EXPECT_EQ(alphabet.Intern("author"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(alphabet.Name(a), "author");
  EXPECT_EQ(alphabet.Find("book"), b);
  EXPECT_EQ(alphabet.Find("unknown"), kInvalidSymbol);
  EXPECT_EQ(alphabet.size(), 2);
}

TEST(Alphabet, WordHelpers) {
  Alphabet alphabet;
  Word w = alphabet.WordFromChars("abca");
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0], w[3]);
  EXPECT_EQ(alphabet.WordToString(w), "abca");
  Symbol longname = alphabet.Intern("year");
  EXPECT_EQ(alphabet.WordToString({w[0], longname}), "a year");
}

}  // namespace
}  // namespace condtd
