#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "base/arena.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/swar.h"

namespace condtd {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::ParseError("bad input");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad input");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(Strings, SplitJoinStrip) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("<!ELEMENT", "<!"));
  EXPECT_FALSE(StartsWith("<", "<!"));
  EXPECT_TRUE(EndsWith("file.dtd", ".dtd"));
}

TEST(Alphabet, InterningIsStableAndBidirectional) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("author");
  Symbol b = alphabet.Intern("book");
  EXPECT_EQ(alphabet.Intern("author"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(alphabet.Name(a), "author");
  EXPECT_EQ(alphabet.Find("book"), b);
  EXPECT_EQ(alphabet.Find("unknown"), kInvalidSymbol);
  EXPECT_EQ(alphabet.size(), 2);
}

TEST(Alphabet, WordHelpers) {
  Alphabet alphabet;
  Word w = alphabet.WordFromChars("abca");
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0], w[3]);
  EXPECT_EQ(alphabet.WordToString(w), "abca");
  Symbol longname = alphabet.Intern("year");
  EXPECT_EQ(alphabet.WordToString({w[0], longname}), "a year");
}

TEST(Swar, FindEitherHitsEveryOffsetInTheWord) {
  // Exercise each lane position of the 8-byte SWAR step plus the scalar
  // tail, for both needles, at several starting offsets.
  for (size_t target = 0; target < 20; ++target) {
    for (char needle : {'<', '&'}) {
      std::string text(20, 'x');
      text[target] = needle;
      for (size_t start = 0; start <= target; ++start) {
        EXPECT_EQ(swar::FindEither(text, start, '<', '&'), target)
            << "target " << target << " start " << start;
      }
      EXPECT_EQ(swar::FindEither(text, target + 1, '<', '&'), swar::kNpos);
    }
  }
  EXPECT_EQ(swar::FindEither("", 0, '<', '&'), swar::kNpos);
  EXPECT_EQ(swar::FindEither("xxx", 3, '<', '&'), swar::kNpos);
  // Earliest of the two needles wins, regardless of which parameter it
  // came in as.
  EXPECT_EQ(swar::FindEither("ab&cd<ef", 0, '<', '&'), 2u);
  EXPECT_EQ(swar::FindEither("ab<cd&ef", 0, '<', '&'), 2u);
}

TEST(Swar, FindEitherIgnoresHighBitBytes) {
  // The haszero trick must not false-positive on 0x80-set bytes
  // (multi-byte UTF-8 in text runs) or on bytes one below the needle.
  std::string text = "\xc3\xa9\xc3\xa9\xc3\xa9\xc3\xa9";
  text += ";";  // '<' - 1 == ';'
  text += "<";
  EXPECT_EQ(swar::FindEither(text, 0, '<', '&'), text.size() - 1);
}

TEST(Swar, CharClassMatchesReferenceClassifiers) {
  for (int c = 0; c < 256; ++c) {
    char ch = static_cast<char>(c);
    bool ascii_alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    bool ascii_digit = c >= '0' && c <= '9';
    EXPECT_EQ(swar::IsNameStart(ch), ascii_alpha || c == '_' || c == ':')
        << "byte " << c;
    EXPECT_EQ(swar::IsName(ch), ascii_alpha || ascii_digit || c == '_' ||
                                    c == ':' || c == '-' || c == '.')
        << "byte " << c;
    EXPECT_EQ(swar::IsSpace(ch),
              c == ' ' || c == '\t' || c == '\r' || c == '\n')
        << "byte " << c;
  }
}

TEST(Swar, FindNameEndAndSkipSpace) {
  EXPECT_EQ(swar::FindNameEnd("author ", 0), 6u);
  EXPECT_EQ(swar::FindNameEnd("a", 0), 1u);          // runs off the end
  EXPECT_EQ(swar::FindNameEnd("ab:cd-ef.gh xx", 0), 11u);
  EXPECT_EQ(swar::FindNameEnd("<tag", 0), 0u);        // not a name char
  EXPECT_EQ(swar::SkipSpace("  \t\r\n x", 0), 6u);
  EXPECT_EQ(swar::SkipSpace("x", 0), 0u);
  EXPECT_EQ(swar::SkipSpace("   ", 0), 3u);           // all whitespace
}

TEST(Arena, CopyAndAlignment) {
  Arena arena(/*first_block_bytes=*/64);
  std::string_view a = arena.Copy("hello");
  std::string_view b = arena.Copy("world, longer than the first");
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "world, longer than the first");
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.Allocate(3)) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.Allocate(9)) % 8, 0u);
  EXPECT_GT(arena.bytes_used(), 0u);
}

TEST(Arena, GrowsAcrossBlocksWithoutInvalidatingEarlierCopies) {
  Arena arena(/*first_block_bytes=*/16);
  std::vector<std::string> sources;
  std::vector<std::string_view> views;
  for (int i = 0; i < 200; ++i) {
    sources.push_back("string number " + std::to_string(i));
    views.push_back(arena.Copy(sources.back()));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(views[i], sources[i]) << i;
  }
}

TEST(Arena, ResetKeepsCapacityAndReusesBlocks) {
  Arena arena(/*first_block_bytes=*/32);
  for (int i = 0; i < 50; ++i) arena.Copy("some per-document sample text");
  size_t footprint = arena.footprint();
  EXPECT_GT(footprint, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.footprint(), footprint);  // blocks retained
  // Steady state: the same volume again must not grow the footprint.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(arena.Copy("some per-document sample text"),
              "some per-document sample text");
  }
  EXPECT_EQ(arena.footprint(), footprint);
}

TEST(Arena, AppendExtendsInPlaceWhenHeadIsTopOfArena) {
  Arena arena(/*first_block_bytes=*/1024);
  std::string_view acc;
  std::string mirror;
  for (int i = 0; i < 20; ++i) {
    std::string piece = " piece" + std::to_string(i);
    const char* before = acc.data();
    acc = arena.Append(acc, piece);
    mirror += piece;
    ASSERT_EQ(acc, mirror);
    // Consecutive appends with room in the block extend in place.
    if (i > 0) {
      EXPECT_EQ(acc.data(), before);
    }
  }
}

TEST(Arena, AppendRelocatesWhenHeadIsNotTopOfArena) {
  Arena arena(/*first_block_bytes=*/1024);
  std::string_view head = arena.Copy("head");
  arena.Copy("an intervening allocation");  // head is no longer on top
  std::string_view combined = arena.Append(head, "+tail");
  EXPECT_EQ(combined, "head+tail");
  EXPECT_EQ(head, "head");  // original copy untouched
}

}  // namespace
}  // namespace condtd
