// Differential tests for the fold-path rebuild: the flat open-addressing
// word cache (FlatWordCache + incremental WordHash) against the legacy
// std::unordered_map oracle it replaced (kept one release behind
// Options::legacy_dedup_cache / CONDTD_LEGACY_DEDUP), and the dense fold
// kernels against the generic map-based paths they shortcut.
//
// The load-bearing assertions compare SaveState text, not just the
// inferred DTD — SaveState exposes SOA state insertion order, every
// support count and the retained samples, so a fold-order or rollback
// bug shows up even when the rewritten DTD happens to coincide.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "automaton/soa.h"
#include "automaton/two_t_inf.h"
#include "base/fold_scratch.h"
#include "base/rng.h"
#include "crx/crx.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "gen/xml_gen.h"
#include "infer/inferrer.h"
#include "infer/streaming.h"
#include "infer/word_cache.h"

namespace condtd {
namespace {

// --- FlatWordCache unit behavior ------------------------------------------

TEST(FlatWordCache, UpsertInsertsThenHits) {
  FlatWordCache cache;
  Symbol word[] = {1, 2, 3};
  uint64_t hash = WordHash::Mix(7, word, 3);
  FlatWordCache::Upserted first = cache.Upsert(hash, 7, word, 3);
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(cache.entry(first.index).count, 0);
  ++cache.entry(first.index).count;

  FlatWordCache::Upserted again = cache.Upsert(hash, 7, word, 3);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.index, first.index);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FlatWordCache, SameWordDifferentElementIsDistinct) {
  FlatWordCache cache;
  Symbol word[] = {4, 5};
  FlatWordCache::Upserted a =
      cache.Upsert(WordHash::Mix(1, word, 2), 1, word, 2);
  FlatWordCache::Upserted b =
      cache.Upsert(WordHash::Mix(2, word, 2), 2, word, 2);
  EXPECT_TRUE(a.inserted);
  EXPECT_TRUE(b.inserted);
  EXPECT_NE(a.index, b.index);
}

TEST(FlatWordCache, EmptyWordKeysWork) {
  FlatWordCache cache;
  FlatWordCache::Upserted a =
      cache.Upsert(WordHash::Mix(3, nullptr, 0), 3, nullptr, 0);
  FlatWordCache::Upserted b =
      cache.Upsert(WordHash::Mix(3, nullptr, 0), 3, nullptr, 0);
  EXPECT_TRUE(a.inserted);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(cache.entry(a.index).length, 0u);
}

TEST(FlatWordCache, GrowthKeepsIndicesCountsAndInsertionOrder) {
  // Push well past the initial 1024-slot table so Grow() runs several
  // times; entry indices (what the rollback journal stores) and counts
  // must survive, and entries() must stay in insertion order.
  FlatWordCache cache;
  constexpr int kWords = 5000;
  std::vector<uint32_t> indices;
  for (int i = 0; i < kWords; ++i) {
    Symbol word[] = {static_cast<Symbol>(i), static_cast<Symbol>(i / 3)};
    FlatWordCache::Upserted result =
        cache.Upsert(WordHash::Mix(9, word, 2), 9, word, 2);
    ASSERT_TRUE(result.inserted);
    cache.entry(result.index).count = i + 1;
    indices.push_back(result.index);
  }
  ASSERT_EQ(cache.size(), static_cast<size_t>(kWords));
  for (int i = 0; i < kWords; ++i) {
    const FlatWordCache::Entry& entry = cache.entry(indices[i]);
    EXPECT_EQ(entry.count, i + 1);
    ASSERT_EQ(entry.length, 2u);
    EXPECT_EQ(entry.word[0], static_cast<Symbol>(i));
    // Insertion order == index order (append-only entry vector).
    EXPECT_EQ(indices[i], static_cast<uint32_t>(i));
  }
  // Every key still findable after all the growth.
  for (int i = 0; i < kWords; i += 97) {
    Symbol word[] = {static_cast<Symbol>(i), static_cast<Symbol>(i / 3)};
    FlatWordCache::Upserted result =
        cache.Upsert(WordHash::Mix(9, word, 2), 9, word, 2);
    EXPECT_FALSE(result.inserted);
    EXPECT_EQ(result.index, static_cast<uint32_t>(i));
  }
}

TEST(FlatWordCache, ClearRewindsAndReuses) {
  FlatWordCache cache;
  Symbol word[] = {1, 2, 3, 4, 5, 6, 7, 8};
  cache.Upsert(WordHash::Mix(1, word, 8), 1, word, 8);
  size_t resident_before = cache.bytes_resident();
  EXPECT_GT(resident_before, 0u);
  cache.Clear();
  EXPECT_TRUE(cache.empty());
  FlatWordCache::Upserted again =
      cache.Upsert(WordHash::Mix(1, word, 8), 1, word, 8);
  EXPECT_TRUE(again.inserted);  // cleared, so it is a fresh insert
  EXPECT_EQ(again.index, 0u);
}

TEST(FlatWordCache, ProbeStepsAccumulate) {
  FlatWordCache cache;
  Symbol word[] = {1};
  cache.Upsert(WordHash::Mix(1, word, 1), 1, word, 1);
  int64_t after_one = cache.probe_steps();
  EXPECT_GE(after_one, 1);
  cache.Upsert(WordHash::Mix(1, word, 1), 1, word, 1);
  EXPECT_GT(cache.probe_steps(), after_one - 1);
}

// --- incremental hash ------------------------------------------------------

TEST(WordHashTest, IncrementalStepsEqualWholeKeyMix) {
  Rng rng(20060912);
  for (int trial = 0; trial < 200; ++trial) {
    Symbol element = static_cast<Symbol>(rng.NextBelow(64));
    size_t length = rng.NextBelow(32);
    std::vector<Symbol> word;
    uint64_t h = WordHash::Seed(element);
    for (size_t i = 0; i < length; ++i) {
      word.push_back(static_cast<Symbol>(rng.NextBelow(10000)));
      h = WordHash::Step(h, word.back());
    }
    EXPECT_EQ(h, WordHash::Mix(element, word.data(), word.size()));
  }
}

// --- dense fold kernels vs the generic paths -------------------------------

/// Folds `word` and a copy shifted out of the dense-ID window, then
/// checks the two SOAs are isomorphic under the shift — the dense flat-
/// array kernel and the generic path must build the same automaton.
void ExpectFoldMatchesShifted(const Word& word, int multiplicity) {
  constexpr Symbol kShift = kDenseFoldWindow + 17;
  Word shifted;
  for (Symbol s : word) shifted.push_back(s + kShift);

  Soa dense;
  Fold2T(word, &dense, multiplicity);
  Soa generic;
  Fold2T(shifted, &generic, multiplicity);

  ASSERT_EQ(dense.NumStates(), generic.NumStates());
  EXPECT_EQ(dense.empty_support(), generic.empty_support());
  for (int q = 0; q < dense.NumStates(); ++q) {
    int p = generic.StateOf(dense.LabelOf(q) + kShift);
    ASSERT_GE(p, 0);
    EXPECT_EQ(dense.StateSupport(q), generic.StateSupport(p));
    EXPECT_EQ(dense.InitialSupport(q), generic.InitialSupport(p));
    EXPECT_EQ(dense.FinalSupport(q), generic.FinalSupport(p));
    for (int to : dense.Successors(q)) {
      int to_p = generic.StateOf(dense.LabelOf(to) + kShift);
      EXPECT_EQ(dense.EdgeSupport(q, to), generic.EdgeSupport(p, to_p));
    }
  }

  CrxState dense_crx;
  dense_crx.AddWord(word, multiplicity);
  CrxState generic_crx;
  generic_crx.AddWord(shifted, multiplicity);
  EXPECT_EQ(dense_crx.num_words(), generic_crx.num_words());
  EXPECT_EQ(dense_crx.empty_count(), generic_crx.empty_count());
  ASSERT_EQ(dense_crx.edges().size(), generic_crx.edges().size());
  for (const auto& [from, to] : dense_crx.edges()) {
    EXPECT_TRUE(generic_crx.edges().count({from + kShift, to + kShift}))
        << "edge " << from << "->" << to << " missing from generic path";
  }
  ASSERT_EQ(dense_crx.histograms().size(), generic_crx.histograms().size());
  for (const auto& [histogram, count] : dense_crx.histograms()) {
    CrxState::Histogram shifted_histogram;
    for (const auto& [symbol, occurrences] : histogram) {
      shifted_histogram.emplace_back(symbol + kShift, occurrences);
    }
    auto it = generic_crx.histograms().find(shifted_histogram);
    ASSERT_NE(it, generic_crx.histograms().end());
    EXPECT_EQ(it->second, count);
  }
}

TEST(DenseFoldKernel, MatchesGenericPathAcrossWordShapes) {
  Rng rng(42);
  // Short words take the straight-line path, length >= kDenseWordMin the
  // aggregated dense kernel; both must agree with the out-of-window
  // generic path. Repeats inside a word exercise the per-state count and
  // distinct-pair aggregation.
  std::vector<Word> words = {
      {},
      {3},
      {1, 2, 3},
      {5, 5, 5, 5, 5, 5, 5, 5, 5},
      {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 2},
  };
  for (int trial = 0; trial < 40; ++trial) {
    Word word;
    size_t length = rng.NextBelow(64);
    for (size_t i = 0; i < length; ++i) {
      word.push_back(static_cast<Symbol>(rng.NextBelow(12)));
    }
    words.push_back(std::move(word));
  }
  for (const Word& word : words) {
    for (int multiplicity : {1, 3}) {
      ExpectFoldMatchesShifted(word, multiplicity);
    }
  }
}

// --- flat vs legacy cache, end to end --------------------------------------

std::vector<std::string> GenerateCorpus(int count, uint64_t seed) {
  Alphabet alphabet;
  Result<Dtd> truth = ParseDtd(
      "<!ELEMENT feed (entry+)>\n"
      "<!ELEMENT entry (title, updated?, (link | content)*, author)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT updated (#PCDATA)>\n"
      "<!ELEMENT link EMPTY>\n"
      "<!ELEMENT content (#PCDATA)>\n"
      "<!ELEMENT author (name, email?)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT email (#PCDATA)>\n",
      &alphabet);
  EXPECT_TRUE(truth.ok());
  Rng rng(seed);
  std::vector<std::string> documents;
  documents.reserve(count);
  for (int i = 0; i < count; ++i) {
    Result<XmlDocument> doc =
        GenerateDocument(truth.value(), alphabet, &rng);
    EXPECT_TRUE(doc.ok());
    documents.push_back(doc->ToXml());
  }
  return documents;
}

struct FoldRun {
  std::string dtd;
  std::string state;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t flushes = 0;
};

/// Folds `documents` through one streaming configuration; `broken`
/// documents (if any) are interleaved after each clean one and must be
/// rejected.
FoldRun RunFold(const std::vector<std::string>& documents,
                const std::vector<std::string>& broken,
                StreamingFolder::Options folder_options) {
  FoldRun run;
  folder_options.ignore_dedup_env = true;  // each run pins its cache
  DtdInferrer inferrer;
  {
    StreamingFolder folder(&inferrer, folder_options);
    for (size_t d = 0; d < documents.size(); ++d) {
      EXPECT_TRUE(folder.AddXml(documents[d]).ok());
      if (d < broken.size() && !broken[d].empty()) {
        EXPECT_FALSE(folder.AddXml(broken[d]).ok());
      }
    }
    run.hits = folder.dedup_hits();
    run.misses = folder.dedup_misses();
    run.flushes = folder.dedup_flushes();
  }
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok());
  if (dtd.ok()) run.dtd = WriteDtd(dtd.value(), *inferrer.alphabet());
  run.state = inferrer.SaveState();
  return run;
}

TEST(DedupDifferential, FlatAndLegacyCachesAreByteIdentical) {
  std::vector<std::string> documents = GenerateCorpus(40, 123);
  StreamingFolder::Options flat;
  StreamingFolder::Options legacy;
  legacy.legacy_dedup_cache = true;
  FoldRun flat_run = RunFold(documents, {}, flat);
  FoldRun legacy_run = RunFold(documents, {}, legacy);
  EXPECT_EQ(flat_run.dtd, legacy_run.dtd);
  EXPECT_EQ(flat_run.state, legacy_run.state);
  // Both caches key on the same (element, word) pairs, so the hit/miss
  // split must agree exactly, not just the DTD.
  EXPECT_EQ(flat_run.hits, legacy_run.hits);
  EXPECT_EQ(flat_run.misses, legacy_run.misses);
  EXPECT_GT(flat_run.hits, 0);
}

TEST(DedupDifferential, MatchesDomPath) {
  std::vector<std::string> documents = GenerateCorpus(25, 77);
  DtdInferrer dom;
  for (const std::string& doc : documents) {
    ASSERT_TRUE(dom.AddXml(doc).ok());
  }
  Result<Dtd> dom_dtd = dom.InferDtd();
  ASSERT_TRUE(dom_dtd.ok());
  FoldRun flat_run = RunFold(documents, {}, {});
  EXPECT_EQ(flat_run.dtd, WriteDtd(dom_dtd.value(), *dom.alphabet()));
  EXPECT_EQ(flat_run.state, dom.SaveState());
}

TEST(DedupDifferential, RejectedDocumentsLeaveNoResidue) {
  std::vector<std::string> documents = GenerateCorpus(20, 456);
  std::vector<std::string> broken;
  for (size_t d = 0; d < documents.size(); ++d) {
    // Truncation of the document folded right before it, mid-way with a
    // dangling '<' — always a parse error, deep enough that completed
    // elements have hit the cache, and introducing no words the clean
    // document did not already insert (a rolled-back novel word would
    // legitimately shift flush order; see CheckDedupCacheEquivalence).
    broken.push_back(d % 2 == 0 ? documents[d].substr(
                                      0, documents[d].size() / 2) + "<"
                                : std::string());
  }
  for (bool legacy : {false, true}) {
    StreamingFolder::Options options;
    options.legacy_dedup_cache = legacy;
    FoldRun with_broken = RunFold(documents, broken, options);
    FoldRun clean_only = RunFold(documents, {}, options);
    EXPECT_EQ(with_broken.dtd, clean_only.dtd)
        << (legacy ? "legacy" : "flat") << " cache leaked rollback state";
    EXPECT_EQ(with_broken.state, clean_only.state)
        << (legacy ? "legacy" : "flat") << " cache leaked rollback state";
  }
}

TEST(DedupDifferential, AbortDocumentMatchesParseFailure) {
  std::vector<std::string> documents = GenerateCorpus(10, 789);
  for (bool legacy : {false, true}) {
    StreamingFolder::Options options;
    options.legacy_dedup_cache = legacy;
    options.ignore_dedup_env = true;

    DtdInferrer aborted;
    {
      StreamingFolder folder(&aborted, options);
      ASSERT_TRUE(folder.AddXml(documents[0]).ok());
      // Feed a clean document, then abort from the outside the way the
      // parallel worker pool does after containing an exception.
      ASSERT_TRUE(folder.AddXml(documents[1]).ok());
      folder.AbortDocument();  // no document in flight: must be a no-op
      for (size_t d = 2; d < documents.size(); ++d) {
        ASSERT_TRUE(folder.AddXml(documents[d]).ok());
      }
    }

    DtdInferrer plain;
    {
      StreamingFolder folder(&plain, options);
      for (const std::string& doc : documents) {
        ASSERT_TRUE(folder.AddXml(doc).ok());
      }
    }
    EXPECT_EQ(aborted.SaveState(), plain.SaveState());
  }
}

TEST(DedupDifferential, EarlyFlushesPreserveTheResult) {
  std::vector<std::string> documents = GenerateCorpus(30, 31337);
  StreamingFolder::Options tiny;
  tiny.max_distinct_words = 4;  // force a flush nearly every document
  FoldRun tiny_run = RunFold(documents, {}, tiny);
  FoldRun big_run = RunFold(documents, {}, {});
  EXPECT_GT(tiny_run.flushes, big_run.flushes);
  EXPECT_EQ(tiny_run.dtd, big_run.dtd);
  // Note: SaveState is NOT compared here — early flushes change fold
  // grouping, which the weighted-fold algebra guarantees only up to the
  // inferred DTD, not SOA state numbering.
}

TEST(DedupDifferential, LegacyEnvVarSelectsTheOracleCache) {
  ASSERT_EQ(setenv("CONDTD_LEGACY_DEDUP", "1", 1), 0);
  DtdInferrer inferrer;
  {
    StreamingFolder folder(&inferrer);
    EXPECT_TRUE(folder.using_legacy_cache());
  }
  ASSERT_EQ(setenv("CONDTD_LEGACY_DEDUP", "0", 1), 0);
  {
    StreamingFolder folder(&inferrer);
    EXPECT_FALSE(folder.using_legacy_cache());
  }
  ASSERT_EQ(unsetenv("CONDTD_LEGACY_DEDUP"), 0);
  {
    StreamingFolder folder(&inferrer);
    EXPECT_FALSE(folder.using_legacy_cache());
  }
}

/// A document with more distinct element names than the dense-ID window
/// pushes symbols onto the generic (map-based) Soa and CRX paths inside
/// a single corpus; flat and legacy caches must still agree bit for bit.
TEST(DedupDifferential, SymbolsBeyondTheDenseWindowStayIdentical) {
  std::string doc = "<r>";
  for (int i = 0; i < kDenseFoldWindow + 200; ++i) {
    std::string name = "e" + std::to_string(i);
    doc += "<" + name + "/><" + name + "/>";
  }
  doc += "</r>";
  // Fold only (no InferDtd — learning a 4000+-state content model is
  // not what this test measures); SaveState captures the full summary.
  auto fold_state = [&](bool legacy) {
    StreamingFolder::Options options;
    options.legacy_dedup_cache = legacy;
    options.ignore_dedup_env = true;
    DtdInferrer inferrer;
    {
      StreamingFolder folder(&inferrer, options);
      EXPECT_TRUE(folder.AddXml(doc).ok());
      EXPECT_TRUE(folder.AddXml(doc).ok());
    }
    return inferrer.SaveState();
  };
  EXPECT_EQ(fold_state(false), fold_state(true));
}

}  // namespace
}  // namespace condtd
