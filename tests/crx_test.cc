#include "crx/crx.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

TEST(Crx, PaperExample1) {
  // Example 1: u = abd, v = bcdee, w = cade yields (a+b+c)+ d e*.
  Alphabet alphabet;
  Result<ReRef> re =
      CrxInfer(WordsFromStrings({"abd", "bcdee", "cade"}, &alphabet));
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_EQ(ToString(re.value(), alphabet, PrintStyle::kPaper),
            "(a + b + c)+de*");
}

TEST(Crx, PaperExamples2Through4) {
  // Examples 2-4: W = {abccde, cccad, bfegg, bfehi} yields
  // (a+b+c)+ (d+f) e? g* h? i?.
  Alphabet alphabet;
  Result<ReRef> re = CrxInfer(
      WordsFromStrings({"abccde", "cccad", "bfegg", "bfehi"}, &alphabet));
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_EQ(ToString(re.value(), alphabet, PrintStyle::kPaper),
            "(a + b + c)+(d + f)e?g*h?i?");
}

TEST(Crx, NonLinearOrderExample) {
  // Section 7: W = {abc, ade, abe} yields a linearization of the partial
  // order with every non-initial factor optional. The paper prints
  // a·b?·d?·c?·e?; our deterministic tie-break produces the equally
  // valid topological sort a·b?·c?·d?·e? ("the order of the factors
  // depends on the topological sort").
  Alphabet alphabet;
  Result<ReRef> re =
      CrxInfer(WordsFromStrings({"abc", "ade", "abe"}, &alphabet));
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_EQ(ToString(re.value(), alphabet, PrintStyle::kPaper),
            "ab?c?d?e?");
  // All three words stay in the language (Theorem 3).
  Matcher matcher(re.value());
  for (const Word& w : WordsFromStrings({"abc", "ade", "abe"}, &alphabet)) {
    EXPECT_TRUE(matcher.Matches(w));
  }
}

TEST(Crx, OutputIsAlwaysChare) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    ReRef target = RandomSore(2 + rng.NextBelow(10), &rng);
    std::vector<Word> sample = SampleWords(target, 20, &rng);
    Result<ReRef> re = CrxInfer(sample);
    if (!re.ok()) continue;  // all-empty sample
    EXPECT_TRUE(IsChare(re.value()));
  }
}

// Theorem 3: W ⊆ L(r_W) on arbitrary random samples.
TEST(Crx, SoundnessOnRandomSamples) {
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    int n = 1 + static_cast<int>(rng.NextBelow(10));
    // Random words, not tied to any RE.
    std::vector<Word> sample;
    int count = 1 + static_cast<int>(rng.NextBelow(20));
    for (int i = 0; i < count; ++i) {
      Word w;
      int len = static_cast<int>(rng.NextBelow(12));
      for (int j = 0; j < len; ++j) {
        w.push_back(static_cast<Symbol>(rng.NextBelow(n)));
      }
      sample.push_back(std::move(w));
    }
    Result<ReRef> re = CrxInfer(sample);
    if (!re.ok()) {
      // Only the all-empty sample may fail.
      for (const Word& w : sample) EXPECT_TRUE(w.empty());
      continue;
    }
    Matcher matcher(re.value());
    for (const Word& w : sample) {
      EXPECT_TRUE(matcher.Matches(w));
    }
  }
}

// Theorem 4: every CHARE is learnable from some sample — the
// representative sample plus multiplicity witnesses suffices in practice.
class CrxRecoversChare : public ::testing::TestWithParam<int> {};

TEST_P(CrxRecoversChare, FromGeneratedSample) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    ReRef target = RandomChare(GetParam(), &rng);
    // Representative sample (all 2-grams) plus random derivations to
    // witness the ?/+/* multiplicities.
    std::vector<Word> sample = RepresentativeSample(target);
    for (const Word& w : SampleWords(target, 60, &rng)) {
      sample.push_back(w);
    }
    Result<ReRef> learned = CrxInfer(sample);
    ASSERT_TRUE(learned.ok()) << learned.status().ToString();
    Alphabet names;
    for (int i = 0; i < GetParam(); ++i) {
      names.Intern("a" + std::to_string(i));
    }
    EXPECT_TRUE(LanguageSubset(target, learned.value()))
        << "target " << ToString(target, names) << " learned "
        << ToString(learned.value(), names);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrxRecoversChare,
                         ::testing::Values(2, 4, 6, 10, 16));

TEST(Crx, LinearSampleSufficesForRepeatedDisjunction) {
  // Section 7's key claim: (a1+...+an)* is learned from the O(n) cyclic
  // 2-gram witnesses {a1a2, a2a3, ..., an a1} (plus an empty word and a
  // repeat witness), not the n^2 sample rewrite needs.
  const int n = 20;
  Alphabet alphabet;
  std::vector<Word> sample;
  for (int i = 0; i < n; ++i) {
    Word w = {static_cast<Symbol>(i), static_cast<Symbol>((i + 1) % n)};
    sample.push_back(w);
  }
  sample.push_back(Word{});  // zero-occurrence witness
  for (int i = 0; i < n; ++i) alphabet.Intern("a" + std::to_string(i + 1));
  Result<ReRef> learned = CrxInfer(sample);
  ASSERT_TRUE(learned.ok());
  std::string expected = "(";
  for (int i = 0; i < n; ++i) {
    if (i > 0) expected += " | ";
    expected += "a" + std::to_string(i + 1);
  }
  expected += ")*";
  EXPECT_EQ(ToString(learned.value(), alphabet), expected);
}

TEST(Crx, IncrementalEqualsBatch) {
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    ReRef target = RandomChare(6, &rng);
    std::vector<Word> sample = SampleWords(target, 30, &rng);

    CrxState batch;
    batch.AddWords(sample);
    CrxState incremental;
    for (const Word& w : sample) incremental.AddWord(w);

    Result<ReRef> a = batch.Infer();
    Result<ReRef> b = incremental.Infer();
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_TRUE(StructurallyEqual(a.value(), b.value()));
    }
  }
}

TEST(Crx, OrderInsensitive) {
  Alphabet alphabet;
  std::vector<Word> sample =
      WordsFromStrings({"abccde", "cccad", "bfegg", "bfehi"}, &alphabet);
  CrxState forward;
  forward.AddWords(sample);
  CrxState backward;
  for (auto it = sample.rbegin(); it != sample.rend(); ++it) {
    backward.AddWord(*it);
  }
  ASSERT_TRUE(forward.Infer().ok());
  EXPECT_TRUE(StructurallyEqual(forward.Infer().value(),
                                backward.Infer().value()));
}

TEST(Crx, EmptySampleFails) {
  EXPECT_FALSE(CrxInfer({}).ok());
  EXPECT_FALSE(CrxInfer({Word{}}).ok());
}

TEST(Crx, EmptyWordMakesEverythingOptional) {
  Alphabet alphabet;
  std::vector<Word> sample = WordsFromStrings({"ab"}, &alphabet);
  sample.push_back(Word{});
  Result<ReRef> re = CrxInfer(sample);
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(Nullable(re.value()));
  EXPECT_EQ(ToString(re.value(), alphabet), "a? b?");
}

TEST(Crx, QualifierSelection) {
  Alphabet alphabet;
  // d exactly once everywhere; e sometimes absent, never repeated;
  // f always present, sometimes repeated; g sometimes absent, repeated.
  Result<ReRef> re = CrxInfer(
      WordsFromStrings({"defg", "dffgg", "df"}, &alphabet));
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(ToString(re.value(), alphabet, PrintStyle::kPaper), "de?f+g*");
}

TEST(Crx, NoiseThresholdDropsRareSymbols) {
  Alphabet alphabet;
  std::vector<std::string> strings(50, "ab");
  strings.push_back("axb");  // single intruder occurrence of x
  Result<ReRef> with_noise =
      CrxInfer(WordsFromStrings(strings, &alphabet));
  ASSERT_TRUE(with_noise.ok());
  EXPECT_NE(ToString(with_noise.value(), alphabet).find("x"),
            std::string::npos);

  CrxState state;
  state.AddWords(WordsFromStrings(strings, &alphabet));
  Result<ReRef> filtered = state.Infer(/*min_symbol_support=*/5);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(ToString(filtered.value(), alphabet), "a b");
}

// Theorem 5: when the induced partial order is linear, CRX's output is
// syntactically optimal — recovery of the exact target CHARE (up to
// commutativity of +) from a characteristic sample.
class CrxSyntacticOptimality : public ::testing::TestWithParam<int> {};

TEST_P(CrxSyntacticOptimality, LinearOrderRecoversExactExpression) {
  Rng rng(9000 + GetParam());
  int recovered = 0;
  int linear_cases = 0;
  for (int trial = 0; trial < 30; ++trial) {
    ReRef target = RandomChare(GetParam(), &rng);
    std::vector<Word> sample = RepresentativeSample(target);
    for (const Word& w : SampleWords(target, 150, &rng)) sample.push_back(w);
    // The representative sample of a CHARE whose factors all touch
    // (every consecutive pair witnessed) induces a linear order, except
    // when adjacent optional factors hide each other; only count the
    // cases where the exact recovery is observed and assert it dominates.
    Result<ReRef> learned = CrxInfer(sample);
    ASSERT_TRUE(learned.ok());
    ++linear_cases;
    if (StructurallyEqual(learned.value(), target)) ++recovered;
  }
  // Exact syntactic recovery in the overwhelming majority of cases.
  EXPECT_GE(recovered * 10, linear_cases * 8)
      << recovered << "/" << linear_cases;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrxSyntacticOptimality,
                         ::testing::Values(3, 5, 8, 12));

TEST(Crx, SingleSymbolLanguages) {
  Alphabet alphabet;
  EXPECT_EQ(ToString(CrxInfer(WordsFromStrings({"a"}, &alphabet)).value(),
                     alphabet),
            "a");
  EXPECT_EQ(
      ToString(CrxInfer(WordsFromStrings({"a", "aa"}, &alphabet)).value(),
               alphabet),
      "a+");
  std::vector<Word> with_empty = WordsFromStrings({"a", "aa"}, &alphabet);
  with_empty.push_back(Word{});
  EXPECT_EQ(ToString(CrxInfer(with_empty).value(), alphabet), "a*");
}

TEST(Crx, HistogramDeduplicationKeepsSummarySmall) {
  CrxState state;
  for (int i = 0; i < 10000; ++i) {
    state.AddWord({0, 1});
    state.AddWord({0, 1, 1});
  }
  EXPECT_EQ(state.num_words(), 20000);
  EXPECT_EQ(state.num_distinct_histograms(), 2);
}

}  // namespace
}  // namespace condtd
