#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/dfa.h"
#include "automaton/nfa.h"
#include "automaton/soa.h"
#include "automaton/state_elimination.h"
#include "automaton/two_t_inf.h"
#include "base/rng.h"
#include "gen/random_regex.h"
#include "gen/representative.h"
#include "gfa/rewrite.h"
#include "regex/equivalence.h"
#include "regex/glushkov.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

// --- 2T-INF / SOA -----------------------------------------------------------

TEST(TwoTInf, Section4Example) {
  // W = {bacacdacde, cbacdbacde, abccaadcde}: I = {a,b,c}, F = {e},
  // S = {aa, ad, ac, ab, ba, bc, cb, cc, ca, cd, da, db, dc, de}.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings(
      {"bacacdacde", "cbacdbacde", "abccaadcde"}, &alphabet));
  EXPECT_EQ(soa.NumStates(), 5);
  auto state = [&](const char* name) {
    return soa.StateOf(alphabet.Find(name));
  };
  for (const char* name : {"a", "b", "c"}) {
    EXPECT_TRUE(soa.IsInitial(state(name))) << name;
  }
  EXPECT_FALSE(soa.IsInitial(state("d")));
  EXPECT_TRUE(soa.IsFinal(state("e")));
  EXPECT_FALSE(soa.IsFinal(state("a")));
  const std::vector<std::string> grams = {"aa", "ad", "ac", "ab", "ba",
                                          "bc", "cb", "cc", "ca", "cd",
                                          "da", "db", "dc", "de"};
  int edges = 0;
  for (const std::string& g : grams) {
    EXPECT_TRUE(soa.HasEdge(state(g.substr(0, 1).c_str()),
                            state(g.substr(1, 1).c_str())))
        << g;
    ++edges;
  }
  EXPECT_EQ(soa.NumEdges(), edges);
  EXPECT_FALSE(soa.accepts_empty());
}

TEST(TwoTInf, SupportsCountObservations) {
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab", "ab", "ab", "ac"}, &alphabet));
  int a = soa.StateOf(alphabet.Find("a"));
  int b = soa.StateOf(alphabet.Find("b"));
  int c = soa.StateOf(alphabet.Find("c"));
  EXPECT_EQ(soa.EdgeSupport(a, b), 3);
  EXPECT_EQ(soa.EdgeSupport(a, c), 1);
  EXPECT_EQ(soa.InitialSupport(a), 4);
  EXPECT_EQ(soa.StateSupport(a), 4);
}

TEST(Soa, AcceptsIsTwoTestable) {
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"abc"}, &alphabet));
  // 2-testability accepts any first/last/2-gram-consistent word, e.g. the
  // original and nothing with unseen grams.
  EXPECT_TRUE(soa.Accepts(alphabet.WordFromChars("abc")));
  EXPECT_FALSE(soa.Accepts(alphabet.WordFromChars("ab")));
  EXPECT_FALSE(soa.Accepts(alphabet.WordFromChars("acb")));
  EXPECT_FALSE(soa.Accepts(Word{}));
}

TEST(Soa, EmptyWordFlag) {
  Alphabet alphabet;
  std::vector<Word> sample = WordsFromStrings({"a"}, &alphabet);
  sample.push_back(Word{});
  Soa soa = Infer2T(sample);
  EXPECT_TRUE(soa.accepts_empty());
  EXPECT_TRUE(soa.Accepts(Word{}));
  EXPECT_EQ(soa.empty_support(), 1);
}

TEST(Soa, Proposition1UniqueSoaPerSore) {
  // The SOA built from a SORE equals the SOA 2T-INF infers from a
  // representative sample (Proposition 1: SOAs are unique up to
  // isomorphism and labels pin the isomorphism).
  Rng rng(321);
  for (int trial = 0; trial < 40; ++trial) {
    ReRef target = RandomSore(1 + rng.NextBelow(9), &rng);
    Soa direct = SoaFromRegex(target);
    Soa inferred = Infer2T(RepresentativeSample(target));
    EXPECT_TRUE(direct.Equals(inferred));
    EXPECT_TRUE(inferred.Equals(direct));
  }
}

TEST(Soa, EqualsDetectsDifferences) {
  Alphabet alphabet;
  Soa x = Infer2T(WordsFromStrings({"ab"}, &alphabet));
  Soa y = Infer2T(WordsFromStrings({"ab", "b"}, &alphabet));
  EXPECT_FALSE(x.Equals(y));
  Soa z = Infer2T(WordsFromStrings({"ab", "ab"}, &alphabet));
  EXPECT_TRUE(x.Equals(z));  // supports are ignored
}

// --- Glushkov / DFA ----------------------------------------------------------

TEST(Glushkov, DeterministicForSores) {
  // SOREs are deterministic REs, so no Glushkov state may carry two
  // outgoing transitions on one symbol.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    ReRef re = RandomSore(1 + rng.NextBelow(8), &rng);
    Nfa nfa = BuildGlushkovNfa(re);
    for (int q = 0; q < nfa.num_states(); ++q) {
      std::set<Symbol> seen;
      for (const auto& [sym, to] : nfa.TransitionsFrom(q)) {
        EXPECT_TRUE(seen.insert(sym).second)
            << "nondeterministic on state " << q;
      }
    }
  }
}

TEST(Dfa, MinimizeReducesAndPreserves) {
  Alphabet alphabet;
  ReRef re = ParseChars("(a|b)+c", &alphabet);
  Dfa dfa = CompileToDfa(re, 3);
  Dfa minimal = dfa.Minimize();
  EXPECT_LE(minimal.num_states(), dfa.num_states());
  EXPECT_TRUE(Dfa::Equivalent(dfa, minimal));
  // Check some words.
  EXPECT_TRUE(minimal.Accepts(alphabet.WordFromChars("abc")));
  EXPECT_FALSE(minimal.Accepts(alphabet.WordFromChars("c")));
}

TEST(Dfa, SubsetAndEquivalence) {
  Alphabet alphabet;
  Dfa small = CompileToDfa(ParseChars("ab", &alphabet), 2);
  Dfa big = CompileToDfa(ParseChars("a+b+", &alphabet), 2);
  EXPECT_TRUE(Dfa::IsSubset(small, big));
  EXPECT_FALSE(Dfa::IsSubset(big, small));
  EXPECT_FALSE(Dfa::Equivalent(small, big));
}

// --- State elimination --------------------------------------------------------

TEST(StateElimination, ProducesEquivalentExpression) {
  Rng rng(55);
  for (int trial = 0; trial < 25; ++trial) {
    ReRef target = RandomSore(1 + rng.NextBelow(6), &rng);
    Soa soa = SoaFromRegex(target);
    for (EliminationOrder order :
         {EliminationOrder::kNatural, EliminationOrder::kMinDegreeProduct}) {
      Result<ReRef> eliminated = StateEliminationRegex(soa, order);
      ASSERT_TRUE(eliminated.ok()) << eliminated.status().ToString();
      EXPECT_TRUE(LanguageEquivalent(target, eliminated.value()));
    }
  }
}

TEST(StateElimination, BlowsUpWhereRewriteStaysLinear) {
  // The motivation of Section 1.3.1: on the Figure 1 automaton the
  // classical algorithm produces an expression like (†) that dwarfs the
  // SORE (‡) found by rewrite.
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings(
      {"bacacdacde", "cbacdbacde", "abccaadcde"}, &alphabet));
  Result<ReRef> eliminated = StateEliminationRegex(soa);
  ASSERT_TRUE(eliminated.ok());
  Result<ReRef> rewritten = RewriteSoaToSore(soa);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(LanguageEquivalent(eliminated.value(), rewritten.value()));
  EXPECT_LE(CountSymbolOccurrences(rewritten.value()), 5);
  EXPECT_GE(CountSymbolOccurrences(eliminated.value()), 20)
      << ToString(eliminated.value(), alphabet);
}

TEST(StateElimination, EmptyLanguageFails) {
  Soa soa;
  soa.AddState(0);  // state with no initial/final markers
  EXPECT_FALSE(StateEliminationRegex(soa).ok());
}

}  // namespace
}  // namespace condtd
