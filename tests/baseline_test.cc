#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "baseline/trang_like.h"
#include "baseline/xtract.h"
#include "crx/crx.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

// --- XTRACT -----------------------------------------------------------------

TEST(Xtract, GeneralizeCollapsesRuns) {
  Alphabet alphabet;
  Word word = alphabet.WordFromChars("aaab");
  std::vector<ReRef> candidates = XtractGeneralize(word);
  ASSERT_GE(candidates.size(), 2u);
  // The plain candidate and a collapsed a*b candidate.
  EXPECT_EQ(ToString(candidates[0], alphabet), "a a a b");
  EXPECT_EQ(ToString(candidates[1], alphabet), "a* b");
}

TEST(Xtract, GeneralizeCollapsesTandemRepeats) {
  Alphabet alphabet;
  Word word = alphabet.WordFromChars("ababc");
  std::vector<ReRef> candidates = XtractGeneralize(word);
  bool found = false;
  for (const ReRef& c : candidates) {
    if (ToString(c, alphabet) == "(a b)* c") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Xtract, FactorSharedPrefix) {
  Alphabet alphabet;
  ReRef disj = Re::Disj({ParseChars("abc", &alphabet),
                         ParseChars("abd", &alphabet)});
  ReRef factored = XtractFactor(disj);
  // a b (c | d) — the common prefix is pulled out.
  EXPECT_EQ(CountSymbolOccurrences(factored), 4);
  EXPECT_TRUE(LanguageEquivalent(disj, factored));
}

TEST(Xtract, CoversAllInputStrings) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    ReRef target = RandomSore(2 + rng.NextBelow(5), &rng);
    std::vector<Word> sample = SampleWords(target, 25, &rng);
    Result<ReRef> learned = XtractInfer(sample);
    bool has_nonempty = false;
    for (const Word& w : sample) has_nonempty = has_nonempty || !w.empty();
    if (!has_nonempty) continue;
    ASSERT_TRUE(learned.ok()) << learned.status().ToString();
    Matcher matcher(learned.value());
    for (const Word& w : sample) {
      EXPECT_TRUE(matcher.Matches(w));
    }
  }
}

TEST(Xtract, OutputGrowsWithDistinctStrings) {
  // The paper's observation (1): XTRACT's output is a disjunction over
  // per-string candidates, so token counts grow with sample diversity,
  // while CRX stays linear in the alphabet.
  Alphabet alphabet;
  ReRef target = ParseChars("a(b|c|d|e)*f", &alphabet);
  Rng rng(6);
  std::vector<Word> small = SampleWords(target, 20, &rng);
  std::vector<Word> large = SampleWords(target, 400, &rng);
  Result<ReRef> xtract_small = XtractInfer(small);
  Result<ReRef> xtract_large = XtractInfer(large);
  ASSERT_TRUE(xtract_small.ok());
  ASSERT_TRUE(xtract_large.ok());
  Result<ReRef> crx_large = CrxInfer(large);
  ASSERT_TRUE(crx_large.ok());
  EXPECT_GT(CountTokens(xtract_large.value()),
            CountTokens(xtract_small.value()));
  EXPECT_GT(CountTokens(xtract_large.value()),
            4 * CountTokens(crx_large.value()));
}

TEST(Xtract, FailsBeyondAThousandDistinctStrings) {
  // The paper's observation (2): XTRACT cannot handle data sets with
  // more than ~1000 strings.
  Rng rng(7);
  std::vector<Word> sample;
  for (int i = 0; i < 1500; ++i) {
    Word w;
    for (int j = 0; j < 8; ++j) {
      w.push_back(static_cast<Symbol>(rng.NextBelow(12)));
    }
    sample.push_back(std::move(w));
  }
  Result<ReRef> learned = XtractInfer(sample);
  ASSERT_FALSE(learned.ok());
  EXPECT_EQ(learned.status().code(), StatusCode::kResourceExhausted);
}

// --- Trang-like --------------------------------------------------------------

TEST(TrangLike, MatchesCrxOnChareData) {
  // Section 8.1: "In all but one case, Trang produced exactly the same
  // output as crx" — reproduce the agreement on CHARE-shaped corpora.
  Rng rng(8);
  int agreements = 0;
  int total = 0;
  for (int trial = 0; trial < 25; ++trial) {
    ReRef target = RandomChare(2 + rng.NextBelow(8), &rng);
    std::vector<Word> sample = RepresentativeSample(target);
    for (const Word& w : SampleWords(target, 40, &rng)) sample.push_back(w);
    Result<ReRef> trang = TrangLikeInfer(sample);
    Result<ReRef> crx = CrxInfer(sample);
    ASSERT_TRUE(trang.ok());
    ASSERT_TRUE(crx.ok());
    ++total;
    if (LanguageEquivalent(trang.value(), crx.value())) ++agreements;
  }
  // Strong but not perfect agreement, as the paper reports.
  EXPECT_GE(agreements * 10, total * 8);
}

TEST(TrangLike, SampleIsAccepted) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    ReRef target = RandomSore(2 + rng.NextBelow(6), &rng);
    std::vector<Word> sample = SampleWords(target, 15, &rng);
    Result<ReRef> learned = TrangLikeInfer(sample);
    bool has_nonempty = false;
    for (const Word& w : sample) has_nonempty = has_nonempty || !w.empty();
    if (!has_nonempty) {
      EXPECT_FALSE(learned.ok());
      continue;
    }
    ASSERT_TRUE(learned.ok());
    Matcher matcher(learned.value());
    for (const Word& w : sample) {
      EXPECT_TRUE(matcher.Matches(w));
    }
  }
}

TEST(TrangLike, MergesCyclesIntoRepeatedDisjunction) {
  Alphabet alphabet;
  Result<ReRef> learned =
      TrangLikeInfer(WordsFromStrings({"abab", "ba"}, &alphabet));
  ASSERT_TRUE(learned.ok());
  // a and b form one SCC → (a|b)+ (mandatory since every path uses it).
  EXPECT_EQ(ToString(learned.value(), alphabet), "(a | b)+");
}

TEST(TrangLike, Example1ShapeIsChareApproximation) {
  // On example1 = a1+ + (a2? a3+) Trang (like CRX) can only produce the
  // CHARE super-approximation a1* a2? a3*.
  Alphabet alphabet;
  ReRef target = ParseChars("d+|(e?f+)", &alphabet);  // isomorphic shape
  std::vector<Word> sample = RepresentativeSample(target);
  Rng rng(10);
  for (const Word& w : SampleWords(target, 40, &rng)) sample.push_back(w);
  Result<ReRef> learned = TrangLikeInfer(sample);
  ASSERT_TRUE(learned.ok());
  EXPECT_TRUE(LanguageSubset(target, learned.value()));
  EXPECT_EQ(ToString(learned.value(), alphabet), "d* e? f*");
}

}  // namespace
}  // namespace condtd
