#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "xsd/numeric.h"
#include "xsd/writer.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;

TEST(Numeric, ExactAndLowerBounds) {
  // Sample aabb+ -> a=2 b>=2 (the paper's Section 9 example).
  Alphabet alphabet;
  ReRef re = ParseChars("a+b+", &alphabet);
  std::vector<Word> sample = {
      alphabet.WordFromChars("aabb"),
      alphabet.WordFromChars("aabbb"),
      alphabet.WordFromChars("aabbbb"),
  };
  NumericAnnotations annotations = AnnotateNumeric(re, sample);
  ASSERT_EQ(annotations.size(), 2u);
  EXPECT_EQ(ToNumericString(re, annotations, alphabet), "a=2 b>=2");
}

TEST(Numeric, StarFactorsMayHaveZeroMin) {
  Alphabet alphabet;
  ReRef re = ParseChars("a*b", &alphabet);
  std::vector<Word> sample = {
      alphabet.WordFromChars("b"),
      alphabet.WordFromChars("aaab"),
  };
  NumericAnnotations annotations = AnnotateNumeric(re, sample);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(ToNumericString(re, annotations, alphabet), "a>=0 b");
}

TEST(Numeric, DisjunctionFactor) {
  Alphabet alphabet;
  ReRef re = ParseChars("(a|b)+c", &alphabet);
  std::vector<Word> sample = {
      alphabet.WordFromChars("abc"),
      alphabet.WordFromChars("bac"),
      alphabet.WordFromChars("aac"),
  };
  NumericAnnotations annotations = AnnotateNumeric(re, sample);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(ToNumericString(re, annotations, alphabet), "(a + b)=2 c");
}

TEST(Numeric, NonSoreGetsNoAnnotations) {
  Alphabet alphabet;
  ReRef re = ParseChars("a(a|b)*", &alphabet);
  EXPECT_TRUE(AnnotateNumeric(re, {alphabet.WordFromChars("ab")}).empty());
}

TEST(XsdWriter, StructuralOutput) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT r (a+, (b | c)?)>\n"
      "<!ELEMENT a (#PCDATA)>\n"
      "<!ELEMENT b EMPTY>\n"
      "<!ELEMENT c (#PCDATA | a)*>\n"
      "<!ATTLIST r id CDATA #REQUIRED>\n",
      &alphabet);
  ASSERT_TRUE(dtd.ok());
  std::string xsd = WriteXsd(dtd.value(), alphabet);
  EXPECT_NE(xsd.find("<xs:schema"), std::string::npos);
  EXPECT_NE(xsd.find("<xs:element name=\"r\">"), std::string::npos);
  EXPECT_NE(xsd.find("<xs:element ref=\"a\" maxOccurs=\"unbounded\"/>"),
            std::string::npos)
      << xsd;
  EXPECT_NE(xsd.find("<xs:choice minOccurs=\"0\">"), std::string::npos)
      << xsd;
  EXPECT_NE(xsd.find("mixed=\"true\""), std::string::npos);
  EXPECT_NE(xsd.find("use=\"required\""), std::string::npos);
  EXPECT_NE(xsd.find("type=\"xs:string\""), std::string::npos);
}

TEST(XsdWriter, NumericExtrasOverrideBounds) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd("<!ELEMENT r (a+)> <!ELEMENT a EMPTY>",
                             &alphabet);
  ASSERT_TRUE(dtd.ok());
  const ContentModel& model = dtd->elements.at(alphabet.Find("r"));
  std::map<Symbol, XsdElementExtras> extras;
  NumericAnnotation bounds;
  bounds.min_occurs = 3;
  bounds.max_occurs = NumericAnnotation::kUnbounded;
  extras[alphabet.Find("r")].numeric[model.regex.get()] = bounds;
  std::string xsd = WriteXsd(dtd.value(), alphabet, extras);
  EXPECT_NE(xsd.find("minOccurs=\"3\" maxOccurs=\"unbounded\""),
            std::string::npos)
      << xsd;
}

TEST(SimpleType, Heuristics) {
  EXPECT_EQ(InferSimpleType({"1", "42", "-7"}), "xs:integer");
  EXPECT_EQ(InferSimpleType({"1.5", "2"}), "xs:decimal");
  EXPECT_EQ(InferSimpleType({"2006-09-12", "2026-07-04"}), "xs:date");
  EXPECT_EQ(InferSimpleType({"true", "false"}), "xs:boolean");
  EXPECT_EQ(InferSimpleType({"hello", "1"}), "xs:string");
  EXPECT_EQ(InferSimpleType({}), "xs:string");
}

}  // namespace
}  // namespace condtd
