#include "infer/inferrer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/validator.h"
#include "gen/xml_gen.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "xml/parser.h"
#include "xsd/numeric.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;

constexpr char kBooksXml[] = R"(
<library>
  <book id="1"><title>A</title><author>x</author><author>y</author></book>
  <book id="2"><title>B</title><author>z</author><year>2001</year></book>
  <book><title>C</title><author>w</author></book>
</library>)";

TEST(DtdInferrer, EndToEndFromXml) {
  DtdInferrer inferrer;
  ASSERT_TRUE(inferrer.AddXml(kBooksXml).ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const Alphabet& alphabet = *inferrer.alphabet();
  EXPECT_EQ(dtd->root, alphabet.Find("library"));

  const ContentModel& book = dtd->elements.at(alphabet.Find("book"));
  ASSERT_EQ(book.kind, ContentKind::kChildren);
  EXPECT_EQ(ToDtdString(book.regex, alphabet), "(title, author+, year?)");

  const ContentModel& title = dtd->elements.at(alphabet.Find("title"));
  EXPECT_EQ(title.kind, ContentKind::kPcdataOnly);

  // Attribute inference: id occurs on 2 of 3 books → #IMPLIED.
  const auto& attrs = dtd->attributes.at(alphabet.Find("book"));
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].name, "id");
  EXPECT_EQ(attrs[0].default_decl, "#IMPLIED");
}

TEST(DtdInferrer, InferredDtdValidatesItsOwnCorpus) {
  DtdInferrer inferrer;
  ASSERT_TRUE(inferrer.AddXml(kBooksXml).ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok());
  Result<XmlDocument> doc = ParseXml(kBooksXml);
  ASSERT_TRUE(doc.ok());
  Alphabet alphabet = *inferrer.alphabet();
  ValidationReport report = Validate(doc.value(), dtd.value(), &alphabet);
  EXPECT_TRUE(report.valid())
      << report.issues[0].element << ": " << report.issues[0].message;
}

TEST(DtdInferrer, EmptyAndMixedContent) {
  DtdInferrer inferrer;
  ASSERT_TRUE(inferrer
                  .AddXml("<r><e/><e/><p>text <b>bold</b> more</p></r>")
                  .ok());
  Result<Dtd> dtd = inferrer.InferDtd();
  ASSERT_TRUE(dtd.ok());
  const Alphabet& alphabet = *inferrer.alphabet();
  EXPECT_EQ(dtd->elements.at(alphabet.Find("e")).kind, ContentKind::kEmpty);
  const ContentModel& p = dtd->elements.at(alphabet.Find("p"));
  EXPECT_EQ(p.kind, ContentKind::kMixed);
  ASSERT_EQ(p.mixed_symbols.size(), 1u);
  EXPECT_EQ(p.mixed_symbols[0], alphabet.Find("b"));
}

TEST(DtdInferrer, IncrementalMatchesBatch) {
  // Section 9: adding documents one at a time must give the same DTD as
  // processing them at once.
  std::vector<std::string> docs = {
      "<db><rec><k/><v/></rec></db>",
      "<db><rec><k/></rec><rec><k/><v/><v/></rec></db>",
      "<db/>",
  };
  DtdInferrer incremental;
  for (const std::string& doc : docs) {
    ASSERT_TRUE(incremental.AddXml(doc).ok());
  }
  DtdInferrer batch;
  std::string all;
  // Feed the same documents in one go (separate AddXml calls are already
  // incremental; compare against a re-ordered feed as well).
  ASSERT_TRUE(batch.AddXml(docs[2]).ok());
  ASSERT_TRUE(batch.AddXml(docs[0]).ok());
  ASSERT_TRUE(batch.AddXml(docs[1]).ok());

  Result<Dtd> a = incremental.InferDtd();
  Result<Dtd> b = batch.InferDtd();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(WriteDtd(a.value(), *incremental.alphabet()),
            WriteDtd(b.value(), *batch.alphabet()));
}

TEST(DtdInferrer, AlgorithmSelection) {
  // Sparse data through CRX generalizes; iDTD specializes.
  std::vector<Word> words;
  Alphabet scratch;
  for (const char* s : {"ab", "ba"}) {
    words.push_back(scratch.WordFromChars(s));
  }
  InferenceOptions crx_options;
  crx_options.algorithm = InferenceAlgorithm::kCrx;
  DtdInferrer crx(crx_options);
  // Intern a and b first so ids line up with the scratch alphabet used
  // to build the words.
  Symbol a = crx.alphabet()->Intern("a");
  Symbol b = crx.alphabet()->Intern("b");
  Symbol e = crx.alphabet()->Intern("e");
  ASSERT_EQ(a, scratch.Find("a"));
  ASSERT_EQ(b, scratch.Find("b"));
  crx.AddWords(e, words);
  Result<ContentModel> crx_model = crx.InferContentModel(e);
  ASSERT_TRUE(crx_model.ok());
  EXPECT_EQ(ToDtdString(crx_model->regex, *crx.alphabet()), "(a | b)+");

  InferenceOptions idtd_options;
  idtd_options.algorithm = InferenceAlgorithm::kIdtd;
  DtdInferrer idtd(idtd_options);
  idtd.alphabet()->Intern("a");
  idtd.alphabet()->Intern("b");
  idtd.alphabet()->Intern("e");
  idtd.AddWords(e, words);
  Result<ContentModel> idtd_model = idtd.InferContentModel(e);
  ASSERT_TRUE(idtd_model.ok());
  // iDTD's SORE is more specific: (ab|ba)-ish superset, not (a|b)+.
  Alphabet names = *idtd.alphabet();
  EXPECT_TRUE(Matches(idtd_model->regex, scratch.WordFromChars("ab")));
  EXPECT_TRUE(Matches(idtd_model->regex, scratch.WordFromChars("ba")));
}

TEST(DtdInferrer, XsdOutputWithNumericPredicatesAndTypes) {
  DtdInferrer inferrer;
  // b occurs exactly twice in every record; c at least twice.
  ASSERT_TRUE(inferrer
                  .AddXml("<r>"
                          "<rec><b/><b/><c/><c/></rec>"
                          "<rec><b/><b/><c/><c/><c/></rec>"
                          "<num>42</num><num>7</num>"
                          "</r>")
                  .ok());
  Result<std::string> xsd = inferrer.InferXsd();
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  EXPECT_NE(xsd->find("xs:schema"), std::string::npos);
  EXPECT_NE(xsd->find("minOccurs=\"2\""), std::string::npos) << *xsd;
  EXPECT_NE(xsd->find("type=\"xs:integer\""), std::string::npos) << *xsd;
}

TEST(DtdInferrer, RoundTripWithGeneratedCorpus) {
  // Full-circle integration: take a DTD, generate a corpus from it,
  // infer a DTD back, and validate the corpus against the inferred DTD.
  Alphabet alphabet;
  Result<Dtd> truth = ParseDtd(
      "<!ELEMENT db (entry+)>\n"
      "<!ELEMENT entry (name, seq?, (ref | note)*)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT seq (#PCDATA)>\n"
      "<!ELEMENT ref EMPTY>\n"
      "<!ELEMENT note (#PCDATA)>\n",
      &alphabet);
  ASSERT_TRUE(truth.ok());
  Rng rng(11);
  std::vector<std::string> corpus;
  for (int i = 0; i < 120; ++i) {
    Result<XmlDocument> doc =
        GenerateDocument(truth.value(), alphabet, &rng);
    ASSERT_TRUE(doc.ok());
    corpus.push_back(doc->ToXml());
  }
  DtdInferrer inferrer;
  for (const std::string& doc : corpus) {
    ASSERT_TRUE(inferrer.AddXml(doc).ok());
  }
  Result<Dtd> inferred = inferrer.InferDtd();
  ASSERT_TRUE(inferred.ok()) << inferred.status().ToString();
  Alphabet inferred_alphabet = *inferrer.alphabet();
  for (const std::string& text : corpus) {
    Result<XmlDocument> doc = ParseXml(text);
    ASSERT_TRUE(doc.ok());
    ValidationReport report =
        Validate(doc.value(), inferred.value(), &inferred_alphabet);
    EXPECT_TRUE(report.valid())
        << report.issues[0].element << ": " << report.issues[0].message;
  }
}

TEST(DtdInferrer, ErrorsOnEmptyState) {
  DtdInferrer inferrer;
  EXPECT_EQ(inferrer.InferDtd().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(inferrer.InferContentModel(0).status().code(),
            StatusCode::kNotFound);
}

TEST(DtdInferrer, NoiseThresholdCleansContentModels) {
  InferenceOptions options;
  options.algorithm = InferenceAlgorithm::kCrx;
  options.noise_symbol_threshold = 5;
  DtdInferrer inferrer(options);
  Symbol e = inferrer.alphabet()->Intern("e");
  Symbol a = inferrer.alphabet()->Intern("a");
  Symbol noise = inferrer.alphabet()->Intern("zz");
  std::vector<Word> words(50, Word{a});
  words.push_back(Word{a, noise});
  inferrer.AddWords(e, words);
  Result<ContentModel> model = inferrer.InferContentModel(e);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(ToDtdString(model->regex, *inferrer.alphabet()), "(a)");
}

}  // namespace
}  // namespace condtd
