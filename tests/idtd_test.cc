#include "idtd/idtd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automaton/two_t_inf.h"
#include "base/rng.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "gen/reservoir.h"
#include "idtd/repair.h"
#include "gfa/rewrite.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

TEST(Repair, EnableDisjunctionRestoresFigure1FromFigure2) {
  // Section 6's worked example: the Figure 2 automaton (inferred from
  // only two strings) is repaired by enable-disjunction on {a, c}; the
  // added edges are exactly the observations separating Figure 2 from
  // Figure 1.
  Alphabet alphabet;
  std::vector<Word> partial =
      WordsFromStrings({"bacacdacde", "cbacdbacde"}, &alphabet);
  Soa soa2 = Infer2T(partial);
  std::vector<Word> full = WordsFromStrings(
      {"bacacdacde", "cbacdbacde", "abccaadcde"}, &alphabet);
  Soa soa1 = Infer2T(full);

  Gfa gfa = Gfa::FromSoa(soa2);
  ASSERT_EQ(RewriteFixpoint(&gfa), 0);  // rewrite is stuck on Figure 2
  ASSERT_TRUE(EnableDisjunction(&gfa, /*k=*/2));
  // After the repair the edge set matches Figure 1: 5 states, the six
  // missing 2-grams {aa, ab, ad, bc, cc, dc} plus initial marker a.
  Gfa expected = Gfa::FromSoa(soa1);
  EXPECT_EQ(gfa.NumEdges(), expected.NumEdges());
  for (int v : expected.LiveNodes()) {
    for (int w : expected.Out(v)) {
      EXPECT_TRUE(gfa.HasEdge(v, w)) << v << "->" << w;
    }
  }
}

TEST(Idtd, RecoversIntendedExpressionFromFigure2) {
  // iDTD started on the Figure 2 automaton still derives the intended
  // ((b?(a+c))+d)+e.
  Alphabet alphabet;
  std::vector<Word> partial =
      WordsFromStrings({"bacacdacde", "cbacdbacde"}, &alphabet);
  Result<ReRef> learned = IdtdInfer(partial);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  ReRef paper = ParseChars("((b?(a|c))+d)+e", &alphabet);
  EXPECT_TRUE(LanguageEquivalent(paper, learned.value()))
      << ToString(learned.value(), alphabet);
}

TEST(Idtd, AgreesWithRewriteOnRepresentativeSamples) {
  // When rewrite alone succeeds, iDTD must return the same language (it
  // only repairs when stuck).
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    ReRef target = RandomSore(2 + rng.NextBelow(8), &rng);
    std::vector<Word> sample = RepresentativeSample(target);
    Result<ReRef> via_rewrite = RewriteInfer(sample);
    ASSERT_TRUE(via_rewrite.ok());
    Result<ReRef> via_idtd = IdtdInfer(sample);
    ASSERT_TRUE(via_idtd.ok());
    EXPECT_TRUE(LanguageEquivalent(via_rewrite.value(), via_idtd.value()));
  }
}

// Theorem 2: iDTD always produces a SORE r with L(A) ⊆ L(r), even on
// heavily subsampled (non-representative) SOAs.
class IdtdSupersetSweep : public ::testing::TestWithParam<int> {};

TEST_P(IdtdSupersetSweep, SupersetOnSubsampledData) {
  const int num_symbols = GetParam();
  Rng rng(777 + num_symbols);
  for (int trial = 0; trial < 15; ++trial) {
    ReRef target = RandomSore(num_symbols, &rng);
    std::vector<Word> full = RepresentativeSample(target);
    for (const Word& w : SampleWords(target, 10, &rng)) full.push_back(w);
    // Subsample aggressively so edges go missing.
    int k = 1 + static_cast<int>(rng.NextBelow(full.size()));
    std::vector<Word> sample = ReservoirSample(full, k, &rng);
    if (sample.empty()) continue;
    bool all_empty = true;
    for (const Word& w : sample) all_empty = all_empty && w.empty();
    if (all_empty) continue;

    Result<ReRef> learned = IdtdInfer(sample);
    ASSERT_TRUE(learned.ok()) << learned.status().ToString();
    EXPECT_TRUE(IsSore(learned.value()));
    // Every sample word must be accepted (L(G_W) ⊆ L(r)).
    Matcher matcher(learned.value());
    for (const Word& w : sample) {
      Alphabet names;
      for (int i = 0; i < num_symbols; ++i) {
        names.Intern(std::string(1, 'a' + i));
      }
      EXPECT_TRUE(matcher.Matches(w))
          << "learned " << ToString(learned.value(), names) << " rejects "
          << names.WordToString(w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IdtdSupersetSweep,
                         ::testing::Values(2, 3, 5, 8, 12, 16));

TEST(Idtd, SoaLanguageSubsetOfResult) {
  // The stronger form of Theorem 2, checked exactly with the DFA
  // oracle: L(SOA) ⊆ L(iDTD(SOA)).
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    ReRef target = RandomSore(2 + rng.NextBelow(6), &rng);
    std::vector<Word> sample = SampleWords(target, 6, &rng);
    bool all_empty = true;
    for (const Word& w : sample) all_empty = all_empty && w.empty();
    if (all_empty) continue;
    Soa soa = Infer2T(sample);
    Result<ReRef> learned = IdtdFromSoa(soa);
    ASSERT_TRUE(learned.ok());
    int num_symbols = 0;
    for (Symbol s : SymbolsOf(learned.value())) {
      num_symbols = std::max(num_symbols, static_cast<int>(s) + 1);
    }
    Dfa soa_dfa = Dfa::FromNfa(soa.ToNfa(), num_symbols);
    Dfa re_dfa = CompileToDfa(learned.value(), num_symbols);
    EXPECT_TRUE(Dfa::IsSubset(soa_dfa, re_dfa));
  }
}

TEST(Idtd, FallbackTerminatesOnAdversarialAutomaton) {
  // A dense random SOA with no SORE structure: the unrestricted variant
  // (escalating k + full merge) must still terminate with a SORE.
  Rng rng(9);
  Soa soa;
  const int n = 10;
  for (Symbol s = 0; s < n; ++s) soa.AddState(s);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.31)) soa.AddEdge(i, j);
    }
  }
  soa.AddInitial(0);
  soa.AddFinal(n - 1);
  soa.AddEdge(0, n - 1);
  Result<ReRef> learned = IdtdFromSoa(soa);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_TRUE(IsSore(learned.value()));
}

TEST(Idtd, NoiseThresholdDropsLowSupportEdges) {
  // 200 clean words of (ab)+ plus one noisy word with an inverted pair;
  // with edge-support noise handling the clean SORE is recovered.
  Alphabet alphabet;
  std::vector<std::string> strings;
  for (int i = 0; i < 100; ++i) {
    strings.push_back("ab");
    strings.push_back("abab");
  }
  strings.push_back("ba");  // noise: starts with b, edge b->a start
  std::vector<Word> sample = WordsFromStrings(strings, &alphabet);

  IdtdOptions options;
  options.noise_edge_threshold = 5;
  Result<ReRef> learned = IdtdInfer(sample, options);
  ASSERT_TRUE(learned.ok());
  ReRef clean = ParseChars("(ab)+", &alphabet);
  EXPECT_TRUE(LanguageEquivalent(clean, learned.value()))
      << ToString(learned.value(), alphabet);
}

TEST(Idtd, EmptySoaFails) {
  Soa soa;
  EXPECT_EQ(IdtdFromSoa(soa).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Idtd, SingleStateSoa) {
  Alphabet alphabet;
  Result<ReRef> learned =
      IdtdInfer(WordsFromStrings({"a", "aa"}, &alphabet));
  ASSERT_TRUE(learned.ok());
  EXPECT_EQ(ToString(learned.value(), alphabet), "a+");
}

}  // namespace
}  // namespace condtd
