// Property-based conformance suite: every registered learner is run
// against hundreds of random target expressions and checked against the
// invariant oracles of src/check (sample inclusion, one-unambiguity,
// SORE/CHARE validity, the Theorem 1/2 language guarantees), plus the
// merge-algebra, ingestion-equivalence and DTD round-trip properties.
//
// Every failure prints a one-line reproduction recipe; re-run with
// CONDTD_PROPERTY_SEED=<printed seed> to replay the failing instance as
// instance 0.

#include "check/property.h"

#include <gtest/gtest.h>

#include "check/oracles.h"

namespace condtd {
namespace {

/// Instance counts per property. The learner properties meet the
/// >= 500-instances-per-learner bar; the corpus-level properties spin up
/// whole ingestion pipelines per instance and run fewer.
constexpr int kLearnerInstances = 500;
constexpr int kInterleavingInstances = 250;  // two learners per instance
constexpr int kMergeLawInstances = 200;
constexpr int kRoundTripInstances = 300;
constexpr int kIngestionInstances = 60;
constexpr int kDedupCacheInstances = 60;

PropertyOptions BaseOptions(int instances) {
  PropertyOptions options;
  options.seed = SeedFromEnv(options.seed);
  options.instances = instances;
  return options;
}

void ExpectNoFailures(const std::vector<PropertyFailure>& failures) {
  for (const PropertyFailure& failure : failures) {
    ADD_FAILURE() << FailureToString(failure);
  }
}

TEST(LearnerProperty, Idtd) {
  ExpectNoFailures(
      RunLearnerProperty("idtd", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Rewrite) {
  ExpectNoFailures(
      RunLearnerProperty("rewrite", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Crx) {
  ExpectNoFailures(
      RunLearnerProperty("crx", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Auto) {
  ExpectNoFailures(
      RunLearnerProperty("auto", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Isore) {
  ExpectNoFailures(
      RunLearnerProperty("isore", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Sire) {
  ExpectNoFailures(
      RunLearnerProperty("sire", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Trang) {
  ExpectNoFailures(
      RunLearnerProperty("trang", BaseOptions(kLearnerInstances)));
}

TEST(LearnerProperty, Xtract) {
  ExpectNoFailures(
      RunLearnerProperty("xtract", BaseOptions(kLearnerInstances)));
}

// Interleaving targets: random top-level shuffles of disjoint SOREs,
// learned by isore and sire; both must emit a valid SIRE that contains
// the sample, stays one-unambiguous and never exceeds (in tokens or in
// language) the idtd/crx baseline on the same summary.
TEST(LearnerProperty, InterleavingTargets) {
  ExpectNoFailures(
      RunInterleavingProperty(BaseOptions(kInterleavingInstances)));
}

TEST(AlgebraProperty, MergeLaws) {
  ExpectNoFailures(RunMergeLawProperty(BaseOptions(kMergeLawInstances)));
}

TEST(AlgebraProperty, IngestionEquivalence) {
  ExpectNoFailures(RunIngestionProperty(BaseOptions(kIngestionInstances)));
}

TEST(AlgebraProperty, DtdRoundTrip) {
  ExpectNoFailures(RunRoundTripProperty(BaseOptions(kRoundTripInstances)));
}

TEST(AlgebraProperty, DedupCacheEquivalence) {
  ExpectNoFailures(
      RunDedupCacheProperty(BaseOptions(kDedupCacheInstances)));
}

// Harness self-checks: the printed seed must reproduce the failing
// instance directly (instance 0 uses the base seed verbatim), and the
// derived streams must not collide trivially.
TEST(PropertyHarness, InstanceSeedZeroIsBase) {
  EXPECT_EQ(InstanceSeed(12345, 0), 12345u);
  EXPECT_NE(InstanceSeed(12345, 1), 12345u);
  EXPECT_NE(InstanceSeed(12345, 1), InstanceSeed(12345, 2));
  EXPECT_NE(InstanceSeed(12345, 1), InstanceSeed(54321, 1));
}

TEST(PropertyHarness, ReproLineCarriesSeed) {
  PropertyFailure failure;
  failure.learner = "idtd";
  failure.seed = 987654321;
  failure.oracle = "sample-inclusion";
  std::string line = ReproLine(failure);
  EXPECT_NE(line.find("CONDTD_PROPERTY_SEED=987654321"), std::string::npos)
      << line;
}

// A deliberately broken "learner output" must trip the oracles — guards
// against the harness silently passing everything.
TEST(PropertyHarness, OraclesDetectViolations) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("a");
  Symbol b = alphabet.Intern("b");
  ReRef just_a = Re::Sym(a);
  ReRef a_then_b = Re::Concat({Re::Sym(a), Re::Sym(b)});

  EXPECT_FALSE(
      CheckSampleInclusion(just_a, {{a, b}}, alphabet).passed);
  EXPECT_TRUE(CheckSampleInclusion(a_then_b, {{a, b}}, alphabet).passed);

  // a?a: two competing a-positions, so neither one-unambiguous nor SORE.
  ReRef ambiguous = Re::Concat({Re::Opt(Re::Sym(a)), Re::Sym(a)});
  EXPECT_FALSE(CheckDeterminism(ambiguous, alphabet).passed);
  EXPECT_FALSE(CheckSoreValidity(ambiguous, alphabet).passed);
  EXPECT_TRUE(CheckSoreValidity(a_then_b, alphabet).passed);

  EXPECT_FALSE(CheckLanguageInclusion(a_then_b, just_a, alphabet).passed);
  EXPECT_TRUE(CheckLanguageInclusion(just_a,
                                     Re::Disj({just_a, a_then_b}),
                                     alphabet)
                  .passed);
  EXPECT_FALSE(CheckLanguageEquivalence(just_a, a_then_b, alphabet).passed);

  // Interleaving oracles. a & b is a SIRE; a shuffle nested under any
  // operator is not in the restricted class.
  ReRef shuffle = Re::Shuffle({Re::Sym(a), Re::Sym(b)});
  EXPECT_TRUE(CheckSireValidity(shuffle, alphabet).passed);
  EXPECT_TRUE(CheckSireValidity(a_then_b, alphabet).passed);
  EXPECT_FALSE(CheckSireValidity(Re::Plus(shuffle), alphabet).passed);

  // Dominance: a & b (2 tokens) vs its 4-token expansion passes; vs the
  // one-order baseline "a b" it fails — 'b a' escapes the baseline.
  ReRef expansion = Re::Disj({Re::Concat({Re::Sym(a), Re::Sym(b)}),
                              Re::Concat({Re::Sym(b), Re::Sym(a)})});
  EXPECT_TRUE(CheckConcisenessDominance(shuffle, expansion, alphabet).passed);
  EXPECT_FALSE(
      CheckConcisenessDominance(shuffle, a_then_b, alphabet).passed);
}

}  // namespace
}  // namespace condtd
