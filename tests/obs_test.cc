// Tests for the observability layer (src/obs/): the determinism
// contract (Counter values byte-identical at any shard count), the
// schema-stable JSON report, the disabled-path guarantee, and the
// inference output being independent of whether stats are collected.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "gen/xml_gen.h"
#include "infer/inferrer.h"
#include "infer/parallel.h"
#include "infer/streaming.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace condtd {
namespace {

// Collection tests are meaningless when the layer is compiled out; the
// disabled-path and output-invariance tests below still run.
#ifdef CONDTD_NO_STATS
#define SKIP_WITHOUT_STATS() \
  GTEST_SKIP() << "observability compiled out (CONDTD_NO_STATS)"
#else
#define SKIP_WITHOUT_STATS() (void)0
#endif

/// Enables and zeroes the registry for one test, restoring the default
/// (disabled, zeroed) state on exit so tests cannot leak counts into
/// each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EnableStats(true);
    obs::ResetStats();
  }
  void TearDown() override {
    obs::EnableStats(false);
    obs::ResetStats();
  }
};

std::vector<std::string> GenerateCorpus(int count, uint64_t seed) {
  Alphabet alphabet;
  Result<Dtd> truth = ParseDtd(
      "<!ELEMENT feed (entry+)>\n"
      "<!ELEMENT entry (title, updated?, (link | content)*, author)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT updated (#PCDATA)>\n"
      "<!ELEMENT link EMPTY>\n"
      "<!ELEMENT content (#PCDATA)>\n"
      "<!ELEMENT author (name, email?)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT email (#PCDATA)>\n",
      &alphabet);
  EXPECT_TRUE(truth.ok());
  Rng rng(seed);
  std::vector<std::string> documents;
  documents.reserve(count);
  for (int i = 0; i < count; ++i) {
    Result<XmlDocument> doc = GenerateDocument(truth.value(), alphabet, &rng);
    EXPECT_TRUE(doc.ok());
    documents.push_back(doc->ToXml());
  }
  return documents;
}

/// Runs the full sharded pipeline (ingest + infer + DTD emit) and
/// returns the DTD text; the caller reads the registry afterwards.
std::string RunPipeline(const std::vector<std::string>& documents,
                        int num_threads) {
  ParallelDtdInferrer inferrer(InferenceOptions{}, num_threads);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.merged()->alphabet());
}

/// Extracts the text of `"key": {...}` (with its nested braces) from a
/// rendered JSON report — for byte-comparing the deterministic subtrees
/// across runs. No string value in the report contains a brace, so
/// plain brace counting is exact.
std::string JsonSection(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": {";
  size_t start = json.find(needle);
  EXPECT_NE(start, std::string::npos) << "missing section " << key;
  if (start == std::string::npos) return "";
  size_t i = start + needle.size() - 1;
  int depth = 0;
  for (; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) break;
  }
  return json.substr(start, i + 1 - start);
}

TEST_F(ObsTest, DeterministicCountersAreByteIdenticalAcrossJobs) {
  SKIP_WITHOUT_STATS();
  std::vector<std::string> documents = GenerateCorpus(120, 20060912);

  std::string base_dtd;
  std::string base_counters;
  std::string base_learners;
  for (int jobs : {1, 2, 7}) {
    obs::ResetStats();
    std::string dtd = RunPipeline(documents, jobs);
    std::string json = obs::RenderStatsJson(obs::SnapshotStats());
    std::string counters = JsonSection(json, "counters");
    std::string learners = JsonSection(json, "learners");
    if (jobs == 1) {
      base_dtd = dtd;
      base_counters = counters;
      base_learners = learners;
      // The corpus actually exercised the pipeline.
      EXPECT_NE(counters.find("\"documents_ingested\": 120"),
                std::string::npos)
          << counters;
      continue;
    }
    EXPECT_EQ(dtd, base_dtd) << "jobs " << jobs;
    EXPECT_EQ(counters, base_counters) << "jobs " << jobs;
    EXPECT_EQ(learners, base_learners) << "jobs " << jobs;
  }
}

TEST_F(ObsTest, SchedulingCountersAreExactEvenWhenShardDependent) {
  SKIP_WITHOUT_STATS();
  std::vector<std::string> documents = GenerateCorpus(60, 31337);
  for (int jobs : {1, 3}) {
    obs::ResetStats();
    RunPipeline(documents, jobs);
    obs::StatsSnapshot snapshot = obs::SnapshotStats();
    // Streaming dedup mode probes the cache once per completed element,
    // so hits + misses == words folded — for any shard layout, even
    // though the hit/miss split itself varies with it.
    int64_t hits =
        snapshot.sched[static_cast<int>(obs::SchedCounter::kDedupHits)];
    int64_t misses =
        snapshot.sched[static_cast<int>(obs::SchedCounter::kDedupMisses)];
    EXPECT_EQ(hits + misses,
              snapshot.counters[static_cast<int>(
                  obs::Counter::kWordsFolded)])
        << "jobs " << jobs;
    // Every shard merges exactly once at the barrier.
    EXPECT_EQ(snapshot.sched[static_cast<int>(
                  obs::SchedCounter::kShardMerges)],
              jobs)
        << "jobs " << jobs;
    EXPECT_EQ(snapshot.sched[static_cast<int>(
                  obs::SchedCounter::kWorkerExceptions)],
              0);
    // Every probe advances the flat cache's probe loop at least once.
    EXPECT_GE(snapshot.sched[static_cast<int>(
                  obs::SchedCounter::kDedupProbeSteps)],
              hits + misses)
        << "jobs " << jobs;
    // Every fold through AddChildWord is classified dense or fallback;
    // this corpus's symbols all sit inside the dense-ID window.
    int64_t dense_hits = snapshot.sched[static_cast<int>(
        obs::SchedCounter::kDenseFoldHits)];
    int64_t dense_fallbacks = snapshot.sched[static_cast<int>(
        obs::SchedCounter::kDenseFoldFallbacks)];
    EXPECT_GT(dense_hits, 0) << "jobs " << jobs;
    EXPECT_EQ(dense_fallbacks, 0) << "jobs " << jobs;
    // The resident-bytes gauge saw a nonempty cache at some commit.
    EXPECT_GT(snapshot.gauges[static_cast<int>(
                  obs::Gauge::kDedupCacheBytesPeak)],
              0)
        << "jobs " << jobs;
  }
}

TEST_F(ObsTest, PipelineStagesAndLearnersAreObserved) {
  SKIP_WITHOUT_STATS();
  std::vector<std::string> documents = GenerateCorpus(40, 4711);
  RunPipeline(documents, 2);
  obs::StatsSnapshot snapshot = obs::SnapshotStats();
  ASSERT_TRUE(snapshot.enabled);

  auto counter = [&](obs::Counter c) {
    return snapshot.counters[static_cast<int>(c)];
  };
  EXPECT_GT(counter(obs::Counter::kBytesIngested), 0);
  EXPECT_EQ(counter(obs::Counter::kDocumentsIngested), 40);
  EXPECT_EQ(counter(obs::Counter::kDocumentsFailed), 0);
  EXPECT_GT(counter(obs::Counter::kStartTags), 0);
  EXPECT_GT(counter(obs::Counter::kWordsFolded), 0);
  EXPECT_GT(counter(obs::Counter::kChildWordFolds), 0);
  EXPECT_GT(counter(obs::Counter::kElementsLearned), 0);
  // Weighted dedup never loses occurrences: the fold multiplicities sum
  // back to the per-occurrence count.
  EXPECT_EQ(counter(obs::Counter::kChildWordFolds),
            counter(obs::Counter::kWordsFolded));

  for (obs::Stage stage : {obs::Stage::kLexParse, obs::Stage::kWordFold,
                           obs::Stage::kTwoTInf, obs::Stage::kCrxFold,
                           obs::Stage::kShardMerge, obs::Stage::kLearn}) {
    const obs::StageStats& stats =
        snapshot.stages[static_cast<int>(stage)];
    EXPECT_GT(stats.count, 0) << obs::StageName(stage);
    EXPECT_GE(stats.total_ns, 0) << obs::StageName(stage);
    int64_t bucketed = 0;
    for (int64_t b : stats.buckets) bucketed += b;
    EXPECT_EQ(bucketed, stats.count) << obs::StageName(stage);
  }

  // The default algorithm routes through "auto", which delegates each
  // element to idtd or crx — both the outer and the inner calls appear.
  int64_t auto_calls = 0;
  int64_t inner_calls = 0;
  for (const obs::LearnerStats& learner : snapshot.learners) {
    EXPECT_GT(learner.calls, 0) << learner.name;
    EXPECT_EQ(learner.failures, 0) << learner.name;
    if (learner.name == "auto") auto_calls = learner.calls;
    if (learner.name == "idtd" || learner.name == "crx") {
      inner_calls += learner.calls;
    }
  }
  EXPECT_EQ(auto_calls, counter(obs::Counter::kElementsLearned));
  EXPECT_EQ(inner_calls, auto_calls);
}

TEST_F(ObsTest, DisabledRegistryRecordsNothing) {
  obs::EnableStats(false);
  obs::ResetStats();
  std::vector<std::string> documents = GenerateCorpus(10, 99);
  RunPipeline(documents, 2);
  obs::StatsSnapshot snapshot = obs::SnapshotStats();
  EXPECT_FALSE(snapshot.enabled);
  for (int64_t value : snapshot.counters) EXPECT_EQ(value, 0);
  for (int64_t value : snapshot.sched) EXPECT_EQ(value, 0);
  for (const obs::StageStats& stage : snapshot.stages) {
    EXPECT_EQ(stage.count, 0);
    EXPECT_EQ(stage.total_ns, 0);
  }
  EXPECT_TRUE(snapshot.learners.empty());
}

TEST_F(ObsTest, CollectingStatsDoesNotChangeTheInferredDtd) {
  std::vector<std::string> documents = GenerateCorpus(50, 777);
  std::string with_stats = RunPipeline(documents, 3);
  obs::EnableStats(false);
  obs::ResetStats();
  std::string without_stats = RunPipeline(documents, 3);
  EXPECT_EQ(with_stats, without_stats);
}

TEST_F(ObsTest, JsonReportIsSchemaStable) {
  SKIP_WITHOUT_STATS();
  std::vector<std::string> documents = GenerateCorpus(15, 5);
  RunPipeline(documents, 2);
  std::string json = obs::RenderStatsJson(obs::SnapshotStats());
  EXPECT_NE(json.find("\"condtd_stats_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  for (const char* section :
       {"counters", "learners", "scheduling", "gauges", "wall"}) {
    EXPECT_FALSE(JsonSection(json, section).empty()) << section;
  }
  // Every counter key renders, in enum order, even when zero.
  std::string counters = JsonSection(json, "counters");
  size_t last = 0;
  for (int c = 0; c < static_cast<int>(obs::Counter::kNumCounters); ++c) {
    std::string key = "\"" +
                      std::string(obs::CounterName(
                          static_cast<obs::Counter>(c))) +
                      "\":";
    size_t at = counters.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    EXPECT_GT(at, last) << key << " out of order";
    last = at;
  }
  // An all-zero snapshot still renders the full schema.
  obs::ResetStats();
  std::string empty_json = obs::RenderStatsJson(obs::SnapshotStats());
  EXPECT_NE(empty_json.find("\"condtd_stats_version\": 1"),
            std::string::npos);
  EXPECT_FALSE(JsonSection(empty_json, "counters").empty());
}

TEST_F(ObsTest, TextReportNamesStagesAndLearners) {
  SKIP_WITHOUT_STATS();
  std::vector<std::string> documents = GenerateCorpus(15, 6);
  RunPipeline(documents, 2);
  std::string text = obs::RenderStatsText(obs::SnapshotStats());
  EXPECT_NE(text.find("documents_ingested"), std::string::npos) << text;
  EXPECT_NE(text.find("lex_parse"), std::string::npos) << text;
  EXPECT_NE(text.find("auto"), std::string::npos) << text;
}

TEST_F(ObsTest, FailedDocumentsCountOnBothIngestionPaths) {
  SKIP_WITHOUT_STATS();
  const std::string good = "<a><b/><b/></a>";
  const std::string bad = "<a><b></a>";
  {
    obs::ResetStats();
    InferenceOptions options;
    options.streaming_ingest = false;
    DtdInferrer dom(options);  // DOM path
    EXPECT_TRUE(dom.AddXml(good).ok());
    EXPECT_FALSE(dom.AddXml(bad).ok());
    obs::StatsSnapshot snapshot = obs::SnapshotStats();
    EXPECT_EQ(snapshot.counters[static_cast<int>(
                  obs::Counter::kDocumentsIngested)],
              1);
    EXPECT_EQ(snapshot.counters[static_cast<int>(
                  obs::Counter::kDocumentsFailed)],
              1);
  }
  {
    obs::ResetStats();
    DtdInferrer inferrer;
    StreamingFolder folder(&inferrer);  // SAX path
    EXPECT_TRUE(folder.AddXml(good).ok());
    EXPECT_FALSE(folder.AddXml(bad).ok());
    obs::StatsSnapshot snapshot = obs::SnapshotStats();
    EXPECT_EQ(snapshot.counters[static_cast<int>(
                  obs::Counter::kDocumentsIngested)],
              1);
    EXPECT_EQ(snapshot.counters[static_cast<int>(
                  obs::Counter::kDocumentsFailed)],
              1);
  }
}

}  // namespace
}  // namespace condtd
