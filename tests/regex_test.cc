#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "gen/random_regex.h"
#include "regex/ast.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/normalize.h"
#include "regex/parser.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::ParseNames;

// --- AST construction -------------------------------------------------------

TEST(ReAst, ConcatFlattens) {
  ReRef a = Re::Sym(0);
  ReRef b = Re::Sym(1);
  ReRef c = Re::Sym(2);
  ReRef nested = Re::Concat({Re::Concat({a, b}), c});
  EXPECT_EQ(nested->kind(), ReKind::kConcat);
  EXPECT_EQ(nested->children().size(), 3u);
}

TEST(ReAst, ConcatOfOneIsIdentity) {
  ReRef a = Re::Sym(0);
  EXPECT_EQ(Re::Concat({a}).get(), a.get());
}

TEST(ReAst, DisjFlattensSortsAndDedups) {
  ReRef d = Re::Disj({Re::Sym(2), Re::Disj({Re::Sym(0), Re::Sym(2)})});
  ASSERT_EQ(d->kind(), ReKind::kDisj);
  ASSERT_EQ(d->children().size(), 2u);
  EXPECT_EQ(d->children()[0]->symbol(), 0);
  EXPECT_EQ(d->children()[1]->symbol(), 2);
}

TEST(ReAst, StructuralEqualityIsCommutativeForDisj) {
  ReRef x = Re::Disj({Re::Sym(0), Re::Sym(1)});
  ReRef y = Re::Disj({Re::Sym(1), Re::Sym(0)});
  EXPECT_TRUE(StructurallyEqual(x, y));
}

// --- Printing ----------------------------------------------------------------

TEST(RePrint, PaperNotationMatchesPaperExamples) {
  Alphabet alphabet;
  ReRef re = ParseChars("((b?(a|c))+d)+e", &alphabet);
  EXPECT_EQ(ToString(re, alphabet, PrintStyle::kPaper), "((b?(a + c))+d)+e");
}

TEST(RePrint, ParseableRoundTrip) {
  Alphabet alphabet;
  std::vector<std::string> cases = {
      "((b?(a|c))+d)+e", "a(b|c)*d+(e|f)?", "a?b?c", "(a|b|c)*",
      "((ab)+c)+",       "a+",              "(a+|b)c"};
  for (const std::string& text : cases) {
    ReRef re = ParseChars(text, &alphabet);
    std::string printed = ToString(re, alphabet, PrintStyle::kParseable);
    RegexParseOptions options;  // parseable output uses spaces, so the
    Result<ReRef> back =        // multi-char tokenizer handles it
        ParseRegex(printed, &alphabet, options);
    ASSERT_TRUE(back.ok()) << printed << ": " << back.status().ToString();
    EXPECT_TRUE(StructurallyEqual(re, back.value())) << printed;
  }
}

TEST(RePrint, PaperModeSpacesAmbiguousNameBoundaries) {
  // The paper's tables rely on subscripts to run names together
  // ("a1a2a3a4+"); in ASCII a space is inserted exactly where two name
  // characters would otherwise merge into one token.
  Alphabet alphabet;
  ReRef re = ParseNames("a1 a2+ (a3 | a4)?", &alphabet);
  EXPECT_EQ(ToString(re, alphabet, PrintStyle::kPaper), "a1 a2+(a3 + a4)?");
  ReRef re2 = ParseNames("a1 a2 a3", &alphabet);
  EXPECT_EQ(ToString(re2, alphabet, PrintStyle::kPaper), "a1 a2 a3");
  // Single-letter examples still run together.
  Alphabet letters;
  ReRef re3 = ParseChars("ab+c?", &letters);
  EXPECT_EQ(ToString(re3, letters, PrintStyle::kPaper), "ab+c?");
}

// --- Parser ------------------------------------------------------------------

TEST(ReParse, PostfixPlusVersusUnionPlus) {
  Alphabet alphabet;
  // "a1+ + (a2 a3)" is the paper's notation for union with Kleene plus.
  ReRef re = ParseNames("a1+ + (a2 a3)", &alphabet);
  ASSERT_EQ(re->kind(), ReKind::kDisj);
  ASSERT_EQ(re->children().size(), 2u);
  // Alternatives are canonically sorted (concat before plus).
  EXPECT_EQ(re->children()[0]->kind(), ReKind::kConcat);
  EXPECT_EQ(re->children()[1]->kind(), ReKind::kPlus);
}

TEST(ReParse, Errors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseRegex("", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("(a", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a)", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("|a", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a | ", &alphabet).ok());
  EXPECT_FALSE(ParseRegex(nullptr == nullptr ? "a" : "", nullptr).ok());
}

TEST(ReParse, CharSymbolsMode) {
  Alphabet alphabet;
  ReRef re = ParseChars("abc", &alphabet);
  ASSERT_EQ(re->kind(), ReKind::kConcat);
  EXPECT_EQ(re->children().size(), 3u);
}

// --- Properties --------------------------------------------------------------

TEST(ReProperties, Nullable) {
  Alphabet alphabet;
  EXPECT_FALSE(Nullable(ParseChars("a", &alphabet)));
  EXPECT_TRUE(Nullable(ParseChars("a?", &alphabet)));
  EXPECT_TRUE(Nullable(ParseChars("a*", &alphabet)));
  EXPECT_FALSE(Nullable(ParseChars("a+", &alphabet)));
  EXPECT_TRUE(Nullable(ParseChars("a?b?", &alphabet)));
  EXPECT_FALSE(Nullable(ParseChars("a?b", &alphabet)));
  EXPECT_TRUE(Nullable(ParseChars("a|b?", &alphabet)));
}

TEST(ReProperties, IsSore) {
  Alphabet alphabet;
  EXPECT_TRUE(IsSore(ParseChars("((b?(a|c))+d)+e", &alphabet)));
  EXPECT_FALSE(IsSore(ParseChars("a(a|b)*", &alphabet)));
}

TEST(ReProperties, IsChare) {
  Alphabet alphabet;
  EXPECT_TRUE(IsChare(ParseChars("a(b|c)*d+(e|f)?", &alphabet)));
  EXPECT_FALSE(IsChare(ParseChars("(ab|c)*", &alphabet)));
  EXPECT_FALSE(IsChare(ParseChars("(a*|b?)*", &alphabet)));
  EXPECT_TRUE(IsChare(ParseChars("a", &alphabet)));
  EXPECT_TRUE(IsChare(ParseChars("(a|b)+", &alphabet)));
  // Every CHARE is a SORE but not vice versa.
  ReRef sore = ParseChars("((b?(a|c))+d)+e", &alphabet);
  EXPECT_TRUE(IsSore(sore));
  EXPECT_FALSE(IsChare(sore));
}

TEST(ReProperties, SymbolSetsMatchSection4Example) {
  // r = (a+b)+c: I = {a, b}, F = {c}, 2-grams {aa, ab, ba, bb, ac, bc}.
  Alphabet alphabet;
  ReRef re = ParseChars("(a|b)+c", &alphabet);
  SymbolSets sets = ComputeSymbolSets(re);
  Symbol a = alphabet.Find("a");
  Symbol b = alphabet.Find("b");
  Symbol c = alphabet.Find("c");
  EXPECT_EQ(sets.first, (std::set<Symbol>{a, b}));
  EXPECT_EQ(sets.last, (std::set<Symbol>{c}));
  std::set<std::pair<Symbol, Symbol>> expected = {
      {a, a}, {a, b}, {b, a}, {b, b}, {a, c}, {b, c}};
  EXPECT_EQ(sets.follow, expected);
  EXPECT_FALSE(sets.nullable);
}

TEST(ReProperties, CountTokens) {
  Alphabet alphabet;
  EXPECT_EQ(CountTokens(ParseChars("abc", &alphabet)), 3);
  EXPECT_EQ(CountTokens(ParseChars("(a|b)+c", &alphabet)), 5);
  EXPECT_EQ(CountTokens(ParseChars("a?", &alphabet)), 2);
}

// --- Normalization -----------------------------------------------------------

TEST(ReNormalize, PaperRules) {
  Alphabet alphabet;
  struct Case {
    std::string input;
    std::string expected;  // Normalize output, parseable style
  };
  std::vector<Case> cases = {
      {"(a+)+", "a+"},      {"a??", "a?"},        {"(a?)+", "a*"},
      {"(a+)?", "a*"},      {"(a*)*", "a*"},      {"(a+|b)+", "(a | b)+"},
      {"(a?|b)+", "(a | b)*"},                    {"(a|b?)", "(a | b)?"},
      {"((a|b)+)?", "(a | b)*"},
  };
  for (const Case& c : cases) {
    ReRef re = ParseChars(c.input, &alphabet);
    EXPECT_EQ(ToString(Normalize(re), alphabet), c.expected) << c.input;
  }
}

TEST(ReNormalize, NoStarFormHasNoStars) {
  Rng rng(2006);
  for (int trial = 0; trial < 50; ++trial) {
    ReRef re = RandomSore(1 + rng.NextBelow(8), &rng);
    ReRef normalized = NormalizeNoStar(re);
    std::vector<const Re*> stack = {normalized.get()};
    while (!stack.empty()) {
      const Re* node = stack.back();
      stack.pop_back();
      EXPECT_NE(node->kind(), ReKind::kStar);
      for (const auto& c : node->children()) stack.push_back(c.get());
    }
  }
}

TEST(ReNormalize, PreservesLanguage) {
  Rng rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    ReRef re = RandomSore(1 + rng.NextBelow(8), &rng);
    EXPECT_TRUE(LanguageEquivalent(re, Normalize(re)));
    EXPECT_TRUE(LanguageEquivalent(re, NormalizeNoStar(re)));
  }
}

// --- Matching ----------------------------------------------------------------

TEST(ReMatch, BasicMembership) {
  Alphabet alphabet;
  ReRef re = ParseChars("((b?(a|c))+d)+e", &alphabet);
  Matcher matcher(re);
  EXPECT_TRUE(matcher.Matches(alphabet.WordFromChars("bacacdacde")));
  EXPECT_TRUE(matcher.Matches(alphabet.WordFromChars("ade")));
  EXPECT_FALSE(matcher.Matches(alphabet.WordFromChars("e")));
  EXPECT_FALSE(matcher.Matches(alphabet.WordFromChars("abe")));
  EXPECT_FALSE(matcher.Matches(Word{}));
}

TEST(ReMatch, EmptyWordOnlyForNullable) {
  Alphabet alphabet;
  EXPECT_TRUE(Matches(ParseChars("a*", &alphabet), Word{}));
  EXPECT_FALSE(Matches(ParseChars("a+", &alphabet), Word{}));
}

// --- Equivalence oracle -------------------------------------------------------

TEST(ReEquivalence, KnownPairs) {
  Alphabet alphabet;
  EXPECT_TRUE(LanguageEquivalent(ParseChars("(a+)?", &alphabet),
                                 ParseChars("a*", &alphabet)));
  EXPECT_TRUE(LanguageEquivalent(ParseChars("(a?|b)+", &alphabet),
                                 ParseChars("(a|b)*", &alphabet)));
  EXPECT_FALSE(LanguageEquivalent(ParseChars("(a|b)+", &alphabet),
                                  ParseChars("(a+|b+)", &alphabet)));
  EXPECT_TRUE(LanguageSubset(ParseChars("(a+|b+)", &alphabet),
                             ParseChars("(a|b)+", &alphabet)));
  EXPECT_FALSE(LanguageSubset(ParseChars("(a|b)+", &alphabet),
                              ParseChars("(a+|b+)", &alphabet)));
}

TEST(ReEquivalence, DisagreesOnWitnessWords) {
  // Sanity-check the oracle itself against brute-force enumeration for
  // small alphabets.
  Alphabet alphabet;
  ReRef r1 = ParseChars("a(b|c)*", &alphabet);
  ReRef r2 = ParseChars("a(b*c*)*", &alphabet);
  EXPECT_TRUE(LanguageEquivalent(r1, r2));
  Matcher m1(r1);
  Matcher m2(r2);
  // Enumerate all words up to length 5 over {a, b, c}.
  for (int len = 0; len <= 5; ++len) {
    std::vector<int> idx(len, 0);
    while (true) {
      Word w(idx.begin(), idx.end());
      EXPECT_EQ(m1.Matches(w), m2.Matches(w));
      int pos = len - 1;
      while (pos >= 0 && idx[pos] == 2) idx[pos--] = 0;
      if (pos < 0) break;
      ++idx[pos];
    }
  }
}

}  // namespace
}  // namespace condtd
