#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "base/ws_deque.h"
#include "crx/crx.h"
#include "automaton/soa.h"
#include "automaton/two_t_inf.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "gen/xml_gen.h"
#include "infer/inferrer.h"
#include "infer/parallel.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::WordsFromStrings;

// --- merge algebra --------------------------------------------------------

Soa SoaOf(const std::vector<std::string>& strings, Alphabet* alphabet) {
  return Infer2T(WordsFromStrings(strings, alphabet));
}

/// Structural equality plus every support count (Soa::Equals ignores
/// supports on purpose; the merge tests must not).
void ExpectSoaIdentical(const Soa& a, const Soa& b) {
  ASSERT_TRUE(a.Equals(b));
  EXPECT_EQ(a.empty_support(), b.empty_support());
  for (int q = 0; q < a.NumStates(); ++q) {
    int bq = b.StateOf(a.LabelOf(q));
    ASSERT_GE(bq, 0);
    EXPECT_EQ(a.StateSupport(q), b.StateSupport(bq));
    EXPECT_EQ(a.InitialSupport(q), b.InitialSupport(bq));
    EXPECT_EQ(a.FinalSupport(q), b.FinalSupport(bq));
    for (int to : a.Successors(q)) {
      EXPECT_EQ(a.EdgeSupport(q, to),
                b.EdgeSupport(bq, b.StateOf(a.LabelOf(to))));
    }
  }
}

TEST(SoaMerge, MatchesSequentialFold) {
  Alphabet alphabet;
  std::vector<std::string> part1 = {"abc", "", "ab"};
  std::vector<std::string> part2 = {"cba", "abc", "b"};
  Soa merged = SoaOf(part1, &alphabet);
  merged.MergeFrom(SoaOf(part2, &alphabet));
  std::vector<std::string> all = part1;
  all.insert(all.end(), part2.begin(), part2.end());
  ExpectSoaIdentical(merged, SoaOf(all, &alphabet));
}

TEST(SoaMerge, AssociativeAndCommutative) {
  Alphabet alphabet;
  Soa a = SoaOf({"ab", "ba"}, &alphabet);
  Soa b = SoaOf({"bc", ""}, &alphabet);
  Soa c = SoaOf({"ca", "abc"}, &alphabet);

  // (a ⊕ b) ⊕ c
  Soa left = a;
  left.MergeFrom(b);
  left.MergeFrom(c);
  // a ⊕ (b ⊕ c)
  Soa bc = b;
  bc.MergeFrom(c);
  Soa right = a;
  right.MergeFrom(bc);
  ExpectSoaIdentical(left, right);

  // b ⊕ a (commutativity, up to state numbering)
  Soa ba = b;
  ba.MergeFrom(a);
  Soa ab = a;
  ab.MergeFrom(b);
  ExpectSoaIdentical(ab, ba);
}

CrxState CrxOf(const std::vector<std::string>& strings,
               Alphabet* alphabet) {
  CrxState state;
  state.AddWords(WordsFromStrings(strings, alphabet));
  return state;
}

void ExpectCrxIdentical(const CrxState& a, const CrxState& b) {
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.histograms(), b.histograms());
  EXPECT_EQ(a.empty_count(), b.empty_count());
  EXPECT_EQ(a.num_words(), b.num_words());
}

TEST(CrxMerge, MatchesSequentialFold) {
  Alphabet alphabet;
  std::vector<std::string> part1 = {"aab", "", "ba"};
  std::vector<std::string> part2 = {"ab", "aab", "c"};
  CrxState merged = CrxOf(part1, &alphabet);
  merged.MergeFrom(CrxOf(part2, &alphabet));
  std::vector<std::string> all = part1;
  all.insert(all.end(), part2.begin(), part2.end());
  ExpectCrxIdentical(merged, CrxOf(all, &alphabet));
}

TEST(CrxMerge, AssociativeAndCommutative) {
  Alphabet alphabet;
  CrxState a = CrxOf({"ab", "aab", ""}, &alphabet);
  CrxState b = CrxOf({"bc", "b"}, &alphabet);
  CrxState c = CrxOf({"ca", "", "abc"}, &alphabet);

  CrxState left = a;
  left.MergeFrom(b);
  left.MergeFrom(c);
  CrxState bc = b;
  bc.MergeFrom(c);
  CrxState right = a;
  right.MergeFrom(bc);
  ExpectCrxIdentical(left, right);

  CrxState ab = a;
  ab.MergeFrom(b);
  CrxState ba = b;
  ba.MergeFrom(a);
  ExpectCrxIdentical(ab, ba);
}

// --- corpus fixtures ------------------------------------------------------

std::vector<std::string> GenerateCorpus(int count, uint64_t seed) {
  Alphabet alphabet;
  Result<Dtd> truth = ParseDtd(
      "<!ELEMENT feed (entry+)>\n"
      "<!ELEMENT entry (title, updated?, (link | content)*, author)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT updated (#PCDATA)>\n"
      "<!ELEMENT link EMPTY>\n"
      "<!ELEMENT content (#PCDATA)>\n"
      "<!ELEMENT author (name, email?)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT email (#PCDATA)>\n",
      &alphabet);
  EXPECT_TRUE(truth.ok());
  Rng rng(seed);
  std::vector<std::string> documents;
  documents.reserve(count);
  for (int i = 0; i < count; ++i) {
    Result<XmlDocument> doc =
        GenerateDocument(truth.value(), alphabet, &rng);
    EXPECT_TRUE(doc.ok());
    documents.push_back(doc->ToXml());
  }
  return documents;
}

std::string SequentialDtd(const std::vector<std::string>& documents) {
  DtdInferrer inferrer;
  for (const std::string& doc : documents) {
    Status status = inferrer.AddXml(doc);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

std::string ParallelDtd(const std::vector<std::string>& documents,
                        int num_threads) {
  ParallelDtdInferrer inferrer(InferenceOptions{}, num_threads);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.merged()->alphabet());
}

// --- determinism ----------------------------------------------------------

TEST(ParallelInferrer, ShardedIngestionIsByteIdenticalToSequential) {
  std::vector<std::string> documents = GenerateCorpus(240, 20060912);
  std::string expected = SequentialDtd(documents);
  for (int shards : {1, 2, 7}) {
    EXPECT_EQ(ParallelDtd(documents, shards), expected)
        << "shard count " << shards;
  }
}

TEST(ParallelInferrer, DeterministicForAnyDocumentOrder) {
  std::vector<std::string> documents = GenerateCorpus(180, 4711);
  // A permuted corpus must again match its own sequential run (the
  // contract is parallel == sequential per corpus order, for any order).
  Rng rng(99);
  rng.Shuffle(&documents);
  std::string expected = SequentialDtd(documents);
  for (int shards : {2, 7}) {
    EXPECT_EQ(ParallelDtd(documents, shards), expected)
        << "shard count " << shards;
  }
}

TEST(ParallelInferrer, PerElementInferenceThreadsDoNotChangeOutput) {
  std::vector<std::string> documents = GenerateCorpus(120, 31337);
  DtdInferrer inferrer;
  for (const std::string& doc : documents) {
    ASSERT_TRUE(inferrer.AddXml(doc).ok());
  }
  Result<Dtd> sequential = inferrer.InferDtd();
  Result<Dtd> threaded = inferrer.InferDtd(4);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(WriteDtd(sequential.value(), *inferrer.alphabet()),
            WriteDtd(threaded.value(), *inferrer.alphabet()));
}

TEST(ParallelInferrer, ReportsParseErrorsByDocumentIndex) {
  std::vector<std::string> documents = GenerateCorpus(20, 5);
  documents[7] = "<broken><unclosed></broken>";
  documents[13] = "not xml at all";
  ParallelDtdInferrer inferrer(InferenceOptions{}, 3);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Status status = inferrer.Finish();
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(inferrer.errors().size(), 2u);
  EXPECT_EQ(inferrer.errors()[0].doc_index, 7);
  EXPECT_EQ(inferrer.errors()[1].doc_index, 13);
  // The merged state still holds every clean document.
  EXPECT_EQ(inferrer.merged()->WordCount(
                inferrer.merged()->alphabet()->Find("feed")),
            18);
}

TEST(ParallelInferrer, AggregatesAllDocumentErrors) {
  std::vector<std::string> documents = GenerateCorpus(12, 9);
  documents[2] = "<broken><unclosed></broken>";
  documents[5] = "not xml at all";
  documents[9] = "<feed><entry></feed>";
  ParallelDtdInferrer inferrer(InferenceOptions{}, 4);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Status status = inferrer.Finish();
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(inferrer.errors().size(), 3u);
  EXPECT_EQ(inferrer.errors()[0].doc_index, 2);
  EXPECT_EQ(inferrer.errors()[1].doc_index, 5);
  EXPECT_EQ(inferrer.errors()[2].doc_index, 9);
  // The aggregate status names the failure count and the first failing
  // document, not just the front error's message.
  EXPECT_NE(status.message().find("3 documents failed"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("document 2"), std::string::npos)
      << status.ToString();
  // Finish is idempotent and keeps reporting the same aggregate.
  EXPECT_EQ(inferrer.Finish().message(), status.message());
}

TEST(ParallelInferrer, SingleFailureKeepsThatDocumentsStatus) {
  std::vector<std::string> documents = GenerateCorpus(8, 10);
  documents[3] = "not xml at all";
  ParallelDtdInferrer inferrer(InferenceOptions{}, 3);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Status status = inferrer.Finish();
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(inferrer.errors().size(), 1u);
  EXPECT_EQ(status.message(), inferrer.errors().front().status.message());
  EXPECT_EQ(status.message().find("documents failed"), std::string::npos)
      << status.ToString();
}

/// Installs a throwing ingest fault for the test's duration; the
/// destructor uninstalls it even when an assertion fails first.
struct ScopedIngestFault {
  explicit ScopedIngestFault(ParallelDtdInferrer::IngestFault fault) {
    ParallelDtdInferrer::SetIngestFaultForTest(fault);
  }
  ~ScopedIngestFault() {
    ParallelDtdInferrer::SetIngestFaultForTest(nullptr);
  }
};

TEST(ParallelInferrer, SurvivesWorkerExceptions) {
  std::vector<std::string> documents = GenerateCorpus(20, 77);
  // Without the worker pool's containment these would escape the thread
  // entry point and std::terminate the whole process.
  ScopedIngestFault fault(+[](int64_t doc_index) {
    if (doc_index == 5) throw std::bad_alloc();
    if (doc_index == 11) throw std::length_error("simulated oversize");
  });
  ParallelDtdInferrer inferrer(InferenceOptions{}, 3);
  for (const std::string& doc : documents) inferrer.AddXml(doc);
  Status status = inferrer.Finish();
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(inferrer.errors().size(), 2u);
  EXPECT_EQ(inferrer.errors()[0].doc_index, 5);
  EXPECT_EQ(inferrer.errors()[1].doc_index, 11);
  EXPECT_EQ(inferrer.errors()[0].status.code(), StatusCode::kInternal);
  EXPECT_NE(inferrer.errors()[1].status.message().find("simulated oversize"),
            std::string::npos)
      << inferrer.errors()[1].status.ToString();
  // Every other document folded; the failed ones contributed nothing.
  EXPECT_EQ(inferrer.merged()->WordCount(
                inferrer.merged()->alphabet()->Find("feed")),
            18);
}

TEST(ParallelInferrer, WorkerExceptionsDoNotPerturbSurvivingDocuments) {
  std::vector<std::string> documents = GenerateCorpus(60, 4242);
  // Expected result: a sequential run over the corpus minus the faulted
  // documents.
  std::vector<std::string> survivors;
  for (size_t i = 0; i < documents.size(); ++i) {
    if (i % 10 != 7) survivors.push_back(documents[i]);
  }
  std::string expected = SequentialDtd(survivors);
  ScopedIngestFault fault(+[](int64_t doc_index) {
    if (doc_index % 10 == 7) throw std::runtime_error("injected");
  });
  for (int shards : {2, 5}) {
    ParallelDtdInferrer inferrer(InferenceOptions{}, shards);
    for (const std::string& doc : documents) inferrer.AddXml(doc);
    EXPECT_FALSE(inferrer.Finish().ok());
    EXPECT_EQ(inferrer.errors().size(), 6u);
    Result<Dtd> dtd = inferrer.merged()->InferDtd();
    ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    EXPECT_EQ(WriteDtd(dtd.value(), *inferrer.merged()->alphabet()),
              expected)
        << "shard count " << shards;
  }
}

// --- DtdInferrer::MergeFrom ----------------------------------------------

TEST(InferrerMerge, ContiguousShardsMergedInOrderMatchSequential) {
  std::vector<std::string> documents = GenerateCorpus(150, 2222);
  std::string expected = SequentialDtd(documents);

  // Three shard inferrers over contiguous corpus blocks, merged in block
  // order: interning replays in document order, so the result is
  // byte-identical to the sequential run.
  DtdInferrer merged;
  for (int block = 0; block < 3; ++block) {
    DtdInferrer shard;
    for (size_t i = block * 50; i < (block + 1) * 50u; ++i) {
      ASSERT_TRUE(shard.AddXml(documents[i]).ok());
    }
    merged.MergeFrom(shard);
  }
  Result<Dtd> dtd = merged.InferDtd();
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(WriteDtd(dtd.value(), *merged.alphabet()), expected);
}

TEST(InferrerMerge, MergeMatchesLoadStateMerge) {
  // MergeFrom must agree with the established text-format merge path
  // (LoadState on a non-empty inferrer), which the persistence tests pin.
  std::vector<std::string> documents = GenerateCorpus(80, 909);
  DtdInferrer a;
  DtdInferrer b;
  for (size_t i = 0; i < documents.size(); ++i) {
    ASSERT_TRUE(((i < 40) ? a : b).AddXml(documents[i]).ok());
  }
  DtdInferrer via_merge;
  via_merge.MergeFrom(a);
  via_merge.MergeFrom(b);
  DtdInferrer via_state;
  ASSERT_TRUE(via_state.LoadState(a.SaveState()).ok());
  ASSERT_TRUE(via_state.LoadState(b.SaveState()).ok());
  EXPECT_EQ(via_merge.SaveState(), via_state.SaveState());
}

// --- batch scheduler ------------------------------------------------------

std::string BatchedDtd(const std::vector<std::string>& documents,
                       int num_threads, int batch_docs, bool borrowed) {
  InferenceOptions options;
  options.batch_docs = batch_docs;
  ParallelDtdInferrer inferrer(options, num_threads);
  for (const std::string& doc : documents) {
    if (borrowed) {
      inferrer.AddBorrowedXml(doc);
    } else {
      inferrer.AddXml(doc);
    }
  }
  Result<Dtd> dtd = inferrer.InferDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return WriteDtd(dtd.value(), *inferrer.merged()->alphabet());
}

TEST(BatchScheduler, BatchSizeNeverChangesTheDtd) {
  // The batch size only decides hand-off granularity; any value must
  // reproduce the sequential DTD byte for byte at any thread count,
  // including batch=1 (per-document dispatch, the old scheduler's
  // behavior) and a batch larger than the whole corpus (single batch,
  // zero stealing opportunities).
  std::vector<std::string> documents = GenerateCorpus(120, 60221023);
  std::string expected = SequentialDtd(documents);
  for (int jobs : {1, 2, 7}) {
    for (int batch : {1, 32, 1000}) {
      EXPECT_EQ(BatchedDtd(documents, jobs, batch, /*borrowed=*/false),
                expected)
          << "jobs " << jobs << " batch " << batch;
    }
  }
}

TEST(BatchScheduler, BorrowedSubmissionMatchesCopiedSubmission) {
  // AddBorrowedXml skips the arena copy; the result must be identical.
  std::vector<std::string> documents = GenerateCorpus(90, 17);
  std::string copied = BatchedDtd(documents, 3, 8, /*borrowed=*/false);
  std::string borrowed = BatchedDtd(documents, 3, 8, /*borrowed=*/true);
  EXPECT_EQ(copied, borrowed);
}

TEST(BatchScheduler, ErrorIndicesSurviveBatching) {
  // Document indices in error reports are assigned at submission, so
  // they must be stable however documents land in batches and shards.
  std::vector<std::string> documents = GenerateCorpus(40, 5);
  documents[7] = "<broken><unclosed></broken>";
  documents[31] = "not xml at all";
  for (int batch : {1, 4, 64}) {
    InferenceOptions options;
    options.batch_docs = batch;
    ParallelDtdInferrer inferrer(options, 3);
    for (const std::string& doc : documents) inferrer.AddXml(doc);
    EXPECT_FALSE(inferrer.Finish().ok());
    ASSERT_EQ(inferrer.errors().size(), 2u) << "batch " << batch;
    EXPECT_EQ(inferrer.errors()[0].doc_index, 7);
    EXPECT_EQ(inferrer.errors()[1].doc_index, 31);
  }
}

TEST(WorkStealingDequeTest, SingleThreadPushSteal) {
  WorkStealingDeque<int*> deque;
  EXPECT_TRUE(deque.Empty());
  EXPECT_EQ(deque.Steal(), nullptr);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) {
    values[i] = i;
    deque.Push(&values[i]);  // forces several ring growths (initial 64)
  }
  EXPECT_FALSE(deque.Empty());
  for (int i = 0; i < 100; ++i) {
    int* item = deque.Steal();
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(*item, i);  // steals drain FIFO from the top
  }
  EXPECT_TRUE(deque.Empty());
  EXPECT_EQ(deque.Steal(), nullptr);
}

TEST(WorkStealingDequeTest, ConcurrentThievesClaimEachItemOnce) {
  // One producer, several thieves hammering Steal — under the TSan lane
  // this exercises the acquire/release protocol; everywhere it checks
  // that every pushed item is claimed exactly once.
  constexpr int kItems = 20000;
  constexpr int kThieves = 4;
  WorkStealingDeque<int*> deque;
  std::vector<int> values(kItems);
  std::vector<std::atomic<int>> claimed(kItems);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  std::atomic<int> total{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      for (;;) {
        int* item = deque.Steal();
        if (item == nullptr) {
          if (done.load(std::memory_order_acquire) && deque.Empty()) return;
          std::this_thread::yield();
          continue;
        }
        claimed[item - values.data()].fetch_add(1,
                                                std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < kItems; ++i) {
    values[i] = i;
    deque.Push(&values[i]);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  EXPECT_EQ(total.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace condtd
