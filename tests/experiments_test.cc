// Regression tests pinning the paper-reproduction results (Tables 1-2):
// if a refactor changes what the algorithms infer on the experiment
// corpora, these fail before the benches ever run.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "baseline/trang_like.h"
#include "crx/crx.h"
#include "gen/corpus.h"
#include "idtd/idtd.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/parser.h"
#include "regex/properties.h"

namespace condtd {
namespace {

class Table1Cases : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<ExperimentCase>& Cases() {
    static const std::vector<ExperimentCase>* kCases =
        new std::vector<ExperimentCase>(BuildTable1Cases(20060912));
    return *kCases;
  }
};

TEST_P(Table1Cases, CrxAndIdtdReproduceThePaper) {
  const ExperimentCase& c = Cases()[GetParam()];
  Result<ReRef> crx = CrxInfer(c.sample);
  Result<ReRef> idtd = IdtdInfer(c.sample);
  ASSERT_TRUE(crx.ok()) << c.name;
  ASSERT_TRUE(idtd.ok()) << c.name;

  // Both outputs cover the sample...
  Matcher crx_matcher(crx.value());
  Matcher idtd_matcher(idtd.value());
  for (const Word& w : c.sample) {
    ASSERT_TRUE(crx_matcher.Matches(w)) << c.name;
    ASSERT_TRUE(idtd_matcher.Matches(w)) << c.name;
  }
  // ...and the full observed language (the corpora are representative).
  EXPECT_TRUE(LanguageSubset(c.observed, crx.value())) << c.name;
  EXPECT_TRUE(LanguageSubset(c.observed, idtd.value())) << c.name;

  // CRX recovers the observed expression exactly on every Table 1
  // element except the two the paper calls out: authors (not a CHARE)
  // and refinfo (the a8/a9 ordering exceeds CHARE expressiveness).
  bool crx_exact = LanguageEquivalent(c.observed, crx.value());
  if (c.name == "authors" || c.name == "refinfo") {
    EXPECT_FALSE(crx_exact) << c.name;
  } else {
    EXPECT_TRUE(crx_exact)
        << c.name << ": " << ToString(crx.value(), c.alphabet);
  }
  // iDTD is exact on all nine (it can express the disjunction shape of
  // authors and the a8/a9 exclusion of refinfo).
  EXPECT_TRUE(LanguageEquivalent(c.observed, idtd.value()))
      << c.name << ": " << ToString(idtd.value(), c.alphabet);

  // Section 8.1: Trang's output coincides with CRX's on this data.
  Result<ReRef> trang = TrangLikeInfer(c.sample);
  ASSERT_TRUE(trang.ok()) << c.name;
  if (c.name != "authors" && c.name != "refinfo") {
    EXPECT_TRUE(LanguageEquivalent(trang.value(), crx.value())) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(All, Table1Cases,
                         ::testing::Range(0, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return BuildTable1Cases(20060912)[info.param]
                               .name;
                         });

TEST(Table2Cases, HeadlineResults) {
  std::vector<ExperimentCase> cases = BuildTable2Cases(20060912);

  // example1: iDTD recovers the exact non-CHARE target; CRX yields the
  // CHARE super-approximation a1* a2? a3*.
  {
    const ExperimentCase& c = cases[0];
    Result<ReRef> idtd = IdtdInfer(c.sample);
    ASSERT_TRUE(idtd.ok());
    EXPECT_TRUE(LanguageEquivalent(c.observed, idtd.value()));
    Result<ReRef> crx = CrxInfer(c.sample);
    ASSERT_TRUE(crx.ok());
    Alphabet expected_names = c.alphabet;
    Result<ReRef> expected =
        ParseRegex("a1* a2? a3*", &expected_names);
    EXPECT_TRUE(LanguageEquivalent(expected.value(), crx.value()));
    EXPECT_FALSE(LanguageEquivalent(c.observed, crx.value()));
  }
  // example2 and example3 (SOREs but not CHAREs): iDTD recovers the
  // exact original; CRX can only give the strictly looser CHARE
  // (e.g. a1?a2?a3?... instead of (a1 a2? a3?)?...), as in the paper.
  for (int i : {1, 2}) {
    const ExperimentCase& c = cases[i];
    Result<ReRef> crx = CrxInfer(c.sample);
    Result<ReRef> idtd = IdtdInfer(c.sample);
    ASSERT_TRUE(crx.ok()) << c.name;
    ASSERT_TRUE(idtd.ok()) << c.name;
    EXPECT_TRUE(LanguageEquivalent(c.observed, idtd.value())) << c.name;
    EXPECT_TRUE(IsChare(crx.value())) << c.name;
    EXPECT_TRUE(LanguageSubset(c.observed, crx.value())) << c.name;
    EXPECT_FALSE(LanguageEquivalent(c.observed, crx.value())) << c.name;
  }
  // example5: the paper's printed outputs, verbatim.
  {
    const ExperimentCase& c = cases[4];
    Result<ReRef> crx = CrxInfer(c.sample);
    Result<ReRef> idtd = IdtdInfer(c.sample);
    ASSERT_TRUE(crx.ok());
    ASSERT_TRUE(idtd.ok());
    Alphabet names = c.alphabet;
    ReRef paper_crx =
        ParseRegex("a1 (a2 | a3 | a4 | a5)*", &names).value();
    ReRef paper_idtd =
        ParseRegex("a1 ((a2 | a3 | a4)+ a5*)*", &names).value();
    EXPECT_TRUE(LanguageEquivalent(paper_crx, crx.value()))
        << ToString(crx.value(), names);
    EXPECT_TRUE(LanguageEquivalent(paper_idtd, idtd.value()))
        << ToString(idtd.value(), names);
    // Both are supersets of the original (it is not a SORE).
    EXPECT_TRUE(LanguageSubset(c.observed, crx.value()));
    EXPECT_TRUE(LanguageSubset(c.observed, idtd.value()));
    // And iDTD's is the strictly more precise one.
    EXPECT_TRUE(LanguageSubset(idtd.value(), crx.value()));
    EXPECT_FALSE(LanguageSubset(crx.value(), idtd.value()));
  }
}

TEST(Table2Cases, Example4BothAlgorithmsAgreeOnSuperset) {
  std::vector<ExperimentCase> cases = BuildTable2Cases(20060912);
  const ExperimentCase& c = cases[3];
  Result<ReRef> crx = CrxInfer(c.sample);
  Result<ReRef> idtd = IdtdInfer(c.sample);
  ASSERT_TRUE(crx.ok());
  ASSERT_TRUE(idtd.ok());
  // Paper: both produce a1? a2 a3? a4? (a6+...+a61)* a5*.
  EXPECT_TRUE(LanguageSubset(c.observed, crx.value()));
  EXPECT_TRUE(LanguageSubset(c.observed, idtd.value()));
  EXPECT_TRUE(IsChare(crx.value()));
  EXPECT_TRUE(IsSore(idtd.value()));
}

}  // namespace
}  // namespace condtd
