#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/extract.h"
#include "xml/lexer.h"
#include "xml/parser.h"

namespace condtd {
namespace {

TEST(XmlParser, MinimalDocument) {
  Result<XmlDocument> doc = ParseXml("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root->name(), "root");
  EXPECT_TRUE(doc->root->children().empty());
}

TEST(XmlParser, NestedElementsInOrder) {
  Result<XmlDocument> doc = ParseXml(
      "<book><title>T</title><author>A</author><author>B</author></book>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children().size(), 3u);
  EXPECT_EQ(doc->root->children()[0]->name(), "title");
  EXPECT_EQ(doc->root->children()[1]->name(), "author");
  EXPECT_EQ(doc->root->children()[2]->name(), "author");
  EXPECT_EQ(doc->root->children()[0]->text(), "T");
}

TEST(XmlParser, AttributesAndEntities) {
  Result<XmlDocument> doc = ParseXml(
      "<a x=\"1 &amp; 2\" y='&#65;&lt;'><b z/></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->attributes().size(), 2u);
  EXPECT_EQ(*doc->root->FindAttribute("x"), "1 & 2");
  EXPECT_EQ(*doc->root->FindAttribute("y"), "A<");
  // Valueless attribute (noisy HTML-style) is tolerated.
  EXPECT_NE(doc->root->children()[0]->FindAttribute("z"), nullptr);
}

TEST(XmlParser, CommentsPIsCdata) {
  Result<XmlDocument> doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- hi --><r><![CDATA[<not-a-tag>]]></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "<not-a-tag>");
}

TEST(XmlParser, DoctypeWithInternalSubset) {
  Result<XmlDocument> doc = ParseXml(
      "<!DOCTYPE r [ <!ELEMENT r (a, b?)> <!ELEMENT a EMPTY> ]>"
      "<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->doctype.find("<!ELEMENT r"), std::string::npos);
}

TEST(XmlParser, UnknownEntityKeptVerbatim) {
  Result<XmlDocument> doc = ParseXml("<r>&nbsp;x</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "&nbsp;x");
}

TEST(XmlEntities, NumericReferenceEdgeCases) {
  // Regression (fuzz corpus): overflowing, empty, NUL and surrogate
  // numeric references previously hit signed-overflow UB or produced
  // ill-formed UTF-8; all must now be rejected as parse errors.
  std::string out;
  EXPECT_FALSE(DecodeXmlEntities("&#99999999999999999999;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#xFFFFFFFFFFFFFFFFF;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#x;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#0;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#xD800;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#xDFFF;", &out).ok());
  EXPECT_FALSE(DecodeXmlEntities("&#x110000;", &out).ok());

  std::string astral;
  ASSERT_TRUE(DecodeXmlEntities("&#x10FFFF;", &astral).ok());
  EXPECT_EQ(astral, "\xF4\x8F\xBF\xBF");  // astral plane: 4-byte UTF-8
  std::string ascii;
  ASSERT_TRUE(DecodeXmlEntities("&#65;&#x42;", &ascii).ok());
  EXPECT_EQ(ascii, "AB");
}

TEST(XmlParser, DeepNestingRejectedNotOverflowed) {
  // Regression (fuzz corpus): unbounded element depth recursed through
  // the tree destructor; the parser now caps nesting instead.
  std::string deep;
  for (int i = 0; i < 12000; ++i) deep += "<d>";
  Result<XmlDocument> strict = ParseXml("<r>" + deep + "</r>");
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.status().ToString().find("nesting"), std::string::npos)
      << strict.status().ToString();
  std::vector<std::string> recovered;
  EXPECT_FALSE(ParseXmlLenient("<r>" + deep, &recovered).ok());
}

TEST(XmlParser, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("</a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("text only").ok());
  EXPECT_FALSE(ParseXml("<a x=unquoted/>").ok());
  EXPECT_FALSE(ParseXml("<a><!-- unterminated").ok());
}

TEST(XmlParser, RoundTripThroughToXml) {
  Result<XmlDocument> doc = ParseXml(
      "<r a=\"v\"><x/><y>text</y><x><z/></x></r>");
  ASSERT_TRUE(doc.ok());
  std::string serialized = doc->ToXml();
  Result<XmlDocument> again = ParseXml(serialized);
  ASSERT_TRUE(again.ok()) << serialized;
  EXPECT_EQ(again->root->children().size(), 3u);
  EXPECT_EQ(*again->root->FindAttribute("a"), "v");
}

TEST(XmlExtract, ChildSequencesPerElement) {
  Result<XmlDocument> doc = ParseXml(
      "<db><rec><k/><v/></rec><rec><k/></rec><note>hi</note></db>");
  ASSERT_TRUE(doc.ok());
  Alphabet alphabet;
  ElementContexts contexts = ExtractContexts(doc.value(), &alphabet);
  Symbol db = alphabet.Find("db");
  Symbol rec = alphabet.Find("rec");
  Symbol note = alphabet.Find("note");
  ASSERT_EQ(contexts.contexts.at(db).size(), 1u);
  EXPECT_EQ(contexts.contexts.at(db)[0].size(), 3u);
  ASSERT_EQ(contexts.contexts.at(rec).size(), 2u);
  EXPECT_EQ(contexts.contexts.at(rec)[0].size(), 2u);
  EXPECT_EQ(contexts.contexts.at(rec)[1].size(), 1u);
  EXPECT_TRUE(contexts.has_text.count(note) > 0);
  EXPECT_TRUE(contexts.roots.count(db) > 0);
}

TEST(XmlLexer, TokenStream) {
  XmlLexer lexer("<a b=\"c\">x</a>");
  Result<XmlToken> t1 = lexer.Next();
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->kind, XmlTokenKind::kStartTag);
  EXPECT_EQ(t1->name, "a");
  ASSERT_EQ(t1->attributes.size(), 1u);
  Result<XmlToken> t2 = lexer.Next();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->kind, XmlTokenKind::kText);
  EXPECT_EQ(t2->text, "x");
  Result<XmlToken> t3 = lexer.Next();
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->kind, XmlTokenKind::kEndTag);
  Result<XmlToken> t4 = lexer.Next();
  ASSERT_TRUE(t4.ok());
  EXPECT_EQ(t4->kind, XmlTokenKind::kEof);
}

}  // namespace
}  // namespace condtd
