// Integration tests for the `condtd` command-line tool: every
// subcommand is exercised end to end through a real process. The binary
// path is injected by CMake (CONDTD_CLI_PATH).

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/file.h"

namespace condtd {
namespace {

#ifndef CONDTD_CLI_PATH
#define CONDTD_CLI_PATH "condtd"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CommandResult RunCli(const std::string& args) {
  std::string command = std::string(CONDTD_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/condtd_cli_" + name;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml1_ = TempPath("doc1.xml");
    xml2_ = TempPath("doc2.xml");
    ASSERT_TRUE(WriteStringToFile(
                    xml1_,
                    "<library><book id=\"1\"><title>A</title>"
                    "<author>x</author><author>y</author></book></library>")
                    .ok());
    ASSERT_TRUE(WriteStringToFile(
                    xml2_,
                    "<library><book><title>B</title>"
                    "<author>z</author><year>2001</year></book></library>")
                    .ok());
  }

  std::string xml1_;
  std::string xml2_;
};

TEST_F(CliTest, UsageOnNoArguments) {
  CommandResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, InferDtd) {
  CommandResult result = RunCli("infer " + xml1_ + " " + xml2_);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  // Each document has exactly one book, so the inferred model is (book).
  EXPECT_NE(result.output.find("<!ELEMENT library (book)>"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("<!ELEMENT book (title, author+, year?)>"),
            std::string::npos)
      << result.output;
}

TEST_F(CliTest, InferXsdAndValidateAgainstIt) {
  std::string xsd_path = TempPath("schema.xsd");
  CommandResult infer =
      RunCli("infer --xsd --out=" + xsd_path + " " + xml1_ + " " + xml2_);
  ASSERT_EQ(infer.exit_code, 0) << infer.output;
  CommandResult validate =
      RunCli("validate --schema=" + xsd_path + " " + xml1_ + " " + xml2_);
  EXPECT_EQ(validate.exit_code, 0) << validate.output;
  EXPECT_NE(validate.output.find("valid"), std::string::npos);
}

TEST_F(CliTest, StatePipelineMatchesOneShot) {
  std::string state = TempPath("state");
  ASSERT_EQ(RunCli("infer --state-out=" + state + " " + xml1_).exit_code,
            0);
  CommandResult resumed =
      RunCli("infer --state-in=" + state + " " + xml2_);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  CommandResult oneshot = RunCli("infer " + xml1_ + " " + xml2_);
  EXPECT_EQ(resumed.output, oneshot.output);
}

TEST_F(CliTest, ValidateCatchesViolations) {
  std::string dtd_path = TempPath("strict.dtd");
  ASSERT_TRUE(WriteStringToFile(dtd_path,
                                "<!ELEMENT library (book)>\n"
                                "<!ELEMENT book (title)>\n"
                                "<!ELEMENT title (#PCDATA)>\n")
                  .ok());
  CommandResult result =
      RunCli("validate --schema=" + dtd_path + " " + xml1_);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("do not match"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, GenProducesValidatableDocuments) {
  std::string dtd_path = TempPath("gen.dtd");
  ASSERT_TRUE(WriteStringToFile(dtd_path,
                                "<!ELEMENT db (rec*)>\n"
                                "<!ELEMENT rec (#PCDATA)>\n")
                  .ok());
  std::string prefix = TempPath("gendoc");
  CommandResult gen = RunCli("gen --schema=" + dtd_path +
                             " --count=3 --prefix=" + prefix);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  CommandResult validate =
      RunCli("validate --schema=" + dtd_path + " " + prefix + "0.xml " +
             prefix + "1.xml " + prefix + "2.xml");
  EXPECT_EQ(validate.exit_code, 0) << validate.output;
}

TEST_F(CliTest, RegexMembership) {
  CommandResult result =
      RunCli("regex \"((b?(a|c))+d)+e\" bacacdacde abe");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("bacacdacde"), std::string::npos);
  EXPECT_NE(result.output.find("accepted"), std::string::npos);
  EXPECT_NE(result.output.find("rejected"), std::string::npos);
}

TEST_F(CliTest, StatsClassifiesContentModels) {
  std::string dtd_path = TempPath("stats.dtd");
  ASSERT_TRUE(WriteStringToFile(
                  dtd_path,
                  "<!ELEMENT r (a, (b | c)*, d?)>\n"
                  "<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>\n"
                  "<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>\n")
                  .ok());
  CommandResult result = RunCli("stats " + dtd_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("100% CHAREs"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, ContextReportAndLocalXsd) {
  std::string shop = TempPath("shop.xml");
  ASSERT_TRUE(WriteStringToFile(
                  shop,
                  "<shop><person><name><first>A</first></name></person>"
                  "<company><name><legal>B</legal></name></company>"
                  "</shop>")
                  .ok());
  CommandResult report = RunCli("context " + shop);
  EXPECT_EQ(report.exit_code, 0) << report.output;
  EXPECT_NE(report.output.find("context-dependent"), std::string::npos)
      << report.output;
  CommandResult xsd = RunCli("context --xsd " + shop);
  EXPECT_EQ(xsd.exit_code, 0) << xsd.output;
  EXPECT_NE(xsd.output.find("xs:schema"), std::string::npos);
}

TEST_F(CliTest, DiffReportsStricterModels) {
  std::string official = TempPath("official.dtd");
  std::string inferred = TempPath("inferred.dtd");
  ASSERT_TRUE(WriteStringToFile(official,
                                "<!ELEMENT r (v?, m?)>\n"
                                "<!ELEMENT v EMPTY>\n<!ELEMENT m EMPTY>\n")
                  .ok());
  ASSERT_TRUE(WriteStringToFile(inferred,
                                "<!ELEMENT r (v | m)>\n"
                                "<!ELEMENT v EMPTY>\n<!ELEMENT m EMPTY>\n")
                  .ok());
  CommandResult result = RunCli("diff " + inferred + " " + official);
  EXPECT_EQ(result.exit_code, 1);  // not language-equal
  EXPECT_NE(result.output.find("left is stricter"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("allowed by only one side"),
            std::string::npos);
  // Identical inputs exit 0.
  CommandResult same = RunCli("diff " + official + " " + official);
  EXPECT_EQ(same.exit_code, 0) << same.output;
}

TEST_F(CliTest, InferWithBaselineLearners) {
  // Any registered learner name works, including the Section 8
  // baselines the enum never covered.
  CommandResult trang = RunCli("infer --algorithm=trang " + xml1_);
  EXPECT_EQ(trang.exit_code, 0) << trang.output;
  EXPECT_NE(trang.output.find("<!ELEMENT library"), std::string::npos)
      << trang.output;
  CommandResult xtract = RunCli("infer --algorithm=xtract " + xml1_);
  EXPECT_EQ(xtract.exit_code, 0) << xtract.output;
  EXPECT_NE(xtract.output.find("<!ELEMENT library"), std::string::npos)
      << xtract.output;
}

TEST_F(CliTest, UnknownAlgorithmListsRegisteredNames) {
  CommandResult result = RunCli("infer --algorithm=nope " + xml1_);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown algorithm 'nope'"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("auto, idtd, crx, isore, sire, rewrite, trang, xtract"),
            std::string::npos)
      << result.output;
}

TEST_F(CliTest, LenientInfersFromTagSoup) {
  std::string soup = TempPath("soup.xml");
  ASSERT_TRUE(WriteStringToFile(
                  soup, "<html><body><p>one<p>two</body></html>")
                  .ok());
  EXPECT_EQ(RunCli("infer " + soup).exit_code, 1);  // strict rejects
  CommandResult lenient = RunCli("infer --lenient " + soup);
  EXPECT_EQ(lenient.exit_code, 0) << lenient.output;
  EXPECT_NE(lenient.output.find("<!ELEMENT html"), std::string::npos);
}

TEST_F(CliTest, MissingFileFails) {
  CommandResult result = RunCli("infer /nonexistent/x.xml");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("NotFound"), std::string::npos);
}

TEST_F(CliTest, RejectsInvalidJobs) {
  for (const char* bad : {"0", "-2", "abc", "", "3x"}) {
    CommandResult result =
        RunCli("infer --jobs=" + std::string(bad) + " " + xml1_);
    EXPECT_EQ(result.exit_code, 2) << "--jobs=" << bad << "\n"
                                   << result.output;
    EXPECT_NE(result.output.find("expected an integer >= 1"),
              std::string::npos)
        << "--jobs=" << bad << "\n"
        << result.output;
  }
}

TEST_F(CliTest, RejectsInvalidNoiseAndMaxStrings) {
  CommandResult noise = RunCli("infer --noise=-1 " + xml1_);
  EXPECT_EQ(noise.exit_code, 2);
  EXPECT_NE(noise.output.find("--noise=-1"), std::string::npos)
      << noise.output;

  CommandResult strings = RunCli("infer --max-strings=none " + xml1_);
  EXPECT_EQ(strings.exit_code, 2);
  EXPECT_NE(strings.output.find("--max-strings=none"), std::string::npos)
      << strings.output;
}

TEST_F(CliTest, MaxStringsBoundsXtract) {
  CommandResult result =
      RunCli("infer --algorithm=xtract --max-strings=1 " + xml1_ + " " +
             xml2_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("ResourceExhausted"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, StatsFlagEmitsReportWithoutChangingTheSchema) {
  CommandResult plain = RunCli("infer " + xml1_ + " " + xml2_);
  ASSERT_EQ(plain.exit_code, 0) << plain.output;

  // --stats adds the report on stderr; the schema on stdout is intact
  // and unchanged (stdout/stderr interleaving through the combined pipe
  // is buffering-dependent, so only containment is checked).
  CommandResult text = RunCli("infer --stats " + xml1_ + " " + xml2_);
  EXPECT_EQ(text.exit_code, 0) << text.output;
  EXPECT_NE(text.output.find(plain.output), std::string::npos)
      << text.output;

  CommandResult json = RunCli("infer --stats=json " + xml1_ + " " + xml2_);
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find(plain.output), std::string::npos)
      << json.output;
  for (const char* key :
       {"\"condtd_stats_version\": 1", "\"counters\"", "\"learners\"",
        "\"scheduling\"", "\"gauges\"", "\"wall\""}) {
    EXPECT_NE(json.output.find(key), std::string::npos)
        << key << "\n" << json.output;
  }
#ifdef CONDTD_NO_STATS
  // The kill-switch build still accepts the flag and renders the full
  // schema, but reports itself disabled with all-zero counts.
  EXPECT_NE(json.output.find("\"enabled\": false"), std::string::npos)
      << json.output;
#else
  EXPECT_NE(text.output.find("documents_ingested"), std::string::npos)
      << text.output;
  for (const char* key : {"\"enabled\": true", "\"documents_ingested\": 2"}) {
    EXPECT_NE(json.output.find(key), std::string::npos)
        << key << "\n" << json.output;
  }
#endif

  CommandResult bad = RunCli("infer --stats=yaml " + xml1_);
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("expected 'json' or 'text'"),
            std::string::npos)
      << bad.output;
}

TEST_F(CliTest, StatsCountersSubtreeIsIdenticalAcrossJobs) {
  auto counters_of = [&](const std::string& jobs_flag) {
    CommandResult result =
        RunCli("infer --stats=json " + jobs_flag + " " + xml1_ + " " + xml2_);
    EXPECT_EQ(result.exit_code, 0) << result.output;
    size_t start = result.output.find("\"counters\": {");
    size_t end = result.output.find('}', start);
    EXPECT_NE(start, std::string::npos) << result.output;
    EXPECT_NE(end, std::string::npos) << result.output;
    return result.output.substr(start, end - start);
  };
  std::string base = counters_of("");
  EXPECT_EQ(counters_of("--jobs=2"), base);
  EXPECT_EQ(counters_of("--jobs=5"), base);
}

TEST_F(CliTest, ParallelInferReportsEveryFailedDocument) {
  std::string bad1 = TempPath("bad1.xml");
  std::string bad2 = TempPath("bad2.xml");
  ASSERT_TRUE(WriteStringToFile(bad1, "<a><b></a>").ok());
  ASSERT_TRUE(WriteStringToFile(bad2, "not xml at all").ok());
  CommandResult result = RunCli("infer --jobs=2 " + xml1_ + " " + bad1 +
                                " " + xml2_ + " " + bad2);
  EXPECT_EQ(result.exit_code, 1);
  // One line per failed document — not just the first failure.
  EXPECT_NE(result.output.find(bad1 + ":"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(bad2 + ":"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("2 of 4 documents failed"),
            std::string::npos)
      << result.output;
}

TEST_F(CliTest, InferWithoutInputsExplainsItself) {
  CommandResult result = RunCli("infer --jobs=2");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("no input files"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, GenRejectsInvalidCountAndSeed) {
  std::string dtd_path = TempPath("gen_flags.dtd");
  ASSERT_TRUE(
      WriteStringToFile(dtd_path, "<!ELEMENT a EMPTY>\n").ok());
  CommandResult count =
      RunCli("gen --schema=" + dtd_path + " --count=0");
  EXPECT_EQ(count.exit_code, 2);
  EXPECT_NE(count.output.find("--count=0"), std::string::npos)
      << count.output;

  CommandResult seed =
      RunCli("gen --schema=" + dtd_path + " --seed=-7");
  EXPECT_EQ(seed.exit_code, 2);
  EXPECT_NE(seed.output.find("--seed=-7"), std::string::npos)
      << seed.output;
}

TEST_F(CliTest, ServeRejectsMissingListener) {
  CommandResult result = RunCli("serve");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--socket"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, ServeAndClientRoundTrip) {
  std::string socket_path = TempPath("serve.sock");
  std::string data_dir = TempPath("serve_data");
  std::string endpoint = "--socket=" + socket_path;
  std::remove(socket_path.c_str());
  // The data dir is a fixed per-test path: wipe any corpus a previous
  // run persisted there, or the generation assertions below drift.
  ASSERT_EQ(std::system(("rm -rf '" + data_dir + "'").c_str()), 0);

  // Launch the daemon detached; the trailing '&' lets popen/pclose
  // return immediately while the server keeps running.
  std::string launch = std::string(CONDTD_CLI_PATH) + " serve " +
                       endpoint + " --data-dir=" + data_dir +
                       " --no-fsync >/dev/null 2>&1 &";
  FILE* pipe = popen(launch.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  pclose(pipe);

  // Readiness: ping until the socket answers.
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    up = RunCli("client " + endpoint + " ping").exit_code == 0;
    if (!up) usleep(50 * 1000);
  }
  ASSERT_TRUE(up) << "server never came up";

  CommandResult ingest =
      RunCli("client " + endpoint + " ingest lib " + xml1_ + " " + xml2_);
  EXPECT_EQ(ingest.exit_code, 0) << ingest.output;
  EXPECT_NE(ingest.output.find("documents=2"), std::string::npos)
      << ingest.output;

  // The daemon's answer is byte-identical to the batch CLI over the
  // same documents.
  CommandResult batch = RunCli("infer " + xml1_ + " " + xml2_);
  ASSERT_EQ(batch.exit_code, 0) << batch.output;
  CommandResult query = RunCli("client " + endpoint + " query lib");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_EQ(query.output, batch.output);

  CommandResult snapshot =
      RunCli("client " + endpoint + " snapshot lib");
  EXPECT_EQ(snapshot.exit_code, 0) << snapshot.output;
  EXPECT_NE(snapshot.output.find("generation=1"), std::string::npos)
      << snapshot.output;

  CommandResult stats = RunCli("client " + endpoint + " stats");
  EXPECT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("\"condtd_serve_stats_version\": 1"),
            std::string::npos)
      << stats.output;

  CommandResult shutdown = RunCli("client " + endpoint + " shutdown");
  EXPECT_EQ(shutdown.exit_code, 0) << shutdown.output;
  // The socket file disappears on clean shutdown.
  for (int i = 0; i < 100; ++i) {
    if (access(socket_path.c_str(), F_OK) != 0) break;
    usleep(50 * 1000);
  }
  EXPECT_NE(access(socket_path.c_str(), F_OK), 0);
}

// TCP daemon lifecycle without a fixed port: --port=0 binds whatever the
// kernel has free and the readiness line reports the choice, so parallel
// test runs (or an occupied port on a shared machine) cannot collide.
TEST_F(CliTest, ServeAndClientRoundTripTcpEphemeralPort) {
  std::string data_dir = TempPath("serve_tcp_data");
  std::string log_path = TempPath("serve_tcp.log");
  ASSERT_EQ(std::system(("rm -rf '" + data_dir + "'").c_str()), 0);
  std::remove(log_path.c_str());

  std::string launch = std::string(CONDTD_CLI_PATH) +
                       " serve --port=0 --data-dir=" + data_dir +
                       " --no-fsync >" + log_path + " 2>&1 &";
  FILE* pipe = popen(launch.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  pclose(pipe);

  // Readiness: poll the log for "condtd serve listening on HOST:PORT"
  // and parse the kernel-chosen port out of it.
  int port = -1;
  for (int i = 0; i < 100 && port < 0; ++i) {
    Result<std::string> log = ReadFileToString(log_path);
    if (log.ok()) {
      size_t pos = log->find("listening on ");
      size_t colon = pos == std::string::npos
                         ? std::string::npos
                         : log->find(':', pos);
      if (colon != std::string::npos) {
        port = std::atoi(log->c_str() + colon + 1);
      }
    }
    if (port < 0) usleep(50 * 1000);
  }
  ASSERT_GT(port, 0) << "no readiness line with a port in " << log_path;

  std::string endpoint = "--port=" + std::to_string(port);
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    up = RunCli("client " + endpoint + " ping").exit_code == 0;
    if (!up) usleep(50 * 1000);
  }
  ASSERT_TRUE(up) << "server never answered on port " << port;

  CommandResult ingest =
      RunCli("client " + endpoint + " ingest lib " + xml1_ + " " + xml2_);
  EXPECT_EQ(ingest.exit_code, 0) << ingest.output;
  CommandResult batch = RunCli("infer " + xml1_ + " " + xml2_);
  ASSERT_EQ(batch.exit_code, 0) << batch.output;
  CommandResult query = RunCli("client " + endpoint + " query lib");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_EQ(query.output, batch.output);

  CommandResult shutdown = RunCli("client " + endpoint + " shutdown");
  EXPECT_EQ(shutdown.exit_code, 0) << shutdown.output;
  // A post-shutdown ping must fail once the listener is gone.
  bool down = false;
  for (int i = 0; i < 100 && !down; ++i) {
    down = RunCli("client " + endpoint + " ping").exit_code != 0;
    if (!down) usleep(50 * 1000);
  }
  EXPECT_TRUE(down) << "listener survived shutdown on port " << port;
}

// The interleaving learner is reachable end-to-end from --algorithm and
// emits an AND group on permuted-order input (the unordered corpus of
// tests/data is pinned in differential_test; this is the CLI surface).
TEST_F(CliTest, InferIsoreEmitsAndGroupOnUnorderedInput) {
  std::string doc1 = TempPath("unordered1.xml");
  std::string doc2 = TempPath("unordered2.xml");
  ASSERT_TRUE(WriteStringToFile(
                  doc1,
                  "<root><item><a/><b/><c/></item>"
                  "<item><c/><b/><a/></item></root>")
                  .ok());
  ASSERT_TRUE(WriteStringToFile(
                  doc2,
                  "<root><item><b/><c/><a/></item>"
                  "<item><a/><c/><b/></item></root>")
                  .ok());
  CommandResult isore = RunCli("infer --algorithm=isore " + doc1 + " " + doc2);
  ASSERT_EQ(isore.exit_code, 0) << isore.output;
  EXPECT_NE(isore.output.find("(a & b & c)"), std::string::npos)
      << isore.output;
  CommandResult idtd = RunCli("infer --algorithm=idtd " + doc1 + " " + doc2);
  ASSERT_EQ(idtd.exit_code, 0) << idtd.output;
  EXPECT_EQ(idtd.output.find(" & "), std::string::npos) << idtd.output;
}

}  // namespace
}  // namespace condtd
