#include <gtest/gtest.h>

#include <string>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/model.h"
#include "dtd/validator.h"
#include "xml/parser.h"

namespace condtd {
namespace {

TEST(ContentModelParser, SpecialForms) {
  Alphabet alphabet;
  EXPECT_EQ(ParseContentModel("EMPTY", &alphabet)->kind,
            ContentKind::kEmpty);
  EXPECT_EQ(ParseContentModel("ANY", &alphabet)->kind, ContentKind::kAny);
  EXPECT_EQ(ParseContentModel("(#PCDATA)", &alphabet)->kind,
            ContentKind::kPcdataOnly);
  Result<ContentModel> mixed =
      ParseContentModel("(#PCDATA | em | strong)*", &alphabet);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->kind, ContentKind::kMixed);
  EXPECT_EQ(mixed->mixed_symbols.size(), 2u);
}

TEST(ContentModelParser, ChildrenModels) {
  Alphabet alphabet;
  Result<ContentModel> model = ParseContentModel(
      "(authors, citation, (volume | month), year, pages?, "
      "(title | description)?, xrefs?)",
      &alphabet);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_EQ(model->kind, ContentKind::kChildren);
  // Round trip through the DTD printer.
  std::string printed = ToDtdString(model->regex, alphabet);
  Result<ContentModel> again = ParseContentModel(printed, &alphabet);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_TRUE(StructurallyEqual(model->regex, again->regex)) << printed;
}

TEST(ContentModelParser, PostfixOperators) {
  Alphabet alphabet;
  Result<ContentModel> model =
      ParseContentModel("(a+, b*, c?, (d | e)+)", &alphabet);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(ToDtdString(model->regex, alphabet), "(a+, b*, c?, (d | e)+)");
}

TEST(ContentModelParser, SequenceInsideChoiceIsParenthesized) {
  // Regression (property harness, seed 303224533133227536): the printer
  // emitted a sequence alternative bare — "(a*, b | c)" — which the DTD
  // grammar rejects as mixed separators.
  Alphabet alphabet;
  ReRef seq = Re::Concat({Re::Star(Re::Sym(alphabet.Intern("a"))),
                          Re::Sym(alphabet.Intern("b"))});
  ReRef model = Re::Disj({seq, Re::Sym(alphabet.Intern("c"))});
  std::string printed = ToDtdString(model, alphabet);
  Result<ContentModel> again = ParseContentModel(printed, &alphabet);
  ASSERT_TRUE(again.ok()) << printed << ": " << again.status().ToString();
  EXPECT_TRUE(StructurallyEqual(model, again->regex)) << printed;
}

TEST(ContentModelParser, Errors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseContentModel("(a, b | c)", &alphabet).ok());  // mixed seps
  EXPECT_FALSE(ParseContentModel("(a,", &alphabet).ok());
  EXPECT_FALSE(ParseContentModel("()", &alphabet).ok());
  EXPECT_FALSE(ParseContentModel("(a | #PCDATA)", &alphabet).ok());
}

TEST(DtdParser, DeclarationsAndAttlist) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!-- protein -->\n"
      "<!ELEMENT db (entry*)>\n"
      "<!ELEMENT entry (name, seq)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT seq (#PCDATA)>\n"
      "<!ATTLIST entry id CDATA #REQUIRED kind (a|b) \"a\">\n",
      &alphabet);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->elements.size(), 4u);
  EXPECT_EQ(dtd->root, alphabet.Find("db"));
  const auto& attrs = dtd->attributes.at(alphabet.Find("entry"));
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].name, "id");
  EXPECT_EQ(attrs[0].default_decl, "#REQUIRED");
  EXPECT_EQ(attrs[1].type, "(a|b)");
}

TEST(DtdParser, DoctypeFromXmlDocument) {
  Result<XmlDocument> doc = ParseXml(
      "<!DOCTYPE r [ <!ELEMENT r (a, b?)> <!ELEMENT a EMPTY> "
      "<!ELEMENT b EMPTY> ]><r><a/></r>");
  ASSERT_TRUE(doc.ok());
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDoctype(doc->doctype, &alphabet);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->root, alphabet.Find("r"));
  EXPECT_EQ(dtd->elements.size(), 3u);
}

TEST(DtdWriter, RoundTrip) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT refinfo (authors, citation, (volume | month), year, "
      "pages?, (title | description)?, xrefs?)>\n"
      "<!ELEMENT authors (author+)>\n"
      "<!ELEMENT author (#PCDATA)>\n",
      &alphabet);
  ASSERT_TRUE(dtd.ok());
  std::string text = WriteDtd(dtd.value(), alphabet);
  Result<Dtd> again = ParseDtd(text, &alphabet);
  ASSERT_TRUE(again.ok()) << text;
  EXPECT_EQ(again->elements.size(), dtd->elements.size());
  for (const auto& [symbol, model] : dtd->elements) {
    ASSERT_TRUE(again->elements.count(symbol) > 0);
    EXPECT_EQ(again->elements.at(symbol).kind, model.kind);
  }
}

TEST(Validator, AcceptsValidDocument) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT r (a+, b?)> <!ELEMENT a (#PCDATA)> <!ELEMENT b EMPTY>",
      &alphabet);
  ASSERT_TRUE(dtd.ok());
  Result<XmlDocument> doc = ParseXml("<r><a>x</a><a>y</a><b/></r>");
  ASSERT_TRUE(doc.ok());
  ValidationReport report = Validate(doc.value(), dtd.value(), &alphabet);
  EXPECT_TRUE(report.valid()) << report.issues[0].message;
  EXPECT_EQ(report.elements_checked, 4);
}

TEST(Validator, ReportsContentModelViolations) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>",
      &alphabet);
  ASSERT_TRUE(dtd.ok());
  Result<XmlDocument> doc = ParseXml("<r><b/><a/></r>");
  ASSERT_TRUE(doc.ok());
  ValidationReport report = Validate(doc.value(), dtd.value(), &alphabet);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.issues[0].element, "r");
}

TEST(Validator, ReportsUndeclaredElementsAndEmptyViolations) {
  Alphabet alphabet;
  Result<Dtd> dtd =
      ParseDtd("<!ELEMENT r (a)> <!ELEMENT a EMPTY>", &alphabet);
  ASSERT_TRUE(dtd.ok());
  Result<XmlDocument> doc = ParseXml("<r><a><x/></a></r>");
  ASSERT_TRUE(doc.ok());
  ValidationReport report = Validate(doc.value(), dtd.value(), &alphabet);
  EXPECT_EQ(report.issues.size(), 2u);  // a not EMPTY; x undeclared
}

TEST(Validator, RequiredAttributes) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT r EMPTY> <!ATTLIST r id CDATA #REQUIRED>", &alphabet);
  ASSERT_TRUE(dtd.ok());
  Result<XmlDocument> good = ParseXml("<r id=\"1\"/>");
  Result<XmlDocument> bad = ParseXml("<r/>");
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(Validate(good.value(), dtd.value(), &alphabet).valid());
  EXPECT_FALSE(Validate(bad.value(), dtd.value(), &alphabet).valid());
}

TEST(Validator, MixedContent) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT p (#PCDATA | em)*> <!ELEMENT em (#PCDATA)>", &alphabet);
  ASSERT_TRUE(dtd.ok());
  Result<XmlDocument> good = ParseXml("<p>hello <em>world</em>!</p>");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(Validate(good.value(), dtd.value(), &alphabet).valid());
  Result<XmlDocument> bad = ParseXml("<p>x<table/></p>");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(Validate(bad.value(), dtd.value(), &alphabet).valid());
}

}  // namespace
}  // namespace condtd
