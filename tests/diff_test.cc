#include "dtd/diff.h"

#include <gtest/gtest.h>

#include <string>

#include "dtd/dtd_parser.h"
#include "infer/inferrer.h"
#include "regex/matcher.h"

namespace condtd {
namespace {

TEST(DtdDiff, IdenticalDtds) {
  Alphabet alphabet;
  Result<Dtd> a = ParseDtd(
      "<!ELEMENT r (x, y?)> <!ELEMENT x EMPTY> <!ELEMENT y (#PCDATA)>",
      &alphabet);
  Result<Dtd> b = ParseDtd(
      "<!ELEMENT r (x, y?)> <!ELEMENT x EMPTY> <!ELEMENT y (#PCDATA)>",
      &alphabet);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  DtdDiff diff = CompareDtds(a.value(), b.value());
  EXPECT_TRUE(diff.Identical());
  EXPECT_EQ(diff.entries.size(), 3u);
}

TEST(DtdDiff, DetectsStricterAndWitness) {
  // The paper's refinfo story: the data-derived model (volume | month)
  // is stricter than the official volume?, month?.
  Alphabet alphabet;
  Result<Dtd> official = ParseDtd(
      "<!ELEMENT refinfo (authors, volume?, month?)>", &alphabet);
  Result<Dtd> inferred = ParseDtd(
      "<!ELEMENT refinfo (authors, (volume | month))>", &alphabet);
  ASSERT_TRUE(official.ok());
  ASSERT_TRUE(inferred.ok());
  DtdDiff diff = CompareDtds(inferred.value(), official.value());
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.entries[0].relation, ModelRelation::kStricter);
  ASSERT_TRUE(diff.entries[0].has_witness);
  // The witness is a word the official model allows but the data never
  // shows — e.g. "authors" alone or "authors volume month".
  Matcher official_matcher(
      official->elements.at(alphabet.Find("refinfo")).regex);
  Matcher inferred_matcher(
      inferred->elements.at(alphabet.Find("refinfo")).regex);
  EXPECT_NE(official_matcher.Matches(diff.entries[0].witness),
            inferred_matcher.Matches(diff.entries[0].witness));
  // Swapping sides flips the relation.
  DtdDiff reverse = CompareDtds(official.value(), inferred.value());
  EXPECT_EQ(reverse.entries[0].relation, ModelRelation::kLooser);
}

TEST(DtdDiff, IncomparableAndMissingElements) {
  Alphabet alphabet;
  Result<Dtd> a = ParseDtd(
      "<!ELEMENT r (x | y)> <!ELEMENT x EMPTY> <!ELEMENT extra EMPTY>",
      &alphabet);
  Result<Dtd> b = ParseDtd(
      "<!ELEMENT r (x, y?)> <!ELEMENT x (#PCDATA | q)*>", &alphabet);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  DtdDiff diff = CompareDtds(a.value(), b.value());
  // r: {x, y} vs {x, xy} — incomparable. x: EMPTY's child language {ε}
  // is inside mixed content's q* — stricter. extra: only left.
  EXPECT_EQ(diff.CountWhere(ModelRelation::kIncomparable), 1);
  EXPECT_EQ(diff.CountWhere(ModelRelation::kStricter), 1);
  EXPECT_EQ(diff.CountWhere(ModelRelation::kOnlyLeft), 1);
  std::string text = DiffToString(diff, a.value(), b.value(), alphabet);
  EXPECT_NE(text.find("incomparable"), std::string::npos);
  EXPECT_NE(text.find("only in left"), std::string::npos);
  EXPECT_NE(text.find("is allowed by only one side"), std::string::npos);
}

TEST(DtdDiff, MixedVersusChildrenAndAny) {
  Alphabet alphabet;
  Result<Dtd> a =
      ParseDtd("<!ELEMENT p (#PCDATA | em)*> <!ELEMENT q ANY>", &alphabet);
  Result<Dtd> b =
      ParseDtd("<!ELEMENT p (em*)> <!ELEMENT q (em)>", &alphabet);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  DtdDiff diff = CompareDtds(a.value(), b.value());
  for (const ElementDiff& entry : diff.entries) {
    if (entry.element == alphabet.Find("p")) {
      // Child-sequence-wise (#PCDATA | em)* and (em*) admit the same
      // sequences of em children.
      EXPECT_EQ(entry.relation, ModelRelation::kEqual);
    }
    if (entry.element == alphabet.Find("q")) {
      // ANY is looser than (em).
      EXPECT_EQ(entry.relation, ModelRelation::kLooser);
    }
  }
}

TEST(DtdDiff, SchemaCleaningEndToEnd) {
  // Infer from data, diff against the official schema, and find the
  // tightening — the complete Section 1.1 workflow.
  DtdInferrer inferrer;
  ASSERT_TRUE(inferrer
                  .AddXml("<db>"
                          "<ref><authors>x</authors><volume>1</volume>"
                          "</ref>"
                          "<ref><authors>y</authors><month>2</month>"
                          "</ref>"
                          "</db>")
                  .ok());
  Result<Dtd> inferred = inferrer.InferDtd();
  ASSERT_TRUE(inferred.ok());
  Result<Dtd> official = ParseDtd(
      "<!ELEMENT db (ref+)>\n"
      "<!ELEMENT ref (authors, volume?, month?)>\n"
      "<!ELEMENT authors (#PCDATA)>\n"
      "<!ELEMENT volume (#PCDATA)>\n"
      "<!ELEMENT month (#PCDATA)>\n",
      inferrer.alphabet());
  ASSERT_TRUE(official.ok());
  DtdDiff diff = CompareDtds(inferred.value(), official.value());
  bool found = false;
  for (const ElementDiff& entry : diff.entries) {
    if (entry.element == inferrer.alphabet()->Find("ref")) {
      EXPECT_EQ(entry.relation, ModelRelation::kStricter);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace condtd
