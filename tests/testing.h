#ifndef CONDTD_TESTS_TESTING_H_
#define CONDTD_TESTS_TESTING_H_

#include <string>
#include <vector>

#include "alphabet/alphabet.h"
#include "regex/ast.h"
#include "regex/parser.h"

namespace condtd {
namespace testing_util {

/// Parses a paper-notation regex over one-letter symbols, asserting
/// success. `alphabet` accumulates interned symbols.
inline ReRef ParseChars(const std::string& text, Alphabet* alphabet) {
  RegexParseOptions options;
  options.char_symbols = true;
  Result<ReRef> re = ParseRegex(text, alphabet, options);
  if (!re.ok()) {
    throw std::runtime_error("test regex failed to parse: " + text + ": " +
                             re.status().ToString());
  }
  return re.value();
}

/// Parses with multi-character identifiers (a1, a2, ...).
inline ReRef ParseNames(const std::string& text, Alphabet* alphabet) {
  Result<ReRef> re = ParseRegex(text, alphabet);
  if (!re.ok()) {
    throw std::runtime_error("test regex failed to parse: " + text + ": " +
                             re.status().ToString());
  }
  return re.value();
}

/// Builds words from one-letter strings.
inline std::vector<Word> WordsFromStrings(
    const std::vector<std::string>& strings, Alphabet* alphabet) {
  std::vector<Word> words;
  words.reserve(strings.size());
  for (const std::string& s : strings) {
    words.push_back(alphabet->WordFromChars(s));
  }
  return words;
}

}  // namespace testing_util
}  // namespace condtd

#endif  // CONDTD_TESTS_TESTING_H_
