#include "gfa/gfa.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/two_t_inf.h"
#include "gfa/rewrite.h"
#include "idtd/repair.h"
#include "regex/normalize.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

// --- Graph plumbing ----------------------------------------------------------

TEST(Gfa, FromSoaShapesSourceAndSink) {
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab", "b"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  EXPECT_EQ(gfa.NumLiveNodes(), 2);
  // src -> a, src -> b (both initial), b -> snk, a -> b.
  EXPECT_EQ(gfa.OutDegree(gfa.source()), 2);
  EXPECT_EQ(gfa.InDegree(gfa.sink()), 1);
  EXPECT_FALSE(gfa.IsFinal());
}

TEST(Gfa, EmptyWordBecomesSourceSinkEdge) {
  Alphabet alphabet;
  std::vector<Word> sample = WordsFromStrings({"a"}, &alphabet);
  sample.push_back(Word{});
  Gfa gfa = Gfa::FromSoa(Infer2T(sample));
  EXPECT_TRUE(gfa.HasEdge(gfa.source(), gfa.sink()));
}

TEST(Gfa, RemoveNodeDetachesEdges) {
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  std::vector<int> live = gfa.LiveNodes();
  gfa.RemoveNode(live[0]);
  EXPECT_EQ(gfa.NumLiveNodes(), 1);
  for (int v : gfa.LiveNodes()) {
    for (int to : gfa.Out(v)) {
      EXPECT_TRUE(gfa.IsAlive(to) || to == gfa.sink());
    }
  }
}

TEST(Gfa, EdgeSupportAccumulates) {
  Gfa gfa;
  int n = gfa.AddNode(Re::Sym(0));
  gfa.AddEdge(gfa.source(), n, 3);
  gfa.AddEdge(gfa.source(), n, 4);
  EXPECT_EQ(gfa.EdgeSupport(gfa.source(), n), 7);
  gfa.RemoveEdge(gfa.source(), n);
  EXPECT_EQ(gfa.EdgeSupport(gfa.source(), n), 0);
}

// --- ε-closure ----------------------------------------------------------------

TEST(GfaClosure, VirtualSelfLoopForPlusLabels) {
  Gfa gfa;
  Alphabet alphabet;
  int plus = gfa.AddNode(ParseChars("a+", &alphabet));
  int opt_plus = gfa.AddNode(ParseChars("(b+)?", &alphabet));
  int star = gfa.AddNode(ParseChars("c*", &alphabet));
  int opt = gfa.AddNode(ParseChars("d?", &alphabet));
  int plain = gfa.AddNode(ParseChars("e", &alphabet));
  EXPECT_TRUE(gfa.HasVirtualSelfLoop(plus));
  EXPECT_TRUE(gfa.HasVirtualSelfLoop(opt_plus));
  EXPECT_TRUE(gfa.HasVirtualSelfLoop(star));
  EXPECT_FALSE(gfa.HasVirtualSelfLoop(opt));
  EXPECT_FALSE(gfa.HasVirtualSelfLoop(plain));
}

TEST(GfaClosure, PathsThroughNullableIntermediates) {
  // src -> x -> y? -> z -> snk: the closure must contain (x, z) because
  // y? derives ε, but not (src, z) (x is not nullable).
  Gfa gfa;
  Alphabet alphabet;
  int x = gfa.AddNode(ParseChars("x", &alphabet));
  int y = gfa.AddNode(ParseChars("y?", &alphabet));
  int z = gfa.AddNode(ParseChars("z", &alphabet));
  gfa.AddEdge(gfa.source(), x);
  gfa.AddEdge(x, y);
  gfa.AddEdge(y, z);
  gfa.AddEdge(z, gfa.sink());
  Gfa::Closure closure = gfa.ComputeClosure();
  EXPECT_TRUE(closure.succ[x].count(z) > 0);
  EXPECT_TRUE(closure.pred[z].count(x) > 0);
  EXPECT_FALSE(closure.succ[gfa.source()].count(z) > 0);
  // Direct edges are always present.
  EXPECT_TRUE(closure.succ[x].count(y) > 0);
}

TEST(GfaClosure, ChainsOfNullables) {
  Gfa gfa;
  Alphabet alphabet;
  int a = gfa.AddNode(ParseChars("a?", &alphabet));
  int b = gfa.AddNode(ParseChars("b?", &alphabet));
  int c = gfa.AddNode(ParseChars("c", &alphabet));
  gfa.AddEdge(gfa.source(), a);
  gfa.AddEdge(a, b);
  gfa.AddEdge(b, c);
  gfa.AddEdge(c, gfa.sink());
  Gfa::Closure closure = gfa.ComputeClosure();
  // src reaches c through two nullable hops.
  EXPECT_TRUE(closure.succ[gfa.source()].count(c) > 0);
}

// --- Repair rules in isolation --------------------------------------------------

TEST(Repair, EnableOptionalAddsSkipEdges) {
  // a -> b -> c plus partial skip evidence a -> c missing… build a case
  // with two predecessors where one skip edge exists: p1 -> r -> s and
  // p2 -> r with p1 -> s present (case (a)); the repair must add p2 -> s.
  Gfa gfa;
  Alphabet alphabet;
  int p1 = gfa.AddNode(ParseChars("a", &alphabet));
  int p2 = gfa.AddNode(ParseChars("b", &alphabet));
  int r = gfa.AddNode(ParseChars("c", &alphabet));
  int s = gfa.AddNode(ParseChars("d", &alphabet));
  gfa.AddEdge(gfa.source(), p1);
  gfa.AddEdge(gfa.source(), p2);
  gfa.AddEdge(p1, r);
  gfa.AddEdge(p2, r);
  gfa.AddEdge(r, s);
  gfa.AddEdge(p1, s);  // the partial evidence
  gfa.AddEdge(s, gfa.sink());
  ASSERT_TRUE(EnableOptional(&gfa, /*k=*/2));
  EXPECT_TRUE(gfa.HasEdge(p2, s));
  // Now the optional rewrite rule fires on r and removes the skips.
  ASSERT_TRUE(ApplyOptionalRule(&gfa));
  EXPECT_FALSE(gfa.HasEdge(p1, s));
  EXPECT_FALSE(gfa.HasEdge(p2, s));
  EXPECT_EQ(ToString(gfa.Label(r), alphabet), "c?");
}

TEST(Repair, EnableDisjunctionPrefersMutualPairs) {
  // A mutual pair (u <-> v) and a merely similar pair must resolve
  // toward the mutual one (the Figure 2 walkthrough's choice).
  Alphabet alphabet;
  std::vector<Word> words =
      WordsFromStrings({"bacacdacde", "cbacdbacde"}, &alphabet);
  Gfa gfa = Gfa::FromSoa(Infer2T(words));
  ASSERT_TRUE(EnableDisjunction(&gfa, 2));
  // After the repair both a and c have identical in/out neighborhoods.
  int a = -1;
  int c = -1;
  for (int v : gfa.LiveNodes()) {
    std::string label = ToString(gfa.Label(v), alphabet);
    if (label == "a") a = v;
    if (label == "c") c = v;
  }
  ASSERT_GE(a, 0);
  ASSERT_GE(c, 0);
  EXPECT_EQ(gfa.In(a).size(), gfa.In(c).size());
  EXPECT_EQ(gfa.Out(a).size(), gfa.Out(c).size());
}

TEST(Repair, FullMergeFallbackReachesFinalForm) {
  // Disconnected neighborhoods where no repair precondition holds.
  Gfa gfa;
  Alphabet alphabet;
  int a = gfa.AddNode(ParseChars("a", &alphabet));
  int b = gfa.AddNode(ParseChars("b", &alphabet));
  int c = gfa.AddNode(ParseChars("c", &alphabet));
  gfa.AddEdge(gfa.source(), a);
  gfa.AddEdge(a, b);
  gfa.AddEdge(b, c);
  gfa.AddEdge(c, gfa.sink());
  gfa.AddEdge(a, gfa.sink());
  FullMergeFallback(&gfa);
  RewriteFixpoint(&gfa);
  EXPECT_TRUE(gfa.IsFinal());
}

// --- Redundant skip edge rule ----------------------------------------------------

TEST(RedundantSkipEdge, RemovesEpsilonBypassedEdges) {
  Gfa gfa;
  Alphabet alphabet;
  int x = gfa.AddNode(ParseChars("(a+)?", &alphabet));
  gfa.AddEdge(gfa.source(), x);
  gfa.AddEdge(x, gfa.sink());
  gfa.AddEdge(gfa.source(), gfa.sink());  // ε word, bypassed via x
  ASSERT_TRUE(ApplyRedundantSkipEdgeRule(&gfa));
  EXPECT_FALSE(gfa.HasEdge(gfa.source(), gfa.sink()));
  EXPECT_TRUE(gfa.IsFinal());
}

TEST(RedundantSkipEdge, KeepsNecessaryEdges) {
  Gfa gfa;
  Alphabet alphabet;
  int x = gfa.AddNode(ParseChars("a", &alphabet));  // not nullable
  gfa.AddEdge(gfa.source(), x);
  gfa.AddEdge(x, gfa.sink());
  gfa.AddEdge(gfa.source(), gfa.sink());
  EXPECT_FALSE(ApplyRedundantSkipEdgeRule(&gfa));
}

// --- Rewrite counts -----------------------------------------------------------

TEST(RewriteFixpointCount, LinearInAutomatonSize) {
  // Theorem 1: at most O(n) rewrite steps since every step adds an
  // operator and operators are never removed.
  Alphabet alphabet;
  ReRef target = ParseChars("a(b|c)*d+(e|f)?", &alphabet);
  Gfa gfa = Gfa::FromSoa(SoaFromRegex(target));
  int steps = RewriteFixpoint(&gfa);
  EXPECT_TRUE(gfa.IsFinal());
  EXPECT_LE(steps, 4 * 6);  // generous linear bound for 6 symbols
}

}  // namespace
}  // namespace condtd
