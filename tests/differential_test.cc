// Differential goldens across the learner refactor: the DTDs below were
// captured from the pre-refactor engine (enum-dispatched learners, the
// summaries inlined in DtdInferrer::ElementState) and pin the unified
// SummaryStore/LearnerRegistry engine byte-for-byte — for every built-in
// algorithm, across the DOM, streaming and sharded ingestion paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "infer/engine.h"
#include "infer/inferrer.h"
#include "infer/parallel.h"
#include "infer/streaming.h"
#include "regex/properties.h"

namespace condtd {
namespace {

// --- corpora --------------------------------------------------------------

// Corpus A exercises optionality, repetition, mixed content, EMPTY
// elements, attributes, and a dense element ("row", 240+ occurrences)
// that crosses the auto policy's iDTD threshold.
std::vector<std::string> CorpusA() {
  std::vector<std::string> docs = {
      "<db><rec id=\"1\"><k>alpha</k><v>1</v></rec>"
      "<rec id=\"2\"><k>beta</k><note>n</note><note>m</note></rec></db>",
      "<db><rec id=\"3\"><k>gamma</k><v>2</v><note>x</note></rec>"
      "<meta/><rec id=\"4\"><k>delta</k></rec></db>",
      "<db><mix>text <b>bold</b> and <i>ital</i> tail</mix>"
      "<rec id=\"5\"><k>eps</k><v>3</v></rec></db>",
  };
  std::string dense = "<db><grid>";
  for (int i = 0; i < 120; ++i) {
    dense += "<row><a/>";
    if (i % 2 == 0) dense += "<b/>";
    if (i % 3 == 0) dense += "<c/>";
    dense += "<a/></row>";
  }
  dense += "</grid></db>";
  docs.push_back(std::move(dense));
  docs.push_back(
      "<db><grid><row><a/><c/><a/></row><row><a/><b/><a/></row></grid>"
      "<rec id=\"6\"><k>zeta</k><note>t</note></rec></db>");
  return docs;
}

// Corpus B is fully representative: every algorithm — including plain
// Algorithm 1 rewrite — agrees on it.
std::vector<std::string> CorpusB() {
  return {
      "<lib><shelf><bk><t>a</t><au>x</au><au>y</au></bk>"
      "<bk><t>b</t><au>z</au></bk></shelf></lib>",
      "<lib><shelf><bk><t>c</t><au>w</au><au>v</au><au>u</au></bk></shelf>"
      "<shelf><bk><t>d</t><au>q</au></bk></shelf></lib>",
      "<lib><shelf><bk><t>e</t><au>r</au></bk></shelf></lib>",
  };
}

// --- pre-refactor goldens -------------------------------------------------

constexpr char kGoldenAIdtd[] =
    "<!ELEMENT db ((mix | grid)?, (rec | meta)*)>\n"
    "<!ELEMENT rec (k, v?, note*)>\n"
    "<!ATTLIST rec\n"
    "  id CDATA #REQUIRED>\n"
    "<!ELEMENT k (#PCDATA)>\n"
    "<!ELEMENT v (#PCDATA)>\n"
    "<!ELEMENT note (#PCDATA)>\n"
    "<!ELEMENT meta EMPTY>\n"
    "<!ELEMENT mix (#PCDATA | b | i)*>\n"
    "<!ELEMENT b (#PCDATA)>\n"
    "<!ELEMENT i (#PCDATA)>\n"
    "<!ELEMENT grid (row)+>\n"
    // A sequence alternative is parenthesized: "(a | b?, c?)" would be
    // rejected by the DTD grammar as mixed separators.
    "<!ELEMENT row (a | (b?, c?))+>\n"
    "<!ELEMENT a EMPTY>\n"
    "<!ELEMENT c EMPTY>\n";

constexpr char kGoldenACrx[] =
    "<!ELEMENT db ((mix | grid)?, (rec | meta)*)>\n"
    "<!ELEMENT rec (k, v?, note*)>\n"
    "<!ATTLIST rec\n"
    "  id CDATA #REQUIRED>\n"
    "<!ELEMENT k (#PCDATA)>\n"
    "<!ELEMENT v (#PCDATA)>\n"
    "<!ELEMENT note (#PCDATA)>\n"
    "<!ELEMENT meta EMPTY>\n"
    "<!ELEMENT mix (#PCDATA | b | i)*>\n"
    "<!ELEMENT b (#PCDATA)>\n"
    "<!ELEMENT i (#PCDATA)>\n"
    "<!ELEMENT grid (row)+>\n"
    "<!ELEMENT row (b | a | c)+>\n"
    "<!ELEMENT a EMPTY>\n"
    "<!ELEMENT c EMPTY>\n";

// Algorithm 1 has no repair rules, so it must fail on the (deliberately
// non-representative) corpus A with exactly this diagnostic.
constexpr char kGoldenARewriteError[] =
    "NoEquivalentSore: rewrite: no SORE is equivalent to the given SOA "
    "(4 nodes remain)";

constexpr char kGoldenB[] =
    "<!ELEMENT lib (shelf)+>\n"
    "<!ELEMENT shelf (bk)+>\n"
    "<!ELEMENT bk (t, au+)>\n"
    "<!ELEMENT t (#PCDATA)>\n"
    "<!ELEMENT au (#PCDATA)>\n";

// --- ingestion paths ------------------------------------------------------

InferenceOptions OptionsFor(const std::string& learner) {
  InferenceOptions options;
  options.learner = learner;
  return options;
}

Result<std::string> DomDtd(const std::vector<std::string>& docs,
                           const std::string& learner) {
  DtdInferrer inferrer(OptionsFor(learner));
  for (const std::string& doc : docs) {
    Status status = inferrer.AddXml(doc);
    if (!status.ok()) return status;
  }
  Result<Dtd> dtd = inferrer.InferDtd();
  if (!dtd.ok()) return dtd.status();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

Result<std::string> StreamingDtd(const std::vector<std::string>& docs,
                                 const std::string& learner,
                                 bool dedup_words) {
  DtdInferrer inferrer(OptionsFor(learner));
  StreamingFolder::Options folder_options;
  folder_options.dedup_words = dedup_words;
  StreamingFolder folder(&inferrer, folder_options);
  for (const std::string& doc : docs) {
    Status status = folder.AddXml(doc);
    if (!status.ok()) return status;
  }
  folder.Flush();
  Result<Dtd> dtd = inferrer.InferDtd();
  if (!dtd.ok()) return dtd.status();
  return WriteDtd(dtd.value(), *inferrer.alphabet());
}

Result<std::string> ShardedDtd(const std::vector<std::string>& docs,
                               const std::string& learner, int jobs) {
  ParallelDtdInferrer inferrer(OptionsFor(learner), jobs);
  for (const std::string& doc : docs) inferrer.AddXml(doc);
  Result<Dtd> dtd = inferrer.InferDtd();
  if (!dtd.ok()) return dtd.status();
  return WriteDtd(dtd.value(), *inferrer.merged()->alphabet());
}

// Runs every ingestion path and requires the identical outcome.
void ExpectEverywhere(const std::vector<std::string>& docs,
                      const std::string& learner,
                      const std::string& want_dtd,
                      const std::string& want_error = "") {
  auto check = [&](Result<std::string> got, const std::string& path) {
    if (!want_error.empty()) {
      ASSERT_FALSE(got.ok()) << learner << " via " << path;
      EXPECT_EQ(got.status().ToString(), want_error)
          << learner << " via " << path;
      return;
    }
    ASSERT_TRUE(got.ok())
        << learner << " via " << path << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), want_dtd) << learner << " via " << path;
  };
  check(DomDtd(docs, learner), "dom");
  check(StreamingDtd(docs, learner, /*dedup_words=*/true), "streaming");
  check(StreamingDtd(docs, learner, /*dedup_words=*/false),
        "streaming-eager");
  for (int jobs : {1, 2, 7}) {
    check(ShardedDtd(docs, learner, jobs),
          "sharded-jobs-" + std::to_string(jobs));
  }
}

// --- tests ----------------------------------------------------------------

TEST(Differential, CorpusAAuto) {
  ExpectEverywhere(CorpusA(), "auto", kGoldenAIdtd);
}

TEST(Differential, CorpusAIdtd) {
  ExpectEverywhere(CorpusA(), "idtd", kGoldenAIdtd);
}

TEST(Differential, CorpusACrx) {
  ExpectEverywhere(CorpusA(), "crx", kGoldenACrx);
}

TEST(Differential, CorpusARewritePinnedFailure) {
  ExpectEverywhere(CorpusA(), "rewrite", "", kGoldenARewriteError);
}

// The interleaving learners must be byte-identical to their baselines on
// ordered corpora: corpus A never shows two orders for any symbol pair,
// so isore degrades to exactly the idtd output and sire to the crx one —
// on every ingestion path and job count.
TEST(Differential, CorpusAIsoreMatchesIdtd) {
  ExpectEverywhere(CorpusA(), "isore", kGoldenAIdtd);
}

TEST(Differential, CorpusASireMatchesCrx) {
  ExpectEverywhere(CorpusA(), "sire", kGoldenACrx);
}

TEST(Differential, CorpusBAllAlgorithmsAgree) {
  for (const std::string& learner :
       {"auto", "idtd", "crx", "isore", "sire", "rewrite"}) {
    ExpectEverywhere(CorpusB(), learner, kGoldenB);
  }
}

// The legacy enum spellings must keep selecting the same learners.
TEST(Differential, EnumAliasesMatchLearnerNames) {
  const std::vector<std::pair<InferenceAlgorithm, std::string>> pairs = {
      {InferenceAlgorithm::kAuto, "auto"},
      {InferenceAlgorithm::kIdtd, "idtd"},
      {InferenceAlgorithm::kCrx, "crx"},
      {InferenceAlgorithm::kRewriteOnly, "rewrite"},
  };
  for (const auto& [algorithm, name] : pairs) {
    EXPECT_EQ(LearnerNameOf(algorithm), name);
    InferenceOptions via_enum;
    via_enum.algorithm = algorithm;
    DtdInferrer a(via_enum);
    DtdInferrer b(OptionsFor(name));
    ASSERT_NE(a.learner(), nullptr);
    EXPECT_EQ(a.learner(), b.learner()) << name;
    EXPECT_EQ(a.learner()->name(), name);
  }
}

// --- unordered corpus -----------------------------------------------------

// The checked-in corpus of tests/data/unordered: 12 documents generated
// from truth.dtd with
//   condtd gen --schema=truth.dtd --count=12 --seed=20060912 --unordered
// Every <item> carries the four children in a random permutation, so
// each symbol pair is seen in both orders and the interleaving partition
// splits into singletons.
std::vector<std::string> UnorderedCorpusPaths() {
  std::vector<std::string> paths;
  for (int i = 0; i < 12; ++i) {
    paths.push_back(std::string(CONDTD_TEST_DATA_DIR) + "/unordered/doc" +
                    std::to_string(i) + ".xml");
  }
  return paths;
}

constexpr char kGoldenUnorderedIsore[] =
    "<!ELEMENT root (item)+>\n"
    "<!ELEMENT item (qty & price & sku & vendor)>\n"
    "<!ELEMENT qty EMPTY>\n"
    "<!ELEMENT price EMPTY>\n"
    "<!ELEMENT sku EMPTY>\n"
    "<!ELEMENT vendor EMPTY>\n";

constexpr char kGoldenUnorderedIdtd[] =
    "<!ELEMENT root (item)+>\n"
    "<!ELEMENT item (qty | price | sku | vendor)+>\n"
    "<!ELEMENT qty EMPTY>\n"
    "<!ELEMENT price EMPTY>\n"
    "<!ELEMENT sku EMPTY>\n"
    "<!ELEMENT vendor EMPTY>\n";

// File-based ingestion through the batch engine — the path the CLI
// takes — with and without mmap.
Result<std::string> EngineDtdFromFiles(const std::vector<std::string>& paths,
                                       const std::string& learner, int jobs,
                                       bool allow_mmap) {
  IngestEngine::Options options;
  options.inference.learner = learner;
  options.input.allow_mmap = allow_mmap;
  options.jobs = jobs;
  IngestEngine engine(options);
  for (const std::string& path : paths) engine.AddFile(path);
  Status status = engine.Finish();
  if (!status.ok()) return status;
  Result<Dtd> dtd = engine.inferrer().InferDtd();
  if (!dtd.ok()) return dtd.status();
  return WriteDtd(dtd.value(), *engine.inferrer().alphabet());
}

// The ISSUE's acceptance bar: on the unordered corpus, isore emits an
// `&`-factor content model strictly more concise than the idtd SORE on
// the same input — stable across mmap/no-mmap and jobs 1/2/7.
TEST(Differential, UnorderedCorpusIsoreConcisenessWin) {
  std::vector<std::string> paths = UnorderedCorpusPaths();
  for (int jobs : {1, 2, 7}) {
    for (bool mmap : {true, false}) {
      std::string label =
          "jobs=" + std::to_string(jobs) + (mmap ? " mmap" : " no-mmap");
      Result<std::string> isore =
          EngineDtdFromFiles(paths, "isore", jobs, mmap);
      ASSERT_TRUE(isore.ok()) << label << ": " << isore.status().ToString();
      EXPECT_EQ(isore.value(), kGoldenUnorderedIsore) << label;
      Result<std::string> idtd =
          EngineDtdFromFiles(paths, "idtd", jobs, mmap);
      ASSERT_TRUE(idtd.ok()) << label << ": " << idtd.status().ToString();
      EXPECT_EQ(idtd.value(), kGoldenUnorderedIdtd) << label;
    }
  }

  // "Strictly more concise", stated on the parsed content models rather
  // than on string lengths: fewer tokens for the same element.
  Alphabet isore_alphabet;
  Result<Dtd> isore_dtd = ParseDtd(kGoldenUnorderedIsore, &isore_alphabet);
  ASSERT_TRUE(isore_dtd.ok()) << isore_dtd.status().ToString();
  Alphabet idtd_alphabet;
  Result<Dtd> idtd_dtd = ParseDtd(kGoldenUnorderedIdtd, &idtd_alphabet);
  ASSERT_TRUE(idtd_dtd.ok()) << idtd_dtd.status().ToString();
  Symbol isore_item = isore_alphabet.Find("item");
  Symbol idtd_item = idtd_alphabet.Find("item");
  ASSERT_NE(isore_item, kInvalidSymbol);
  ASSERT_NE(idtd_item, kInvalidSymbol);
  const ReRef& shuffled = isore_dtd->elements.at(isore_item).regex;
  const ReRef& sore = idtd_dtd->elements.at(idtd_item).regex;
  EXPECT_EQ(shuffled->kind(), ReKind::kShuffle);
  EXPECT_LT(CountTokens(shuffled), CountTokens(sore));
}

// The sire learner factors the same corpus with CHARE factors.
TEST(Differential, UnorderedCorpusSireEmitsShuffle) {
  Result<std::string> sire =
      EngineDtdFromFiles(UnorderedCorpusPaths(), "sire", 1, true);
  ASSERT_TRUE(sire.ok()) << sire.status().ToString();
  EXPECT_NE(sire.value().find(" & "), std::string::npos) << sire.value();
}

// Persisted state from one path restores into another without changing
// the result (save from streaming, load into a fresh engine).
TEST(Differential, SaveLoadCrossesIngestionPaths) {
  DtdInferrer streaming_side;
  StreamingFolder folder(&streaming_side);
  for (const std::string& doc : CorpusA()) {
    ASSERT_TRUE(folder.AddXml(doc).ok());
  }
  folder.Flush();
  DtdInferrer restored;
  ASSERT_TRUE(restored.LoadState(streaming_side.SaveState()).ok());
  Result<Dtd> dtd = restored.InferDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(WriteDtd(dtd.value(), *restored.alphabet()), kGoldenAIdtd);
}

}  // namespace
}  // namespace condtd
