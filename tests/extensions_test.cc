#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "automaton/dot.h"
#include "automaton/k_testable.h"
#include "automaton/two_t_inf.h"
#include "base/file.h"
#include "base/rng.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gfa/gfa.h"
#include "regex/determinism.h"
#include "regex/matcher.h"
#include "regex/equivalence.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;
using testing_util::WordsFromStrings;

// --- Determinism (one-unambiguity) -------------------------------------------

TEST(Determinism, SoresAreAlwaysDeterministic) {
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    EXPECT_TRUE(IsDeterministic(RandomSore(1 + rng.NextBelow(10), &rng)));
  }
}

TEST(Determinism, ClassicCounterexamples) {
  Alphabet alphabet;
  // (a|b)*a is the textbook non-deterministic RE.
  EXPECT_FALSE(IsDeterministic(ParseChars("(a|b)*a", &alphabet)));
  EXPECT_FALSE(IsDeterministic(ParseChars("(a|ab)", &alphabet)));
  EXPECT_FALSE(IsDeterministic(ParseChars("(ab|ac)", &alphabet)));
  // But a(a|b)* is deterministic: the leading position is forced.
  EXPECT_TRUE(IsDeterministic(ParseChars("a(a|b)*", &alphabet)));
  EXPECT_TRUE(IsDeterministic(ParseChars("a(b|c)", &alphabet)));
  EXPECT_TRUE(IsDeterministic(ParseChars("b?(a|c)", &alphabet)));
}

// --- Distinguishing words ------------------------------------------------------

TEST(DistinguishingWord, FindsShortestCounterexample) {
  Alphabet alphabet;
  ReRef a = ParseChars("(a|b)+", &alphabet);
  ReRef b = ParseChars("a+|b+", &alphabet);
  Result<Word> word = FindDistinguishingWord(a, b);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word->size(), 2u);  // "ab" or "ba"
  EXPECT_TRUE(Matches(a, word.value()));
  EXPECT_FALSE(Matches(b, word.value()));
}

TEST(DistinguishingWord, NotFoundForEqualLanguages) {
  Alphabet alphabet;
  Result<Word> word = FindDistinguishingWord(
      ParseChars("(a+)?", &alphabet), ParseChars("a*", &alphabet));
  EXPECT_EQ(word.status().code(), StatusCode::kNotFound);
}

TEST(DistinguishingWord, AgreesWithEquivalenceOracle) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    ReRef a = RandomSore(1 + rng.NextBelow(6), &rng);
    ReRef b = RandomSore(1 + rng.NextBelow(6), &rng);
    Result<Word> word = FindDistinguishingWord(a, b);
    if (LanguageEquivalent(a, b)) {
      EXPECT_FALSE(word.ok());
    } else {
      ASSERT_TRUE(word.ok());
      EXPECT_NE(Matches(a, word.value()), Matches(b, word.value()));
    }
  }
}

// --- k-testable inference ------------------------------------------------------

TEST(KTestable, KEquals2MatchesTwoTInf) {
  // The k = 2 member of the family is exactly 2T-INF / the SOA.
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    ReRef target = RandomSore(1 + rng.NextBelow(6), &rng);
    std::vector<Word> sample = SampleWords(target, 15, &rng);
    KTestable kt = InferKTestable(sample, 2);
    Soa soa = Infer2T(sample);
    // Compare on sample words and random probes.
    for (const Word& w : sample) {
      EXPECT_TRUE(kt.Accepts(w));
      EXPECT_EQ(kt.Accepts(w), soa.Accepts(w));
    }
    for (int probe = 0; probe < 30; ++probe) {
      Word w;
      int len = static_cast<int>(rng.NextBelow(8));
      for (int i = 0; i < len; ++i) {
        w.push_back(static_cast<Symbol>(rng.NextBelow(6)));
      }
      EXPECT_EQ(kt.Accepts(w), soa.Accepts(w))
          << "k=2 disagrees with the SOA";
    }
  }
}

TEST(KTestable, AcceptsSampleForAllK) {
  Rng rng(4);
  for (int k = 1; k <= 5; ++k) {
    for (int trial = 0; trial < 10; ++trial) {
      ReRef target = RandomSore(1 + rng.NextBelow(6), &rng);
      std::vector<Word> sample = SampleWords(target, 12, &rng);
      KTestable kt = InferKTestable(sample, k);
      for (const Word& w : sample) {
        EXPECT_TRUE(kt.Accepts(w)) << "k=" << k;
      }
    }
  }
}

TEST(KTestable, LargerKIsMoreSpecific) {
  // L_{k+1} ⊆ L_k on the same sample, and strictly tighter on a target
  // outside the 2-testable class. (A SORE like (ab|cd)+ would show no
  // separation — SOREs are exactly 2-testable, Proposition 1.)
  Rng rng(5);
  Alphabet alphabet;
  ReRef target = ParseChars("a(b|c)*(d(b|c|e)*)*", &alphabet);
  std::vector<Word> sample = SampleWords(target, 200, &rng);
  KTestable k2 = InferKTestable(sample, 2);
  KTestable k3 = InferKTestable(sample, 3);
  int k2_accepts = 0;
  int k3_accepts = 0;
  for (int probe = 0; probe < 4000; ++probe) {
    Word w;
    int len = 1 + static_cast<int>(rng.NextBelow(9));
    for (int i = 0; i < len; ++i) {
      w.push_back(static_cast<Symbol>(rng.NextBelow(5)));
    }
    bool a2 = k2.Accepts(w);
    bool a3 = k3.Accepts(w);
    if (a3) {
      EXPECT_TRUE(a2) << "k=3 accepted a word k=2 rejects";
    }
    k2_accepts += a2;
    k3_accepts += a3;
  }
  EXPECT_LT(k3_accepts, k2_accepts);
}

TEST(KTestable, NfaAgreesWithSetSemantics) {
  Rng rng(6);
  for (int k = 2; k <= 4; ++k) {
    for (int trial = 0; trial < 10; ++trial) {
      ReRef target = RandomSore(2 + rng.NextBelow(4), &rng);
      std::vector<Word> sample = SampleWords(target, 10, &rng);
      KTestable kt = InferKTestable(sample, k);
      Nfa nfa = kt.ToNfa();
      for (const Word& w : sample) {
        EXPECT_TRUE(nfa.Accepts(w)) << "k=" << k;
      }
      for (int probe = 0; probe < 50; ++probe) {
        Word w;
        int len = static_cast<int>(rng.NextBelow(2 * k + 2));
        for (int i = 0; i < len; ++i) {
          w.push_back(static_cast<Symbol>(rng.NextBelow(6)));
        }
        EXPECT_EQ(nfa.Accepts(w), kt.Accepts(w))
            << "k=" << k << " NFA/set disagreement";
      }
    }
  }
}

// --- DOT export ----------------------------------------------------------------

TEST(Dot, SoaRendering) {
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab", "b"}, &alphabet));
  std::string dot = SoaToDot(soa, alphabet);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // final state
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, GfaRendering) {
  Alphabet alphabet;
  Soa soa = Infer2T(WordsFromStrings({"ab"}, &alphabet));
  Gfa gfa = Gfa::FromSoa(soa);
  std::string dot = GfaToDot(gfa, alphabet);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("n0 ->"), std::string::npos);
}

// --- File I/O -------------------------------------------------------------------

TEST(File, RoundTrip) {
  std::string path = ::testing::TempDir() + "/condtd_file_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(File, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString("/nonexistent/condtd").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace condtd
