#include "infer/contextual.h"

#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "dtd/diff.h"
#include "dtd/dtd_writer.h"
#include "dtd/validator.h"
#include "gen/random_dtd.h"
#include "gen/xml_gen.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/properties.h"
#include "xml/parser.h"

namespace condtd {
namespace {

constexpr char kShopXml[] = R"(
<shop>
  <person><name><first>A</first><last>B</last></name></person>
  <person><name><first>C</first><last>D</last></name></person>
  <company><name><legal>E Corp</legal></name></company>
  <company><name><legal>F Ltd</legal></name></company>
</shop>)";

TEST(Contextual, DetectsParentDependentTypes) {
  // "name" has different content under person (first, last) and under
  // company (legal) — the XSD-style vertical context a DTD cannot
  // express.
  ContextualInferrer inferrer;
  ASSERT_TRUE(inferrer.AddXml(kShopXml).ok());
  Result<ContextualInferrer::Report> report = inferrer.Infer();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->NumContextDependent(), 1);

  const Alphabet& alphabet = *inferrer.alphabet();
  Symbol name = alphabet.Find("name");
  const ContextualInferrer::Report::ElementTypes* entry = nullptr;
  for (const auto& e : report->elements) {
    if (e.element == name) entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->types.size(), 2u);
  // The DTD approximation pools both shapes.
  ASSERT_EQ(entry->merged.kind, ContentKind::kChildren);
  Symbol first = alphabet.Find("first");
  Symbol legal = alphabet.Find("legal");
  EXPECT_TRUE(Matches(entry->merged.regex,
                      {first, alphabet.Find("last")}));
  EXPECT_TRUE(Matches(entry->merged.regex, {legal}));
}

TEST(Contextual, MergesEquivalentContexts) {
  // "id" looks the same under both parents → one uniform type.
  ContextualInferrer inferrer;
  ASSERT_TRUE(inferrer
                  .AddXml("<r><x><id/></x><y><id/></y>"
                          "<x><id/></x></r>")
                  .ok());
  Result<ContextualInferrer::Report> report = inferrer.Infer();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumContextDependent(), 0);
  for (const auto& entry : report->elements) {
    EXPECT_EQ(entry.types.size(), 1u);
  }
  std::string text = inferrer.ReportToString(report.value());
  EXPECT_NE(text.find("uniform; DTD-expressible"), std::string::npos);
}

TEST(Contextual, LocalTypesXsd) {
  ContextualInferrer inferrer;
  ASSERT_TRUE(inferrer.AddXml(kShopXml).ok());
  Result<std::string> xsd = inferrer.InferLocalXsd();
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  // Uniform children stay refs; the context-dependent <name> is declared
  // inline (local) under both parents.
  EXPECT_NE(xsd->find("<xs:element name=\"person\">"), std::string::npos)
      << *xsd;
  size_t first_local = xsd->find("<xs:element name=\"name\"");
  ASSERT_NE(first_local, std::string::npos) << *xsd;
  size_t second_local =
      xsd->find("<xs:element name=\"name\"", first_local + 1);
  EXPECT_NE(second_local, std::string::npos)
      << "expected a second local declaration of <name>\n"
      << *xsd;
  // The two local declarations carry different types.
  EXPECT_NE(xsd->find("\"first\""), std::string::npos);
  EXPECT_NE(xsd->find("\"legal\""), std::string::npos);
  // Output is well-formed XML.
  EXPECT_TRUE(ParseXml(*xsd).ok());
}

TEST(Contextual, LocalXsdHandlesRecursiveContexts) {
  // section under section vs under doc: the inline chain must terminate
  // via the global-ref fallback.
  ContextualInferrer inferrer;
  ASSERT_TRUE(inferrer
                  .AddXml("<doc><section><title>a</title>"
                          "<section><para>b</para></section>"
                          "</section></doc>")
                  .ok());
  Result<std::string> xsd = inferrer.InferLocalXsd();
  ASSERT_TRUE(xsd.ok()) << xsd.status().ToString();
  EXPECT_TRUE(ParseXml(*xsd).ok()) << *xsd;
}

TEST(Contextual, ReportRendering) {
  ContextualInferrer inferrer;
  ASSERT_TRUE(inferrer.AddXml(kShopXml).ok());
  Result<ContextualInferrer::Report> report = inferrer.Infer();
  ASSERT_TRUE(report.ok());
  std::string text = inferrer.ReportToString(report.value());
  EXPECT_NE(text.find("context-dependent"), std::string::npos);
  EXPECT_NE(text.find("under person"), std::string::npos);
  EXPECT_NE(text.find("under company"), std::string::npos);
  EXPECT_NE(text.find("DTD approximation"), std::string::npos);
}

// --- Random-DTD end-to-end pipeline fuzz ------------------------------------

TEST(RandomDtdPipeline, GenerateInferValidateRoundTrip) {
  Rng rng(20060912);
  for (int trial = 0; trial < 12; ++trial) {
    Alphabet alphabet;
    RandomDtdOptions options;
    options.num_elements = 4 + static_cast<int>(rng.NextBelow(8));
    Dtd truth = RandomDtd(&alphabet, &rng, options);

    // Every generated document is valid against its generator...
    std::vector<std::string> corpus;
    for (int i = 0; i < 80; ++i) {
      Result<XmlDocument> doc = GenerateDocument(truth, alphabet, &rng);
      ASSERT_TRUE(doc.ok());
      ValidationReport report = Validate(doc.value(), truth, &alphabet);
      ASSERT_TRUE(report.valid())
          << report.issues[0].element << ": " << report.issues[0].message
          << "\nDTD:\n"
          << WriteDtd(truth, alphabet);
      corpus.push_back(doc->ToXml());
    }
    // ...and valid against the re-inferred DTD.
    DtdInferrer inferrer;
    for (const std::string& text : corpus) {
      ASSERT_TRUE(inferrer.AddXml(text).ok());
    }
    Result<Dtd> inferred = inferrer.InferDtd();
    ASSERT_TRUE(inferred.ok()) << inferred.status().ToString();
    Alphabet inferred_alphabet = *inferrer.alphabet();
    for (const std::string& text : corpus) {
      Result<XmlDocument> doc = ParseXml(text);
      ASSERT_TRUE(doc.ok());
      ValidationReport report =
          Validate(doc.value(), inferred.value(), &inferred_alphabet);
      EXPECT_TRUE(report.valid())
          << report.issues[0].element << ": "
          << report.issues[0].message << "\ninferred:\n"
          << WriteDtd(inferred.value(), inferred_alphabet);
    }
    // The contextual inferrer agrees that a DTD-generated corpus never
    // needs vertical context... except where distinct elements happen to
    // produce colliding names, which RandomDtd never does.
    ContextualInferrer contextual;
    for (const std::string& text : corpus) {
      ASSERT_TRUE(contextual.AddXml(text).ok());
    }
    Result<ContextualInferrer::Report> report = contextual.Infer();
    ASSERT_TRUE(report.ok());
    // Sparse contexts may under-generalize relative to each other, so a
    // hard equality is wrong; but no element may need more types than it
    // has distinct parents.
    for (const auto& entry : report->elements) {
      EXPECT_GE(entry.types.size(), 1u);
    }
  }
}

TEST(RandomDtdPipeline, PooledContextEqualsFlatInference) {
  // The contextual inferrer's "DTD approximation" must coincide with the
  // plain DtdInferrer's content model — they pool the same data.
  Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    Alphabet alphabet;
    Dtd truth = RandomDtd(&alphabet, &rng);
    std::vector<std::string> corpus;
    for (int i = 0; i < 40; ++i) {
      Result<XmlDocument> doc = GenerateDocument(truth, alphabet, &rng);
      corpus.push_back(doc->ToXml());
    }
    DtdInferrer flat;
    ContextualInferrer contextual;
    for (const std::string& text : corpus) {
      ASSERT_TRUE(flat.AddXml(text).ok());
      ASSERT_TRUE(contextual.AddXml(text).ok());
    }
    Result<ContextualInferrer::Report> report = contextual.Infer();
    ASSERT_TRUE(report.ok());
    for (const auto& entry : report->elements) {
      Symbol flat_symbol = flat.alphabet()->Find(
          contextual.alphabet()->Name(entry.element));
      ASSERT_NE(flat_symbol, kInvalidSymbol);
      Result<ContentModel> flat_model =
          flat.InferContentModel(flat_symbol);
      ASSERT_TRUE(flat_model.ok());
      ASSERT_EQ(flat_model->kind, entry.merged.kind);
      if (flat_model->kind == ContentKind::kChildren) {
        EXPECT_TRUE(
            LanguageEquivalent(flat_model->regex, entry.merged.regex));
      }
    }
  }
}

TEST(RandomDtdPipeline, LenientParserSurvivesMutilation) {
  // Randomly delete end tags from well-formed documents: the lenient
  // parser must still produce a tree, and strict parsing must reject.
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    Alphabet alphabet;
    Dtd truth = RandomDtd(&alphabet, &rng);
    Result<XmlDocument> doc = GenerateDocument(truth, alphabet, &rng);
    std::string text = doc->ToXml();
    // Remove one random closing tag (if any).
    size_t close = text.find("</");
    std::vector<size_t> closes;
    while (close != std::string::npos) {
      closes.push_back(close);
      close = text.find("</", close + 1);
    }
    if (closes.empty()) continue;
    size_t victim = closes[rng.NextBelow(closes.size())];
    size_t end = text.find('>', victim);
    ASSERT_NE(end, std::string::npos);
    text.erase(victim, end - victim + 1);

    EXPECT_FALSE(ParseXml(text).ok());
    std::vector<std::string> repairs;
    Result<XmlDocument> recovered = ParseXmlLenient(text, &repairs);
    ASSERT_TRUE(recovered.ok()) << text;
    EXPECT_GE(repairs.size(), 1u);
    EXPECT_NE(recovered->root, nullptr);
  }
}

TEST(RandomDtdPipeline, DiffOfDtdWithItselfIsIdentical) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    Alphabet alphabet;
    Dtd truth = RandomDtd(&alphabet, &rng);
    DtdDiff diff = CompareDtds(truth, truth);
    EXPECT_TRUE(diff.Identical());
  }
}

TEST(RandomDtd, StructureInvariants) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Alphabet alphabet;
    Dtd dtd = RandomDtd(&alphabet, &rng);
    EXPECT_EQ(dtd.root, alphabet.Find("e0"));
    EXPECT_FALSE(dtd.elements.empty());
    // Acyclic by construction: children only reference higher ids.
    for (const auto& [symbol, model] : dtd.elements) {
      if (model.kind != ContentKind::kChildren) continue;
      for (Symbol child : SymbolsOf(model.regex)) {
        EXPECT_GT(child, symbol);
      }
    }
  }
}

}  // namespace
}  // namespace condtd
