// InputBuffer: the mmap-backed zero-copy input layer and its buffered
// fallback. The load-bearing test is the differential one — both paths
// must hand the pipeline the exact same bytes and so the exact same
// DTD, which is what lets the CLI pick a path per file (size threshold,
// --no-mmap) without affecting output.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "base/file.h"
#include "dtd/dtd_writer.h"
#include "infer/inferrer.h"
#include "io/input_buffer.h"

namespace condtd {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    char buffer[] = "/tmp/condtd_io_test_XXXXXX";
    int fd = mkstemp(buffer);
    EXPECT_GE(fd, 0);
    path_ = buffer;
    FILE* file = fdopen(fd, "wb");
    EXPECT_NE(file, nullptr);
    if (!content.empty()) {
      EXPECT_EQ(fwrite(content.data(), 1, content.size(), file),
                content.size());
    }
    fclose(file);
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string LargeDocument() {
  // Comfortably above the 16 KiB mmap threshold.
  std::string xml = "<feed>";
  for (int i = 0; i < 2000; ++i) {
    xml += "<entry id=\"e" + std::to_string(i) +
           "\"><title>entry number " + std::to_string(i) +
           " with some text</title><author>someone</author></entry>";
  }
  xml += "</feed>";
  return xml;
}

TEST(InputBuffer, LargeRegularFileIsMapped) {
  std::string content = LargeDocument();
  TempFile file(content);
  Result<InputBuffer> buffer = InputBuffer::Open(file.path());
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  EXPECT_TRUE(buffer->is_mapped());
  EXPECT_EQ(buffer->view(), content);
}

TEST(InputBuffer, SmallFileTakesTheBufferedPath) {
  std::string content = "<root><a/><b/></root>";
  TempFile file(content);
  Result<InputBuffer> buffer = InputBuffer::Open(file.path());
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  EXPECT_FALSE(buffer->is_mapped());  // below min_mmap_bytes
  EXPECT_EQ(buffer->view(), content);
}

TEST(InputBuffer, NoMmapOptionForcesBufferedRead) {
  std::string content = LargeDocument();
  TempFile file(content);
  InputBuffer::Options options;
  options.allow_mmap = false;
  Result<InputBuffer> buffer = InputBuffer::Open(file.path(), options);
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  EXPECT_FALSE(buffer->is_mapped());
  EXPECT_EQ(buffer->view(), content);
}

TEST(InputBuffer, ThresholdZeroMapsEvenTinyFiles) {
  std::string content = "<root/>";
  TempFile file(content);
  InputBuffer::Options options;
  options.min_mmap_bytes = 0;
  Result<InputBuffer> buffer = InputBuffer::Open(file.path(), options);
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  EXPECT_TRUE(buffer->is_mapped());
  EXPECT_EQ(buffer->view(), content);
}

TEST(InputBuffer, EmptyFileYieldsEmptyView) {
  // mmap of length 0 is invalid; the open path must special-case it on
  // both routes.
  TempFile file("");
  for (bool allow_mmap : {true, false}) {
    InputBuffer::Options options;
    options.allow_mmap = allow_mmap;
    options.min_mmap_bytes = 0;
    Result<InputBuffer> buffer = InputBuffer::Open(file.path(), options);
    ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
    EXPECT_TRUE(buffer->view().empty());
  }
}

TEST(InputBuffer, MissingFileKeepsTheLegacyErrorMessage) {
  Result<InputBuffer> buffer =
      InputBuffer::Open("/nonexistent/condtd_io_test.xml");
  ASSERT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.status().code(), StatusCode::kNotFound);
  EXPECT_NE(buffer.status().message().find("cannot open file: "),
            std::string::npos);
}

TEST(InputBuffer, MoveTransfersTheView) {
  std::string content = "<root><child/></root>";
  TempFile file(content);
  Result<InputBuffer> opened = InputBuffer::Open(file.path());
  ASSERT_TRUE(opened.ok());
  InputBuffer moved = std::move(opened).value();
  InputBuffer target;
  target = std::move(moved);
  EXPECT_EQ(target.view(), content);

  // Owned (small-string) content must survive the move too — the view
  // has to re-anchor onto the moved-to string storage.
  InputBuffer from_string = InputBuffer::FromString("tiny");
  InputBuffer moved_string = std::move(from_string);
  EXPECT_EQ(moved_string.view(), "tiny");
}

TEST(InputBuffer, MmapAndBufferedProduceByteIdenticalDtds) {
  // The differential contract: a corpus read through mmap and the same
  // corpus read through the buffered fallback must infer byte-identical
  // DTDs. Mixed sizes so both paths are actually exercised in the mmap
  // configuration.
  TempFile large_a(LargeDocument());
  TempFile small(
      "<feed><entry id=\"x\"><title>small</title><author>a</author>"
      "</entry></feed>");
  TempFile large_b(LargeDocument());
  const TempFile* files[] = {&large_a, &small, &large_b};

  auto infer = [&](bool allow_mmap) {
    InputBuffer::Options options;
    options.allow_mmap = allow_mmap;
    DtdInferrer inferrer;
    for (const TempFile* file : files) {
      Result<InputBuffer> buffer =
          InputBuffer::Open(file->path(), options);
      EXPECT_TRUE(buffer.ok()) << buffer.status().ToString();
      EXPECT_TRUE(inferrer.AddXml(buffer->view()).ok());
    }
    Result<Dtd> dtd = inferrer.InferDtd();
    EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
    return WriteDtd(dtd.value(), *inferrer.alphabet());
  };
  EXPECT_EQ(infer(/*allow_mmap=*/true), infer(/*allow_mmap=*/false));
}

// Non-regular inputs: the daemon hands client-supplied paths straight
// to the input layer, so anything that is not a regular file must fail
// fast with a clear Status — and must never block (a FIFO with no
// writer hangs a naive open(O_RDONLY) forever).

TEST(InputBuffer, DirectoryIsRejected) {
  for (bool allow_mmap : {true, false}) {
    InputBuffer::Options options;
    options.allow_mmap = allow_mmap;
    Result<InputBuffer> buffer = InputBuffer::Open("/tmp", options);
    ASSERT_FALSE(buffer.ok());
    EXPECT_EQ(buffer.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(buffer.status().message().find("is a directory"),
              std::string::npos)
        << buffer.status().ToString();
  }
  Result<std::string> content = ReadFileToString("/tmp");
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kInvalidArgument);
}

TEST(InputBuffer, FifoIsRejectedWithoutBlocking) {
  std::string path = "/tmp/condtd_io_test_fifo";
  std::remove(path.c_str());
  ASSERT_EQ(mkfifo(path.c_str(), 0600), 0);
  // No writer exists: if the implementation opened the FIFO with a
  // plain blocking open this test would hang, not fail.
  for (bool allow_mmap : {true, false}) {
    InputBuffer::Options options;
    options.allow_mmap = allow_mmap;
    Result<InputBuffer> buffer = InputBuffer::Open(path, options);
    ASSERT_FALSE(buffer.ok());
    EXPECT_EQ(buffer.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(buffer.status().message().find("not a regular file"),
              std::string::npos)
        << buffer.status().ToString();
  }
  Result<std::string> content = ReadFileToString(path);
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(InputBuffer, DeviceFileIsRejected) {
  Result<std::string> content = ReadFileToString("/dev/null");
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(content.status().message().find("not a regular file"),
            std::string::npos)
      << content.status().ToString();
}

TEST(InputBuffer, ProcfsZeroSizeFileIsReadInFull) {
  // procfs regular files report st_size == 0 but are not empty; the
  // presized fast path would return "" for them.
  Result<std::string> content = ReadFileToString("/proc/self/status");
  if (!content.ok()) GTEST_SKIP() << "no procfs here";
  EXPECT_NE(content->find("Name:"), std::string::npos);

  Result<InputBuffer> buffer = InputBuffer::Open("/proc/self/status");
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  EXPECT_NE(buffer->view().find("Name:"), std::string_view::npos);
}

TEST(InputBuffer, MissingFileIsNotFound) {
  Result<std::string> content =
      ReadFileToString("/nonexistent/condtd/x.xml");
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace condtd
