#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "automaton/soa.h"
#include "automaton/two_t_inf.h"
#include "base/rng.h"
#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "gen/corpus.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "gen/reservoir.h"
#include "gen/xml_gen.h"
#include "regex/matcher.h"
#include "regex/properties.h"
#include "tests/testing.h"

namespace condtd {
namespace {

using testing_util::ParseChars;

TEST(Sampler, WordsAreInLanguage) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    ReRef re = RandomSore(1 + rng.NextBelow(8), &rng);
    Matcher matcher(re);
    for (const Word& w : SampleWords(re, 15, &rng)) {
      EXPECT_TRUE(matcher.Matches(w));
    }
  }
}

TEST(Representative, SampleRecoversExactSoa) {
  // The defining property: 2T-INF on the representative sample yields
  // exactly the SOA of the expression ("no edges missing").
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    ReRef re = RandomSore(1 + rng.NextBelow(10), &rng);
    std::vector<Word> sample = RepresentativeSample(re);
    Matcher matcher(re);
    for (const Word& w : sample) {
      EXPECT_TRUE(matcher.Matches(w));  // within the language
    }
    Soa from_sample = Infer2T(sample);
    EXPECT_TRUE(from_sample.Equals(SoaFromRegex(re)));
  }
}

TEST(Representative, GeneratedCorpusHasRequestedSize) {
  Alphabet alphabet;
  ReRef re = ParseChars("a(b|c)*d+(e|f)?", &alphabet);
  std::vector<Word> corpus = GeneratedCorpus(re, 500, 42);
  EXPECT_EQ(corpus.size(), 500u);
  Matcher matcher(re);
  for (const Word& w : corpus) EXPECT_TRUE(matcher.Matches(w));
  // Deterministic for a fixed seed.
  EXPECT_EQ(corpus, GeneratedCorpus(re, 500, 42));
  EXPECT_NE(corpus, GeneratedCorpus(re, 500, 43));
}

TEST(Reservoir, UniformSubsetProperties) {
  Rng rng(3);
  std::vector<Word> population;
  for (Symbol s = 0; s < 100; ++s) population.push_back({s});
  std::vector<Word> sample = ReservoirSample(population, 10, &rng);
  EXPECT_EQ(sample.size(), 10u);
  std::set<Word> population_set(population.begin(), population.end());
  for (const Word& w : sample) EXPECT_TRUE(population_set.count(w) > 0);
  // k >= n returns everything.
  EXPECT_EQ(ReservoirSample(population, 1000, &rng).size(), 100u);
}

TEST(Reservoir, CoveringSampleContainsAllSymbols) {
  Rng rng(4);
  std::vector<Word> population;
  for (Symbol s = 0; s < 20; ++s) {
    for (int i = 0; i < 50; ++i) population.push_back({s});
  }
  std::vector<Symbol> required;
  for (Symbol s = 0; s < 20; ++s) required.push_back(s);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Word> sample =
        ReservoirSampleCovering(population, 25, required, &rng);
    std::set<Symbol> seen;
    for (const Word& w : sample) seen.insert(w.begin(), w.end());
    EXPECT_EQ(seen.size(), 20u);
  }
}

TEST(Corpus, Table1CasesAreWellFormed) {
  std::vector<ExperimentCase> cases = BuildTable1Cases(2006);
  ASSERT_EQ(cases.size(), 9u);
  std::set<std::string> names;
  for (const ExperimentCase& c : cases) {
    names.insert(c.name);
    EXPECT_EQ(static_cast<int>(c.sample.size()), c.sample_size) << c.name;
    // Observed language is within the original DTD's language: samples
    // validate against the original definition.
    Matcher original(c.original);
    for (const Word& w : c.sample) {
      EXPECT_TRUE(original.Matches(w)) << c.name;
    }
  }
  EXPECT_TRUE(names.count("refinfo") > 0);
  EXPECT_TRUE(names.count("authors") > 0);
}

TEST(Corpus, RefinfoBiasesHold) {
  // The documented corpus biases: volume (a3) and month (a4) never
  // co-occur, and a8 is never followed (even transitively) by a9.
  std::vector<ExperimentCase> cases = BuildTable1Cases(2006);
  const ExperimentCase* refinfo = nullptr;
  for (const ExperimentCase& c : cases) {
    if (c.name == "refinfo") refinfo = &c;
  }
  ASSERT_NE(refinfo, nullptr);
  Symbol a3 = refinfo->alphabet.Find("a3");
  Symbol a4 = refinfo->alphabet.Find("a4");
  Symbol a8 = refinfo->alphabet.Find("a8");
  Symbol a9 = refinfo->alphabet.Find("a9");
  for (const Word& w : refinfo->sample) {
    bool saw3 = false;
    bool saw4 = false;
    bool saw8 = false;
    for (Symbol s : w) {
      if (s == a3) saw3 = true;
      if (s == a4) saw4 = true;
      if (s == a8) saw8 = true;
      if (s == a9) {
        EXPECT_FALSE(saw8) << "a8 followed by a9";
      }
    }
    EXPECT_FALSE(saw3 && saw4) << "volume and month co-occur";
  }
}

TEST(Corpus, Table2CasesMatchPaperShapes) {
  std::vector<ExperimentCase> cases = BuildTable2Cases(2006);
  ASSERT_EQ(cases.size(), 5u);
  EXPECT_EQ(cases[0].name, "example1");
  // example3's SOA has ~1897 edges per the paper; ours counts the same
  // order of magnitude (the exact number depends on the expression).
  Soa soa3 = SoaFromRegex(cases[2].observed);
  EXPECT_GT(soa3.NumEdges(), 1500);
  EXPECT_EQ(static_cast<int>(cases[3].sample.size()), 10000);
  // Only the first three examples are SOREs; none are CHAREs.
  EXPECT_TRUE(IsSore(cases[0].observed));
  EXPECT_TRUE(IsSore(cases[1].observed));
  EXPECT_TRUE(IsSore(cases[2].observed));
  EXPECT_FALSE(IsSore(cases[4].observed));
  for (const ExperimentCase& c : cases) {
    EXPECT_FALSE(IsChare(c.observed)) << c.name;
  }
}

TEST(Corpus, NoisyParagraphHasIntruders) {
  ExperimentCase noisy = BuildNoisyParagraphCase(3000, 10, 99);
  EXPECT_EQ(noisy.sample.size(), 3000u);
  Symbol table = noisy.alphabet.Find("table");
  ASSERT_NE(table, kInvalidSymbol);
  // Twelve intruder element names, each in about 10 words.
  int intruder_words = 0;
  for (const Word& w : noisy.sample) {
    for (Symbol s : w) {
      if (noisy.alphabet.Name(s).size() > 3) {  // intruders have long names
        ++intruder_words;
        break;
      }
    }
  }
  EXPECT_GT(intruder_words, 50);
  EXPECT_LE(intruder_words, 12 * 10);
}

TEST(XmlGen, DocumentsValidateAgainstTheirDtd) {
  Alphabet alphabet;
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT db (entry+)>\n"
      "<!ELEMENT entry (name, seq?, (ref | note)*)>\n"
      "<!ELEMENT name (#PCDATA)>\n"
      "<!ELEMENT seq (#PCDATA)>\n"
      "<!ELEMENT ref EMPTY>\n"
      "<!ELEMENT note (#PCDATA)>\n"
      "<!ATTLIST entry id CDATA #REQUIRED>\n",
      &alphabet);
  ASSERT_TRUE(dtd.ok());
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Result<XmlDocument> doc = GenerateDocument(dtd.value(), alphabet, &rng);
    ASSERT_TRUE(doc.ok());
    ValidationReport report = Validate(doc.value(), dtd.value(), &alphabet);
    EXPECT_TRUE(report.valid())
        << report.issues[0].element << ": " << report.issues[0].message;
  }
}

TEST(XmlGen, RecursiveDtdTerminates) {
  Alphabet alphabet;
  Result<Dtd> dtd2 =
      ParseDtd("<!ELEMENT tree (leaf | (tree, tree))>\n"
               "<!ELEMENT leaf EMPTY>\n",
               &alphabet);
  ASSERT_TRUE(dtd2.ok());
  Rng rng(8);
  XmlGenOptions options;
  options.max_depth = 6;
  Result<XmlDocument> doc =
      GenerateDocument(dtd2.value(), alphabet, &rng, options);
  ASSERT_TRUE(doc.ok());
  // Depth is bounded: count the maximum nesting.
  int max_depth = 0;
  std::vector<std::pair<const XmlElement*, int>> stack = {
      {doc->root.get(), 0}};
  while (!stack.empty()) {
    auto [el, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    for (const auto& c : el->children()) stack.emplace_back(c.get(), d + 1);
  }
  EXPECT_LE(max_depth, 12);
}

TEST(XmlGen, MinimalWord) {
  Alphabet alphabet;
  EXPECT_TRUE(MinimalWord(ParseChars("a*", &alphabet)).empty());
  EXPECT_EQ(MinimalWord(ParseChars("a+b", &alphabet)).size(), 2u);
  EXPECT_EQ(MinimalWord(ParseChars("(ab|c)", &alphabet)).size(), 1u);
}

TEST(RandomRegex, SoreAndChareInvariants) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 1 + static_cast<int>(rng.NextBelow(12));
    ReRef sore = RandomSore(n, &rng);
    EXPECT_TRUE(IsSore(sore));
    EXPECT_EQ(CountSymbolOccurrences(sore), n);
    ReRef chare = RandomChare(n, &rng);
    EXPECT_TRUE(IsChare(chare));
    EXPECT_EQ(CountSymbolOccurrences(chare), n);
  }
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  int buckets[10] = {0};
  for (int i = 0; i < 10000; ++i) ++buckets[c.NextBelow(10)];
  for (int count : buckets) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

}  // namespace
}  // namespace condtd
