#ifndef CONDTD_GEN_REPRESENTATIVE_H_
#define CONDTD_GEN_REPRESENTATIVE_H_

#include <vector>

#include "base/rng.h"
#include "regex/ast.h"

namespace condtd {

/// Builds a minimal representative sample for `re` (Section 4/8.2): a set
/// of words of L(re) that covers every transition of the Glushkov
/// automaton, so 2T-INF recovers the full SOA with no missing edges
/// ("representative w.r.t. a SORE when it contains all corresponding
/// 2-grams"). If re is nullable the empty word is included. Works for
/// non-SORE REs too (covers every projected 2-gram realizable in L(re)).
std::vector<Word> RepresentativeSample(const ReRef& re);

/// A generated corpus in the style of Section 8 (Table 2): the
/// representative sample padded with random derivations up to `size`
/// words, deterministically shuffled.
std::vector<Word> GeneratedCorpus(const ReRef& re, int size, uint64_t seed);

}  // namespace condtd

#endif  // CONDTD_GEN_REPRESENTATIVE_H_
