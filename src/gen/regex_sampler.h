#ifndef CONDTD_GEN_REGEX_SAMPLER_H_
#define CONDTD_GEN_REGEX_SAMPLER_H_

#include <vector>

#include "base/rng.h"
#include "regex/ast.h"

namespace condtd {

/// Knobs for random derivation sampling (our stand-in for ToXgene [5]).
struct SampleOptions {
  /// Probability of taking another iteration of a `+`/`*` loop.
  double repeat_continue_p = 0.45;
  /// Hard cap on loop iterations.
  int max_repeat = 8;
  /// Probability that an `r?` picks r rather than ε.
  double opt_p = 0.5;
};

/// Samples one word from L(re) by a random derivation.
Word SampleWord(const ReRef& re, Rng* rng, const SampleOptions& options = {});

/// Samples `count` words.
std::vector<Word> SampleWords(const ReRef& re, int count, Rng* rng,
                              const SampleOptions& options = {});

}  // namespace condtd

#endif  // CONDTD_GEN_REGEX_SAMPLER_H_
