#ifndef CONDTD_GEN_CORPUS_H_
#define CONDTD_GEN_CORPUS_H_

#include <string>
#include <vector>

#include "alphabet/alphabet.h"
#include "base/rng.h"
#include "regex/ast.h"

namespace condtd {

/// One experimental case: an element definition (or synthetic RE), the
/// expression the observed data actually follows, and the generated
/// sample. The paper's corpora (Protein Sequence Database, Mondial) are
/// not redistributable, so the samples are synthesized from the content
/// models listed verbatim in Table 1 together with the data biases the
/// paper reports (see DESIGN.md, "Substitutions").
struct ExperimentCase {
  std::string name;
  Alphabet alphabet;
  ReRef original;   ///< the content model from the real DTD
  ReRef observed;   ///< what the corpus data actually exercises
  int sample_size = 0;
  int xtract_sample_size = 0;  ///< cap used for XTRACT (it cannot scale)
  std::vector<Word> sample;
  /// The paper's reported outputs (paper notation), for EXPERIMENTS.md.
  std::string paper_crx;
  std::string paper_idtd;
  std::string paper_xtract;
};

/// The nine non-trivial element definitions of Table 1 with generated
/// samples at the paper's sample sizes.
std::vector<ExperimentCase> BuildTable1Cases(uint64_t seed);

/// The five sophisticated expressions of Table 2 (example1–example5).
std::vector<ExperimentCase> BuildTable2Cases(uint64_t seed);

/// Expression (‡) of Section 8.2: (a1 (a2+...+a12)+ (a13+a14))+, used by
/// the third Figure 4 plot. `sample_size` words.
ExperimentCase BuildDaggerCase(int sample_size, uint64_t seed);

/// Section 9 noise corpus: `num_words` paragraph-content words over a
/// 41-symbol repeated disjunction, plus twelve intruder element names
/// (table, iframe, ...) each inserted into `num_noisy_words` words —
/// matching the paper's "a dozen of disallowed elements ... on average
/// in around 10 strings". Returns the case (observed == clean RE) with
/// the noisy sample; intruder symbols are interned in the alphabet.
ExperimentCase BuildNoisyParagraphCase(int num_words, int num_noisy_words,
                                       uint64_t seed);

/// A repeated disjunction (a1+...+an)* over fresh symbols — the
/// Section 7 sample-complexity workload.
ExperimentCase BuildRepeatedDisjunctionCase(int n, int sample_size,
                                            uint64_t seed);

}  // namespace condtd

#endif  // CONDTD_GEN_CORPUS_H_
