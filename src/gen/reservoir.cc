#include "gen/reservoir.h"

#include <algorithm>
#include <map>
#include <set>

namespace condtd {

std::vector<Word> ReservoirSample(const std::vector<Word>& items, int k,
                                  Rng* rng) {
  if (k >= static_cast<int>(items.size())) return items;
  std::vector<Word> reservoir(items.begin(), items.begin() + k);
  for (size_t i = k; i < items.size(); ++i) {
    uint64_t j = rng->NextBelow(i + 1);
    if (j < static_cast<uint64_t>(k)) reservoir[j] = items[i];
  }
  return reservoir;
}

namespace {

std::set<Symbol> MissingSymbols(const std::vector<Word>& sample,
                                const std::vector<Symbol>& required) {
  std::set<Symbol> missing(required.begin(), required.end());
  for (const Word& w : sample) {
    for (Symbol s : w) missing.erase(s);
  }
  return missing;
}

}  // namespace

std::vector<Word> ReservoirSampleCovering(const std::vector<Word>& items,
                                          int k,
                                          const std::vector<Symbol>& required,
                                          Rng* rng, int max_attempts) {
  std::vector<Word> sample;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    sample = ReservoirSample(items, k, rng);
    if (MissingSymbols(sample, required).empty()) return sample;
  }
  // Greedy fallback: for each still-missing symbol, swap in a covering
  // word, evicting a sample member whose required symbols all remain
  // covered at least twice (so the swap never un-covers anything).
  std::set<Symbol> required_set(required.begin(), required.end());
  auto coverage = [&] {
    std::map<Symbol, int> counts;
    for (const Word& w : sample) {
      std::set<Symbol> distinct(w.begin(), w.end());
      for (Symbol s : distinct) {
        if (required_set.count(s) > 0) ++counts[s];
      }
    }
    return counts;
  };
  std::set<Symbol> missing = MissingSymbols(sample, required);
  for (Symbol m : std::set<Symbol>(missing)) {
    const Word* candidate = nullptr;
    for (const Word& w : items) {
      for (Symbol s : w) {
        if (s == m) candidate = &w;
      }
      if (candidate != nullptr) break;
    }
    if (candidate == nullptr) continue;  // symbol absent from population
    std::map<Symbol, int> counts = coverage();
    int victim = -1;
    for (size_t i = 0; i < sample.size(); ++i) {
      bool safe = true;
      std::set<Symbol> distinct(sample[i].begin(), sample[i].end());
      for (Symbol s : distinct) {
        if (required_set.count(s) > 0 && counts[s] < 2) safe = false;
      }
      if (safe) {
        victim = static_cast<int>(i);
        break;
      }
    }
    if (victim >= 0) {
      sample[victim] = *candidate;
    } else {
      sample.push_back(*candidate);  // grow rather than lose coverage
    }
  }
  return sample;
}

}  // namespace condtd
