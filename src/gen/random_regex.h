#ifndef CONDTD_GEN_RANDOM_REGEX_H_
#define CONDTD_GEN_RANDOM_REGEX_H_

#include "base/rng.h"
#include "regex/ast.h"

namespace condtd {

/// Shape knobs for random expression generation.
struct RandomRegexOptions {
  /// Probability that an internal node is a disjunction (vs concat).
  double disj_p = 0.4;
  /// Probability of wrapping a subexpression in ? / + / * (split evenly).
  double unary_p = 0.5;
  /// Maximum children per internal node.
  int max_fanout = 4;
};

/// Generates a random SORE over the symbols [0, num_symbols): symbols are
/// partitioned across the tree, so single occurrence holds by
/// construction. Intern num_symbols names in your Alphabet beforehand
/// (ids must be dense).
ReRef RandomSore(int num_symbols, Rng* rng,
                 const RandomRegexOptions& options = {});

/// Generates a random CHARE over [0, num_symbols): consecutive symbols
/// are grouped into factors with random ?/+/*/plain qualifiers.
ReRef RandomChare(int num_symbols, Rng* rng,
                  const RandomRegexOptions& options = {});

}  // namespace condtd

#endif  // CONDTD_GEN_RANDOM_REGEX_H_
