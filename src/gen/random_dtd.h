#ifndef CONDTD_GEN_RANDOM_DTD_H_
#define CONDTD_GEN_RANDOM_DTD_H_

#include "base/rng.h"
#include "dtd/model.h"
#include "gen/random_regex.h"

namespace condtd {

/// Shape knobs for random DTD generation (end-to-end pipeline fuzzing).
struct RandomDtdOptions {
  int num_elements = 8;        ///< total element declarations
  int max_children = 5;        ///< alphabet size per content model
  double leaf_pcdata_p = 0.6;  ///< leaves: #PCDATA vs EMPTY
  double chare_p = 0.7;        ///< CHARE vs general SORE content models
  RandomRegexOptions regex;
};

/// Generates a random, non-recursive DTD: element 0 is the root, every
/// content model only references strictly higher-numbered elements (so
/// generated documents always terminate), and leaves are #PCDATA or
/// EMPTY. Element names are e0..e<n-1>, interned into `alphabet`.
Dtd RandomDtd(Alphabet* alphabet, Rng* rng,
              const RandomDtdOptions& options = {});

}  // namespace condtd

#endif  // CONDTD_GEN_RANDOM_DTD_H_
