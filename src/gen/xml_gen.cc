#include "gen/xml_gen.h"

#include <limits>

namespace condtd {

namespace {

int MinimalLength(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return 1;
    case ReKind::kConcat: {
      int total = 0;
      for (const auto& c : re->children()) total += MinimalLength(c);
      return total;
    }
    case ReKind::kDisj: {
      int best = std::numeric_limits<int>::max();
      for (const auto& c : re->children()) {
        best = std::min(best, MinimalLength(c));
      }
      return best;
    }
    case ReKind::kShuffle: {
      int total = 0;
      for (const auto& c : re->children()) total += MinimalLength(c);
      return total;
    }
    case ReKind::kPlus:
      return MinimalLength(re->child());
    case ReKind::kOpt:
    case ReKind::kStar:
      return 0;
  }
  return 0;
}

void EmitMinimal(const ReRef& re, Word* out) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      out->push_back(re->symbol());
      break;
    case ReKind::kConcat:
      for (const auto& c : re->children()) EmitMinimal(c, out);
      break;
    case ReKind::kDisj: {
      const ReRef* best = &re->children()[0];
      int best_len = MinimalLength(*best);
      for (const auto& c : re->children()) {
        int len = MinimalLength(c);
        if (len < best_len) {
          best = &c;
          best_len = len;
        }
      }
      EmitMinimal(*best, out);
      break;
    }
    case ReKind::kShuffle:
      // Factors in declaration order form one valid interleaving.
      for (const auto& c : re->children()) EmitMinimal(c, out);
      break;
    case ReKind::kPlus:
      EmitMinimal(re->child(), out);
      break;
    case ReKind::kOpt:
    case ReKind::kStar:
      break;
  }
}

class Generator {
 public:
  Generator(const Dtd& dtd, const Alphabet& alphabet, Rng* rng,
            const XmlGenOptions& options)
      : dtd_(dtd), alphabet_(alphabet), rng_(rng), options_(options) {}

  void Fill(XmlElement* element, Symbol symbol, int depth) {
    auto it = dtd_.elements.find(symbol);
    if (it == dtd_.elements.end()) return;  // undeclared: leave empty
    const ContentModel& model = it->second;
    AddAttributes(element, symbol);
    switch (model.kind) {
      case ContentKind::kEmpty:
        break;
      case ContentKind::kAny:
      case ContentKind::kPcdataOnly:
        element->AppendText("text" + std::to_string(rng_->NextBelow(1000)));
        break;
      case ContentKind::kMixed: {
        element->AppendText("text");
        if (depth < options_.max_depth && !model.mixed_symbols.empty() &&
            rng_->Bernoulli(0.5)) {
          Symbol child = model.mixed_symbols[rng_->NextBelow(
              model.mixed_symbols.size())];
          XmlElement* node = element->AddChild(alphabet_.Name(child));
          Fill(node, child, depth + 1);
        }
        break;
      }
      case ContentKind::kChildren: {
        Word children = depth < options_.max_depth
                            ? SampleWord(model.regex, rng_, options_.sampling)
                            : MinimalWord(model.regex);
        // Unordered mode simulates data-centric XML: the ground-truth
        // schema constrains what appears, not in which order.
        if (options_.unordered) rng_->Shuffle(&children);
        for (Symbol child : children) {
          XmlElement* node = element->AddChild(alphabet_.Name(child));
          Fill(node, child, depth + 1);
        }
        break;
      }
    }
  }

 private:
  void AddAttributes(XmlElement* element, Symbol symbol) {
    auto it = dtd_.attributes.find(symbol);
    if (it == dtd_.attributes.end()) return;
    for (const auto& def : it->second) {
      if (def.default_decl == "#REQUIRED" || rng_->Bernoulli(0.5)) {
        element->AddAttribute(def.name,
                              "v" + std::to_string(rng_->NextBelow(100)));
      }
    }
  }

  const Dtd& dtd_;
  const Alphabet& alphabet_;
  Rng* rng_;
  XmlGenOptions options_;
};

}  // namespace

Word MinimalWord(const ReRef& re) {
  Word out;
  EmitMinimal(re, &out);
  return out;
}

Result<XmlDocument> GenerateDocument(const Dtd& dtd, const Alphabet& alphabet,
                                     Rng* rng, const XmlGenOptions& options) {
  if (dtd.root == kInvalidSymbol) {
    return Status::InvalidArgument("DTD has no root element");
  }
  if (dtd.elements.count(dtd.root) == 0) {
    return Status::InvalidArgument("DTD root element is not declared");
  }
  XmlDocument doc;
  doc.root = std::make_unique<XmlElement>(alphabet.Name(dtd.root));
  Generator generator(dtd, alphabet, rng, options);
  generator.Fill(doc.root.get(), dtd.root, 0);
  return doc;
}

}  // namespace condtd
