#include "gen/representative.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "gen/regex_sampler.h"
#include "regex/properties.h"
#include "regex/shuffle.h"

namespace condtd {

std::vector<Word> RepresentativeSample(const ReRef& re) {
  Nfa nfa = BuildMatchNfa(re);
  const int n = nfa.num_states();

  // Shortest word prefix reaching each state (BFS from the initial state).
  std::vector<Word> prefix(n);
  std::vector<bool> have_prefix(n, false);
  {
    std::queue<int> frontier;
    frontier.push(nfa.initial());
    have_prefix[nfa.initial()] = true;
    while (!frontier.empty()) {
      int q = frontier.front();
      frontier.pop();
      for (const auto& [sym, to] : nfa.TransitionsFrom(q)) {
        if (have_prefix[to]) continue;
        have_prefix[to] = true;
        prefix[to] = prefix[q];
        prefix[to].push_back(sym);
        frontier.push(to);
      }
    }
  }

  // Shortest word suffix from each state to an accepting state (BFS on
  // the reversed automaton).
  std::vector<Word> suffix(n);
  std::vector<bool> have_suffix(n, false);
  {
    std::vector<std::vector<std::pair<Symbol, int>>> reverse(n);
    for (int q = 0; q < n; ++q) {
      for (const auto& [sym, to] : nfa.TransitionsFrom(q)) {
        reverse[to].emplace_back(sym, q);
      }
    }
    std::queue<int> frontier;
    for (int q = 0; q < n; ++q) {
      if (nfa.IsAccepting(q)) {
        have_suffix[q] = true;
        frontier.push(q);
      }
    }
    while (!frontier.empty()) {
      int q = frontier.front();
      frontier.pop();
      for (const auto& [sym, from] : reverse[q]) {
        if (have_suffix[from]) continue;
        have_suffix[from] = true;
        suffix[from] = {sym};
        suffix[from].insert(suffix[from].end(), suffix[q].begin(),
                            suffix[q].end());
        frontier.push(from);
      }
    }
  }

  // One witness word per transition: prefix(q) · sym · suffix(to).
  std::set<Word> words;
  for (int q = 0; q < n; ++q) {
    if (!have_prefix[q]) continue;
    for (const auto& [sym, to] : nfa.TransitionsFrom(q)) {
      if (!have_suffix[to]) continue;
      Word word = prefix[q];
      word.push_back(sym);
      word.insert(word.end(), suffix[to].begin(), suffix[to].end());
      words.insert(std::move(word));
    }
  }
  if (Nullable(re)) words.insert(Word{});
  return std::vector<Word>(words.begin(), words.end());
}

std::vector<Word> GeneratedCorpus(const ReRef& re, int size, uint64_t seed) {
  std::vector<Word> corpus = RepresentativeSample(re);
  Rng rng(seed);
  while (static_cast<int>(corpus.size()) < size) {
    corpus.push_back(SampleWord(re, &rng));
  }
  rng.Shuffle(&corpus);
  if (static_cast<int>(corpus.size()) > size) corpus.resize(size);
  return corpus;
}

}  // namespace condtd
