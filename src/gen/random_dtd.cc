#include "gen/random_dtd.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace condtd {

Dtd RandomDtd(Alphabet* alphabet, Rng* rng,
              const RandomDtdOptions& options) {
  const int n = options.num_elements;
  std::vector<Symbol> symbols;
  symbols.reserve(n);
  for (int i = 0; i < n; ++i) {
    symbols.push_back(alphabet->Intern("e" + std::to_string(i)));
  }
  Dtd dtd;
  dtd.root = symbols[0];
  for (int i = 0; i < n; ++i) {
    ContentModel model;
    // Candidates: strictly higher-numbered elements (keeps the DTD
    // acyclic, so document generation always terminates).
    std::vector<Symbol> candidates(symbols.begin() + i + 1, symbols.end());
    bool leaf = candidates.empty() || (i > 0 && rng->Bernoulli(0.35));
    if (leaf) {
      model.kind = rng->Bernoulli(options.leaf_pcdata_p)
                       ? ContentKind::kPcdataOnly
                       : ContentKind::kEmpty;
      dtd.elements[symbols[i]] = std::move(model);
      continue;
    }
    int k = 1 + static_cast<int>(rng->NextBelow(std::min(
                static_cast<size_t>(options.max_children),
                candidates.size())));
    rng->Shuffle(&candidates);
    candidates.resize(k);
    // Random content model over local ids [0, k), remapped to the
    // chosen children.
    ReRef local = rng->Bernoulli(options.chare_p)
                      ? RandomChare(k, rng, options.regex)
                      : RandomSore(k, rng, options.regex);
    std::map<Symbol, Symbol> mapping;
    for (int j = 0; j < k; ++j) {
      mapping[static_cast<Symbol>(j)] = candidates[j];
    }
    model.kind = ContentKind::kChildren;
    model.regex = RemapSymbols(local, mapping);
    dtd.elements[symbols[i]] = std::move(model);
  }
  return dtd;
}

}  // namespace condtd
