#include "gen/corpus.h"

#include <cassert>

#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "regex/parser.h"

namespace condtd {

namespace {

/// Builds "(a<first> | ... | a<last>)" for the big unions of Table 2.
std::string UnionRange(int first, int last) {
  std::string out = "(";
  for (int i = first; i <= last; ++i) {
    if (i > first) out += " | ";
    out += "a" + std::to_string(i);
  }
  out += ")";
  return out;
}

ReRef MustParse(const std::string& text, Alphabet* alphabet) {
  Result<ReRef> re = ParseRegex(text, alphabet);
  assert(re.ok() && "corpus definition must parse");
  return re.value();
}

ExperimentCase MakeCase(std::string name, const std::string& original,
                        const std::string& observed, int sample_size,
                        int xtract_sample_size, uint64_t seed) {
  ExperimentCase c;
  c.name = std::move(name);
  // Intern a1..a64 first so symbol ids follow the natural index order in
  // every case regardless of the order names appear in the expressions.
  for (int i = 1; i <= 64; ++i) c.alphabet.Intern("a" + std::to_string(i));
  c.original = MustParse(original, &c.alphabet);
  c.observed = MustParse(observed, &c.alphabet);
  c.sample_size = sample_size;
  c.xtract_sample_size = xtract_sample_size;
  c.sample = GeneratedCorpus(c.observed, sample_size, seed);
  return c;
}

}  // namespace

std::vector<ExperimentCase> BuildTable1Cases(uint64_t seed) {
  std::vector<ExperimentCase> cases;

  // ProteinEntry: a4 occurs in every entry of the corpus (a4+ observed).
  cases.push_back(MakeCase(
      "ProteinEntry",
      "a1 a2 a3 a4* a5* a6* a7* a8* a9? a10? a11* a12 a13",
      "a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13", 2458, 843,
      seed + 1));
  cases.back().paper_crx = "a1a2a3a4+a5*a6*a7*a8*a9?a10?a11*a12a13";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract = "an expression of 185 tokens";

  cases.push_back(MakeCase("organism", "a1 a2? a3 a4? a5*",
                           "a1 a2? a3 a4? a5*", 9, 9, seed + 2));
  cases.back().paper_crx = "a1a2?a3a4?a5*";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract = "a1((a2a3a4?+a3a4)a5?+a3a5*)";

  cases.push_back(MakeCase("reference", "a1 a2* a3* a4*", "a1 a2* a3* a4*",
                           45, 45, seed + 3));
  cases.back().paper_crx = "a1a2*a3*a4*";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract = "a1(a2*(a4*+a3*)+a2a3*a4a4+a3*a4*)";

  // refinfo: in the corpus volume (a3) and month (a4) never co-occur and
  // pages (a8, i.e. xrefs in the paper's numbering a8/a9) — per the
  // paper: a3/a4 mutually exclusive, a8 never followed by a9.
  cases.push_back(MakeCase(
      "refinfo", "a1 a2 a3? a4? a5 a6? (a7 | a8)? a9?",
      "a1 a2 (a3 | a4)? a5 a6? ((a7? a9?) | a8)?", 10, 10, seed + 4));
  cases.back().paper_crx = "a1a2(a3+a4)?a5a6?a7?a9?a8?";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract =
      "a1a2((a3a5a6a7?+a4a5)a9?+a5(a7+a8)?+a4a5a8)";

  // authors: the corpus never contains a lone a2 (editor without name).
  cases.push_back(MakeCase("authors", "a1+ | (a2 a3?)", "a1+ | (a2 a3)", 54,
                           54, seed + 5));
  cases.back().paper_crx = "a1*a2?a3?";
  cases.back().paper_idtd = "a1+ + (a2a3)";
  cases.back().paper_xtract = "a1* + a2a3";

  cases.push_back(MakeCase("accinfo", "a1 a2* a3* a4? a5? a6? a7*",
                           "a1 a2* a3+ a4? a5? a6? a7*", 124, 124, seed + 6));
  cases.back().paper_crx = "a1a2*a3+a4?a5?a6?a7*";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract = "an expression of 97 tokens";

  // genetics: no a11 occurs in the sample.
  cases.push_back(MakeCase(
      "genetics", "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a11* a12*",
      "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*", 219, 219, seed + 7));
  cases.back().paper_crx = "a1*a2?a3?a4?a5?a6?a7?a8?a9?a10?a12*";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract = "an expression of 329 tokens";

  cases.push_back(MakeCase("function", "a1? a2* a3*", "a1? a2* a3*", 26, 26,
                           seed + 8));
  cases.back().paper_crx = "a1?a2*a3*";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract =
      "(a1(a2?a2?a3*+a2*(a3a3)*+a2a2a2a3)+a2(a2a3*+a3*))";

  cases.push_back(
      MakeCase("city", "a1 a2* a3*", "a1 a2* a3*", 9, 9, seed + 9));
  cases.back().paper_crx = "a1a2*a3*";
  cases.back().paper_idtd = cases.back().paper_crx;
  cases.back().paper_xtract = "a1(a2*a3a3?+a2(a3*+a2))?";

  return cases;
}

std::vector<ExperimentCase> BuildTable2Cases(uint64_t seed) {
  std::vector<ExperimentCase> cases;

  cases.push_back(MakeCase("example1", "a1+ | (a2? a3+)", "a1+ | (a2? a3+)",
                           48, 48, seed + 11));
  cases.back().paper_crx = "a1*a2?a3*";
  cases.back().paper_idtd = "a1+ + (a2?a3+)";
  cases.back().paper_xtract = "a1* + (a2?a3*)";

  {
    std::string re = "(a1 a2? a3?)? a4? " + UnionRange(5, 18) + "*";
    cases.push_back(MakeCase("example2", re, re, 2210, 300, seed + 12));
    cases.back().paper_crx = "a1?a2?a3?a4?(a5+...+a18)*";
    cases.back().paper_idtd = "(a1a2?a3?)?a4?(a5+...+a18)*";
    cases.back().paper_xtract = "an expression of 252 tokens";
  }
  {
    std::string re = "a1? (a2 a3?)? " + UnionRange(4, 44) + "* a45+";
    cases.push_back(MakeCase("example3", re, re, 5741, 400, seed + 13));
    cases.back().paper_crx = "a1?a2?a3?(a4+...+a44)*a45+";
    cases.back().paper_idtd = "a1?(a2a3?)?(a4+...+a44)*a45+";
    cases.back().paper_xtract = "an expression of 142 tokens";
  }
  {
    std::string re =
        "a1? a2 a3? a4? (a5+ | (" + UnionRange(6, 61) + "+ a5*))";
    cases.push_back(MakeCase("example4", re, re, 10000, 500, seed + 14));
    cases.back().paper_crx = "a1?a2a3?a4?(a6+...+a61)*a5*";
    cases.back().paper_idtd = "a1?a2a3?a4?(a6+...+a61)*a5*";
    cases.back().paper_xtract = "an expression of 185 tokens";
  }
  {
    std::string re = "a1 (a2 | a3)* (a4 (a2 | a3 | a5)*)*";
    cases.push_back(MakeCase("example5", re, re, 1281, 500, seed + 15));
    cases.back().paper_crx = "a1(a2+a3+a4+a5)*";
    cases.back().paper_idtd = "a1((a2+a3+a4)+a5*)*";
    cases.back().paper_xtract = "an expression of 85 tokens";
  }
  return cases;
}

ExperimentCase BuildDaggerCase(int sample_size, uint64_t seed) {
  std::string re = "(a1 " + UnionRange(2, 12) + "+ (a13 | a14))+";
  ExperimentCase c = MakeCase("dagger", re, re, sample_size, sample_size,
                              seed + 21);
  c.paper_crx = "(super-approximation; CHARE cannot express (‡))";
  c.paper_idtd = "(a1(a2+...+a12)+(a13+a14))+";
  return c;
}

ExperimentCase BuildNoisyParagraphCase(int num_words, int num_noisy_words,
                                       uint64_t seed) {
  ExperimentCase c;
  c.name = "xhtml_paragraph";
  std::string re = "(";
  for (int i = 1; i <= 41; ++i) {
    if (i > 1) re += " | ";
    re += "a" + std::to_string(i);
  }
  re += ")*";
  for (int i = 1; i <= 41; ++i) c.alphabet.Intern("a" + std::to_string(i));
  c.original = MustParse(re, &c.alphabet);
  c.observed = c.original;
  c.sample_size = num_words;
  c.xtract_sample_size = 0;

  Rng rng(seed);
  SampleOptions options;
  options.repeat_continue_p = 0.75;
  options.max_repeat = 20;
  c.sample = RepresentativeSample(c.observed);
  while (static_cast<int>(c.sample.size()) < num_words) {
    c.sample.push_back(SampleWord(c.observed, &rng, options));
  }
  // Inject intruders: Section 9 reports "a dozen of disallowed elements
  // (like table, h1, h2, ...) albeit in small numbers: on average in
  // around 10 strings" — twelve intruder element names, each occurring
  // in `num_noisy_words` words.
  const char* intruders[] = {"table",  "iframe",   "object", "script",
                             "form",   "input",    "select", "button",
                             "label",  "fieldset", "legend", "noscript"};
  for (const char* name : intruders) {
    Symbol intruder = c.alphabet.Intern(name);
    for (int i = 0; i < num_noisy_words && !c.sample.empty(); ++i) {
      Word& victim = c.sample[rng.NextBelow(c.sample.size())];
      victim.insert(victim.begin() + rng.NextBelow(victim.size() + 1),
                    intruder);
    }
  }
  rng.Shuffle(&c.sample);
  return c;
}

ExperimentCase BuildRepeatedDisjunctionCase(int n, int sample_size,
                                            uint64_t seed) {
  std::string re = "(";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) re += " | ";
    re += "a" + std::to_string(i);
  }
  re += ")*";
  ExperimentCase c;
  c.name = "union" + std::to_string(n) + "_star";
  for (int i = 1; i <= n; ++i) c.alphabet.Intern("a" + std::to_string(i));
  c.original = MustParse(re, &c.alphabet);
  c.observed = c.original;
  c.sample_size = sample_size;
  c.sample = GeneratedCorpus(c.observed, sample_size, seed);
  return c;
}

}  // namespace condtd
