#ifndef CONDTD_GEN_RESERVOIR_H_
#define CONDTD_GEN_RESERVOIR_H_

#include <vector>

#include "alphabet/alphabet.h"
#include "base/rng.h"

namespace condtd {

/// Vitter's algorithm R: a uniform sample of `k` items from `items`
/// (all items when k >= |items|). Order of the reservoir is not
/// meaningful. Used by the Figure 4 experiment ("generating 200
/// subsamples using reservoir sampling for each size").
std::vector<Word> ReservoirSample(const std::vector<Word>& items, int k,
                                  Rng* rng);

/// Figure 4's fairness constraint: a reservoir sample conditioned on
/// containing every symbol of `required` ("it is ensured that the
/// subsamples contain all alphabet symbols of the target expressions").
/// Retries up to `max_attempts`, then falls back to greedily swapping in
/// covering words.
std::vector<Word> ReservoirSampleCovering(const std::vector<Word>& items,
                                          int k,
                                          const std::vector<Symbol>& required,
                                          Rng* rng, int max_attempts = 64);

}  // namespace condtd

#endif  // CONDTD_GEN_RESERVOIR_H_
