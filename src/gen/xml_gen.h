#ifndef CONDTD_GEN_XML_GEN_H_
#define CONDTD_GEN_XML_GEN_H_

#include "base/rng.h"
#include "base/status.h"
#include "dtd/model.h"
#include "gen/regex_sampler.h"
#include "xml/dom.h"

namespace condtd {

/// Options for DTD-driven document generation (the ToXgene substitute at
/// the document level).
struct XmlGenOptions {
  /// Below this depth, content is sampled freely; at or beyond it, the
  /// shortest derivation of each content model is used so recursive DTDs
  /// terminate.
  int max_depth = 8;
  /// Randomly permute the children of every element after sampling
  /// (data-centric XML where child order is incidental). The emitted
  /// documents are valid w.r.t. the shuffle-closure of the DTD, not
  /// necessarily the DTD itself.
  bool unordered = false;
  SampleOptions sampling;
};

/// Generates one random document valid w.r.t. `dtd` (root = dtd.root).
/// Elements with #PCDATA content receive filler text. Fails when the DTD
/// has no root or the root is undeclared.
Result<XmlDocument> GenerateDocument(const Dtd& dtd, const Alphabet& alphabet,
                                     Rng* rng,
                                     const XmlGenOptions& options = {});

/// The shortest word of L(re) (minimal derivation; ties broken toward
/// the first alternative).
Word MinimalWord(const ReRef& re);

}  // namespace condtd

#endif  // CONDTD_GEN_XML_GEN_H_
