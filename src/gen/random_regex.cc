#include "gen/random_regex.h"

#include <algorithm>
#include <vector>

namespace condtd {

namespace {

ReRef MaybeWrap(ReRef re, Rng* rng, const RandomRegexOptions& options) {
  if (!rng->Bernoulli(options.unary_p)) return re;
  switch (rng->NextBelow(3)) {
    case 0:
      return Re::Opt(std::move(re));
    case 1:
      return Re::Plus(std::move(re));
    default:
      return Re::Star(std::move(re));
  }
}

ReRef BuildSore(const std::vector<Symbol>& symbols, size_t begin, size_t end,
                Rng* rng, const RandomRegexOptions& options) {
  if (end - begin == 1) {
    return MaybeWrap(Re::Sym(symbols[begin]), rng, options);
  }
  size_t n = end - begin;
  size_t fanout =
      2 + rng->NextBelow(std::min<size_t>(options.max_fanout - 1, n - 1));
  if (fanout > n) fanout = n;
  // Random split points.
  std::vector<size_t> cuts = {begin, end};
  while (cuts.size() < fanout + 1) {
    size_t cut = begin + 1 + rng->NextBelow(n - 1);
    bool duplicate = false;
    for (size_t c : cuts) {
      if (c == cut) duplicate = true;
    }
    if (!duplicate) cuts.push_back(cut);
  }
  std::sort(cuts.begin(), cuts.end());
  std::vector<ReRef> children;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    children.push_back(BuildSore(symbols, cuts[i], cuts[i + 1], rng, options));
  }
  ReRef node = rng->Bernoulli(options.disj_p) ? Re::Disj(std::move(children))
                                              : Re::Concat(std::move(children));
  return MaybeWrap(std::move(node), rng, options);
}

}  // namespace

ReRef RandomSore(int num_symbols, Rng* rng,
                 const RandomRegexOptions& options) {
  std::vector<Symbol> symbols;
  symbols.reserve(num_symbols);
  for (Symbol s = 0; s < num_symbols; ++s) symbols.push_back(s);
  rng->Shuffle(&symbols);
  return BuildSore(symbols, 0, symbols.size(), rng, options);
}

ReRef RandomChare(int num_symbols, Rng* rng,
                  const RandomRegexOptions& options) {
  std::vector<ReRef> factors;
  Symbol next = 0;
  while (next < num_symbols) {
    int width = 1 + static_cast<int>(rng->NextBelow(options.max_fanout));
    std::vector<ReRef> alts;
    for (int i = 0; i < width && next < num_symbols; ++i) {
      alts.push_back(Re::Sym(next++));
    }
    ReRef factor = Re::Disj(std::move(alts));
    switch (rng->NextBelow(4)) {
      case 0:
        break;  // bare
      case 1:
        factor = Re::Opt(factor);
        break;
      case 2:
        factor = Re::Plus(factor);
        break;
      default:
        factor = Re::Star(factor);
        break;
    }
    factors.push_back(std::move(factor));
  }
  return Re::Concat(std::move(factors));
}

}  // namespace condtd
