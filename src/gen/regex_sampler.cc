#include "gen/regex_sampler.h"

namespace condtd {

namespace {

void Emit(const ReRef& re, Rng* rng, const SampleOptions& options,
          Word* out) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      out->push_back(re->symbol());
      break;
    case ReKind::kConcat:
      for (const auto& c : re->children()) Emit(c, rng, options, out);
      break;
    case ReKind::kDisj: {
      size_t pick = rng->NextBelow(re->children().size());
      Emit(re->children()[pick], rng, options, out);
      break;
    }
    case ReKind::kPlus: {
      int n = rng->RepeatCount(options.repeat_continue_p, options.max_repeat);
      for (int i = 0; i < n; ++i) Emit(re->child(), rng, options, out);
      break;
    }
    case ReKind::kOpt:
      if (rng->Bernoulli(options.opt_p)) Emit(re->child(), rng, options, out);
      break;
    case ReKind::kStar:
      if (rng->Bernoulli(options.opt_p)) {
        int n =
            rng->RepeatCount(options.repeat_continue_p, options.max_repeat);
        for (int i = 0; i < n; ++i) Emit(re->child(), rng, options, out);
      }
      break;
    case ReKind::kShuffle: {
      // Sample each factor, then riffle-merge: repeatedly take the next
      // symbol from a factor chosen with probability proportional to its
      // remaining length (the uniform-interleaving distribution).
      std::vector<Word> parts(re->children().size());
      size_t remaining = 0;
      for (size_t i = 0; i < re->children().size(); ++i) {
        Emit(re->children()[i], rng, options, &parts[i]);
        remaining += parts[i].size();
      }
      std::vector<size_t> next(parts.size(), 0);
      while (remaining > 0) {
        size_t pick = rng->NextBelow(remaining);
        for (size_t i = 0; i < parts.size(); ++i) {
          size_t left = parts[i].size() - next[i];
          if (pick < left) {
            out->push_back(parts[i][next[i]++]);
            break;
          }
          pick -= left;
        }
        --remaining;
      }
      break;
    }
  }
}

}  // namespace

Word SampleWord(const ReRef& re, Rng* rng, const SampleOptions& options) {
  Word out;
  Emit(re, rng, options, &out);
  return out;
}

std::vector<Word> SampleWords(const ReRef& re, int count, Rng* rng,
                              const SampleOptions& options) {
  std::vector<Word> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(SampleWord(re, rng, options));
  return out;
}

}  // namespace condtd
