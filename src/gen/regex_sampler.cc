#include "gen/regex_sampler.h"

namespace condtd {

namespace {

void Emit(const ReRef& re, Rng* rng, const SampleOptions& options,
          Word* out) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      out->push_back(re->symbol());
      break;
    case ReKind::kConcat:
      for (const auto& c : re->children()) Emit(c, rng, options, out);
      break;
    case ReKind::kDisj: {
      size_t pick = rng->NextBelow(re->children().size());
      Emit(re->children()[pick], rng, options, out);
      break;
    }
    case ReKind::kPlus: {
      int n = rng->RepeatCount(options.repeat_continue_p, options.max_repeat);
      for (int i = 0; i < n; ++i) Emit(re->child(), rng, options, out);
      break;
    }
    case ReKind::kOpt:
      if (rng->Bernoulli(options.opt_p)) Emit(re->child(), rng, options, out);
      break;
    case ReKind::kStar:
      if (rng->Bernoulli(options.opt_p)) {
        int n =
            rng->RepeatCount(options.repeat_continue_p, options.max_repeat);
        for (int i = 0; i < n; ++i) Emit(re->child(), rng, options, out);
      }
      break;
  }
}

}  // namespace

Word SampleWord(const ReRef& re, Rng* rng, const SampleOptions& options) {
  Word out;
  Emit(re, rng, options, &out);
  return out;
}

std::vector<Word> SampleWords(const ReRef& re, int count, Rng* rng,
                              const SampleOptions& options) {
  std::vector<Word> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(SampleWord(re, rng, options));
  return out;
}

}  // namespace condtd
