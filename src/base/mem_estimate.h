#ifndef CONDTD_BASE_MEM_ESTIMATE_H_
#define CONDTD_BASE_MEM_ESTIMATE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace condtd {

/// Rough resident-byte estimators for the standard containers the
/// retained summaries are built from. These back SummaryStore::
/// ApproxBytes() — the per-corpus memory gauge and cap of the serve
/// daemon — so the contract is "stable and proportional", not exact:
/// node overheads are libstdc++-flavored constants, and allocator slack
/// is ignored. Estimates are monotone in the container sizes, which is
/// all a cap needs.

/// Malloc + pointer overhead of one tree node (3 pointers + color,
/// rounded to the 16-byte allocation quantum).
inline constexpr size_t kTreeNodeOverhead = 40;
/// Forward-list node pointer + malloc overhead of one hash-map node.
inline constexpr size_t kHashNodeOverhead = 24;

template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

inline size_t VectorBytes(const std::vector<bool>& v) {
  return v.capacity() / 8;
}

/// Heap bytes behind a std::string (0 when it fits the SSO buffer).
inline size_t StringBytes(const std::string& s) {
  return s.capacity() > sizeof(std::string) - 1 ? s.capacity() + 1 : 0;
}

/// std::map / std::set: one node per entry.
template <typename Tree>
size_t TreeBytes(const Tree& t) {
  return t.size() * (sizeof(typename Tree::value_type) + kTreeNodeOverhead);
}

/// std::unordered_map / std::unordered_set: one node per entry plus the
/// bucket array.
template <typename Hash>
size_t HashBytes(const Hash& h) {
  return h.size() * (sizeof(typename Hash::value_type) + kHashNodeOverhead) +
         h.bucket_count() * sizeof(void*);
}

}  // namespace condtd

#endif  // CONDTD_BASE_MEM_ESTIMATE_H_
