#include "base/file.h"

#include <fstream>

#include <sys/stat.h>
#include <sys/types.h>

namespace condtd {

namespace {

/// Chunked read for regular files whose reported size is unreliable
/// (procfs/sysfs publish st_size == 0 for content-bearing entries).
Result<std::string> ReadStreamToString(std::ifstream& in,
                                       const std::string& path) {
  std::string content;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    content.append(buffer, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) {
    return Status::InvalidArgument("error while reading: " + path);
  }
  return content;
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  // Classify before opening: an ifstream on a FIFO with no writer would
  // block forever, and a directory "opens" only to fail confusingly at
  // read time. The daemon receives arbitrary client paths, so these must
  // be crisp errors, never hangs.
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot open file: " + path);
  }
  if (S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("is a directory: " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::InvalidArgument(
        "not a regular file (fifo/device/socket): " + path);
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  // Seek-to-end + one read into a presized buffer: the ostringstream
  // round-trip this replaces copied every byte twice and doubled peak
  // memory on corpus-sized documents.
  std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::InvalidArgument("error while reading: " + path);
  }
  in.seekg(0, std::ios::beg);
  if (size == 0) {
    // st_size == 0 does not mean empty for /proc-style virtual files.
    return ReadStreamToString(in, path);
  }
  std::string content(static_cast<size_t>(size), '\0');
  in.read(content.data(), size);
  if (in.bad() || in.gcount() != size) {
    return Status::InvalidArgument("error while reading: " + path);
  }
  return content;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return Status::InvalidArgument("error while writing: " + path);
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("empty directory path");
  }
  // Walk the components left to right, creating what is missing.
  size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    std::string prefix = path.substr(0, pos);
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0777) == 0) continue;
    struct stat st;
    if (::stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument("cannot create directory: " + prefix);
    }
  }
  return Status::OK();
}

}  // namespace condtd
