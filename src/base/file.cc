#include "base/file.h"

#include <fstream>
#include <sstream>

namespace condtd {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::InvalidArgument("error while reading: " + path);
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return Status::InvalidArgument("error while writing: " + path);
  }
  return Status::OK();
}

}  // namespace condtd
