#include "base/file.h"

#include <fstream>

namespace condtd {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  // Seek-to-end + one read into a presized buffer: the ostringstream
  // round-trip this replaces copied every byte twice and doubled peak
  // memory on corpus-sized documents.
  std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::InvalidArgument("error while reading: " + path);
  }
  std::string content(static_cast<size_t>(size), '\0');
  in.seekg(0, std::ios::beg);
  if (size > 0) in.read(content.data(), size);
  if (in.bad() || in.gcount() != size) {
    return Status::InvalidArgument("error while reading: " + path);
  }
  return content;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return Status::InvalidArgument("error while writing: " + path);
  }
  return Status::OK();
}

}  // namespace condtd
