#ifndef CONDTD_BASE_SWAR_H_
#define CONDTD_BASE_SWAR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace condtd {
namespace swar {

/// SWAR (SIMD-within-a-register) byte scanning. The ingestion hot path
/// spends most of its cycles finding the next structural byte ('<', '&',
/// a quote) or the end of a name run; these helpers do that 8 bytes per
/// iteration with plain 64-bit arithmetic — portable, no intrinsics
/// beyond memcpy/ctz, and exactly as fast as a hand-rolled SSE2 loop for
/// the short-to-medium runs XML produces.

inline uint64_t LoadUnaligned64(const char* p) {
  uint64_t word;
  std::memcpy(&word, p, sizeof(word));
  return word;
}

/// 0x2B2B2B2B2B2B2B2B-style broadcast of one byte into every lane.
inline constexpr uint64_t Broadcast(char byte) {
  return 0x0101010101010101ull * static_cast<uint8_t>(byte);
}

/// Returns a mask with 0x80 set in every lane of `word` that is zero
/// (the classic haszero trick). Lanes with 0x80 already set in `word`
/// never false-positive because `~word` clears them.
inline constexpr uint64_t ZeroLanes(uint64_t word) {
  return (word - 0x0101010101010101ull) & ~word & 0x8080808080808080ull;
}

inline constexpr bool IsLittleEndian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;  // unknown: take the scalar path
#endif
}

/// Index (0-7) of the lowest-address marked lane in a ZeroLanes mask.
inline int FirstMarkedLane(uint64_t mask) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(mask) >> 3;
#else
  int lane = 0;
  while ((mask & 0xFFu) == 0) {
    mask >>= 8;
    ++lane;
  }
  return lane;
#endif
}

constexpr size_t kNpos = static_cast<size_t>(-1);

/// First index >= `pos` where `text[i] == a || text[i] == b`, or kNpos.
/// One pass over the buffer where the previous code needed two
/// (find('<') then find('&') over the same run).
inline size_t FindEither(std::string_view text, size_t pos, char a, char b) {
  const char* data = text.data();
  const size_t size = text.size();
  size_t i = pos;
  if (IsLittleEndian()) {
    const uint64_t lane_a = Broadcast(a);
    const uint64_t lane_b = Broadcast(b);
    while (i + 8 <= size) {
      uint64_t word = LoadUnaligned64(data + i);
      uint64_t hit = ZeroLanes(word ^ lane_a) | ZeroLanes(word ^ lane_b);
      if (hit != 0) return i + FirstMarkedLane(hit);
      i += 8;
    }
  }
  for (; i < size; ++i) {
    if (data[i] == a || data[i] == b) return i;
  }
  return kNpos;
}

/// First index >= `pos` of byte `c`, or kNpos. memchr lowers to the
/// platform's vectorized scanner, which beats a SWAR loop on long runs.
inline size_t FindByte(std::string_view text, size_t pos, char c) {
  if (pos >= text.size()) return kNpos;
  const void* hit = std::memchr(text.data() + pos, c, text.size() - pos);
  if (hit == nullptr) return kNpos;
  return static_cast<size_t>(static_cast<const char*>(hit) - text.data());
}

/// First index >= `pos` of '&', or kNpos — the entity-decoder's scan.
/// Word-at-a-time: text/attribute runs handed to the decoder are short
/// to medium (a few bytes to a few hundred), where the 8-bytes-per-
/// iteration SWAR loop wins over memchr's call + alignment preamble.
/// The loads are memcpy-based, so a '&' sitting at the buffer tail or
/// an mmap page boundary is read safely (no past-the-end touch).
inline size_t FindAmp(std::string_view text, size_t pos) {
  const char* data = text.data();
  const size_t size = text.size();
  size_t i = pos;
  if (IsLittleEndian()) {
    const uint64_t lane_amp = Broadcast('&');
    while (i + 8 <= size) {
      uint64_t hit = ZeroLanes(LoadUnaligned64(data + i) ^ lane_amp);
      if (hit != 0) return i + FirstMarkedLane(hit);
      i += 8;
    }
  }
  for (; i < size; ++i) {
    if (data[i] == '&') return i;
  }
  return kNpos;
}

/// Result of MatchNamedEntity: `length` bytes consumed starting at the
/// '&' (0 = no match) and the replacement character.
struct EntityMatch {
  char replacement = '\0';
  uint8_t length = 0;
};

/// Matches one of the five XML named entities (&amp; &lt; &gt; &apos;
/// &quot;) at `amp`, which must index a '&' in `text`. One unaligned
/// load + masked compares instead of five string comparisons; the load
/// is memcpy-guarded by the remaining length, so a truncated reference
/// at the buffer tail (or an mmap page end) reads only what exists and
/// simply fails to match.
inline EntityMatch MatchNamedEntity(std::string_view text, size_t amp) {
  const size_t avail = text.size() - amp - 1;  // bytes after the '&'
  const char* p = text.data() + amp + 1;
  if (IsLittleEndian()) {
    uint64_t w = 0;
    std::memcpy(&w, p, avail < 5 ? avail : 5);
    // Entity bodies packed little-endian, first byte in the low lane.
    constexpr uint64_t kLt = 0x3B746Cull;      // "lt;"
    constexpr uint64_t kGt = 0x3B7467ull;      // "gt;"
    constexpr uint64_t kAmp = 0x3B706D61ull;   // "amp;"
    constexpr uint64_t kApos = 0x3B736F7061ull;  // "apos;"
    constexpr uint64_t kQuot = 0x3B746F7571ull;  // "quot;"
    if ((w & 0xFFFFFFull) == kLt) return {'<', 4};
    if ((w & 0xFFFFFFull) == kGt) return {'>', 4};
    if ((w & 0xFFFFFFFFull) == kAmp) return {'&', 5};
    if ((w & 0xFFFFFFFFFFull) == kApos) return {'\'', 6};
    if ((w & 0xFFFFFFFFFFull) == kQuot) return {'"', 6};
    return {};
  }
  // Endianness unknown: scalar compares, same semantics.
  if (avail >= 3 && std::memcmp(p, "lt;", 3) == 0) return {'<', 4};
  if (avail >= 3 && std::memcmp(p, "gt;", 3) == 0) return {'>', 4};
  if (avail >= 4 && std::memcmp(p, "amp;", 4) == 0) return {'&', 5};
  if (avail >= 5 && std::memcmp(p, "apos;", 5) == 0) return {'\'', 6};
  if (avail >= 5 && std::memcmp(p, "quot;", 5) == 0) return {'"', 6};
  return {};
}

/// Character-class bits for the XML subset this lexer accepts. The
/// table replaces per-byte arithmetic classifiers: one L1 load + test
/// instead of a chain of compares, and it keeps the DOM and SAX lexers
/// agreeing on the exact same (ASCII-only) name alphabet.
enum CharClass : unsigned char {
  kNameStartChar = 1,  ///< [A-Za-z_:]
  kNameChar = 2,       ///< [A-Za-z0-9_:.-]
  kSpaceChar = 4,      ///< space, \t, \r, \n
};

extern const unsigned char kCharClass[256];

inline bool IsNameStart(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kNameStartChar) != 0;
}

inline bool IsName(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kNameChar) != 0;
}

inline bool IsSpace(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kSpaceChar) != 0;
}

/// First index >= `pos` that is not a name character (end of a tag or
/// attribute name run).
inline size_t FindNameEnd(std::string_view text, size_t pos) {
  const char* data = text.data();
  const size_t size = text.size();
  // Names are short (rarely > 16 bytes); a 4-way unrolled table loop
  // keeps the branch predictor hot without SWAR setup cost.
  while (pos + 4 <= size) {
    if (!IsName(data[pos])) return pos;
    if (!IsName(data[pos + 1])) return pos + 1;
    if (!IsName(data[pos + 2])) return pos + 2;
    if (!IsName(data[pos + 3])) return pos + 3;
    pos += 4;
  }
  while (pos < size && IsName(data[pos])) ++pos;
  return pos;
}

/// First index >= `pos` that is not XML whitespace.
inline size_t SkipSpace(std::string_view text, size_t pos) {
  const char* data = text.data();
  const size_t size = text.size();
  while (pos < size && IsSpace(data[pos])) ++pos;
  return pos;
}

}  // namespace swar
}  // namespace condtd

#endif  // CONDTD_BASE_SWAR_H_
