#ifndef CONDTD_BASE_ARENA_H_
#define CONDTD_BASE_ARENA_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace condtd {

/// Bump allocator for per-document transient state. `Allocate` hands
/// out pointer-aligned slices of geometrically growing blocks;
/// `Reset()` rewinds to empty while keeping every block allocated, so
/// steady-state ingestion of a document stream performs zero heap
/// traffic no matter how many strings it materializes per document.
///
/// Views returned by `Copy`/`Append` stay valid until the next
/// `Reset()` (or destruction) — callers must promote anything with a
/// longer lifetime to owned storage before resetting.
class Arena {
 public:
  explicit Arena(size_t first_block_bytes = 4096);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes, 8-aligned. Ingestion only stores byte
  /// strings and small PODs, so that covers every current use.
  char* Allocate(size_t size);

  /// Copies `text` into the arena and returns a view of the copy.
  std::string_view Copy(std::string_view text);

  /// Appends `tail` to `head`, where `head` is empty or a view
  /// previously returned by this arena. When `head` is the most recent
  /// allocation and the current block has room, the copy extends in
  /// place; otherwise both parts move to a fresh slice. Returns the
  /// combined view. This gives O(amortized-linear) accumulation for the
  /// text-gathering pattern in the streaming folder.
  std::string_view Append(std::string_view head, std::string_view tail);

  /// Rewinds to empty, keeping block capacity for reuse.
  void Reset();

  /// Bytes handed out since the last Reset().
  size_t bytes_used() const { return bytes_used_; }

  /// Total bytes of block capacity currently held (survives Reset).
  size_t footprint() const { return footprint_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  /// Makes sure the active block has at least `size` free bytes.
  char* Reserve(size_t size);

  std::vector<Block> blocks_;
  size_t block_index_ = 0;  ///< active block (valid when !blocks_.empty())
  size_t offset_ = 0;       ///< bump pointer within the active block
  size_t bytes_used_ = 0;
  size_t footprint_ = 0;
  size_t next_block_bytes_;
};

}  // namespace condtd

#endif  // CONDTD_BASE_ARENA_H_
