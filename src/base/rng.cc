#include "base/rng.h"

namespace condtd {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::RepeatCount(double continue_p, int max_repeat) {
  int count = 1;
  while (count < max_repeat && Bernoulli(continue_p)) ++count;
  return count;
}

}  // namespace condtd
