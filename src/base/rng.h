#ifndef CONDTD_BASE_RNG_H_
#define CONDTD_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace condtd {

/// Deterministic xoshiro256** pseudo-random generator. All experiments in
/// this repository seed it explicitly so every table and figure is
/// bit-for-bit reproducible across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Geometric-ish repeat count >= 1 for Kleene-plus sampling: starts at 1
  /// and continues with probability `continue_p` up to `max_repeat`.
  int RepeatCount(double continue_p, int max_repeat);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace condtd

#endif  // CONDTD_BASE_RNG_H_
