#include "base/swar.h"

namespace condtd {
namespace swar {

namespace {

constexpr unsigned char Classify(int c) {
  unsigned char bits = 0;
  const bool alpha = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
  const bool digit = c >= '0' && c <= '9';
  if (alpha || c == '_' || c == ':') bits |= kNameStartChar;
  if (alpha || digit || c == '_' || c == ':' || c == '-' || c == '.') {
    bits |= kNameChar;
  }
  if (c == ' ' || c == '\t' || c == '\r' || c == '\n') bits |= kSpaceChar;
  return bits;
}

}  // namespace

#define CONDTD_CLASS_ROW(base)                                               \
  Classify(base + 0), Classify(base + 1), Classify(base + 2),                \
      Classify(base + 3), Classify(base + 4), Classify(base + 5),            \
      Classify(base + 6), Classify(base + 7), Classify(base + 8),            \
      Classify(base + 9), Classify(base + 10), Classify(base + 11),          \
      Classify(base + 12), Classify(base + 13), Classify(base + 14),         \
      Classify(base + 15)

const unsigned char kCharClass[256] = {
    CONDTD_CLASS_ROW(0),   CONDTD_CLASS_ROW(16),  CONDTD_CLASS_ROW(32),
    CONDTD_CLASS_ROW(48),  CONDTD_CLASS_ROW(64),  CONDTD_CLASS_ROW(80),
    CONDTD_CLASS_ROW(96),  CONDTD_CLASS_ROW(112), CONDTD_CLASS_ROW(128),
    CONDTD_CLASS_ROW(144), CONDTD_CLASS_ROW(160), CONDTD_CLASS_ROW(176),
    CONDTD_CLASS_ROW(192), CONDTD_CLASS_ROW(208), CONDTD_CLASS_ROW(224),
    CONDTD_CLASS_ROW(240),
};

#undef CONDTD_CLASS_ROW

}  // namespace swar
}  // namespace condtd
