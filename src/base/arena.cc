#include "base/arena.h"

#include <algorithm>
#include <cstring>

namespace condtd {

Arena::Arena(size_t first_block_bytes)
    : next_block_bytes_(std::max<size_t>(first_block_bytes, 64)) {}

char* Arena::Reserve(size_t size) {
  if (!blocks_.empty() &&
      blocks_[block_index_].capacity - offset_ >= size) {
    return blocks_[block_index_].data.get() + offset_;
  }
  // Reuse retained blocks first (post-Reset steady state), skipping any
  // too small for this request.
  while (block_index_ + 1 < blocks_.size()) {
    ++block_index_;
    offset_ = 0;
    if (blocks_[block_index_].capacity >= size) {
      return blocks_[block_index_].data.get();
    }
  }
  const size_t capacity = std::max(next_block_bytes_, size);
  next_block_bytes_ = capacity * 2;
  Block block;
  block.data.reset(new char[capacity]);
  block.capacity = capacity;
  footprint_ += capacity;
  blocks_.push_back(std::move(block));
  block_index_ = blocks_.size() - 1;
  offset_ = 0;
  return blocks_[block_index_].data.get();
}

char* Arena::Allocate(size_t size) {
  const size_t aligned = (offset_ + 7u) & ~size_t{7};
  char* base = Reserve((aligned - offset_) + size);
  if (offset_ != 0) {
    // Still in the same block: skip the alignment pad.
    const size_t pad = ((offset_ + 7u) & ~size_t{7}) - offset_;
    base += pad;
    offset_ += pad;
  }
  offset_ += size;
  bytes_used_ += size;
  return base;
}

std::string_view Arena::Copy(std::string_view text) {
  if (text.empty()) return std::string_view();
  char* slice = Reserve(text.size());
  std::memcpy(slice, text.data(), text.size());
  offset_ += text.size();
  bytes_used_ += text.size();
  return std::string_view(slice, text.size());
}

std::string_view Arena::Append(std::string_view head, std::string_view tail) {
  if (tail.empty()) return head;
  if (head.empty()) return Copy(tail);
  if (!blocks_.empty()) {
    char* base = blocks_[block_index_].data.get();
    const bool head_is_top = head.data() >= base &&
                             head.data() + head.size() == base + offset_;
    if (head_is_top &&
        blocks_[block_index_].capacity - offset_ >= tail.size()) {
      std::memcpy(base + offset_, tail.data(), tail.size());
      offset_ += tail.size();
      bytes_used_ += tail.size();
      return std::string_view(head.data(), head.size() + tail.size());
    }
  }
  // Cannot extend in place: relocate head and tail into a fresh slice.
  // `head` may live in a previous block; retained blocks stay valid, so
  // the copy below reads from stable memory.
  const size_t total = head.size() + tail.size();
  char* slice = Reserve(total);
  std::memcpy(slice, head.data(), head.size());
  std::memcpy(slice + head.size(), tail.data(), tail.size());
  offset_ += total;
  bytes_used_ += total;
  return std::string_view(slice, total);
}

void Arena::Reset() {
  block_index_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
}

}  // namespace condtd
