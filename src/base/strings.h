#ifndef CONDTD_BASE_STRINGS_H_
#define CONDTD_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace condtd {

/// Splits `text` at every occurrence of `sep`; keeps empty pieces.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// True for the XML definition of whitespace (space, tab, CR, LF).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Strict decimal integer parsing: an optional leading '-' followed by
/// at least one digit and nothing else, rejecting overflow. Unlike
/// std::atoll (undefined behavior on overflow, silently returns 0 on
/// junk) a false return is the only failure signal, so callers on
/// untrusted input — the state loader, the CLI — can produce a real
/// error instead of degenerate behavior.
bool ParseInt64(std::string_view text, int64_t* out);

/// As ParseInt64 but bounds-checked into int32.
bool ParseInt32(std::string_view text, int32_t* out);

}  // namespace condtd

#endif  // CONDTD_BASE_STRINGS_H_
