#ifndef CONDTD_BASE_WS_DEQUE_H_
#define CONDTD_BASE_WS_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace condtd {

/// Chase–Lev-style work-stealing deque, specialised for the batch
/// scheduler: a single owner thread pushes work at the bottom and any
/// number of worker threads steal from the top (FIFO), so the oldest
/// batch — whose documents carry the lowest indices — is always claimed
/// first and I/O naturally overlaps parsing across workers.
///
/// Relative to the textbook algorithm (Chase & Lev, SPAA'05; Lê et al.,
/// PPoPP'13) the owner never pops, which removes the owner/thief race
/// on the last element and lets every operation use straightforward
/// acquire/release plus seq_cst CAS — no standalone memory fences,
/// which TSan does not model. Retired rings from grows are kept alive
/// until destruction because a concurrent thief may still hold a
/// pointer into one; values for live indices were copied to the new
/// ring unchanged, so a stale read is still validated by the CAS on
/// `top_`.
///
/// T must be a pointer type (slots are atomic).
template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(size_t initial_capacity = 64) {
    size_t capacity = 8;
    while (capacity < initial_capacity) capacity *= 2;
    active_ring_.store(NewRing(capacity), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Appends `item` at the bottom.
  void Push(T item) {
    const int64_t bottom = bottom_.load(std::memory_order_relaxed);
    const int64_t top = top_.load(std::memory_order_acquire);
    Ring* ring = active_ring_.load(std::memory_order_relaxed);
    if (bottom - top >= static_cast<int64_t>(ring->mask + 1)) {
      ring = Grow(ring, top, bottom);
    }
    ring->Slot(bottom).store(item, std::memory_order_relaxed);
    bottom_.store(bottom + 1, std::memory_order_release);
  }

  /// Any thread. Claims the oldest item, or returns nullptr when the
  /// deque is observed empty. Internal CAS races retry.
  T Steal() {
    for (;;) {
      const int64_t top = top_.load(std::memory_order_acquire);
      const int64_t bottom = bottom_.load(std::memory_order_acquire);
      if (top >= bottom) return nullptr;
      Ring* ring = active_ring_.load(std::memory_order_acquire);
      T item = ring->Slot(top).load(std::memory_order_relaxed);
      int64_t expected = top;
      if (top_.compare_exchange_strong(expected, top + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        return item;
      }
      // Lost the race to another thief; retry with the advanced top.
    }
  }

  /// Approximate (both loads are instantaneous snapshots); exact once
  /// producers and thieves have quiesced.
  bool Empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  struct Ring {
    explicit Ring(size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<T>[capacity]) {}
    std::atomic<T>& Slot(int64_t index) { return slots[index & mask]; }
    const size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  Ring* NewRing(size_t capacity) {
    rings_.push_back(std::make_unique<Ring>(capacity));
    return rings_.back().get();
  }

  /// Owner only. Doubles capacity, copying live indices [top, bottom).
  Ring* Grow(Ring* old_ring, int64_t top, int64_t bottom) {
    Ring* ring = NewRing(2 * (old_ring->mask + 1));
    for (int64_t i = top; i < bottom; ++i) {
      ring->Slot(i).store(old_ring->Slot(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    active_ring_.store(ring, std::memory_order_release);
    return ring;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Ring*> active_ring_{nullptr};
  /// All rings ever allocated, newest last; retired rings stay alive
  /// for the lifetime of the deque (owner-only mutation in Push/Grow).
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace condtd

#endif  // CONDTD_BASE_WS_DEQUE_H_
