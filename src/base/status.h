#ifndef CONDTD_BASE_STATUS_H_
#define CONDTD_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace condtd {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow Status idiom: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< XML / DTD / regex text could not be parsed.
  kNotFound,          ///< A requested entity does not exist.
  kFailedPrecondition,///< Operation not valid in the current state.
  kNoEquivalentSore,  ///< rewrite: the SOA has no equivalent SORE.
  kResourceExhausted, ///< A configured budget (e.g. XTRACT memory) hit.
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// Returns a human-readable name for a status code ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NoEquivalentSore(std::string msg) {
    return Status(StatusCode::kNoEquivalentSore, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing value() on an
/// error aborts (library-internal misuse), so callers must check ok().
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, for ergonomic returns.
  Result(T value) : data_(std::move(value)) {}             // NOLINT
  Result(Status status) : data_(std::move(status)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression returning Status.
#define CONDTD_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::condtd::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace condtd

#endif  // CONDTD_BASE_STATUS_H_
