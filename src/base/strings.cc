#include "base/strings.h"

namespace condtd {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && IsXmlWhitespace(text[begin])) ++begin;
  size_t end = text.size();
  while (end > begin && IsXmlWhitespace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace condtd
