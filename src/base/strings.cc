#include "base/strings.h"

namespace condtd {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && IsXmlWhitespace(text[begin])) ++begin;
  size_t end = text.size();
  while (end > begin && IsXmlWhitespace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  bool negative = false;
  size_t i = 0;
  if (i < text.size() && text[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= text.size()) return false;
  // Accumulate negated so INT64_MIN parses without overflowing.
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') return false;
    int digit = c - '0';
    if (value < (INT64_MIN + digit) / 10) return false;
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == INT64_MIN) return false;
    value = -value;
  }
  *out = value;
  return true;
}

bool ParseInt32(std::string_view text, int32_t* out) {
  int64_t wide;
  if (!ParseInt64(text, &wide)) return false;
  if (wide < INT32_MIN || wide > INT32_MAX) return false;
  *out = static_cast<int32_t>(wide);
  return true;
}

}  // namespace condtd
