#ifndef CONDTD_BASE_FILE_H_
#define CONDTD_BASE_FILE_H_

#include <string>

#include "base/status.h"

namespace condtd {

/// Reads an entire file into memory.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path,
                         const std::string& content);

}  // namespace condtd

#endif  // CONDTD_BASE_FILE_H_
