#ifndef CONDTD_BASE_FILE_H_
#define CONDTD_BASE_FILE_H_

#include <string>

#include "base/status.h"

namespace condtd {

/// Reads an entire file into memory. Only regular files are accepted:
/// directories fail with "is a directory" and FIFOs/devices/sockets with
/// "not a regular file" — without ever opening them, so a FIFO with no
/// writer can never block the caller (the serve daemon hands
/// client-supplied paths straight here). Zero-size regular files that
/// are not actually empty (procfs/sysfs report st_size == 0) are read
/// with a chunked loop instead of the presized fast path.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path,
                         const std::string& content);

/// Creates `path` (and any missing parents) as a directory, mkdir -p
/// style. Succeeds if the directory already exists; fails when a
/// non-directory is in the way.
Status EnsureDirectory(const std::string& path);

}  // namespace condtd

#endif  // CONDTD_BASE_FILE_H_
