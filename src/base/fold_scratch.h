#ifndef CONDTD_BASE_FOLD_SCRATCH_H_
#define CONDTD_BASE_FOLD_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "alphabet/alphabet.h"

namespace condtd {

/// Symbol-id window for the dense fold kernels: words whose child
/// symbols all fall below this bound aggregate through flat arrays
/// instead of per-occurrence set/map operations; anything above falls
/// back to the generic path. 4096 covers any realistic element-name
/// alphabet (the paper's corpora top out in the hundreds) while keeping
/// the per-structure dense vectors at most 16 KiB.
inline constexpr Symbol kDenseFoldWindow = 4096;

/// Below this word length the aggregating 2T-INF kernel gains nothing
/// over the straight-line fold (short words rarely repeat symbols), so
/// the generic loop runs instead. Both produce identical SOAs.
inline constexpr size_t kDenseWordMin = 8;

/// Dense id → count accumulator with O(touched) reset: the counts array
/// grows to the largest id seen and stays allocated; only the ids
/// touched since the last Reset are re-zeroed. `touched()` lists them in
/// first-seen order (callers that need sorted output sort it in place —
/// it is scratch).
class DenseCounter {
 public:
  void Add(int32_t id, int64_t count) {
    if (static_cast<size_t>(id) >= counts_.size()) {
      counts_.resize(static_cast<size_t>(id) + 1, 0);
    }
    if (counts_[id] == 0) touched_.push_back(id);
    counts_[id] += count;
  }

  int64_t count_of(int32_t id) const { return counts_[id]; }
  std::vector<int32_t>& touched() { return touched_; }

  void Reset() {
    for (int32_t id : touched_) counts_[id] = 0;
    touched_.clear();
  }

 private:
  std::vector<int64_t> counts_;
  std::vector<int32_t> touched_;
};

/// Open-addressing accumulator for packed (prev, cur) adjacency pairs —
/// the inner structure of the dense fold kernels. Entries keep
/// first-seen order (the order the generic per-occurrence loop would
/// first touch each pair, which is what keeps dense and generic folds
/// byte-identical); each entry remembers its slot so Reset is O(entries)
/// regardless of table size.
class FlatPairCounter {
 public:
  struct Entry {
    uint64_t key = 0;
    int64_t count = 0;
    uint32_t slot = 0;
  };

  FlatPairCounter() : slots_(kInitialSlots, 0) {}

  static uint64_t Pack(int32_t prev, int32_t cur) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(prev)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cur));
  }
  static int32_t UnpackPrev(uint64_t key) {
    return static_cast<int32_t>(key >> 32);
  }
  static int32_t UnpackCur(uint64_t key) {
    return static_cast<int32_t>(key & 0xffffffffu);
  }

  void Add(uint64_t key, int64_t count) {
    if ((entries_.size() + 1) * 2 >= slots_.size()) Grow();
    const size_t mask = slots_.size() - 1;
    size_t slot = Hash(key) & mask;
    for (size_t step = 1;; ++step) {
      uint32_t id = slots_[slot];
      if (id == 0) {
        entries_.push_back(
            {key, count, static_cast<uint32_t>(slot)});
        slots_[slot] = static_cast<uint32_t>(entries_.size());
        return;
      }
      if (entries_[id - 1].key == key) {
        entries_[id - 1].count += count;
        return;
      }
      slot = (slot + step) & mask;
    }
  }

  /// Entries in first-seen order.
  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  void Reset() {
    for (const Entry& entry : entries_) slots_[entry.slot] = 0;
    entries_.clear();
  }

 private:
  static constexpr size_t kInitialSlots = 256;  // power of two

  static uint64_t Hash(uint64_t key) {
    key *= 0x9e3779b97f4a7c15ull;
    return key ^ (key >> 32);
  }

  void Grow() {
    const size_t next = slots_.size() * 2;
    slots_.assign(next, 0);
    const size_t mask = next - 1;
    for (uint32_t id = 1; id <= entries_.size(); ++id) {
      size_t slot = Hash(entries_[id - 1].key) & mask;
      for (size_t step = 1; slots_[slot] != 0; ++step) {
        slot = (slot + step) & mask;
      }
      entries_[id - 1].slot = static_cast<uint32_t>(slot);
      slots_[slot] = id;
    }
  }

  std::vector<uint32_t> slots_;
  std::vector<Entry> entries_;
};

/// Per-thread scratch shared by the dense fold kernels in two_t_inf.cc
/// and crx.cc. Each kernel Resets the pieces it uses on entry, so the
/// two may interleave freely within one AddChildWord call. thread_local:
/// shard workers fold concurrently, each on its own scratch.
struct FoldScratch {
  DenseCounter counts;      ///< per-state (2T) or per-symbol (CRX) totals
  FlatPairCounter pairs;    ///< adjacency-pair dedup within one word
  std::vector<std::pair<Symbol, int>> histogram;  ///< CRX histogram build
};

inline FoldScratch& GetFoldScratch() {
  static thread_local FoldScratch scratch;
  return scratch;
}

}  // namespace condtd

#endif  // CONDTD_BASE_FOLD_SCRATCH_H_
