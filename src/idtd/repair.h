#ifndef CONDTD_IDTD_REPAIR_H_
#define CONDTD_IDTD_REPAIR_H_

#include "gfa/gfa.h"

namespace condtd {

/// Repair rules of Section 6. Both add edges to the GFA so that a rewrite
/// rule becomes applicable; this is what makes iDTD return a SORE
/// denoting a superset of L(G_W) when the sample is not representative.
/// `k` is the fuzziness parameter bounding how dissimilar two
/// neighborhoods may be.

/// enable-disjunction. Considers node pairs {r1, r2} that are either
/// (a) neighborhood-similar: Pred(r1) ∩ Pred(r2) ≠ ∅,
///     |Pred(r1) \ Pred(r2)| ≤ k and |Pred(r2) \ Pred(r1)| ≤ k (and the
///     same for the successor sets), or
/// (b) mutually connected in the ε-closure.
/// Applies the cheapest candidate: adds the minimal set of real edges
/// that equalizes the real predecessor and successor sets of r1 and r2
/// (on the Figure 2 automaton this adds exactly the seven observations
/// separating it from Figure 1). Returns false when no candidate exists
/// or every candidate needs zero additions.
bool EnableDisjunction(Gfa* gfa, int k);

/// enable-optional. Considers nodes r with either
/// (a) at least one real edge from a closure-predecessor of r to a
///     closure-successor of r (partial skip evidence), or
/// (b) a single predecessor r' with |Succ(r') \ {r, r'}| ≤ k.
/// Applies the cheapest candidate: adds all missing skip edges
/// Pred(r) × Succ(r); afterwards the optional rewrite rule fires on r and
/// removes them again.
bool EnableOptional(Gfa* gfa, int k);

/// Last-resort fallback guaranteeing termination of the unrestricted
/// iDTD variant: fully interconnects all remaining internal nodes and
/// equalizes their external neighborhoods, after which the disjunction
/// and self-loop rules collapse them into (r1 + ... + rn)+.
void FullMergeFallback(Gfa* gfa);

}  // namespace condtd

#endif  // CONDTD_IDTD_REPAIR_H_
