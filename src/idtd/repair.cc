#include "idtd/repair.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

namespace condtd {

namespace {

/// Number of elements of `a` not in `b`. Sets are sorted (std::set).
int DifferenceSize(const std::set<int>& a, const std::set<int>& b) {
  int count = 0;
  for (int x : a) {
    if (b.count(x) == 0) ++count;
  }
  return count;
}

bool Intersects(const std::set<int>& a, const std::set<int>& b) {
  for (int x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

/// The real-edge additions needed to equalize In/Out neighborhoods of u
/// and v (the paper's "minimal set of edges such that Pred(ri) = Pred(rj)
/// and Succ(ri) = Succ(rj)").
std::set<std::pair<int, int>> EqualizationEdges(const Gfa& gfa, int u,
                                                int v) {
  std::set<std::pair<int, int>> additions;
  std::set<int> target_in;
  for (int p : gfa.In(u)) target_in.insert(p);
  for (int p : gfa.In(v)) target_in.insert(p);
  std::set<int> target_out;
  for (int s : gfa.Out(u)) target_out.insert(s);
  for (int s : gfa.Out(v)) target_out.insert(s);
  for (int node : {u, v}) {
    for (int p : target_in) {
      if (!gfa.HasEdge(p, node)) additions.emplace(p, node);
    }
    for (int s : target_out) {
      if (!gfa.HasEdge(node, s)) additions.emplace(node, s);
    }
  }
  return additions;
}

}  // namespace

bool EnableDisjunction(Gfa* gfa, int k) {
  Gfa::Closure closure = gfa->ComputeClosure();
  std::vector<int> live = gfa->LiveNodes();
  // Mutually connected pairs (precondition (b)) carry direct evidence of
  // a disjunction class and are preferred over merely similar pairs
  // (precondition (a)) — this is the choice the paper's Figure 2
  // walkthrough makes ({a, c} rather than a cheaper similarity pair).
  int best_cost_b = std::numeric_limits<int>::max();
  std::pair<int, int> best_b{-1, -1};
  int best_cost_a = std::numeric_limits<int>::max();
  std::pair<int, int> best_a{-1, -1};
  for (size_t i = 0; i < live.size(); ++i) {
    for (size_t j = i + 1; j < live.size(); ++j) {
      int u = live[i];
      int v = live[j];
      const auto& pu = closure.pred[u];
      const auto& pv = closure.pred[v];
      const auto& su = closure.succ[u];
      const auto& sv = closure.succ[v];
      bool case_b = su.count(v) > 0 && sv.count(u) > 0;
      bool case_a = Intersects(pu, pv) && Intersects(su, sv) &&
                    DifferenceSize(pu, pv) <= k &&
                    DifferenceSize(pv, pu) <= k &&
                    DifferenceSize(su, sv) <= k &&
                    DifferenceSize(sv, su) <= k;
      if (!case_a && !case_b) continue;
      int cost = static_cast<int>(EqualizationEdges(*gfa, u, v).size());
      if (cost == 0) continue;  // nothing to repair here
      if (case_b && cost < best_cost_b) {
        best_cost_b = cost;
        best_b = {u, v};
      } else if (!case_b && cost < best_cost_a) {
        best_cost_a = cost;
        best_a = {u, v};
      }
    }
  }
  std::pair<int, int> best_pair = best_b.first >= 0 ? best_b : best_a;
  if (best_pair.first < 0) return false;
  for (const auto& [p, s] :
       EqualizationEdges(*gfa, best_pair.first, best_pair.second)) {
    gfa->AddEdge(p, s, 1);
  }
  return true;
}

bool EnableOptional(Gfa* gfa, int k) {
  Gfa::Closure closure = gfa->ComputeClosure();
  // Candidates with real skip evidence (precondition (a)) are preferred
  // over structural guesses (precondition (b)).
  int best_cost_a = std::numeric_limits<int>::max();
  int best_node_a = -1;
  int best_cost_b = std::numeric_limits<int>::max();
  int best_node_b = -1;
  for (int r : gfa->LiveNodes()) {
    std::set<int> preds = closure.pred[r];
    preds.erase(r);
    std::set<int> succs = closure.succ[r];
    succs.erase(r);
    if (preds.empty() || succs.empty()) continue;

    bool skip_evidence = false;
    int missing = 0;
    for (int p : preds) {
      for (int s : succs) {
        if (gfa->HasEdge(p, s)) {
          skip_evidence = true;
        } else {
          ++missing;
        }
      }
    }
    bool case_a = skip_evidence;
    bool case_b = false;
    if (preds.size() == 1) {
      int rp = *preds.begin();
      std::set<int> rp_succ = closure.succ[rp];
      rp_succ.erase(r);
      rp_succ.erase(rp);
      case_b = static_cast<int>(rp_succ.size()) <= k;
    }
    if (!case_a && !case_b) continue;
    if (missing == 0) continue;
    if (case_a && missing < best_cost_a) {
      best_cost_a = missing;
      best_node_a = r;
    } else if (!case_a && missing < best_cost_b) {
      best_cost_b = missing;
      best_node_b = r;
    }
  }
  int best_node = best_node_a >= 0 ? best_node_a : best_node_b;
  if (best_node < 0) return false;
  std::set<int> preds = gfa->ComputeClosure().pred[best_node];
  preds.erase(best_node);
  std::set<int> succs = gfa->ComputeClosure().succ[best_node];
  succs.erase(best_node);
  for (int p : preds) {
    for (int s : succs) {
      if (!gfa->HasEdge(p, s)) gfa->AddEdge(p, s, 1);
    }
  }
  return true;
}

void FullMergeFallback(Gfa* gfa) {
  std::vector<int> live = gfa->LiveNodes();
  if (live.empty()) return;
  std::set<int> target_in(live.begin(), live.end());
  std::set<int> target_out(live.begin(), live.end());
  for (int w : live) {
    for (int p : gfa->In(w)) target_in.insert(p);
    for (int s : gfa->Out(w)) target_out.insert(s);
  }
  target_in.erase(gfa->sink());
  target_out.erase(gfa->source());
  for (int w : live) {
    for (int p : target_in) {
      if (!gfa->HasEdge(p, w)) gfa->AddEdge(p, w, 1);
    }
    for (int s : target_out) {
      if (!gfa->HasEdge(w, s)) gfa->AddEdge(w, s, 1);
    }
  }
}

}  // namespace condtd
