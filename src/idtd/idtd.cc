#include "idtd/idtd.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "automaton/two_t_inf.h"
#include "gfa/rewrite.h"
#include "idtd/repair.h"
#include "obs/metrics.h"
#include "regex/normalize.h"

namespace condtd {

namespace {

/// True when every live node is reachable from the source and co-reaches
/// the sink over real edges.
bool FullyConnected(const Gfa& gfa) {
  std::vector<int> live = gfa.LiveNodes();
  std::set<int> reach;
  std::queue<int> q;
  q.push(gfa.source());
  reach.insert(gfa.source());
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : gfa.Out(u)) {
      if (reach.insert(v).second) q.push(v);
    }
  }
  std::set<int> coreach;
  q.push(gfa.sink());
  coreach.insert(gfa.sink());
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : gfa.In(u)) {
      if (coreach.insert(v).second) q.push(v);
    }
  }
  for (int v : live) {
    if (reach.count(v) == 0 || coreach.count(v) == 0) return false;
  }
  return true;
}

/// Section 9 noise handling: drops the lowest-support real edge below the
/// threshold whose removal keeps the automaton connected.
bool TryRemoveNoisyEdge(Gfa* gfa, int threshold) {
  struct Candidate {
    int support;
    int from;
    int to;
  };
  std::vector<Candidate> candidates;
  std::vector<int> nodes = gfa->LiveNodes();
  nodes.push_back(gfa->source());
  for (int u : nodes) {
    for (int v : gfa->Out(u)) {
      int support = gfa->EdgeSupport(u, v);
      if (support < threshold) candidates.push_back({support, u, v});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.support != b.support) return a.support < b.support;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  for (const Candidate& c : candidates) {
    int support = gfa->EdgeSupport(c.from, c.to);
    gfa->RemoveEdge(c.from, c.to);
    if (FullyConnected(*gfa)) return true;
    gfa->AddEdge(c.from, c.to, support);  // undo
  }
  return false;
}

}  // namespace

Result<ReRef> IdtdFromSoa(const Soa& input, const IdtdOptions& options) {
  Soa soa = options.noise_symbol_threshold > 0
                ? PruneSoaByStateSupport(input,
                                         options.noise_symbol_threshold)
                : input;
  if (soa.NumStates() == 0) {
    return Status::FailedPrecondition(
        "iDTD: the SOA has no states (language is empty or {ε})");
  }
  Gfa gfa = Gfa::FromSoa(soa);
  RewriteFixpoint(&gfa);

  int k = options.initial_k;
  int budget = options.max_repair_steps > 0
                   ? options.max_repair_steps
                   : 4 * soa.NumStates() * soa.NumStates() + 64;
  int steps = 0;
  obs::StageSpan repair_span(obs::Stage::kRepair);
  while (!gfa.IsFinal()) {
    if (++steps > budget) {
      if (!options.enable_full_merge_fallback) {
        return Status::NoEquivalentSore(
            "iDTD (restricted): repair budget exhausted before reaching a "
            "final form");
      }
      obs::CounterAdd(obs::Counter::kRepairFallbacks, 1);
      FullMergeFallback(&gfa);
      RewriteFixpoint(&gfa);
      break;
    }
    if (options.noise_edge_threshold > 0 &&
        TryRemoveNoisyEdge(&gfa, options.noise_edge_threshold)) {
      obs::CounterAdd(obs::Counter::kNoisyEdgesDropped, 1);
      RewriteFixpoint(&gfa);
      continue;
    }
    if (options.enable_disjunction_repair && EnableDisjunction(&gfa, k)) {
      obs::CounterAdd(obs::Counter::kRepairDisjunctions, 1);
      RewriteFixpoint(&gfa);
      continue;
    }
    if (options.enable_optional_repair && EnableOptional(&gfa, k)) {
      obs::CounterAdd(obs::Counter::kRepairOptionals, 1);
      RewriteFixpoint(&gfa);
      continue;
    }
    if (k < options.max_k) {
      ++k;
      continue;
    }
    if (!options.enable_full_merge_fallback) {
      return Status::NoEquivalentSore(
          "iDTD (restricted): no repair rule applies at k <= " +
          std::to_string(options.max_k));
    }
    obs::CounterAdd(obs::Counter::kRepairFallbacks, 1);
    FullMergeFallback(&gfa);
    RewriteFixpoint(&gfa);
    break;
  }
  if (!gfa.IsFinal()) {
    return Status::Internal(
        "iDTD: automaton did not reach the final form even after the "
        "full-merge fallback");
  }
  return Normalize(gfa.FinalExpression());
}

Result<ReRef> IdtdInfer(const std::vector<Word>& sample,
                        const IdtdOptions& options) {
  return IdtdFromSoa(Infer2T(sample), options);
}

}  // namespace condtd
