#ifndef CONDTD_IDTD_IDTD_H_
#define CONDTD_IDTD_IDTD_H_

#include <vector>

#include "automaton/soa.h"
#include "base/status.h"
#include "regex/ast.h"

namespace condtd {

/// Tuning knobs of Algorithm 2 (iDTD).
struct IdtdOptions {
  /// Fuzziness parameter of the repair rules. The paper's implementation
  /// fixes k = 2; ours escalates up to max_k before falling back.
  int initial_k = 2;
  int max_k = 8;
  /// Upper bound on repair iterations before the full-merge fallback
  /// kicks in (0 = automatic: 4·n² + 64). Guarantees Theorem 2's "always
  /// produces a SORE" unconditionally.
  int max_repair_steps = 0;
  /// When false, iDTD fails (kNoEquivalentSore) instead of running the
  /// full-merge fallback once repairs at k <= max_k are exhausted. The
  /// paper's implementation corresponds to initial_k = max_k = 2 with
  /// the fallback off; the library default is the stronger unrestricted
  /// variant.
  bool enable_full_merge_fallback = true;
  /// Ablation switches: individually disable the two repair rules
  /// (bench/repair_ablation quantifies what each contributes).
  bool enable_disjunction_repair = true;
  bool enable_optional_repair = true;
  /// Section 9 noise handling: when rewrite gets stuck, real edges whose
  /// support is strictly below this threshold may be dropped (as long as
  /// the automaton stays connected) before repair rules are tried.
  /// 0 disables noise handling.
  int noise_edge_threshold = 0;
  /// Section 9's "obvious way": states whose symbol support is below
  /// this threshold are removed from the SOA before rewriting (this is
  /// what eliminates low-support intruder elements entirely — edge
  /// pruning alone cannot disconnect a node). 0 disables it.
  int noise_symbol_threshold = 0;
};

/// Algorithm 2: rewrite with repair rules. Always returns a SORE r with
/// L(soa) ⊆ L(r) (Theorem 2) — except for the stateless SOA, which has
/// no SORE and fails with kFailedPrecondition. With noise handling
/// enabled the result may not be a superset (that is the point: noisy
/// observations are dropped).
Result<ReRef> IdtdFromSoa(const Soa& soa, const IdtdOptions& options = {});

/// 2T-INF on `sample` followed by IdtdFromSoa.
Result<ReRef> IdtdInfer(const std::vector<Word>& sample,
                        const IdtdOptions& options = {});

}  // namespace condtd

#endif  // CONDTD_IDTD_IDTD_H_
