#ifndef CONDTD_CHECK_PROPERTY_H_
#define CONDTD_CHECK_PROPERTY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "check/oracles.h"

namespace condtd {

/// Configuration of one property run. Defaults match the checked-in test
/// suite; the base seed can be overridden at runtime with the
/// CONDTD_PROPERTY_SEED environment variable (see SeedFromEnv).
struct PropertyOptions {
  /// Base seed of the run. Instance i derives its own seed via
  /// InstanceSeed, and instance 0 uses the base seed verbatim — so the
  /// seed printed with a failure reproduces it directly as a 1-instance
  /// run.
  uint64_t seed = 20060912;  // the paper's VLDB 2006 publication
  /// Random target-RE instances per learner.
  int instances = 500;
  /// Alphabet-size range of the random targets.
  int min_symbols = 2;
  int max_symbols = 8;
  /// Random derivations appended beyond the covering sample.
  int extra_words = 12;
  /// Learner re-runs allowed while shrinking one failure.
  int shrink_budget = 200;
};

/// One property violation, with everything needed to reproduce and
/// debug it: the instance seed (re-run with CONDTD_PROPERTY_SEED set to
/// it and instances=1), the violated oracle, the random target and the
/// (shrunk) sample.
struct PropertyFailure {
  std::string learner;
  int instance = 0;
  uint64_t seed = 0;
  std::string oracle;
  std::string detail;
  std::string target;
  std::vector<std::string> sample;
};

/// The seed of instance `i` under base seed `base`. Instance 0 is the
/// base seed itself; later instances use a splitmix64-style mix.
uint64_t InstanceSeed(uint64_t base, int instance);

/// Reads CONDTD_PROPERTY_SEED (decimal uint64) from the environment, or
/// returns `fallback` when unset/unparseable.
uint64_t SeedFromEnv(uint64_t fallback);

/// The one-line reproduction recipe printed with every failure.
std::string ReproLine(const PropertyFailure& failure);

/// Full multi-line failure report.
std::string FailureToString(const PropertyFailure& failure);

/// Runs `options.instances` random-target trials of the registered
/// learner `learner_name` through its oracle table (sample inclusion for
/// every learner; one-unambiguity, SORE/CHARE validity, Theorem 1 SOA
/// equivalence and covering-sample language equivalence where the
/// algorithm guarantees them). Returns all failures, shrunk where the
/// violated oracle is sample-monotone; empty means the property held.
std::vector<PropertyFailure> RunLearnerProperty(
    std::string_view learner_name, const PropertyOptions& options);

/// Interleaving-target property: random SIRE targets (2–3 disjoint
/// random-SORE factors under a top-level `&`) sampled into word sets;
/// the isore and sire learners must satisfy sample inclusion,
/// one-unambiguity, SIRE validity and conciseness dominance over their
/// baselines on every instance.
std::vector<PropertyFailure> RunInterleavingProperty(
    const PropertyOptions& options);

/// Merge-algebra property: random shard partitions of random samples
/// must satisfy CheckMergeLaws.
std::vector<PropertyFailure> RunMergeLawProperty(
    const PropertyOptions& options);

/// Ingestion-path property: random DTDs generate random document sets;
/// DOM, streaming and parallel ingestion must infer byte-identical DTDs
/// (CheckIngestionEquivalence).
std::vector<PropertyFailure> RunIngestionProperty(
    const PropertyOptions& options);

/// Round-trip property: random DTDs must survive WriteDtd → ParseDtd
/// unchanged (CheckDtdRoundTrip).
std::vector<PropertyFailure> RunRoundTripProperty(
    const PropertyOptions& options);

/// Dedup-cache property: random document sets, with truncated (broken)
/// variants interleaved, must fold to byte-identical DTDs and SaveState
/// text through the flat word cache and the legacy map oracle, and the
/// rejected documents must leave no residue
/// (CheckDedupCacheEquivalence).
std::vector<PropertyFailure> RunDedupCacheProperty(
    const PropertyOptions& options);

}  // namespace condtd

#endif  // CONDTD_CHECK_PROPERTY_H_
