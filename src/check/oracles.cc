#include "check/oracles.h"

#include <algorithm>
#include <utility>

#include "automaton/dfa.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "infer/parallel.h"
#include "infer/streaming.h"
#include "regex/determinism.h"
#include "regex/equivalence.h"
#include "regex/matcher.h"
#include "regex/properties.h"

namespace condtd {

namespace {

std::string Render(const ReRef& re, const Alphabet& alphabet) {
  return ToString(re, alphabet, PrintStyle::kParseable);
}

std::string RenderWord(const Word& word, const Alphabet& alphabet) {
  if (word.empty()) return "<empty word>";
  return alphabet.WordToString(word);
}

int AlphabetSizeOf(const ReRef& re, const Soa& soa) {
  Symbol max_sym = -1;
  for (Symbol s : SymbolsOf(re)) max_sym = std::max(max_sym, s);
  for (int q = 0; q < soa.NumStates(); ++q) {
    max_sym = std::max(max_sym, soa.LabelOf(q));
  }
  return static_cast<int>(max_sym) + 1;
}

}  // namespace

OracleResult CheckSampleInclusion(const ReRef& inferred,
                                  const std::vector<Word>& sample,
                                  const Alphabet& alphabet) {
  Matcher matcher(inferred);
  for (const Word& word : sample) {
    if (!matcher.Matches(word)) {
      return OracleResult::Fail("inferred expression " +
                                Render(inferred, alphabet) +
                                " rejects sample word '" +
                                RenderWord(word, alphabet) + "'");
    }
  }
  return OracleResult::Pass();
}

OracleResult CheckDeterminism(const ReRef& re, const Alphabet& alphabet) {
  if (!IsDeterministic(re)) {
    return OracleResult::Fail("expression " + Render(re, alphabet) +
                              " is not one-unambiguous");
  }
  return OracleResult::Pass();
}

OracleResult CheckSoreValidity(const ReRef& re, const Alphabet& alphabet) {
  if (!IsSore(re)) {
    return OracleResult::Fail("expression " + Render(re, alphabet) +
                              " is not a SORE");
  }
  return OracleResult::Pass();
}

OracleResult CheckChareValidity(const ReRef& re, const Alphabet& alphabet) {
  if (!IsChare(re)) {
    return OracleResult::Fail("expression " + Render(re, alphabet) +
                              " is not a CHARE");
  }
  return OracleResult::Pass();
}

OracleResult CheckSireValidity(const ReRef& re, const Alphabet& alphabet) {
  if (!IsSire(re)) {
    return OracleResult::Fail("expression " + Render(re, alphabet) +
                              " is not a SIRE (a SORE, or a top-level "
                              "'&' of disjoint SOREs)");
  }
  return OracleResult::Pass();
}

OracleResult CheckConcisenessDominance(const ReRef& candidate,
                                       const ReRef& baseline,
                                       const Alphabet& alphabet) {
  int64_t candidate_tokens = CountTokens(candidate);
  int64_t baseline_tokens = CountTokens(baseline);
  if (candidate_tokens > baseline_tokens) {
    return OracleResult::Fail(
        "candidate " + Render(candidate, alphabet) + " has " +
        std::to_string(candidate_tokens) + " tokens, more than the " +
        std::to_string(baseline_tokens) + " of baseline " +
        Render(baseline, alphabet));
  }
  OracleResult inclusion =
      CheckLanguageInclusion(candidate, baseline, alphabet);
  if (!inclusion.passed) {
    return OracleResult::Fail("candidate generalizes beyond the baseline: " +
                              inclusion.detail);
  }
  return OracleResult::Pass();
}

OracleResult CheckLanguageInclusion(const ReRef& sub, const ReRef& super,
                                    const Alphabet& alphabet) {
  Result<Word> witness = FindInclusionCounterexample(sub, super);
  if (witness.ok()) {
    return OracleResult::Fail(
        "L(" + Render(sub, alphabet) + ") ⊄ L(" + Render(super, alphabet) +
        "): missing word '" + RenderWord(witness.value(), alphabet) + "'");
  }
  if (witness.status().code() != StatusCode::kNotFound) {
    return OracleResult::Fail("inclusion check failed: " +
                              witness.status().ToString());
  }
  return OracleResult::Pass();
}

OracleResult CheckLanguageEquivalence(const ReRef& a, const ReRef& b,
                                      const Alphabet& alphabet) {
  Result<Word> witness = FindDistinguishingWord(a, b);
  if (witness.ok()) {
    return OracleResult::Fail(
        "L(" + Render(a, alphabet) + ") ≠ L(" + Render(b, alphabet) +
        "): distinguishing word '" +
        RenderWord(witness.value(), alphabet) + "'");
  }
  if (witness.status().code() != StatusCode::kNotFound) {
    return OracleResult::Fail("equivalence check failed: " +
                              witness.status().ToString());
  }
  return OracleResult::Pass();
}

OracleResult CheckSoaEquivalence(const ReRef& re, const Soa& soa,
                                 const Alphabet& alphabet) {
  int n = AlphabetSizeOf(re, soa);
  if (n == 0) n = 1;
  Dfa re_dfa = CompileToDfa(re, n);
  Dfa soa_dfa = Dfa::FromNfa(soa.ToNfa(), n);
  Result<Word> witness = FindDistinguishingWordDfa(re_dfa, soa_dfa);
  if (witness.ok()) {
    return OracleResult::Fail("L(" + Render(re, alphabet) +
                              ") differs from the SOA language on '" +
                              RenderWord(witness.value(), alphabet) + "'");
  }
  if (witness.status().code() != StatusCode::kNotFound) {
    return OracleResult::Fail("SOA equivalence check failed: " +
                              witness.status().ToString());
  }
  return OracleResult::Pass();
}

OracleResult CheckDtdRoundTrip(const Dtd& dtd, const Alphabet& alphabet) {
  std::string text = WriteDtd(dtd, alphabet);
  Alphabet reparsed_alphabet;
  std::string root_name =
      dtd.root == kInvalidSymbol ? "" : alphabet.Name(dtd.root);
  Result<Dtd> reparsed = ParseDtd(text, &reparsed_alphabet, root_name);
  if (!reparsed.ok()) {
    return OracleResult::Fail("written DTD failed to re-parse: " +
                              reparsed.status().ToString() + "\n" + text);
  }
  // Map the re-parsed symbols back onto the original alphabet by name.
  std::map<Symbol, Symbol> back;
  for (Symbol s = 0; s < reparsed_alphabet.size(); ++s) {
    Symbol original = alphabet.Find(reparsed_alphabet.Name(s));
    if (original == kInvalidSymbol) {
      return OracleResult::Fail("re-parsed DTD names unknown element '" +
                                reparsed_alphabet.Name(s) + "'");
    }
    back[s] = original;
  }
  auto remap = [&](Symbol s) { return back.at(s); };
  if (dtd.root != kInvalidSymbol &&
      remap(reparsed->root) != dtd.root) {
    return OracleResult::Fail(
        "root changed across the round trip: wrote '" +
        alphabet.Name(dtd.root) + "', re-parsed '" +
        reparsed_alphabet.Name(reparsed->root) + "'");
  }
  if (reparsed->elements.size() != dtd.elements.size()) {
    return OracleResult::Fail(
        "element count changed across the round trip: wrote " +
        std::to_string(dtd.elements.size()) + ", re-parsed " +
        std::to_string(reparsed->elements.size()));
  }
  for (const auto& [symbol, model] : dtd.elements) {
    std::string element_name = alphabet.Name(symbol);
    Symbol reparsed_symbol = reparsed_alphabet.Find(element_name);
    auto it = reparsed_symbol == kInvalidSymbol
                  ? reparsed->elements.end()
                  : reparsed->elements.find(reparsed_symbol);
    if (it == reparsed->elements.end()) {
      return OracleResult::Fail("element '" + element_name +
                                "' lost across the round trip");
    }
    const ContentModel& theirs = it->second;
    if (theirs.kind != model.kind) {
      return OracleResult::Fail("content kind of '" + element_name +
                                "' changed across the round trip");
    }
    if (model.kind == ContentKind::kChildren) {
      ReRef mapped = RemapSymbols(theirs.regex, back);
      if (!StructurallyEqual(mapped, model.regex)) {
        return OracleResult::Fail(
            "content model of '" + element_name +
            "' changed across the round trip: wrote " +
            Render(model.regex, alphabet) + ", re-parsed " +
            Render(mapped, alphabet));
      }
    } else if (model.kind == ContentKind::kMixed) {
      std::vector<Symbol> ours = model.mixed_symbols;
      std::vector<Symbol> mapped;
      for (Symbol s : theirs.mixed_symbols) mapped.push_back(remap(s));
      std::sort(ours.begin(), ours.end());
      std::sort(mapped.begin(), mapped.end());
      if (ours != mapped) {
        return OracleResult::Fail("mixed-content symbols of '" +
                                  element_name +
                                  "' changed across the round trip");
      }
    }
  }
  for (const auto& [symbol, defs] : dtd.attributes) {
    if (defs.empty()) continue;
    std::string element_name = alphabet.Name(symbol);
    Symbol reparsed_symbol = reparsed_alphabet.Find(element_name);
    auto it = reparsed_symbol == kInvalidSymbol
                  ? reparsed->attributes.end()
                  : reparsed->attributes.find(reparsed_symbol);
    if (it == reparsed->attributes.end() ||
        it->second.size() != defs.size()) {
      return OracleResult::Fail("attribute list of '" + element_name +
                                "' changed across the round trip");
    }
    for (size_t i = 0; i < defs.size(); ++i) {
      const Dtd::AttributeDef& ours = defs[i];
      const Dtd::AttributeDef& theirs = it->second[i];
      if (ours.name != theirs.name || ours.type != theirs.type ||
          ours.default_decl != theirs.default_decl) {
        return OracleResult::Fail("attribute '" + ours.name + "' of '" +
                                  element_name +
                                  "' changed across the round trip");
      }
    }
  }
  return OracleResult::Pass();
}

namespace {

OracleResult CompareSoas(const Soa& a, const Soa& b,
                         const Alphabet& alphabet,
                         const std::string& element_name) {
  if (!a.Equals(b)) {
    return OracleResult::Fail("SOA structure of '" + element_name +
                              "' differs:\n" + a.ToString(alphabet) +
                              "vs\n" + b.ToString(alphabet));
  }
  // Structures agree; compare supports by symbol label so state
  // numbering (which depends on fold/merge order) does not matter.
  for (int q = 0; q < a.NumStates(); ++q) {
    Symbol label = a.LabelOf(q);
    int p = b.StateOf(label);
    std::string state_name = alphabet.Name(label);
    if (a.StateSupport(q) != b.StateSupport(p)) {
      return OracleResult::Fail("SOA state support of '" + state_name +
                                "' in '" + element_name + "' differs: " +
                                std::to_string(a.StateSupport(q)) + " vs " +
                                std::to_string(b.StateSupport(p)));
    }
    if (a.InitialSupport(q) != b.InitialSupport(p)) {
      return OracleResult::Fail("SOA initial support of '" + state_name +
                                "' in '" + element_name + "' differs");
    }
    if (a.FinalSupport(q) != b.FinalSupport(p)) {
      return OracleResult::Fail("SOA final support of '" + state_name +
                                "' in '" + element_name + "' differs");
    }
    for (int to : a.Successors(q)) {
      int to_b = b.StateOf(a.LabelOf(to));
      if (a.EdgeSupport(q, to) != b.EdgeSupport(p, to_b)) {
        return OracleResult::Fail(
            "SOA edge support " + state_name + "→" +
            alphabet.Name(a.LabelOf(to)) + " in '" + element_name +
            "' differs: " + std::to_string(a.EdgeSupport(q, to)) + " vs " +
            std::to_string(b.EdgeSupport(p, to_b)));
      }
    }
  }
  if (a.empty_support() != b.empty_support()) {
    return OracleResult::Fail("SOA empty-word support of '" + element_name +
                              "' differs");
  }
  return OracleResult::Pass();
}

}  // namespace

OracleResult CheckSummaryEquivalence(const SummaryStore& a,
                                     const SummaryStore& b,
                                     const Alphabet& alphabet) {
  if (a.root_counts() != b.root_counts()) {
    return OracleResult::Fail("root counts differ");
  }
  for (Symbol s = 0; s < alphabet.size(); ++s) {
    if (a.SeenAsChild(s) != b.SeenAsChild(s)) {
      return OracleResult::Fail("seen-as-child mark of '" +
                                alphabet.Name(s) + "' differs");
    }
  }
  if (a.elements().size() != b.elements().size()) {
    return OracleResult::Fail("element sets differ in size: " +
                              std::to_string(a.elements().size()) + " vs " +
                              std::to_string(b.elements().size()));
  }
  for (const auto& [symbol, ours] : a.elements()) {
    std::string element_name = alphabet.Name(symbol);
    const ElementSummary* theirs = b.Find(symbol);
    if (theirs == nullptr) {
      return OracleResult::Fail("element '" + element_name +
                                "' missing from one store");
    }
    if (ours.occurrences != theirs->occurrences) {
      return OracleResult::Fail(
          "occurrences of '" + element_name + "' differ: " +
          std::to_string(ours.occurrences) + " vs " +
          std::to_string(theirs->occurrences));
    }
    if (ours.has_text != theirs->has_text) {
      return OracleResult::Fail("has_text of '" + element_name +
                                "' differs");
    }
    if (ours.attribute_counts != theirs->attribute_counts) {
      return OracleResult::Fail("attribute counts of '" + element_name +
                                "' differ");
    }
    OracleResult soa =
        CompareSoas(ours.soa, theirs->soa, alphabet, element_name);
    if (!soa.passed) return soa;
    if (ours.crx.edges() != theirs->crx.edges() ||
        ours.crx.histograms() != theirs->crx.histograms() ||
        ours.crx.empty_count() != theirs->crx.empty_count() ||
        ours.crx.num_words() != theirs->crx.num_words()) {
      return OracleResult::Fail("CRX summaries of '" + element_name +
                                "' differ");
    }
    if (ours.words_overflowed != theirs->words_overflowed) {
      return OracleResult::Fail("reservoir overflow flag of '" +
                                element_name + "' differs");
    }
    if (ours.words_complete != theirs->words_complete) {
      return OracleResult::Fail("reservoir completeness flag of '" +
                                element_name + "' differs");
    }
    if (!ours.words_overflowed &&
        ours.retained_words != theirs->retained_words) {
      return OracleResult::Fail("word reservoirs of '" + element_name +
                                "' differ");
    }
  }
  return OracleResult::Pass();
}

namespace {

/// Folds one shard of child words for `element` into a fresh store.
SummaryStore FoldShard(const std::vector<Word>& words, Symbol element,
                       const SummaryLimits& limits) {
  SummaryStore store(limits);
  ElementSummary& summary = store.Ensure(element);
  for (const Word& word : words) {
    summary.AddChildWord(word, 1, limits);
    summary.occurrences += 1;
    for (Symbol child : word) store.MarkSeenAsChild(child);
  }
  store.AddRoot(element, static_cast<int64_t>(words.size()));
  return store;
}

std::vector<Symbol> IdentityRemap(const Alphabet& alphabet) {
  std::vector<Symbol> remap(alphabet.size());
  for (Symbol s = 0; s < alphabet.size(); ++s) remap[s] = s;
  return remap;
}

}  // namespace

OracleResult CheckMergeLaws(const std::vector<std::vector<Word>>& shards,
                            Symbol element, const Alphabet& alphabet,
                            const SummaryLimits& limits) {
  std::vector<Word> all;
  for (const std::vector<Word>& shard : shards) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  SummaryStore sequential = FoldShard(all, element, limits);
  std::vector<Symbol> remap = IdentityRemap(alphabet);

  // Left fold: ((s0 ⊕ s1) ⊕ s2) ⊕ ...
  SummaryStore left(limits);
  for (const std::vector<Word>& shard : shards) {
    SummaryStore store = FoldShard(shard, element, limits);
    left.MergeFrom(store, remap);
  }
  OracleResult check = CheckSummaryEquivalence(sequential, left, alphabet);
  if (!check.passed) {
    return OracleResult::Fail("left-fold merge != sequential fold: " +
                              check.detail);
  }

  // Right fold: s0 ⊕ (s1 ⊕ (s2 ⊕ ...)) — associativity.
  SummaryStore right(limits);
  for (size_t i = shards.size(); i > 0; --i) {
    SummaryStore store = FoldShard(shards[i - 1], element, limits);
    store.MergeFrom(right, remap);
    right = std::move(store);
  }
  check = CheckSummaryEquivalence(sequential, right, alphabet);
  if (!check.passed) {
    return OracleResult::Fail("right-fold merge != sequential fold: " +
                              check.detail);
  }

  // Reversed shard order — commutativity.
  SummaryStore reversed(limits);
  for (size_t i = shards.size(); i > 0; --i) {
    SummaryStore store = FoldShard(shards[i - 1], element, limits);
    reversed.MergeFrom(store, remap);
  }
  check = CheckSummaryEquivalence(sequential, reversed, alphabet);
  if (!check.passed) {
    return OracleResult::Fail("commuted merge != sequential fold: " +
                              check.detail);
  }
  return OracleResult::Pass();
}

OracleResult CheckIngestionEquivalence(
    const std::vector<std::string>& documents,
    const InferenceOptions& options, int jobs) {
  // DOM path.
  InferenceOptions dom_options = options;
  dom_options.streaming_ingest = false;
  DtdInferrer dom(dom_options);
  for (const std::string& doc : documents) {
    Status st = dom.AddXml(doc);
    if (!st.ok()) {
      return OracleResult::Fail("DOM ingestion failed: " + st.ToString());
    }
  }
  Result<Dtd> dom_dtd = dom.InferDtd();
  if (!dom_dtd.ok()) {
    return OracleResult::Fail("DOM inference failed: " +
                              dom_dtd.status().ToString());
  }
  std::string dom_text = WriteDtd(dom_dtd.value(), *dom.alphabet());

  // Streaming SAX fold with cross-document word deduplication.
  DtdInferrer streaming(options);
  {
    StreamingFolder folder(&streaming);
    for (const std::string& doc : documents) {
      Status st = folder.AddXml(doc);
      if (!st.ok()) {
        return OracleResult::Fail("streaming ingestion failed: " +
                                  st.ToString());
      }
    }
  }
  Result<Dtd> streaming_dtd = streaming.InferDtd();
  if (!streaming_dtd.ok()) {
    return OracleResult::Fail("streaming inference failed: " +
                              streaming_dtd.status().ToString());
  }
  std::string streaming_text =
      WriteDtd(streaming_dtd.value(), *streaming.alphabet());
  if (streaming_text != dom_text) {
    return OracleResult::Fail("streaming DTD differs from DOM DTD:\n" +
                              streaming_text + "vs\n" + dom_text);
  }

  // Sharded parallel ingestion.
  ParallelDtdInferrer parallel(options, jobs);
  for (const std::string& doc : documents) parallel.AddXml(doc);
  Result<Dtd> parallel_dtd = parallel.InferDtd();
  if (!parallel_dtd.ok()) {
    return OracleResult::Fail("parallel inference failed: " +
                              parallel_dtd.status().ToString());
  }
  std::string parallel_text =
      WriteDtd(parallel_dtd.value(), *parallel.merged()->alphabet());
  if (parallel_text != dom_text) {
    return OracleResult::Fail("parallel (jobs=" + std::to_string(jobs) +
                              ") DTD differs from DOM DTD:\n" +
                              parallel_text + "vs\n" + dom_text);
  }
  return OracleResult::Pass();
}

namespace {

/// One streaming run for CheckDedupCacheEquivalence: folds `documents`,
/// interleaving each `broken` document after its clean counterpart (the
/// parse failure must roll back without a trace), then returns the
/// inferred DTD and SaveState text.
OracleResult RunDedupPath(const std::vector<std::string>& documents,
                          const std::vector<std::string>& broken,
                          const InferenceOptions& options, bool legacy,
                          std::string* dtd_text, std::string* state_text) {
  const char* label = legacy ? "legacy" : "flat";
  DtdInferrer inferrer(options);
  {
    StreamingFolder::Options folder_options;
    folder_options.legacy_dedup_cache = legacy;
    folder_options.ignore_dedup_env = true;
    StreamingFolder folder(&inferrer, folder_options);
    for (size_t d = 0; d < documents.size(); ++d) {
      Status st = folder.AddXml(documents[d]);
      if (!st.ok()) {
        return OracleResult::Fail(std::string(label) +
                                  "-cache ingestion failed: " +
                                  st.ToString());
      }
      if (d < broken.size() && !broken[d].empty()) {
        Status broken_status = folder.AddXml(broken[d]);
        if (broken_status.ok()) {
          return OracleResult::Fail(std::string(label) +
                                    "-cache path accepted a broken "
                                    "document meant to test rollback");
        }
      }
    }
    if (folder.using_legacy_cache() != legacy) {
      return OracleResult::Fail(
          "folder cache selection ignored Options::legacy_dedup_cache");
    }
  }
  Result<Dtd> dtd = inferrer.InferDtd();
  if (!dtd.ok()) {
    return OracleResult::Fail(std::string(label) + "-cache inference "
                              "failed: " + dtd.status().ToString());
  }
  *dtd_text = WriteDtd(dtd.value(), *inferrer.alphabet());
  *state_text = inferrer.SaveState();
  return OracleResult::Pass();
}

}  // namespace

OracleResult CheckDedupCacheEquivalence(
    const std::vector<std::string>& documents,
    const std::vector<std::string>& broken_documents,
    const InferenceOptions& options) {
  std::string flat_dtd, flat_state;
  OracleResult run = RunDedupPath(documents, broken_documents, options,
                                  /*legacy=*/false, &flat_dtd, &flat_state);
  if (!run.passed) return run;
  std::string legacy_dtd, legacy_state;
  run = RunDedupPath(documents, broken_documents, options, /*legacy=*/true,
                     &legacy_dtd, &legacy_state);
  if (!run.passed) return run;
  if (flat_dtd != legacy_dtd) {
    return OracleResult::Fail("flat-cache DTD differs from legacy-cache "
                              "DTD:\n" + flat_dtd + "vs\n" + legacy_dtd);
  }
  if (flat_state != legacy_state) {
    return OracleResult::Fail(
        "flat-cache SaveState differs from legacy-cache SaveState (DTDs "
        "agree — the divergence is in SOA state order, supports, or "
        "retained samples)");
  }
  // Rollback leaves no residue: the same clean documents without the
  // broken interleavings must reach the identical state.
  if (!broken_documents.empty()) {
    std::string clean_dtd, clean_state;
    run = RunDedupPath(documents, {}, options, /*legacy=*/false,
                       &clean_dtd, &clean_state);
    if (!run.passed) return run;
    if (clean_state != flat_state) {
      return OracleResult::Fail(
          "rejected documents perturbed the flat-cache state: a run "
          "with broken documents interleaved differs from the "
          "clean-only run");
    }
  }
  return OracleResult::Pass();
}

}  // namespace condtd
