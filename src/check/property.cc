#include "check/property.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "base/rng.h"
#include "gen/random_dtd.h"
#include "gen/random_regex.h"
#include "gen/regex_sampler.h"
#include "gen/representative.h"
#include "gen/xml_gen.h"
#include "learn/learner.h"
#include "xml/dom.h"

namespace condtd {

uint64_t InstanceSeed(uint64_t base, int instance) {
  if (instance == 0) return base;
  // splitmix64 of base + i, so instance streams are independent while
  // instance 0 reproduces a printed seed verbatim.
  uint64_t z = base + static_cast<uint64_t>(instance) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t SeedFromEnv(uint64_t fallback) {
  const char* env = std::getenv("CONDTD_PROPERTY_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  uint64_t value = 0;
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return fallback;
    value = value * 10 + static_cast<uint64_t>(*p - '0');
  }
  return value;
}

std::string ReproLine(const PropertyFailure& failure) {
  return "reproduce with: CONDTD_PROPERTY_SEED=" +
         std::to_string(failure.seed) + " (learner=" + failure.learner +
         ", oracle=" + failure.oracle + ")";
}

std::string FailureToString(const PropertyFailure& failure) {
  std::string out = "property failure: learner=" + failure.learner +
                    " instance=" + std::to_string(failure.instance) +
                    " oracle=" + failure.oracle + "\n  " + failure.detail +
                    "\n  target: " + failure.target + "\n  sample (" +
                    std::to_string(failure.sample.size()) + " words):";
  for (const std::string& word : failure.sample) {
    out += "\n    '" + word + "'";
  }
  out += "\n  " + ReproLine(failure);
  return out;
}

namespace {

/// One derived trial: a random SORE/CHARE target over a fresh alphabet
/// plus a sample of L(target). `covering` samples include the full
/// representative word set (Section 4), so 2T-INF recovers the target's
/// SOA exactly and the equivalence theorems apply; non-covering samples
/// drop part of it, exercising the repair/generalization paths.
struct TrialCase {
  Alphabet alphabet;
  ReRef target;
  std::vector<Word> sample;
  bool covering = false;
};

TrialCase MakeTrial(uint64_t seed, const PropertyOptions& options) {
  Rng rng(seed);
  TrialCase trial;
  int span = options.max_symbols - options.min_symbols + 1;
  int num_symbols =
      options.min_symbols +
      static_cast<int>(rng.NextBelow(static_cast<uint64_t>(span)));
  for (int i = 0; i < num_symbols; ++i) {
    trial.alphabet.Intern(std::string(1, static_cast<char>('a' + i)));
  }
  trial.target = rng.Bernoulli(0.25) ? RandomChare(num_symbols, &rng)
                                     : RandomSore(num_symbols, &rng);
  trial.covering = rng.Bernoulli(0.5);
  std::vector<Word> representative = RepresentativeSample(trial.target);
  if (trial.covering) {
    trial.sample = representative;
  } else {
    for (const Word& word : representative) {
      if (rng.Bernoulli(0.5)) trial.sample.push_back(word);
    }
  }
  std::vector<Word> extra =
      SampleWords(trial.target, options.extra_words, &rng);
  trial.sample.insert(trial.sample.end(), extra.begin(), extra.end());
  // Engine contract: learners only ever see elements with at least one
  // non-trivial child word. A representative sample of a target with
  // >= 1 symbol always contains one.
  bool has_nonempty = false;
  for (const Word& word : trial.sample) {
    if (!word.empty()) has_nonempty = true;
  }
  if (!has_nonempty) {
    for (const Word& word : representative) {
      if (!word.empty()) {
        trial.sample.push_back(word);
        break;
      }
    }
  }
  return trial;
}

/// Reservoir capacity used when the learner consumes full words. Larger
/// than any generated sample, so overflow never masks a property.
constexpr int kReservoirCapacity = 4096;

ElementSummary BuildSummary(const std::vector<Word>& sample,
                            bool with_reservoir) {
  SummaryLimits limits;
  limits.max_retained_words = with_reservoir ? kReservoirCapacity : 0;
  ElementSummary summary;
  summary.words_complete = with_reservoir;
  for (const Word& word : sample) {
    summary.AddChildWord(word, 1, limits);
    summary.occurrences += 1;
  }
  return summary;
}

/// Identifier-keyed dispatch over the sample-monotone oracles, shared by
/// the first check and the shrinker (which must re-establish the SAME
/// violation on every reduced sample).
OracleResult CheckShrinkable(const std::string& oracle, const ReRef& result,
                             const std::vector<Word>& sample,
                             const ElementSummary& summary,
                             const Alphabet& alphabet) {
  if (oracle == "sample-inclusion") {
    return CheckSampleInclusion(result, sample, alphabet);
  }
  if (oracle == "determinism") return CheckDeterminism(result, alphabet);
  if (oracle == "sore-validity") return CheckSoreValidity(result, alphabet);
  if (oracle == "chare-validity") {
    return CheckChareValidity(result, alphabet);
  }
  if (oracle == "sire-validity") return CheckSireValidity(result, alphabet);
  if (oracle == "soa-equivalence") {
    return CheckSoaEquivalence(result, summary.soa, alphabet);
  }
  return OracleResult::Pass();
}

/// Greedy word-removal shrinking: drop one sample word at a time as long
/// as the learner still succeeds and the same oracle still fails.
/// `budget` bounds learner re-runs. The engine contract (>= 1 non-empty
/// word) is preserved.
std::vector<Word> ShrinkSample(const Learner& learner,
                               const LearnOptions& learn_options,
                               const std::string& oracle,
                               std::vector<Word> sample,
                               const Alphabet& alphabet, int budget) {
  bool reservoir = learner.needs_full_words();
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (size_t i = 0; i < sample.size() && budget > 0; ++i) {
      std::vector<Word> reduced = sample;
      reduced.erase(reduced.begin() + static_cast<ptrdiff_t>(i));
      bool has_nonempty = false;
      for (const Word& word : reduced) {
        if (!word.empty()) has_nonempty = true;
      }
      if (!has_nonempty) continue;
      ElementSummary summary = BuildSummary(reduced, reservoir);
      --budget;
      Result<ReRef> result = learner.Learn(summary, learn_options);
      if (!result.ok()) continue;
      if (CheckShrinkable(oracle, result.value(), reduced, summary,
                          alphabet)
              .passed) {
        continue;
      }
      sample = std::move(reduced);
      changed = true;
      --i;
    }
  }
  return sample;
}

std::vector<std::string> RenderSample(const std::vector<Word>& sample,
                                      const Alphabet& alphabet) {
  std::vector<std::string> out;
  out.reserve(sample.size());
  for (const Word& word : sample) {
    out.push_back(alphabet.WordToString(word));
  }
  return out;
}

PropertyFailure MakeFailure(const std::string& learner, int instance,
                            uint64_t seed, std::string oracle,
                            std::string detail, const TrialCase& trial,
                            const std::vector<Word>& sample) {
  PropertyFailure failure;
  failure.learner = learner;
  failure.instance = instance;
  failure.seed = seed;
  failure.oracle = std::move(oracle);
  failure.detail = std::move(detail);
  failure.target =
      ToString(trial.target, trial.alphabet, PrintStyle::kParseable);
  failure.sample = RenderSample(sample, trial.alphabet);
  return failure;
}

}  // namespace

std::vector<PropertyFailure> RunLearnerProperty(
    std::string_view learner_name, const PropertyOptions& options) {
  std::vector<PropertyFailure> failures;
  const Learner* learner = LearnerRegistry::Global().Find(learner_name);
  std::string name(learner_name);
  if (learner == nullptr) {
    PropertyFailure failure;
    failure.learner = name;
    failure.oracle = "registry";
    failure.detail = "learner '" + name + "' is not registered";
    failures.push_back(std::move(failure));
    return failures;
  }
  LearnOptions learn_options;
  bool interleaving = name == "isore" || name == "sire";
  bool checks_determinism = name == "idtd" || name == "rewrite" ||
                            name == "crx" || name == "auto" || interleaving;
  bool checks_sore = name == "idtd" || name == "rewrite";
  bool checks_chare = name == "crx";
  bool checks_soa = name == "rewrite";
  bool checks_covering_equivalence = name == "idtd" || name == "rewrite";
  // Baseline the interleaving learners dominate (fall back to, on
  // ordered data): idtd for isore, crx for sire.
  const Learner* dominance_baseline =
      !interleaving ? nullptr
                    : LearnerRegistry::Global().Find(
                          name == "isore" ? "idtd" : "crx");

  for (int i = 0; i < options.instances; ++i) {
    uint64_t seed = InstanceSeed(options.seed, i);
    TrialCase trial = MakeTrial(seed, options);
    ElementSummary summary =
        BuildSummary(trial.sample, learner->needs_full_words());
    Result<ReRef> result = learner->Learn(summary, learn_options);
    if (!result.ok()) {
      StatusCode code = result.status().code();
      bool acceptable =
          (name == "rewrite" && code == StatusCode::kNoEquivalentSore &&
           !trial.covering) ||
          (name == "xtract" && code == StatusCode::kResourceExhausted);
      if (!acceptable) {
        failures.push_back(MakeFailure(
            name, i, seed, "learner-error",
            (trial.covering ? "failed on a covering sample: "
                            : "failed: ") +
                result.status().ToString(),
            trial, trial.sample));
      }
      continue;
    }
    const ReRef& inferred = result.value();

    std::string violated;
    OracleResult check = CheckSampleInclusion(inferred, trial.sample,
                                              trial.alphabet);
    if (!check.passed) {
      violated = "sample-inclusion";
    } else if (checks_determinism &&
               !(check = CheckDeterminism(inferred, trial.alphabet))
                    .passed) {
      violated = "determinism";
    } else if (checks_sore &&
               !(check = CheckSoreValidity(inferred, trial.alphabet))
                    .passed) {
      violated = "sore-validity";
    } else if (checks_chare &&
               !(check = CheckChareValidity(inferred, trial.alphabet))
                    .passed) {
      violated = "chare-validity";
    } else if (checks_soa &&
               !(check = CheckSoaEquivalence(inferred, summary.soa,
                                             trial.alphabet))
                    .passed) {
      violated = "soa-equivalence";
    } else if (interleaving &&
               !(check = CheckSireValidity(inferred, trial.alphabet))
                    .passed) {
      violated = "sire-validity";
    }
    if (!violated.empty()) {
      std::vector<Word> shrunk =
          ShrinkSample(*learner, learn_options, violated, trial.sample,
                       trial.alphabet, options.shrink_budget);
      failures.push_back(MakeFailure(name, i, seed, violated, check.detail,
                                     trial, shrunk));
      continue;
    }

    // Covering samples pin the SOA to the target's (Section 4), so the
    // equivalence theorems apply; removing words breaks the
    // precondition, so these failures are reported unshrunk.
    if (trial.covering && checks_covering_equivalence) {
      check =
          CheckLanguageEquivalence(inferred, trial.target, trial.alphabet);
      if (!check.passed) {
        failures.push_back(MakeFailure(name, i, seed,
                                       "covering-equivalence", check.detail,
                                       trial, trial.sample));
        continue;
      }
    }

    // Conciseness dominance vs the baseline inferred from the SAME
    // summary. The baseline depends on the sample, so shrinking would
    // change the property being checked — reported unshrunk.
    if (dominance_baseline != nullptr) {
      Result<ReRef> baseline =
          dominance_baseline->Learn(summary, learn_options);
      if (baseline.ok()) {
        check = CheckConcisenessDominance(inferred, baseline.value(),
                                          trial.alphabet);
        if (!check.passed) {
          failures.push_back(MakeFailure(name, i, seed,
                                         "conciseness-dominance",
                                         check.detail, trial, trial.sample));
        }
      }
    }
  }
  return failures;
}

std::vector<PropertyFailure> RunInterleavingProperty(
    const PropertyOptions& options) {
  std::vector<PropertyFailure> failures;
  const LearnerRegistry& registry = LearnerRegistry::Global();
  const Learner* learners[] = {registry.Find("isore"), registry.Find("sire")};
  LearnOptions learn_options;

  for (int i = 0; i < options.instances; ++i) {
    uint64_t seed = InstanceSeed(options.seed, i);
    Rng rng(seed);
    TrialCase trial;
    int num_symbols = 4 + static_cast<int>(rng.NextBelow(5));  // 4..8
    for (int s = 0; s < num_symbols; ++s) {
      trial.alphabet.Intern(std::string(1, static_cast<char>('a' + s)));
    }

    // Random SIRE target: split the alphabet into 2–3 contiguous runs
    // and put an independent random SORE over each run under one `&`.
    int num_factors = 2 + static_cast<int>(rng.NextBelow(2));  // 2..3
    std::vector<int> sizes(static_cast<size_t>(num_factors), 1);
    for (int extra = num_symbols - num_factors; extra > 0; --extra) {
      sizes[rng.NextBelow(static_cast<uint64_t>(num_factors))] += 1;
    }
    std::vector<ReRef> factors;
    int offset = 0;
    for (int size : sizes) {
      ReRef local = RandomSore(size, &rng);
      std::map<Symbol, Symbol> shift;
      for (Symbol s = 0; s < size; ++s) shift[s] = s + offset;
      factors.push_back(RemapSymbols(local, shift));
      offset += size;
    }
    trial.target = Re::Shuffle(std::move(factors));
    trial.covering = true;
    trial.sample = RepresentativeSample(trial.target);
    std::vector<Word> extra =
        SampleWords(trial.target, options.extra_words, &rng);
    trial.sample.insert(trial.sample.end(), extra.begin(), extra.end());

    for (const Learner* learner : learners) {
      if (learner == nullptr) {
        PropertyFailure failure;
        failure.learner = "interleaving";
        failure.oracle = "registry";
        failure.detail = "isore/sire learner is not registered";
        failures.push_back(std::move(failure));
        continue;
      }
      std::string name(learner->name());
      ElementSummary summary =
          BuildSummary(trial.sample, /*with_reservoir=*/true);
      Result<ReRef> result = learner->Learn(summary, learn_options);
      if (!result.ok()) {
        failures.push_back(MakeFailure(name, i, seed, "learner-error",
                                       "failed on an interleaving target: " +
                                           result.status().ToString(),
                                       trial, trial.sample));
        continue;
      }
      const ReRef& inferred = result.value();

      std::string violated;
      OracleResult check =
          CheckSampleInclusion(inferred, trial.sample, trial.alphabet);
      if (!check.passed) {
        violated = "sample-inclusion";
      } else if (!(check = CheckDeterminism(inferred, trial.alphabet))
                      .passed) {
        violated = "determinism";
      } else if (!(check = CheckSireValidity(inferred, trial.alphabet))
                      .passed) {
        violated = "sire-validity";
      }
      if (!violated.empty()) {
        std::vector<Word> shrunk =
            ShrinkSample(*learner, learn_options, violated, trial.sample,
                         trial.alphabet, options.shrink_budget);
        failures.push_back(MakeFailure(name, i, seed, violated, check.detail,
                                       trial, shrunk));
        continue;
      }

      const Learner* baseline_learner =
          registry.Find(name == "isore" ? "idtd" : "crx");
      Result<ReRef> baseline =
          baseline_learner->Learn(summary, learn_options);
      if (baseline.ok()) {
        check = CheckConcisenessDominance(inferred, baseline.value(),
                                          trial.alphabet);
        if (!check.passed) {
          failures.push_back(MakeFailure(name, i, seed,
                                         "conciseness-dominance",
                                         check.detail, trial, trial.sample));
        }
      }
    }
  }
  return failures;
}

std::vector<PropertyFailure> RunMergeLawProperty(
    const PropertyOptions& options) {
  std::vector<PropertyFailure> failures;
  for (int i = 0; i < options.instances; ++i) {
    uint64_t seed = InstanceSeed(options.seed, i);
    TrialCase trial = MakeTrial(seed, options);
    Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
    Symbol element = trial.alphabet.Intern("elem");
    int num_shards = 2 + static_cast<int>(rng.NextBelow(3));
    std::vector<std::vector<Word>> shards(
        static_cast<size_t>(num_shards));
    for (const Word& word : trial.sample) {
      shards[rng.NextBelow(static_cast<uint64_t>(num_shards))].push_back(
          word);
    }
    SummaryLimits limits;
    // Alternate reservoir-off / small-reservoir (exercises the overflow
    // flag's merge-order invariance).
    limits.max_retained_words = rng.Bernoulli(0.5) ? 0 : 8;
    OracleResult check =
        CheckMergeLaws(shards, element, trial.alphabet, limits);
    if (!check.passed) {
      failures.push_back(MakeFailure("merge-laws", i, seed, "merge-laws",
                                     check.detail, trial, trial.sample));
    }
  }
  return failures;
}

std::vector<PropertyFailure> RunIngestionProperty(
    const PropertyOptions& options) {
  std::vector<PropertyFailure> failures;
  for (int i = 0; i < options.instances; ++i) {
    uint64_t seed = InstanceSeed(options.seed, i);
    Rng rng(seed);
    Alphabet alphabet;
    RandomDtdOptions dtd_options;
    dtd_options.num_elements =
        3 + static_cast<int>(rng.NextBelow(5));
    Dtd dtd = RandomDtd(&alphabet, &rng, dtd_options);
    int num_docs = 3 + static_cast<int>(rng.NextBelow(6));
    std::vector<std::string> documents;
    for (int d = 0; d < num_docs; ++d) {
      Result<XmlDocument> doc = GenerateDocument(dtd, alphabet, &rng);
      if (!doc.ok()) break;
      documents.push_back(doc->ToXml());
    }
    if (static_cast<int>(documents.size()) != num_docs) {
      PropertyFailure failure;
      failure.learner = "ingestion";
      failure.instance = i;
      failure.seed = seed;
      failure.oracle = "generation";
      failure.detail = "document generation failed for the random DTD";
      failures.push_back(std::move(failure));
      continue;
    }
    int jobs = 2 + static_cast<int>(rng.NextBelow(3));
    OracleResult check =
        CheckIngestionEquivalence(documents, InferenceOptions{}, jobs);
    if (!check.passed) {
      PropertyFailure failure;
      failure.learner = "ingestion";
      failure.instance = i;
      failure.seed = seed;
      failure.oracle = "ingestion-equivalence";
      failure.detail = check.detail;
      failure.sample = documents;
      failures.push_back(std::move(failure));
    }
  }
  return failures;
}

std::vector<PropertyFailure> RunRoundTripProperty(
    const PropertyOptions& options) {
  std::vector<PropertyFailure> failures;
  for (int i = 0; i < options.instances; ++i) {
    uint64_t seed = InstanceSeed(options.seed, i);
    Rng rng(seed);
    Alphabet alphabet;
    RandomDtdOptions dtd_options;
    dtd_options.num_elements =
        3 + static_cast<int>(rng.NextBelow(6));
    Dtd dtd = RandomDtd(&alphabet, &rng, dtd_options);
    // Sprinkle attribute lists over the elements so <!ATTLIST> round
    // trips are exercised too.
    for (const auto& [symbol, model] : dtd.elements) {
      if (!rng.Bernoulli(0.3)) continue;
      Dtd::AttributeDef def;
      def.name = "id";
      switch (rng.NextBelow(3)) {
        case 0:
          def.type = "CDATA";
          def.default_decl = "#IMPLIED";
          break;
        case 1:
          def.type = "ID";
          def.default_decl = "#REQUIRED";
          break;
        default:
          def.type = "(on|off)";
          def.default_decl = "\"off\"";
          break;
      }
      dtd.attributes[symbol].push_back(std::move(def));
    }
    OracleResult check = CheckDtdRoundTrip(dtd, alphabet);
    if (!check.passed) {
      PropertyFailure failure;
      failure.learner = "round-trip";
      failure.instance = i;
      failure.seed = seed;
      failure.oracle = "dtd-round-trip";
      failure.detail = check.detail;
      failures.push_back(std::move(failure));
    }
  }
  return failures;
}

std::vector<PropertyFailure> RunDedupCacheProperty(
    const PropertyOptions& options) {
  std::vector<PropertyFailure> failures;
  for (int i = 0; i < options.instances; ++i) {
    uint64_t seed = InstanceSeed(options.seed, i);
    Rng rng(seed);
    Alphabet alphabet;
    RandomDtdOptions dtd_options;
    dtd_options.num_elements = 3 + static_cast<int>(rng.NextBelow(5));
    Dtd dtd = RandomDtd(&alphabet, &rng, dtd_options);
    int num_docs = 3 + static_cast<int>(rng.NextBelow(6));
    std::vector<std::string> documents;
    std::vector<std::string> broken;
    for (int d = 0; d < num_docs; ++d) {
      Result<XmlDocument> doc = GenerateDocument(dtd, alphabet, &rng);
      if (!doc.ok()) break;
      std::string xml = doc->ToXml();
      // Truncate a copy of THIS document mid-way and leave a dangling
      // '<': rejected in strict and lenient mode alike, and every word
      // the truncation completes was just completed by the clean
      // document, so the rollback must restore the exact cache state
      // (see CheckDedupCacheEquivalence on why alignment matters).
      broken.push_back(rng.Bernoulli(0.5)
                           ? xml.substr(0, xml.size() / 2) + "<"
                           : std::string());
      documents.push_back(std::move(xml));
    }
    if (static_cast<int>(documents.size()) != num_docs) {
      PropertyFailure failure;
      failure.learner = "dedup-cache";
      failure.instance = i;
      failure.seed = seed;
      failure.oracle = "generation";
      failure.detail = "document generation failed for the random DTD";
      failures.push_back(std::move(failure));
      continue;
    }
    OracleResult check =
        CheckDedupCacheEquivalence(documents, broken, InferenceOptions{});
    if (!check.passed) {
      PropertyFailure failure;
      failure.learner = "dedup-cache";
      failure.instance = i;
      failure.seed = seed;
      failure.oracle = "dedup-cache-equivalence";
      failure.detail = check.detail;
      failure.sample = documents;
      failures.push_back(std::move(failure));
    }
  }
  return failures;
}

}  // namespace condtd
