#ifndef CONDTD_CHECK_ORACLES_H_
#define CONDTD_CHECK_ORACLES_H_

#include <string>
#include <vector>

#include "alphabet/alphabet.h"
#include "automaton/soa.h"
#include "dtd/model.h"
#include "infer/inferrer.h"
#include "infer/summary.h"
#include "regex/ast.h"

namespace condtd {

/// Outcome of one conformance oracle: pass, or fail with a
/// human-readable witness (counterexample word, mismatching field, ...).
/// Oracles are the reusable invariant checks behind the property-test
/// harness (tests/property_test.cc) and are deliberately independent of
/// any test framework so experiments and tools can call them too.
struct OracleResult {
  bool passed = true;
  std::string detail;

  static OracleResult Pass() { return {}; }
  static OracleResult Fail(std::string detail) {
    return {false, std::move(detail)};
  }
};

/// Every sample word must be accepted by the inferred expression — the
/// common soundness guarantee of all learners (Theorems 2 and 3: the
/// inferred expression's language contains the sample).
OracleResult CheckSampleInclusion(const ReRef& inferred,
                                  const std::vector<Word>& sample,
                                  const Alphabet& alphabet);

/// The XML specification requires content models to be one-unambiguous
/// (Brüggemann-Klein & Wood determinism); every SORE is deterministic by
/// construction (Section 1.2).
OracleResult CheckDeterminism(const ReRef& re, const Alphabet& alphabet);

/// Syntactic class checks (Section 1.2 definitions).
OracleResult CheckSoreValidity(const ReRef& re, const Alphabet& alphabet);
OracleResult CheckChareValidity(const ReRef& re, const Alphabet& alphabet);

/// Restricted SIRE class of the interleaving learners: a plain SORE, or
/// a top-level `&` whose factors are `&`-free SOREs (single occurrence
/// holds globally, so factor alphabets are disjoint by construction).
OracleResult CheckSireValidity(const ReRef& re, const Alphabet& alphabet);

/// Conciseness dominance of the interleaving learners: the candidate
/// must be no larger (token count) than the baseline inferred from the
/// same summary AND describe a sub-language of it — the shuffle upgrade
/// specializes the baseline, never generalizes beyond it. The witness on
/// failure is either the token counts or a word of L(candidate) \
/// L(baseline).
OracleResult CheckConcisenessDominance(const ReRef& candidate,
                                       const ReRef& baseline,
                                       const Alphabet& alphabet);

/// Exact language containment L(sub) ⊆ L(super) with a shortest
/// counterexample word on failure (the Theorem 2 guarantee, checked at
/// the language level).
OracleResult CheckLanguageInclusion(const ReRef& sub, const ReRef& super,
                                    const Alphabet& alphabet);

/// Exact language equality with a shortest distinguishing word on
/// failure.
OracleResult CheckLanguageEquivalence(const ReRef& a, const ReRef& b,
                                      const Alphabet& alphabet);

/// Theorem 1: rewriting a SORE-definable SOA yields an expression with
/// exactly the SOA's language. Checked as L(re) = L(soa) via the DFA
/// product, with a shortest distinguishing word on failure.
OracleResult CheckSoaEquivalence(const ReRef& re, const Soa& soa,
                                 const Alphabet& alphabet);

/// Write → parse round trip: serializing `dtd` with WriteDtd and
/// re-parsing the text must reproduce the root, every content model
/// (structurally, up to commutativity of |) and every attribute list.
OracleResult CheckDtdRoundTrip(const Dtd& dtd, const Alphabet& alphabet);

/// Semantic equality of two summary stores built over the SAME alphabet:
/// root counts, seen-as-child marks, and per element the occurrence and
/// attribute counts, the SOA (structure and supports, compared by symbol
/// label so state numbering does not matter), the CRX summaries and the
/// word reservoir. Text samples are excluded — which capped samples are
/// retained is documented to depend on fold order. Word reservoirs are
/// compared only when neither side overflowed (an overflowed reservoir's
/// content is arrival-order dependent and learners refuse it anyway).
OracleResult CheckSummaryEquivalence(const SummaryStore& a,
                                     const SummaryStore& b,
                                     const Alphabet& alphabet);

/// Merge-algebra laws of Section 9's incremental computation: folding
/// `shards` of child words for `element` shard-by-shard and merging the
/// stores — left fold, right fold, and reversed (commuted) order — must
/// all agree with the sequential fold of the concatenated shards.
OracleResult CheckMergeLaws(const std::vector<std::vector<Word>>& shards,
                            Symbol element, const Alphabet& alphabet,
                            const SummaryLimits& limits);

/// Ingestion-path equivalence: the DOM path (DtdInferrer::AddXml), the
/// streaming SAX fold and the sharded ParallelDtdInferrer with `jobs`
/// threads must produce byte-identical DTDs for the same documents.
OracleResult CheckIngestionEquivalence(
    const std::vector<std::string>& documents,
    const InferenceOptions& options, int jobs);

/// Dedup-cache equivalence: the flat open-addressing word cache and the
/// legacy `std::unordered_map` oracle it replaced must produce
/// byte-identical DTDs AND byte-identical SaveState text (the stronger
/// check — SaveState exposes SOA state order, supports, and every
/// retained sample). `broken_documents` runs parallel to `documents`
/// (empty entries are skipped): entry d is interleaved after clean
/// document d and must be rejected by both paths without perturbing the
/// result (rollback transactionality of the word journal). For the
/// byte-level no-residue check to hold, each broken entry must be a
/// truncation of its clean document — a rolled-back NOVEL word leaves a
/// zero-count entry whose position shifts the flush order (the DTD is
/// unaffected, SaveState is not), and a truncation completes only words
/// its own clean document completes first.
OracleResult CheckDedupCacheEquivalence(
    const std::vector<std::string>& documents,
    const std::vector<std::string>& broken_documents,
    const InferenceOptions& options);

}  // namespace condtd

#endif  // CONDTD_CHECK_ORACLES_H_
