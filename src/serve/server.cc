#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/latency.h"

namespace condtd {
namespace serve {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t space = line.find(' ', pos);
    if (space == std::string::npos) space = line.size();
    if (space > pos) tokens.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return tokens;
}

void AppendJsonInt(std::string* out, std::string_view key, int64_t value,
                   bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("        \"");
  out->append(key);
  out->append("\": ");
  out->append(std::to_string(value));
}

void AppendLatencyJson(std::string* out, std::string_view key,
                       const LatencyHistogram& histogram, bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("        \"");
  out->append(key);
  out->append("\": {\"count\": ");
  out->append(std::to_string(histogram.count));
  out->append(", \"total_ns\": ");
  out->append(std::to_string(histogram.total_ns));
  out->append(", \"p50_ns\": ");
  out->append(std::to_string(histogram.QuantileNs(0.50)));
  out->append(", \"p99_ns\": ");
  out->append(std::to_string(histogram.QuantileNs(0.99)));
  out->append("}");
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), registry_(options_.corpus) {
  if (options_.workers < 1) options_.workers = 1;
}

Server::~Server() {
  if (started_ && !joined_) Stop();
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  // Reopen everything persisted before accepting a single request, so
  // a QUERY right after restart already sees the recovered corpora.
  CONDTD_RETURN_IF_ERROR(registry_.RecoverAll());

  if (!options_.unix_socket.empty()) {
    struct sockaddr_un addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket);
    }
    ::memcpy(addr.sun_path, options_.unix_socket.c_str(),
             options_.unix_socket.size() + 1);
    // A stale socket file from a dead daemon blocks bind(); remove it,
    // but refuse to clobber anything that is not a socket.
    struct stat info;
    if (::lstat(options_.unix_socket.c_str(), &info) == 0) {
      if (!S_ISSOCK(info.st_mode)) {
        return Status::InvalidArgument(
            "listener path exists and is not a socket: " +
            options_.unix_socket);
      }
      ::unlink(options_.unix_socket.c_str());
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket: ") + ::strerror(errno));
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      int saved = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind " + options_.unix_socket + ": " +
                              ::strerror(saved));
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket: ") + ::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("bad listen host: " +
                                     options_.tcp_host);
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      int saved = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind port " +
                              std::to_string(options_.tcp_port) + ": " +
                              ::strerror(saved));
    }
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  } else {
    return Status::InvalidArgument(
        "no listener configured (need unix_socket or tcp_port)");
  }

  if (::listen(listen_fd_, 64) != 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + ::strerror(saved));
  }

  started_ = true;
  active_fds_.assign(static_cast<size_t>(options_.workers), -1);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void Server::RequestStop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  // Break the accept loop and any worker mid-recv; both observe EOF /
  // EINVAL and fall out to the stopping_ check.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (int fd : active_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  work_ready_.notify_all();
  stop_requested_cv_.notify_all();
}

void Server::Wait() {
  if (!started_ || joined_) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_requested_cv_.wait(lock, [this] { return stopping_; });
  }
  accept_thread_.join();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  for (int fd : pending_conns_) ::close(fd);
  pending_conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
  joined_ = true;
}

void Server::Stop() {
  RequestStop();
  Wait();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    int saved_errno = fd < 0 ? errno : 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd >= 0) {
        pending_conns_.push_back(fd);
        work_ready_.notify_one();
        continue;
      }
    }
    if (saved_errno == EINTR || saved_errno == ECONNABORTED) continue;
    // Listener broken (or shut down concurrently): stop the server so
    // Wait() returns instead of hanging on a dead socket.
    RequestStop();
    return;
  }
}

void Server::WorkerLoop(int worker_index) {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return stopping_ || !pending_conns_.empty();
      });
      if (stopping_) return;
      fd = pending_conns_.front();
      pending_conns_.pop_front();
      active_fds_[static_cast<size_t>(worker_index)] = fd;
    }
    ServeConnection(fd, worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_fds_[static_cast<size_t>(worker_index)] = -1;
    }
    ::close(fd);
  }
}

void Server::ServeConnection(int fd, int worker_index) {
  (void)worker_index;
  WireReader reader(fd);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    std::string line;
    bool eof = false;
    Status read = reader.ReadLine(&line, &eof);
    if (!read.ok()) {
      (void)WriteResponse(fd, false, read.ToString());
      return;
    }
    if (eof) return;
    if (line.empty()) continue;  // tolerate blank lines between requests

    bool shutdown = false;
    Result<std::string> response = Handle(line, &reader, &shutdown);
    Status written =
        response.ok()
            ? WriteResponse(fd, true, *response)
            : WriteResponse(fd, false, response.status().ToString());
    if (!response.ok()) {
      obs::SchedAdd(obs::SchedCounter::kServeRequestErrors, 1);
    }
    if (shutdown) {
      RequestStop();
      return;
    }
    if (!written.ok()) return;  // peer went away
  }
}

Result<std::string> Server::Handle(const std::string& line,
                                   WireReader* reader, bool* shutdown) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty command");
  const std::string& command = tokens[0];

  if (command == "PING") {
    return std::string("pong");
  }
  if (command == "INGEST") {
    return HandleIngest(tokens, line, reader);
  }
  if (command == "QUERY") {
    return HandleQuery(tokens);
  }
  if (command == "SNAPSHOT") {
    return HandleSnapshot(tokens);
  }
  if (command == "STATS") {
    return RenderStats();
  }
  if (command == "SHUTDOWN") {
    *shutdown = true;
    return std::string("shutting down");
  }
  return Status::InvalidArgument(
      "unknown command " + command +
      " (want PING, INGEST, QUERY, SNAPSHOT, STATS or SHUTDOWN)");
}

Result<std::string> Server::HandleIngest(
    const std::vector<std::string>& tokens, const std::string& line,
    WireReader* reader) {
  if (tokens.size() < 3) {
    return Status::InvalidArgument(
        "usage: INGEST <corpus> INLINE <nbytes> | INGEST <corpus> PATH "
        "<path>");
  }
  const std::string& corpus_id = tokens[1];
  const std::string& mode = tokens[2];

  Result<Corpus*> corpus = registry_.GetOrCreate(corpus_id);
  if (!corpus.ok()) {
    if (mode == "INLINE" && tokens.size() >= 4) {
      // Keep the connection framed: drain the announced payload even
      // though the request is being rejected.
      errno = 0;
      char* end = nullptr;
      unsigned long long nbytes = ::strtoull(tokens[3].c_str(), &end, 10);
      if (errno == 0 && end != tokens[3].c_str()) {
        std::string discard;
        (void)reader->ReadExact(static_cast<size_t>(nbytes) + 1, &discard);
      }
    }
    return corpus.status();
  }

  if (mode == "INLINE") {
    if (tokens.size() != 4) {
      return Status::InvalidArgument("usage: INGEST <corpus> INLINE <nbytes>");
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long nbytes = ::strtoull(tokens[3].c_str(), &end, 10);
    if (errno != 0 || end == tokens[3].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad INLINE length: " + tokens[3]);
    }
    std::string doc;
    CONDTD_RETURN_IF_ERROR(
        reader->ReadExact(static_cast<size_t>(nbytes), &doc));
    std::string terminator;
    CONDTD_RETURN_IF_ERROR(reader->ReadExact(1, &terminator));
    if (terminator != "\n") {
      return Status::InvalidArgument(
          "INLINE payload not newline-terminated");
    }
    CONDTD_RETURN_IF_ERROR((*corpus)->Ingest(doc));
  } else if (mode == "PATH") {
    // The path is the rest of the line verbatim (it may contain spaces).
    size_t prefix = tokens[0].size() + 1 + tokens[1].size() + 1 +
                    tokens[2].size() + 1;
    if (prefix > line.size()) {
      return Status::InvalidArgument("usage: INGEST <corpus> PATH <path>");
    }
    std::string path = line.substr(prefix);
    if (path.empty()) {
      return Status::InvalidArgument("usage: INGEST <corpus> PATH <path>");
    }
    CONDTD_RETURN_IF_ERROR((*corpus)->IngestFile(path));
  } else {
    return Status::InvalidArgument("unknown INGEST mode " + mode +
                                   " (want INLINE or PATH)");
  }
  return "ingested documents=" + std::to_string((*corpus)->GetStats().documents) +
         " epoch=" + std::to_string((*corpus)->epoch());
}

Result<std::string> Server::HandleQuery(
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        "usage: QUERY <corpus> [--algorithm=<name>] [--format=dtd|xsd]");
  }
  std::string algorithm;
  bool xsd = false;
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    if (flag.rfind("--algorithm=", 0) == 0) {
      algorithm = flag.substr(12);
    } else if (flag == "--format=dtd") {
      xsd = false;
    } else if (flag == "--format=xsd") {
      xsd = true;
    } else {
      return Status::InvalidArgument("unknown QUERY flag: " + flag);
    }
  }
  Result<Corpus*> corpus = registry_.Get(tokens[1]);
  if (!corpus.ok()) return corpus.status();
  return (*corpus)->Query(algorithm, xsd);
}

Result<std::string> Server::HandleSnapshot(
    const std::vector<std::string>& tokens) {
  if (tokens.size() > 2) {
    return Status::InvalidArgument("usage: SNAPSHOT [<corpus>]");
  }
  if (tokens.size() == 2) {
    Result<Corpus*> corpus = registry_.Get(tokens[1]);
    if (!corpus.ok()) return corpus.status();
    CONDTD_RETURN_IF_ERROR((*corpus)->WriteSnapshot());
    return "snapshot " + tokens[1] + " generation=" +
           std::to_string((*corpus)->GetStats().generation);
  }
  std::string report;
  for (Corpus* corpus : registry_.List()) {
    CONDTD_RETURN_IF_ERROR(corpus->WriteSnapshot());
    if (!report.empty()) report.push_back('\n');
    report += "snapshot " + corpus->id() + " generation=" +
              std::to_string(corpus->GetStats().generation);
  }
  if (report.empty()) report = "no corpora";
  return report;
}

std::string Server::RenderStats() {
  // Schema v1 (append-only within objects, like the obs report):
  // per-corpus operational counters plus the whole process-level obs
  // report under "process".
  std::string out;
  out.reserve(4096);
  out.append("{\n  \"condtd_serve_stats_version\": 1,\n  \"corpora\": {");
  std::vector<Corpus*> corpora = registry_.List();
  for (size_t i = 0; i < corpora.size(); ++i) {
    CorpusStats stats = corpora[i]->GetStats();
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    \"");
    out.append(corpora[i]->id());  // ids are [A-Za-z0-9_.-]+: no escaping
    out.append("\": {\n");
    bool first = true;
    AppendJsonInt(&out, "documents_ingested", stats.documents, &first);
    AppendJsonInt(&out, "documents_failed", stats.failed_documents,
                  &first);
    AppendJsonInt(&out, "bytes_ingested", stats.bytes_ingested, &first);
    AppendJsonInt(&out, "queries", stats.queries, &first);
    AppendJsonInt(&out, "query_cache_hits", stats.query_cache_hits,
                  &first);
    AppendJsonInt(&out, "snapshots", stats.snapshots, &first);
    AppendJsonInt(&out, "replayed_documents", stats.replayed_documents,
                  &first);
    AppendJsonInt(&out, "epoch", stats.epoch, &first);
    AppendJsonInt(&out, "generation", stats.generation, &first);
    AppendJsonInt(&out, "journal_bytes", stats.journal_bytes, &first);
    AppendJsonInt(&out, "condtd_corpus_bytes", stats.approx_bytes,
                  &first);
    AppendLatencyJson(&out, "ingest_latency", stats.ingest_latency,
                      &first);
    AppendLatencyJson(&out, "query_latency", stats.query_latency, &first);
    out.append("\n    }");
  }
  out.append(corpora.empty() ? "},\n" : "\n  },\n");
  out.append("  \"process\": ");
  out.append(obs::RenderStatsJson(obs::SnapshotStats()));
  out.append("\n}");
  return out;
}

}  // namespace serve
}  // namespace condtd
