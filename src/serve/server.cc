#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "base/strings.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/latency.h"
#include "serve/prometheus.h"

namespace condtd {
namespace serve {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t space = line.find(' ', pos);
    if (space == std::string::npos) space = line.size();
    if (space > pos) tokens.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return tokens;
}

void AppendJsonInt(std::string* out, std::string_view key, int64_t value,
                   bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("        \"");
  out->append(key);
  out->append("\": ");
  out->append(std::to_string(value));
}

void AppendLatencyJson(std::string* out, std::string_view key,
                       const LatencyHistogram& histogram, bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("        \"");
  out->append(key);
  out->append("\": {\"count\": ");
  out->append(std::to_string(histogram.count));
  out->append(", \"total_ns\": ");
  out->append(std::to_string(histogram.total_ns));
  out->append(", \"p50_ns\": ");
  out->append(std::to_string(histogram.QuantileNs(0.50)));
  out->append(", \"p99_ns\": ");
  out->append(std::to_string(histogram.QuantileNs(0.99)));
  out->append("}");
}

/// Binds and listens on a loopback TCP socket; reports the bound port
/// (for port 0 requests) through `bound_port`.
Status ListenTcp(const std::string& host, int port, int* out_fd,
                 int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("bind port " + std::to_string(port) + ": " +
                            ::strerror(saved));
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  if (::listen(fd, 64) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal(std::string("listen: ") + ::strerror(saved));
  }
  *out_fd = fd;
  return Status::OK();
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + ::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

CorpusRegistry::Options RegistryOptions(const ServerOptions& options) {
  CorpusRegistry::Options registry;
  registry.corpus = options.corpus;
  registry.corpus_ttl_seconds = options.corpus_ttl_seconds;
  registry.max_corpora = options.max_corpora;
  registry.clock_ns = options.clock_ns;
  return registry;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), registry_(RegistryOptions(options_)) {
  if (options_.workers < 1) options_.workers = 1;
}

Server::~Server() {
  if (started_ && !joined_) Stop();
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  // Reopen everything persisted before accepting a single request, so
  // a QUERY right after restart already sees the recovered corpora.
  CONDTD_RETURN_IF_ERROR(registry_.RecoverAll());

  if (!options_.unix_socket.empty()) {
    struct sockaddr_un addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket);
    }
    ::memcpy(addr.sun_path, options_.unix_socket.c_str(),
             options_.unix_socket.size() + 1);
    // A stale socket file from a dead daemon blocks bind(); remove it,
    // but refuse to clobber anything that is not a socket.
    struct stat info;
    if (::lstat(options_.unix_socket.c_str(), &info) == 0) {
      if (!S_ISSOCK(info.st_mode)) {
        return Status::InvalidArgument(
            "listener path exists and is not a socket: " +
            options_.unix_socket);
      }
      ::unlink(options_.unix_socket.c_str());
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket: ") + ::strerror(errno));
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      int saved = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind " + options_.unix_socket + ": " +
                              ::strerror(saved));
    }
    if (::listen(listen_fd_, 64) != 0) {
      int saved = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal(std::string("listen: ") + ::strerror(saved));
    }
  } else if (options_.tcp_port >= 0) {
    CONDTD_RETURN_IF_ERROR(ListenTcp(options_.tcp_host, options_.tcp_port,
                                     &listen_fd_, &port_));
  } else {
    return Status::InvalidArgument(
        "no listener configured (need unix_socket or tcp_port)");
  }

  if (options_.http_port >= 0) {
    Status http = ListenTcp(options_.http_host, options_.http_port,
                            &http_listen_fd_, &http_port_);
    if (!http.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (!options_.unix_socket.empty()) {
        ::unlink(options_.unix_socket.c_str());
      }
      return Status(http.code(),
                    "http listener: " + std::string(http.message()));
    }
  }

  registry_.StartSweeper();

  started_ = true;
  active_fds_.assign(static_cast<size_t>(options_.workers), -1);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void Server::RequestStop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  // Break the accept loop and any worker mid-recv; both observe EOF /
  // EINVAL and fall out to the stopping_ check.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (http_listen_fd_ >= 0) ::shutdown(http_listen_fd_, SHUT_RDWR);
  for (int fd : active_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  work_ready_.notify_all();
  stop_requested_cv_.notify_all();
}

void Server::Wait() {
  if (!started_ || joined_) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_requested_cv_.wait(lock, [this] { return stopping_; });
  }
  accept_thread_.join();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  registry_.StopSweeper();
  for (const PendingConn& conn : pending_conns_) ::close(conn.fd);
  pending_conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (http_listen_fd_ >= 0) {
    ::close(http_listen_fd_);
    http_listen_fd_ = -1;
  }
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
  joined_ = true;
}

void Server::Stop() {
  RequestStop();
  Wait();
}

void Server::AcceptLoop() {
  for (;;) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds].fd = listen_fd_;
    fds[nfds].events = POLLIN;
    fds[nfds].revents = 0;
    ++nfds;
    int http_index = -1;
    if (http_listen_fd_ >= 0) {
      http_index = static_cast<int>(nfds);
      fds[nfds].fd = http_listen_fd_;
      fds[nfds].events = POLLIN;
      fds[nfds].revents = 0;
      ++nfds;
    }
    int ready = ::poll(fds, nfds, -1);
    int saved_errno = ready < 0 ? errno : 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (ready < 0) {
      if (saved_errno == EINTR) continue;
      RequestStop();
      return;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      bool http = static_cast<int>(i) == http_index;
      int fd = ::accept(fds[i].fd, nullptr, nullptr);
      saved_errno = fd < 0 ? errno : 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          if (fd >= 0) ::close(fd);
          return;
        }
        if (fd >= 0) {
          pending_conns_.push_back(PendingConn{fd, http});
          work_ready_.notify_one();
          continue;
        }
      }
      if (saved_errno == EINTR || saved_errno == ECONNABORTED ||
          saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
        continue;
      }
      // Listener broken (or shut down concurrently): stop the server so
      // Wait() returns instead of hanging on a dead socket.
      RequestStop();
      return;
    }
  }
}

void Server::WorkerLoop(int worker_index) {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return stopping_ || !pending_conns_.empty();
      });
      if (stopping_) return;
      conn = pending_conns_.front();
      pending_conns_.pop_front();
      active_fds_[static_cast<size_t>(worker_index)] = conn.fd;
    }
    if (conn.http) {
      ServeHttpConnection(conn.fd);
    } else {
      ServeConnection(conn.fd, worker_index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_fds_[static_cast<size_t>(worker_index)] = -1;
    }
    ::close(conn.fd);
  }
}

void Server::ServeConnection(int fd, int worker_index) {
  (void)worker_index;
  WireReader reader(fd);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    std::string line;
    bool eof = false;
    Status read = reader.ReadLine(&line, &eof);
    if (!read.ok()) {
      (void)WriteResponse(fd, false, read.ToString());
      return;
    }
    if (eof) return;
    if (line.empty()) continue;  // tolerate blank lines between requests

    bool shutdown = false;
    Result<std::string> response = Handle(line, &reader, &shutdown);
    Status written =
        response.ok()
            ? WriteResponse(fd, true, *response)
            : WriteResponse(fd, false, response.status().ToString());
    if (!response.ok()) {
      obs::SchedAdd(obs::SchedCounter::kServeRequestErrors, 1);
    }
    if (shutdown) {
      RequestStop();
      return;
    }
    if (!written.ok()) return;  // peer went away
  }
}

void Server::ServeHttpConnection(int fd) {
  obs::SchedAdd(obs::SchedCounter::kHttpRequests, 1);
  // Read the request head only; the endpoints are body-less GETs and a
  // hostile header stream is cut off at a fixed cap.
  std::string head;
  char buf[4096];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > 16384) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  if (head.empty()) return;

  size_t eol = head.find('\n');
  std::string request_line =
      eol == std::string::npos ? head : head.substr(0, eol);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  std::vector<std::string> parts = Tokenize(request_line);
  std::string method = parts.empty() ? "" : parts[0];
  std::string target = parts.size() < 2 ? "" : parts[1];
  target = target.substr(0, target.find('?'));

  std::string status_line = "HTTP/1.1 200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status_line = "HTTP/1.1 405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (target == "/healthz") {
    body = "ok\n";
  } else if (target == "/metrics") {
    std::vector<std::pair<std::string, CorpusStats>> corpora;
    for (const std::shared_ptr<Corpus>& corpus : registry_.List()) {
      corpora.emplace_back(corpus->id(), corpus->GetStats());
    }
    body = RenderPrometheusText(corpora, obs::SnapshotStats());
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found (want /metrics or /healthz)\n";
  }

  std::string response;
  response.reserve(body.size() + 256);
  response += status_line;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  (void)SendAll(fd, response);
}

Result<std::string> Server::Handle(const std::string& line,
                                   WireReader* reader, bool* shutdown) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty command");
  const std::string& command = tokens[0];

  if (command == "PING") {
    return std::string("pong");
  }
  if (command == "INGEST") {
    return HandleIngest(tokens, line, reader);
  }
  if (command == "QUERY") {
    return HandleQuery(tokens);
  }
  if (command == "SNAPSHOT") {
    return HandleSnapshot(tokens);
  }
  if (command == "STATS") {
    return RenderStats();
  }
  if (command == "SHUTDOWN") {
    *shutdown = true;
    return std::string("shutting down");
  }
  return Status::InvalidArgument(
      "unknown command " + command +
      " (want PING, INGEST, QUERY, SNAPSHOT, STATS or SHUTDOWN)");
}

Result<std::string> Server::HandleIngest(
    const std::vector<std::string>& tokens, const std::string& line,
    WireReader* reader) {
  if (tokens.size() < 3) {
    return Status::InvalidArgument(
        "usage: INGEST <corpus> INLINE <nbytes> | INGEST <corpus> PATH "
        "<path>");
  }
  const std::string& corpus_id = tokens[1];
  const std::string& mode = tokens[2];

  std::shared_ptr<Corpus> corpus;
  if (mode == "INLINE") {
    if (tokens.size() != 4) {
      return Status::InvalidArgument(
          "usage: INGEST <corpus> INLINE <nbytes>");
    }
    // Strict parse: "-1", "1x", "" and overflow are all rejected before
    // any payload read — a bad length must never size an allocation.
    int64_t nbytes = 0;
    if (!ParseInt64(tokens[3], &nbytes) || nbytes <= 0) {
      return Status::InvalidArgument(
          "bad INLINE length (want a positive integer): " + tokens[3]);
    }
    if (nbytes > options_.max_inline_bytes) {
      // Keep the connection framed without buffering the oversized
      // payload: throw it away in fixed-size chunks.
      (void)reader->Discard(static_cast<size_t>(nbytes) + 1);
      return Status::InvalidArgument(
          "INLINE payload of " + std::to_string(nbytes) +
          " bytes exceeds --max-inline-bytes=" +
          std::to_string(options_.max_inline_bytes));
    }
    Result<std::shared_ptr<Corpus>> opened = registry_.GetOrCreate(corpus_id);
    if (!opened.ok()) {
      // Same framing rule on the rejection path (bad corpus id, full
      // registry): drain the announced payload, never buffer it.
      (void)reader->Discard(static_cast<size_t>(nbytes) + 1);
      return opened.status();
    }
    corpus = std::move(*opened);
    std::string doc;
    CONDTD_RETURN_IF_ERROR(
        reader->ReadExact(static_cast<size_t>(nbytes), &doc));
    std::string terminator;
    CONDTD_RETURN_IF_ERROR(reader->ReadExact(1, &terminator));
    if (terminator != "\n") {
      return Status::InvalidArgument(
          "INLINE payload not newline-terminated");
    }
    CONDTD_RETURN_IF_ERROR(corpus->Ingest(doc));
  } else if (mode == "PATH") {
    // The path is the rest of the line verbatim (it may contain
    // interior spaces). Recover it by scanning the original line past
    // the first three tokens — Tokenize collapses space runs, so token
    // lengths alone cannot locate where the path starts.
    size_t pos = 0;
    for (int t = 0; t < 3; ++t) {
      while (pos < line.size() && line[pos] == ' ') ++pos;
      while (pos < line.size() && line[pos] != ' ') ++pos;
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::string path = line.substr(pos);
    if (path.empty()) {
      return Status::InvalidArgument("usage: INGEST <corpus> PATH <path>");
    }
    Result<std::shared_ptr<Corpus>> opened = registry_.GetOrCreate(corpus_id);
    if (!opened.ok()) return opened.status();
    corpus = std::move(*opened);
    CONDTD_RETURN_IF_ERROR(corpus->IngestFile(path));
  } else {
    return Status::InvalidArgument("unknown INGEST mode " + mode +
                                   " (want INLINE or PATH)");
  }
  return "ingested documents=" +
         std::to_string(corpus->GetStats().documents) +
         " epoch=" + std::to_string(corpus->epoch());
}

Result<std::string> Server::HandleQuery(
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        "usage: QUERY <corpus> [--algorithm=<name>] [--format=dtd|xsd]");
  }
  std::string algorithm;
  bool xsd = false;
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    if (flag.rfind("--algorithm=", 0) == 0) {
      algorithm = flag.substr(12);
    } else if (flag == "--format=dtd") {
      xsd = false;
    } else if (flag == "--format=xsd") {
      xsd = true;
    } else {
      return Status::InvalidArgument("unknown QUERY flag: " + flag);
    }
  }
  Result<std::shared_ptr<Corpus>> corpus = registry_.Get(tokens[1]);
  if (!corpus.ok()) return corpus.status();
  return (*corpus)->Query(algorithm, xsd);
}

Result<std::string> Server::HandleSnapshot(
    const std::vector<std::string>& tokens) {
  if (tokens.size() > 2) {
    return Status::InvalidArgument("usage: SNAPSHOT [<corpus>]");
  }
  if (tokens.size() == 2) {
    Result<std::shared_ptr<Corpus>> corpus = registry_.Get(tokens[1]);
    if (!corpus.ok()) return corpus.status();
    CONDTD_RETURN_IF_ERROR((*corpus)->WriteSnapshot());
    return "snapshot " + tokens[1] + " generation=" +
           std::to_string((*corpus)->GetStats().generation);
  }
  std::string report;
  for (const std::shared_ptr<Corpus>& corpus : registry_.List()) {
    CONDTD_RETURN_IF_ERROR(corpus->WriteSnapshot());
    if (!report.empty()) report.push_back('\n');
    report += "snapshot " + corpus->id() + " generation=" +
              std::to_string(corpus->GetStats().generation);
  }
  if (report.empty()) report = "no corpora";
  return report;
}

std::string Server::RenderStats() {
  // Schema v1 (append-only within objects, like the obs report):
  // per-corpus operational counters plus the whole process-level obs
  // report under "process".
  std::string out;
  out.reserve(4096);
  out.append("{\n  \"condtd_serve_stats_version\": 1,\n  \"corpora\": {");
  std::vector<std::shared_ptr<Corpus>> corpora = registry_.List();
  for (size_t i = 0; i < corpora.size(); ++i) {
    CorpusStats stats = corpora[i]->GetStats();
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    \"");
    out.append(corpora[i]->id());  // ids are [A-Za-z0-9_.-]+: no escaping
    out.append("\": {\n");
    bool first = true;
    AppendJsonInt(&out, "documents_ingested", stats.documents, &first);
    AppendJsonInt(&out, "documents_failed", stats.failed_documents,
                  &first);
    AppendJsonInt(&out, "bytes_ingested", stats.bytes_ingested, &first);
    AppendJsonInt(&out, "queries", stats.queries, &first);
    AppendJsonInt(&out, "query_cache_hits", stats.query_cache_hits,
                  &first);
    AppendJsonInt(&out, "snapshots", stats.snapshots, &first);
    AppendJsonInt(&out, "replayed_documents", stats.replayed_documents,
                  &first);
    AppendJsonInt(&out, "epoch", stats.epoch, &first);
    AppendJsonInt(&out, "generation", stats.generation, &first);
    AppendJsonInt(&out, "journal_bytes", stats.journal_bytes, &first);
    AppendJsonInt(&out, "condtd_corpus_bytes", stats.approx_bytes,
                  &first);
    AppendLatencyJson(&out, "ingest_latency", stats.ingest_latency,
                      &first);
    AppendLatencyJson(&out, "query_latency", stats.query_latency, &first);
    AppendJsonInt(&out, "compactions", stats.compactions, &first);
    out.append("\n    }");
  }
  out.append(corpora.empty() ? "},\n" : "\n  },\n");
  out.append("  \"process\": ");
  out.append(obs::RenderStatsJson(obs::SnapshotStats()));
  out.append("\n}");
  return out;
}

}  // namespace serve
}  // namespace condtd
