#ifndef CONDTD_SERVE_JOURNAL_H_
#define CONDTD_SERVE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "base/status.h"

namespace condtd {
namespace serve {

/// Append-only durable log of acknowledged documents for one corpus.
///
/// Record framing (docs/STATE_FORMAT.md, "journal records"):
///
///   doc <seq> <nbytes>\n
///   <nbytes raw document bytes>\n
///
/// The daemon appends a record only AFTER the document folded
/// successfully and BEFORE acknowledging the client, so the journal
/// holds exactly the acknowledged document multiset: replaying it over
/// the base snapshot reproduces the pre-crash state byte-identically
/// (the fold algebra is associative and per-document transactional).
///
/// Replay tolerates a torn tail — a record cut short by a crash mid-
/// append is ignored, which is correct because its document was never
/// acknowledged.
class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if needed) the journal file for appending.
  /// `fsync_appends` trades durability for latency: when true every
  /// Append fdatasyncs before returning (the default for the daemon).
  static Result<Journal> Open(const std::string& path, bool fsync_appends);

  /// Appends one acknowledged-document record. `seq` is the corpus
  /// document sequence number (informational; replay trusts order, not
  /// numbering).
  Status Append(int64_t seq, std::string_view doc);

  /// fdatasyncs outstanding appends (no-op when fsync_appends).
  Status Sync();

  /// Bytes appended through this handle plus the size found at Open.
  int64_t bytes() const { return bytes_; }

  bool is_open() const { return fd_ >= 0; }
  void Close();

  struct ReplayStats {
    int64_t records = 0;         ///< complete records replayed
    int64_t torn_tail_bytes = 0; ///< trailing bytes discarded (crash cut)
  };

  /// Streams every complete record of the journal at `path` through
  /// `fold(seq, doc)`, stopping cleanly at a torn tail. A missing file
  /// replays zero records (a corpus that never ingested after its last
  /// snapshot). Fold errors abort the replay and propagate.
  static Result<ReplayStats> Replay(
      const std::string& path,
      const std::function<Status(int64_t seq, std::string_view doc)>& fold);

 private:
  int fd_ = -1;
  bool fsync_appends_ = true;
  int64_t bytes_ = 0;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_JOURNAL_H_
