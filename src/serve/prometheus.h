#ifndef CONDTD_SERVE_PROMETHEUS_H_
#define CONDTD_SERVE_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/corpus.h"

namespace condtd {
namespace serve {

/// Renders the daemon's state in Prometheus text exposition format
/// 0.0.4 (text/plain; version=0.0.4): per-corpus counters, gauges and
/// latency histograms labelled {corpus="<id>"}, followed by the
/// process-wide obs registry (condtd_process_* counters and gauges).
/// Families are grouped under one # HELP / # TYPE header each,
/// counters carry the _total suffix, and histogram buckets are
/// cumulative with le= in seconds — the invariants the CI metrics lint
/// checks.
std::string RenderPrometheusText(
    const std::vector<std::pair<std::string, CorpusStats>>& corpora,
    const obs::StatsSnapshot& process);

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_PROMETHEUS_H_
