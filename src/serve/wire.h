#ifndef CONDTD_SERVE_WIRE_H_
#define CONDTD_SERVE_WIRE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "base/status.h"

namespace condtd {
namespace serve {

/// The condtd serve wire protocol, v1. Line-delimited and
/// length-prefixed — trivially scriptable (`socat`), trivially exact
/// (no quoting of document bytes):
///
///   request  := COMMAND-LINE "\n" [payload]
///   response := ("OK " | "ERR ") <nbytes> "\n" <nbytes raw bytes> "\n"
///
/// Only `INGEST <corpus> INLINE <nbytes>` carries a request payload
/// (exactly nbytes raw document bytes plus a trailing "\n"). Error
/// payloads are Status::ToString() text ("<Code>: <message>"), which
/// the client maps back onto a Status code. See docs/STATE_FORMAT.md
/// ("serve wire protocol") for the command list.

/// Buffered reader over a connected socket (or any stream fd). Not
/// thread-safe; one per connection.
class WireReader {
 public:
  WireReader() = default;
  explicit WireReader(int fd) : fd_(fd) {}

  /// Re-points the reader at a new fd and drops buffered bytes.
  void Reset(int fd);

  /// Reads one "\n"-terminated line (the terminator — and a preceding
  /// "\r", for telnet-friendliness — is stripped). Sets `*eof` and
  /// returns OK when the peer closed cleanly before any byte of a line.
  Status ReadLine(std::string* line, bool* eof);

  /// Reads exactly `n` raw bytes into `*out` (appending nothing else).
  Status ReadExact(size_t n, std::string* out);

  /// Reads and throws away exactly `n` bytes in fixed-size chunks.
  /// Unlike ReadExact it never allocates proportionally to `n`, so it
  /// is safe against a client-announced length that is huge or hostile
  /// — the drain path for rejected INLINE payloads.
  Status Discard(size_t n);

 private:
  Status Fill();  ///< reads more bytes; sets eof_ at stream end

  int fd_ = -1;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

/// Writes all of `data`, retrying short writes and EINTR. SIGPIPE-safe
/// (MSG_NOSIGNAL), so a vanished client never kills the daemon.
Status WriteAll(int fd, std::string_view data);

/// Writes one framed response.
Status WriteResponse(int fd, bool ok, std::string_view payload);

/// Reads one framed response; OK frames yield the payload, ERR frames
/// a non-OK Status reconstructed from the payload text.
Result<std::string> ReadResponse(WireReader* reader);

/// Inverts Status::ToString(): "<CodeName>: <message>" back to a Status
/// with the matching code (Internal when the text has no known prefix).
Status StatusFromWireText(std::string_view text);

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_WIRE_H_
