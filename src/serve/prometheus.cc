#include "serve/prometheus.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace condtd {
namespace serve {

namespace {

/// Prometheus label-value escaping: backslash, double-quote, newline.
/// Corpus ids are already [A-Za-z0-9_.-]+ but the renderer should not
/// depend on its callers' validation.
std::string EscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void AppendHeader(std::string& out, std::string_view name,
                  std::string_view type, std::string_view help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void AppendValue(std::string& out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out += buf;
  out += '\n';
}

void AppendSeconds(std::string& out, int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", static_cast<double>(ns) / 1e9);
  out += buf;
  out += '\n';
}

/// One family with a sample per corpus, selected by `pick`.
template <typename Pick>
void CorpusFamily(
    std::string& out,
    const std::vector<std::pair<std::string, CorpusStats>>& corpora,
    std::string_view name, std::string_view type, std::string_view help,
    Pick pick) {
  AppendHeader(out, name, type, help);
  for (const auto& [id, stats] : corpora) {
    out += name;
    out += "{corpus=\"";
    out += EscapeLabel(id);
    out += "\"} ";
    AppendValue(out, pick(stats));
  }
}

void CorpusHistogram(
    std::string& out,
    const std::vector<std::pair<std::string, CorpusStats>>& corpora,
    std::string_view name, std::string_view help,
    const LatencyHistogram CorpusStats::* histogram) {
  AppendHeader(out, name, "histogram", help);
  for (const auto& [id, stats] : corpora) {
    const LatencyHistogram& h = stats.*histogram;
    const std::string label = EscapeLabel(id);
    int64_t cumulative = 0;
    for (int bucket = 0; bucket < obs::kLatencyBuckets; ++bucket) {
      cumulative += h.buckets[bucket];
      out += name;
      out += "_bucket{corpus=\"";
      out += label;
      out += "\",le=\"";
      if (bucket < obs::kLatencyBuckets - 1) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g",
                      static_cast<double>(obs::kBucketBoundsNs[bucket]) /
                          1e9);
        out += buf;
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      AppendValue(out, cumulative);
    }
    out += name;
    out += "_sum{corpus=\"";
    out += label;
    out += "\"} ";
    AppendSeconds(out, h.total_ns);
    out += name;
    out += "_count{corpus=\"";
    out += label;
    out += "\"} ";
    AppendValue(out, h.count);
  }
}

}  // namespace

std::string RenderPrometheusText(
    const std::vector<std::pair<std::string, CorpusStats>>& corpora,
    const obs::StatsSnapshot& process) {
  std::string out;
  out.reserve(4096 + corpora.size() * 2048);

  AppendHeader(out, "condtd_corpora_open", "gauge",
               "Live corpora in the serve registry.");
  out += "condtd_corpora_open ";
  AppendValue(out, static_cast<int64_t>(corpora.size()));

  CorpusFamily(out, corpora, "condtd_corpus_documents_total", "counter",
               "Successfully ingested documents.",
               [](const CorpusStats& s) { return s.documents; });
  CorpusFamily(out, corpora, "condtd_corpus_failed_documents_total",
               "counter", "Documents rejected by parse or open errors.",
               [](const CorpusStats& s) { return s.failed_documents; });
  CorpusFamily(out, corpora, "condtd_corpus_bytes_ingested_total",
               "counter", "Raw XML bytes of ingested documents.",
               [](const CorpusStats& s) { return s.bytes_ingested; });
  CorpusFamily(out, corpora, "condtd_corpus_queries_total", "counter",
               "QUERY commands answered.",
               [](const CorpusStats& s) { return s.queries; });
  CorpusFamily(out, corpora, "condtd_corpus_query_cache_hits_total",
               "counter", "QUERYs answered from the epoch cache.",
               [](const CorpusStats& s) { return s.query_cache_hits; });
  CorpusFamily(out, corpora, "condtd_corpus_snapshots_total", "counter",
               "Snapshot generation rotations.",
               [](const CorpusStats& s) { return s.snapshots; });
  CorpusFamily(out, corpora, "condtd_corpus_compactions_total", "counter",
               "Rotations forced by --compact-journal-bytes.",
               [](const CorpusStats& s) { return s.compactions; });
  CorpusFamily(out, corpora, "condtd_corpus_epoch", "gauge",
               "Session version counter.",
               [](const CorpusStats& s) { return s.epoch; });
  CorpusFamily(out, corpora, "condtd_corpus_generation", "gauge",
               "Current snapshot/journal generation.",
               [](const CorpusStats& s) { return s.generation; });
  CorpusFamily(out, corpora, "condtd_corpus_journal_bytes", "gauge",
               "Size of the live journal file.",
               [](const CorpusStats& s) { return s.journal_bytes; });
  CorpusFamily(out, corpora, "condtd_corpus_resident_bytes", "gauge",
               "Approximate resident bytes of retained inference state.",
               [](const CorpusStats& s) {
                 return s.approx_bytes;
               });

  CorpusHistogram(out, corpora, "condtd_corpus_ingest_latency_seconds",
                  "INGEST command latency.", &CorpusStats::ingest_latency);
  CorpusHistogram(out, corpora, "condtd_corpus_query_latency_seconds",
                  "QUERY command latency.", &CorpusStats::query_latency);

  // Process-wide obs registry. All-zero (with condtd_process_stats_enabled
  // 0) when --stats was not passed; the families still render so scrapes
  // are schema-stable either way.
  AppendHeader(out, "condtd_process_stats_enabled", "gauge",
               "Whether the obs registry is collecting (--stats).");
  out += "condtd_process_stats_enabled ";
  AppendValue(out, process.enabled ? 1 : 0);

  for (int c = 0; c < static_cast<int>(obs::Counter::kNumCounters); ++c) {
    std::string name = "condtd_process_";
    name += obs::CounterName(static_cast<obs::Counter>(c));
    name += "_total";
    AppendHeader(out, name, "counter", "Deterministic pipeline counter.");
    out += name;
    out += ' ';
    AppendValue(out, process.counters[c]);
  }
  for (int c = 0; c < static_cast<int>(obs::SchedCounter::kNumSchedCounters);
       ++c) {
    std::string name = "condtd_process_";
    name += obs::SchedCounterName(static_cast<obs::SchedCounter>(c));
    name += "_total";
    AppendHeader(out, name, "counter",
                 "Scheduling-dependent pipeline counter.");
    out += name;
    out += ' ';
    AppendValue(out, process.sched[c]);
  }
  for (int g = 0; g < static_cast<int>(obs::Gauge::kNumGauges); ++g) {
    std::string name = "condtd_process_";
    name += obs::GaugeName(static_cast<obs::Gauge>(g));
    AppendHeader(out, name, "gauge", "Pipeline gauge.");
    out += name;
    out += ' ';
    AppendValue(out, process.gauges[g]);
  }

  return out;
}

}  // namespace serve
}  // namespace condtd
