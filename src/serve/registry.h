#ifndef CONDTD_SERVE_REGISTRY_H_
#define CONDTD_SERVE_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/status.h"
#include "serve/corpus.h"

namespace condtd {
namespace serve {

/// The daemon's tenant map: corpus id -> live Corpus. Creation is
/// lazy (first INGEST opens — and, when the data directory holds prior
/// state, recovers — the corpus); RecoverAll eagerly reopens every
/// persisted corpus at startup so a restart serves QUERYs immediately.
///
/// Corpus ids double as directory names, so they are restricted to
/// [A-Za-z0-9_.-]+ (≤ 128 chars, not "." or ".."): ids can never
/// traverse outside the data directory.
///
/// Resource governance: with `corpus_ttl_seconds` set, a durable corpus
/// untouched past the TTL is snapshotted and closed (SweepNow, or the
/// background sweeper thread); with `max_corpora` set, creating a
/// corpus beyond the cap evicts the least-recently-touched idle tenant
/// first. Eviction is invisible to clients: the next INGEST/QUERY/
/// SNAPSHOT on an evicted id transparently re-opens it from its data
/// directory (byte-identical DTDs, monotone documents/epoch counters).
/// An ephemeral registry (no data_dir) never evicts — closing would
/// lose acknowledged documents — so there `max_corpora` refuses new
/// tenants instead.
///
/// Handles are shared_ptr: a request pins its corpus for the duration
/// of the call, and the sweeper only evicts corpora nobody else holds
/// (checked under the registry lock, through which every new reference
/// must pass), so eviction can never free a corpus mid-request.
class CorpusRegistry {
 public:
  struct Options {
    Corpus::Options corpus;
    /// Evict a corpus idle for this many seconds (0 = never). Requires
    /// a data directory; ignored for ephemeral registries.
    int64_t corpus_ttl_seconds = 0;
    /// Keep at most this many corpora open (0 = unbounded). Durable
    /// registries evict the least-recently-touched tenant to make room;
    /// ephemeral ones refuse creation with kResourceExhausted.
    int max_corpora = 0;
    /// Background sweeper cadence (StartSweeper).
    int64_t sweep_interval_ms = 1000;
    /// Test seam: monotone now() in ns. Defaults to steady_clock.
    std::function<int64_t()> clock_ns;
  };

  explicit CorpusRegistry(Options options);
  /// Back-compat: a registry with defaults and no eviction.
  explicit CorpusRegistry(Corpus::Options corpus_defaults);
  ~CorpusRegistry();

  CorpusRegistry(const CorpusRegistry&) = delete;
  CorpusRegistry& operator=(const CorpusRegistry&) = delete;

  static bool ValidCorpusId(std::string_view id);

  /// The corpus named `id`, opening (or transparently re-opening, after
  /// an eviction) it on first use. The returned handle pins the corpus
  /// against eviction while held.
  Result<std::shared_ptr<Corpus>> GetOrCreate(const std::string& id);

  /// The corpus named `id`. An id with persisted state on disk — live
  /// or evicted — resolves; one that never ingested is NotFound (QUERY
  /// against an unknown corpus should say so, not create an empty
  /// tenant).
  Result<std::shared_ptr<Corpus>> Get(const std::string& id);

  /// All open corpora, ascending by id (stable STATS rendering). Does
  /// not count as a touch.
  std::vector<std::shared_ptr<Corpus>> List();

  /// Reopens every corpus directory found under the data directory.
  /// No-op without a data directory.
  Status RecoverAll();

  /// One eviction pass: snapshots-then-closes every unpinned corpus
  /// idle past the TTL, then trims beyond max_corpora in LRU order.
  /// Returns the number of corpora evicted. Called by the background
  /// sweeper; public so tests and embedders can sweep deterministically.
  int64_t SweepNow();

  /// Starts/stops the background sweeper thread (idempotent; no-op when
  /// neither TTL nor cap is configured). The destructor stops it too.
  void StartSweeper();
  void StopSweeper();

 private:
  struct Entry {
    std::shared_ptr<Corpus> corpus;
    int64_t last_touch_ns = 0;
  };
  /// Pre-eviction counter totals, restored on transparent re-open so
  /// clients never see documents/epoch go backwards.
  struct EvictedBaseline {
    CorpusStats stats;
  };

  int64_t NowNs() const;
  bool durable() const { return !options_.corpus.data_dir.empty(); }
  /// Opens `id` (recovering persisted state), restores any eviction
  /// baseline, and registers the entry. Caller holds mu_.
  Result<std::shared_ptr<Corpus>> OpenLocked(const std::string& id);
  /// Snapshots-then-closes `id` if it is still present, unpinned and
  /// its last touch is unchanged from `expected_touch_ns`. Drops and
  /// re-takes `lock` around the snapshot write. Returns true when the
  /// corpus was evicted.
  bool TryEvictLocked(std::unique_lock<std::mutex>& lock,
                      const std::string& id, int64_t expected_touch_ns);
  void SweeperLoop();

  const Options options_;
  std::mutex mu_;
  std::map<std::string, Entry> corpora_;
  std::map<std::string, EvictedBaseline> evicted_;

  std::mutex sweeper_mu_;
  std::condition_variable sweeper_cv_;
  std::thread sweeper_;
  bool sweeper_stop_ = false;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_REGISTRY_H_
