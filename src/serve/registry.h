#ifndef CONDTD_SERVE_REGISTRY_H_
#define CONDTD_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "serve/corpus.h"

namespace condtd {
namespace serve {

/// The daemon's tenant map: corpus id -> live Corpus. Creation is
/// lazy (first INGEST opens — and, when the data directory holds prior
/// state, recovers — the corpus); RecoverAll eagerly reopens every
/// persisted corpus at startup so a restart serves QUERYs immediately.
///
/// Corpus ids double as directory names, so they are restricted to
/// [A-Za-z0-9_.-]+ (≤ 128 chars, not "." or ".."): ids can never
/// traverse outside the data directory.
class CorpusRegistry {
 public:
  explicit CorpusRegistry(Corpus::Options defaults);

  CorpusRegistry(const CorpusRegistry&) = delete;
  CorpusRegistry& operator=(const CorpusRegistry&) = delete;

  static bool ValidCorpusId(std::string_view id);

  /// The corpus named `id`, opening it on first use. Pointers stay
  /// valid for the registry's lifetime (corpora are never evicted).
  Result<Corpus*> GetOrCreate(const std::string& id);

  /// The corpus named `id`, or NotFound — QUERY against a corpus that
  /// never ingested should say so, not create an empty tenant.
  Result<Corpus*> Get(const std::string& id);

  /// All open corpora, ascending by id (stable STATS rendering).
  std::vector<Corpus*> List();

  /// Reopens every corpus directory found under the data directory.
  /// No-op without a data directory.
  Status RecoverAll();

 private:
  const Corpus::Options defaults_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Corpus>> corpora_;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_REGISTRY_H_
