#include "serve/corpus.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <utility>
#include <vector>

#include "base/file.h"
#include "base/strings.h"
#include "dtd/dtd_writer.h"
#include "infer/engine.h"
#include "obs/metrics.h"

namespace condtd {
namespace serve {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Durably replaces `path`: writes `content` to a sibling tmp file,
/// fsyncs it, renames it into place, and fsyncs the directory so the
/// rename itself survives a crash.
Status AtomicWriteFile(const std::string& path, std::string_view content) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + tmp + ": " +
                            ::strerror(errno));
  }
  std::string_view rest = content;
  while (!rest.empty()) {
    ssize_t wrote = ::write(fd, rest.data(), rest.size());
    if (wrote < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("cannot write " + tmp + ": " +
                              ::strerror(saved));
    }
    rest.remove_prefix(static_cast<size_t>(wrote));
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("cannot sync " + tmp + ": " +
                            ::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + ": " +
                            ::strerror(saved));
  }
  std::string dir = path;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0;
}

}  // namespace

Corpus::Corpus(std::string id, Options options)
    : id_(std::move(id)),
      options_(std::move(options)),
      session_(options_.inference) {}

Result<std::unique_ptr<Corpus>> Corpus::Open(std::string id,
                                             Options options) {
  std::unique_ptr<Corpus> corpus(new Corpus(std::move(id),
                                            std::move(options)));
  if (corpus->durable()) {
    CONDTD_RETURN_IF_ERROR(EnsureDirectory(corpus->DirPath()));
    CONDTD_RETURN_IF_ERROR(corpus->RecoverLocked());
  }
  return corpus;
}

std::string Corpus::DirPath() const {
  return options_.data_dir + "/" + id_;
}

std::string Corpus::SnapshotPath(int64_t generation) const {
  return DirPath() + "/snapshot-" + std::to_string(generation) + ".state";
}

std::string Corpus::JournalPath(int64_t generation) const {
  return DirPath() + "/journal-" + std::to_string(generation) + ".log";
}

std::string Corpus::CurrentPath() const { return DirPath() + "/CURRENT"; }

Status Corpus::RecoverLocked() {
  obs::StageSpan span(obs::Stage::kJournalReplay);
  // CURRENT names the live generation; absent on first open.
  generation_ = 0;
  if (FileExists(CurrentPath())) {
    Result<std::string> current = ReadFileToString(CurrentPath());
    if (!current.ok()) return current.status();
    errno = 0;
    char* end = nullptr;
    long long generation = ::strtoll(current->c_str(), &end, 10);
    if (errno != 0 || end == current->c_str() || generation < 0) {
      return Status::Internal("corpus " + id_ + ": malformed CURRENT: " +
                              *current);
    }
    generation_ = generation;
  }

  // Rebuild the acknowledged state: base snapshot, then the journal's
  // documents in order, through the shared batch ingestion engine (at
  // replay_jobs == 1 a plain sequential fold; the merge is
  // byte-identical at any job count).
  IngestEngine::Options engine_options;
  engine_options.inference = options_.inference;
  engine_options.input = options_.input;
  engine_options.jobs = options_.replay_jobs;
  IngestEngine engine(engine_options);

  if (FileExists(SnapshotPath(generation_))) {
    Result<std::string> snapshot = ReadFileToString(SnapshotPath(generation_));
    if (!snapshot.ok()) return snapshot.status();
    CONDTD_RETURN_IF_ERROR(engine.LoadState(*snapshot));
  }

  int64_t max_seq = -1;
  Result<Journal::ReplayStats> replayed = Journal::Replay(
      JournalPath(generation_),
      [&engine, &max_seq](int64_t seq, std::string_view doc) {
        if (seq > max_seq) max_seq = seq;
        engine.AddXml(doc);
        return Status::OK();
      });
  if (!replayed.ok()) return replayed.status();
  // A journaled document was acknowledged, so it folded cleanly before
  // the crash; the fold is deterministic, so a replay failure means the
  // journal (or code) is corrupt — refuse to open rather than serve a
  // silently different corpus.
  Status folded = engine.Finish();
  if (!folded.ok()) {
    return Status::Internal("corpus " + id_ +
                            ": journal replay diverged: " +
                            folded.ToString());
  }
  if (replayed->records > 0 || FileExists(SnapshotPath(generation_))) {
    CONDTD_RETURN_IF_ERROR(session_.LoadState(engine.inferrer().SaveState()));
  }
  replayed_documents_ = replayed->records;
  next_seq_ = max_seq + 1;

  Result<Journal> journal =
      Journal::Open(JournalPath(generation_), options_.fsync_journal);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(*journal);
  // A crash between a rotation's CURRENT rename and its old-generation
  // unlink leaves unreachable files; reclaim them now that the live
  // generation is known.
  CollectStaleGenerationsLocked();
  return Status::OK();
}

Status Corpus::Ingest(std::string_view doc) {
  obs::StageSpan span(obs::Stage::kServeIngest);
  int64_t start_ns = NowNs();
  Status status;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (journal_broken_) {
      status = Status::FailedPrecondition(
          "corpus " + id_ +
          ": journal append failed earlier; SNAPSHOT to restore "
          "durability");
    } else if (options_.max_corpus_bytes > 0 &&
               static_cast<int64_t>(session_.ApproxBytes()) >
                   options_.max_corpus_bytes) {
      status = Status::ResourceExhausted(
          "corpus " + id_ + ": retained state exceeds " +
          std::to_string(options_.max_corpus_bytes) + " bytes");
    } else {
      // Fold first, journal second, acknowledge last: the journal holds
      // exactly the acknowledged multiset.
      status = session_.Ingest(doc);
      if (status.ok() && durable()) {
        Status appended = journal_.Append(next_seq_, doc);
        if (!appended.ok()) {
          // The fold is in memory but not durable; freeze ingestion so
          // the journal never silently under-represents acknowledged
          // documents. A successful snapshot rotation unfreezes.
          journal_broken_ = true;
          status = appended;
        }
      }
      if (status.ok()) {
        ++next_seq_;
        ++docs_since_snapshot_;
        bool by_count = options_.snapshot_every > 0 &&
                        docs_since_snapshot_ >= options_.snapshot_every;
        // Size-triggered compaction: bound crash-replay time by journal
        // bytes, independent of how many documents produced them.
        bool by_size = !by_count && options_.compact_journal_bytes > 0 &&
                       durable() && journal_.is_open() &&
                       journal_.bytes() > options_.compact_journal_bytes;
        if (by_count || by_size) {
          // Durability housekeeping; the ingest itself already
          // succeeded, so a failed rotation is not the client's error.
          (void)WriteSnapshotLocked(/*compaction=*/by_size);
        }
      }
    }
  }
  obs::SchedAdd(obs::SchedCounter::kServeIngestRequests, 1);
  obs::GaugeMax(obs::Gauge::kCorpusBytesPeak,
                static_cast<int64_t>(session_.ApproxBytes()));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ingest_latency_.Record(NowNs() - start_ns);
  return status;
}

Status Corpus::IngestFile(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return Ingest(*content);
}

Result<std::string> Corpus::Query(const std::string& algorithm, bool xsd) {
  obs::StageSpan span(obs::Stage::kServeQuery);
  int64_t start_ns = NowNs();
  obs::SchedAdd(obs::SchedCounter::kServeQueryRequests, 1);
  std::string key = (xsd ? "xsd:" : "dtd:") + algorithm;

  // Serve from cache when the corpus is unchanged since this exact
  // question was last answered. The epoch is captured together with the
  // snapshot below, so the cache can never hold a schema newer or older
  // than its recorded epoch.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++queries_;
    if (cached_epoch_ == session_.epoch() && cached_key_ == key) {
      ++query_cache_hits_;
      obs::SchedAdd(obs::SchedCounter::kServeQueryCacheHits, 1);
      query_latency_.Record(NowNs() - start_ns);
      return cached_schema_;
    }
  }

  // Consistent snapshot, then learn entirely off the ingest path: a
  // fresh inferrer restored via LoadState answers for the snapshot's
  // document prefix while writers keep folding.
  std::string state;
  int64_t epoch = 0;
  session_.Snapshot(&state, &epoch);

  InferenceOptions inference = options_.inference;
  if (!algorithm.empty()) inference.learner = algorithm;
  DtdInferrer reader(inference);
  CONDTD_RETURN_IF_ERROR(reader.LoadState(state));

  std::string schema;
  if (xsd) {
    Result<std::string> rendered = reader.InferXsd(
        /*numeric_predicates=*/true);
    if (!rendered.ok()) return rendered.status();
    schema = std::move(*rendered);
  } else {
    Result<Dtd> dtd = reader.InferDtd();
    if (!dtd.ok()) return dtd.status();
    schema = WriteDtd(*dtd, *reader.alphabet());
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  // Last-writer-wins is fine: any stored (epoch, key, schema) triple is
  // internally consistent.
  cached_epoch_ = epoch;
  cached_key_ = key;
  cached_schema_ = schema;
  query_latency_.Record(NowNs() - start_ns);
  return schema;
}

Status Corpus::WriteSnapshot() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return WriteSnapshotLocked(/*compaction=*/false);
}

Status Corpus::WriteSnapshotLocked(bool compaction) {
  if (!durable()) return Status::OK();
  // Capture the state while holding ingest_mu_, so no append can land
  // in the old journal after the state it belongs to was captured.
  std::string state;
  session_.Snapshot(&state, nullptr);
  int64_t next_generation = generation_ + 1;

  CONDTD_RETURN_IF_ERROR(AtomicWriteFile(SnapshotPath(next_generation),
                                         state));
  // Start the new journal empty before repointing CURRENT, so a reader
  // of the new generation can never see the old journal's documents.
  Result<Journal> fresh =
      Journal::Open(JournalPath(next_generation), options_.fsync_journal);
  if (!fresh.ok()) return fresh.status();
  // The commit point: after this rename the new generation is current;
  // before it the old snapshot + full old journal are still intact.
  CONDTD_RETURN_IF_ERROR(
      AtomicWriteFile(CurrentPath(), std::to_string(next_generation)));

  generation_ = next_generation;
  journal_ = std::move(*fresh);
  journal_broken_ = false;
  docs_since_snapshot_ = 0;
  // Everything but the live generation is unreachable now; reclaim it
  // (best-effort). Scanning instead of unlinking G-1 specifically also
  // collects orphans an earlier crash left behind.
  CollectStaleGenerationsLocked();

  obs::SchedAdd(obs::SchedCounter::kSnapshotsWritten, 1);
  if (compaction) {
    obs::SchedAdd(obs::SchedCounter::kJournalCompactions, 1);
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  ++snapshots_;
  if (compaction) ++compactions_;
  return Status::OK();
}

void Corpus::CollectStaleGenerationsLocked() {
  DIR* dir = ::opendir(DirPath().c_str());
  if (dir == nullptr) return;
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string_view name = entry->d_name;
    bool remove = false;
    if (EndsWith(name, ".tmp")) {
      // Staging files (snapshot/CURRENT temp copies) are only ever live
      // inside AtomicWriteFile, which runs under ingest_mu_ — anything
      // visible here is a crash leftover.
      remove = true;
    } else {
      std::string_view digits;
      if (StartsWith(name, "snapshot-") && EndsWith(name, ".state")) {
        digits = name.substr(9, name.size() - 9 - 6);
      } else if (StartsWith(name, "journal-") && EndsWith(name, ".log")) {
        digits = name.substr(8, name.size() - 8 - 4);
      } else {
        continue;  // CURRENT, dot entries, foreign files: leave alone
      }
      int64_t generation = 0;
      remove = ParseInt64(digits, &generation) && generation != generation_;
    }
    if (remove) stale.push_back(DirPath() + "/" + std::string(name));
  }
  ::closedir(dir);
  for (const std::string& path : stale) ::unlink(path.c_str());
}

void Corpus::RestoreBaseline(const CorpusStats& floors) {
  session_.RestoreCounterFloors(floors.documents, floors.failed_documents,
                                floors.bytes_ingested, floors.epoch);
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (queries_ < floors.queries) queries_ = floors.queries;
  if (query_cache_hits_ < floors.query_cache_hits) {
    query_cache_hits_ = floors.query_cache_hits;
  }
  if (snapshots_ < floors.snapshots) snapshots_ = floors.snapshots;
  if (compactions_ < floors.compactions) compactions_ = floors.compactions;
  if (ingest_latency_.count < floors.ingest_latency.count) {
    ingest_latency_ = floors.ingest_latency;
  }
  if (query_latency_.count < floors.query_latency.count) {
    query_latency_ = floors.query_latency;
  }
}

CorpusStats Corpus::GetStats() const {
  CorpusStats stats;
  stats.documents = session_.documents();
  stats.failed_documents = session_.failed_documents();
  stats.bytes_ingested = session_.bytes_ingested();
  stats.epoch = session_.epoch();
  stats.approx_bytes = static_cast<int64_t>(session_.ApproxBytes());
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    stats.generation = generation_;
    stats.journal_bytes = journal_.is_open() ? journal_.bytes() : 0;
    stats.replayed_documents = replayed_documents_;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.queries = queries_;
  stats.query_cache_hits = query_cache_hits_;
  stats.snapshots = snapshots_;
  stats.compactions = compactions_;
  stats.ingest_latency = ingest_latency_;
  stats.query_latency = query_latency_;
  return stats;
}

}  // namespace serve
}  // namespace condtd
