#ifndef CONDTD_SERVE_LATENCY_H_
#define CONDTD_SERVE_LATENCY_H_

#include <array>
#include <cstdint>

#include "obs/metrics.h"

namespace condtd {
namespace serve {

/// Fixed-bucket latency histogram for per-corpus request timing, using
/// the same decade bucket bounds as the obs stage histograms so STATS
/// consumers read one scale everywhere. Plain data — the owner (Corpus)
/// synchronizes access; quantiles are bucket-interpolated estimates,
/// good to roughly one decade of resolution (exact percentiles live in
/// bench/serve_latency.cc, which keeps raw samples).
struct LatencyHistogram {
  int64_t count = 0;
  int64_t total_ns = 0;
  std::array<int64_t, obs::kLatencyBuckets> buckets{};

  void Record(int64_t elapsed_ns) {
    ++count;
    total_ns += elapsed_ns;
    int bucket = 0;
    while (bucket < obs::kLatencyBuckets - 1 &&
           elapsed_ns > obs::kBucketBoundsNs[bucket]) {
      ++bucket;
    }
    ++buckets[bucket];
  }

  /// Estimated q-quantile (0 < q < 1) in ns: walk the cumulative
  /// histogram to the target rank, then interpolate linearly inside the
  /// landing bucket. The unbounded last bucket extends one more decade.
  int64_t QuantileNs(double q) const {
    if (count == 0) return 0;
    double target = q * static_cast<double>(count);
    int64_t cumulative = 0;
    for (int bucket = 0; bucket < obs::kLatencyBuckets; ++bucket) {
      if (buckets[bucket] == 0) continue;
      double before = static_cast<double>(cumulative);
      cumulative += buckets[bucket];
      if (static_cast<double>(cumulative) < target) continue;
      int64_t lo = bucket == 0 ? 0 : obs::kBucketBoundsNs[bucket - 1];
      int64_t hi = bucket < obs::kLatencyBuckets - 1
                       ? obs::kBucketBoundsNs[bucket]
                       : obs::kBucketBoundsNs[obs::kLatencyBuckets - 2] * 10;
      double fraction =
          (target - before) / static_cast<double>(buckets[bucket]);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      return lo + static_cast<int64_t>(fraction *
                                       static_cast<double>(hi - lo));
    }
    return obs::kBucketBoundsNs[obs::kLatencyBuckets - 2] * 10;
  }

  void MergeFrom(const LatencyHistogram& other) {
    count += other.count;
    total_ns += other.total_ns;
    for (int i = 0; i < obs::kLatencyBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
  }
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_LATENCY_H_
