#ifndef CONDTD_SERVE_CLIENT_H_
#define CONDTD_SERVE_CLIENT_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "serve/wire.h"

namespace condtd {
namespace serve {

/// A blocking wire-protocol client over one connection. Used by
/// `condtd client`, the serve tests and the latency bench. Not
/// thread-safe; the protocol is strictly request/response, so give each
/// concurrent caller its own Client.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> ConnectUnix(const std::string& path);
  static Result<Client> ConnectTcp(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends a bare command line (no payload) and reads the response.
  Result<std::string> Roundtrip(std::string_view command_line);

  Result<std::string> Ping();
  Result<std::string> IngestInline(std::string_view corpus,
                                   std::string_view doc);
  Result<std::string> IngestPath(std::string_view corpus,
                                 std::string_view path);
  /// `algorithm` empty = server default; `xsd` selects XSD output.
  Result<std::string> Query(std::string_view corpus,
                            std::string_view algorithm = {},
                            bool xsd = false);
  /// `corpus` empty = snapshot every corpus.
  Result<std::string> Snapshot(std::string_view corpus = {});
  Result<std::string> Stats();
  Result<std::string> Shutdown();

 private:
  int fd_ = -1;
  WireReader reader_;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_CLIENT_H_
