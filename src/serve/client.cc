#include "serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace condtd {
namespace serve {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("connect " + path + ": " + ::strerror(saved));
  }
  Client client;
  client.fd_ = fd;
  client.reader_.Reset(fd);
  return client;
}

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("connect " + host + ":" +
                            std::to_string(port) + ": " +
                            ::strerror(saved));
  }
  Client client;
  client.fd_ = fd;
  client.reader_.Reset(fd);
  return client;
}

Result<std::string> Client::Roundtrip(std::string_view command_line) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string request(command_line);
  request.push_back('\n');
  CONDTD_RETURN_IF_ERROR(WriteAll(fd_, request));
  return ReadResponse(&reader_);
}

Result<std::string> Client::Ping() { return Roundtrip("PING"); }

Result<std::string> Client::IngestInline(std::string_view corpus,
                                         std::string_view doc) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string request;
  request.reserve(doc.size() + corpus.size() + 32);
  request.append("INGEST ");
  request.append(corpus);
  request.append(" INLINE ");
  request.append(std::to_string(doc.size()));
  request.push_back('\n');
  request.append(doc);
  request.push_back('\n');
  CONDTD_RETURN_IF_ERROR(WriteAll(fd_, request));
  return ReadResponse(&reader_);
}

Result<std::string> Client::IngestPath(std::string_view corpus,
                                       std::string_view path) {
  std::string command = "INGEST ";
  command.append(corpus);
  command.append(" PATH ");
  command.append(path);
  return Roundtrip(command);
}

Result<std::string> Client::Query(std::string_view corpus,
                                  std::string_view algorithm, bool xsd) {
  std::string command = "QUERY ";
  command.append(corpus);
  if (!algorithm.empty()) {
    command.append(" --algorithm=");
    command.append(algorithm);
  }
  if (xsd) command.append(" --format=xsd");
  return Roundtrip(command);
}

Result<std::string> Client::Snapshot(std::string_view corpus) {
  std::string command = "SNAPSHOT";
  if (!corpus.empty()) {
    command.append(" ");
    command.append(corpus);
  }
  return Roundtrip(command);
}

Result<std::string> Client::Stats() { return Roundtrip("STATS"); }

Result<std::string> Client::Shutdown() { return Roundtrip("SHUTDOWN"); }

}  // namespace serve
}  // namespace condtd
