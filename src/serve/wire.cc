#include "serve/wire.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <utility>

namespace condtd {
namespace serve {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

/// Limits on a single frame so a hostile/buggy peer cannot make one
/// connection allocate unbounded memory from a forged length prefix.
constexpr size_t kMaxFrameBytes = size_t{1} << 31;  // 2 GiB
constexpr size_t kMaxLineBytes = 1 << 20;           // 1 MiB command line

Status IoError(const char* op) {
  return Status::Internal(std::string(op) + ": " + ::strerror(errno));
}

}  // namespace

void WireReader::Reset(int fd) {
  fd_ = fd;
  buffer_.clear();
  pos_ = 0;
  eof_ = false;
}

Status WireReader::Fill() {
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  std::array<char, kReadChunk> chunk;
  ssize_t got;
  do {
    got = ::read(fd_, chunk.data(), chunk.size());
  } while (got < 0 && errno == EINTR);
  if (got < 0) return IoError("read");
  if (got == 0) {
    eof_ = true;
    return Status::OK();
  }
  buffer_.append(chunk.data(), static_cast<size_t>(got));
  return Status::OK();
}

Status WireReader::ReadLine(std::string* line, bool* eof) {
  line->clear();
  *eof = false;
  for (;;) {
    size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      size_t len = newline - pos_;
      if (len > 0 && buffer_[pos_ + len - 1] == '\r') --len;
      line->assign(buffer_, pos_, len);
      pos_ = newline + 1;
      return Status::OK();
    }
    if (buffer_.size() - pos_ > kMaxLineBytes) {
      return Status::InvalidArgument("command line exceeds 1 MiB");
    }
    if (eof_) {
      if (pos_ == buffer_.size()) {
        *eof = true;  // clean close between requests
        return Status::OK();
      }
      return Status::InvalidArgument("connection closed mid-line");
    }
    CONDTD_RETURN_IF_ERROR(Fill());
  }
}

Status WireReader::ReadExact(size_t n, std::string* out) {
  out->clear();
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length exceeds 2 GiB");
  }
  out->reserve(n);
  while (out->size() < n) {
    size_t available = buffer_.size() - pos_;
    if (available > 0) {
      size_t take = std::min(available, n - out->size());
      out->append(buffer_, pos_, take);
      pos_ += take;
      continue;
    }
    if (eof_) {
      return Status::InvalidArgument("connection closed mid-payload");
    }
    CONDTD_RETURN_IF_ERROR(Fill());
  }
  return Status::OK();
}

Status WireReader::Discard(size_t n) {
  while (n > 0) {
    size_t available = buffer_.size() - pos_;
    if (available > 0) {
      size_t take = std::min(available, n);
      pos_ += take;
      n -= take;
      continue;
    }
    if (eof_) {
      return Status::InvalidArgument("connection closed mid-payload");
    }
    // Fill() reads at most kReadChunk at a time and the loop consumes
    // everything it buffers, so the resident buffer stays one chunk
    // regardless of how large the announced payload is.
    CONDTD_RETURN_IF_ERROR(Fill());
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    // send() for MSG_NOSIGNAL; a peer that hung up yields EPIPE here
    // instead of a process-wide SIGPIPE.
    ssize_t wrote = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOTSOCK) {
        // Plain pipes/files (in-process tests) don't accept send().
        wrote = ::write(fd, data.data(), data.size());
        if (wrote < 0) {
          if (errno == EINTR) continue;
          return IoError("write");
        }
      } else {
        return IoError("send");
      }
    }
    data.remove_prefix(static_cast<size_t>(wrote));
  }
  return Status::OK();
}

Status WriteResponse(int fd, bool ok, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 16);
  frame.append(ok ? "OK " : "ERR ");
  frame.append(std::to_string(payload.size()));
  frame.push_back('\n');
  frame.append(payload);
  frame.push_back('\n');
  return WriteAll(fd, frame);
}

Result<std::string> ReadResponse(WireReader* reader) {
  std::string header;
  bool eof = false;
  CONDTD_RETURN_IF_ERROR(reader->ReadLine(&header, &eof));
  if (eof) {
    return Status::Internal("server closed connection before responding");
  }
  bool ok;
  std::string_view rest;
  if (header.rfind("OK ", 0) == 0) {
    ok = true;
    rest = std::string_view(header).substr(3);
  } else if (header.rfind("ERR ", 0) == 0) {
    ok = false;
    rest = std::string_view(header).substr(4);
  } else {
    return Status::Internal("malformed response header: " + header);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long nbytes = ::strtoull(std::string(rest).c_str(), &end, 10);
  if (rest.empty() || errno != 0 ||
      nbytes > static_cast<unsigned long long>(kMaxFrameBytes)) {
    return Status::Internal("malformed response length: " + header);
  }
  std::string payload;
  CONDTD_RETURN_IF_ERROR(
      reader->ReadExact(static_cast<size_t>(nbytes), &payload));
  std::string terminator;
  CONDTD_RETURN_IF_ERROR(reader->ReadExact(1, &terminator));
  if (terminator != "\n") {
    return Status::Internal("response payload not newline-terminated");
  }
  if (ok) return payload;
  return StatusFromWireText(payload);
}

Status StatusFromWireText(std::string_view text) {
  // Status::ToString() renders "<CodeName>: <message>"; invert the
  // rendering so client callers see the server's real code.
  static constexpr struct {
    std::string_view name;
    StatusCode code;
  } kCodes[] = {
      {"InvalidArgument", StatusCode::kInvalidArgument},
      {"NotFound", StatusCode::kNotFound},
      {"ParseError", StatusCode::kParseError},
      {"FailedPrecondition", StatusCode::kFailedPrecondition},
      {"NoEquivalentSore", StatusCode::kNoEquivalentSore},
      {"ResourceExhausted", StatusCode::kResourceExhausted},
      {"Internal", StatusCode::kInternal},
  };
  for (const auto& entry : kCodes) {
    if (text.size() > entry.name.size() + 2 &&
        text.substr(0, entry.name.size()) == entry.name &&
        text.substr(entry.name.size(), 2) == ": ") {
      return Status(entry.code,
                    std::string(text.substr(entry.name.size() + 2)));
    }
  }
  return Status::Internal(std::string(text));
}

}  // namespace serve
}  // namespace condtd
