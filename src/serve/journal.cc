#include "serve/journal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "base/file.h"
#include "obs/metrics.h"

namespace condtd {
namespace serve {

Journal::~Journal() { Close(); }

Journal::Journal(Journal&& other) noexcept
    : fd_(other.fd_),
      fsync_appends_(other.fsync_appends_),
      bytes_(other.bytes_) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    fsync_appends_ = other.fsync_appends_;
    bytes_ = other.bytes_;
    other.fd_ = -1;
  }
  return *this;
}

void Journal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Journal> Journal::Open(const std::string& path, bool fsync_appends) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot open journal " + path + ": " +
                            ::strerror(errno));
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("cannot stat journal " + path + ": " +
                            ::strerror(saved));
  }
  Journal journal;
  journal.fd_ = fd;
  journal.fsync_appends_ = fsync_appends;
  journal.bytes_ = static_cast<int64_t>(info.st_size);
  return journal;
}

Status Journal::Append(int64_t seq, std::string_view doc) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is closed");
  // One writev per record: O_APPEND keeps the gathered write atomic
  // with respect to offset (a crash can only tear the record's tail,
  // which Replay discards), and the document bytes go to the kernel
  // straight from the caller's buffer instead of through a per-record
  // copy.
  std::string header;
  header.reserve(32);
  header.append("doc ");
  header.append(std::to_string(seq));
  header.push_back(' ');
  header.append(std::to_string(doc.size()));
  header.push_back('\n');
  char terminator = '\n';
  struct iovec iov[3] = {
      {const_cast<char*>(header.data()), header.size()},
      {const_cast<char*>(doc.data()), doc.size()},
      {&terminator, 1},
  };
  size_t record_size = header.size() + doc.size() + 1;
  size_t done = 0;
  int first = 0;
  while (done < record_size) {
    ssize_t wrote = ::writev(fd_, iov + first, 3 - first);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("journal append: ") +
                              ::strerror(errno));
    }
    done += static_cast<size_t>(wrote);
    // Short write (disk pressure, signals): advance the iovec cursor
    // and finish the record — only the very first writev needs the
    // offset atomicity, later pieces extend the same record.
    size_t skip = static_cast<size_t>(wrote);
    while (first < 3 && skip >= iov[first].iov_len) {
      skip -= iov[first].iov_len;
      ++first;
    }
    if (first < 3 && skip > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + skip;
      iov[first].iov_len -= skip;
    }
  }
  bytes_ += static_cast<int64_t>(record_size);
  if (fsync_appends_) CONDTD_RETURN_IF_ERROR(Sync());
  obs::SchedAdd(obs::SchedCounter::kJournalAppends, 1);
  return Status::OK();
}

Status Journal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("journal is closed");
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(std::string("journal fdatasync: ") +
                            ::strerror(errno));
  }
  return Status::OK();
}

Result<Journal::ReplayStats> Journal::Replay(
    const std::string& path,
    const std::function<Status(int64_t, std::string_view)>& fold) {
  ReplayStats stats;
  struct stat info;
  if (::stat(path.c_str(), &info) != 0 && errno == ENOENT) {
    return stats;  // fresh corpus: nothing journaled since the snapshot
  }
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t newline = data.find('\n', pos);
    if (newline == std::string::npos) break;  // torn header
    std::string_view header(data.data() + pos, newline - pos);
    if (header.substr(0, 4) != "doc ") {
      // Not a valid header: either a torn/corrupt tail or garbage. The
      // safe interpretation is the same — stop before this record.
      break;
    }
    header.remove_prefix(4);
    size_t space = header.find(' ');
    if (space == std::string_view::npos) break;
    errno = 0;
    char* end = nullptr;
    long long seq = ::strtoll(std::string(header.substr(0, space)).c_str(),
                              &end, 10);
    unsigned long long nbytes = ::strtoull(
        std::string(header.substr(space + 1)).c_str(), &end, 10);
    if (errno != 0) break;
    size_t payload_start = newline + 1;
    // Complete record = payload + its trailing '\n' fully present.
    if (payload_start + nbytes + 1 > data.size()) break;
    if (data[payload_start + nbytes] != '\n') break;
    CONDTD_RETURN_IF_ERROR(fold(
        seq, std::string_view(data.data() + payload_start, nbytes)));
    ++stats.records;
    obs::SchedAdd(obs::SchedCounter::kJournalReplayedDocs, 1);
    pos = payload_start + nbytes + 1;
  }
  stats.torn_tail_bytes = static_cast<int64_t>(data.size() - pos);
  return stats;
}

}  // namespace serve
}  // namespace condtd
