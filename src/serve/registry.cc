#include "serve/registry.h"

#include <dirent.h>
#include <errno.h>
#include <string.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace condtd {
namespace serve {

CorpusRegistry::CorpusRegistry(Options options)
    : options_(std::move(options)) {}

CorpusRegistry::CorpusRegistry(Corpus::Options corpus_defaults)
    : CorpusRegistry([&] {
        Options options;
        options.corpus = std::move(corpus_defaults);
        return options;
      }()) {}

CorpusRegistry::~CorpusRegistry() { StopSweeper(); }

int64_t CorpusRegistry::NowNs() const {
  if (options_.clock_ns) return options_.clock_ns();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CorpusRegistry::ValidCorpusId(std::string_view id) {
  if (id.empty() || id.size() > 128) return false;
  if (id == "." || id == "..") return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::shared_ptr<Corpus>> CorpusRegistry::OpenLocked(
    const std::string& id) {
  Result<std::unique_ptr<Corpus>> opened =
      Corpus::Open(id, options_.corpus);
  if (!opened.ok()) return opened.status();
  std::shared_ptr<Corpus> corpus = std::move(*opened);
  auto baseline = evicted_.find(id);
  if (baseline != evicted_.end()) {
    corpus->RestoreBaseline(baseline->second.stats);
    evicted_.erase(baseline);
  }
  corpora_[id] = Entry{corpus, NowNs()};
  obs::GaugeSet(obs::Gauge::kCorporaOpen,
                static_cast<int64_t>(corpora_.size()));
  return corpus;
}

bool CorpusRegistry::TryEvictLocked(std::unique_lock<std::mutex>& lock,
                                    const std::string& id,
                                    int64_t expected_touch_ns) {
  auto it = corpora_.find(id);
  if (it == corpora_.end()) return false;
  if (it->second.last_touch_ns != expected_touch_ns) return false;
  // Our local handle makes 2; any request in flight makes it more.
  std::shared_ptr<Corpus> corpus = it->second.corpus;
  if (corpus.use_count() > 2) return false;

  // Snapshot BEFORE unmapping, so a concurrent GetOrCreate on the same
  // id can never observe CURRENT mid-rotation or open a second live
  // Corpus over the same directory: until the erase below, reopeners
  // find this entry in the map and share it.
  lock.unlock();
  Status persisted = corpus->WriteSnapshot();
  lock.lock();

  it = corpora_.find(id);
  if (it == corpora_.end()) return false;
  if (it->second.corpus != corpus) return false;
  if (it->second.last_touch_ns != expected_touch_ns) return false;
  if (corpus.use_count() > 2) return false;  // touched while snapshotting
  if (!persisted.ok()) return false;  // keep it live; retry next sweep

  evicted_[id] = EvictedBaseline{corpus->GetStats()};
  corpora_.erase(it);
  obs::GaugeSet(obs::Gauge::kCorporaOpen,
                static_cast<int64_t>(corpora_.size()));
  obs::SchedAdd(obs::SchedCounter::kCorporaEvicted, 1);
  return true;
}

Result<std::shared_ptr<Corpus>> CorpusRegistry::GetOrCreate(
    const std::string& id) {
  if (!ValidCorpusId(id)) {
    return Status::InvalidArgument(
        "invalid corpus id (want [A-Za-z0-9_.-]+, at most 128 chars): " +
        id);
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = corpora_.find(id);
  if (it != corpora_.end()) {
    it->second.last_touch_ns = NowNs();
    return it->second.corpus;
  }
  if (options_.max_corpora > 0 &&
      static_cast<int>(corpora_.size()) >= options_.max_corpora) {
    if (!durable()) {
      return Status::ResourceExhausted(
          "corpus cap reached (" + std::to_string(options_.max_corpora) +
          " open, no data dir to evict into); refusing new corpus " + id);
    }
    // Best-effort LRU trim: evict idle tenants until under the cap; a
    // fully pinned registry overshoots briefly and the sweeper catches
    // up, which beats failing a legitimate INGEST.
    while (static_cast<int>(corpora_.size()) >= options_.max_corpora) {
      std::string victim;
      int64_t victim_touch = 0;
      for (const auto& [cid, entry] : corpora_) {
        if (entry.corpus.use_count() > 1) continue;
        if (victim.empty() || entry.last_touch_ns < victim_touch) {
          victim = cid;
          victim_touch = entry.last_touch_ns;
        }
      }
      if (victim.empty()) break;  // every tenant pinned right now
      if (!TryEvictLocked(lock, victim, victim_touch)) break;
      // The map changed while unlocked; the reopen race is benign
      // (find below re-checks), but re-derive the victim scan state.
      auto reopened = corpora_.find(id);
      if (reopened != corpora_.end()) {
        reopened->second.last_touch_ns = NowNs();
        return reopened->second.corpus;
      }
    }
  }
  // TryEvictLocked may have dropped the lock; re-check before opening.
  it = corpora_.find(id);
  if (it != corpora_.end()) {
    it->second.last_touch_ns = NowNs();
    return it->second.corpus;
  }
  return OpenLocked(id);
}

Result<std::shared_ptr<Corpus>> CorpusRegistry::Get(const std::string& id) {
  if (!ValidCorpusId(id)) {
    return Status::InvalidArgument(
        "invalid corpus id (want [A-Za-z0-9_.-]+, at most 128 chars): " +
        id);
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = corpora_.find(id);
  if (it != corpora_.end()) {
    it->second.last_touch_ns = NowNs();
    return it->second.corpus;
  }
  if (durable()) {
    // An evicted corpus left its directory behind; re-open it so
    // eviction stays invisible. A never-created id has no directory
    // and stays NotFound.
    std::string path = options_.corpus.data_dir + "/" + id;
    struct stat info;
    if (::stat(path.c_str(), &info) == 0 && S_ISDIR(info.st_mode)) {
      return OpenLocked(id);
    }
  }
  return Status::NotFound("no such corpus: " + id);
}

std::vector<std::shared_ptr<Corpus>> CorpusRegistry::List() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Corpus>> result;
  result.reserve(corpora_.size());
  for (const auto& [id, entry] : corpora_) {
    (void)id;
    result.push_back(entry.corpus);
  }
  return result;  // std::map iteration is already id-ascending
}

Status CorpusRegistry::RecoverAll() {
  if (!durable()) return Status::OK();
  DIR* dir = ::opendir(options_.corpus.data_dir.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();  // nothing persisted yet
    return Status::Internal("cannot scan data dir " +
                            options_.corpus.data_dir + ": " +
                            ::strerror(errno));
  }
  std::vector<std::string> ids;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (!ValidCorpusId(name)) continue;  // skips "." and ".." too
    std::string path = options_.corpus.data_dir + "/" + name;
    struct stat info;
    if (::stat(path.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
      continue;
    }
    ids.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());  // deterministic recovery order
  for (const std::string& id : ids) {
    Result<std::shared_ptr<Corpus>> corpus = GetOrCreate(id);
    if (!corpus.ok()) {
      return Status(corpus.status().code(),
                    "recovering corpus " + id + ": " +
                        corpus.status().message());
    }
  }
  return Status::OK();
}

int64_t CorpusRegistry::SweepNow() {
  if (!durable()) return 0;  // ephemeral corpora must never be closed
  int64_t evicted = 0;
  std::unique_lock<std::mutex> lock(mu_);

  if (options_.corpus_ttl_seconds > 0) {
    int64_t cutoff_ns =
        NowNs() - options_.corpus_ttl_seconds * int64_t{1000000000};
    // Candidates first: TryEvictLocked drops the lock, so iterating the
    // live map while evicting would race with reopens.
    std::vector<std::pair<std::string, int64_t>> idle;
    for (const auto& [id, entry] : corpora_) {
      if (entry.last_touch_ns <= cutoff_ns) {
        idle.emplace_back(id, entry.last_touch_ns);
      }
    }
    for (const auto& [id, touch] : idle) {
      if (TryEvictLocked(lock, id, touch)) ++evicted;
    }
  }

  if (options_.max_corpora > 0) {
    while (static_cast<int>(corpora_.size()) > options_.max_corpora) {
      std::string victim;
      int64_t victim_touch = 0;
      for (const auto& [id, entry] : corpora_) {
        if (entry.corpus.use_count() > 1) continue;
        if (victim.empty() || entry.last_touch_ns < victim_touch) {
          victim = id;
          victim_touch = entry.last_touch_ns;
        }
      }
      if (victim.empty()) break;
      if (!TryEvictLocked(lock, victim, victim_touch)) break;
      ++evicted;
    }
  }
  return evicted;
}

void CorpusRegistry::StartSweeper() {
  if (sweeper_.joinable()) return;
  if (!durable()) return;
  if (options_.corpus_ttl_seconds <= 0 && options_.max_corpora <= 0) return;
  {
    std::lock_guard<std::mutex> lock(sweeper_mu_);
    sweeper_stop_ = false;
  }
  sweeper_ = std::thread([this] { SweeperLoop(); });
}

void CorpusRegistry::StopSweeper() {
  {
    std::lock_guard<std::mutex> lock(sweeper_mu_);
    sweeper_stop_ = true;
  }
  sweeper_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void CorpusRegistry::SweeperLoop() {
  std::unique_lock<std::mutex> lock(sweeper_mu_);
  while (!sweeper_stop_) {
    sweeper_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.sweep_interval_ms),
        [this] { return sweeper_stop_; });
    if (sweeper_stop_) return;
    lock.unlock();
    SweepNow();
    lock.lock();
  }
}

}  // namespace serve
}  // namespace condtd
