#include "serve/registry.h"

#include <dirent.h>
#include <errno.h>
#include <string.h>
#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace condtd {
namespace serve {

CorpusRegistry::CorpusRegistry(Corpus::Options defaults)
    : defaults_(std::move(defaults)) {}

bool CorpusRegistry::ValidCorpusId(std::string_view id) {
  if (id.empty() || id.size() > 128) return false;
  if (id == "." || id == "..") return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<Corpus*> CorpusRegistry::GetOrCreate(const std::string& id) {
  if (!ValidCorpusId(id)) {
    return Status::InvalidArgument(
        "invalid corpus id (want [A-Za-z0-9_.-]+, at most 128 chars): " +
        id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = corpora_.find(id);
  if (it == corpora_.end()) {
    Result<std::unique_ptr<Corpus>> corpus = Corpus::Open(id, defaults_);
    if (!corpus.ok()) return corpus.status();
    it = corpora_.emplace(id, std::move(*corpus)).first;
    obs::GaugeSet(obs::Gauge::kCorporaOpen,
                  static_cast<int64_t>(corpora_.size()));
  }
  return it->second.get();
}

Result<Corpus*> CorpusRegistry::Get(const std::string& id) {
  if (!ValidCorpusId(id)) {
    return Status::InvalidArgument(
        "invalid corpus id (want [A-Za-z0-9_.-]+, at most 128 chars): " +
        id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = corpora_.find(id);
  if (it == corpora_.end()) {
    return Status::NotFound("no such corpus: " + id);
  }
  return it->second.get();
}

std::vector<Corpus*> CorpusRegistry::List() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Corpus*> result;
  result.reserve(corpora_.size());
  for (const auto& [id, corpus] : corpora_) {
    (void)id;
    result.push_back(corpus.get());
  }
  return result;  // std::map iteration is already id-ascending
}

Status CorpusRegistry::RecoverAll() {
  if (defaults_.data_dir.empty()) return Status::OK();
  DIR* dir = ::opendir(defaults_.data_dir.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();  // nothing persisted yet
    return Status::Internal("cannot scan data dir " + defaults_.data_dir +
                            ": " + ::strerror(errno));
  }
  std::vector<std::string> ids;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (!ValidCorpusId(name)) continue;  // skips "." and ".." too
    std::string path = defaults_.data_dir + "/" + name;
    struct stat info;
    if (::stat(path.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
      continue;
    }
    ids.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());  // deterministic recovery order
  for (const std::string& id : ids) {
    Result<Corpus*> corpus = GetOrCreate(id);
    if (!corpus.ok()) {
      return Status(corpus.status().code(),
                    "recovering corpus " + id + ": " +
                        corpus.status().message());
    }
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace condtd
