#ifndef CONDTD_SERVE_SERVER_H_
#define CONDTD_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "serve/corpus.h"
#include "serve/registry.h"
#include "serve/wire.h"

namespace condtd {
namespace serve {

struct ServerOptions {
  /// Unix-domain listener path. When non-empty it is the listener;
  /// otherwise `tcp_port` must be >= 0.
  std::string unix_socket;
  /// TCP listener (loopback-bound): -1 = disabled, 0 = ephemeral port
  /// (read the bound port back with Server::port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Connection-serving worker threads. Each connection is pinned to
  /// one worker for its lifetime; cross-corpus requests on different
  /// connections run concurrently.
  int workers = 4;
  /// Per-corpus configuration (inference options, data_dir durability,
  /// snapshot cadence, memory cap, replay jobs).
  Corpus::Options corpus;
};

/// The condtd serve daemon: a socket front-end over CorpusRegistry.
/// One accept thread feeds a worker pool; workers speak the wire
/// protocol (serve/wire.h) and route INGEST/QUERY/SNAPSHOT/STATS to
/// corpora. Lifecycle: Start() -> (clients) -> a SHUTDOWN command or
/// RequestStop() -> Wait() joins everything. In-process embedders
/// (tests, bench) call Start()/Stop() directly; the CLI wires this to
/// `condtd serve`.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, recovers persisted corpora, and spawns the
  /// accept thread plus workers. Returns without blocking.
  Status Start();

  /// Signals shutdown from any thread (including a worker handling
  /// SHUTDOWN): stops accepting, unblocks idle and mid-read workers.
  void RequestStop();

  /// Blocks until shutdown is requested, then joins all threads and
  /// releases the listener. Call from the thread that owns the server.
  void Wait();

  /// RequestStop() + Wait().
  void Stop();

  /// The bound TCP port (after Start() with tcp_port >= 0).
  int port() const { return port_; }

  CorpusRegistry* registry() { return &registry_; }

 private:
  void AcceptLoop();
  void WorkerLoop(int worker_index);
  void ServeConnection(int fd, int worker_index);
  /// Executes one request line (reading any inline payload through
  /// `reader`); returns the OK payload or the error to frame.
  Result<std::string> Handle(const std::string& line, WireReader* reader,
                             bool* shutdown);
  Result<std::string> HandleIngest(const std::vector<std::string>& tokens,
                                   const std::string& line,
                                   WireReader* reader);
  Result<std::string> HandleQuery(const std::vector<std::string>& tokens);
  Result<std::string> HandleSnapshot(const std::vector<std::string>& tokens);
  std::string RenderStats();

  ServerOptions options_;
  CorpusRegistry registry_;
  int listen_fd_ = -1;
  int port_ = -1;
  bool started_ = false;
  bool joined_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable stop_requested_cv_;
  std::deque<int> pending_conns_;
  std::vector<int> active_fds_;  ///< per-worker live connection (or -1)
  bool stopping_ = false;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_SERVER_H_
