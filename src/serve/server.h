#ifndef CONDTD_SERVE_SERVER_H_
#define CONDTD_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "serve/corpus.h"
#include "serve/registry.h"
#include "serve/wire.h"

namespace condtd {
namespace serve {

struct ServerOptions {
  /// Unix-domain listener path. When non-empty it is the listener;
  /// otherwise `tcp_port` must be >= 0.
  std::string unix_socket;
  /// TCP listener (loopback-bound): -1 = disabled, 0 = ephemeral port
  /// (read the bound port back with Server::port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// HTTP listener for GET /metrics (Prometheus text format) and
  /// GET /healthz: -1 = disabled, 0 = ephemeral port (read it back with
  /// Server::http_port()). Shares the worker pool with the wire
  /// protocol.
  int http_port = -1;
  std::string http_host = "127.0.0.1";
  /// Connection-serving worker threads. Each connection is pinned to
  /// one worker for its lifetime; cross-corpus requests on different
  /// connections run concurrently.
  int workers = 4;
  /// Reject INGEST ... INLINE payloads longer than this. Bounds the
  /// per-request allocation a client can force; oversized announcements
  /// are drained in fixed-size chunks, never buffered.
  int64_t max_inline_bytes = int64_t{1} << 28;  // 256 MiB
  /// Evict a corpus idle for this many seconds (0 = never; durable
  /// registries only). See CorpusRegistry::Options.
  int64_t corpus_ttl_seconds = 0;
  /// Keep at most this many corpora open (0 = unbounded).
  int max_corpora = 0;
  /// Test seam for the eviction clock (CorpusRegistry::Options).
  std::function<int64_t()> clock_ns;
  /// Per-corpus configuration (inference options, data_dir durability,
  /// snapshot cadence, memory cap, replay jobs).
  Corpus::Options corpus;
};

/// The condtd serve daemon: a socket front-end over CorpusRegistry.
/// One accept thread feeds a worker pool; workers speak the wire
/// protocol (serve/wire.h) and route INGEST/QUERY/SNAPSHOT/STATS to
/// corpora, or answer the HTTP listener's /metrics and /healthz.
/// Lifecycle: Start() -> (clients) -> a SHUTDOWN command or
/// RequestStop() -> Wait() joins everything. In-process embedders
/// (tests, bench) call Start()/Stop() directly; the CLI wires this to
/// `condtd serve`.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners, recovers persisted corpora, spawns the
  /// accept thread plus workers, and starts the eviction sweeper.
  /// Returns without blocking.
  Status Start();

  /// Signals shutdown from any thread (including a worker handling
  /// SHUTDOWN): stops accepting, unblocks idle and mid-read workers.
  void RequestStop();

  /// Blocks until shutdown is requested, then joins all threads and
  /// releases the listeners. Call from the thread that owns the server.
  void Wait();

  /// RequestStop() + Wait().
  void Stop();

  /// The bound TCP port (after Start() with tcp_port >= 0).
  int port() const { return port_; }

  /// The bound HTTP port (after Start() with http_port >= 0).
  int http_port() const { return http_port_; }

  CorpusRegistry* registry() { return &registry_; }

 private:
  struct PendingConn {
    int fd = -1;
    bool http = false;
  };

  void AcceptLoop();
  void WorkerLoop(int worker_index);
  void ServeConnection(int fd, int worker_index);
  /// One HTTP exchange (GET /metrics | GET /healthz), then close.
  void ServeHttpConnection(int fd);
  /// Executes one request line (reading any inline payload through
  /// `reader`); returns the OK payload or the error to frame.
  Result<std::string> Handle(const std::string& line, WireReader* reader,
                             bool* shutdown);
  Result<std::string> HandleIngest(const std::vector<std::string>& tokens,
                                   const std::string& line,
                                   WireReader* reader);
  Result<std::string> HandleQuery(const std::vector<std::string>& tokens);
  Result<std::string> HandleSnapshot(const std::vector<std::string>& tokens);
  std::string RenderStats();

  ServerOptions options_;
  CorpusRegistry registry_;
  int listen_fd_ = -1;
  int port_ = -1;
  int http_listen_fd_ = -1;
  int http_port_ = -1;
  bool started_ = false;
  bool joined_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable stop_requested_cv_;
  std::deque<PendingConn> pending_conns_;
  std::vector<int> active_fds_;  ///< per-worker live connection (or -1)
  bool stopping_ = false;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_SERVER_H_
