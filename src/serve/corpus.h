#ifndef CONDTD_SERVE_CORPUS_H_
#define CONDTD_SERVE_CORPUS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "base/status.h"
#include "infer/inferrer.h"
#include "infer/session.h"
#include "io/input_buffer.h"
#include "serve/journal.h"
#include "serve/latency.h"

namespace condtd {
namespace serve {

/// Point-in-time statistics for one corpus (STATS command).
struct CorpusStats {
  int64_t documents = 0;        ///< successfully ingested documents
  int64_t failed_documents = 0; ///< rejected documents (parse/open errors)
  int64_t bytes_ingested = 0;   ///< raw XML bytes of ingested documents
  int64_t queries = 0;
  int64_t query_cache_hits = 0;
  int64_t snapshots = 0;        ///< snapshot rotations since open
  int64_t compactions = 0;      ///< rotations forced by journal size
  int64_t replayed_documents = 0; ///< journal records replayed at open
  int64_t epoch = 0;            ///< session version counter
  int64_t generation = 0;       ///< current snapshot/journal generation
  int64_t journal_bytes = 0;    ///< size of the live journal file
  int64_t approx_bytes = 0;     ///< the condtd_corpus_bytes gauge
  LatencyHistogram ingest_latency;
  LatencyHistogram query_latency;
};

/// One tenant corpus in the serve daemon: a live IngestSession plus its
/// durability (generational snapshot + append-only journal) and its
/// epoch-keyed schema cache.
///
/// Durability protocol (docs/STATE_FORMAT.md, "serve durability"):
/// every Ingest folds the document into the session FIRST, appends it
/// to the journal SECOND, and only then acknowledges — so the journal
/// holds exactly the acknowledged document multiset, and recovery
/// (base snapshot LoadState + sequential journal re-fold) reproduces
/// the acknowledged state byte-identically. WriteSnapshot rotates to a
/// fresh generation with an atomic CURRENT rename; a crash at any
/// instant leaves either the old generation fully intact or the new
/// one fully current — documents are never lost or double-folded.
///
/// Concurrency: one writer at a time (ingest_mu_); readers (Query)
/// capture a consistent session snapshot and learn entirely off-lock,
/// so long learner runs never stall ingestion.
class Corpus {
 public:
  struct Options {
    InferenceOptions inference;
    InputBuffer::Options input;
    /// Daemon data directory; this corpus persists under
    /// `<data_dir>/<id>/`. Empty = ephemeral (no journal, no snapshots).
    std::string data_dir;
    /// fdatasync every journal append (crash-durability of every ack).
    bool fsync_journal = true;
    /// Auto-rotate a snapshot every N ingested documents (0 = only on
    /// explicit SNAPSHOT commands). Bounds replay time after a crash.
    int snapshot_every = 0;
    /// Auto-rotate a generation once the live journal exceeds this many
    /// bytes (0 = never). Unlike snapshot_every this bounds crash-replay
    /// time by journal *size*, independent of document count, so a
    /// corpus fed huge documents compacts just as reliably as one fed
    /// many small ones.
    int64_t compact_journal_bytes = 0;
    /// Refuse ingestion once ApproxBytes() exceeds this (0 = uncapped).
    int64_t max_corpus_bytes = 0;
    /// IngestEngine jobs for journal replay at open.
    int replay_jobs = 1;
  };

  /// Opens (and, when `options.data_dir` holds prior state, recovers)
  /// the corpus.
  static Result<std::unique_ptr<Corpus>> Open(std::string id,
                                              Options options);

  const std::string& id() const { return id_; }
  int64_t epoch() const { return session_.epoch(); }

  /// Folds one document and journals it. On any error the corpus state
  /// is unchanged (failed folds contribute nothing; fold-then-journal
  /// ordering means journal errors leave the document unacknowledged
  /// and freeze further ingestion until a snapshot re-establishes
  /// durability).
  Status Ingest(std::string_view doc);

  /// Reads `path` server-side (hardened open) and ingests it.
  Status IngestFile(const std::string& path);

  /// Learns a schema from a consistent snapshot of the current state.
  /// `algorithm` overrides the corpus learner by registry name (empty =
  /// corpus default); `xsd` selects XSD output instead of DTD. Served
  /// from the schema cache when the corpus has not changed since the
  /// same question was last answered.
  Result<std::string> Query(const std::string& algorithm, bool xsd);

  /// Rotates the durability generation: writes a fresh snapshot of the
  /// current state, atomically repoints CURRENT at it, and starts an
  /// empty journal. Blocks writers for the duration. No-op (OK) for
  /// ephemeral corpora.
  Status WriteSnapshot();

  CorpusStats GetStats() const;

  /// Rough resident bytes of the retained inference state.
  size_t ApproxBytes() const { return session_.ApproxBytes(); }

  /// Raises the monotone counters (documents, epoch, queries, latency
  /// totals, ...) to at least the values in `floors`. The registry
  /// calls this on the corpus it re-opened after an eviction so the
  /// client-visible `documents=`/`epoch=` acks and STATS totals stay
  /// monotone — eviction must be invisible to clients.
  void RestoreBaseline(const CorpusStats& floors);

 private:
  Corpus(std::string id, Options options);

  Status RecoverLocked();
  Status WriteSnapshotLocked(bool compaction);
  /// Unlinks every generation file other than the live one, plus stray
  /// `*.tmp` staging files — the on-disk garbage a crash between the
  /// CURRENT rename and the old-generation unlink leaves behind.
  /// Caller holds ingest_mu_ (no rotation can race the scan).
  void CollectStaleGenerationsLocked();
  std::string DirPath() const;
  std::string SnapshotPath(int64_t generation) const;
  std::string JournalPath(int64_t generation) const;
  std::string CurrentPath() const;
  bool durable() const { return !options_.data_dir.empty(); }

  const std::string id_;
  const Options options_;
  IngestSession session_;

  /// Serializes writers and generation rotation.
  mutable std::mutex ingest_mu_;
  Journal journal_;
  int64_t generation_ = 0;
  int64_t next_seq_ = 0;
  int64_t docs_since_snapshot_ = 0;
  int64_t replayed_documents_ = 0;
  bool journal_broken_ = false;

  /// Guards the schema cache and the non-session counters.
  mutable std::mutex stats_mu_;
  int64_t cached_epoch_ = -1;
  std::string cached_key_;
  std::string cached_schema_;
  int64_t queries_ = 0;
  int64_t query_cache_hits_ = 0;
  int64_t snapshots_ = 0;
  int64_t compactions_ = 0;
  LatencyHistogram ingest_latency_;
  LatencyHistogram query_latency_;
};

}  // namespace serve
}  // namespace condtd

#endif  // CONDTD_SERVE_CORPUS_H_
