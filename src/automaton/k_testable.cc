#include "automaton/k_testable.h"

#include <algorithm>

namespace condtd {

void KTestable::AddWord(const Word& word) {
  const int n = static_cast<int>(word.size());
  if (n < k_) {
    // Words shorter than k are carried verbatim (their factor sets are
    // empty, so they must be remembered to be accepted).
    short_words_.insert(word);
    return;
  }
  prefixes_.insert(Word(word.begin(), word.begin() + (k_ - 1)));
  suffixes_.insert(Word(word.end() - (k_ - 1), word.end()));
  for (int i = 0; i + k_ <= n; ++i) {
    factors_.insert(Word(word.begin() + i, word.begin() + i + k_));
  }
}

bool KTestable::Accepts(const Word& word) const {
  const int n = static_cast<int>(word.size());
  if (n < k_) return short_words_.count(word) > 0;
  if (prefixes_.count(Word(word.begin(), word.begin() + (k_ - 1))) == 0) {
    return false;
  }
  if (suffixes_.count(Word(word.end() - (k_ - 1), word.end())) == 0) {
    return false;
  }
  for (int i = 0; i + k_ <= n; ++i) {
    if (factors_.count(Word(word.begin() + i, word.begin() + i + k_)) == 0) {
      return false;
    }
  }
  return true;
}

Nfa KTestable::ToNfa() const {
  // Two disjoint state families: *entry* states keyed by the exact word
  // read so far (length < k, acceptance = membership in short_words_),
  // and *context* states keyed by the last (k-1)-gram of a word of
  // length >= k (acceptance = membership in suffixes_). Sharing them
  // would conflate the two acceptance conditions for words of length
  // exactly k-1.
  Nfa nfa;
  int initial = nfa.AddState(short_words_.count(Word{}) > 0);
  nfa.set_initial(initial);

  std::map<Word, int> entry_state_of;
  entry_state_of.emplace(Word{}, initial);
  std::map<Word, int> context_state_of;
  auto context_state = [&](const Word& context) {
    auto it = context_state_of.find(context);
    if (it != context_state_of.end()) return it->second;
    int id = nfa.AddState(suffixes_.count(context) > 0);
    context_state_of.emplace(context, id);
    return id;
  };
  auto entry_path = [&](const Word& word) {
    int prev = initial;
    for (size_t i = 0; i < word.size(); ++i) {
      Word sofar(word.begin(), word.begin() + i + 1);
      auto it = entry_state_of.find(sofar);
      int id;
      if (it == entry_state_of.end()) {
        id = nfa.AddState(short_words_.count(sofar) > 0);
        entry_state_of.emplace(sofar, id);
        nfa.AddTransition(prev, word[i], id);
      } else {
        id = it->second;
      }
      prev = id;
    }
    return prev;
  };

  // Spell every short word and every observed prefix through the entry
  // trie.
  for (const Word& word : short_words_) entry_path(word);
  for (const Word& prefix : prefixes_) entry_path(prefix);

  // Factor transitions between (k-1)-gram contexts, plus the hand-over
  // from the completed-prefix entry state into the context family.
  for (const Word& factor : factors_) {
    Word from(factor.begin(), factor.end() - 1);
    Word to(factor.begin() + 1, factor.end());
    int context_from = context_state(from);
    int context_to = context_state(to);
    nfa.AddTransition(context_from, factor.back(), context_to);
    if (prefixes_.count(from) > 0) {
      nfa.AddTransition(entry_state_of.at(from), factor.back(), context_to);
    }
  }
  return nfa;
}

KTestable InferKTestable(const std::vector<Word>& sample, int k) {
  KTestable kt(k);
  for (const Word& word : sample) kt.AddWord(word);
  return kt;
}

}  // namespace condtd
