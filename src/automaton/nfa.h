#ifndef CONDTD_AUTOMATON_NFA_H_
#define CONDTD_AUTOMATON_NFA_H_

#include <utility>
#include <vector>

#include "alphabet/alphabet.h"

namespace condtd {

/// A nondeterministic finite automaton without epsilon transitions
/// (Glushkov automata never need them). One initial state, any number of
/// accepting states.
class Nfa {
 public:
  Nfa() = default;

  /// Adds a state and returns its index.
  int AddState(bool accepting);

  void AddTransition(int from, Symbol symbol, int to);

  int num_states() const { return static_cast<int>(accepting_.size()); }
  int initial() const { return initial_; }
  void set_initial(int state) { initial_ = state; }
  bool IsAccepting(int state) const { return accepting_[state]; }
  void SetAccepting(int state, bool accepting) {
    accepting_[state] = accepting;
  }
  const std::vector<std::pair<Symbol, int>>& TransitionsFrom(
      int state) const {
    return transitions_[state];
  }

  /// Subset-simulation membership test.
  bool Accepts(const Word& word) const;

 private:
  int initial_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::vector<std::pair<Symbol, int>>> transitions_;
};

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_NFA_H_
