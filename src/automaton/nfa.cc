#include "automaton/nfa.h"

#include <algorithm>

namespace condtd {

int Nfa::AddState(bool accepting) {
  accepting_.push_back(accepting);
  transitions_.emplace_back();
  return num_states() - 1;
}

void Nfa::AddTransition(int from, Symbol symbol, int to) {
  transitions_[from].emplace_back(symbol, to);
}

bool Nfa::Accepts(const Word& word) const {
  if (num_states() == 0) return false;
  std::vector<bool> current(num_states(), false);
  current[initial_] = true;
  std::vector<bool> next(num_states(), false);
  for (Symbol s : word) {
    std::fill(next.begin(), next.end(), false);
    bool any = false;
    for (int q = 0; q < num_states(); ++q) {
      if (!current[q]) continue;
      for (const auto& [sym, to] : transitions_[q]) {
        if (sym == s) {
          next[to] = true;
          any = true;
        }
      }
    }
    if (!any) return false;
    std::swap(current, next);
  }
  for (int q = 0; q < num_states(); ++q) {
    if (current[q] && accepting_[q]) return true;
  }
  return false;
}

}  // namespace condtd
