#include "automaton/dot.h"

namespace condtd {

namespace {

std::string EscapeDot(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string SoaToDot(const Soa& soa, const Alphabet& alphabet) {
  std::string out = "digraph soa {\n  rankdir=LR;\n  src [shape=point];\n";
  if (soa.accepts_empty()) {
    out += "  snk [shape=doublecircle, label=\"\"];\n  src -> snk;\n";
  }
  for (int q = 0; q < soa.NumStates(); ++q) {
    out += "  q" + std::to_string(q) + " [label=\"" +
           EscapeDot(alphabet.Name(soa.LabelOf(q))) + "\", shape=" +
           (soa.IsFinal(q) ? "doublecircle" : "circle") + "];\n";
  }
  for (int q : soa.Initials()) {
    out += "  src -> q" + std::to_string(q) + ";\n";
  }
  for (int q = 0; q < soa.NumStates(); ++q) {
    for (int to : soa.Successors(q)) {
      out += "  q" + std::to_string(q) + " -> q" + std::to_string(to);
      if (soa.EdgeSupport(q, to) > 1) {
        out += " [label=\"" + std::to_string(soa.EdgeSupport(q, to)) + "\"]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string GfaToDot(const Gfa& gfa, const Alphabet& alphabet) {
  std::string out = "digraph gfa {\n  rankdir=LR;\n"
                    "  n0 [shape=point, label=\"\"];\n"
                    "  n1 [shape=doublecircle, label=\"\"];\n";
  for (int v : gfa.LiveNodes()) {
    out += "  n" + std::to_string(v) + " [label=\"" +
           EscapeDot(ToString(gfa.Label(v), alphabet, PrintStyle::kPaper)) +
           "\", shape=box];\n";
  }
  std::vector<int> nodes = gfa.LiveNodes();
  nodes.push_back(gfa.source());
  for (int v : nodes) {
    for (int to : gfa.Out(v)) {
      out += "  n" + std::to_string(v) + " -> n" + std::to_string(to) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace condtd
