#ifndef CONDTD_AUTOMATON_DFA_H_
#define CONDTD_AUTOMATON_DFA_H_

#include <vector>

#include "alphabet/alphabet.h"
#include "automaton/nfa.h"

namespace condtd {

/// A complete deterministic finite automaton over the dense symbol range
/// [0, num_symbols). Completeness (every state has a transition on every
/// symbol, possibly into a dead state) makes product constructions and
/// minimization straightforward.
class Dfa {
 public:
  explicit Dfa(int num_symbols) : num_symbols_(num_symbols) {}

  /// Adds a state whose transitions all point at itself until set;
  /// returns its index.
  int AddState(bool accepting);

  void SetTransition(int from, Symbol symbol, int to) {
    delta_[from][symbol] = to;
  }

  int num_states() const { return static_cast<int>(accepting_.size()); }
  int num_symbols() const { return num_symbols_; }
  int initial() const { return initial_; }
  void set_initial(int state) { initial_ = state; }
  bool IsAccepting(int state) const { return accepting_[state]; }
  int Transition(int from, Symbol symbol) const { return delta_[from][symbol]; }

  bool Accepts(const Word& word) const;

  /// Subset construction. Symbols >= num_symbols in the NFA are ignored.
  static Dfa FromNfa(const Nfa& nfa, int num_symbols);

  /// Moore partition-refinement minimization (states unreachable from the
  /// initial state are dropped first).
  Dfa Minimize() const;

  /// True iff both automata accept the same language (pairwise BFS over
  /// the product; both must have the same num_symbols).
  static bool Equivalent(const Dfa& a, const Dfa& b);

  /// True iff L(a) is a subset of L(b).
  static bool IsSubset(const Dfa& a, const Dfa& b);

 private:
  int num_symbols_;
  int initial_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::vector<int>> delta_;
};

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_DFA_H_
