#include "automaton/state_elimination.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace condtd {

namespace {

/// Edge label in the generalized automaton: a language L(re) ∪ {ε if
/// eps}. `re == nullptr` means no non-empty words. An absent map entry
/// means the empty language.
struct EdgeLabel {
  ReRef re;
  bool eps = false;

  bool Empty() const { return re == nullptr && !eps; }
};

EdgeLabel UnionLabels(const EdgeLabel& a, const EdgeLabel& b) {
  EdgeLabel out;
  out.eps = a.eps || b.eps;
  if (a.re && b.re) {
    out.re = Re::Disj({a.re, b.re});
  } else {
    out.re = a.re ? a.re : b.re;
  }
  return out;
}

EdgeLabel ConcatLabels(const EdgeLabel& a, const EdgeLabel& b) {
  EdgeLabel out;
  out.eps = a.eps && b.eps;
  std::vector<ReRef> alts;
  if (a.re && b.re) alts.push_back(Re::Concat({a.re, b.re}));
  if (a.eps && b.re) alts.push_back(b.re);
  if (b.eps && a.re) alts.push_back(a.re);
  if (!alts.empty()) out.re = Re::Disj(std::move(alts));
  return out;
}

EdgeLabel StarLabel(const EdgeLabel& a) {
  EdgeLabel out;
  out.eps = true;
  if (a.re) out.re = Re::Star(a.re);
  // Star of {ε or nothing} is {ε}: represented by eps alone.
  out.eps = a.re == nullptr;
  // For non-null re, ε is already in L(re*); keep eps=false so the final
  // fold does not add a redundant `?`.
  if (a.re) out.eps = false;
  return out;
}

}  // namespace

Result<ReRef> StateEliminationRegex(const Soa& soa, EliminationOrder order) {
  const int n = soa.NumStates();
  const int src = n;
  const int snk = n + 1;
  // edges[{u, v}] = label
  std::map<std::pair<int, int>, EdgeLabel> edges;

  auto add = [&](int u, int v, EdgeLabel label) {
    if (label.Empty()) return;
    auto it = edges.find({u, v});
    if (it == edges.end()) {
      edges.emplace(std::make_pair(u, v), std::move(label));
    } else {
      it->second = UnionLabels(it->second, label);
    }
  };

  for (int q : soa.Initials()) {
    add(src, q, EdgeLabel{Re::Sym(soa.LabelOf(q)), false});
  }
  for (int q = 0; q < n; ++q) {
    for (int to : soa.Successors(q)) {
      add(q, to, EdgeLabel{Re::Sym(soa.LabelOf(to)), false});
    }
  }
  for (int q : soa.Finals()) {
    add(q, snk, EdgeLabel{nullptr, true});
  }

  std::vector<int> remaining;
  for (int q = 0; q < n; ++q) remaining.push_back(q);

  auto degree_product = [&](int q) {
    int in = 0;
    int out = 0;
    for (const auto& [key, label] : edges) {
      if (key.second == q && key.first != q) ++in;
      if (key.first == q && key.second != q) ++out;
    }
    return in * out;
  };

  while (!remaining.empty()) {
    size_t pick = 0;
    if (order == EliminationOrder::kMinDegreeProduct) {
      int best = degree_product(remaining[0]);
      for (size_t i = 1; i < remaining.size(); ++i) {
        int dp = degree_product(remaining[i]);
        if (dp < best) {
          best = dp;
          pick = i;
        }
      }
    }
    int s = remaining[pick];
    remaining.erase(remaining.begin() + pick);

    EdgeLabel self;
    std::vector<std::pair<int, EdgeLabel>> in_edges;
    std::vector<std::pair<int, EdgeLabel>> out_edges;
    for (auto it = edges.begin(); it != edges.end();) {
      if (it->first.first == s && it->first.second == s) {
        self = it->second;
        it = edges.erase(it);
      } else if (it->first.second == s) {
        in_edges.emplace_back(it->first.first, it->second);
        it = edges.erase(it);
      } else if (it->first.first == s) {
        out_edges.emplace_back(it->first.second, it->second);
        it = edges.erase(it);
      } else {
        ++it;
      }
    }
    EdgeLabel loop = self.Empty() ? EdgeLabel{nullptr, true} : StarLabel(self);
    for (const auto& [p, in_label] : in_edges) {
      for (const auto& [q, out_label] : out_edges) {
        add(p, q, ConcatLabels(ConcatLabels(in_label, loop), out_label));
      }
    }
  }

  auto it = edges.find({src, snk});
  if (it == edges.end() || it->second.Empty()) {
    if (soa.accepts_empty()) {
      return Status::FailedPrecondition(
          "state elimination: language is exactly {empty word}; no "
          "epsilon-free RE exists");
    }
    return Status::FailedPrecondition(
        "state elimination: empty language (no accepting path)");
  }
  EdgeLabel final_label = it->second;
  if (final_label.re == nullptr) {
    return Status::FailedPrecondition(
        "state elimination: language is exactly {empty word}; no "
        "epsilon-free RE exists");
  }
  ReRef result = final_label.re;
  if ((final_label.eps || soa.accepts_empty()) &&
      result->kind() != ReKind::kOpt && result->kind() != ReKind::kStar) {
    result = Re::Opt(result);
  }
  return result;
}

}  // namespace condtd
