#ifndef CONDTD_AUTOMATON_TWO_T_INF_H_
#define CONDTD_AUTOMATON_TWO_T_INF_H_

#include <vector>

#include "automaton/soa.h"

namespace condtd {

/// The 2T-INF algorithm of Garcia & Vidal (Section 4): infers the
/// canonical SOA of the smallest 2-testable language containing every
/// word of `sample`. I = first symbols, F = last symbols, S = observed
/// 2-grams. Supports record observation counts for noise handling.
Soa Infer2T(const std::vector<Word>& sample);

/// Incremental form: folds one word into an existing SOA.
void Fold2T(const Word& word, Soa* soa);

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_TWO_T_INF_H_
