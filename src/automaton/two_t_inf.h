#ifndef CONDTD_AUTOMATON_TWO_T_INF_H_
#define CONDTD_AUTOMATON_TWO_T_INF_H_

#include <cstdint>
#include <vector>

#include "automaton/soa.h"

namespace condtd {

/// The 2T-INF algorithm of Garcia & Vidal (Section 4): infers the
/// canonical SOA of the smallest 2-testable language containing every
/// word of `sample`. I = first symbols, F = last symbols, S = observed
/// 2-grams. Supports record observation counts for noise handling.
Soa Infer2T(const std::vector<Word>& sample);

/// Incremental form: folds one word into an existing SOA.
void Fold2T(const Word& word, Soa* soa);

/// Weighted fold: equivalent to folding `word` `multiplicity` times —
/// every touched support (state, edge, initial, final, empty) grows by
/// `multiplicity` instead of 1. This is what makes the streaming
/// ingestion's word-multiset deduplication exact: hash-consed duplicate
/// child sequences fold once with their count instead of being replayed.
void Fold2T(const Word& word, Soa* soa, int64_t multiplicity);

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_TWO_T_INF_H_
