#include "automaton/two_t_inf.h"

namespace condtd {

void Fold2T(const Word& word, Soa* soa) {
  if (word.empty()) {
    soa->set_accepts_empty(true);
    soa->add_empty_support(1);
    return;
  }
  int prev = soa->AddState(word[0]);
  soa->AddInitial(prev, 1);
  soa->AddStateSupport(prev, 1);
  for (size_t i = 1; i < word.size(); ++i) {
    int cur = soa->AddState(word[i]);
    soa->AddStateSupport(cur, 1);
    soa->AddEdge(prev, cur, 1);
    prev = cur;
  }
  soa->AddFinal(prev, 1);
}

Soa Infer2T(const std::vector<Word>& sample) {
  Soa soa;
  for (const Word& word : sample) Fold2T(word, &soa);
  return soa;
}

}  // namespace condtd
