#include "automaton/two_t_inf.h"

#include "base/fold_scratch.h"

namespace condtd {

void Fold2T(const Word& word, Soa* soa) { Fold2T(word, soa, 1); }

void Fold2T(const Word& word, Soa* soa, int64_t multiplicity) {
  if (multiplicity <= 0) return;
  int support = static_cast<int>(multiplicity);
  if (word.empty()) {
    soa->set_accepts_empty(true);
    soa->add_empty_support(support);
    return;
  }
  if (word.size() < kDenseWordMin) {
    // Short words: the straight-line fold — repeated symbols are rare,
    // so aggregation would only add scratch traffic.
    int prev = soa->AddState(word[0]);
    soa->AddInitial(prev, support);
    soa->AddStateSupport(prev, support);
    for (size_t i = 1; i < word.size(); ++i) {
      int cur = soa->AddState(word[i]);
      soa->AddStateSupport(cur, support);
      soa->AddEdge(prev, cur, support);
      prev = cur;
    }
    soa->AddFinal(prev, support);
    return;
  }
  // Dense kernel: one pass interning states in first-occurrence order
  // (the order the straight-line fold creates them, which SaveState
  // depends on), aggregating per-state occurrence totals and distinct
  // adjacent pairs in flat scratch; each support/edge is then applied
  // once with its summed count. A word of n repeats of one symbol does 1
  // edge update instead of n-1. The resulting SOA is identical to the
  // straight-line fold's — the supports are sums either way.
  FoldScratch& scratch = GetFoldScratch();
  scratch.counts.Reset();
  scratch.pairs.Reset();
  int prev = soa->AddState(word[0]);
  soa->AddInitial(prev, support);
  scratch.counts.Add(prev, 1);
  for (size_t i = 1; i < word.size(); ++i) {
    int cur = soa->AddState(word[i]);
    scratch.counts.Add(cur, 1);
    scratch.pairs.Add(FlatPairCounter::Pack(prev, cur), 1);
    prev = cur;
  }
  for (int32_t state : scratch.counts.touched()) {
    soa->AddStateSupport(
        state, static_cast<int>(scratch.counts.count_of(state) * support));
  }
  for (const FlatPairCounter::Entry& entry : scratch.pairs.entries()) {
    soa->AddEdge(FlatPairCounter::UnpackPrev(entry.key),
                 FlatPairCounter::UnpackCur(entry.key),
                 static_cast<int>(entry.count * support));
  }
  soa->AddFinal(prev, support);
}

Soa Infer2T(const std::vector<Word>& sample) {
  Soa soa;
  for (const Word& word : sample) Fold2T(word, &soa);
  return soa;
}

}  // namespace condtd
