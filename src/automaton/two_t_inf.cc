#include "automaton/two_t_inf.h"

namespace condtd {

void Fold2T(const Word& word, Soa* soa) { Fold2T(word, soa, 1); }

void Fold2T(const Word& word, Soa* soa, int64_t multiplicity) {
  if (multiplicity <= 0) return;
  int support = static_cast<int>(multiplicity);
  if (word.empty()) {
    soa->set_accepts_empty(true);
    soa->add_empty_support(support);
    return;
  }
  int prev = soa->AddState(word[0]);
  soa->AddInitial(prev, support);
  soa->AddStateSupport(prev, support);
  for (size_t i = 1; i < word.size(); ++i) {
    int cur = soa->AddState(word[i]);
    soa->AddStateSupport(cur, support);
    soa->AddEdge(prev, cur, support);
    prev = cur;
  }
  soa->AddFinal(prev, support);
}

Soa Infer2T(const std::vector<Word>& sample) {
  Soa soa;
  for (const Word& word : sample) Fold2T(word, &soa);
  return soa;
}

}  // namespace condtd
