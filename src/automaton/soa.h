#ifndef CONDTD_AUTOMATON_SOA_H_
#define CONDTD_AUTOMATON_SOA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "alphabet/alphabet.h"
#include "automaton/nfa.h"
#include "regex/ast.h"

namespace condtd {

/// Single occurrence automaton (Section 3): a Σ-labeled graph where every
/// symbol labels at most one state. Edges implicitly carry the label of
/// the state they point into, so the structure is fully determined by the
/// symbol set, the edge relation over symbols, and the initial/final
/// symbol sets. The unique source/sink of the paper are kept implicit as
/// the initial/final sets. The empty word is tracked as a flag because
/// SOREs cannot denote ε.
///
/// Every edge, initial marker and final marker carries a support count:
/// how many times 2T-INF observed it. Supports drive the Section 9 noise
/// handling and are ignored by the core algorithms.
class Soa {
 public:
  Soa() = default;

  /// Adds (or finds) the state labeled `symbol`; returns its index.
  int AddState(Symbol symbol);

  /// Returns the state index of `symbol` or -1.
  int StateOf(Symbol symbol) const;

  Symbol LabelOf(int state) const { return labels_[state]; }
  int NumStates() const { return static_cast<int>(labels_.size()); }
  int NumEdges() const;

  void AddEdge(int from, int to, int support = 1);
  void AddInitial(int state, int support = 1);
  void AddFinal(int state, int support = 1);

  bool HasEdge(int from, int to) const;
  bool IsInitial(int state) const;
  bool IsFinal(int state) const;

  int EdgeSupport(int from, int to) const;
  int InitialSupport(int state) const;
  int FinalSupport(int state) const;
  /// Occurrence count of the state's symbol across the sample.
  int StateSupport(int state) const { return state_support_[state]; }
  void AddStateSupport(int state, int amount) {
    state_support_[state] += amount;
  }

  void RemoveEdge(int from, int to);

  /// Successor / predecessor state indices, ascending.
  std::vector<int> Successors(int state) const;
  std::vector<int> Predecessors(int state) const;
  std::vector<int> Initials() const;
  std::vector<int> Finals() const;

  bool accepts_empty() const { return accepts_empty_; }
  void set_accepts_empty(bool value) { accepts_empty_ = value; }
  int empty_support() const { return empty_support_; }
  void add_empty_support(int amount) { empty_support_ += amount; }

  /// Merges `other` into this SOA: union of states, edges and
  /// initial/final markers with support counts summed (Section 9
  /// "incremental computation" — the SOA summary is associative, which
  /// is what makes sharded ingestion mergeable). `other` must not alias
  /// this. The merge is associative and, up to state numbering,
  /// commutative; `Gfa::FromSoa` canonicalizes the numbering away, so
  /// downstream learners see identical automata for any merge order.
  void MergeFrom(const Soa& other);

  /// As above, but `other`'s symbols are first translated through
  /// `remap` (indexed by `other`'s symbol ids) — used when the shards
  /// being merged interned their alphabets independently.
  void MergeFrom(const Soa& other, const std::vector<Symbol>& remap);

  /// 2-testable membership: first symbol initial, last symbol final,
  /// every adjacent pair an edge. The empty word needs accepts_empty.
  bool Accepts(const Word& word) const;

  /// Structural equality (Proposition 1: SOAs are unique up to
  /// isomorphism, and symbol labels pin the isomorphism): same symbol
  /// set, edges, initial/final sets and empty-word flag. Supports are
  /// ignored.
  bool Equals(const Soa& other) const;

  /// Conversion to an NFA over symbols (for DFA-based language checks).
  Nfa ToNfa() const;

  /// Multi-line debug rendering using `alphabet` names.
  std::string ToString(const Alphabet& alphabet) const;

  /// Rough resident bytes of this SOA (see base/mem_estimate.h for the
  /// estimation contract). Feeds SummaryStore::ApproxBytes.
  size_t ApproxBytes() const;

 private:
  void MergeMapped(const Soa& other, const std::vector<Symbol>* remap);

  std::vector<Symbol> labels_;
  std::unordered_map<Symbol, int> state_of_;
  /// Dense fast path over state_of_ for symbols below the fold kernels'
  /// id window (-1 = absent). state_of_ stays authoritative — this is a
  /// cache that AddState/StateOf consult first, sized lazily to the
  /// largest windowed symbol seen.
  std::vector<int> dense_state_of_;
  std::vector<std::unordered_map<int, int>> out_;  // state -> {to: support}
  std::unordered_map<int, int> initial_;           // state -> support
  std::unordered_map<int, int> final_;             // state -> support
  std::vector<int> state_support_;
  bool accepts_empty_ = false;
  int empty_support_ = 0;
};

/// The unique SOA of a SORE (Proposition 1). For non-SORE input this
/// yields the Glushkov automaton projected onto symbols, i.e. the
/// tightest SOA with L(re) ⊆ L(soa).
Soa SoaFromRegex(const ReRef& re);

/// Section 9 noise handling, the "obvious way": a copy of `soa` without
/// the states whose symbol support is below `min_state_support` (their
/// edges disappear with them; no bridging edges are invented). A SOA
/// whose supports were never populated is returned unchanged.
Soa PruneSoaByStateSupport(const Soa& soa, int min_state_support);

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_SOA_H_
