#ifndef CONDTD_AUTOMATON_K_TESTABLE_H_
#define CONDTD_AUTOMATON_K_TESTABLE_H_

#include <map>
#include <set>
#include <vector>

#include "alphabet/alphabet.h"
#include "automaton/nfa.h"

namespace condtd {

/// Inference of k-testable languages in the strict sense (Garcia &
/// Vidal [23]) for arbitrary k — the family 2T-INF (Section 4) is the
/// k = 2 member of. A language is k-testable when membership is decided
/// by the length-(k-1) prefix, the length-(k-1) suffix and the set of
/// length-k factors of a word. Larger k yields strictly more specific
/// automata at the cost of more states — and for k > 2 the states no
/// longer correspond one-to-one to symbols, which is exactly why the
/// paper's SORE/SOA machinery fixes k = 2 (Proposition 1). Exposed here
/// to quantify that trade-off (bench/ktest_ablation).
class KTestable {
 public:
  /// k >= 1. k = 1 degenerates to "symbols seen anywhere".
  explicit KTestable(int k) : k_(k) {}

  /// Folds a word into the allowed prefix/suffix/factor sets.
  void AddWord(const Word& word);

  /// Membership in the inferred k-testable language.
  bool Accepts(const Word& word) const;

  /// Number of distinct length-k factors observed.
  int NumFactors() const { return static_cast<int>(factors_.size()); }

  /// The canonical acceptor: states are the observed (k-1)-grams.
  Nfa ToNfa() const;

  int k() const { return k_; }

 private:
  int k_;
  std::set<Word> short_words_;  // accepted words of length < k
  std::set<Word> prefixes_;     // length k-1
  std::set<Word> suffixes_;     // length k-1
  std::set<Word> factors_;      // length k
};

/// One-shot inference over a sample.
KTestable InferKTestable(const std::vector<Word>& sample, int k);

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_K_TESTABLE_H_
