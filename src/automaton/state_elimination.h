#ifndef CONDTD_AUTOMATON_STATE_ELIMINATION_H_
#define CONDTD_AUTOMATON_STATE_ELIMINATION_H_

#include "automaton/soa.h"
#include "base/status.h"
#include "regex/ast.h"

namespace condtd {

/// Which state to eliminate next in the classical algorithm.
enum class EliminationOrder {
  kNatural,           ///< States in index order (JFLAP-style).
  kMinDegreeProduct,  ///< Greedy: smallest in-degree × out-degree first.
};

/// Classical state elimination (Hopcroft & Ullman) on the SOA, the
/// baseline the paper's expression (†) comes from. Returns an RE with
/// L(re) = L(soa) minus the empty word handling (accepts_empty is folded
/// in as a top-level `?`). In general the output size explodes — this is
/// exactly the motivation for `Rewrite` (Ehrenfeucht & Zeiger lower
/// bound) — so the result is reported unsimplified apart from structural
/// duplicate removal in unions.
///
/// Fails only for the empty language (a SOA with no accepting path).
Result<ReRef> StateEliminationRegex(
    const Soa& soa, EliminationOrder order = EliminationOrder::kNatural);

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_STATE_ELIMINATION_H_
