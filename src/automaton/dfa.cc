#include "automaton/dfa.h"

#include <map>
#include <queue>
#include <set>
#include <utility>

namespace condtd {

int Dfa::AddState(bool accepting) {
  int id = num_states();
  accepting_.push_back(accepting);
  delta_.emplace_back(num_symbols_, id);
  return id;
}

bool Dfa::Accepts(const Word& word) const {
  int q = initial_;
  for (Symbol s : word) {
    if (s < 0 || s >= num_symbols_) return false;
    q = delta_[q][s];
  }
  return accepting_[q];
}

Dfa Dfa::FromNfa(const Nfa& nfa, int num_symbols) {
  Dfa dfa(num_symbols);
  // State sets are represented as sorted vectors used as map keys.
  std::map<std::vector<int>, int> ids;
  std::queue<std::vector<int>> pending;

  auto intern = [&](std::vector<int> set, bool* is_new) {
    auto [it, inserted] = ids.emplace(std::move(set), 0);
    if (inserted) {
      bool accepting = false;
      for (int q : it->first) {
        if (nfa.IsAccepting(q)) {
          accepting = true;
          break;
        }
      }
      it->second = dfa.AddState(accepting);
      pending.push(it->first);
    }
    *is_new = inserted;
    return it->second;
  };

  bool is_new = false;
  std::vector<int> start;
  if (nfa.num_states() > 0) start.push_back(nfa.initial());
  int start_id = intern(start, &is_new);
  dfa.set_initial(start_id);
  // The dead state is the empty set; create it eagerly so every missing
  // transition has a target.
  int dead = intern({}, &is_new);
  (void)dead;

  while (!pending.empty()) {
    std::vector<int> current = pending.front();
    pending.pop();
    int from_id = ids.at(current);
    std::vector<std::set<int>> next(num_symbols);
    for (int q : current) {
      for (const auto& [sym, to] : nfa.TransitionsFrom(q)) {
        if (sym >= 0 && sym < num_symbols) next[sym].insert(to);
      }
    }
    for (Symbol s = 0; s < num_symbols; ++s) {
      std::vector<int> target(next[s].begin(), next[s].end());
      int to_id = intern(std::move(target), &is_new);
      dfa.SetTransition(from_id, s, to_id);
    }
  }
  return dfa;
}

Dfa Dfa::Minimize() const {
  // Restrict to reachable states.
  std::vector<int> order;
  std::vector<int> index(num_states(), -1);
  order.push_back(initial_);
  index[initial_] = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    int q = order[i];
    for (Symbol s = 0; s < num_symbols_; ++s) {
      int to = delta_[q][s];
      if (index[to] < 0) {
        index[to] = static_cast<int>(order.size());
        order.push_back(to);
      }
    }
  }
  int n = static_cast<int>(order.size());

  // Moore refinement over reachable states.
  std::vector<int> klass(n);
  for (int i = 0; i < n; ++i) klass[i] = accepting_[order[i]] ? 1 : 0;
  int num_classes = 2;
  while (true) {
    std::map<std::vector<int>, int> signature_to_class;
    std::vector<int> next_class(n);
    for (int i = 0; i < n; ++i) {
      std::vector<int> sig;
      sig.reserve(num_symbols_ + 1);
      sig.push_back(klass[i]);
      for (Symbol s = 0; s < num_symbols_; ++s) {
        sig.push_back(klass[index[delta_[order[i]][s]]]);
      }
      auto [it, inserted] =
          signature_to_class.emplace(std::move(sig),
                                     static_cast<int>(signature_to_class.size()));
      next_class[i] = it->second;
      (void)inserted;
    }
    int new_num = static_cast<int>(signature_to_class.size());
    klass.swap(next_class);
    if (new_num == num_classes) break;
    num_classes = new_num;
  }

  Dfa out(num_symbols_);
  for (int c = 0; c < num_classes; ++c) out.AddState(false);
  std::vector<bool> done(num_classes, false);
  for (int i = 0; i < n; ++i) {
    int c = klass[i];
    if (done[c]) continue;
    done[c] = true;
    out.accepting_[c] = accepting_[order[i]];
    for (Symbol s = 0; s < num_symbols_; ++s) {
      out.SetTransition(c, s, klass[index[delta_[order[i]][s]]]);
    }
  }
  out.set_initial(klass[0]);
  return out;
}

namespace {

/// BFS over the product automaton; `check` is called for every reachable
/// pair and returns false to signal a counterexample.
template <typename Check>
bool ProductScan(const Dfa& a, const Dfa& b, Check check) {
  std::set<std::pair<int, int>> seen;
  std::queue<std::pair<int, int>> pending;
  pending.emplace(a.initial(), b.initial());
  seen.emplace(a.initial(), b.initial());
  const int symbols = a.num_symbols();
  while (!pending.empty()) {
    auto [qa, qb] = pending.front();
    pending.pop();
    if (!check(qa, qb)) return false;
    for (Symbol s = 0; s < symbols; ++s) {
      std::pair<int, int> next(a.Transition(qa, s), b.Transition(qb, s));
      if (seen.insert(next).second) pending.push(next);
    }
  }
  return true;
}

}  // namespace

bool Dfa::Equivalent(const Dfa& a, const Dfa& b) {
  if (a.num_symbols() != b.num_symbols()) return false;
  return ProductScan(a, b, [&](int qa, int qb) {
    return a.IsAccepting(qa) == b.IsAccepting(qb);
  });
}

bool Dfa::IsSubset(const Dfa& a, const Dfa& b) {
  if (a.num_symbols() != b.num_symbols()) return false;
  return ProductScan(a, b, [&](int qa, int qb) {
    return !a.IsAccepting(qa) || b.IsAccepting(qb);
  });
}

}  // namespace condtd
