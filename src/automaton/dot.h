#ifndef CONDTD_AUTOMATON_DOT_H_
#define CONDTD_AUTOMATON_DOT_H_

#include <string>

#include "automaton/soa.h"
#include "gfa/gfa.h"

namespace condtd {

/// Graphviz rendering of an SOA in the paper's drawing convention
/// (Figures 1-2): labeled circles, arrows from a point for initial
/// states, double circles for final states.
std::string SoaToDot(const Soa& soa, const Alphabet& alphabet);

/// Graphviz rendering of a GFA mid-rewrite (Figure 3): node labels are
/// the current regular expressions.
std::string GfaToDot(const Gfa& gfa, const Alphabet& alphabet);

}  // namespace condtd

#endif  // CONDTD_AUTOMATON_DOT_H_
