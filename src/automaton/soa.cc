#include "automaton/soa.h"

#include <algorithm>
#include <set>

#include "base/fold_scratch.h"
#include "base/mem_estimate.h"
#include "regex/properties.h"

namespace condtd {

int Soa::AddState(Symbol symbol) {
  if (symbol >= 0 && symbol < kDenseFoldWindow) {
    if (static_cast<size_t>(symbol) >= dense_state_of_.size()) {
      dense_state_of_.resize(static_cast<size_t>(symbol) + 1, -1);
    }
    int& cached = dense_state_of_[symbol];
    if (cached >= 0) return cached;
    int id = NumStates();
    labels_.push_back(symbol);
    out_.emplace_back();
    state_support_.push_back(0);
    state_of_.emplace(symbol, id);
    cached = id;
    return id;
  }
  auto it = state_of_.find(symbol);
  if (it != state_of_.end()) return it->second;
  int id = NumStates();
  labels_.push_back(symbol);
  out_.emplace_back();
  state_support_.push_back(0);
  state_of_.emplace(symbol, id);
  return id;
}

int Soa::StateOf(Symbol symbol) const {
  if (symbol >= 0 && static_cast<size_t>(symbol) < dense_state_of_.size()) {
    return dense_state_of_[symbol];
  }
  auto it = state_of_.find(symbol);
  return it == state_of_.end() ? -1 : it->second;
}

int Soa::NumEdges() const {
  int total = 0;
  for (const auto& adj : out_) total += static_cast<int>(adj.size());
  return total;
}

void Soa::AddEdge(int from, int to, int support) {
  out_[from][to] += support;
}

void Soa::AddInitial(int state, int support) { initial_[state] += support; }

void Soa::AddFinal(int state, int support) { final_[state] += support; }

bool Soa::HasEdge(int from, int to) const {
  return out_[from].count(to) > 0;
}

bool Soa::IsInitial(int state) const { return initial_.count(state) > 0; }

bool Soa::IsFinal(int state) const { return final_.count(state) > 0; }

int Soa::EdgeSupport(int from, int to) const {
  auto it = out_[from].find(to);
  return it == out_[from].end() ? 0 : it->second;
}

int Soa::InitialSupport(int state) const {
  auto it = initial_.find(state);
  return it == initial_.end() ? 0 : it->second;
}

int Soa::FinalSupport(int state) const {
  auto it = final_.find(state);
  return it == final_.end() ? 0 : it->second;
}

void Soa::RemoveEdge(int from, int to) { out_[from].erase(to); }

std::vector<int> Soa::Successors(int state) const {
  std::vector<int> out;
  out.reserve(out_[state].size());
  for (const auto& [to, support] : out_[state]) out.push_back(to);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> Soa::Predecessors(int state) const {
  std::vector<int> preds;
  for (int q = 0; q < NumStates(); ++q) {
    if (out_[q].count(state) > 0) preds.push_back(q);
  }
  return preds;
}

std::vector<int> Soa::Initials() const {
  std::vector<int> out;
  out.reserve(initial_.size());
  for (const auto& [s, support] : initial_) out.push_back(s);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> Soa::Finals() const {
  std::vector<int> out;
  out.reserve(final_.size());
  for (const auto& [s, support] : final_) out.push_back(s);
  std::sort(out.begin(), out.end());
  return out;
}

void Soa::MergeFrom(const Soa& other) { MergeMapped(other, nullptr); }

void Soa::MergeFrom(const Soa& other, const std::vector<Symbol>& remap) {
  MergeMapped(other, &remap);
}

void Soa::MergeMapped(const Soa& other, const std::vector<Symbol>* remap) {
  auto translate = [remap](Symbol s) {
    return remap == nullptr ? s : (*remap)[s];
  };
  for (int q = 0; q < other.NumStates(); ++q) {
    int mine = AddState(translate(other.labels_[q]));
    state_support_[mine] += other.state_support_[q];
  }
  for (const auto& [q, support] : other.initial_) {
    AddInitial(StateOf(translate(other.labels_[q])), support);
  }
  for (const auto& [q, support] : other.final_) {
    AddFinal(StateOf(translate(other.labels_[q])), support);
  }
  for (int q = 0; q < other.NumStates(); ++q) {
    int from = StateOf(translate(other.labels_[q]));
    for (const auto& [to, support] : other.out_[q]) {
      AddEdge(from, StateOf(translate(other.labels_[to])), support);
    }
  }
  if (other.accepts_empty_) {
    accepts_empty_ = true;
    empty_support_ += other.empty_support_;
  }
}

bool Soa::Accepts(const Word& word) const {
  if (word.empty()) return accepts_empty_;
  int prev = StateOf(word[0]);
  if (prev < 0 || !IsInitial(prev)) return false;
  for (size_t i = 1; i < word.size(); ++i) {
    int cur = StateOf(word[i]);
    if (cur < 0 || !HasEdge(prev, cur)) return false;
    prev = cur;
  }
  return IsFinal(prev);
}

bool Soa::Equals(const Soa& other) const {
  if (NumStates() != other.NumStates()) return false;
  if (accepts_empty_ != other.accepts_empty_) return false;
  for (int q = 0; q < NumStates(); ++q) {
    int oq = other.StateOf(labels_[q]);
    if (oq < 0) return false;
    if (IsInitial(q) != other.IsInitial(oq)) return false;
    if (IsFinal(q) != other.IsFinal(oq)) return false;
  }
  for (int q = 0; q < NumStates(); ++q) {
    int oq = other.StateOf(labels_[q]);
    std::set<Symbol> mine;
    for (const auto& [to, support] : out_[q]) mine.insert(labels_[to]);
    std::set<Symbol> theirs;
    for (const auto& [to, support] : other.out_[oq]) {
      theirs.insert(other.labels_[to]);
    }
    if (mine != theirs) return false;
  }
  return true;
}

Nfa Soa::ToNfa() const {
  Nfa nfa;
  int source = nfa.AddState(accepts_empty_);
  nfa.set_initial(source);
  std::vector<int> state_ids(NumStates());
  for (int q = 0; q < NumStates(); ++q) {
    state_ids[q] = nfa.AddState(IsFinal(q));
  }
  for (const auto& [q, support] : initial_) {
    nfa.AddTransition(source, labels_[q], state_ids[q]);
  }
  for (int q = 0; q < NumStates(); ++q) {
    for (const auto& [to, support] : out_[q]) {
      nfa.AddTransition(state_ids[q], labels_[to], state_ids[to]);
    }
  }
  return nfa;
}

std::string Soa::ToString(const Alphabet& alphabet) const {
  std::string out = "SOA{\n  initial:";
  for (int q : Initials()) {
    out += ' ';
    out += alphabet.Name(labels_[q]);
  }
  out += "\n  final:";
  for (int q : Finals()) {
    out += ' ';
    out += alphabet.Name(labels_[q]);
  }
  out += "\n  edges:";
  for (int q = 0; q < NumStates(); ++q) {
    std::vector<int> succ = Successors(q);
    for (int to : succ) {
      out += ' ';
      out += alphabet.Name(labels_[q]);
      out += "->";
      out += alphabet.Name(labels_[to]);
    }
  }
  out += accepts_empty_ ? "\n  accepts_empty: true\n}" : "\n}";
  return out;
}

Soa PruneSoaByStateSupport(const Soa& soa, int min_state_support) {
  bool any_support = false;
  for (int q = 0; q < soa.NumStates(); ++q) {
    if (soa.StateSupport(q) > 0) any_support = true;
  }
  if (!any_support || min_state_support <= 0) return soa;
  Soa pruned;
  for (int q = 0; q < soa.NumStates(); ++q) {
    if (soa.StateSupport(q) >= min_state_support) {
      pruned.AddState(soa.LabelOf(q));
    }
  }
  for (int q = 0; q < soa.NumStates(); ++q) {
    int pq = pruned.StateOf(soa.LabelOf(q));
    if (pq < 0) continue;
    if (soa.IsInitial(q)) pruned.AddInitial(pq, soa.InitialSupport(q));
    if (soa.IsFinal(q)) pruned.AddFinal(pq, soa.FinalSupport(q));
    pruned.AddStateSupport(pq, soa.StateSupport(q));
    for (int to : soa.Successors(q)) {
      int pto = pruned.StateOf(soa.LabelOf(to));
      if (pto >= 0) pruned.AddEdge(pq, pto, soa.EdgeSupport(q, to));
    }
  }
  pruned.set_accepts_empty(soa.accepts_empty());
  pruned.add_empty_support(soa.empty_support());
  return pruned;
}

size_t Soa::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += VectorBytes(labels_) + VectorBytes(dense_state_of_) +
           VectorBytes(state_support_);
  bytes += HashBytes(state_of_) + HashBytes(initial_) + HashBytes(final_);
  bytes += VectorBytes(out_);
  for (const auto& edges : out_) bytes += HashBytes(edges);
  return bytes;
}

Soa SoaFromRegex(const ReRef& re) {
  SymbolSets sets = ComputeSymbolSets(re);
  Soa soa;
  for (Symbol s : SymbolsOf(re)) soa.AddState(s);
  for (Symbol s : sets.first) soa.AddInitial(soa.StateOf(s));
  for (Symbol s : sets.last) soa.AddFinal(soa.StateOf(s));
  for (const auto& [a, b] : sets.follow) {
    soa.AddEdge(soa.StateOf(a), soa.StateOf(b));
  }
  soa.set_accepts_empty(sets.nullable);
  return soa;
}

}  // namespace condtd
