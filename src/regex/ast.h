#ifndef CONDTD_REGEX_AST_H_
#define CONDTD_REGEX_AST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alphabet/alphabet.h"

namespace condtd {

/// Node kinds of the regular expression AST. Following the paper
/// (Section 3), ε and ∅ are not expressible as basic symbols; the empty
/// word can only be matched through `?` / `*` operators.
enum class ReKind {
  kSymbol,  ///< A single alphabet symbol.
  kConcat,  ///< r1 · r2 · ... · rn (n >= 2 after flattening).
  kDisj,    ///< r1 + r2 + ... + rn (n >= 2 after flattening).
  kPlus,    ///< r+
  kOpt,     ///< r?
  kStar,    ///< r* — used in final output; rewrite internally uses (r+)?.
  kShuffle, ///< r1 & r2 & ... & rn — interleaving/shuffle (n >= 2).
};

class Re;
/// Regular expressions are immutable and shared; structural sharing keeps
/// rewriting cheap.
using ReRef = std::shared_ptr<const Re>;

/// Immutable regular expression node. Construct via the static factories,
/// which flatten nested concatenations/disjunctions and collapse trivial
/// one-child wrappers so the invariants above hold by construction.
class Re {
 public:
  static ReRef Sym(Symbol symbol);
  /// Flattens nested concats; returns the sole child for size-1 input.
  /// `children` must be non-empty.
  static ReRef Concat(std::vector<ReRef> children);
  /// Flattens nested disjunctions and deduplicates structurally identical
  /// alternatives; returns the sole child for size-1 input.
  static ReRef Disj(std::vector<ReRef> children);
  /// Flattens nested shuffles and sorts factors into canonical order
  /// (shuffle is commutative and associative); unlike Disj, equal factors
  /// are NOT deduplicated — L(a & a) = {aa} differs from L(a). Returns the
  /// sole child for size-1 input.
  static ReRef Shuffle(std::vector<ReRef> children);
  static ReRef Plus(ReRef child);
  static ReRef Opt(ReRef child);
  static ReRef Star(ReRef child);

  ReKind kind() const { return kind_; }
  /// Valid only for kSymbol.
  Symbol symbol() const { return symbol_; }
  /// Valid for kConcat / kDisj / kShuffle.
  const std::vector<ReRef>& children() const { return children_; }
  /// Valid for unary kinds (kPlus / kOpt / kStar).
  const ReRef& child() const { return children_[0]; }

 private:
  friend struct ReFactory;
  Re(ReKind kind, Symbol symbol, std::vector<ReRef> children)
      : kind_(kind), symbol_(symbol), children_(std::move(children)) {}

  ReKind kind_;
  Symbol symbol_;
  std::vector<ReRef> children_;
};

/// Output flavor for ToString.
enum class PrintStyle {
  /// The paper's notation: concatenation by juxtaposition, union as `+`.
  /// Single-character names are run together; longer names get spaces.
  kPaper,
  /// Unambiguous, round-trippable: union as `|`, concatenation items
  /// separated by spaces.
  kParseable,
};

/// Renders `re` using names from `alphabet`.
std::string ToString(const ReRef& re, const Alphabet& alphabet,
                     PrintStyle style = PrintStyle::kParseable);

/// Structural equality. When `commutative_disj` is true, disjunctions are
/// compared as multisets (Theorem 5's "equal up to commutativity of +").
bool StructurallyEqual(const ReRef& a, const ReRef& b,
                       bool commutative_disj = true);

/// A stable total order on REs used to canonicalize disjunction child
/// order. Returns <0, 0, >0.
int CompareRe(const ReRef& a, const ReRef& b);

/// Structurally copies `re`, replacing every symbol through `mapping`
/// (symbols without an entry are kept). Disjunctions re-canonicalize
/// under the new symbol order.
ReRef RemapSymbols(const ReRef& re, const std::map<Symbol, Symbol>& mapping);

}  // namespace condtd

#endif  // CONDTD_REGEX_AST_H_
