#ifndef CONDTD_REGEX_SHUFFLE_H_
#define CONDTD_REGEX_SHUFFLE_H_

#include <cstdint>

#include "automaton/nfa.h"
#include "regex/ast.h"

namespace condtd {

/// True when `re` contains a kShuffle node anywhere.
bool ContainsShuffle(const ReRef& re);

/// Hard ceiling on the states a single shuffle node may expand into.
/// Shuffle has no polynomial-size epsilon-free automaton: the product of
/// the factor automata is essentially minimal, so both parsers and the
/// interleaving learners reject shuffles whose MatchNfaSizeBound exceeds
/// this before any automaton is built (a hostile `(a&b&c&...)` content
/// model would otherwise exhaust memory in the validator).
constexpr int64_t kMaxShuffleProduct = 4096;

/// Upper bound on the number of states BuildMatchNfa materializes for
/// `re`: shuffle nodes multiply (product automaton), everything else is
/// linear in the symbol positions. Saturates at kMaxShuffleProduct + 1.
int64_t MatchNfaSizeBound(const ReRef& re);

/// Language-preserving epsilon-free NFA for `re`. Shuffle-free input is
/// delegated to the Glushkov construction (bit-for-bit the automaton the
/// rest of the system has always used); shuffle nodes become the product
/// of their factor automata — a transition advances exactly one factor,
/// acceptance requires every factor to accept, which is precisely the
/// interleaving semantics w ∈ L(r1 & r2) iff w is a merge of words
/// w1 ∈ L(r1), w2 ∈ L(r2). Callers must keep shuffle nodes within
/// kMaxShuffleProduct (see MatchNfaSizeBound); the parsers and learners
/// enforce this.
Nfa BuildMatchNfa(const ReRef& re);

}  // namespace condtd

#endif  // CONDTD_REGEX_SHUFFLE_H_
