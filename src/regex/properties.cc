#include "regex/properties.h"

#include <algorithm>

namespace condtd {

bool Nullable(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return false;
    case ReKind::kConcat:
      for (const auto& c : re->children()) {
        if (!Nullable(c)) return false;
      }
      return true;
    case ReKind::kDisj:
      for (const auto& c : re->children()) {
        if (Nullable(c)) return true;
      }
      return false;
    case ReKind::kShuffle:
      // An interleaving of empty words is the empty word: nullable iff
      // every factor is.
      for (const auto& c : re->children()) {
        if (!Nullable(c)) return false;
      }
      return true;
    case ReKind::kPlus:
      return Nullable(re->child());
    case ReKind::kOpt:
    case ReKind::kStar:
      return true;
  }
  return false;
}

namespace {

void Collect(const ReRef& re, std::map<Symbol, int>* counts) {
  if (re->kind() == ReKind::kSymbol) {
    ++(*counts)[re->symbol()];
    return;
  }
  for (const auto& c : re->children()) Collect(c, counts);
}

}  // namespace

std::vector<Symbol> SymbolsOf(const ReRef& re) {
  std::map<Symbol, int> counts;
  Collect(re, &counts);
  std::vector<Symbol> out;
  out.reserve(counts.size());
  for (const auto& [sym, n] : counts) out.push_back(sym);
  return out;
}

std::map<Symbol, int> SymbolOccurrences(const ReRef& re) {
  std::map<Symbol, int> counts;
  Collect(re, &counts);
  return counts;
}

int CountSymbolOccurrences(const ReRef& re) {
  if (re->kind() == ReKind::kSymbol) return 1;
  int total = 0;
  for (const auto& c : re->children()) total += CountSymbolOccurrences(c);
  return total;
}

int CountTokens(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return 1;
    case ReKind::kConcat: {
      int total = 0;
      for (const auto& c : re->children()) total += CountTokens(c);
      return total;
    }
    case ReKind::kDisj:
    case ReKind::kShuffle: {
      int total = static_cast<int>(re->children().size()) - 1;
      for (const auto& c : re->children()) total += CountTokens(c);
      return total;
    }
    case ReKind::kPlus:
    case ReKind::kOpt:
    case ReKind::kStar:
      return 1 + CountTokens(re->child());
  }
  return 0;
}

bool IsSore(const ReRef& re) {
  for (const auto& [sym, n] : SymbolOccurrences(re)) {
    if (n > 1) return false;
  }
  return true;
}

namespace {

/// True iff `re` is a disjunction of plain symbols (or a single symbol).
bool IsSymbolDisjunction(const ReRef& re) {
  if (re->kind() == ReKind::kSymbol) return true;
  if (re->kind() != ReKind::kDisj) return false;
  for (const auto& c : re->children()) {
    if (c->kind() != ReKind::kSymbol) return false;
  }
  return true;
}

/// True iff `re` is a CHARE factor: (a1+...+ak) with an optional single
/// postfix operator.
bool IsChareFactor(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kPlus:
    case ReKind::kOpt:
    case ReKind::kStar:
      return IsSymbolDisjunction(re->child());
    default:
      return IsSymbolDisjunction(re);
  }
}

}  // namespace

bool IsChare(const ReRef& re) {
  if (!IsSore(re)) return false;
  if (re->kind() == ReKind::kConcat) {
    for (const auto& c : re->children()) {
      if (!IsChareFactor(c)) return false;
    }
    return true;
  }
  return IsChareFactor(re);
}

namespace {

bool HasShuffleNode(const ReRef& re) {
  if (re->kind() == ReKind::kShuffle) return true;
  for (const auto& c : re->children()) {
    if (HasShuffleNode(c)) return true;
  }
  return false;
}

}  // namespace

bool IsSire(const ReRef& re) {
  if (re->kind() == ReKind::kShuffle) {
    for (const auto& c : re->children()) {
      if (HasShuffleNode(c)) return false;
    }
  } else if (HasShuffleNode(re)) {
    return false;  // `&` below the root is outside the restricted class
  }
  // Global single occurrence subsumes per-factor SORE-ness and forces the
  // factor symbol sets to be pairwise disjoint.
  return IsSore(re);
}

SymbolSets ComputeSymbolSets(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kSymbol: {
      SymbolSets out;
      out.first.insert(re->symbol());
      out.last.insert(re->symbol());
      out.nullable = false;
      return out;
    }
    case ReKind::kConcat: {
      std::vector<SymbolSets> parts;
      parts.reserve(re->children().size());
      for (const auto& c : re->children()) {
        parts.push_back(ComputeSymbolSets(c));
      }
      SymbolSets out;
      out.nullable = true;
      for (const auto& p : parts) out.nullable = out.nullable && p.nullable;
      // First: union over the nullable prefix plus the first non-nullable.
      for (const auto& p : parts) {
        out.first.insert(p.first.begin(), p.first.end());
        if (!p.nullable) break;
      }
      // Last: symmetric from the right.
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        out.last.insert(it->last.begin(), it->last.end());
        if (!it->nullable) break;
      }
      // Follow: inner follows plus cross pairs over nullable gaps.
      for (const auto& p : parts) {
        out.follow.insert(p.follow.begin(), p.follow.end());
      }
      for (size_t i = 0; i < parts.size(); ++i) {
        for (size_t j = i + 1; j < parts.size(); ++j) {
          for (Symbol a : parts[i].last) {
            for (Symbol b : parts[j].first) {
              out.follow.emplace(a, b);
            }
          }
          if (!parts[j].nullable) break;
        }
      }
      return out;
    }
    case ReKind::kDisj: {
      SymbolSets out;
      out.nullable = false;
      for (const auto& c : re->children()) {
        SymbolSets p = ComputeSymbolSets(c);
        out.first.insert(p.first.begin(), p.first.end());
        out.last.insert(p.last.begin(), p.last.end());
        out.follow.insert(p.follow.begin(), p.follow.end());
        out.nullable = out.nullable || p.nullable;
      }
      return out;
    }
    case ReKind::kShuffle: {
      // Interleaving: any factor may contribute the first or last symbol,
      // and any symbol of one factor may be immediately followed by any
      // symbol of another (choose an interleaving that juxtaposes them).
      // Within a factor the factor's own follow relation applies.
      SymbolSets out;
      out.nullable = true;
      std::vector<std::vector<Symbol>> symbols;
      symbols.reserve(re->children().size());
      for (const auto& c : re->children()) {
        SymbolSets p = ComputeSymbolSets(c);
        out.first.insert(p.first.begin(), p.first.end());
        out.last.insert(p.last.begin(), p.last.end());
        out.follow.insert(p.follow.begin(), p.follow.end());
        out.nullable = out.nullable && p.nullable;
        symbols.push_back(SymbolsOf(c));
      }
      for (size_t i = 0; i < symbols.size(); ++i) {
        for (size_t j = 0; j < symbols.size(); ++j) {
          if (i == j) continue;
          for (Symbol a : symbols[i]) {
            for (Symbol b : symbols[j]) {
              out.follow.emplace(a, b);
            }
          }
        }
      }
      return out;
    }
    case ReKind::kPlus:
    case ReKind::kStar: {
      SymbolSets out = ComputeSymbolSets(re->child());
      for (Symbol a : out.last) {
        for (Symbol b : out.first) {
          out.follow.emplace(a, b);
        }
      }
      if (re->kind() == ReKind::kStar) out.nullable = true;
      return out;
    }
    case ReKind::kOpt: {
      SymbolSets out = ComputeSymbolSets(re->child());
      out.nullable = true;
      return out;
    }
  }
  return {};
}

}  // namespace condtd
