#ifndef CONDTD_REGEX_GLUSHKOV_H_
#define CONDTD_REGEX_GLUSHKOV_H_

#include "automaton/nfa.h"
#include "regex/ast.h"

namespace condtd {

/// Builds the Glushkov (position) automaton of `re`: one state per symbol
/// occurrence plus an initial state; no epsilon transitions. For a
/// deterministic (one-unambiguous) RE — e.g. any SORE — the result is
/// deterministic.
Nfa BuildGlushkovNfa(const ReRef& re);

}  // namespace condtd

#endif  // CONDTD_REGEX_GLUSHKOV_H_
