#include "regex/equivalence.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>

#include "regex/properties.h"
#include "regex/shuffle.h"

namespace condtd {

namespace {

int CommonAlphabetSize(const ReRef& a, const ReRef& b) {
  Symbol max_sym = -1;
  for (Symbol s : SymbolsOf(a)) max_sym = std::max(max_sym, s);
  for (Symbol s : SymbolsOf(b)) max_sym = std::max(max_sym, s);
  return static_cast<int>(max_sym) + 1;
}

}  // namespace

Dfa CompileToDfa(const ReRef& re, int num_symbols) {
  return Dfa::FromNfa(BuildMatchNfa(re), num_symbols);
}

bool LanguageEquivalent(const ReRef& a, const ReRef& b) {
  int n = CommonAlphabetSize(a, b);
  if (n == 0) n = 1;
  return Dfa::Equivalent(CompileToDfa(a, n), CompileToDfa(b, n));
}

bool LanguageSubset(const ReRef& a, const ReRef& b) {
  int n = CommonAlphabetSize(a, b);
  if (n == 0) n = 1;
  return Dfa::IsSubset(CompileToDfa(a, n), CompileToDfa(b, n));
}

namespace {

/// BFS over the product of two DFAs for the nearest pair satisfying
/// `is_witness(accept_a, accept_b)`; returns the word spelled to it.
template <typename Predicate>
Result<Word> FindProductWitness(const Dfa& da, const Dfa& db,
                                Predicate is_witness,
                                const char* not_found_message) {
  const int n = da.num_symbols();
  if (n != db.num_symbols()) {
    return Status::InvalidArgument(
        "distinguishing-word search needs matching alphabets");
  }
  // BFS over the product, remembering the word spelled to each pair.
  std::map<std::pair<int, int>, std::pair<std::pair<int, int>, Symbol>>
      parent;
  std::queue<std::pair<int, int>> pending;
  std::pair<int, int> start{da.initial(), db.initial()};
  std::set<std::pair<int, int>> seen = {start};
  pending.push(start);
  while (!pending.empty()) {
    auto pair = pending.front();
    pending.pop();
    if (is_witness(da.IsAccepting(pair.first), db.IsAccepting(pair.second))) {
      Word word;
      std::pair<int, int> cur = pair;
      while (cur != start) {
        auto [prev, symbol] = parent.at(cur);
        word.push_back(symbol);
        cur = prev;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (Symbol s = 0; s < n; ++s) {
      std::pair<int, int> next{da.Transition(pair.first, s),
                               db.Transition(pair.second, s)};
      if (seen.insert(next).second) {
        parent.emplace(next, std::make_pair(pair, s));
        pending.push(next);
      }
    }
  }
  return Status::NotFound(not_found_message);
}

}  // namespace

Result<Word> FindDistinguishingWord(const ReRef& a, const ReRef& b) {
  int n = CommonAlphabetSize(a, b);
  if (n == 0) n = 1;
  return FindDistinguishingWordDfa(CompileToDfa(a, n),
                                   CompileToDfa(b, n));
}

Result<Word> FindDistinguishingWordDfa(const Dfa& da, const Dfa& db) {
  return FindProductWitness(
      da, db, [](bool in_a, bool in_b) { return in_a != in_b; },
      "languages are equal");
}

Result<Word> FindInclusionCounterexample(const ReRef& a, const ReRef& b) {
  int n = CommonAlphabetSize(a, b);
  if (n == 0) n = 1;
  return FindInclusionCounterexampleDfa(CompileToDfa(a, n),
                                        CompileToDfa(b, n));
}

Result<Word> FindInclusionCounterexampleDfa(const Dfa& da, const Dfa& db) {
  return FindProductWitness(
      da, db, [](bool in_a, bool in_b) { return in_a && !in_b; },
      "language is included");
}

}  // namespace condtd
