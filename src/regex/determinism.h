#ifndef CONDTD_REGEX_DETERMINISM_H_
#define CONDTD_REGEX_DETERMINISM_H_

#include "regex/ast.h"

namespace condtd {

/// True iff `re` is deterministic (one-unambiguous in the sense of
/// Brüggemann-Klein & Wood [12]), i.e. its Glushkov automaton is
/// deterministic. The XML specification requires DTD content models to
/// be deterministic; every SORE — and hence every expression this
/// library infers — is deterministic by construction (Section 1.2).
bool IsDeterministic(const ReRef& re);

}  // namespace condtd

#endif  // CONDTD_REGEX_DETERMINISM_H_
