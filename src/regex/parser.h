#ifndef CONDTD_REGEX_PARSER_H_
#define CONDTD_REGEX_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "regex/ast.h"

namespace condtd {

/// Options controlling ParseRegex.
struct RegexParseOptions {
  /// When true, every alphanumeric character is its own symbol, so
  /// "abc" parses as a·b·c (handy for the paper's one-letter examples).
  /// When false, identifiers are maximal [A-Za-z_][A-Za-z0-9_.:-]* runs
  /// and concatenation needs whitespace between names.
  bool char_symbols = false;
};

/// Parses the paper's regular expression notation.
///
/// Grammar: union is `|` or a `+` adjacent to whitespace; the postfix
/// operators `+ ? *` attach to the immediately preceding atom with no
/// whitespace in between; concatenation is juxtaposition. Names are
/// interned into `alphabet`.
///
/// Examples: "((b?(a|c))+d)+e" with char_symbols, or
/// "a1+ | a2? a3+" / "a1+ + (a2? a3+)" without.
Result<ReRef> ParseRegex(std::string_view text, Alphabet* alphabet,
                         const RegexParseOptions& options = {});

}  // namespace condtd

#endif  // CONDTD_REGEX_PARSER_H_
