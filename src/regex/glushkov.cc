#include "regex/glushkov.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace condtd {

namespace {

/// First/last/follow over position indices.
struct PosSets {
  std::vector<int> first;
  std::vector<int> last;
  bool nullable = false;
};

struct Builder {
  std::vector<Symbol> position_symbol;              // position -> symbol
  std::vector<std::vector<int>> follow;             // position -> positions

  PosSets Visit(const ReRef& re) {
    switch (re->kind()) {
      case ReKind::kSymbol: {
        int pos = static_cast<int>(position_symbol.size());
        position_symbol.push_back(re->symbol());
        follow.emplace_back();
        PosSets out;
        out.first = {pos};
        out.last = {pos};
        out.nullable = false;
        return out;
      }
      case ReKind::kConcat: {
        std::vector<PosSets> parts;
        parts.reserve(re->children().size());
        for (const auto& c : re->children()) parts.push_back(Visit(c));
        PosSets out;
        out.nullable = true;
        for (const auto& p : parts) out.nullable = out.nullable && p.nullable;
        for (const auto& p : parts) {
          out.first.insert(out.first.end(), p.first.begin(), p.first.end());
          if (!p.nullable) break;
        }
        for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
          out.last.insert(out.last.end(), it->last.begin(), it->last.end());
          if (!it->nullable) break;
        }
        for (size_t i = 0; i < parts.size(); ++i) {
          for (size_t j = i + 1; j < parts.size(); ++j) {
            for (int a : parts[i].last) {
              for (int b : parts[j].first) {
                follow[a].push_back(b);
              }
            }
            if (!parts[j].nullable) break;
          }
        }
        return out;
      }
      case ReKind::kDisj: {
        PosSets out;
        for (const auto& c : re->children()) {
          PosSets p = Visit(c);
          out.first.insert(out.first.end(), p.first.begin(), p.first.end());
          out.last.insert(out.last.end(), p.last.begin(), p.last.end());
          out.nullable = out.nullable || p.nullable;
        }
        return out;
      }
      case ReKind::kPlus:
      case ReKind::kStar: {
        PosSets out = Visit(re->child());
        for (int a : out.last) {
          for (int b : out.first) {
            follow[a].push_back(b);
          }
        }
        if (re->kind() == ReKind::kStar) out.nullable = true;
        return out;
      }
      case ReKind::kOpt: {
        PosSets out = Visit(re->child());
        out.nullable = true;
        return out;
      }
      case ReKind::kShuffle: {
        // The position automaton cannot express interleaving exactly
        // (BuildMatchNfa builds the product instead); mirror
        // ComputeSymbolSets and over-approximate: any position of one
        // factor may follow any position of another.
        PosSets out;
        out.nullable = true;
        std::vector<std::pair<int, int>> ranges;  // [begin, end) positions
        for (const auto& c : re->children()) {
          int begin = static_cast<int>(position_symbol.size());
          PosSets p = Visit(c);
          int end = static_cast<int>(position_symbol.size());
          ranges.emplace_back(begin, end);
          out.first.insert(out.first.end(), p.first.begin(), p.first.end());
          out.last.insert(out.last.end(), p.last.begin(), p.last.end());
          out.nullable = out.nullable && p.nullable;
        }
        for (size_t i = 0; i < ranges.size(); ++i) {
          for (size_t j = 0; j < ranges.size(); ++j) {
            if (i == j) continue;
            for (int a = ranges[i].first; a < ranges[i].second; ++a) {
              for (int b = ranges[j].first; b < ranges[j].second; ++b) {
                follow[a].push_back(b);
              }
            }
          }
        }
        return out;
      }
    }
    return {};
  }
};

}  // namespace

Nfa BuildGlushkovNfa(const ReRef& re) {
  Builder builder;
  PosSets top = builder.Visit(re);

  Nfa nfa;
  int initial = nfa.AddState(top.nullable);
  nfa.set_initial(initial);
  std::vector<int> state_of(builder.position_symbol.size());
  std::vector<bool> is_last(builder.position_symbol.size(), false);
  for (int pos : top.last) is_last[pos] = true;
  for (size_t pos = 0; pos < builder.position_symbol.size(); ++pos) {
    state_of[pos] = nfa.AddState(is_last[pos]);
  }
  // first/follow lists can contain duplicates (a position may be derived
  // as a follower along several paths); deduplicate so the automaton has
  // simple edges.
  auto add_unique = [&](int from, const std::vector<int>& positions) {
    std::vector<int> sorted = positions;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (int to : sorted) {
      nfa.AddTransition(from, builder.position_symbol[to], state_of[to]);
    }
  };
  add_unique(initial, top.first);
  for (size_t pos = 0; pos < builder.follow.size(); ++pos) {
    add_unique(state_of[pos], builder.follow[pos]);
  }
  return nfa;
}

}  // namespace condtd
