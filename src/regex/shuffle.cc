#include "regex/shuffle.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "regex/glushkov.h"

namespace condtd {

namespace {

/// Adds `from --symbol--> to` unless an identical edge already exists.
/// The recursive composition below can derive the same edge along
/// several paths (e.g. stacked pluses); duplicate simple edges would
/// confuse nothing semantically but keep the automata tidy.
void AddTransitionUnique(Nfa* nfa, int from, Symbol symbol, int to) {
  for (const auto& [s, t] : nfa->TransitionsFrom(from)) {
    if (s == symbol && t == to) return;
  }
  nfa->AddTransition(from, symbol, to);
}

/// Copies every state and transition of `src` into `dst`, returning the
/// index offset. Acceptance flags are preserved.
int CopyInto(const Nfa& src, Nfa* dst) {
  int offset = dst->num_states();
  for (int q = 0; q < src.num_states(); ++q) {
    dst->AddState(src.IsAccepting(q));
  }
  for (int q = 0; q < src.num_states(); ++q) {
    for (const auto& [symbol, to] : src.TransitionsFrom(q)) {
      dst->AddTransition(offset + q, symbol, offset + to);
    }
  }
  return offset;
}

/// Epsilon-free product of the factor automata: a state is one position
/// per factor, a transition advances exactly one factor, acceptance
/// requires all factors accepting. Only states reachable from the tuple
/// of initials are materialized.
Nfa ShuffleProduct(const std::vector<Nfa>& factors) {
  Nfa nfa;
  std::map<std::vector<int>, int> state_of;
  std::vector<std::vector<int>> worklist;

  auto intern = [&](const std::vector<int>& tuple) {
    auto it = state_of.find(tuple);
    if (it != state_of.end()) return it->second;
    bool accepting = true;
    for (size_t i = 0; i < factors.size(); ++i) {
      accepting = accepting && factors[i].IsAccepting(tuple[i]);
    }
    int state = nfa.AddState(accepting);
    state_of.emplace(tuple, state);
    worklist.push_back(tuple);
    return state;
  };

  std::vector<int> start(factors.size());
  for (size_t i = 0; i < factors.size(); ++i) start[i] = factors[i].initial();
  nfa.set_initial(intern(start));

  while (!worklist.empty()) {
    std::vector<int> tuple = std::move(worklist.back());
    worklist.pop_back();
    int from = state_of.at(tuple);
    for (size_t i = 0; i < factors.size(); ++i) {
      for (const auto& [symbol, to] : factors[i].TransitionsFrom(tuple[i])) {
        std::vector<int> next = tuple;
        next[i] = to;
        AddTransitionUnique(&nfa, from, symbol, intern(next));
      }
    }
  }
  return nfa;
}

/// Glushkov-style epsilon-free composition. For shuffle-free input the
/// caller uses BuildGlushkovNfa directly; this recursion only runs when a
/// shuffle is present somewhere, and delegates shuffle-free subtrees back
/// to Glushkov so the common parts stay on the proven construction.
Nfa Compose(const ReRef& re) {
  if (!ContainsShuffle(re)) return BuildGlushkovNfa(re);
  switch (re->kind()) {
    case ReKind::kSymbol:
      return BuildGlushkovNfa(re);
    case ReKind::kConcat: {
      // Fold left: append each child, then splice the child's initial
      // out-transitions onto every currently-accepting state. Acceptance
      // carries over only while the appended child is nullable.
      Nfa out = Compose(re->children().front());
      for (size_t i = 1; i < re->children().size(); ++i) {
        Nfa next = Compose(re->children()[i]);
        std::vector<int> accepting;
        for (int q = 0; q < out.num_states(); ++q) {
          if (out.IsAccepting(q)) accepting.push_back(q);
        }
        int offset = CopyInto(next, &out);
        bool next_nullable = next.IsAccepting(next.initial());
        for (int q : accepting) {
          for (const auto& [symbol, to] :
               next.TransitionsFrom(next.initial())) {
            AddTransitionUnique(&out, q, symbol, offset + to);
          }
          if (!next_nullable) out.SetAccepting(q, false);
        }
      }
      return out;
    }
    case ReKind::kDisj: {
      Nfa out;
      int initial = out.AddState(false);
      out.set_initial(initial);
      for (const auto& c : re->children()) {
        Nfa part = Compose(c);
        int offset = CopyInto(part, &out);
        if (part.IsAccepting(part.initial())) out.SetAccepting(initial, true);
        for (const auto& [symbol, to] :
             part.TransitionsFrom(part.initial())) {
          AddTransitionUnique(&out, initial, symbol, offset + to);
        }
      }
      return out;
    }
    case ReKind::kShuffle: {
      std::vector<Nfa> parts;
      parts.reserve(re->children().size());
      for (const auto& c : re->children()) parts.push_back(Compose(c));
      return ShuffleProduct(parts);
    }
    case ReKind::kPlus:
    case ReKind::kStar: {
      Nfa out = Compose(re->child());
      std::vector<std::pair<Symbol, int>> loop =
          out.TransitionsFrom(out.initial());
      for (int q = 0; q < out.num_states(); ++q) {
        if (!out.IsAccepting(q)) continue;
        for (const auto& [symbol, to] : loop) {
          AddTransitionUnique(&out, q, symbol, to);
        }
      }
      if (re->kind() == ReKind::kStar) out.SetAccepting(out.initial(), true);
      return out;
    }
    case ReKind::kOpt: {
      Nfa out = Compose(re->child());
      out.SetAccepting(out.initial(), true);
      return out;
    }
  }
  return BuildGlushkovNfa(re);
}

}  // namespace

bool ContainsShuffle(const ReRef& re) {
  if (re->kind() == ReKind::kShuffle) return true;
  for (const auto& c : re->children()) {
    if (ContainsShuffle(c)) return true;
  }
  return false;
}

int64_t MatchNfaSizeBound(const ReRef& re) {
  constexpr int64_t kSaturated = kMaxShuffleProduct + 1;
  switch (re->kind()) {
    case ReKind::kSymbol:
      return 2;
    case ReKind::kConcat:
    case ReKind::kDisj: {
      int64_t sum = re->kind() == ReKind::kDisj ? 1 : 0;
      for (const auto& c : re->children()) {
        sum += MatchNfaSizeBound(c);
        if (sum >= kSaturated) return kSaturated;
      }
      return sum;
    }
    case ReKind::kShuffle: {
      int64_t product = 1;
      for (const auto& c : re->children()) {
        product *= MatchNfaSizeBound(c);
        if (product >= kSaturated) return kSaturated;
      }
      return product;
    }
    case ReKind::kPlus:
    case ReKind::kOpt:
    case ReKind::kStar:
      return MatchNfaSizeBound(re->child());
  }
  return kSaturated;
}

Nfa BuildMatchNfa(const ReRef& re) {
  if (!ContainsShuffle(re)) return BuildGlushkovNfa(re);
  return Compose(re);
}

}  // namespace condtd
