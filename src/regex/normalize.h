#ifndef CONDTD_REGEX_NORMALIZE_H_
#define CONDTD_REGEX_NORMALIZE_H_

#include "regex/ast.h"

namespace condtd {

/// Rewrites `re` into the normal form used inside the rewrite system
/// (proof of Claim 1): no Kleene star (r* becomes (r+)?), no superfluous
/// operator stacks ((s+)+ → s+, s?? → s?, (s?)+ → (s+)?), options hoisted
/// out of disjunctions ((a? + b) → (a + b)?), and inner closures absorbed
/// into repeated disjunctions ((a+ + b)+ → (a+b)+, (a? + b)+ → ((a+b)+)?).
/// All rules preserve the language (covered by property tests).
ReRef NormalizeNoStar(const ReRef& re);

/// Full normalization for human-facing output: NormalizeNoStar followed
/// by the post-processing step of Section 5 which reintroduces the star
/// ((r+)? → r*, (r?)+ → r*).
ReRef Normalize(const ReRef& re);

}  // namespace condtd

#endif  // CONDTD_REGEX_NORMALIZE_H_
