#include "regex/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "regex/shuffle.h"

namespace condtd {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == ':' || c == '-';
}

/// Nesting bound: adversarial ((((...)))) input errors out instead of
/// overflowing the parser stack.
constexpr int kMaxRegexDepth = 200;

/// Recursive-descent parser over the raw text. Whitespace sensitivity
/// (postfix `+` vs union `+`) is resolved by looking at adjacency.
class Parser {
 public:
  Parser(std::string_view text, Alphabet* alphabet,
         const RegexParseOptions& options)
      : text_(text), alphabet_(alphabet), options_(options) {}

  Result<ReRef> Parse() {
    Result<ReRef> re = ParseDisj();
    if (!re.ok()) return re;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(pos_) + " in regex '" +
                                std::string(text_) + "'");
    }
    return re;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  /// True if the `+` at the current position is a union separator: it is
  /// one iff it is separated from the preceding atom by whitespace.
  bool PlusIsUnion(size_t plus_pos) const {
    return plus_pos == 0 ||
           std::isspace(static_cast<unsigned char>(text_[plus_pos - 1]));
  }

  Result<ReRef> ParseDisj() {
    Result<ReRef> first = ParseShuffle();
    if (!first.ok()) return first;
    std::vector<ReRef> alts = {first.value()};
    while (true) {
      SkipSpace();
      size_t op_pos = pos_;
      char c = Peek();
      bool is_union = false;
      if (c == '|') {
        is_union = true;
      } else if (c == '+' && PlusIsUnion(op_pos)) {
        is_union = true;
      }
      if (!is_union) break;
      ++pos_;
      Result<ReRef> next = ParseShuffle();
      if (!next.ok()) return next;
      alts.push_back(next.value());
    }
    if (alts.size() == 1) return alts[0];
    return Re::Disj(std::move(alts));
  }

  /// Interleaving binds tighter than union and looser than
  /// concatenation: `a b & c | d` reads ((a b) & c) | d.
  Result<ReRef> ParseShuffle() {
    Result<ReRef> first = ParseConcat();
    if (!first.ok()) return first;
    std::vector<ReRef> factors = {first.value()};
    while (true) {
      SkipSpace();
      if (Peek() != '&') break;
      ++pos_;
      Result<ReRef> next = ParseConcat();
      if (!next.ok()) return next;
      factors.push_back(next.value());
    }
    if (factors.size() == 1) return factors[0];
    ReRef shuffle = Re::Shuffle(std::move(factors));
    // Shuffle expands to a product automaton; an unbounded `&` chain is
    // a state-explosion bomb, so reject oversized nodes at parse time.
    if (MatchNfaSizeBound(shuffle) > kMaxShuffleProduct) {
      return Status::ParseError(
          "interleaving expression too large (product automaton above " +
          std::to_string(kMaxShuffleProduct) + " states) in regex '" +
          std::string(text_) + "'");
    }
    return shuffle;
  }

  Result<ReRef> ParseConcat() {
    std::vector<ReRef> items;
    while (true) {
      SkipSpace();
      char c = Peek();
      if (c == '(' || IsNameStart(c) ||
          (options_.char_symbols &&
           std::isalnum(static_cast<unsigned char>(c)))) {
        Result<ReRef> item = ParsePostfix();
        if (!item.ok()) return item;
        items.push_back(item.value());
        continue;
      }
      break;
    }
    if (items.empty()) {
      return Status::ParseError("expected atom at offset " +
                                std::to_string(pos_) + " in regex '" +
                                std::string(text_) + "'");
    }
    if (items.size() == 1) return items[0];
    return Re::Concat(std::move(items));
  }

  Result<ReRef> ParsePostfix() {
    Result<ReRef> atom = ParseAtom();
    if (!atom.ok()) return atom;
    ReRef re = atom.value();
    // Postfix operators must be adjacent (no whitespace). Stacked
    // operators are bounded: each builds one AST level, so an unbounded
    // a???????... run would recurse arbitrarily deep in every
    // downstream tree traversal.
    int stacked = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != '?' && c != '*' && (c != '+' || PlusIsUnion(pos_))) break;
      if (++stacked > 32) {
        return Status::ParseError(
            "more than 32 stacked postfix operators at offset " +
            std::to_string(pos_) + " in regex '" + std::string(text_) +
            "'");
      }
      if (c == '?') {
        re = Re::Opt(re);
      } else if (c == '*') {
        re = Re::Star(re);
      } else {
        re = Re::Plus(re);
      }
      ++pos_;
    }
    return re;
  }

  Result<ReRef> ParseAtom() {
    SkipSpace();
    char c = Peek();
    if (c == '(') {
      if (++depth_ > kMaxRegexDepth) {
        return Status::ParseError("regex nested deeper than " +
                                  std::to_string(kMaxRegexDepth) +
                                  " levels");
      }
      ++pos_;
      Result<ReRef> inner = ParseDisj();
      --depth_;
      if (!inner.ok()) return inner;
      SkipSpace();
      if (Peek() != ')') {
        return Status::ParseError("missing ')' at offset " +
                                  std::to_string(pos_) + " in regex '" +
                                  std::string(text_) + "'");
      }
      ++pos_;
      return inner;
    }
    if (options_.char_symbols) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        ++pos_;
        return Re::Sym(alphabet_->Intern(std::string_view(&text_[pos_ - 1], 1)));
      }
    } else if (IsNameStart(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      return Re::Sym(
          alphabet_->Intern(text_.substr(start, pos_ - start)));
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(pos_) +
                              " in regex '" + std::string(text_) + "'");
  }

  std::string_view text_;
  Alphabet* alphabet_;
  RegexParseOptions options_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<ReRef> ParseRegex(std::string_view text, Alphabet* alphabet,
                         const RegexParseOptions& options) {
  if (alphabet == nullptr) {
    return Status::InvalidArgument("alphabet must not be null");
  }
  return Parser(text, alphabet, options).Parse();
}

}  // namespace condtd
