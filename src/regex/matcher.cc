#include "regex/matcher.h"

#include "regex/shuffle.h"

namespace condtd {

Matcher::Matcher(const ReRef& re) : nfa_(BuildMatchNfa(re)) {}

bool Matches(const ReRef& re, const Word& word) {
  return Matcher(re).Matches(word);
}

}  // namespace condtd
