#include "regex/matcher.h"

#include "regex/glushkov.h"

namespace condtd {

Matcher::Matcher(const ReRef& re) : nfa_(BuildGlushkovNfa(re)) {}

bool Matches(const ReRef& re, const Word& word) {
  return Matcher(re).Matches(word);
}

}  // namespace condtd
