#ifndef CONDTD_REGEX_EQUIVALENCE_H_
#define CONDTD_REGEX_EQUIVALENCE_H_

#include "automaton/dfa.h"
#include "base/status.h"
#include "regex/ast.h"

namespace condtd {

/// Compiles `re` to a complete DFA over symbols [0, num_symbols).
Dfa CompileToDfa(const ReRef& re, int num_symbols);

/// Exact language equality L(a) = L(b). Used as the oracle in property
/// tests for Theorem 1 / Claim 2 and in EXPERIMENTS.md verification.
bool LanguageEquivalent(const ReRef& a, const ReRef& b);

/// Exact language containment L(a) ⊆ L(b) — the iDTD guarantee of
/// Theorem 2 is checked with this.
bool LanguageSubset(const ReRef& a, const ReRef& b);

/// A shortest word in the symmetric difference L(a) Δ L(b), or
/// kNotFound when the languages are equal. Used to produce concrete
/// counterexamples in diagnostics and EXPERIMENTS.md.
Result<Word> FindDistinguishingWord(const ReRef& a, const ReRef& b);

/// DFA-level form of the same search (both DFAs must share num_symbols).
Result<Word> FindDistinguishingWordDfa(const Dfa& a, const Dfa& b);

/// A shortest word in L(a) \ L(b), or kNotFound when L(a) ⊆ L(b).
/// The witness form of LanguageSubset: Theorem 2 (and the conformance
/// harness inclusion oracle) are checked with this so a violation comes
/// with a concrete word the inferred expression wrongly rejects.
Result<Word> FindInclusionCounterexample(const ReRef& a, const ReRef& b);

/// DFA-level form of the same search (both DFAs must share num_symbols).
Result<Word> FindInclusionCounterexampleDfa(const Dfa& a, const Dfa& b);

}  // namespace condtd

#endif  // CONDTD_REGEX_EQUIVALENCE_H_
