#ifndef CONDTD_REGEX_PROPERTIES_H_
#define CONDTD_REGEX_PROPERTIES_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "regex/ast.h"

namespace condtd {

/// True iff the empty word belongs to L(re).
bool Nullable(const ReRef& re);

/// All distinct symbols occurring in `re`, sorted ascending.
std::vector<Symbol> SymbolsOf(const ReRef& re);

/// Number of occurrences of each symbol in the expression tree.
std::map<Symbol, int> SymbolOccurrences(const ReRef& re);

/// Total number of symbol occurrences (leaves).
int CountSymbolOccurrences(const ReRef& re);

/// Size metric used when reporting XTRACT-style "tokens": symbol
/// occurrences plus operator applications (a union over k alternatives
/// counts k-1, every postfix operator counts 1, concatenation is free).
int CountTokens(const ReRef& re);

/// True iff `re` is a single occurrence regular expression: every
/// alphabet symbol occurs at most once (Section 1.2).
bool IsSore(const ReRef& re);

/// True iff `re` is a chain regular expression: a concatenation of
/// factors of the form (a1+...+ak), (a1+...+ak)?, (a1+...+ak)+ or
/// (a1+...+ak)* where the ai are symbols (Section 1.2).
bool IsChare(const ReRef& re);

/// True iff `re` belongs to the restricted SIRE class (single occurrence
/// regular expression with interleaving, after Peng & Chen 2015 / Li et
/// al. 2019): either a plain SORE, or a top-level shuffle whose factors
/// are `&`-free SOREs over pairwise-disjoint symbol sets. The shuffle
/// operator never nests under another operator, and single occurrence
/// holds globally (which is what makes the factor alphabets disjoint).
bool IsSire(const ReRef& re);

/// Glushkov-style first/last/follow information projected onto symbols.
/// For a SORE this exactly describes its unique SOA (Proposition 1); for
/// general REs it describes the smallest SOA whose language contains
/// L(re).
struct SymbolSets {
  std::set<Symbol> first;
  std::set<Symbol> last;
  std::set<std::pair<Symbol, Symbol>> follow;
  bool nullable = false;
};

SymbolSets ComputeSymbolSets(const ReRef& re);

}  // namespace condtd

#endif  // CONDTD_REGEX_PROPERTIES_H_
