#include "regex/ast.h"

#include <algorithm>
#include <cassert>

namespace condtd {

/// Internal helper granting access to Re's private constructor.
struct ReFactory {
  static ReRef Make(ReKind kind, Symbol symbol, std::vector<ReRef> children) {
    return std::shared_ptr<const Re>(
        new Re(kind, symbol, std::move(children)));
  }
};

ReRef Re::Sym(Symbol symbol) {
  return ReFactory::Make(ReKind::kSymbol, symbol, {});
}

ReRef Re::Concat(std::vector<ReRef> children) {
  assert(!children.empty());
  std::vector<ReRef> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    assert(c != nullptr);
    if (c->kind() == ReKind::kConcat) {
      for (const auto& gc : c->children()) flat.push_back(gc);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.size() == 1) return flat[0];
  return ReFactory::Make(ReKind::kConcat, kInvalidSymbol, std::move(flat));
}

ReRef Re::Disj(std::vector<ReRef> children) {
  assert(!children.empty());
  std::vector<ReRef> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    assert(c != nullptr);
    if (c->kind() == ReKind::kDisj) {
      for (const auto& gc : c->children()) flat.push_back(gc);
    } else {
      flat.push_back(std::move(c));
    }
  }
  // Canonical alternative order makes outputs reproducible and turns
  // commutative equality into near-structural equality.
  std::stable_sort(flat.begin(), flat.end(),
                   [](const ReRef& a, const ReRef& b) {
                     return CompareRe(a, b) < 0;
                   });
  // Drop structurally duplicate alternatives (r + r = r).
  flat.erase(std::unique(flat.begin(), flat.end(),
                         [](const ReRef& a, const ReRef& b) {
                           return CompareRe(a, b) == 0;
                         }),
             flat.end());
  if (flat.size() == 1) return flat[0];
  return ReFactory::Make(ReKind::kDisj, kInvalidSymbol, std::move(flat));
}

ReRef Re::Shuffle(std::vector<ReRef> children) {
  assert(!children.empty());
  std::vector<ReRef> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    assert(c != nullptr);
    if (c->kind() == ReKind::kShuffle) {
      for (const auto& gc : c->children()) flat.push_back(gc);
    } else {
      flat.push_back(std::move(c));
    }
  }
  // Shuffle is commutative: canonical factor order makes outputs
  // reproducible. No deduplication — unlike union, shuffle is not
  // idempotent (a & a matches "aa", not "a").
  std::stable_sort(flat.begin(), flat.end(),
                   [](const ReRef& a, const ReRef& b) {
                     return CompareRe(a, b) < 0;
                   });
  if (flat.size() == 1) return flat[0];
  return ReFactory::Make(ReKind::kShuffle, kInvalidSymbol, std::move(flat));
}

ReRef Re::Plus(ReRef child) {
  assert(child != nullptr);
  return ReFactory::Make(ReKind::kPlus, kInvalidSymbol, {std::move(child)});
}

ReRef Re::Opt(ReRef child) {
  assert(child != nullptr);
  return ReFactory::Make(ReKind::kOpt, kInvalidSymbol, {std::move(child)});
}

ReRef Re::Star(ReRef child) {
  assert(child != nullptr);
  return ReFactory::Make(ReKind::kStar, kInvalidSymbol, {std::move(child)});
}

namespace {

/// Binding strength used to decide parenthesization: disjunction binds
/// weakest, then shuffle, then concatenation, then the postfix
/// operators; symbols are atoms.
int Precedence(ReKind kind) {
  switch (kind) {
    case ReKind::kDisj:
      return 0;
    case ReKind::kShuffle:
      return 1;
    case ReKind::kConcat:
      return 2;
    case ReKind::kPlus:
    case ReKind::kOpt:
    case ReKind::kStar:
      return 3;
    case ReKind::kSymbol:
      return 4;
  }
  return 4;
}

/// Name of the symbol whose text would end the rendering of `re` with no
/// closing delimiter in between (empty when the rendering ends with an
/// operator or parenthesis).
std::string RightExposedName(const ReRef& re, const Alphabet& alphabet) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return alphabet.Name(re->symbol());
    case ReKind::kConcat:
      return RightExposedName(re->children().back(), alphabet);
    default:
      return "";  // postfix operator or parenthesized group
  }
}

/// Symmetric: the symbol name that would start the rendering.
std::string LeftExposedName(const ReRef& re, const Alphabet& alphabet) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return alphabet.Name(re->symbol());
    case ReKind::kConcat:
      return LeftExposedName(re->children().front(), alphabet);
    case ReKind::kPlus:
    case ReKind::kOpt:
    case ReKind::kStar:
      // The operand prints first; only a bare symbol stays unwrapped.
      return re->child()->kind() == ReKind::kSymbol
                 ? alphabet.Name(re->child()->symbol())
                 : "";
    case ReKind::kDisj:
    case ReKind::kShuffle:
      return "";  // parenthesized in concatenation context
  }
  return "";
}

void Print(const ReRef& re, const Alphabet& alphabet, PrintStyle style,
           int min_prec, std::string* out) {
  const bool parens = Precedence(re->kind()) < min_prec;
  if (parens) *out += '(';
  switch (re->kind()) {
    case ReKind::kSymbol:
      *out += alphabet.Name(re->symbol());
      break;
    case ReKind::kConcat: {
      for (size_t i = 0; i < re->children().size(); ++i) {
        if (i > 0) {
          if (style == PrintStyle::kParseable) {
            *out += ' ';
          } else {
            // Paper style runs single-letter names together but keeps a
            // space wherever two adjacent name characters would merge
            // into what reads like one multi-character name.
            std::string prev = RightExposedName(re->children()[i - 1],
                                                alphabet);
            std::string cur = LeftExposedName(re->children()[i], alphabet);
            if (!prev.empty() && !cur.empty() &&
                (prev.size() > 1 || cur.size() > 1)) {
              *out += ' ';
            }
          }
        }
        Print(re->children()[i], alphabet, style, 3, out);
      }
      break;
    }
    case ReKind::kDisj: {
      const char* sep = style == PrintStyle::kParseable ? " | " : " + ";
      for (size_t i = 0; i < re->children().size(); ++i) {
        if (i > 0) *out += sep;
        Print(re->children()[i], alphabet, style, 1, out);
      }
      break;
    }
    case ReKind::kShuffle: {
      for (size_t i = 0; i < re->children().size(); ++i) {
        if (i > 0) *out += " & ";
        Print(re->children()[i], alphabet, style, 2, out);
      }
      break;
    }
    case ReKind::kPlus:
      Print(re->child(), alphabet, style, 4, out);
      *out += '+';
      break;
    case ReKind::kOpt:
      Print(re->child(), alphabet, style, 4, out);
      *out += '?';
      break;
    case ReKind::kStar:
      Print(re->child(), alphabet, style, 4, out);
      *out += '*';
      break;
  }
  if (parens) *out += ')';
}

int KindRank(ReKind kind) {
  switch (kind) {
    case ReKind::kSymbol:
      return 0;
    case ReKind::kConcat:
      return 1;
    case ReKind::kDisj:
      return 2;
    case ReKind::kPlus:
      return 3;
    case ReKind::kOpt:
      return 4;
    case ReKind::kStar:
      return 5;
    case ReKind::kShuffle:
      return 6;
  }
  return 7;
}

}  // namespace

std::string ToString(const ReRef& re, const Alphabet& alphabet,
                     PrintStyle style) {
  std::string out;
  Print(re, alphabet, style, 0, &out);
  return out;
}

int CompareRe(const ReRef& a, const ReRef& b) {
  if (a.get() == b.get()) return 0;
  if (a->kind() != b->kind()) return KindRank(a->kind()) - KindRank(b->kind());
  if (a->kind() == ReKind::kSymbol) {
    return static_cast<int>(a->symbol()) - static_cast<int>(b->symbol());
  }
  const auto& ca = a->children();
  const auto& cb = b->children();
  if (ca.size() != cb.size()) {
    return static_cast<int>(ca.size()) - static_cast<int>(cb.size());
  }
  for (size_t i = 0; i < ca.size(); ++i) {
    int c = CompareRe(ca[i], cb[i]);
    if (c != 0) return c;
  }
  return 0;
}

ReRef RemapSymbols(const ReRef& re,
                   const std::map<Symbol, Symbol>& mapping) {
  switch (re->kind()) {
    case ReKind::kSymbol: {
      auto it = mapping.find(re->symbol());
      return it == mapping.end() ? re : Re::Sym(it->second);
    }
    case ReKind::kConcat:
    case ReKind::kDisj:
    case ReKind::kShuffle: {
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) {
        kids.push_back(RemapSymbols(c, mapping));
      }
      if (re->kind() == ReKind::kConcat) return Re::Concat(std::move(kids));
      if (re->kind() == ReKind::kDisj) return Re::Disj(std::move(kids));
      return Re::Shuffle(std::move(kids));
    }
    case ReKind::kPlus:
      return Re::Plus(RemapSymbols(re->child(), mapping));
    case ReKind::kOpt:
      return Re::Opt(RemapSymbols(re->child(), mapping));
    case ReKind::kStar:
      return Re::Star(RemapSymbols(re->child(), mapping));
  }
  return re;
}

bool StructurallyEqual(const ReRef& a, const ReRef& b, bool commutative_disj) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  if (a->kind() == ReKind::kSymbol) return a->symbol() == b->symbol();
  const auto& ca = a->children();
  const auto& cb = b->children();
  if (ca.size() != cb.size()) return false;
  if (a->kind() == ReKind::kDisj && commutative_disj) {
    // Children are canonically sorted at construction, so positional
    // comparison already realizes multiset comparison; fall through.
  }
  for (size_t i = 0; i < ca.size(); ++i) {
    if (!StructurallyEqual(ca[i], cb[i], commutative_disj)) return false;
  }
  return true;
}

}  // namespace condtd
