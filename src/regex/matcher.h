#ifndef CONDTD_REGEX_MATCHER_H_
#define CONDTD_REGEX_MATCHER_H_

#include "automaton/nfa.h"
#include "regex/ast.h"

namespace condtd {

/// Compiled membership tester. Construction builds the Glushkov automaton
/// once; Matches then runs a subset simulation per word.
class Matcher {
 public:
  explicit Matcher(const ReRef& re);

  bool Matches(const Word& word) const { return nfa_.Accepts(word); }

 private:
  Nfa nfa_;
};

/// One-shot convenience wrapper around Matcher.
bool Matches(const ReRef& re, const Word& word);

}  // namespace condtd

#endif  // CONDTD_REGEX_MATCHER_H_
