#include "regex/normalize.h"

#include <vector>

#include "regex/properties.h"

namespace condtd {

namespace {

/// One bottom-up pass of the no-star rules. Children are already
/// normalized when a node is processed, and rule outputs are re-normalized
/// recursively, so a single outer call reaches a fixpoint.
ReRef NormalizeNode(const ReRef& re);

ReRef NormalizeChildren(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return re;
    case ReKind::kConcat: {
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) kids.push_back(NormalizeNode(c));
      return Re::Concat(std::move(kids));
    }
    case ReKind::kDisj: {
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) kids.push_back(NormalizeNode(c));
      return Re::Disj(std::move(kids));
    }
    case ReKind::kShuffle: {
      // No shuffle-specific rules; normalize the factors in place.
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) kids.push_back(NormalizeNode(c));
      return Re::Shuffle(std::move(kids));
    }
    case ReKind::kPlus:
      return Re::Plus(NormalizeNode(re->child()));
    case ReKind::kOpt:
      return Re::Opt(NormalizeNode(re->child()));
    case ReKind::kStar:
      // Star is eliminated in the internal form: r* = (r+)?.
      return Re::Opt(Re::Plus(NormalizeNode(re->child())));
  }
  return re;
}

ReRef NormalizeNode(const ReRef& input) {
  ReRef re = NormalizeChildren(input);
  switch (re->kind()) {
    case ReKind::kDisj: {
      // (a? + b) = (a + b)? — hoist options out of the union.
      bool any_opt = false;
      for (const auto& c : re->children()) {
        if (c->kind() == ReKind::kOpt) {
          any_opt = true;
          break;
        }
      }
      if (any_opt) {
        std::vector<ReRef> kids;
        kids.reserve(re->children().size());
        for (const auto& c : re->children()) {
          kids.push_back(c->kind() == ReKind::kOpt ? c->child() : c);
        }
        return NormalizeNode(Re::Opt(Re::Disj(std::move(kids))));
      }
      return re;
    }
    case ReKind::kPlus: {
      const ReRef& c = re->child();
      if (c->kind() == ReKind::kPlus) return c;                     // (s+)+ = s+
      if (c->kind() == ReKind::kOpt) {
        // (s?)+ = (s+)?
        return NormalizeNode(Re::Opt(Re::Plus(c->child())));
      }
      if (c->kind() == ReKind::kDisj) {
        // (r + s+)+ = (r + s)+ — the outer repetition absorbs inner
        // closures of the alternatives.
        bool any_plus = false;
        for (const auto& alt : c->children()) {
          if (alt->kind() == ReKind::kPlus) {
            any_plus = true;
            break;
          }
        }
        if (any_plus) {
          std::vector<ReRef> kids;
          kids.reserve(c->children().size());
          for (const auto& alt : c->children()) {
            kids.push_back(alt->kind() == ReKind::kPlus ? alt->child() : alt);
          }
          return NormalizeNode(Re::Plus(Re::Disj(std::move(kids))));
        }
      }
      return re;
    }
    case ReKind::kOpt: {
      const ReRef& c = re->child();
      if (c->kind() == ReKind::kOpt) return c;  // s?? = s?
      if (Nullable(c)) return c;                // s already matches ε
      return re;
    }
    default:
      return re;
  }
}

/// Reintroduces the Kleene star for output: (r+)? and (r?)+ become r*.
ReRef Starify(const ReRef& re) {
  switch (re->kind()) {
    case ReKind::kSymbol:
      return re;
    case ReKind::kConcat: {
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) kids.push_back(Starify(c));
      return Re::Concat(std::move(kids));
    }
    case ReKind::kDisj: {
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) kids.push_back(Starify(c));
      return Re::Disj(std::move(kids));
    }
    case ReKind::kShuffle: {
      std::vector<ReRef> kids;
      kids.reserve(re->children().size());
      for (const auto& c : re->children()) kids.push_back(Starify(c));
      return Re::Shuffle(std::move(kids));
    }
    case ReKind::kPlus: {
      ReRef c = Starify(re->child());
      if (c->kind() == ReKind::kOpt) return Re::Star(c->child());
      if (c->kind() == ReKind::kStar) return c;
      return Re::Plus(c);
    }
    case ReKind::kOpt: {
      ReRef c = Starify(re->child());
      if (c->kind() == ReKind::kPlus) return Re::Star(c->child());
      if (c->kind() == ReKind::kStar) return c;
      return Re::Opt(c);
    }
    case ReKind::kStar: {
      ReRef c = Starify(re->child());
      if (c->kind() == ReKind::kPlus || c->kind() == ReKind::kOpt ||
          c->kind() == ReKind::kStar) {
        return Re::Star(c->child());
      }
      return Re::Star(c);
    }
  }
  return re;
}

}  // namespace

ReRef NormalizeNoStar(const ReRef& re) { return NormalizeNode(re); }

ReRef Normalize(const ReRef& re) { return Starify(NormalizeNode(re)); }

}  // namespace condtd
