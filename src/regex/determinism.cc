#include "regex/determinism.h"

#include <set>
#include <utility>

#include "regex/shuffle.h"

namespace condtd {

bool IsDeterministic(const ReRef& re) {
  Nfa nfa = BuildMatchNfa(re);
  for (int q = 0; q < nfa.num_states(); ++q) {
    std::set<Symbol> seen;
    for (const auto& [symbol, to] : nfa.TransitionsFrom(q)) {
      (void)to;
      if (!seen.insert(symbol).second) return false;
    }
  }
  return true;
}

}  // namespace condtd
