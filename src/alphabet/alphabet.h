#ifndef CONDTD_ALPHABET_ALPHABET_H_
#define CONDTD_ALPHABET_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace condtd {

/// A symbol is an interned element name. Values are dense indices into an
/// Alphabet, so algorithms can use vectors instead of hash maps.
using Symbol = int32_t;

inline constexpr Symbol kInvalidSymbol = -1;

/// A word is a sequence of symbols: the child-element names below one
/// element occurrence, in document order.
using Word = std::vector<Symbol>;

/// Bidirectional mapping between element names and dense Symbol ids.
/// Interning order defines the id order; all algorithms treat ids as
/// opaque but use them for stable, reproducible tie-breaking.
class Alphabet {
 public:
  Alphabet() = default;

  /// Returns the id for `name`, interning it if new.
  Symbol Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidSymbol if never interned.
  Symbol Find(std::string_view name) const;

  /// Returns the name for an id; id must be valid.
  const std::string& Name(Symbol symbol) const { return names_.at(symbol); }

  /// Bounds-checked rendering for error messages and debug output: the
  /// interned name for a valid id, "#<id>" otherwise.
  std::string NameOrPlaceholder(Symbol symbol) const;

  /// Number of distinct symbols.
  int size() const { return static_cast<int>(names_.size()); }

  /// Interns every character of `text` as a one-letter name. Convenient
  /// for paper examples like "bacacdacde".
  Word WordFromChars(std::string_view text);

  /// Renders a word back to text: one-letter names are concatenated,
  /// longer names are space-separated.
  std::string WordToString(const Word& word) const;

  /// Rough resident bytes of the intern tables (see base/mem_estimate.h
  /// for the estimation contract). Part of a corpus's memory footprint
  /// next to SummaryStore::ApproxBytes.
  size_t ApproxBytes() const;

 private:
  /// Transparent hasher so `Intern`/`Find` can probe with the incoming
  /// string_view directly — no temporary std::string per lookup on the
  /// ingest hot path (one lookup per element plus one per child).
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view name) const noexcept {
      return std::hash<std::string_view>{}(name);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol, StringHash, std::equal_to<>>
      index_;
};

}  // namespace condtd

#endif  // CONDTD_ALPHABET_ALPHABET_H_
