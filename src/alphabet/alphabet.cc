#include "alphabet/alphabet.h"

#include "base/mem_estimate.h"

namespace condtd {

Symbol Alphabet::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

Symbol Alphabet::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return kInvalidSymbol;
  return it->second;
}

std::string Alphabet::NameOrPlaceholder(Symbol symbol) const {
  if (symbol >= 0 && symbol < size()) return names_[symbol];
  return "#" + std::to_string(symbol);
}

Word Alphabet::WordFromChars(std::string_view text) {
  Word word;
  word.reserve(text.size());
  for (char c : text) word.push_back(Intern(std::string_view(&c, 1)));
  return word;
}

std::string Alphabet::WordToString(const Word& word) const {
  bool all_single = true;
  for (Symbol s : word) {
    if (Name(s).size() != 1) {
      all_single = false;
      break;
    }
  }
  std::string out;
  for (size_t i = 0; i < word.size(); ++i) {
    if (!all_single && i > 0) out += ' ';
    out += Name(word[i]);
  }
  return out;
}

size_t Alphabet::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += VectorBytes(names_) + HashBytes(index_);
  for (const std::string& name : names_) bytes += StringBytes(name);
  return bytes;
}

}  // namespace condtd
