#include "xsd/parser.h"

#include <string>
#include <vector>

#include "xml/parser.h"

namespace condtd {

namespace {

/// Local name of a possibly-prefixed QName ("xs:element" → "element").
std::string_view LocalName(const std::string& qname) {
  size_t colon = qname.rfind(':');
  return colon == std::string::npos
             ? std::string_view(qname)
             : std::string_view(qname).substr(colon + 1);
}

Result<std::pair<int, int>> ReadOccurs(const XmlElement& element) {
  int min_occurs = 1;
  int max_occurs = 1;
  if (const std::string* raw = element.FindAttribute("minOccurs")) {
    min_occurs = std::atoi(raw->c_str());
    if (min_occurs < 0) {
      return Status::InvalidArgument("negative minOccurs");
    }
  }
  if (const std::string* raw = element.FindAttribute("maxOccurs")) {
    if (*raw == "unbounded") {
      max_occurs = -1;
    } else {
      max_occurs = std::atoi(raw->c_str());
      if (max_occurs < 1) {
        return Status::InvalidArgument("maxOccurs must be >= 1 or "
                                       "'unbounded'");
      }
    }
  }
  if (max_occurs != -1 && min_occurs > max_occurs) {
    return Status::InvalidArgument("minOccurs > maxOccurs");
  }
  return std::make_pair(min_occurs, max_occurs);
}

class XsdReader {
 public:
  explicit XsdReader(Alphabet* alphabet) : alphabet_(alphabet) {}

  Status ReadSchema(const XmlElement& schema, Dtd* dtd) {
    if (LocalName(schema.name()) != "schema") {
      return Status::InvalidArgument("root element is not xs:schema");
    }
    for (const auto& child : schema.children()) {
      if (LocalName(child->name()) != "element") {
        return Status::InvalidArgument(
            "unsupported top-level construct: " + child->name());
      }
      CONDTD_RETURN_IF_ERROR(ReadGlobalElement(*child, dtd));
    }
    return Status::OK();
  }

 private:
  Status ReadGlobalElement(const XmlElement& element, Dtd* dtd) {
    const std::string* name = element.FindAttribute("name");
    if (name == nullptr) {
      return Status::InvalidArgument("global xs:element without a name");
    }
    Symbol symbol = alphabet_->Intern(*name);
    if (dtd->root == kInvalidSymbol) dtd->root = symbol;

    ContentModel model;
    if (element.FindAttribute("type") != nullptr) {
      // Built-in simple type → text-only content.
      model.kind = ContentKind::kPcdataOnly;
      dtd->elements[symbol] = std::move(model);
      return Status::OK();
    }
    const XmlElement* complex_type = nullptr;
    for (const auto& child : element.children()) {
      if (LocalName(child->name()) == "complexType") {
        complex_type = child.get();
      }
    }
    if (complex_type == nullptr) {
      model.kind = ContentKind::kPcdataOnly;  // <xs:element name="e"/>
      dtd->elements[symbol] = std::move(model);
      return Status::OK();
    }
    CONDTD_RETURN_IF_ERROR(
        ReadComplexType(*complex_type, symbol, &model, dtd));
    dtd->elements[symbol] = std::move(model);
    return Status::OK();
  }

  Status ReadComplexType(const XmlElement& complex_type, Symbol symbol,
                         ContentModel* model, Dtd* dtd) {
    const std::string* mixed = complex_type.FindAttribute("mixed");
    bool is_mixed = mixed != nullptr && *mixed == "true";

    const XmlElement* particle = nullptr;
    bool has_any = false;
    for (const auto& child : complex_type.children()) {
      std::string_view local = LocalName(child->name());
      if (local == "attribute") {
        Dtd::AttributeDef def;
        const std::string* attr_name = child->FindAttribute("name");
        if (attr_name == nullptr) {
          return Status::InvalidArgument("xs:attribute without a name");
        }
        def.name = *attr_name;
        def.type = "CDATA";
        const std::string* use = child->FindAttribute("use");
        def.default_decl =
            use != nullptr && *use == "required" ? "#REQUIRED" : "#IMPLIED";
        dtd->attributes[symbol].push_back(std::move(def));
        continue;
      }
      if (local == "sequence" || local == "choice" || local == "element") {
        if (particle != nullptr) {
          return Status::InvalidArgument(
              "multiple content particles in one complexType");
        }
        particle = child.get();
        continue;
      }
      return Status::InvalidArgument("unsupported construct xs:" +
                                     std::string(local));
    }
    // Detect the xs:any idiom the writer uses for ANY.
    if (particle != nullptr && LocalName(particle->name()) == "sequence" &&
        particle->children().size() == 1 &&
        LocalName(particle->children()[0]->name()) == "any") {
      model->kind = ContentKind::kAny;
      return Status::OK();
    }
    if (is_mixed) {
      if (particle == nullptr) {
        model->kind = ContentKind::kPcdataOnly;
        return Status::OK();
      }
      if (LocalName(particle->name()) != "choice") {
        return Status::InvalidArgument(
            "mixed content must be a repeated xs:choice of refs");
      }
      model->kind = ContentKind::kMixed;
      for (const auto& ref : particle->children()) {
        const std::string* name = ref->FindAttribute("ref");
        if (name == nullptr) name = ref->FindAttribute("name");
        if (LocalName(ref->name()) != "element" || name == nullptr) {
          return Status::InvalidArgument(
              "mixed choice must contain element refs");
        }
        model->mixed_symbols.push_back(alphabet_->Intern(*name));
      }
      return Status::OK();
    }
    if (particle == nullptr) {
      model->kind = ContentKind::kEmpty;
      return Status::OK();
    }
    Result<ReRef> re = ReadParticle(*particle);
    if (!re.ok()) return re.status();
    if (re.value() == nullptr) {
      model->kind = ContentKind::kEmpty;
      return Status::OK();
    }
    model->kind = ContentKind::kChildren;
    model->regex = re.value();
    return Status::OK();
  }

  /// Converts a particle to an RE (nullptr = the empty word only).
  Result<ReRef> ReadParticle(const XmlElement& particle) {
    Result<std::pair<int, int>> occurs = ReadOccurs(particle);
    if (!occurs.ok()) return occurs.status();
    auto [min_occurs, max_occurs] = occurs.value();

    std::string_view local = LocalName(particle.name());
    ReRef body;
    if (local == "element") {
      const std::string* name = particle.FindAttribute("ref");
      if (name == nullptr) name = particle.FindAttribute("name");
      if (name == nullptr) {
        return Status::InvalidArgument("particle element without ref/name");
      }
      body = Re::Sym(alphabet_->Intern(*name));
    } else if (local == "sequence" || local == "choice") {
      std::vector<ReRef> parts;
      for (const auto& child : particle.children()) {
        Result<ReRef> part = ReadParticle(*child);
        if (!part.ok()) return part;
        if (part.value() != nullptr) parts.push_back(part.value());
      }
      if (parts.empty()) return ReRef(nullptr);
      body = local == "sequence" ? Re::Concat(std::move(parts))
                                 : Re::Disj(std::move(parts));
    } else {
      return Status::InvalidArgument("unsupported particle xs:" +
                                     std::string(local));
    }
    return ExpandOccurrences(body, min_occurs, max_occurs);
  }

  Alphabet* alphabet_;
};

}  // namespace

ReRef ExpandOccurrences(const ReRef& re, int min_occurs, int max_occurs) {
  if (max_occurs == 0) return nullptr;
  if (min_occurs == 0 && max_occurs == 1) return Re::Opt(re);
  if (min_occurs == 1 && max_occurs == 1) return re;
  if (max_occurs < 0) {
    // {0,∞} → r*; {1,∞} → r+; {m,∞} → r^(m-1) r+.
    if (min_occurs == 0) return Re::Star(re);
    std::vector<ReRef> parts(min_occurs - 1, re);
    parts.push_back(Re::Plus(re));
    return Re::Concat(std::move(parts));
  }
  // {m,n} with n finite: m mandatory copies, then n-m nested optionals
  // (r (r ...)?)? so any count in [m, n] matches deterministically.
  ReRef tail;
  for (int i = 0; i < max_occurs - min_occurs; ++i) {
    tail = tail == nullptr ? Re::Opt(re)
                           : Re::Opt(Re::Concat({re, tail}));
  }
  std::vector<ReRef> parts(min_occurs, re);
  if (tail != nullptr) parts.push_back(std::move(tail));
  return Re::Concat(std::move(parts));
}

Result<Dtd> ParseXsd(std::string_view xsd_text, Alphabet* alphabet) {
  if (alphabet == nullptr) {
    return Status::InvalidArgument("alphabet must not be null");
  }
  Result<XmlDocument> doc = ParseXml(xsd_text);
  if (!doc.ok()) return doc.status();
  Dtd dtd;
  XsdReader reader(alphabet);
  CONDTD_RETURN_IF_ERROR(reader.ReadSchema(*doc->root, &dtd));
  return dtd;
}

}  // namespace condtd
