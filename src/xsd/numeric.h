#ifndef CONDTD_XSD_NUMERIC_H_
#define CONDTD_XSD_NUMERIC_H_

#include <map>
#include <string>
#include <vector>

#include "crx/crx.h"
#include "regex/ast.h"

namespace condtd {

/// Occurrence bounds for one RE node. max_occurs == kUnbounded means
/// "unbounded" (the paper's r≥i); min_occurs == max_occurs realizes r=i.
struct NumericAnnotation {
  static constexpr int kUnbounded = -1;
  int min_occurs = 1;
  int max_occurs = 1;
};

/// Map from RE nodes (by identity) to occurrence bounds.
using NumericAnnotations = std::map<const Re*, NumericAnnotation>;

/// Section 9's numerical-predicate post-processing: for every `+`/`*`
/// node of the SORE whose body is a single symbol or a disjunction of
/// symbols, the exact occurrence counts in the sample tighten the
/// operator to r≥i (min observed i) or r=i (constant count). Only
/// meaningful for single-occurrence REs (each symbol belongs to exactly
/// one factor); returns an empty map otherwise.
NumericAnnotations AnnotateNumeric(const ReRef& re,
                                   const std::vector<Word>& sample);

/// Same, but fed from a CRX-style histogram summary (so the inferrer can
/// annotate without retaining the data).
NumericAnnotations AnnotateNumericFromHistograms(
    const ReRef& re,
    const std::map<CrxState::Histogram, int64_t>& histograms,
    int64_t empty_count);

/// Renders the RE with numerical predicates in the paper's notation
/// (a=2 b>=2 instead of a a b b b*).
std::string ToNumericString(const ReRef& re,
                            const NumericAnnotations& annotations,
                            const Alphabet& alphabet);

}  // namespace condtd

#endif  // CONDTD_XSD_NUMERIC_H_
