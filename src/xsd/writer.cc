#include "xsd/writer.h"

#include <cctype>

#include "base/strings.h"

namespace condtd {

namespace {

std::string OccursAttributes(int min_occurs, int max_occurs) {
  std::string out;
  if (min_occurs != 1) {
    out += " minOccurs=\"" + std::to_string(min_occurs) + "\"";
  }
  if (max_occurs == NumericAnnotation::kUnbounded) {
    out += " maxOccurs=\"unbounded\"";
  } else if (max_occurs != 1) {
    out += " maxOccurs=\"" + std::to_string(max_occurs) + "\"";
  }
  return out;
}

class XsdPrinter {
 public:
  XsdPrinter(const Alphabet& alphabet, const NumericAnnotations* numeric)
      : alphabet_(alphabet), numeric_(numeric) {}

  /// Renders `re` as a particle with the given occurrence bounds.
  void Particle(const ReRef& re, int min_occurs, int max_occurs, int indent,
                std::string* out) {
    // Fold unary operators into occurrence bounds where possible.
    switch (re->kind()) {
      case ReKind::kPlus:
      case ReKind::kStar:
      case ReKind::kOpt: {
        int child_min;
        int child_max;
        if (numeric_ != nullptr) {
          auto it = numeric_->find(re.get());
          if (it != numeric_->end()) {
            Particle(re->child(), it->second.min_occurs,
                     it->second.max_occurs, indent, out);
            return;
          }
        }
        if (re->kind() == ReKind::kPlus) {
          child_min = 1;
          child_max = NumericAnnotation::kUnbounded;
        } else if (re->kind() == ReKind::kStar) {
          child_min = 0;
          child_max = NumericAnnotation::kUnbounded;
        } else {
          child_min = 0;
          child_max = 1;
        }
        // Composing bounds of stacked operators is only exact for the
        // simple (and after normalization, only occurring) cases where
        // the outer particle has bounds 1..1.
        if (min_occurs == 1 && max_occurs == 1) {
          Particle(re->child(), child_min, child_max, indent, out);
          return;
        }
        // Otherwise wrap in a sequence carrying the outer bounds.
        std::string pad(indent * 2, ' ');
        *out += pad + "<xs:sequence" +
                OccursAttributes(min_occurs, max_occurs) + ">\n";
        Particle(re->child(), child_min, child_max, indent + 1, out);
        *out += pad + "</xs:sequence>\n";
        return;
      }
      case ReKind::kSymbol: {
        std::string pad(indent * 2, ' ');
        *out += pad + "<xs:element ref=\"" + alphabet_.Name(re->symbol()) +
                "\"" + OccursAttributes(min_occurs, max_occurs) + "/>\n";
        return;
      }
      case ReKind::kConcat: {
        std::string pad(indent * 2, ' ');
        *out += pad + "<xs:sequence" +
                OccursAttributes(min_occurs, max_occurs) + ">\n";
        for (const auto& c : re->children()) {
          Particle(c, 1, 1, indent + 1, out);
        }
        *out += pad + "</xs:sequence>\n";
        return;
      }
      case ReKind::kDisj: {
        std::string pad(indent * 2, ' ');
        *out += pad + "<xs:choice" + OccursAttributes(min_occurs, max_occurs) +
                ">\n";
        for (const auto& c : re->children()) {
          Particle(c, 1, 1, indent + 1, out);
        }
        *out += pad + "</xs:choice>\n";
        return;
      }
      case ReKind::kShuffle: {
        // Interleaving maps to the XSD all-group. XSD 1.0 restricts
        // xs:all to element particles; factor groups beyond that rely on
        // the 1.1 relaxation, which is the closest faithful rendering.
        std::string pad(indent * 2, ' ');
        *out += pad + "<xs:all" + OccursAttributes(min_occurs, max_occurs) +
                ">\n";
        for (const auto& c : re->children()) {
          Particle(c, 1, 1, indent + 1, out);
        }
        *out += pad + "</xs:all>\n";
        return;
      }
    }
  }

 private:
  const Alphabet& alphabet_;
  const NumericAnnotations* numeric_;
};

}  // namespace

std::string WriteXsd(const Dtd& dtd, const Alphabet& alphabet,
                     const std::map<Symbol, XsdElementExtras>& extras) {
  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";
  std::vector<Symbol> order;
  if (dtd.root != kInvalidSymbol && dtd.elements.count(dtd.root) > 0) {
    order.push_back(dtd.root);
  }
  for (const auto& [symbol, model] : dtd.elements) {
    if (symbol != dtd.root) order.push_back(symbol);
  }
  for (Symbol symbol : order) {
    const ContentModel& model = dtd.elements.at(symbol);
    auto extra_it = extras.find(symbol);
    const XsdElementExtras* extra =
        extra_it == extras.end() ? nullptr : &extra_it->second;
    const std::string& name = alphabet.Name(symbol);
    auto attrs_it = dtd.attributes.find(symbol);
    bool has_attrs =
        attrs_it != dtd.attributes.end() && !attrs_it->second.empty();

    auto write_attributes = [&](int indent) {
      if (!has_attrs) return;
      std::string pad(indent * 2, ' ');
      for (const auto& def : attrs_it->second) {
        out += pad + "<xs:attribute name=\"" + def.name +
               "\" type=\"xs:string\"";
        if (def.default_decl == "#REQUIRED") out += " use=\"required\"";
        out += "/>\n";
      }
    };

    switch (model.kind) {
      case ContentKind::kPcdataOnly:
        if (!has_attrs) {
          std::string type = extra != nullptr && !extra->text_type.empty()
                                 ? extra->text_type
                                 : "xs:string";
          out += "  <xs:element name=\"" + name + "\" type=\"" + type +
                 "\"/>\n";
        } else {
          out += "  <xs:element name=\"" + name + "\">\n";
          out += "    <xs:complexType mixed=\"true\">\n";
          write_attributes(3);
          out += "    </xs:complexType>\n";
          out += "  </xs:element>\n";
        }
        break;
      case ContentKind::kEmpty:
        out += "  <xs:element name=\"" + name + "\">\n";
        out += "    <xs:complexType>\n";
        write_attributes(3);
        out += "    </xs:complexType>\n";
        out += "  </xs:element>\n";
        break;
      case ContentKind::kAny:
        out += "  <xs:element name=\"" + name + "\">\n";
        out += "    <xs:complexType mixed=\"true\">\n";
        out += "      <xs:sequence>\n";
        out += "        <xs:any minOccurs=\"0\" maxOccurs=\"unbounded\" "
               "processContents=\"lax\"/>\n";
        out += "      </xs:sequence>\n";
        write_attributes(3);
        out += "    </xs:complexType>\n";
        out += "  </xs:element>\n";
        break;
      case ContentKind::kMixed: {
        out += "  <xs:element name=\"" + name + "\">\n";
        out += "    <xs:complexType mixed=\"true\">\n";
        out += "      <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n";
        for (Symbol child : model.mixed_symbols) {
          out += "        <xs:element ref=\"" + alphabet.Name(child) +
                 "\"/>\n";
        }
        out += "      </xs:choice>\n";
        write_attributes(3);
        out += "    </xs:complexType>\n";
        out += "  </xs:element>\n";
        break;
      }
      case ContentKind::kChildren: {
        out += "  <xs:element name=\"" + name + "\">\n";
        out += "    <xs:complexType>\n";
        XsdPrinter printer(alphabet,
                           extra != nullptr ? &extra->numeric : nullptr);
        // A complexType's particle must be a model group; a content
        // model that boils down to one element gets an xs:sequence
        // wrapper.
        const Re* skeleton = model.regex.get();
        while (skeleton->kind() == ReKind::kPlus ||
               skeleton->kind() == ReKind::kOpt ||
               skeleton->kind() == ReKind::kStar) {
          skeleton = skeleton->child().get();
        }
        bool wrap = skeleton->kind() == ReKind::kSymbol;
        if (wrap) out += "      <xs:sequence>\n";
        printer.Particle(model.regex, 1, 1, wrap ? 4 : 3, &out);
        if (wrap) out += "      </xs:sequence>\n";
        write_attributes(3);
        out += "    </xs:complexType>\n";
        out += "  </xs:element>\n";
        break;
      }
    }
  }
  out += "</xs:schema>\n";
  return out;
}

std::string InferSimpleType(const std::vector<std::string>& samples) {
  if (samples.empty()) return "xs:string";
  bool all_int = true;
  bool all_decimal = true;
  bool all_date = true;
  bool all_bool = true;
  for (const std::string& raw : samples) {
    std::string_view text = StripWhitespace(raw);
    if (text.empty()) {
      all_int = all_decimal = all_date = all_bool = false;
      break;
    }
    // boolean
    if (!(text == "true" || text == "false" || text == "0" || text == "1")) {
      all_bool = false;
    }
    // integer / decimal
    size_t i = 0;
    if (text[0] == '+' || text[0] == '-') i = 1;
    bool digits = i < text.size();
    bool dot = false;
    bool decimal_ok = true;
    for (size_t j = i; j < text.size(); ++j) {
      if (text[j] == '.') {
        if (dot) decimal_ok = false;
        dot = true;
      } else if (!std::isdigit(static_cast<unsigned char>(text[j]))) {
        digits = false;
        decimal_ok = false;
      }
    }
    if (!digits || dot) all_int = false;
    if (!decimal_ok || !digits) all_decimal = false;
    // date: YYYY-MM-DD
    bool date = text.size() == 10 && text[4] == '-' && text[7] == '-';
    if (date) {
      for (size_t j : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
        if (!std::isdigit(static_cast<unsigned char>(text[j]))) date = false;
      }
    }
    if (!date) all_date = false;
  }
  if (all_bool) return "xs:boolean";
  if (all_int) return "xs:integer";
  if (all_decimal) return "xs:decimal";
  if (all_date) return "xs:date";
  return "xs:string";
}

}  // namespace condtd
