#ifndef CONDTD_XSD_PARSER_H_
#define CONDTD_XSD_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "dtd/model.h"

namespace condtd {

/// Reads the DTD-expressible subset of W3C XML Schema — per [9], 85% of
/// real-world XSDs are structurally equivalent to a DTD, and everything
/// this library's writer emits is in the subset. Supported: global
/// xs:element declarations with inline xs:complexType, xs:sequence /
/// xs:choice particles, xs:element ref/name leaves, minOccurs/maxOccurs
/// (numeric bounds are expanded into plain REs: r{2,unbounded} becomes
/// r r r*), mixed="true" content, xs:any, xs:attribute, and the built-in
/// simple types for text-only elements.
///
/// Fails with kInvalidArgument for constructs outside the subset
/// (xs:all, named type references, substitution groups, ...).
Result<Dtd> ParseXsd(std::string_view xsd_text, Alphabet* alphabet);

/// Expands occurrence bounds into a plain RE over the operators the
/// paper allows: min==max==1 → re; {0,1} → re?; {1,unbounded} → re+;
/// {0,unbounded} → re*; {m,n} → m copies then (n-m) optional tails;
/// {m,unbounded} → m copies then re*. max == -1 means unbounded.
/// Returns nullptr for {0,0} (the empty word).
ReRef ExpandOccurrences(const ReRef& re, int min_occurs, int max_occurs);

}  // namespace condtd

#endif  // CONDTD_XSD_PARSER_H_
