#ifndef CONDTD_XSD_WRITER_H_
#define CONDTD_XSD_WRITER_H_

#include <map>
#include <string>
#include <vector>

#include "dtd/model.h"
#include "xsd/numeric.h"

namespace condtd {

/// Extra per-element information the XSD writer can exploit beyond what
/// a DTD expresses (Section 9, "Generation of XSDs").
struct XsdElementExtras {
  /// Occurrence bounds (minOccurs/maxOccurs) for content-model nodes.
  NumericAnnotations numeric;
  /// Built-in simple type for text content ("xs:integer", ...); empty
  /// means xs:string.
  std::string text_type;
};

/// Serializes the DTD as a W3C XML Schema document (the 85% of XSDs that
/// are structurally equivalent to a DTD, per [9]). Uses one global
/// xs:element per name with ref-based content models.
std::string WriteXsd(const Dtd& dtd, const Alphabet& alphabet,
                     const std::map<Symbol, XsdElementExtras>& extras = {});

/// Section 9's datatype heuristic: inspects sample text values and
/// returns "xs:integer", "xs:decimal", "xs:date", "xs:boolean" or
/// "xs:string".
std::string InferSimpleType(const std::vector<std::string>& samples);

}  // namespace condtd

#endif  // CONDTD_XSD_WRITER_H_
