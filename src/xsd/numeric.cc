#include "xsd/numeric.h"

#include <algorithm>
#include <limits>
#include <set>

#include "regex/properties.h"

namespace condtd {

namespace {

/// True for a factor body the annotation applies to: a symbol or a
/// disjunction of symbols. `out` receives the symbol set.
bool FactorSymbols(const ReRef& re, std::set<Symbol>* out) {
  if (re->kind() == ReKind::kSymbol) {
    out->insert(re->symbol());
    return true;
  }
  if (re->kind() != ReKind::kDisj) return false;
  for (const auto& c : re->children()) {
    if (c->kind() != ReKind::kSymbol) return false;
    out->insert(c->symbol());
  }
  return true;
}

void Annotate(const ReRef& re,
              const std::map<CrxState::Histogram, int64_t>& histograms,
              int64_t empty_count, NumericAnnotations* out) {
  if (re->kind() == ReKind::kPlus || re->kind() == ReKind::kStar) {
    std::set<Symbol> factor;
    if (FactorSymbols(re->child(), &factor)) {
      int min_count = std::numeric_limits<int>::max();
      int max_count = 0;
      for (const auto& [histogram, count] : histograms) {
        int total = 0;
        for (const auto& [sym, n] : histogram) {
          if (factor.count(sym) > 0) total += n;
        }
        min_count = std::min(min_count, total);
        max_count = std::max(max_count, total);
      }
      if (empty_count > 0) min_count = 0;
      if (min_count == std::numeric_limits<int>::max()) min_count = 0;
      // A `+` factor can only have been inferred from counts >= 1.
      if (re->kind() == ReKind::kPlus) min_count = std::max(min_count, 1);
      NumericAnnotation annotation;
      annotation.min_occurs = min_count;
      annotation.max_occurs = (min_count == max_count)
                                  ? max_count
                                  : NumericAnnotation::kUnbounded;
      (*out)[re.get()] = annotation;
    }
  }
  for (const auto& c : re->children()) {
    Annotate(c, histograms, empty_count, out);
  }
}

}  // namespace

NumericAnnotations AnnotateNumericFromHistograms(
    const ReRef& re,
    const std::map<CrxState::Histogram, int64_t>& histograms,
    int64_t empty_count) {
  NumericAnnotations out;
  if (!IsSore(re)) return out;  // factors would not be identifiable
  Annotate(re, histograms, empty_count, &out);
  return out;
}

NumericAnnotations AnnotateNumeric(const ReRef& re,
                                   const std::vector<Word>& sample) {
  std::map<CrxState::Histogram, int64_t> histograms;
  int64_t empty_count = 0;
  for (const Word& word : sample) {
    if (word.empty()) {
      ++empty_count;
      continue;
    }
    std::map<Symbol, int> counts;
    for (Symbol s : word) ++counts[s];
    CrxState::Histogram histogram(counts.begin(), counts.end());
    ++histograms[histogram];
  }
  return AnnotateNumericFromHistograms(re, histograms, empty_count);
}

namespace {

void PrintNumeric(const ReRef& re, const NumericAnnotations& annotations,
                  const Alphabet& alphabet, int min_prec, std::string* out) {
  auto precedence = [](ReKind kind) {
    switch (kind) {
      case ReKind::kDisj:
      case ReKind::kShuffle:
        return 0;
      case ReKind::kConcat:
        return 1;
      default:
        return 2;
    }
  };
  auto it = annotations.find(re.get());
  if (it != annotations.end()) {
    const NumericAnnotation& a = it->second;
    const ReRef& body = re->child();
    bool parens = body->kind() != ReKind::kSymbol;
    if (parens) *out += '(';
    PrintNumeric(body, annotations, alphabet, 0, out);
    if (parens) *out += ')';
    if (a.max_occurs == a.min_occurs) {
      *out += "=" + std::to_string(a.min_occurs);
    } else {
      *out += ">=" + std::to_string(a.min_occurs);
    }
    return;
  }
  bool parens = precedence(re->kind()) < min_prec;
  if (parens) *out += '(';
  switch (re->kind()) {
    case ReKind::kSymbol:
      *out += alphabet.Name(re->symbol());
      break;
    case ReKind::kConcat:
      for (size_t i = 0; i < re->children().size(); ++i) {
        if (i > 0) *out += ' ';
        PrintNumeric(re->children()[i], annotations, alphabet, 2, out);
      }
      break;
    case ReKind::kDisj:
      for (size_t i = 0; i < re->children().size(); ++i) {
        if (i > 0) *out += " + ";
        PrintNumeric(re->children()[i], annotations, alphabet, 1, out);
      }
      break;
    case ReKind::kShuffle:
      for (size_t i = 0; i < re->children().size(); ++i) {
        if (i > 0) *out += " & ";
        PrintNumeric(re->children()[i], annotations, alphabet, 1, out);
      }
      break;
    case ReKind::kPlus:
      PrintNumeric(re->child(), annotations, alphabet, 3, out);
      *out += '+';
      break;
    case ReKind::kOpt:
      PrintNumeric(re->child(), annotations, alphabet, 3, out);
      *out += '?';
      break;
    case ReKind::kStar:
      PrintNumeric(re->child(), annotations, alphabet, 3, out);
      *out += '*';
      break;
  }
  if (parens) *out += ')';
}

}  // namespace

std::string ToNumericString(const ReRef& re,
                            const NumericAnnotations& annotations,
                            const Alphabet& alphabet) {
  std::string out;
  PrintNumeric(re, annotations, alphabet, 0, &out);
  return out;
}

}  // namespace condtd
