#ifndef CONDTD_XML_LEXER_H_
#define CONDTD_XML_LEXER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace condtd {

/// Token kinds produced by the XML lexer. Comments and processing
/// instructions are consumed silently; DOCTYPE declarations surface their
/// raw body so the DTD parser can read internal subsets.
enum class XmlTokenKind {
  kStartTag,   ///< <name attr="v" ...> ; self_closing for <name/>.
  kEndTag,     ///< </name>
  kText,       ///< character data (entities decoded) or CDATA content
  kDoctype,    ///< raw body of <!DOCTYPE ...>
  kEof,
};

struct XmlToken {
  XmlTokenKind kind = XmlTokenKind::kEof;
  std::string name;  // tag name
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  // character data / doctype body
  bool self_closing = false;
  size_t offset = 0;  // byte offset for error messages
};

/// Appends `raw` to `out` with the predefined (&amp; &lt; &gt; &apos;
/// &quot;) and numeric character entities decoded; unknown entities are
/// kept verbatim so noisy real-world data does not abort parsing.
/// Entity-free input takes a bulk-append fast path (no per-byte loop).
Status DecodeXmlEntities(std::string_view raw, std::string* out);

/// Pull lexer over an in-memory XML document. Handles tags, attributes
/// (single or double quoted), comments, processing instructions, CDATA
/// sections, DOCTYPE (including a bracketed internal subset) and the
/// predefined plus numeric character entities.
class XmlLexer {
 public:
  explicit XmlLexer(std::string_view input) : input_(input) {}

  /// Produces the next token, or a ParseError status.
  Result<XmlToken> Next();

  size_t offset() const { return pos_; }

 private:
  Result<XmlToken> LexTag();

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace condtd

#endif  // CONDTD_XML_LEXER_H_
