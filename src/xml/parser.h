#ifndef CONDTD_XML_PARSER_H_
#define CONDTD_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "xml/dom.h"

namespace condtd {

/// Parses an XML document from memory into a DOM tree. Strict about
/// well-formedness (tag balance, single root); permissive about the
/// things noisy real-world data gets wrong (unknown entities, valueless
/// attributes).
Result<XmlDocument> ParseXml(std::string_view input);

/// Tag-soup recovery mode for the Section 1.1 reality that 89% of
/// real-world XHTML is not well-formed: mismatched end tags close the
/// intermediate elements (HTML-parser style), stray end tags are
/// dropped, unclosed elements are closed at EOF, and content after the
/// root is ignored. `recovered_errors`, when non-null, receives a
/// description of every repair. Only lexical errors (unterminated
/// comments/tags) still fail.
Result<XmlDocument> ParseXmlLenient(std::string_view input,
                                    std::vector<std::string>*
                                        recovered_errors = nullptr);

}  // namespace condtd

#endif  // CONDTD_XML_PARSER_H_
