#include "xml/extract.h"

namespace condtd {

namespace {

void Visit(const XmlElement& element, Alphabet* alphabet,
           ElementContexts* out) {
  Symbol self = alphabet->Intern(element.name());
  Word children;
  children.reserve(element.children().size());
  for (const auto& child : element.children()) {
    children.push_back(alphabet->Intern(child->name()));
  }
  out->contexts[self].push_back(std::move(children));
  if (element.HasSignificantText()) out->has_text.insert(self);
  for (const auto& child : element.children()) {
    Visit(*child, alphabet, out);
  }
}

}  // namespace

void FoldContexts(const XmlDocument& doc, Alphabet* alphabet,
                  ElementContexts* out) {
  if (doc.root == nullptr) return;
  out->roots.insert(alphabet->Intern(doc.root->name()));
  Visit(*doc.root, alphabet, out);
}

ElementContexts ExtractContexts(const XmlDocument& doc, Alphabet* alphabet) {
  ElementContexts out;
  FoldContexts(doc, alphabet, &out);
  return out;
}

}  // namespace condtd
