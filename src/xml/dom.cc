#include "xml/dom.h"

#include "base/strings.h"

namespace condtd {

namespace {

std::string EscapeXml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const std::string* XmlElement::FindAttribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return &v;
  }
  return nullptr;
}

XmlElement* XmlElement::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlElement>(std::move(name)));
  return children_.back().get();
}

bool XmlElement::HasSignificantText() const {
  return !StripWhitespace(text_).empty();
}

std::string XmlElement::ToXml(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attributes_) {
    out += ' ' + k + "=\"" + EscapeXml(v) + '"';
  }
  if (children_.empty() && !HasSignificantText()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (HasSignificantText()) {
    out += EscapeXml(std::string(StripWhitespace(text_)));
    if (children_.empty()) {
      out += "</" + name_ + ">\n";
      return out;
    }
  }
  out += "\n";
  for (const auto& child : children_) {
    out += child->ToXml(indent + 1);
  }
  out += pad + "</" + name_ + ">\n";
  return out;
}

std::string XmlDocument::ToXml() const {
  std::string out = "<?xml version=\"1.0\"?>\n";
  if (!doctype.empty()) out += "<!DOCTYPE " + doctype + ">\n";
  if (root != nullptr) out += root->ToXml();
  return out;
}

}  // namespace condtd
