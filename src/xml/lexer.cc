#include "xml/lexer.h"

#include <cstdint>

#include "base/strings.h"
#include "base/swar.h"

namespace condtd {

namespace {

// Shared table classifiers keep the DOM and SAX lexers agreeing on the
// exact (ASCII-only, locale-independent) name alphabet.
bool IsNameStartChar(char c) { return swar::IsNameStart(c); }

}  // namespace

Status DecodeXmlEntities(std::string_view raw, std::string* out) {
  // Fast path: entity-free runs (the overwhelmingly common case for
  // both character data and attribute values) bulk-append instead of
  // copying byte by byte. The '&' scan is word-at-a-time (swar::FindAmp)
  // and each named entity resolves with one unaligned load + masked
  // compare (swar::MatchNamedEntity) instead of a find(';') plus up to
  // five string comparisons.
  size_t first_amp = swar::FindAmp(raw, 0);
  if (first_amp == swar::kNpos) {
    out->append(raw);
    return Status::OK();
  }
  out->reserve(out->size() + raw.size());
  out->append(raw.substr(0, first_amp));
  for (size_t i = first_amp; i < raw.size();) {
    if (raw[i] != '&') {
      size_t amp = swar::FindAmp(raw, i);
      if (amp == swar::kNpos) amp = raw.size();
      out->append(raw.substr(i, amp - i));
      i = amp;
      continue;
    }
    swar::EntityMatch named = swar::MatchNamedEntity(raw, i);
    if (named.length != 0) {
      *out += named.replacement;
      i += named.length;
      continue;
    }
    // Slow path: numeric references, unknown entities, malformed input.
    // MatchNamedEntity is exhaustive over the five named forms, so the
    // body between '&' and ';' here is never one of them.
    size_t end = swar::FindByte(raw, i, ';');
    if (end == swar::kNpos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view entity = raw.substr(i + 1, end - i - 1);
    if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference. The accumulator is 64-bit with an
      // early range bail-out so adversarial digit strings
      // (&#99999999999999999999;) cannot overflow into undefined
      // behavior, and the digit loop must consume at least one digit
      // (&#; and &#x; are malformed).
      int64_t code = 0;
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      size_t digit_start = hex ? 2 : 1;
      if (digit_start >= entity.size()) {
        return Status::ParseError("bad character reference &" +
                                  std::string(entity) + ";");
      }
      for (size_t j = digit_start; j < entity.size(); ++j) {
        char c = entity[j];
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return Status::ParseError("bad character reference &" +
                                    std::string(entity) + ";");
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) {
          return Status::ParseError("character reference &" +
                                    std::string(entity) +
                                    "; is out of range");
        }
      }
      // Reject code points XML forbids: NUL, the UTF-16 surrogate block
      // (not scalar values; encoding them would produce CESU-8 garbage).
      if (code == 0 || (code >= 0xD800 && code <= 0xDFFF)) {
        return Status::ParseError("character reference &" +
                                  std::string(entity) +
                                  "; is not a valid XML character");
      }
      // Encode as UTF-8 (1-4 bytes).
      if (code < 0x80) {
        *out += static_cast<char>(code);
      } else if (code < 0x800) {
        *out += static_cast<char>(0xC0 | (code >> 6));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        *out += static_cast<char>(0xE0 | (code >> 12));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        *out += static_cast<char>(0xF0 | (code >> 18));
        *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      // Unknown entity (e.g. from an unresolved DTD): keep verbatim so
      // noisy real-world data does not abort parsing.
      *out += '&';
      *out += entity;
      *out += ';';
    }
    i = end + 1;
  }
  return Status::OK();
}

Result<XmlToken> XmlLexer::Next() {
  while (pos_ < input_.size()) {
    size_t start = pos_;
    if (input_[pos_] != '<') {
      size_t lt = input_.find('<', pos_);
      if (lt == std::string_view::npos) lt = input_.size();
      std::string_view raw = input_.substr(pos_, lt - pos_);
      pos_ = lt;
      XmlToken token;
      token.kind = XmlTokenKind::kText;
      token.offset = start;
      CONDTD_RETURN_IF_ERROR(DecodeXmlEntities(raw, &token.text));
      // Skip pure-whitespace runs between tags.
      if (StripWhitespace(token.text).empty()) continue;
      return token;
    }
    // '<' dispatch.
    if (StartsWith(input_.substr(pos_), "<!--")) {
      size_t end = input_.find("-->", pos_ + 4);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated comment at offset " +
                                  std::to_string(pos_));
      }
      pos_ = end + 3;
      continue;
    }
    if (StartsWith(input_.substr(pos_), "<![CDATA[")) {
      size_t end = input_.find("]]>", pos_ + 9);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated CDATA at offset " +
                                  std::to_string(pos_));
      }
      XmlToken token;
      token.kind = XmlTokenKind::kText;
      token.offset = start;
      token.text = std::string(input_.substr(pos_ + 9, end - pos_ - 9));
      pos_ = end + 3;
      if (StripWhitespace(token.text).empty()) continue;
      return token;
    }
    if (StartsWith(input_.substr(pos_), "<?")) {
      size_t end = input_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) {
        return Status::ParseError(
            "unterminated processing instruction at offset " +
            std::to_string(pos_));
      }
      pos_ = end + 2;
      continue;
    }
    if (StartsWith(input_.substr(pos_), "<!DOCTYPE")) {
      // Scan to the matching '>', skipping a bracketed internal subset.
      size_t i = pos_ + 9;
      int bracket_depth = 0;
      while (i < input_.size()) {
        char c = input_[i];
        if (c == '[') {
          ++bracket_depth;
        } else if (c == ']') {
          --bracket_depth;
        } else if (c == '>' && bracket_depth == 0) {
          break;
        }
        ++i;
      }
      if (i >= input_.size()) {
        return Status::ParseError("unterminated DOCTYPE at offset " +
                                  std::to_string(pos_));
      }
      XmlToken token;
      token.kind = XmlTokenKind::kDoctype;
      token.offset = start;
      token.text =
          std::string(StripWhitespace(input_.substr(pos_ + 9, i - pos_ - 9)));
      pos_ = i + 1;
      return token;
    }
    return LexTag();
  }
  XmlToken token;
  token.kind = XmlTokenKind::kEof;
  token.offset = pos_;
  return token;
}

Result<XmlToken> XmlLexer::LexTag() {
  XmlToken token;
  token.offset = pos_;
  ++pos_;  // consume '<'
  bool closing = false;
  if (pos_ < input_.size() && input_[pos_] == '/') {
    closing = true;
    ++pos_;
  }
  if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
    return Status::ParseError("malformed tag at offset " +
                              std::to_string(token.offset));
  }
  size_t name_start = pos_;
  pos_ = swar::FindNameEnd(input_, pos_);
  token.name = std::string(input_.substr(name_start, pos_ - name_start));
  token.kind = closing ? XmlTokenKind::kEndTag : XmlTokenKind::kStartTag;

  // Attributes.
  while (true) {
    while (pos_ < input_.size() && IsXmlWhitespace(input_[pos_])) ++pos_;
    if (pos_ >= input_.size()) {
      return Status::ParseError("unterminated tag <" + token.name + ">");
    }
    char c = input_[pos_];
    if (c == '>') {
      ++pos_;
      return token;
    }
    if (c == '/') {
      if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '>') {
        return Status::ParseError("malformed tag end in <" + token.name +
                                  ">");
      }
      token.self_closing = true;
      pos_ += 2;
      return token;
    }
    if (closing || !IsNameStartChar(c)) {
      return Status::ParseError("unexpected character '" +
                                std::string(1, c) + "' in tag <" +
                                token.name + ">");
    }
    size_t attr_start = pos_;
    pos_ = swar::FindNameEnd(input_, pos_);
    std::string key(input_.substr(attr_start, pos_ - attr_start));
    while (pos_ < input_.size() && IsXmlWhitespace(input_[pos_])) ++pos_;
    if (pos_ >= input_.size() || input_[pos_] != '=') {
      // Permissive: attribute without value (common in noisy HTML-ish
      // data); record it with an empty value.
      token.attributes.emplace_back(std::move(key), "");
      continue;
    }
    ++pos_;
    while (pos_ < input_.size() && IsXmlWhitespace(input_[pos_])) ++pos_;
    if (pos_ >= input_.size() ||
        (input_[pos_] != '"' && input_[pos_] != '\'')) {
      return Status::ParseError("attribute '" + key + "' of <" + token.name +
                                "> has an unquoted value");
    }
    char quote = input_[pos_++];
    size_t value_start = pos_;
    size_t value_end = input_.find(quote, pos_);
    if (value_end == std::string_view::npos) {
      return Status::ParseError("unterminated attribute value for '" + key +
                                "'");
    }
    std::string value;
    CONDTD_RETURN_IF_ERROR(DecodeXmlEntities(
        input_.substr(value_start, value_end - value_start), &value));
    token.attributes.emplace_back(std::move(key), std::move(value));
    pos_ = value_end + 1;
  }
}

}  // namespace condtd
