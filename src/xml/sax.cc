#include "xml/sax.h"

#include "base/strings.h"
#include "base/swar.h"
#include "obs/metrics.h"
#include "xml/lexer.h"

namespace condtd {

namespace {

// Shared SWAR char-class table: one L1 load per byte instead of a
// compare chain, and the name alphabet stays ASCII-only by
// construction (locale-aware <ctype.h> calls are far too slow here).
inline bool IsNameStartChar(char c) { return swar::IsNameStart(c); }

}  // namespace

Result<SaxEvent> SaxLexer::Next() {
  while (pos_ < input_.size()) {
    size_t start = pos_;
    if (input_[pos_] != '<') {
      // One SWAR pass finds whichever of '<' (end of run) or '&'
      // (entity, forces a decode) comes first — the old code scanned
      // the run twice (find('<') then find('&')).
      size_t stop = swar::FindEither(input_, pos_, '<', '&');
      const bool has_entity = stop != swar::kNpos && input_[stop] == '&';
      size_t lt = stop;
      if (has_entity) lt = swar::FindByte(input_, stop, '<');
      if (lt == swar::kNpos) lt = input_.size();
      std::string_view raw = input_.substr(pos_, lt - pos_);
      pos_ = lt;
      SaxEvent event;
      event.kind = SaxEventKind::kText;
      event.offset = start;
      if (!has_entity) {
        // Zero-copy path: no entities, the view is the text.
        if (StripWhitespace(raw).empty()) continue;
        event.text = raw;
        obs::CounterAdd(obs::Counter::kTextEvents, 1);
        return event;
      }
      text_scratch_.clear();
      {
        obs::StageSpan span(obs::Stage::kEntityDecode);
        obs::CounterAdd(obs::Counter::kEntityDecodes, 1);
        CONDTD_RETURN_IF_ERROR(DecodeXmlEntities(raw, &text_scratch_));
      }
      if (StripWhitespace(text_scratch_).empty()) continue;
      event.text = text_scratch_;
      obs::CounterAdd(obs::Counter::kTextEvents, 1);
      return event;
    }
    // '<' dispatch. Ordinary tags (next char is a name char or '/') are
    // by far the common case — skip the markup-declaration probes.
    char next = pos_ + 1 < input_.size() ? input_[pos_ + 1] : '\0';
    if (next != '!' && next != '?') return LexTag();
    if (StartsWith(input_.substr(pos_), "<!--")) {
      size_t end = input_.find("-->", pos_ + 4);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated comment at offset " +
                                  std::to_string(pos_));
      }
      pos_ = end + 3;
      continue;
    }
    if (StartsWith(input_.substr(pos_), "<![CDATA[")) {
      size_t end = input_.find("]]>", pos_ + 9);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated CDATA at offset " +
                                  std::to_string(pos_));
      }
      SaxEvent event;
      event.kind = SaxEventKind::kText;
      event.offset = start;
      event.text = input_.substr(pos_ + 9, end - pos_ - 9);
      pos_ = end + 3;
      if (StripWhitespace(event.text).empty()) continue;
      obs::CounterAdd(obs::Counter::kTextEvents, 1);
      return event;
    }
    if (StartsWith(input_.substr(pos_), "<?")) {
      size_t end = input_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) {
        return Status::ParseError(
            "unterminated processing instruction at offset " +
            std::to_string(pos_));
      }
      pos_ = end + 2;
      continue;
    }
    if (StartsWith(input_.substr(pos_), "<!DOCTYPE")) {
      size_t i = pos_ + 9;
      int bracket_depth = 0;
      while (i < input_.size()) {
        char c = input_[i];
        if (c == '[') {
          ++bracket_depth;
        } else if (c == ']') {
          --bracket_depth;
        } else if (c == '>' && bracket_depth == 0) {
          break;
        }
        ++i;
      }
      if (i >= input_.size()) {
        return Status::ParseError("unterminated DOCTYPE at offset " +
                                  std::to_string(pos_));
      }
      SaxEvent event;
      event.kind = SaxEventKind::kDoctype;
      event.offset = start;
      event.text = StripWhitespace(input_.substr(pos_ + 9, i - pos_ - 9));
      pos_ = i + 1;
      return event;
    }
    return LexTag();
  }
  SaxEvent event;
  event.kind = SaxEventKind::kEof;
  event.offset = pos_;
  return event;
}

Result<SaxEvent> SaxLexer::LexTag() {
  SaxEvent event;
  event.offset = pos_;
  ++pos_;  // consume '<'
  bool closing = false;
  if (pos_ < input_.size() && input_[pos_] == '/') {
    closing = true;
    ++pos_;
  }
  if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
    return Status::ParseError("malformed tag at offset " +
                              std::to_string(event.offset));
  }
  size_t name_start = pos_;
  pos_ = swar::FindNameEnd(input_, pos_);
  event.name = input_.substr(name_start, pos_ - name_start);
  event.kind =
      closing ? SaxEventKind::kEndElement : SaxEventKind::kStartElement;
  attributes_.clear();
  scratch_slots_.clear();
  attr_scratch_.clear();

  auto finish = [&]() -> Result<SaxEvent> {
    // Patch decoded values now that scratch has stopped reallocating.
    for (const auto& [index, slot] : scratch_slots_) {
      attributes_[index].value =
          std::string_view(attr_scratch_).substr(slot.first, slot.second);
    }
    if (event.kind == SaxEventKind::kStartElement) {
      obs::CounterAdd(obs::Counter::kStartTags, 1);
      if (!attributes_.empty()) {
        obs::CounterAdd(obs::Counter::kAttributesSeen,
                        static_cast<int64_t>(attributes_.size()));
      }
    }
    return event;
  };

  while (true) {
    pos_ = swar::SkipSpace(input_, pos_);
    if (pos_ >= input_.size()) {
      return Status::ParseError("unterminated tag <" +
                                std::string(event.name) + ">");
    }
    char c = input_[pos_];
    if (c == '>') {
      ++pos_;
      return finish();
    }
    if (c == '/') {
      if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '>') {
        return Status::ParseError("malformed tag end in <" +
                                  std::string(event.name) + ">");
      }
      event.self_closing = true;
      pos_ += 2;
      return finish();
    }
    if (closing || !IsNameStartChar(c)) {
      return Status::ParseError("unexpected character '" +
                                std::string(1, c) + "' in tag <" +
                                std::string(event.name) + ">");
    }
    size_t attr_start = pos_;
    pos_ = swar::FindNameEnd(input_, pos_);
    std::string_view key = input_.substr(attr_start, pos_ - attr_start);
    pos_ = swar::SkipSpace(input_, pos_);
    if (pos_ >= input_.size() || input_[pos_] != '=') {
      // Permissive: attribute without value (common in noisy HTML-ish
      // data); record it with an empty value.
      attributes_.push_back({key, std::string_view()});
      continue;
    }
    ++pos_;
    pos_ = swar::SkipSpace(input_, pos_);
    if (pos_ >= input_.size() ||
        (input_[pos_] != '"' && input_[pos_] != '\'')) {
      return Status::ParseError("attribute '" + std::string(key) +
                                "' of <" + std::string(event.name) +
                                "> has an unquoted value");
    }
    char quote = input_[pos_++];
    size_t value_start = pos_;
    // One pass: the closing quote ends the value; an earlier '&' means
    // the value needs entity decoding (the quote still ends it).
    size_t hit = swar::FindEither(input_, pos_, quote, '&');
    size_t value_end =
        (hit != swar::kNpos && input_[hit] == '&')
            ? swar::FindByte(input_, hit, quote)
            : hit;
    if (value_end == swar::kNpos) {
      return Status::ParseError("unterminated attribute value for '" +
                                std::string(key) + "'");
    }
    std::string_view raw =
        input_.substr(value_start, value_end - value_start);
    pos_ = value_end + 1;
    if (hit == value_end) {
      attributes_.push_back({key, raw});
      continue;
    }
    size_t scratch_start = attr_scratch_.size();
    {
      obs::StageSpan span(obs::Stage::kEntityDecode);
      obs::CounterAdd(obs::Counter::kEntityDecodes, 1);
      CONDTD_RETURN_IF_ERROR(DecodeXmlEntities(raw, &attr_scratch_));
    }
    scratch_slots_.emplace_back(
        attributes_.size(),
        std::make_pair(scratch_start, attr_scratch_.size() - scratch_start));
    attributes_.push_back({key, std::string_view()});
  }
}

}  // namespace condtd
