#include "xml/parser.h"
#include <string>

#include <vector>

#include "xml/lexer.h"

namespace condtd {

namespace {

// Element trees are destroyed recursively, so the parser bounds nesting
// up front. The cap is far above real documents (and the depth-2000
// edge-case tests) but small enough that the destructor recursion a
// hostile input can force stays well inside the stack.
constexpr size_t kMaxElementDepth = 10000;

}  // namespace

Result<XmlDocument> ParseXmlLenient(
    std::string_view input, std::vector<std::string>* recovered_errors) {
  XmlLexer lexer(input);
  XmlDocument doc;
  std::vector<XmlElement*> stack;
  bool root_done = false;
  auto note = [&](const std::string& message) {
    if (recovered_errors != nullptr) recovered_errors->push_back(message);
  };

  while (true) {
    Result<XmlToken> next = lexer.Next();
    if (!next.ok()) return next.status();  // lexical errors still fail
    const XmlToken& token = next.value();
    switch (token.kind) {
      case XmlTokenKind::kEof:
        if (!stack.empty()) {
          note("closed " + std::to_string(stack.size()) +
               " unclosed element(s) at end of input");
          stack.clear();
        }
        if (doc.root == nullptr) {
          return Status::ParseError("document has no root element");
        }
        return doc;
      case XmlTokenKind::kDoctype:
        if (doc.root == nullptr) doc.doctype = token.text;
        break;
      case XmlTokenKind::kText:
        if (!stack.empty()) {
          stack.back()->AppendText(token.text);
        } else {
          note("dropped character data outside the root element");
        }
        break;
      case XmlTokenKind::kStartTag: {
        if (stack.empty() && root_done) {
          note("dropped content after the root element (<" + token.name +
               ">)");
          // Consume the subtree by tracking nesting without building it:
          // simplest recovery — skip just this tag.
          break;
        }
        XmlElement* element;
        if (stack.empty()) {
          doc.root = std::make_unique<XmlElement>(token.name);
          element = doc.root.get();
          root_done = true;
        } else {
          element = stack.back()->AddChild(token.name);
        }
        for (const auto& [k, v] : token.attributes) {
          element->AddAttribute(k, v);
        }
        if (!token.self_closing) {
          if (stack.size() >= kMaxElementDepth) {
            return Status::ParseError("element nesting deeper than " +
                                      std::to_string(kMaxElementDepth));
          }
          stack.push_back(element);
        }
        break;
      }
      case XmlTokenKind::kEndTag: {
        // Find the nearest open element with this name.
        int match = -1;
        for (int i = static_cast<int>(stack.size()) - 1; i >= 0; --i) {
          if (stack[i]->name() == token.name) {
            match = i;
            break;
          }
        }
        if (match < 0) {
          note("dropped stray closing tag </" + token.name + ">");
          break;
        }
        if (match + 1 != static_cast<int>(stack.size())) {
          note("auto-closed " +
               std::to_string(stack.size() - match - 1) +
               " element(s) at </" + token.name + ">");
        }
        stack.resize(match);
        break;
      }
    }
  }
}

Result<XmlDocument> ParseXml(std::string_view input) {
  XmlLexer lexer(input);
  XmlDocument doc;
  std::vector<XmlElement*> stack;

  while (true) {
    Result<XmlToken> next = lexer.Next();
    if (!next.ok()) return next.status();
    const XmlToken& token = next.value();
    switch (token.kind) {
      case XmlTokenKind::kEof:
        if (!stack.empty()) {
          return Status::ParseError("unexpected end of document inside <" +
                                    stack.back()->name() + ">");
        }
        if (doc.root == nullptr) {
          return Status::ParseError("document has no root element");
        }
        return doc;
      case XmlTokenKind::kDoctype:
        if (doc.root != nullptr || !stack.empty()) {
          return Status::ParseError("DOCTYPE after the root element");
        }
        doc.doctype = token.text;
        break;
      case XmlTokenKind::kText:
        if (stack.empty()) {
          return Status::ParseError(
              "character data outside the root element at offset " +
              std::to_string(token.offset));
        }
        stack.back()->AppendText(token.text);
        break;
      case XmlTokenKind::kStartTag: {
        XmlElement* element;
        if (stack.empty()) {
          if (doc.root != nullptr) {
            return Status::ParseError("multiple root elements (<" +
                                      token.name + ">)");
          }
          doc.root = std::make_unique<XmlElement>(token.name);
          element = doc.root.get();
        } else {
          element = stack.back()->AddChild(token.name);
        }
        for (const auto& [k, v] : token.attributes) {
          element->AddAttribute(k, v);
        }
        if (!token.self_closing) {
          if (stack.size() >= kMaxElementDepth) {
            return Status::ParseError("element nesting deeper than " +
                                      std::to_string(kMaxElementDepth));
          }
          stack.push_back(element);
        }
        break;
      }
      case XmlTokenKind::kEndTag:
        if (stack.empty()) {
          return Status::ParseError("stray closing tag </" + token.name +
                                    ">");
        }
        if (stack.back()->name() != token.name) {
          return Status::ParseError("mismatched closing tag </" +
                                    token.name + ">; expected </" +
                                    stack.back()->name() + ">");
        }
        stack.pop_back();
        break;
    }
  }
}

}  // namespace condtd
