#ifndef CONDTD_XML_SAX_H_
#define CONDTD_XML_SAX_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace condtd {

/// Event kinds produced by the streaming lexer. Comments and processing
/// instructions are consumed silently; pure-whitespace character runs
/// are skipped (they never constitute significant text).
enum class SaxEventKind {
  kStartElement,  ///< <name attr="v" ...> ; self_closing for <name/>
  kEndElement,    ///< </name>
  kText,          ///< significant character data or CDATA content
  kDoctype,       ///< raw body of <!DOCTYPE ...>
  kEof,
};

/// One attribute of a start-element event. Both views borrow: the key
/// always points into the input buffer; the value points into the input
/// when it needed no entity decoding and into lexer scratch otherwise.
struct SaxAttribute {
  std::string_view key;
  std::string_view value;
};

/// One lexer event. Every view is valid only until the next call to
/// `SaxLexer::Next()` — consumers fold the event into their own
/// summaries instead of retaining it (that is the point: no DOM, no
/// per-node allocation).
struct SaxEvent {
  SaxEventKind kind = SaxEventKind::kEof;
  /// Start/end element name — a view into the input buffer.
  std::string_view name;
  /// Character data (entities decoded) or DOCTYPE body.
  std::string_view text;
  bool self_closing = false;
  size_t offset = 0;  ///< byte offset for error messages
};

/// Streaming (SAX-style) pull lexer over an in-memory XML document:
/// the zero-copy sibling of `XmlLexer`. Grammar and permissiveness are
/// identical (tags, single/double-quoted attributes, comments, PIs,
/// CDATA, DOCTYPE with internal subset, predefined + numeric entities,
/// valueless attributes), but names, attribute values and entity-free
/// text are returned as views into the raw buffer — nothing is copied
/// unless an entity must be decoded, and the decode scratch is reused
/// across events so a whole document lexes with O(1) allocations.
class SaxLexer {
 public:
  SaxLexer() = default;
  explicit SaxLexer(std::string_view input) : input_(input) {}

  /// Rebinds the lexer to a new document, keeping scratch capacity.
  /// Ingestion drivers reuse one lexer across a whole corpus so that
  /// steady-state lexing performs no per-document allocation.
  void Reset(std::string_view input) {
    input_ = input;
    pos_ = 0;
    attributes_.clear();
    scratch_slots_.clear();
    attr_scratch_.clear();
    text_scratch_.clear();
  }

  /// Produces the next event, or a ParseError status. Views inside the
  /// returned event (and `attributes()`) stay valid until the next call.
  Result<SaxEvent> Next();

  /// Attributes of the most recent kStartElement event.
  const std::vector<SaxAttribute>& attributes() const { return attributes_; }

  size_t offset() const { return pos_; }

 private:
  Result<SaxEvent> LexTag();

  std::string_view input_;
  size_t pos_ = 0;
  std::vector<SaxAttribute> attributes_;
  /// Decoded-value scratch for the current tag. Values that needed
  /// decoding are patched to views into this buffer once the tag is
  /// fully lexed (appending may reallocate mid-tag).
  std::string attr_scratch_;
  /// (attribute index, offset, length) of values living in scratch.
  std::vector<std::pair<size_t, std::pair<size_t, size_t>>> scratch_slots_;
  /// Decoded-text scratch, reused across text events.
  std::string text_scratch_;
};

}  // namespace condtd

#endif  // CONDTD_XML_SAX_H_
