#ifndef CONDTD_XML_DOM_H_
#define CONDTD_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace condtd {

/// An element node of the document tree. Character data is aggregated
/// per element (the inference algorithms only need to know whether an
/// element carries text, plus the child-element sequence in order).
class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  const std::vector<std::pair<std::string, std::string>>& attributes()
      const {
    return attributes_;
  }
  void AddAttribute(std::string key, std::string value) {
    attributes_.emplace_back(std::move(key), std::move(value));
  }
  /// Returns the value of `key` or nullptr.
  const std::string* FindAttribute(const std::string& key) const;

  const std::vector<std::unique_ptr<XmlElement>>& children() const {
    return children_;
  }
  XmlElement* AddChild(std::string name);

  /// Concatenated character data appearing directly below this element.
  const std::string& text() const { return text_; }
  /// Appends a run of character data; takes a view so callers feeding
  /// from a lexer's decoded buffer do not pay an intermediate copy.
  void AppendText(std::string_view text) { text_ += text; }
  /// True when the element contains non-whitespace character data.
  bool HasSignificantText() const;

  /// Serializes the subtree as XML (entities escaped, 2-space indent).
  std::string ToXml(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlElement>> children_;
  std::string text_;
};

/// A parsed document: the root element plus the raw DOCTYPE declaration
/// (if any) so the DTD parser can consume internal subsets.
struct XmlDocument {
  std::unique_ptr<XmlElement> root;
  /// Raw text between "<!DOCTYPE" and the matching ">", empty if absent.
  std::string doctype;

  std::string ToXml() const;
};

}  // namespace condtd

#endif  // CONDTD_XML_DOM_H_
