#ifndef CONDTD_XML_EXTRACT_H_
#define CONDTD_XML_EXTRACT_H_

#include <map>
#include <set>
#include <vector>

#include "alphabet/alphabet.h"
#include "xml/dom.h"

namespace condtd {

/// The per-element training data for DTD inference: for every element
/// name, all child-element-name sequences observed below occurrences of
/// that element (the "strings" of the paper).
struct ElementContexts {
  std::map<Symbol, std::vector<Word>> contexts;
  /// Element names that ever carry non-whitespace character data
  /// (reported as #PCDATA / mixed content by the inferrer).
  std::set<Symbol> has_text;
  /// Root element names seen across the folded documents.
  std::set<Symbol> roots;
};

/// Folds one document into `out`, interning names into `alphabet`.
void FoldContexts(const XmlDocument& doc, Alphabet* alphabet,
                  ElementContexts* out);

/// Extracts contexts from a single document.
ElementContexts ExtractContexts(const XmlDocument& doc, Alphabet* alphabet);

}  // namespace condtd

#endif  // CONDTD_XML_EXTRACT_H_
