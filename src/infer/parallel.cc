#include "infer/parallel.h"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/metrics.h"

namespace condtd {

std::atomic<ParallelDtdInferrer::IngestFault>
    ParallelDtdInferrer::ingest_fault_{nullptr};

void ParallelDtdInferrer::SetIngestFaultForTest(IngestFault fault) {
  ingest_fault_.store(fault, std::memory_order_release);
}

ParallelDtdInferrer::ParallelDtdInferrer(InferenceOptions options,
                                         int num_threads)
    : options_(options),
      num_threads_(num_threads > 0
                       ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency())),
      merged_(options) {
  shards_.reserve(num_threads_);
  workers_.reserve(num_threads_);
  for (int t = 0; t < num_threads_; ++t) {
    shards_.push_back(std::make_unique<Shard>(options_));
  }
  for (int t = 0; t < num_threads_; ++t) {
    workers_.emplace_back(&ParallelDtdInferrer::Worker, this,
                          shards_[t].get());
  }
}

ParallelDtdInferrer::~ParallelDtdInferrer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ParallelDtdInferrer::AddXml(std::string xml) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(next_doc_index_++, std::move(xml));
  }
  ready_.notify_one();
}

Status ParallelDtdInferrer::LoadState(std::string_view serialized) {
  return merged_.LoadState(serialized);
}

void ParallelDtdInferrer::Worker(Shard* shard) {
  for (;;) {
    std::pair<int64_t, std::string> doc;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return;
      doc = std::move(queue_.front());
      queue_.pop_front();
    }
    // Parse + fold outside the lock — the hot path touches only
    // shard-local state. Streaming (the default) folds SAX events
    // straight into the shard's summaries; the DOM path stays available
    // for comparison (`streaming_ingest = false`).
    //
    // Exception containment: a document that throws mid-ingestion
    // (std::bad_alloc on a pathological input, std::length_error from a
    // string resize, a throwing test fault) must not take down the
    // process — without the catch it would escape the thread entry point
    // and std::terminate. The document is rolled back (AbortDocument
    // undoes its dedup-cache increments) and recorded as a DocumentError;
    // the remaining documents keep folding. Names the document interned
    // before throwing stay in the shard alphabet, so they are still
    // replayed at the barrier — same as a plain parse failure.
    int before = shard->inferrer.alphabet()->size();
    ++shard->docs_ingested;
    Status status;
    try {
      if (IngestFault fault = ingest_fault_.load(std::memory_order_acquire)) {
        fault(doc.first);
      }
      status = options_.streaming_ingest
                   ? shard->folder.AddXml(doc.second)
                   : shard->inferrer.AddXml(doc.second);
    } catch (const std::exception& e) {
      shard->folder.AbortDocument();
      obs::SchedAdd(obs::SchedCounter::kWorkerExceptions, 1);
      obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
      status = Status::Internal(
          std::string("exception while ingesting document: ") + e.what());
    } catch (...) {
      shard->folder.AbortDocument();
      obs::SchedAdd(obs::SchedCounter::kWorkerExceptions, 1);
      obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
      status = Status::Internal(
          "non-standard exception while ingesting document");
    }
    int after = shard->inferrer.alphabet()->size();
    if (after > before) {
      shard->new_names.push_back({doc.first, before, after});
    }
    if (!status.ok()) {
      shard->errors.push_back({doc.first, std::move(status)});
    }
  }
}

Status ParallelDtdInferrer::AggregateStatus() const {
  if (errors_.empty()) return Status::OK();
  if (errors_.size() == 1) return errors_.front().status;
  const DocumentError& first = errors_.front();
  return Status(first.status.code(),
                std::to_string(errors_.size()) +
                    " documents failed to ingest; first failure at "
                    "document " +
                    std::to_string(first.doc_index) + ": " +
                    first.status.message() +
                    " (see errors() for the full list)");
}

Status ParallelDtdInferrer::Finish() {
  if (finished_) return AggregateStatus();
  finished_ = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  obs::StageSpan merge_span(obs::Stage::kShardMerge);

  // Replay newly-interned names in document-submission order so the
  // merged alphabet matches what a sequential run over the same corpus
  // would have interned. A name's global first occurrence is in the
  // earliest document containing it, and within that document the
  // shard-local log preserves first-encounter order, so the replay
  // reproduces the sequential id assignment exactly.
  struct Replay {
    int64_t doc_index;
    const Shard* shard;
    int first;
    int last;
  };
  std::vector<Replay> replays;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const Shard::NewNames& record : shard->new_names) {
      replays.push_back(
          {record.doc_index, shard.get(), record.first, record.last});
    }
  }
  std::sort(replays.begin(), replays.end(),
            [](const Replay& a, const Replay& b) {
              return a.doc_index < b.doc_index;
            });
  Alphabet* alphabet = merged_.alphabet();
  for (const Replay& replay : replays) {
    const Alphabet& shard_alphabet = replay.shard->inferrer.alphabet();
    for (int s = replay.first; s < replay.last; ++s) {
      alphabet->Intern(shard_alphabet.Name(s));
    }
  }

  // With every name already interned, the shard merges are pure remaps;
  // summaries are associative, so shard order does not matter. Each
  // shard's dedup cache must drain into its inferrer first.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->folder.Flush();
    merged_.MergeFrom(shard->inferrer);
    obs::SchedAdd(obs::SchedCounter::kShardMerges, 1);
    obs::GaugeMax(obs::Gauge::kShardDocsMax, shard->docs_ingested);
    for (DocumentError& error : shard->errors) {
      errors_.push_back(std::move(error));
    }
  }
  shards_.clear();
  std::sort(errors_.begin(), errors_.end(),
            [](const DocumentError& a, const DocumentError& b) {
              return a.doc_index < b.doc_index;
            });
  return AggregateStatus();
}

Result<Dtd> ParallelDtdInferrer::InferDtd() {
  CONDTD_RETURN_IF_ERROR(Finish());
  return merged_.InferDtd(num_threads_);
}

Result<std::string> ParallelDtdInferrer::InferXsd(bool numeric_predicates) {
  CONDTD_RETURN_IF_ERROR(Finish());
  return merged_.InferXsd(numeric_predicates, num_threads_);
}

}  // namespace condtd
