#include "infer/parallel.h"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/metrics.h"

namespace condtd {

std::atomic<ParallelDtdInferrer::IngestFault>
    ParallelDtdInferrer::ingest_fault_{nullptr};

void ParallelDtdInferrer::SetIngestFaultForTest(IngestFault fault) {
  ingest_fault_.store(fault, std::memory_order_release);
}

ParallelDtdInferrer::ParallelDtdInferrer(InferenceOptions options,
                                         int num_threads)
    : options_(options),
      num_threads_(num_threads > 0
                       ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency())),
      merged_(options) {
  if (options_.batch_docs < 1) options_.batch_docs = 1;
  obs::GaugeSet(obs::Gauge::kBatchDocs, options_.batch_docs);
  shards_.reserve(num_threads_);
  workers_.reserve(num_threads_);
  for (int t = 0; t < num_threads_; ++t) {
    shards_.push_back(std::make_unique<Shard>(options_));
  }
  for (int t = 0; t < num_threads_; ++t) {
    workers_.emplace_back(&ParallelDtdInferrer::Worker, this,
                          shards_[t].get());
  }
}

ParallelDtdInferrer::~ParallelDtdInferrer() {
  if (pending_ != nullptr) DispatchPending();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ParallelDtdInferrer::Enqueue(std::string_view text, bool is_path,
                                  bool copy) {
  if (pending_ == nullptr) {
    pending_ = std::make_unique<Batch>();
    pending_->items.reserve(static_cast<size_t>(options_.batch_docs));
  }
  WorkItem item;
  item.doc_index = next_doc_index_++;
  item.is_path = is_path;
  item.text = copy ? pending_->arena.Copy(text) : text;
  pending_->items.push_back(item);
  if (pending_->items.size() >=
      static_cast<size_t>(options_.batch_docs)) {
    DispatchPending();
  }
}

void ParallelDtdInferrer::DispatchPending() {
  deque_.Push(pending_.release());
  obs::SchedAdd(obs::SchedCounter::kBatchesDispatched, 1);
  // Empty critical section: orders the push before the notify so a
  // worker that checked the deque under the mutex cannot miss the wake.
  { std::lock_guard<std::mutex> lock(mutex_); }
  ready_.notify_one();
}

void ParallelDtdInferrer::AddXml(std::string_view xml) {
  Enqueue(xml, /*is_path=*/false, /*copy=*/true);
}

void ParallelDtdInferrer::AddBorrowedXml(std::string_view xml) {
  Enqueue(xml, /*is_path=*/false, /*copy=*/false);
}

void ParallelDtdInferrer::AddFile(std::string_view path) {
  Enqueue(path, /*is_path=*/true, /*copy=*/true);
}

Status ParallelDtdInferrer::LoadState(std::string_view serialized) {
  return merged_.LoadState(serialized);
}

void ParallelDtdInferrer::Worker(Shard* shard) {
  for (;;) {
    Batch* batch = deque_.Steal();
    if (batch == nullptr) {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return closed_ || !deque_.Empty(); });
      if (!deque_.Empty()) continue;  // race another steal attempt
      if (closed_) return;
      continue;  // spurious predicate pass; park again
    }
    obs::SchedAdd(obs::SchedCounter::kBatchSteals, 1);
    ProcessBatch(shard, batch);
  }
}

void ParallelDtdInferrer::ProcessBatch(Shard* shard, Batch* batch) {
  for (const WorkItem& item : batch->items) {
    std::string_view xml = item.text;
    InputBuffer buffer;
    Status status;
    bool opened = true;
    if (item.is_path) {
      // Worker-side open: this is what overlaps file I/O with parsing —
      // while this worker faults pages in, the others keep folding.
      obs::StageSpan io_span(obs::Stage::kIoRead);
      Result<InputBuffer> open =
          InputBuffer::Open(std::string(item.text), input_options_);
      if (open.ok()) {
        buffer = std::move(open).value();
        xml = buffer.view();
      } else {
        status = open.status();
        opened = false;
        obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
      }
    }
    // Parse + fold without any lock — the hot path touches only
    // shard-local state. Streaming (the default) folds SAX events
    // straight into the shard's summaries; the DOM path stays available
    // for comparison (`streaming_ingest = false`).
    //
    // Exception containment: a document that throws mid-ingestion
    // (std::bad_alloc on a pathological input, std::length_error from a
    // string resize, a throwing test fault) must not take down the
    // process — without the catch it would escape the thread entry
    // point and std::terminate. The document is rolled back
    // (AbortDocument undoes its dedup-cache increments) and recorded as
    // a DocumentError; the remaining documents keep folding. Names the
    // document interned before throwing stay in the shard alphabet, so
    // they are still replayed at the barrier — same as a plain parse
    // failure.
    int before = shard->inferrer.alphabet()->size();
    ++shard->docs_ingested;
    if (opened) {
      try {
        if (IngestFault fault =
                ingest_fault_.load(std::memory_order_acquire)) {
          fault(item.doc_index);
        }
        status = options_.streaming_ingest ? shard->folder.AddXml(xml)
                                           : shard->inferrer.AddXml(xml);
      } catch (const std::exception& e) {
        shard->folder.AbortDocument();
        obs::SchedAdd(obs::SchedCounter::kWorkerExceptions, 1);
        obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
        status = Status::Internal(
            std::string("exception while ingesting document: ") + e.what());
      } catch (...) {
        shard->folder.AbortDocument();
        obs::SchedAdd(obs::SchedCounter::kWorkerExceptions, 1);
        obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
        status = Status::Internal(
            "non-standard exception while ingesting document");
      }
    }
    int after = shard->inferrer.alphabet()->size();
    if (after > before) {
      shard->new_names.push_back({item.doc_index, before, after});
    }
    if (!status.ok()) {
      shard->errors.push_back({item.doc_index, std::move(status)});
    }
  }
  obs::GaugeMax(obs::Gauge::kArenaBytesPeak,
                static_cast<int64_t>(batch->arena.footprint()));
  delete batch;
}

Status ParallelDtdInferrer::AggregateStatus() const {
  if (errors_.empty()) return Status::OK();
  if (errors_.size() == 1) return errors_.front().status;
  const DocumentError& first = errors_.front();
  return Status(first.status.code(),
                std::to_string(errors_.size()) +
                    " documents failed to ingest; first failure at "
                    "document " +
                    std::to_string(first.doc_index) + ": " +
                    first.status.message() +
                    " (see errors() for the full list)");
}

Status ParallelDtdInferrer::Finish() {
  if (finished_) return AggregateStatus();
  finished_ = true;
  if (pending_ != nullptr) DispatchPending();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  obs::StageSpan merge_span(obs::Stage::kShardMerge);

  // Replay newly-interned names in document-submission order so the
  // merged alphabet matches what a sequential run over the same corpus
  // would have interned. A name's global first occurrence is in the
  // earliest document containing it, and within that document the
  // shard-local log preserves first-encounter order, so the replay
  // reproduces the sequential id assignment exactly.
  struct Replay {
    int64_t doc_index;
    const Shard* shard;
    int first;
    int last;
  };
  std::vector<Replay> replays;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const Shard::NewNames& record : shard->new_names) {
      replays.push_back(
          {record.doc_index, shard.get(), record.first, record.last});
    }
  }
  std::sort(replays.begin(), replays.end(),
            [](const Replay& a, const Replay& b) {
              return a.doc_index < b.doc_index;
            });
  Alphabet* alphabet = merged_.alphabet();
  for (const Replay& replay : replays) {
    const Alphabet& shard_alphabet = replay.shard->inferrer.alphabet();
    for (int s = replay.first; s < replay.last; ++s) {
      alphabet->Intern(shard_alphabet.Name(s));
    }
  }

  // Drain each shard's dedup cache, then combine the shard stores with
  // a pairwise merge tree: in each round shard i absorbs shard
  // i+stride, independent pairs running on their own threads, and the
  // surviving shard merges into `merged_` last. Summaries are
  // associative, so the tree shape cannot change the result — it only
  // turns the O(k) serial merge chain into O(log k) parallel rounds.
  // Total MergeFrom count is unchanged: (k-1) pair merges + 1 final.
  std::vector<Shard*> live;
  live.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->folder.Flush();
    obs::GaugeMax(obs::Gauge::kShardDocsMax, shard->docs_ingested);
    for (DocumentError& error : shard->errors) {
      errors_.push_back(std::move(error));
    }
    live.push_back(shard.get());
  }
  for (size_t stride = 1; stride < live.size(); stride *= 2) {
    std::vector<std::thread> mergers;
    for (size_t i = 0; i + stride < live.size(); i += 2 * stride) {
      Shard* into = live[i];
      Shard* from = live[i + stride];
      if (i + 2 * stride < live.size()) {
        mergers.emplace_back([into, from] {
          into->inferrer.MergeFrom(from->inferrer);
          obs::SchedAdd(obs::SchedCounter::kShardMerges, 1);
        });
      } else {
        // Last pair of the round runs inline — no thread spawn for it.
        into->inferrer.MergeFrom(from->inferrer);
        obs::SchedAdd(obs::SchedCounter::kShardMerges, 1);
      }
    }
    for (std::thread& merger : mergers) merger.join();
  }
  merged_.MergeFrom(live.front()->inferrer);
  obs::SchedAdd(obs::SchedCounter::kShardMerges, 1);
  shards_.clear();
  std::sort(errors_.begin(), errors_.end(),
            [](const DocumentError& a, const DocumentError& b) {
              return a.doc_index < b.doc_index;
            });
  return AggregateStatus();
}

Result<Dtd> ParallelDtdInferrer::InferDtd() {
  CONDTD_RETURN_IF_ERROR(Finish());
  return merged_.InferDtd(num_threads_);
}

Result<std::string> ParallelDtdInferrer::InferXsd(bool numeric_predicates) {
  CONDTD_RETURN_IF_ERROR(Finish());
  return merged_.InferXsd(numeric_predicates, num_threads_);
}

}  // namespace condtd
