#ifndef CONDTD_INFER_CONTEXTUAL_H_
#define CONDTD_INFER_CONTEXTUAL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "infer/inferrer.h"

namespace condtd {

/// The paper's stated next step (Sections 1.2, 9, 10): XSDs are, per
/// [9], DTDs extended with *vertical* context — the type of an element
/// may depend on where it occurs. This module implements the simplest
/// vertical extension: 1-local types, where content models are learned
/// per (parent, element) pair and merged back to a single DTD type when
/// the per-parent languages agree.
///
/// This is exactly the k = 1 ancestor-based fragment of the XSD
/// inference the paper leaves as future work; it reuses the same
/// per-context SOA/CRX machinery.
class ContextualInferrer {
 public:
  explicit ContextualInferrer(InferenceOptions options = {});

  Alphabet* alphabet() { return &alphabet_; }
  const Alphabet& alphabet() const { return alphabet_; }

  Status AddXml(std::string_view xml);
  void AddDocument(const XmlDocument& doc);

  /// One inferred type of an element together with the parents it
  /// occurs under (kInvalidSymbol = document root). Parents whose
  /// learned languages coincide are merged into one type.
  struct ContextType {
    std::vector<Symbol> parents;
    ContentModel model;
    int64_t occurrences = 0;
  };

  /// The result: for every element, its per-parent types after merging
  /// language-equivalent ones, plus the single DTD type (the union of
  /// contexts) for comparison.
  struct Report {
    struct ElementTypes {
      Symbol element;
      /// Distinct types; size() == 1 means the element is DTD-expressible.
      std::vector<ContextType> types;
      /// What a plain DTD must use (all contexts pooled).
      ContentModel merged;
    };
    std::vector<ElementTypes> elements;

    /// Elements that genuinely need vertical context (>= 2 types).
    int NumContextDependent() const;
  };

  Result<Report> Infer() const;

  /// Human-readable rendering of the report.
  std::string ReportToString(const Report& report) const;

  /// An XML Schema using *local element declarations* (russian-doll
  /// style) for the context-dependent elements — the schema a DTD cannot
  /// express. Uniform elements are declared globally and referenced;
  /// context-dependent ones are declared inline under each parent with
  /// their per-context type. Recursive context chains fall back to the
  /// pooled global declaration to stay finite.
  Result<std::string> InferLocalXsd() const;

 private:
  /// Initializes a freshly created per-context summary, mirroring
  /// SummaryStore::Ensure's words-complete rule.
  ElementSummary& Prepare(ElementSummary& summary) const;

  Result<ContentModel> InferContext(const ElementSummary& summary) const;

  InferenceOptions options_;
  LearnOptions learn_options_;
  // learner_ before limits_: MakeLimits reads the resolved learner's
  // capabilities during member initialization.
  const Learner* learner_;
  SummaryLimits limits_;
  Alphabet alphabet_;
  // (element, parent) -> summary; parent kInvalidSymbol for roots. The
  // same ElementSummary bundle DtdInferrer retains, just keyed by
  // vertical context instead of by element alone.
  std::map<std::pair<Symbol, Symbol>, ElementSummary> contexts_;
  // Pooled per-element summaries, for the DTD-equivalent merged model.
  std::map<Symbol, ElementSummary> pooled_;
};

}  // namespace condtd

#endif  // CONDTD_INFER_CONTEXTUAL_H_
