#ifndef CONDTD_INFER_ENGINE_H_
#define CONDTD_INFER_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "infer/inferrer.h"
#include "infer/parallel.h"
#include "infer/streaming.h"
#include "io/input_buffer.h"

namespace condtd {

/// The one batch ingestion engine behind every corpus-shaped consumer:
/// the CLI's `infer` subcommand and the serve daemon's journal replay
/// both feed documents through this class instead of hand-rolling the
/// sequential-vs-sharded split. At `jobs == 1` documents fold through a
/// sequential DtdInferrer + StreamingFolder (or the DOM path when
/// streaming is disabled); at any other value they route through
/// ParallelDtdInferrer's work-stealing batch scheduler. The inferred
/// DTD — and the SaveState text — is byte-identical either way (the
/// determinism contract pinned by parallel_test/differential_test), so
/// callers pick `jobs` purely on throughput.
///
/// Error model (both modes): per-document failures never stop the
/// pipeline; they are recorded against the document's 0-based
/// submission index and surfaced together at Finish(), which returns
/// OK only when every document folded cleanly. Single-producer like
/// the scheduler it wraps: feed it from one thread.
class IngestEngine {
 public:
  struct Options {
    InferenceOptions inference;
    InputBuffer::Options input;
    /// 1 = sequential fold; anything else = sharded scheduler
    /// (0 = hardware concurrency, as in ParallelDtdInferrer).
    int jobs = 1;
  };

  using DocumentError = ParallelDtdInferrer::DocumentError;

  explicit IngestEngine(Options options);

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Merges a previously saved summary state ahead of the corpus
  /// (Section 9 incremental pipelines). Call before adding documents.
  Status LoadState(std::string_view state);

  /// Enqueues one document by path; the engine performs the (hardened)
  /// open itself — worker-side in sharded mode, inline sequentially.
  void AddFile(const std::string& path);

  /// Enqueues one document given as text (copied in sharded mode).
  void AddXml(std::string_view xml);

  /// The barrier: drains the pipeline (sharded mode: dispatch + join +
  /// deterministic merge), flushes dedup caches, and reports the
  /// aggregate ingestion status. Idempotent.
  Status Finish();

  /// All ingestion failures, ascending by document index (valid after
  /// Finish()).
  const std::vector<DocumentError>& errors() const { return errors_; }

  /// The merged inferrer (valid after Finish()): infer from it, save
  /// its state, or adopt it into an IngestSession.
  DtdInferrer& inferrer();

  /// Thread count for the per-element learner fan-out that matches this
  /// engine's configuration.
  int infer_threads() const;

  int64_t documents_added() const { return next_doc_index_; }

 private:
  Options options_;
  std::optional<ParallelDtdInferrer> parallel_;
  std::optional<DtdInferrer> sequential_;
  std::optional<StreamingFolder> folder_;
  std::vector<DocumentError> errors_;
  int64_t next_doc_index_ = 0;
  bool finished_ = false;
};

}  // namespace condtd

#endif  // CONDTD_INFER_ENGINE_H_
