#include "infer/summary.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "automaton/two_t_inf.h"
#include "base/fold_scratch.h"
#include "base/mem_estimate.h"
#include "base/strings.h"
#include "obs/metrics.h"

namespace condtd {

void ElementSummary::AddChildWord(const Word& word, int64_t multiplicity,
                                  const SummaryLimits& limits) {
  obs::StageSpan span(obs::Stage::kWordFold);
  obs::CounterAdd(obs::Counter::kChildWordFolds, multiplicity);
  if (obs::StatsEnabled() && !word.empty()) {
    Symbol min_symbol = word[0];
    Symbol max_symbol = word[0];
    for (Symbol s : word) {
      min_symbol = std::min(min_symbol, s);
      max_symbol = std::max(max_symbol, s);
    }
    if (min_symbol >= 0 && max_symbol < kDenseFoldWindow) {
      obs::SchedAdd(obs::SchedCounter::kDenseFoldHits, 1);
    } else {
      obs::SchedAdd(obs::SchedCounter::kDenseFoldFallbacks, 1);
    }
  }
  {
    obs::StageSpan inf_span(obs::Stage::kTwoTInf);
    Fold2T(word, &soa, multiplicity);
  }
  {
    obs::StageSpan crx_span(obs::Stage::kCrxFold);
    crx.AddWord(word, multiplicity);
  }
  if (limits.max_retained_words > 0 && !words_overflowed) {
    auto [it, inserted] = retained_words.insert(word);
    if (inserted && static_cast<int>(retained_words.size()) >
                        limits.max_retained_words) {
      retained_words.erase(it);
      words_overflowed = true;
    }
  }
}

void ElementSummary::AddTextSample(std::string sample,
                                   const SummaryLimits& limits) {
  if (static_cast<int>(text_samples.size()) < limits.max_text_samples) {
    text_samples.push_back(std::move(sample));
  }
}

void ElementSummary::MergeFrom(const ElementSummary& other,
                               const std::vector<Symbol>* remap,
                               const SummaryLimits& limits) {
  occurrences += other.occurrences;
  has_text = has_text || other.has_text;
  for (const std::string& sample : other.text_samples) {
    if (static_cast<int>(text_samples.size()) >= limits.max_text_samples) {
      break;
    }
    text_samples.push_back(sample);
  }
  for (const auto& [attr, count] : other.attribute_counts) {
    attribute_counts[attr] += count;
  }
  if (remap == nullptr) {
    soa.MergeFrom(other.soa);
    crx.MergeFrom(other.crx);
  } else {
    soa.MergeFrom(other.soa, *remap);
    crx.MergeFrom(other.crx, *remap);
  }
  words_complete = words_complete && other.words_complete;
  words_overflowed = words_overflowed || other.words_overflowed;
  if (limits.max_retained_words > 0 && !words_overflowed) {
    for (const Word& theirs : other.retained_words) {
      Word word = theirs;
      if (remap != nullptr) {
        for (Symbol& s : word) s = (*remap)[s];
      }
      auto [it, inserted] = retained_words.insert(std::move(word));
      if (inserted && static_cast<int>(retained_words.size()) >
                          limits.max_retained_words) {
        retained_words.erase(it);
        words_overflowed = true;
        break;
      }
    }
  }
}

SummaryStore::SummaryStore(SummaryLimits limits) : limits_(limits) {}

ElementSummary& SummaryStore::Ensure(Symbol symbol) {
  auto [it, inserted] = elements_.try_emplace(symbol);
  if (inserted) it->second.words_complete = limits_.max_retained_words > 0;
  return it->second;
}

ElementSummary* SummaryStore::Find(Symbol symbol) {
  auto it = elements_.find(symbol);
  return it == elements_.end() ? nullptr : &it->second;
}

const ElementSummary* SummaryStore::Find(Symbol symbol) const {
  auto it = elements_.find(symbol);
  return it == elements_.end() ? nullptr : &it->second;
}

void SummaryStore::MarkSeenAsChild(Symbol symbol) {
  if (symbol >= static_cast<Symbol>(seen_as_child_.size())) {
    seen_as_child_.resize(symbol + 1, false);
  }
  seen_as_child_[symbol] = true;
}

bool SummaryStore::SeenAsChild(Symbol symbol) const {
  return symbol >= 0 &&
         symbol < static_cast<Symbol>(seen_as_child_.size()) &&
         seen_as_child_[symbol];
}

void SummaryStore::MergeFrom(const SummaryStore& other,
                             const std::vector<Symbol>& remap) {
  for (const auto& [symbol, count] : other.root_counts_) {
    root_counts_[remap[symbol]] += count;
  }
  for (Symbol s = 0; s < static_cast<Symbol>(other.seen_as_child_.size());
       ++s) {
    if (other.seen_as_child_[s]) MarkSeenAsChild(remap[s]);
  }
  for (const auto& [symbol, theirs] : other.elements_) {
    Ensure(remap[symbol]).MergeFrom(theirs, &remap, limits_);
    obs::SchedAdd(obs::SchedCounter::kSummaryMerges, 1);
  }
}

namespace {

/// Percent-escaping for free text carried in the line-based state format
/// (space, %, CR, LF).
std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  static const char* kHex = "0123456789ABCDEF";
  for (unsigned char c : text) {
    if (c == ' ' || c == '%' || c == '\n' || c == '\r') {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string UnescapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      auto hex = [](char c) {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return 0;
      };
      out += static_cast<char>(hex(text[i + 1]) * 16 + hex(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

}  // namespace

std::string SummaryStore::Save(const Alphabet& alphabet) const {
  std::string out = "condtd-state 2\n";
  auto name = [&](Symbol s) { return alphabet.Name(s); };
  for (const auto& [symbol, count] : root_counts_) {
    out += "root " + name(symbol) + " " + std::to_string(count) + "\n";
  }
  for (Symbol symbol = 0;
       symbol < static_cast<Symbol>(seen_as_child_.size()); ++symbol) {
    if (seen_as_child_[symbol]) out += "child " + name(symbol) + "\n";
  }
  for (const auto& [symbol, summary] : elements_) {
    out += "element " + name(symbol) + " " +
           std::to_string(summary.occurrences) + " " +
           (summary.has_text ? "1" : "0") + "\n";
    for (const auto& [attr, count] : summary.attribute_counts) {
      out += "attr " + attr + " " + std::to_string(count) + "\n";
    }
    for (const std::string& sample : summary.text_samples) {
      out += "text " + EscapeText(sample) + "\n";
    }
    const Soa& soa = summary.soa;
    for (int q = 0; q < soa.NumStates(); ++q) {
      out += "soa.state " + name(soa.LabelOf(q)) + " " +
             std::to_string(soa.StateSupport(q)) + "\n";
      if (soa.IsInitial(q)) {
        out += "soa.init " + name(soa.LabelOf(q)) + " " +
               std::to_string(soa.InitialSupport(q)) + "\n";
      }
      if (soa.IsFinal(q)) {
        out += "soa.final " + name(soa.LabelOf(q)) + " " +
               std::to_string(soa.FinalSupport(q)) + "\n";
      }
      for (int to : soa.Successors(q)) {
        out += "soa.edge " + name(soa.LabelOf(q)) + " " +
               name(soa.LabelOf(to)) + " " +
               std::to_string(soa.EdgeSupport(q, to)) + "\n";
      }
    }
    if (soa.accepts_empty()) {
      out += "soa.empty " + std::to_string(soa.empty_support()) + "\n";
    }
    const CrxState& crx = summary.crx;
    for (const auto& [from, to] : crx.edges()) {
      out += "crx.edge " + name(from) + " " + name(to) + "\n";
    }
    if (crx.empty_count() > 0) {
      out += "crx.empty " + std::to_string(crx.empty_count()) + "\n";
    }
    for (const auto& [histogram, count] : crx.histograms()) {
      out += "crx.hist " + std::to_string(count);
      for (const auto& [sym, n] : histogram) {
        out += " " + name(sym) + "=" + std::to_string(n);
      }
      out += "\n";
    }
    // Distinct-word reservoir (version 2): sorted, so the rendering is
    // canonical. ε is the bare "word" line. An element with no word
    // lines and no flag simply has an empty (complete) reservoir.
    for (const Word& word : summary.retained_words) {
      out += "word";
      for (Symbol s : word) out += " " + name(s);
      out += "\n";
    }
    if (summary.words_overflowed) out += "words.overflowed\n";
    if (!summary.words_complete) out += "words.incomplete\n";
  }
  out += "end\n";
  return out;
}

Status SummaryStore::Load(std::string_view serialized, Alphabet* alphabet) {
  std::vector<std::string> lines = SplitString(serialized, '\n');
  int version = 0;
  if (!lines.empty()) {
    if (lines[0] == "condtd-state 1") {
      version = 1;
    } else if (lines[0] == "condtd-state 2") {
      version = 2;
    } else if (lines[0].rfind("condtd-state ", 0) == 0) {
      return Status::ParseError(
          "state file format version " +
          lines[0].substr(std::string("condtd-state ").size()) +
          " is not supported by this build (supported: 1, 2)");
    }
  }
  if (version == 0) {
    return Status::ParseError("unrecognized state header");
  }
  ElementSummary* current = nullptr;
  bool saw_end = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> fields = SplitString(lines[i], ' ');
    const std::string& tag = fields[0];
    auto require = [&](size_t n) {
      return fields.size() == n
                 ? Status::OK()
                 : Status::ParseError("state line " + std::to_string(i + 1) +
                                      ": expected " + std::to_string(n) +
                                      " fields");
    };
    // Counts and supports are untrusted input: they must be genuine
    // non-negative integers (std::atoll would silently accept junk and
    // hit undefined behavior on out-of-range digits).
    auto count64 = [&](const std::string& field, int64_t* out) {
      if (!ParseInt64(field, out) || *out < 0) {
        return Status::ParseError("state line " + std::to_string(i + 1) +
                                  ": '" + field +
                                  "' is not a non-negative count");
      }
      return Status::OK();
    };
    auto count32 = [&](const std::string& field, int32_t* out) {
      int64_t wide;
      CONDTD_RETURN_IF_ERROR(count64(field, &wide));
      if (wide > INT32_MAX) {
        return Status::ParseError("state line " + std::to_string(i + 1) +
                                  ": support '" + field +
                                  "' exceeds the 32-bit range");
      }
      *out = static_cast<int32_t>(wide);
      return Status::OK();
    };
    if (tag == "end") {
      saw_end = true;
      break;
    }
    if (tag == "root") {
      CONDTD_RETURN_IF_ERROR(require(3));
      int64_t count;
      CONDTD_RETURN_IF_ERROR(count64(fields[2], &count));
      root_counts_[alphabet->Intern(fields[1])] += count;
      continue;
    }
    if (tag == "child") {
      CONDTD_RETURN_IF_ERROR(require(2));
      MarkSeenAsChild(alphabet->Intern(fields[1]));
      continue;
    }
    if (tag == "element") {
      CONDTD_RETURN_IF_ERROR(require(4));
      int64_t occurrences;
      CONDTD_RETURN_IF_ERROR(count64(fields[2], &occurrences));
      current = &Ensure(alphabet->Intern(fields[1]));
      current->occurrences += occurrences;
      current->has_text = current->has_text || fields[3] == "1";
      // A version-1 file cannot carry the reservoir, so summaries loaded
      // from it can never satisfy a needs-full-words learner.
      if (version == 1) current->words_complete = false;
      continue;
    }
    if (current == nullptr) {
      return Status::ParseError("state line " + std::to_string(i + 1) +
                                ": '" + tag + "' before any element");
    }
    if (tag == "attr") {
      CONDTD_RETURN_IF_ERROR(require(3));
      int64_t count;
      CONDTD_RETURN_IF_ERROR(count64(fields[2], &count));
      current->attribute_counts[fields[1]] += count;
    } else if (tag == "text") {
      CONDTD_RETURN_IF_ERROR(require(2));
      if (static_cast<int>(current->text_samples.size()) <
          limits_.max_text_samples) {
        current->text_samples.push_back(UnescapeText(fields[1]));
      }
    } else if (tag == "soa.state") {
      CONDTD_RETURN_IF_ERROR(require(3));
      int32_t support;
      CONDTD_RETURN_IF_ERROR(count32(fields[2], &support));
      int q = current->soa.AddState(alphabet->Intern(fields[1]));
      current->soa.AddStateSupport(q, support);
    } else if (tag == "soa.init") {
      CONDTD_RETURN_IF_ERROR(require(3));
      int32_t support;
      CONDTD_RETURN_IF_ERROR(count32(fields[2], &support));
      current->soa.AddInitial(
          current->soa.AddState(alphabet->Intern(fields[1])), support);
    } else if (tag == "soa.final") {
      CONDTD_RETURN_IF_ERROR(require(3));
      int32_t support;
      CONDTD_RETURN_IF_ERROR(count32(fields[2], &support));
      current->soa.AddFinal(
          current->soa.AddState(alphabet->Intern(fields[1])), support);
    } else if (tag == "soa.edge") {
      CONDTD_RETURN_IF_ERROR(require(4));
      int32_t support;
      CONDTD_RETURN_IF_ERROR(count32(fields[3], &support));
      current->soa.AddEdge(
          current->soa.AddState(alphabet->Intern(fields[1])),
          current->soa.AddState(alphabet->Intern(fields[2])), support);
    } else if (tag == "soa.empty") {
      CONDTD_RETURN_IF_ERROR(require(2));
      int32_t support;
      CONDTD_RETURN_IF_ERROR(count32(fields[1], &support));
      current->soa.set_accepts_empty(true);
      current->soa.add_empty_support(support);
    } else if (tag == "crx.edge") {
      CONDTD_RETURN_IF_ERROR(require(3));
      current->crx.RestoreEdge(alphabet->Intern(fields[1]),
                               alphabet->Intern(fields[2]));
    } else if (tag == "crx.empty") {
      CONDTD_RETURN_IF_ERROR(require(2));
      int64_t count;
      CONDTD_RETURN_IF_ERROR(count64(fields[1], &count));
      current->crx.RestoreEmpty(count);
    } else if (tag == "crx.hist") {
      if (fields.size() < 2) {
        return Status::ParseError("state line " + std::to_string(i + 1) +
                                  ": malformed histogram");
      }
      CrxState::Histogram histogram;
      for (size_t f = 2; f < fields.size(); ++f) {
        size_t eq = fields[f].rfind('=');
        if (eq == std::string::npos) {
          return Status::ParseError("state line " + std::to_string(i + 1) +
                                    ": malformed histogram entry");
        }
        int32_t n;
        CONDTD_RETURN_IF_ERROR(count32(fields[f].substr(eq + 1), &n));
        histogram.emplace_back(alphabet->Intern(fields[f].substr(0, eq)), n);
      }
      std::sort(histogram.begin(), histogram.end());
      int64_t hist_count;
      CONDTD_RETURN_IF_ERROR(count64(fields[1], &hist_count));
      current->crx.RestoreHistogram(histogram, hist_count);
    } else if (tag == "word") {
      if (limits_.max_retained_words > 0 && !current->words_overflowed) {
        Word word;
        word.reserve(fields.size() - 1);
        for (size_t f = 1; f < fields.size(); ++f) {
          word.push_back(alphabet->Intern(fields[f]));
        }
        auto [it, inserted] =
            current->retained_words.insert(std::move(word));
        if (inserted && static_cast<int>(current->retained_words.size()) >
                            limits_.max_retained_words) {
          current->retained_words.erase(it);
          current->words_overflowed = true;
        }
      }
    } else if (tag == "words.overflowed") {
      CONDTD_RETURN_IF_ERROR(require(1));
      current->words_overflowed = true;
    } else if (tag == "words.incomplete") {
      CONDTD_RETURN_IF_ERROR(require(1));
      current->words_complete = false;
    } else {
      return Status::ParseError("state line " + std::to_string(i + 1) +
                                ": unknown tag '" + tag + "'");
    }
  }
  if (!saw_end) {
    return Status::ParseError("truncated state (missing 'end')");
  }
  return Status::OK();
}

size_t ElementSummary::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += soa.ApproxBytes() + crx.ApproxBytes();
  bytes += VectorBytes(text_samples);
  for (const std::string& sample : text_samples) bytes += StringBytes(sample);
  bytes += TreeBytes(attribute_counts);
  for (const auto& [name, count] : attribute_counts) {
    (void)count;
    bytes += StringBytes(name);
  }
  bytes += TreeBytes(retained_words);
  for (const Word& word : retained_words) bytes += VectorBytes(word);
  return bytes;
}

size_t SummaryStore::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += TreeBytes(elements_) + TreeBytes(root_counts_) +
           VectorBytes(seen_as_child_);
  for (const auto& [symbol, summary] : elements_) {
    (void)symbol;
    bytes += summary.ApproxBytes();
  }
  return bytes;
}

}  // namespace condtd
