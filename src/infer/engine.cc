#include "infer/engine.h"

#include <algorithm>
#include <utility>

namespace condtd {

IngestEngine::IngestEngine(Options options) : options_(std::move(options)) {
  if (options_.jobs != 1) {
    parallel_.emplace(options_.inference, options_.jobs);
    parallel_->set_input_options(options_.input);
  } else {
    sequential_.emplace(options_.inference);
    if (options_.inference.streaming_ingest) {
      folder_.emplace(&*sequential_);
    }
  }
}

Status IngestEngine::LoadState(std::string_view state) {
  if (parallel_) return parallel_->LoadState(state);
  return sequential_->LoadState(state);
}

void IngestEngine::AddFile(const std::string& path) {
  int64_t index = next_doc_index_++;
  if (parallel_) {
    parallel_->AddFile(path);
    return;
  }
  Result<InputBuffer> content = InputBuffer::Open(path, options_.input);
  if (!content.ok()) {
    errors_.push_back({index, content.status()});
    return;
  }
  Status status = folder_ ? folder_->AddXml(content->view())
                          : sequential_->AddXml(content->view());
  if (!status.ok()) errors_.push_back({index, status});
}

void IngestEngine::AddXml(std::string_view xml) {
  int64_t index = next_doc_index_++;
  if (parallel_) {
    parallel_->AddXml(xml);
    return;
  }
  Status status = folder_ ? folder_->AddXml(xml)
                          : sequential_->AddXml(xml);
  if (!status.ok()) errors_.push_back({index, status});
}

Status IngestEngine::Finish() {
  if (!finished_) {
    finished_ = true;
    if (parallel_) {
      parallel_->Finish();
      errors_ = parallel_->errors();
    } else if (folder_) {
      folder_->Flush();
    }
  }
  if (errors_.empty()) return Status::OK();
  if (errors_.size() == 1) return errors_.front().status;
  // Several failures: aggregate under the first failure's code, naming
  // the count and the lowest failed index (the full list is errors()).
  const DocumentError& first = errors_.front();
  return Status(first.status.code(),
                std::to_string(errors_.size()) +
                    " documents failed to ingest (first: document " +
                    std::to_string(first.doc_index) + ": " +
                    first.status.message() + ")");
}

DtdInferrer& IngestEngine::inferrer() {
  return parallel_ ? *parallel_->merged() : *sequential_;
}

int IngestEngine::infer_threads() const {
  return parallel_ ? parallel_->num_threads() : 1;
}

}  // namespace condtd
