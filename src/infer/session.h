#ifndef CONDTD_INFER_SESSION_H_
#define CONDTD_INFER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "base/status.h"
#include "infer/inferrer.h"
#include "infer/streaming.h"
#include "io/input_buffer.h"

namespace condtd {

/// Thread-safe incremental ingest session: one DtdInferrer plus its
/// streaming fold driver behind a mutex, with a consistent-snapshot
/// read API. This is the long-lived per-corpus substrate of the serve
/// daemon (Section 9's incremental extension running forever instead of
/// once): writers call Ingest whenever a document arrives, readers call
/// Snapshot at any time and always observe a document-boundary-
/// consistent state — never a torn word multiset.
///
/// Consistency contract: Ingest holds the session lock for the whole
/// parse-and-fold of one document, and the streaming fold is
/// transactional per document (a failed parse contributes nothing), so
/// every snapshot equals the SaveState of a sequential DtdInferrer fed
/// some prefix of the successfully ingested document sequence — pinned
/// by tests/serve_test.cc. Because weighted dedup folds are exact,
/// the mid-stream Flush a snapshot performs never changes any later
/// inferred DTD.
///
/// The session serializes all operations; it does not try to scale one
/// corpus across cores (per-corpus ordering is what makes replay
/// deterministic). Cross-corpus parallelism comes from the daemon's
/// worker pool running many sessions; batch-corpus parallelism from
/// IngestEngine (infer/engine.h), which shards across threads and whose
/// merged state a session can adopt via LoadState.
class IngestSession {
 public:
  explicit IngestSession(InferenceOptions options);

  IngestSession(const IngestSession&) = delete;
  IngestSession& operator=(const IngestSession&) = delete;

  const InferenceOptions& options() const { return options_; }

  /// Parses and folds one document (streaming SAX by default, DOM when
  /// the options disable streaming_ingest). On error the document
  /// contributes nothing. Thread-safe.
  Status Ingest(std::string_view xml);

  /// Opens `path` (hardened InputBuffer: regular files only) and
  /// ingests its content. Thread-safe.
  Status IngestFile(const std::string& path,
                    const InputBuffer::Options& input);

  /// Merges a previously saved summary state (journal recovery, shard
  /// adoption). Counts as one epoch step. Thread-safe.
  Status LoadState(std::string_view state);

  /// Captures a consistent snapshot: the SaveState text of everything
  /// ingested so far, plus the epoch it corresponds to. Thread-safe;
  /// blocks ingestion only for the flush-and-serialize, not for any
  /// learning a reader does with the snapshot afterwards.
  void Snapshot(std::string* state, int64_t* epoch);

  /// Monotone version counter: bumps once per successful Ingest and
  /// LoadState. Readers use it to cache learned schemas per version.
  int64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Raises the monotone public counters to at least the given values.
  /// The serve registry calls this after an evicted corpus is
  /// transparently re-opened: recovery rebuilds the folded state but
  /// starts the counters from zero, and without the floors a client
  /// would watch `documents=`/`epoch=` jump backwards across an
  /// eviction it was never supposed to notice. Values below the current
  /// counters are ignored (floors never decrease anything).
  void RestoreCounterFloors(int64_t documents, int64_t failed,
                            int64_t bytes, int64_t epoch);

  int64_t documents() const {
    return documents_.load(std::memory_order_relaxed);
  }
  int64_t failed_documents() const {
    return failed_.load(std::memory_order_relaxed);
  }
  int64_t bytes_ingested() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Rough resident bytes of the retained state (summaries + alphabet +
  /// dedup cache). Thread-safe; O(elements). Backs the daemon's
  /// per-corpus `condtd_corpus_bytes` gauge and memory cap.
  size_t ApproxBytes() const;

 private:
  InferenceOptions options_;
  mutable std::mutex mu_;
  DtdInferrer inferrer_;
  std::optional<StreamingFolder> folder_;
  std::atomic<int64_t> epoch_{0};
  std::atomic<int64_t> documents_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> bytes_{0};
};

}  // namespace condtd

#endif  // CONDTD_INFER_SESSION_H_
