#ifndef CONDTD_INFER_WORD_CACHE_H_
#define CONDTD_INFER_WORD_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "alphabet/alphabet.h"
#include "base/arena.h"

namespace condtd {

/// The incremental hash of the streaming fold's dedup keys. An open
/// element frame seeds with its element symbol and steps once per child
/// appended, so the hash of the completed (element, word) key is ready
/// the moment the end tag is seen — the commit probe never re-walks the
/// word. The mix is the same FNV-flavored fold the legacy
/// `std::unordered_map` cache used, kept bit-for-bit so the two cache
/// implementations can be differentially tested against each other.
struct WordHash {
  static uint64_t Seed(Symbol element) {
    return 0xcbf29ce484222325ull ^ static_cast<uint64_t>(element);
  }
  static uint64_t Step(uint64_t h, Symbol symbol) {
    return h ^ (static_cast<uint64_t>(symbol) + 0x9e3779b97f4a7c15ull +
                (h << 6) + (h >> 2));
  }
  /// Whole-key hash: Seed folded over the word. Only cold paths (tests,
  /// the legacy cache, rollback verification) should need this.
  static uint64_t Mix(Symbol element, const Symbol* word, size_t length) {
    uint64_t h = Seed(element);
    for (size_t i = 0; i < length; ++i) h = Step(h, word[i]);
    return h;
  }
};

/// Flat open-addressing multiplicity cache for completed (element, word)
/// pairs — the dedup table at the center of the streaming fold.
///
/// Layout: a power-of-two slot array of 1-based entry indices (0 =
/// empty) probed triangularly (step 1, 2, 3, ... visits every slot of a
/// power-of-two table), over an append-only entry vector whose word keys
/// live in a bump `Arena`. The design buys exactly what the fold hot
/// path needs:
///
///  * one predictable indirection per occurrence instead of the node
///    walk + per-key heap string of `std::unordered_map<WordKey, ...>`;
///  * entry indices are stable for the cache's lifetime (growth rebuilds
///    only the slot array from the cached hashes — keys are never
///    re-hashed and never move), so the per-document rollback journal is
///    a plain vector of indices;
///  * `Clear()` is tombstone-free: entries and arena rewind, the slot
///    array is zeroed, and every retained block is reused by the next
///    fill.
///
/// Not thread-safe; each shard owns one, like the folder that feeds it.
class FlatWordCache {
 public:
  struct Entry {
    uint64_t hash = 0;
    const Symbol* word = nullptr;  ///< arena-backed copy, length symbols
    int64_t count = 0;
    Symbol element = kInvalidSymbol;
    uint32_t length = 0;
  };

  struct Upserted {
    uint32_t index = 0;  ///< entry index, stable until Clear()
    bool inserted = false;
  };

  FlatWordCache() { ClearSlots(kInitialSlots); }

  FlatWordCache(const FlatWordCache&) = delete;
  FlatWordCache& operator=(const FlatWordCache&) = delete;

  /// Finds the entry for (element, word) under its precomputed `hash`,
  /// inserting a zero-count entry (word copied into the arena) when
  /// absent. The caller owns the count discipline — the fold path
  /// increments on every occurrence and the rollback journal decrements.
  Upserted Upsert(uint64_t hash, Symbol element, const Symbol* word,
                  uint32_t length) {
    if ((entries_.size() + 1) * kMaxLoadNum >= slots_.size() * kMaxLoadDen) {
      Grow();
    }
    const size_t mask = slots_.size() - 1;
    size_t slot = static_cast<size_t>(hash) & mask;
    for (size_t step = 1;; ++step) {
      uint32_t id = slots_[slot];
      if (id == 0) {
        Entry entry;
        entry.hash = hash;
        entry.element = element;
        entry.length = length;
        entry.count = 0;
        if (length > 0) {
          Symbol* copy = reinterpret_cast<Symbol*>(
              arena_.Allocate(length * sizeof(Symbol)));
          std::memcpy(copy, word, length * sizeof(Symbol));
          entry.word = copy;
        }
        entries_.push_back(entry);
        slots_[slot] = static_cast<uint32_t>(entries_.size());
        probe_steps_ += static_cast<int64_t>(step);
        return {static_cast<uint32_t>(entries_.size() - 1), true};
      }
      const Entry& candidate = entries_[id - 1];
      if (candidate.hash == hash && candidate.element == element &&
          candidate.length == length &&
          (length == 0 ||
           std::memcmp(candidate.word, word, length * sizeof(Symbol)) == 0)) {
        probe_steps_ += static_cast<int64_t>(step);
        return {id - 1, false};
      }
      slot = (slot + step) & mask;
    }
  }

  Entry& entry(uint32_t index) { return entries_[index]; }
  const Entry& entry(uint32_t index) const { return entries_[index]; }

  /// Entries in insertion order — which is first-occurrence order across
  /// the corpus, the same order the DOM path first folds each distinct
  /// word in. Flushing in this order keeps the SOA state numbering (and
  /// therefore SaveState output) aligned with the DOM path.
  const std::vector<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Tombstone-free clear: entries and key storage rewind in O(slots);
  /// every block and the slot array's capacity stay allocated for reuse.
  void Clear() {
    entries_.clear();
    arena_.Reset();
    std::memset(slots_.data(), 0, slots_.size() * sizeof(uint32_t));
  }

  /// Bytes resident in the cache right now: slot array + entry vector
  /// capacity + arena blocks holding the word keys. This is what the
  /// dedup-cache bytes gauge reports — distinct-entry counts alone hide
  /// the key storage, which dominates on long-word corpora.
  size_t bytes_resident() const {
    return slots_.capacity() * sizeof(uint32_t) +
           entries_.capacity() * sizeof(Entry) + arena_.footprint();
  }

  /// Cumulative probe-loop iterations across every Upsert — 1 per
  /// perfect probe. The folder publishes the delta per commit, so
  /// `--stats` exposes clustering before it becomes a throughput bug.
  int64_t probe_steps() const { return probe_steps_; }

 private:
  static constexpr size_t kInitialSlots = 1024;  // power of two
  // Grow at 8/13 ≈ 0.62 load — past that, triangular probe chains start
  // compounding.
  static constexpr size_t kMaxLoadNum = 13;
  static constexpr size_t kMaxLoadDen = 8;

  void ClearSlots(size_t count) {
    slots_.assign(count, 0);
  }

  /// Doubles the slot array and re-seats every entry by its cached hash.
  /// Entries and keys do not move; no key is re-hashed.
  void Grow() {
    const size_t next = slots_.size() * 2;
    ClearSlots(next);
    const size_t mask = next - 1;
    for (uint32_t id = 1; id <= entries_.size(); ++id) {
      size_t slot = static_cast<size_t>(entries_[id - 1].hash) & mask;
      for (size_t step = 1; slots_[slot] != 0; ++step) {
        slot = (slot + step) & mask;
      }
      slots_[slot] = id;
    }
  }

  std::vector<uint32_t> slots_;
  std::vector<Entry> entries_;
  Arena arena_;
  int64_t probe_steps_ = 0;
};

}  // namespace condtd

#endif  // CONDTD_INFER_WORD_CACHE_H_
