#ifndef CONDTD_INFER_SUMMARY_H_
#define CONDTD_INFER_SUMMARY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "automaton/soa.h"
#include "base/status.h"
#include "crx/crx.h"

namespace condtd {

/// Retention caps applied while folding into a summary. Owned by the
/// SummaryStore (or by a caller holding loose ElementSummary values) and
/// passed into the fold/merge operations so the summary itself stays a
/// plain value type.
struct SummaryLimits {
  /// Maximum text samples retained per element for the XSD datatype
  /// heuristic.
  int max_text_samples = 64;
  /// Capacity of the per-element distinct-word reservoir consumed by
  /// learners with `needs_full_words()` (XTRACT). 0 disables the
  /// reservoir entirely — the default, so summary-only pipelines pay
  /// nothing for it.
  int max_retained_words = 0;
};

/// The per-element retained state of Section 9: everything the engine
/// keeps about one element name once the XML data has been discarded.
/// This is the single shared bundle behind DtdInferrer, the contextual
/// inferrer, the streaming fold and the sharded merge — every learner
/// reads it and nothing else.
///
/// All fields form an associative merge algebra (`MergeFrom`): folding a
/// corpus shard-by-shard and merging is equivalent to folding it
/// sequentially, which is what makes the parallel and incremental
/// pipelines exact rather than approximate.
struct ElementSummary {
  /// 2T-INF single occurrence automaton over the child words (iDTD,
  /// rewrite and Trang-like input).
  Soa soa;
  /// CRX summaries: successor relation + deduplicated histograms.
  CrxState crx;
  /// Element occurrence count (== number of child words folded).
  int64_t occurrences = 0;
  bool has_text = false;
  std::vector<std::string> text_samples;
  /// std::less<> so the streaming fold can probe with the string_view
  /// attribute keys it holds into the document.
  std::map<std::string, int64_t, std::less<>> attribute_counts;

  /// Bounded reservoir of distinct child words, kept only when a
  /// registered learner declares `needs_full_words()` (XTRACT's
  /// disjunction-per-string construction cannot run off the SOA/CRX
  /// summaries). Sorted storage makes the reservoir — and therefore
  /// SaveState output and the learner's sample order — independent of
  /// fold order, so DOM, streaming and sharded ingestion agree.
  std::set<Word> retained_words;
  /// A distinct word was dropped because the reservoir was full. Word
  /// learners fail with kResourceExhausted rather than learn from a
  /// truncated sample.
  bool words_overflowed = false;
  /// False when the reservoir was never collected for this element
  /// (reservoir disabled, or the summary came from a state file saved
  /// without words). Word learners fail with kFailedPrecondition.
  bool words_complete = false;

  /// Folds one child word `multiplicity` times: SOA edges/supports, CRX
  /// histograms and the word reservoir (multiplicity-invariant). Does
  /// NOT touch `occurrences` — occurrence accounting belongs to the
  /// ingestion drivers, which count at element-open or document-commit
  /// time while words fold at end-tag or cache-flush time.
  void AddChildWord(const Word& word, int64_t multiplicity,
                    const SummaryLimits& limits);

  /// Appends a text sample if the cap allows.
  void AddTextSample(std::string sample, const SummaryLimits& limits);

  /// Merges `other` into this summary (sums counts, unions the SOA/CRX
  /// summaries and the word reservoir, concatenates text samples up to
  /// the cap). When `remap` is non-null, `other`'s symbols are first
  /// translated through it (indexed by the other alphabet's ids).
  /// `other` must not alias this.
  void MergeFrom(const ElementSummary& other,
                 const std::vector<Symbol>* remap,
                 const SummaryLimits& limits);

  /// Rough resident bytes of this summary (SOA + CRX + samples +
  /// attribute counts + word reservoir; see base/mem_estimate.h for the
  /// estimation contract).
  size_t ApproxBytes() const;
};

/// The unified store of retained summaries: per-element ElementSummary
/// plus the corpus-level root counts and seen-as-child marks, with the
/// shard-merge algebra and the versioned persistence format in one
/// place. DtdInferrer owns one; StreamingFolder folds into it directly;
/// ParallelDtdInferrer merges shard stores through it.
class SummaryStore {
 public:
  explicit SummaryStore(SummaryLimits limits = {});

  const SummaryLimits& limits() const { return limits_; }

  /// Finds or creates the summary for `symbol`. New summaries start
  /// words-complete iff the reservoir is enabled (their — empty —
  /// reservoir then reflects every word folded so far).
  ElementSummary& Ensure(Symbol symbol);
  /// Returns the summary for `symbol` or null; never creates one (the
  /// streaming fold's transactionality depends on probes being pure).
  ElementSummary* Find(Symbol symbol);
  const ElementSummary* Find(Symbol symbol) const;

  bool empty() const { return elements_.empty(); }
  const std::map<Symbol, ElementSummary>& elements() const {
    return elements_;
  }

  void AddRoot(Symbol symbol, int64_t count = 1) {
    root_counts_[symbol] += count;
  }
  const std::map<Symbol, int64_t>& root_counts() const {
    return root_counts_;
  }

  void MarkSeenAsChild(Symbol symbol);
  bool SeenAsChild(Symbol symbol) const;

  /// Merges `other` into this store, translating its symbols through
  /// `remap` (indexed by the other store's symbol ids — build it by
  /// interning the other alphabet's names). Associative; `other` must
  /// not alias this.
  void MergeFrom(const SummaryStore& other, const std::vector<Symbol>& remap);

  /// Serializes the store into the line-based state format (versioned
  /// header; see docs/STATE_FORMAT.md), realizing Section 9's "store the
  /// internal graph representation and forget the XML data". Symbol
  /// references are by name via `alphabet`.
  std::string Save(const Alphabet& alphabet) const;

  /// Merges a previously saved state into this store, interning names
  /// into `alphabet`. Accepts format versions 1 (pre-reservoir) and 2;
  /// anything else fails with a clear message. Version-1 summaries are
  /// marked words-incomplete since the file cannot carry a reservoir.
  Status Load(std::string_view serialized, Alphabet* alphabet);

  /// Rough resident bytes of the whole store: the sum of the per-element
  /// summaries plus the store's own maps. O(elements + retained data);
  /// the serve daemon reports this as the per-corpus
  /// `condtd_corpus_bytes` gauge and enforces its per-tenant memory cap
  /// against it.
  size_t ApproxBytes() const;

 private:
  SummaryLimits limits_;
  std::map<Symbol, ElementSummary> elements_;
  std::map<Symbol, int64_t> root_counts_;
  /// Dense flat set keyed by symbol id (symbols are small dense ints;
  /// this is touched once per child element parsed).
  std::vector<bool> seen_as_child_;
};

}  // namespace condtd

#endif  // CONDTD_INFER_SUMMARY_H_
