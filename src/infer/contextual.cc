#include "infer/contextual.h"

#include <algorithm>
#include <functional>

#include "regex/equivalence.h"
#include "xml/parser.h"

namespace condtd {

namespace {

// Same resolution DtdInferrer applies: the learner name wins over the
// legacy enum, and the selected learner's capabilities size the
// summaries' retention.
std::string_view ResolvedLearnerName(const InferenceOptions& options) {
  return options.learner.empty() ? LearnerNameOf(options.algorithm)
                                 : std::string_view(options.learner);
}

LearnOptions MakeLearnOptions(const InferenceOptions& options) {
  LearnOptions out;
  out.noise_symbol_threshold = options.noise_symbol_threshold;
  out.auto_idtd_min_words = options.auto_idtd_min_words;
  out.idtd = options.idtd;
  out.xtract = options.xtract;
  return out;
}

SummaryLimits MakeLimits(const InferenceOptions& options,
                         const Learner* learner) {
  SummaryLimits limits;
  limits.max_text_samples = options.max_text_samples;
  limits.max_retained_words =
      learner != nullptr && learner->needs_full_words()
          ? options.xtract.max_strings + 2
          : 0;
  return limits;
}

}  // namespace

ContextualInferrer::ContextualInferrer(InferenceOptions options)
    : options_(std::move(options)),
      learn_options_(MakeLearnOptions(options_)),
      learner_(LearnerRegistry::Global().Find(ResolvedLearnerName(options_))),
      limits_(MakeLimits(options_, learner_)) {}

ElementSummary& ContextualInferrer::Prepare(ElementSummary& summary) const {
  // Fresh summaries (nothing folded yet) start words-complete iff the
  // reservoir is enabled — the same rule as SummaryStore::Ensure.
  if (summary.occurrences == 0 && limits_.max_retained_words > 0) {
    summary.words_complete = true;
  }
  return summary;
}

Status ContextualInferrer::AddXml(std::string_view xml) {
  Result<XmlDocument> doc =
      options_.lenient_xml ? ParseXmlLenient(xml) : ParseXml(xml);
  if (!doc.ok()) return doc.status();
  AddDocument(doc.value());
  return Status::OK();
}

void ContextualInferrer::AddDocument(const XmlDocument& doc) {
  if (doc.root == nullptr) return;
  // Depth-first, interning each name right before entering its subtree:
  // the alphabet grows in document (start-tag) order, matching
  // DtdInferrer's DOM and streaming traversals so symbol-id tie-breaks
  // agree across all ingestion paths.
  struct VisitFrame {
    const XmlElement* element;
    Symbol symbol;
    Symbol parent;
    size_t next_child = 0;
    Word word;
  };
  std::vector<VisitFrame> stack;
  auto open = [&](const XmlElement* element, Symbol symbol, Symbol parent) {
    stack.push_back({element, symbol, parent, 0, {}});
    stack.back().word.reserve(element->children().size());
  };
  open(doc.root.get(), alphabet_.Intern(doc.root->name()), kInvalidSymbol);
  while (!stack.empty()) {
    VisitFrame& frame = stack.back();
    const auto& children = frame.element->children();
    if (frame.next_child < children.size()) {
      const XmlElement* child = children[frame.next_child++].get();
      Symbol cs = alphabet_.Intern(child->name());
      frame.word.push_back(cs);
      open(child, cs, frame.symbol);  // invalidates `frame`
    } else {
      for (ElementSummary* summary :
           {&Prepare(contexts_[{frame.symbol, frame.parent}]),
            &Prepare(pooled_[frame.symbol])}) {
        ++summary->occurrences;
        summary->AddChildWord(frame.word, 1, limits_);
        if (frame.element->HasSignificantText()) summary->has_text = true;
      }
      stack.pop_back();
    }
  }
}

Result<ContentModel> ContextualInferrer::InferContext(
    const ElementSummary& summary) const {
  ContentModel model;
  if (summary.crx.num_distinct_histograms() == 0) {
    model.kind =
        summary.has_text ? ContentKind::kPcdataOnly : ContentKind::kEmpty;
    return model;
  }
  if (summary.has_text) {
    model.kind = ContentKind::kMixed;
    for (int q = 0; q < summary.soa.NumStates(); ++q) {
      model.mixed_symbols.push_back(summary.soa.LabelOf(q));
    }
    std::sort(model.mixed_symbols.begin(), model.mixed_symbols.end());
    return model;
  }
  if (learner_ == nullptr) {
    return Status::InvalidArgument(
        "unknown learner '" + std::string(ResolvedLearnerName(options_)) +
        "' (registered: " + LearnerRegistry::Global().NamesForDisplay(", ") +
        ")");
  }
  Result<ReRef> re = learner_->Learn(summary, learn_options_);
  if (!re.ok()) return re.status();
  model.kind = ContentKind::kChildren;
  model.regex = re.value();
  return model;
}

namespace {

bool SameModel(const ContentModel& a, const ContentModel& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ContentKind::kChildren:
      return LanguageEquivalent(a.regex, b.regex);
    case ContentKind::kMixed:
      return a.mixed_symbols == b.mixed_symbols;
    default:
      return true;
  }
}

}  // namespace

Result<ContextualInferrer::Report> ContextualInferrer::Infer() const {
  Report report;
  // Group contexts by element (contexts_ is keyed (element, parent), so
  // entries for one element are adjacent).
  std::map<Symbol, std::vector<std::pair<Symbol, const ElementSummary*>>>
      by_element;
  for (const auto& [key, state] : contexts_) {
    by_element[key.first].emplace_back(key.second, &state);
  }
  for (const auto& [element, parent_states] : by_element) {
    Report::ElementTypes entry;
    entry.element = element;
    for (const auto& [parent, state] : parent_states) {
      Result<ContentModel> model = InferContext(*state);
      if (!model.ok()) return model.status();
      bool merged = false;
      for (ContextType& type : entry.types) {
        if (SameModel(type.model, model.value())) {
          type.parents.push_back(parent);
          type.occurrences += state->occurrences;
          merged = true;
          break;
        }
      }
      if (!merged) {
        ContextType type;
        type.parents = {parent};
        type.model = model.value();
        type.occurrences = state->occurrences;
        entry.types.push_back(std::move(type));
      }
    }
    Result<ContentModel> merged = InferContext(pooled_.at(element));
    if (!merged.ok()) return merged.status();
    entry.merged = merged.value();
    report.elements.push_back(std::move(entry));
  }
  return report;
}

int ContextualInferrer::Report::NumContextDependent() const {
  int count = 0;
  for (const ElementTypes& entry : elements) {
    if (entry.types.size() >= 2) ++count;
  }
  return count;
}

namespace {

/// Minimal particle renderer with an inline hook for context-dependent
/// child elements. `emit_element` renders one symbol occurrence (either
/// a global ref or an inline local declaration).
class LocalXsdPrinter {
 public:
  using EmitElement = std::function<void(Symbol, const std::string& occurs,
                                         int indent, std::string*)>;

  explicit LocalXsdPrinter(EmitElement emit) : emit_(std::move(emit)) {}

  void Particle(const ReRef& re, int min_occurs, int max_occurs,
                int indent, std::string* out) const {
    std::string occurs;
    if (min_occurs != 1) {
      occurs += " minOccurs=\"" + std::to_string(min_occurs) + "\"";
    }
    if (max_occurs < 0) {
      occurs += " maxOccurs=\"unbounded\"";
    } else if (max_occurs != 1) {
      occurs += " maxOccurs=\"" + std::to_string(max_occurs) + "\"";
    }
    std::string pad(indent * 2, ' ');
    switch (re->kind()) {
      case ReKind::kSymbol:
        emit_(re->symbol(), occurs, indent, out);
        return;
      case ReKind::kPlus:
        Particle(re->child(), min_occurs == 1 && max_occurs == 1 ? 1
                                                                 : min_occurs,
                 -1, indent, out);
        return;
      case ReKind::kOpt:
        Particle(re->child(), 0, max_occurs, indent, out);
        return;
      case ReKind::kStar:
        Particle(re->child(), 0, -1, indent, out);
        return;
      case ReKind::kConcat: {
        *out += pad + "<xs:sequence" + occurs + ">\n";
        for (const auto& c : re->children()) {
          Particle(c, 1, 1, indent + 1, out);
        }
        *out += pad + "</xs:sequence>\n";
        return;
      }
      case ReKind::kDisj: {
        *out += pad + "<xs:choice" + occurs + ">\n";
        for (const auto& c : re->children()) {
          Particle(c, 1, 1, indent + 1, out);
        }
        *out += pad + "</xs:choice>\n";
        return;
      }
      case ReKind::kShuffle: {
        *out += pad + "<xs:all" + occurs + ">\n";
        for (const auto& c : re->children()) {
          Particle(c, 1, 1, indent + 1, out);
        }
        *out += pad + "</xs:all>\n";
        return;
      }
    }
  }

 private:
  EmitElement emit_;
};

}  // namespace

Result<std::string> ContextualInferrer::InferLocalXsd() const {
  Result<Report> report_or = Infer();
  if (!report_or.ok()) return report_or.status();
  const Report& report = report_or.value();

  std::map<Symbol, const Report::ElementTypes*> by_element;
  for (const auto& entry : report.elements) {
    by_element[entry.element] = &entry;
  }
  auto is_contextual = [&](Symbol s) {
    auto it = by_element.find(s);
    return it != by_element.end() && it->second->types.size() >= 2;
  };
  auto model_for_context = [&](Symbol element,
                               Symbol parent) -> const ContentModel* {
    const Report::ElementTypes* entry = by_element.at(element);
    for (const ContextType& type : entry->types) {
      for (Symbol p : type.parents) {
        if (p == parent) return &type.model;
      }
    }
    return &entry->merged;
  };

  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";

  // Rendering one element's body (shared by global and local decls).
  // `chain` guards against recursive inlining.
  std::function<void(Symbol, const ContentModel&, int, std::string*,
                     std::vector<Symbol>*)>
      render_body = [&](Symbol element, const ContentModel& model,
                        int indent, std::string* text,
                        std::vector<Symbol>* chain) {
        std::string pad(indent * 2, ' ');
        switch (model.kind) {
          case ContentKind::kPcdataOnly:
            // Rendered by the caller as type="xs:string".
            return;
          case ContentKind::kEmpty:
            *text += pad + "<xs:complexType/>\n";
            return;
          case ContentKind::kAny:
            *text += pad + "<xs:complexType mixed=\"true\"/>\n";
            return;
          case ContentKind::kMixed: {
            *text += pad + "<xs:complexType mixed=\"true\">\n";
            *text += pad + "  <xs:choice minOccurs=\"0\" "
                           "maxOccurs=\"unbounded\">\n";
            for (Symbol child : model.mixed_symbols) {
              *text += pad + "    <xs:element ref=\"" +
                       alphabet_.Name(child) + "\"/>\n";
            }
            *text += pad + "  </xs:choice>\n";
            *text += pad + "</xs:complexType>\n";
            return;
          }
          case ContentKind::kChildren: {
            *text += pad + "<xs:complexType>\n";
            // complexType particles must be model groups; wrap a lone
            // element in a sequence.
            const Re* skeleton = model.regex.get();
            while (skeleton->kind() == ReKind::kPlus ||
                   skeleton->kind() == ReKind::kOpt ||
                   skeleton->kind() == ReKind::kStar) {
              skeleton = skeleton->child().get();
            }
            bool wrap = skeleton->kind() == ReKind::kSymbol;
            if (wrap) *text += pad + "  <xs:sequence>\n";
            LocalXsdPrinter printer([&](Symbol child,
                                        const std::string& occurs,
                                        int child_indent,
                                        std::string* inner) {
              std::string child_pad(child_indent * 2, ' ');
              bool in_chain = false;
              for (Symbol s : *chain) in_chain = in_chain || s == child;
              if (!is_contextual(child) || in_chain) {
                *inner += child_pad + "<xs:element ref=\"" +
                          alphabet_.Name(child) + "\"" + occurs + "/>\n";
                return;
              }
              // Inline local declaration with the (child, element) type.
              const ContentModel* child_model =
                  model_for_context(child, element);
              if (child_model->kind == ContentKind::kPcdataOnly) {
                *inner += child_pad + "<xs:element name=\"" +
                          alphabet_.Name(child) +
                          "\" type=\"xs:string\"" + occurs + "/>\n";
                return;
              }
              *inner += child_pad + "<xs:element name=\"" +
                        alphabet_.Name(child) + "\"" + occurs + ">\n";
              chain->push_back(child);
              render_body(child, *child_model, child_indent + 1, inner,
                          chain);
              chain->pop_back();
              *inner += child_pad + "</xs:element>\n";
            });
            printer.Particle(model.regex, 1, 1,
                             wrap ? indent + 2 : indent + 1, text);
            if (wrap) *text += pad + "  </xs:sequence>\n";
            *text += pad + "</xs:complexType>\n";
            return;
          }
        }
      };

  for (const auto& entry : report.elements) {
    // Context-dependent elements only appear as local declarations —
    // except that a global fallback declaration is still emitted (used
    // by recursive chains and by mixed-content refs).
    const ContentModel& model = entry.merged;
    if (model.kind == ContentKind::kPcdataOnly) {
      out += "  <xs:element name=\"" + alphabet_.Name(entry.element) +
             "\" type=\"xs:string\"/>\n";
      continue;
    }
    out += "  <xs:element name=\"" + alphabet_.Name(entry.element) +
           "\">\n";
    std::vector<Symbol> chain = {entry.element};
    render_body(entry.element, model, 2, &out, &chain);
    out += "  </xs:element>\n";
  }
  out += "</xs:schema>\n";
  return out;
}

std::string ContextualInferrer::ReportToString(const Report& report) const {
  std::string out;
  for (const Report::ElementTypes& entry : report.elements) {
    out += alphabet_.Name(entry.element);
    if (entry.types.size() == 1) {
      out += ": " + ContentModelToString(entry.types[0].model, alphabet_) +
             "  (uniform; DTD-expressible)\n";
      continue;
    }
    out += ": " + std::to_string(entry.types.size()) +
           " context-dependent types\n";
    for (const ContextType& type : entry.types) {
      out += "  under";
      for (Symbol parent : type.parents) {
        out += ' ';
        out += parent == kInvalidSymbol ? std::string("<root>")
                                        : alphabet_.Name(parent);
      }
      out += ": " + ContentModelToString(type.model, alphabet_) + " (" +
             std::to_string(type.occurrences) + " occurrences)\n";
    }
    out += "  DTD approximation: " +
           ContentModelToString(entry.merged, alphabet_) + "\n";
  }
  return out;
}

}  // namespace condtd
