#ifndef CONDTD_INFER_PARALLEL_H_
#define CONDTD_INFER_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "base/arena.h"
#include "base/status.h"
#include "base/ws_deque.h"
#include "dtd/model.h"
#include "infer/inferrer.h"
#include "infer/streaming.h"
#include "io/input_buffer.h"

namespace condtd {

/// Corpus-scale front end over DtdInferrer: a fixed pool of worker
/// threads, each owning a shard-local DtdInferrer (own alphabet, own
/// summaries — no shared mutable state and no locks on the parse/fold
/// hot path). Documents are staged into *batches* (`batch_docs` per
/// batch, document bytes bump-allocated into the batch's arena) that
/// workers claim from a Chase-Lev-style work-stealing deque — one
/// hand-off per batch instead of per document, which is what lets
/// tiny-document corpora scale. `AddFile` enqueues just the path, so
/// the claiming worker performs the mmap/read itself and file I/O
/// overlaps parsing across the pool. `Finish()` is the barrier: it
/// dispatches the partial batch, joins the pool and combines the shards
/// with a pairwise merge tree; per-element inference then fans the
/// independent `LearnRegex` calls back out across the same thread
/// count.
///
/// Determinism contract: for a well-formed corpus, the inferred DTD is
/// byte-identical to feeding the same documents in the same order to a
/// sequential DtdInferrer — for any thread count, any batch size and
/// any scheduling. Two ingredients make that hold:
///  * at the barrier the merged alphabet is rebuilt by replaying each
///    document's newly-seen names in document-submission order, which
///    reproduces the sequential interning order exactly (symbol ids are
///    the tie-breakers throughout the learners), and
///  * the learner pipeline is invariant to summary merge order — every
///    ElementSummary field (SOA, CRX, the distinct-word reservoir) is
///    associative under SummaryStore::MergeFrom, so the merge tree may
///    combine shards in any shape; `Gfa::FromSoa` canonicalizes state
///    numbering (see those classes).
/// The one caveat is the XSD datatype heuristic: which `max_text_samples`
/// text snippets are retained can differ from the sequential run (each
/// shard keeps its own first samples), so `InferXsd` simple-type picks
/// may differ on corpora with heterogeneous text; the DTD never does.
///
/// Thread model: the enqueue side (AddXml/AddBorrowedXml/AddFile,
/// LoadState, Finish) is single-producer — call it from one thread.
class ParallelDtdInferrer {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ParallelDtdInferrer(InferenceOptions options = {},
                               int num_threads = 0);
  ~ParallelDtdInferrer();

  ParallelDtdInferrer(const ParallelDtdInferrer&) = delete;
  ParallelDtdInferrer& operator=(const ParallelDtdInferrer&) = delete;

  int num_threads() const { return num_threads_; }

  /// How workers open documents enqueued with AddFile (mmap threshold,
  /// --no-mmap). Set before the first AddFile call.
  void set_input_options(const InputBuffer::Options& options) {
    input_options_ = options;
  }

  /// Enqueues one XML document for ingestion by the pool (bytes are
  /// copied into the staging batch's arena). Parse failures do not stop
  /// the pipeline; they surface in errors() after Finish(), keyed by
  /// the document's 0-based submission index.
  void AddXml(std::string_view xml);

  /// Zero-copy variant of AddXml: the caller guarantees `xml` stays
  /// valid and unchanged until Finish() returns (e.g. an mmap'd corpus
  /// or a resident benchmark corpus).
  void AddBorrowedXml(std::string_view xml);

  /// Enqueues a document by path. The worker that claims the batch
  /// opens it (mmap or buffered read per set_input_options), so file
  /// I/O overlaps parsing on the other workers. Open failures surface
  /// in errors() exactly like parse failures.
  void AddFile(std::string_view path);

  /// Loads a previously saved summary state into the merge target (the
  /// incremental pipelines of Section 9). Must be called before
  /// Finish(); loaded names intern ahead of the corpus, matching a
  /// sequential LoadState-then-AddXml run.
  Status LoadState(std::string_view serialized);

  /// The barrier: dispatches the partial batch, closes the deque, joins
  /// the pool, merges the shards deterministically. Idempotent; AddXml
  /// must not be called after. Returns OK when every document folded
  /// cleanly. With exactly one failed document it returns that
  /// document's status; with several it returns an aggregate (first
  /// failure's code, message naming the failure count and the lowest
  /// failed index) — the full per-document list is in errors() either
  /// way.
  Status Finish();

  struct DocumentError {
    int64_t doc_index = 0;
    Status status;
  };
  /// All ingestion failures (open failures, parse errors and contained
  /// worker exceptions), ascending by document index (valid after
  /// Finish()).
  const std::vector<DocumentError>& errors() const { return errors_; }

  /// Test seam: a hook invoked with each document's submission index
  /// just before the document is ingested, on the worker thread. A test
  /// installs a throwing hook to exercise the pool's exception
  /// containment (the exception is converted to a DocumentError and the
  /// remaining documents keep folding). Process-wide; pass nullptr to
  /// uninstall. Not for production use.
  using IngestFault = void (*)(int64_t doc_index);
  static void SetIngestFaultForTest(IngestFault fault);

  /// Finishes (if not already finished) and infers, running the
  /// per-element learners across the pool's thread count. Fails if any
  /// document failed to parse — callers that want to keep going can
  /// inspect errors() and use merged() directly.
  Result<Dtd> InferDtd();
  Result<std::string> InferXsd(bool numeric_predicates = true);

  /// The merged inferrer (valid after Finish()): SaveState, alphabet
  /// access, or keep folding sequentially.
  DtdInferrer* merged() { return &merged_; }

 private:
  struct Shard {
    explicit Shard(const InferenceOptions& options)
        : inferrer(options), folder(&inferrer) {}
    DtdInferrer inferrer;
    /// Streaming fold driver over `inferrer` (used when
    /// `InferenceOptions::streaming_ingest` is set): folds documents
    /// without a DOM and dedups repeated words shard-locally. Flushed at
    /// the barrier before the shard merges.
    StreamingFolder folder;
    /// Alphabet ids [first, last) of this shard that were first interned
    /// while folding `doc_index` — the replay log for rebuilding the
    /// sequential interning order at the barrier.
    struct NewNames {
      int64_t doc_index;
      int first;
      int last;
    };
    std::vector<NewNames> new_names;
    std::vector<DocumentError> errors;
    /// Documents this shard ingested (reported as the shard_docs_max
    /// gauge — a load-balance signal, scheduling-dependent by nature).
    int64_t docs_ingested = 0;
  };

  /// One document of a batch. `text` is the document bytes (a view into
  /// the batch arena, or borrowed caller storage) or, when `is_path` is
  /// set, the file path to open worker-side.
  struct WorkItem {
    std::string_view text;
    int64_t doc_index = 0;
    bool is_path = false;
  };

  /// A unit of scheduling: up to `batch_docs` documents plus the arena
  /// owning their copied bytes. Produced by the enqueue side, consumed
  /// (and freed) whole by the worker that steals it.
  struct Batch {
    std::vector<WorkItem> items;
    Arena arena;
  };

  void Enqueue(std::string_view text, bool is_path, bool copy);
  /// Publishes the staging batch to the deque and wakes a worker.
  void DispatchPending();
  void Worker(Shard* shard);
  /// Ingests every document of `batch` into `shard`, then frees it.
  void ProcessBatch(Shard* shard, Batch* batch);
  /// The status Finish() reports for the current errors_ list.
  Status AggregateStatus() const;

  static std::atomic<IngestFault> ingest_fault_;

  InferenceOptions options_;
  int num_threads_;
  DtdInferrer merged_;
  InputBuffer::Options input_options_;

  /// Producer-owned staging batch; published when full.
  std::unique_ptr<Batch> pending_;
  int64_t next_doc_index_ = 0;

  /// Single owner (the enqueue thread) pushes, workers steal. The
  /// mutex/condvar pair only parks idle workers — the deque itself is
  /// lock-free.
  WorkStealingDeque<Batch*> deque_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool closed_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  bool finished_ = false;
  std::vector<DocumentError> errors_;
};

}  // namespace condtd

#endif  // CONDTD_INFER_PARALLEL_H_
