#include "infer/session.h"

#include <utility>

namespace condtd {

IngestSession::IngestSession(InferenceOptions options)
    : options_(std::move(options)), inferrer_(options_) {
  if (options_.streaming_ingest) folder_.emplace(&inferrer_);
}

Status IngestSession::Ingest(std::string_view xml) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status =
      folder_ ? folder_->AddXml(xml) : inferrer_.AddXml(xml);
  if (!status.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  documents_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<int64_t>(xml.size()),
                   std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status IngestSession::IngestFile(const std::string& path,
                                 const InputBuffer::Options& input) {
  // The open happens outside the lock (it can fault in pages); only the
  // parse-and-fold needs the session serialized.
  Result<InputBuffer> content = InputBuffer::Open(path, input);
  if (!content.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return content.status();
  }
  return Ingest(content->view());
}

Status IngestSession::LoadState(std::string_view state) {
  std::lock_guard<std::mutex> lock(mu_);
  // Flush first so the cached weighted folds of earlier documents land
  // before the loaded names intern (keeps the combined state equal to a
  // sequential ingest-then-load run).
  if (folder_) folder_->Flush();
  Status status = inferrer_.LoadState(state);
  if (!status.ok()) return status;
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

void IngestSession::Snapshot(std::string* state, int64_t* epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (folder_) folder_->Flush();
  *state = inferrer_.SaveState();
  if (epoch != nullptr) *epoch = epoch_.load(std::memory_order_relaxed);
}

void IngestSession::RestoreCounterFloors(int64_t documents, int64_t failed,
                                         int64_t bytes, int64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (documents_.load(std::memory_order_relaxed) < documents) {
    documents_.store(documents, std::memory_order_relaxed);
  }
  if (failed_.load(std::memory_order_relaxed) < failed) {
    failed_.store(failed, std::memory_order_relaxed);
  }
  if (bytes_.load(std::memory_order_relaxed) < bytes) {
    bytes_.store(bytes, std::memory_order_relaxed);
  }
  if (epoch_.load(std::memory_order_relaxed) < epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }
}

size_t IngestSession::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = inferrer_.summaries().ApproxBytes() +
                 inferrer_.alphabet().ApproxBytes();
  if (folder_) bytes += folder_->cache_bytes_resident();
  return bytes;
}

}  // namespace condtd
