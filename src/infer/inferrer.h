#ifndef CONDTD_INFER_INFERRER_H_
#define CONDTD_INFER_INFERRER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "base/status.h"
#include "dtd/model.h"
#include "infer/summary.h"
#include "learn/learner.h"
#include "xml/dom.h"
#include "xsd/writer.h"

namespace condtd {

/// Legacy spelling of the built-in learner choice, kept for source
/// compatibility: each value is a thin alias for a LearnerRegistry name
/// (see LearnerNameOf). New code — and any learner beyond these four,
/// like the Section 8 baselines "trang" and "xtract" — selects by name
/// via InferenceOptions::learner.
enum class InferenceAlgorithm {
  /// The paper's two-regime recommendation: iDTD when the element has
  /// plenty of data (specialization), CRX when data is sparse
  /// (generalization). The switch is `auto_idtd_min_words`.
  kAuto,
  kIdtd,
  kCrx,
  kRewriteOnly,  ///< plain Algorithm 1 (fails on non-representative data)
};

/// The registry name the enum value aliases.
std::string_view LearnerNameOf(InferenceAlgorithm algorithm);

struct InferenceOptions {
  InferenceAlgorithm algorithm = InferenceAlgorithm::kAuto;
  /// Registry name of the per-element learner. When empty (the default)
  /// the legacy `algorithm` enum decides; when set it wins. Any name
  /// registered in LearnerRegistry::Global() works, e.g. "trang" or
  /// "xtract".
  std::string learner;
  /// kAuto threshold: elements with at least this many observed words go
  /// through iDTD, sparser ones through CRX.
  int auto_idtd_min_words = 100;
  /// Section 9 noise handling: element names supported by fewer than
  /// this many occurrences are dropped from content models (0 = off).
  int noise_symbol_threshold = 0;
  /// Forwarded to iDTD (includes its edge-support noise threshold).
  IdtdOptions idtd;
  /// Forwarded to the XTRACT baseline learner; its `max_strings` also
  /// sizes the summaries' distinct-word reservoir when that learner is
  /// selected.
  XtractOptions xtract;
  /// Infer <!ATTLIST> declarations (#REQUIRED when an attribute occurs
  /// on every element occurrence).
  bool infer_attributes = true;
  /// Maximum text samples retained per element for the XSD datatype
  /// heuristic.
  int max_text_samples = 64;
  /// Parse documents in tag-soup recovery mode (mismatched/stray/missing
  /// end tags are repaired instead of rejected) — for corpora like the
  /// paper's XHTML crawl where 89% of documents are not well-formed.
  bool lenient_xml = false;
  /// Ingest documents through the streaming SAX fold (no DOM
  /// materialization) where the caller supports it (CLI `infer`,
  /// ParallelDtdInferrer shards). The inferred DTD is identical either
  /// way; this only selects the faster path.
  bool streaming_ingest = true;
  /// Documents per scheduler batch in ParallelDtdInferrer: workers pull
  /// whole batches from the work-stealing deque, so this trades hand-off
  /// overhead (small batches) against load-balance granularity (large
  /// batches). The inferred DTD is identical at any value.
  int batch_docs = 32;
};

/// The end-to-end DTD inference engine of the paper. Feed it documents
/// (or raw per-element words); it maintains only the incremental
/// summaries of Section 9 — a SummaryStore of per-element
/// ElementSummary values — so the XML data never needs to stay
/// resident. Per element it dispatches to the configured Learner from
/// the global registry.
class DtdInferrer {
 public:
  explicit DtdInferrer(InferenceOptions options = {});

  Alphabet* alphabet() { return &alphabet_; }
  const Alphabet& alphabet() const { return alphabet_; }

  const InferenceOptions& options() const { return options_; }

  /// The retained per-element summaries (plus root counts and
  /// seen-as-child marks). The streaming fold driver writes into this
  /// store directly; shard merge and persistence are its methods.
  SummaryStore& summaries() { return store_; }
  const SummaryStore& summaries() const { return store_; }

  /// The learner the options resolve to, or null for an unknown name
  /// (inference then fails with the registered names listed).
  const Learner* learner() const { return learner_; }

  /// Parses and folds an XML document given as text (DOM path: the
  /// document tree is materialized, then folded).
  Status AddXml(std::string_view xml);

  /// Parses and folds an XML document through the streaming SAX path —
  /// no `XmlElement` tree is built; element words fold straight into the
  /// per-element summaries. Produces the same summaries (and therefore a
  /// byte-identical DTD) as `AddXml`. Corpus-scale callers that want
  /// cross-document word deduplication should hold a `StreamingFolder`
  /// instead; this per-call form dedups only within the document.
  Status AddXmlStreaming(std::string_view xml);

  /// Folds a parsed document.
  void AddDocument(const XmlDocument& doc);

  /// Directly folds words for one element (used by experiments).
  void AddWords(Symbol element, const std::vector<Word>& words);

  /// Merges another inferrer's retained summaries into this one,
  /// translating symbols between the two alphabets by name (Section 9
  /// "incremental computation": every summary is associative, so
  /// shard-local inferrers merge losslessly). Root counts, child marks,
  /// occurrence/attribute counts and per-element SOA/CRX summaries are
  /// summed; text samples are concatenated up to `max_text_samples`.
  /// `other` must not alias this.
  void MergeFrom(const DtdInferrer& other);

  /// Runs the configured learner per element and assembles a DTD. The
  /// root is the unique root observed across documents (or the one root
  /// that is never a child). Elements are fully independent, so with
  /// `num_threads` > 1 the per-element learner calls run on that many
  /// threads (the inferrer itself is only read); the assembled DTD is
  /// identical to the sequential result.
  Result<Dtd> InferDtd(int num_threads = 1) const;

  /// Content model for a single element (EMPTY/#PCDATA/mixed detection
  /// plus the learned RE).
  Result<ContentModel> InferContentModel(Symbol element) const;

  /// DTD plus per-element numeric/datatype extras rendered as an XSD
  /// (Section 9, "Generation of XSDs" + "Numerical predicates").
  /// `num_threads` is forwarded to InferDtd.
  Result<std::string> InferXsd(bool numeric_predicates = true,
                               int num_threads = 1) const;

  /// Number of element occurrences folded for `element`.
  int64_t WordCount(Symbol element) const;

  /// All elements observed so far, ascending.
  std::vector<Symbol> Elements() const;

  /// Serializes the retained summaries into the versioned line-based
  /// text format (see docs/STATE_FORMAT.md), realizing Section 9's
  /// "store the internal graph representation and forget the XML data".
  /// Symbol references are by name, so states can be restored in a
  /// fresh process.
  std::string SaveState() const;

  /// Merges a previously saved state into this inferrer. Safe to call
  /// on a non-empty inferrer (supports merging shards); document text
  /// samples for the XSD datatype heuristic are preserved. Accepts the
  /// current format and the pre-reservoir version 1.
  Status LoadState(std::string_view serialized);

 private:
  Result<ReRef> LearnRegex(const ElementSummary& summary) const;

  InferenceOptions options_;
  LearnOptions learn_options_;
  const Learner* learner_;
  Alphabet alphabet_;
  SummaryStore store_;
};

}  // namespace condtd

#endif  // CONDTD_INFER_INFERRER_H_
