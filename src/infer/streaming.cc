#include "infer/streaming.h"

#include <string>
#include <utility>

#include "base/strings.h"
#include "obs/metrics.h"
#include "xml/sax.h"

namespace condtd {

size_t StreamingFolder::WordKeyHash::Mix(Symbol element, const Word& word) {
  // FNV-ish mix over the element id and the child symbols.
  size_t h = 0xcbf29ce484222325ull ^ static_cast<size_t>(element);
  for (Symbol s : word) {
    h ^= static_cast<size_t>(s) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

StreamingFolder::StreamingFolder(DtdInferrer* inferrer)
    : StreamingFolder(inferrer, Options()) {}

StreamingFolder::StreamingFolder(DtdInferrer* inferrer, Options options)
    : inferrer_(inferrer),
      store_(&inferrer->summaries()),
      options_(options) {}

StreamingFolder::~StreamingFolder() { Flush(); }

ElementSummary* StreamingFolder::FindState(Symbol symbol) {
  size_t index = static_cast<size_t>(symbol);
  if (index >= state_cache_.size()) state_cache_.resize(index + 1, nullptr);
  ElementSummary*& entry = state_cache_[index];
  if (entry == nullptr) entry = store_->Find(symbol);
  return entry;
}

ElementSummary& StreamingFolder::EnsureState(Symbol symbol) {
  if (ElementSummary* entry = FindState(symbol)) return *entry;
  ElementSummary& summary = store_->Ensure(symbol);
  state_cache_[static_cast<size_t>(symbol)] = &summary;
  return summary;
}

StreamingFolder::Frame& StreamingFolder::PushFrame(Symbol symbol) {
  if (depth_ == stack_.size()) stack_.emplace_back();
  Frame& frame = stack_[depth_++];
  frame.symbol = symbol;
  frame.word.clear();
  frame.text.clear();
  frame.has_text = false;
  frame.collect_text = false;
  frame.attr_first = static_cast<uint32_t>(attr_keys_.size());
  frame.attr_count = 0;
  return frame;
}

void StreamingFolder::HandleText(std::string_view text) {
  Frame& frame = stack_[depth_ - 1];
  if (!frame.has_text) {
    frame.has_text = true;
    // Collect the sample text only while the element is still under its
    // committed-sample cap; a document in flight may overshoot by a few
    // (the cap is re-checked at commit), which only wastes the copies.
    const ElementSummary* summary = FindState(frame.symbol);
    int existing = summary == nullptr
                       ? 0
                       : static_cast<int>(summary->text_samples.size());
    frame.collect_text = existing < store_->limits().max_text_samples;
  }
  if (frame.collect_text) frame.text.append(text);
}

void StreamingFolder::CompleteTop() {
  Frame& frame = stack_[depth_ - 1];
  ++words_folded_;
  obs::CounterAdd(obs::Counter::kWordsFolded, 1);
  if (options_.dedup_words) {
    Completed record;
    record.symbol = frame.symbol;
    record.has_text = frame.has_text;
    record.attr_first = frame.attr_first;
    record.attr_count = frame.attr_count;
    if (frame.has_text && frame.collect_text) {
      record.has_sample = true;
      record.sample_index = static_cast<uint32_t>(doc_samples_.size());
      doc_samples_.push_back(arena_.Copy(StripWhitespace(frame.text)));
    }
    completed_.push_back(record);
    auto it = cache_.find(WordKeyRef{frame.symbol, &frame.word});
    if (it == cache_.end()) {
      it = cache_.emplace(WordKey{frame.symbol, std::move(frame.word)}, 0)
               .first;
      obs::SchedAdd(obs::SchedCounter::kDedupMisses, 1);
    } else {
      obs::SchedAdd(obs::SchedCounter::kDedupHits, 1);
    }
    ++it->second;
    word_journal_.push_back(&it->second);
  } else {
    // Eager mode (benchmark baseline): fold and account immediately.
    ElementSummary& summary = EnsureState(frame.symbol);
    ++summary.occurrences;
    if (frame.has_text) {
      summary.has_text = true;
      summary.AddTextSample(std::string(StripWhitespace(frame.text)),
                            store_->limits());
    }
    for (uint32_t a = 0; a < frame.attr_count; ++a) {
      std::string_view key = attr_keys_[frame.attr_first + a];
      auto it = summary.attribute_counts.find(key);
      if (it == summary.attribute_counts.end()) {
        it = summary.attribute_counts.emplace(std::string(key), 0).first;
      }
      ++it->second;
    }
    summary.AddChildWord(frame.word, 1, store_->limits());
    for (Symbol s : frame.word) store_->MarkSeenAsChild(s);
  }
  --depth_;
}

void StreamingFolder::CommitDocument() {
  obs::StageSpan span(obs::Stage::kDedupCommit);
  store_->AddRoot(root_symbol_);
  ++documents_folded_;
  obs::CounterAdd(obs::Counter::kDocumentsIngested, 1);
  if (options_.dedup_words) {
    for (const Completed& record : completed_) {
      ElementSummary& summary = EnsureState(record.symbol);
      ++summary.occurrences;
      if (record.has_text) summary.has_text = true;
      if (record.has_sample) {
        summary.AddTextSample(
            std::string(doc_samples_[record.sample_index]),
            store_->limits());
      }
      for (uint32_t a = 0; a < record.attr_count; ++a) {
        std::string_view key = attr_keys_[record.attr_first + a];
        auto it = summary.attribute_counts.find(key);
        if (it == summary.attribute_counts.end()) {
          it = summary.attribute_counts.emplace(std::string(key), 0).first;
        }
        ++it->second;
      }
    }
    for (Symbol s : doc_new_children_) store_->MarkSeenAsChild(s);
    // The cache increments are already in place; committing just retires
    // the rollback journal (ResetDocument must not undo them).
    word_journal_.clear();
    obs::GaugeMax(obs::Gauge::kDedupCachePeak,
                  static_cast<int64_t>(cache_.size()));
    if (cache_.size() >= options_.max_distinct_words) Flush();
  }
  ResetDocument();
}

void StreamingFolder::ResetDocument() {
  // Roll back this document's cache increments (no-op after a commit,
  // which clears the journal first). Zero-count entries stay resident —
  // Flush() skips them — so no erase is needed here.
  for (int64_t* count : word_journal_) --*count;
  word_journal_.clear();
  depth_ = 0;
  root_symbol_ = kInvalidSymbol;
  root_seen_ = false;
  completed_.clear();
  attr_keys_.clear();
  doc_samples_.clear();
  obs::GaugeMax(obs::Gauge::kArenaBytesPeak,
                static_cast<int64_t>(arena_.footprint()));
  arena_.Reset();
  doc_new_children_.clear();
}

void StreamingFolder::FoldWeighted(Symbol element, const Word& word,
                                   int64_t count) {
  EnsureState(element).AddChildWord(word, count, store_->limits());
  ++weighted_folds_;
}

void StreamingFolder::Flush() {
  if (!cache_.empty()) {
    obs::SchedAdd(obs::SchedCounter::kDedupFlushes, 1);
  }
  for (const auto& [key, count] : cache_) {
    // Zero-count entries are rolled-back first occurrences from a failed
    // document; folding them would create an ElementSummary the DOM path
    // never would.
    if (count <= 0) continue;
    FoldWeighted(key.element, key.word, count);
    obs::SchedAdd(obs::SchedCounter::kWeightedFoldOps, 1);
  }
  cache_.clear();
}

Status StreamingFolder::AddXml(std::string_view xml) {
  obs::StageSpan lex_span(obs::Stage::kLexParse);
  obs::CounterAdd(obs::Counter::kBytesIngested,
                  static_cast<int64_t>(xml.size()));
  const bool lenient = inferrer_->options().lenient_xml;
  ResetDocument();
  lexer_.Reset(xml);
  Alphabet* alphabet = inferrer_->alphabet();
  // Error paths below reset the document so nothing half-folded leaks
  // into the inferrer (dedup mode is fully transactional; see header).
  auto fail = [&](std::string message) {
    ResetDocument();
    obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
    return Status::ParseError(std::move(message));
  };

  while (true) {
    Result<SaxEvent> next = lexer_.Next();
    if (!next.ok()) {
      ResetDocument();
      obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
      return next.status();  // lexical errors fail even in lenient mode
    }
    const SaxEvent& event = next.value();
    switch (event.kind) {
      case SaxEventKind::kEof: {
        if (depth_ > 0) {
          if (!lenient) {
            return fail("unexpected end of document inside <" +
                        alphabet->Name(stack_[depth_ - 1].symbol) + ">");
          }
          while (depth_ > 0) CompleteTop();
        }
        if (!root_seen_) return fail("document has no root element");
        CommitDocument();
        return Status::OK();
      }
      case SaxEventKind::kDoctype:
        if (!lenient && (root_seen_ || depth_ > 0)) {
          return fail("DOCTYPE after the root element");
        }
        break;
      case SaxEventKind::kText:
        if (depth_ == 0) {
          if (lenient) break;  // dropped, as the DOM recovery does
          return fail("character data outside the root element at offset " +
                      std::to_string(event.offset));
        }
        HandleText(event.text);
        break;
      case SaxEventKind::kStartElement: {
        if (depth_ == 0 && root_seen_) {
          // Matching the DOM paths: strict rejects a second root; lenient
          // drops content after the root without interning its name.
          if (!lenient) {
            return fail("multiple root elements (<" +
                        std::string(event.name) + ">)");
          }
          break;
        }
        Symbol symbol = alphabet->Intern(event.name);
        if (depth_ == 0) {
          root_symbol_ = symbol;
          root_seen_ = true;
        } else {
          stack_[depth_ - 1].word.push_back(symbol);
          if (options_.dedup_words && !store_->SeenAsChild(symbol)) {
            doc_new_children_.push_back(symbol);
          }
        }
        Frame& frame = PushFrame(symbol);
        if (inferrer_->options().infer_attributes) {
          for (const SaxAttribute& attr : lexer_.attributes()) {
            attr_keys_.push_back(attr.key);
            ++frame.attr_count;
          }
        }
        if (event.self_closing) CompleteTop();
        break;
      }
      case SaxEventKind::kEndElement: {
        if (!lenient) {
          if (depth_ == 0) {
            return fail("stray closing tag </" + std::string(event.name) +
                        ">");
          }
          const std::string& open = alphabet->Name(stack_[depth_ - 1].symbol);
          if (open != event.name) {
            return fail("mismatched closing tag </" +
                        std::string(event.name) + ">; expected </" + open +
                        ">");
          }
          CompleteTop();
          break;
        }
        // Lenient recovery: close down to the nearest matching open
        // element; drop the tag when nothing matches.
        int match = -1;
        for (int i = static_cast<int>(depth_) - 1; i >= 0; --i) {
          if (alphabet->Name(stack_[i].symbol) == event.name) {
            match = i;
            break;
          }
        }
        if (match < 0) break;
        while (static_cast<int>(depth_) > match) CompleteTop();
        break;
      }
    }
  }
}

}  // namespace condtd
