#include "infer/streaming.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "base/strings.h"
#include "obs/metrics.h"
#include "xml/sax.h"

namespace condtd {

namespace {

/// CONDTD_LEGACY_DEDUP selects the pre-rebuild unordered_map dedup cache
/// (the differential oracle). Any non-empty value other than "0" counts.
bool LegacyDedupFromEnv() {
  const char* env = std::getenv("CONDTD_LEGACY_DEDUP");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

StreamingFolder::StreamingFolder(DtdInferrer* inferrer)
    : StreamingFolder(inferrer, Options()) {}

StreamingFolder::StreamingFolder(DtdInferrer* inferrer, Options options)
    : inferrer_(inferrer),
      store_(&inferrer->summaries()),
      options_(options) {
  if (!options_.ignore_dedup_env && !options_.legacy_dedup_cache &&
      LegacyDedupFromEnv()) {
    options_.legacy_dedup_cache = true;
  }
}

StreamingFolder::~StreamingFolder() { Flush(); }

size_t StreamingFolder::cache_bytes_resident() const {
  if (!options_.legacy_dedup_cache) return cache_.bytes_resident();
  // Structural estimate for the legacy node-based map: one heap node per
  // entry (key + value + two node pointers of bucket bookkeeping), the
  // bucket array, and each key's Word heap buffer.
  size_t bytes = legacy_cache_.bucket_count() * sizeof(void*);
  for (const auto& [key, count] : legacy_cache_) {
    bytes += sizeof(WordKey) + sizeof(int64_t) + 2 * sizeof(void*) +
             key.word.capacity() * sizeof(Symbol);
  }
  return bytes;
}

ElementSummary* StreamingFolder::FindState(Symbol symbol) {
  size_t index = static_cast<size_t>(symbol);
  if (index >= state_cache_.size()) state_cache_.resize(index + 1, nullptr);
  ElementSummary*& entry = state_cache_[index];
  if (entry == nullptr) entry = store_->Find(symbol);
  return entry;
}

ElementSummary& StreamingFolder::EnsureState(Symbol symbol) {
  if (ElementSummary* entry = FindState(symbol)) return *entry;
  ElementSummary& summary = store_->Ensure(symbol);
  state_cache_[static_cast<size_t>(symbol)] = &summary;
  return summary;
}

StreamingFolder::Frame& StreamingFolder::PushFrame(Symbol symbol) {
  if (depth_ == stack_.size()) stack_.emplace_back();
  Frame& frame = stack_[depth_++];
  frame.symbol = symbol;
  frame.word.clear();
  frame.word_hash = WordHash::Seed(symbol);
  frame.text.clear();
  frame.has_text = false;
  frame.collect_text = false;
  frame.attr_first = static_cast<uint32_t>(attr_keys_.size());
  frame.attr_count = 0;
  return frame;
}

void StreamingFolder::HandleText(std::string_view text) {
  Frame& frame = stack_[depth_ - 1];
  if (!frame.has_text) {
    frame.has_text = true;
    // Collect the sample text only while the element is still under its
    // committed-sample cap; a document in flight may overshoot by a few
    // (the cap is re-checked at commit), which only wastes the copies.
    const ElementSummary* summary = FindState(frame.symbol);
    int existing = summary == nullptr
                       ? 0
                       : static_cast<int>(summary->text_samples.size());
    frame.collect_text = existing < store_->limits().max_text_samples;
  }
  if (frame.collect_text) frame.text.append(text);
}

void StreamingFolder::CompleteTop() {
  Frame& frame = stack_[depth_ - 1];
  ++words_folded_;
  obs::CounterAdd(obs::Counter::kWordsFolded, 1);
  if (options_.dedup_words) {
    // Dense per-document occurrence aggregation: sum occurrences and
    // has_text per symbol; only samples and attribute-bearing
    // occurrences stage a per-occurrence record.
    const size_t idx = static_cast<size_t>(frame.symbol);
    if (idx >= doc_occurrences_.size()) {
      doc_occurrences_.resize(idx + 1, 0);
      doc_has_text_.resize(idx + 1, 0);
    }
    if (doc_occurrences_[idx]++ == 0) doc_touched_.push_back(frame.symbol);
    if (frame.has_text) {
      doc_has_text_[idx] = 1;
      if (frame.collect_text) {
        doc_sample_records_.push_back(
            {frame.symbol, static_cast<uint32_t>(doc_samples_.size())});
        doc_samples_.push_back(arena_.Copy(StripWhitespace(frame.text)));
      }
    }
    if (frame.attr_count > 0) {
      doc_attr_records_.push_back(
          {frame.symbol, frame.attr_first, frame.attr_count});
    }
    if (!options_.legacy_dedup_cache) {
      // The frame's hash was built incrementally as children appended,
      // so the commit is one probe — no re-walk of the word.
      FlatWordCache::Upserted result =
          cache_.Upsert(frame.word_hash, frame.symbol, frame.word.data(),
                        static_cast<uint32_t>(frame.word.size()));
      if (result.inserted) {
        ++dedup_misses_;
        obs::SchedAdd(obs::SchedCounter::kDedupMisses, 1);
      } else {
        ++dedup_hits_;
        obs::SchedAdd(obs::SchedCounter::kDedupHits, 1);
      }
      ++cache_.entry(result.index).count;
      word_journal_.push_back(result.index);
    } else {
      auto it = legacy_cache_.find(WordKeyRef{frame.symbol, &frame.word});
      if (it == legacy_cache_.end()) {
        it = legacy_cache_
                 .emplace(WordKey{frame.symbol, std::move(frame.word)}, 0)
                 .first;
        legacy_flush_order_.push_back(&*it);
        ++dedup_misses_;
        obs::SchedAdd(obs::SchedCounter::kDedupMisses, 1);
      } else {
        ++dedup_hits_;
        obs::SchedAdd(obs::SchedCounter::kDedupHits, 1);
      }
      ++it->second;
      legacy_word_journal_.push_back(&it->second);
    }
  } else {
    // Eager mode (benchmark baseline): fold and account immediately.
    ElementSummary& summary = EnsureState(frame.symbol);
    ++summary.occurrences;
    if (frame.has_text) {
      summary.has_text = true;
      summary.AddTextSample(std::string(StripWhitespace(frame.text)),
                            store_->limits());
    }
    for (uint32_t a = 0; a < frame.attr_count; ++a) {
      std::string_view key = attr_keys_[frame.attr_first + a];
      auto it = summary.attribute_counts.find(key);
      if (it == summary.attribute_counts.end()) {
        it = summary.attribute_counts.emplace(std::string(key), 0).first;
      }
      ++it->second;
    }
    summary.AddChildWord(frame.word, 1, store_->limits());
    for (Symbol s : frame.word) store_->MarkSeenAsChild(s);
  }
  --depth_;
}

void StreamingFolder::CommitDocument() {
  obs::StageSpan span(obs::Stage::kDedupCommit);
  store_->AddRoot(root_symbol_);
  ++documents_folded_;
  obs::CounterAdd(obs::Counter::kDocumentsIngested, 1);
  if (options_.dedup_words) {
    // One store touch per distinct symbol this document, not one per
    // occurrence; occurrence sums and has_text are order-insensitive.
    for (Symbol s : doc_touched_) {
      const size_t idx = static_cast<size_t>(s);
      ElementSummary& summary = EnsureState(s);
      summary.occurrences += doc_occurrences_[idx];
      if (doc_has_text_[idx] != 0) summary.has_text = true;
    }
    // Samples keep per-occurrence records applied in end-tag order — the
    // same order the per-record commit loop used, so retention under the
    // cap is unchanged.
    for (const SampleRecord& record : doc_sample_records_) {
      EnsureState(record.symbol)
          .AddTextSample(std::string(doc_samples_[record.sample_index]),
                         store_->limits());
    }
    for (const AttrRecord& record : doc_attr_records_) {
      ElementSummary& summary = EnsureState(record.symbol);
      for (uint32_t a = 0; a < record.attr_count; ++a) {
        std::string_view key = attr_keys_[record.attr_first + a];
        auto it = summary.attribute_counts.find(key);
        if (it == summary.attribute_counts.end()) {
          it = summary.attribute_counts.emplace(std::string(key), 0).first;
        }
        ++it->second;
      }
    }
    for (Symbol s : doc_new_children_) store_->MarkSeenAsChild(s);
    // The cache increments are already in place; committing just retires
    // the rollback journal (ResetDocument must not undo them).
    word_journal_.clear();
    legacy_word_journal_.clear();
    obs::GaugeMax(obs::Gauge::kDedupCachePeak, distinct_words_cached());
    if (obs::StatsEnabled()) {
      obs::GaugeMax(obs::Gauge::kDedupCacheBytesPeak,
                    static_cast<int64_t>(cache_bytes_resident()));
      if (!options_.legacy_dedup_cache) {
        obs::SchedAdd(obs::SchedCounter::kDedupProbeSteps,
                      cache_.probe_steps() - probe_steps_published_);
        probe_steps_published_ = cache_.probe_steps();
      }
    }
    if (static_cast<size_t>(distinct_words_cached()) >=
        options_.max_distinct_words) {
      Flush();
    }
  }
  ResetDocument();
}

void StreamingFolder::ResetDocument() {
  // Roll back this document's cache increments (no-op after a commit,
  // which clears the journal first). Zero-count entries stay resident —
  // Flush() skips them — so no erase is needed here.
  for (uint32_t index : word_journal_) --cache_.entry(index).count;
  word_journal_.clear();
  for (int64_t* count : legacy_word_journal_) --*count;
  legacy_word_journal_.clear();
  depth_ = 0;
  root_symbol_ = kInvalidSymbol;
  root_seen_ = false;
  for (Symbol s : doc_touched_) {
    doc_occurrences_[static_cast<size_t>(s)] = 0;
    doc_has_text_[static_cast<size_t>(s)] = 0;
  }
  doc_touched_.clear();
  doc_sample_records_.clear();
  doc_attr_records_.clear();
  attr_keys_.clear();
  doc_samples_.clear();
  obs::GaugeMax(obs::Gauge::kArenaBytesPeak,
                static_cast<int64_t>(arena_.footprint()));
  arena_.Reset();
  doc_new_children_.clear();
}

void StreamingFolder::FoldWeighted(Symbol element, const Word& word,
                                   int64_t count) {
  EnsureState(element).AddChildWord(word, count, store_->limits());
  ++weighted_folds_;
}

void StreamingFolder::Flush() {
  if (!options_.legacy_dedup_cache) {
    if (cache_.empty()) return;
    ++dedup_flushes_;
    obs::SchedAdd(obs::SchedCounter::kDedupFlushes, 1);
    // Entries iterate in insertion order == first-occurrence order ==
    // the order the DOM path first folds each distinct word, keeping SOA
    // state numbering (and SaveState text) pinned to the DOM path.
    for (const FlatWordCache::Entry& entry : cache_.entries()) {
      // Zero-count entries are rolled-back first occurrences from a
      // failed document; folding them would create an ElementSummary the
      // DOM path never would.
      if (entry.count <= 0) continue;
      flush_word_.assign(entry.word, entry.word + entry.length);
      FoldWeighted(entry.element, flush_word_, entry.count);
      obs::SchedAdd(obs::SchedCounter::kWeightedFoldOps, 1);
    }
    cache_.Clear();
    return;
  }
  if (legacy_cache_.empty()) return;
  ++dedup_flushes_;
  obs::SchedAdd(obs::SchedCounter::kDedupFlushes, 1);
  // First-occurrence order, matching the flat cache and the DOM path.
  for (const WordCounts::value_type* entry : legacy_flush_order_) {
    if (entry->second <= 0) continue;
    FoldWeighted(entry->first.element, entry->first.word, entry->second);
    obs::SchedAdd(obs::SchedCounter::kWeightedFoldOps, 1);
  }
  legacy_cache_.clear();
  legacy_flush_order_.clear();
}

Status StreamingFolder::AddXml(std::string_view xml) {
  obs::StageSpan lex_span(obs::Stage::kLexParse);
  obs::CounterAdd(obs::Counter::kBytesIngested,
                  static_cast<int64_t>(xml.size()));
  const bool lenient = inferrer_->options().lenient_xml;
  ResetDocument();
  lexer_.Reset(xml);
  Alphabet* alphabet = inferrer_->alphabet();
  // Error paths below reset the document so nothing half-folded leaks
  // into the inferrer (dedup mode is fully transactional; see header).
  auto fail = [&](std::string message) {
    ResetDocument();
    obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
    return Status::ParseError(std::move(message));
  };

  while (true) {
    Result<SaxEvent> next = lexer_.Next();
    if (!next.ok()) {
      ResetDocument();
      obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
      return next.status();  // lexical errors fail even in lenient mode
    }
    const SaxEvent& event = next.value();
    switch (event.kind) {
      case SaxEventKind::kEof: {
        if (depth_ > 0) {
          if (!lenient) {
            return fail("unexpected end of document inside <" +
                        alphabet->Name(stack_[depth_ - 1].symbol) + ">");
          }
          while (depth_ > 0) CompleteTop();
        }
        if (!root_seen_) return fail("document has no root element");
        CommitDocument();
        return Status::OK();
      }
      case SaxEventKind::kDoctype:
        if (!lenient && (root_seen_ || depth_ > 0)) {
          return fail("DOCTYPE after the root element");
        }
        break;
      case SaxEventKind::kText:
        if (depth_ == 0) {
          if (lenient) break;  // dropped, as the DOM recovery does
          return fail("character data outside the root element at offset " +
                      std::to_string(event.offset));
        }
        HandleText(event.text);
        break;
      case SaxEventKind::kStartElement: {
        if (depth_ == 0 && root_seen_) {
          // Matching the DOM paths: strict rejects a second root; lenient
          // drops content after the root without interning its name.
          if (!lenient) {
            return fail("multiple root elements (<" +
                        std::string(event.name) + ">)");
          }
          break;
        }
        Symbol symbol = alphabet->Intern(event.name);
        if (depth_ == 0) {
          root_symbol_ = symbol;
          root_seen_ = true;
        } else {
          Frame& parent = stack_[depth_ - 1];
          parent.word.push_back(symbol);
          parent.word_hash = WordHash::Step(parent.word_hash, symbol);
          if (options_.dedup_words && !store_->SeenAsChild(symbol)) {
            doc_new_children_.push_back(symbol);
          }
        }
        Frame& frame = PushFrame(symbol);
        if (inferrer_->options().infer_attributes) {
          for (const SaxAttribute& attr : lexer_.attributes()) {
            attr_keys_.push_back(attr.key);
            ++frame.attr_count;
          }
        }
        if (event.self_closing) CompleteTop();
        break;
      }
      case SaxEventKind::kEndElement: {
        if (!lenient) {
          if (depth_ == 0) {
            return fail("stray closing tag </" + std::string(event.name) +
                        ">");
          }
          const std::string& open = alphabet->Name(stack_[depth_ - 1].symbol);
          if (open != event.name) {
            return fail("mismatched closing tag </" +
                        std::string(event.name) + ">; expected </" + open +
                        ">");
          }
          CompleteTop();
          break;
        }
        // Lenient recovery: close down to the nearest matching open
        // element; drop the tag when nothing matches.
        int match = -1;
        for (int i = static_cast<int>(depth_) - 1; i >= 0; --i) {
          if (alphabet->Name(stack_[i].symbol) == event.name) {
            match = i;
            break;
          }
        }
        if (match < 0) break;
        while (static_cast<int>(depth_) > match) CompleteTop();
        break;
      }
    }
  }
}

}  // namespace condtd
