#ifndef CONDTD_INFER_STREAMING_H_
#define CONDTD_INFER_STREAMING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alphabet/alphabet.h"
#include "base/arena.h"
#include "base/status.h"
#include "infer/inferrer.h"
#include "infer/summary.h"
#include "infer/word_cache.h"
#include "xml/sax.h"

namespace condtd {

/// Streaming fold driver: parses XML with the zero-copy `SaxLexer` and
/// folds each element the moment its end tag is seen into the owning
/// `DtdInferrer`'s SummaryStore — no `XmlElement` tree, no per-node
/// allocation. An explicit stack of open frames accumulates each
/// element's child-`Symbol` word (names interned directly into the
/// inferrer's alphabet, in start-tag order — the same order the DOM path
/// interns in, which is what keeps the two paths byte-identical);
/// attribute and text handling is reduced to the counts and capped
/// samples the summaries actually retain. Strict or tag-soup-lenient
/// parsing follows the inferrer's `lenient_xml` option.
///
/// Word-multiset deduplication (`Options::dedup_words`, on by default):
/// real corpora repeat the same child sequence thousands of times, so
/// completed words are hash-consed into a multiplicity cache and applied
/// as weighted folds (`ElementSummary::AddChildWord` with a count)
/// instead of being replayed — `Flush()` (idempotent, also run by the
/// destructor) drains the cache, and must happen before the inferrer's
/// summaries are read. The weighted folds are exact, so flush timing
/// never changes the inferred DTD.
///
/// The dedup cache is a `FlatWordCache` (open addressing, arena-backed
/// keys); each open frame carries a running `WordHash` updated as child
/// symbols append, so the end-tag commit is a single table probe with no
/// full-word rehash. The previous `std::unordered_map` cache is retained
/// for one release as a differential oracle behind
/// `Options::legacy_dedup_cache` / the `CONDTD_LEGACY_DEDUP` environment
/// variable; both produce byte-identical DTDs and SaveState text.
///
/// Document transactionality: with dedup on, a document that fails to
/// parse contributes nothing to the summaries (matching the DOM path's
/// parse-then-fold behavior); only alphabet interning of names seen
/// before the error persists, which cannot affect any all-clean corpus.
/// With dedup off, words fold eagerly per end tag, so a failed document
/// may leave its completed elements behind — that mode exists for
/// benchmarking the dedup contribution.
///
/// Text-sample caveat (same as ParallelDtdInferrer's): which capped text
/// snippets are retained can differ from the DOM path (samples are taken
/// in end-tag rather than start-tag order), so XSD datatype picks may
/// differ on heterogeneous text; the inferred DTD never does.
class StreamingFolder {
 public:
  struct Options {
    /// Hash-cons completed words and fold them weighted at Flush().
    bool dedup_words = true;
    /// Flush the dedup cache early when it holds this many distinct
    /// (element, word) pairs — bounds memory on adversarial corpora
    /// where words never repeat.
    size_t max_distinct_words = 1u << 20;
    /// Use the pre-rebuild `std::unordered_map` dedup cache instead of
    /// the flat table. Kept one release as the differential oracle; also
    /// enabled by setting `CONDTD_LEGACY_DEDUP` in the environment.
    bool legacy_dedup_cache = false;
    /// Take `legacy_dedup_cache` as-is and ignore CONDTD_LEGACY_DEDUP.
    /// The differential oracle pins each cache explicitly and must not
    /// have the environment flip its flat run to legacy.
    bool ignore_dedup_env = false;
  };

  explicit StreamingFolder(DtdInferrer* inferrer);
  StreamingFolder(DtdInferrer* inferrer, Options options);
  ~StreamingFolder();

  StreamingFolder(const StreamingFolder&) = delete;
  StreamingFolder& operator=(const StreamingFolder&) = delete;

  /// Parses and folds one document (strict or lenient per the owning
  /// inferrer's options). On error the document's summaries are
  /// discarded (see class comment for the dedup-off caveat).
  Status AddXml(std::string_view xml);

  /// Applies all cached weighted folds to the summaries. Idempotent.
  /// Must be called (or the folder destroyed) before the inferrer's
  /// summaries are read.
  void Flush();

  /// Abandons the document currently in flight (if any): rolls back its
  /// dedup-cache increments and clears the open-frame stack, exactly as
  /// a parse failure would. For callers that interrupt `AddXml` from the
  /// outside — the parallel worker pool calls this after containing an
  /// exception thrown mid-ingestion, so the failed document cannot leak
  /// half-folded words into the shard at the next Flush().
  void AbortDocument() { ResetDocument(); }

  /// Ingestion counters (for benchmarks and tests).
  int64_t documents_folded() const { return documents_folded_; }
  int64_t words_folded() const { return words_folded_; }
  int64_t weighted_folds_applied() const { return weighted_folds_; }
  int64_t distinct_words_cached() const {
    return options_.legacy_dedup_cache
               ? static_cast<int64_t>(legacy_cache_.size())
               : static_cast<int64_t>(cache_.size());
  }
  int64_t dedup_hits() const { return dedup_hits_; }
  int64_t dedup_misses() const { return dedup_misses_; }
  int64_t dedup_flushes() const { return dedup_flushes_; }
  /// Bytes resident in the dedup cache (keys + arena blocks + table).
  /// The legacy-map figure is a structural estimate (node and bucket
  /// overhead plus key payload); the flat-cache figure is exact.
  size_t cache_bytes_resident() const;
  /// True when this folder runs the legacy unordered_map oracle cache
  /// (via Options or CONDTD_LEGACY_DEDUP).
  bool using_legacy_cache() const { return options_.legacy_dedup_cache; }

 private:
  /// An open element: accumulates the child word — and, incrementally,
  /// its dedup hash — plus the text the summaries will retain. Frames
  /// are pooled (depth_ marks the live prefix of stack_) so their
  /// Word/string capacity is reused across elements and documents.
  struct Frame {
    Symbol symbol = kInvalidSymbol;
    Word word;
    /// Running WordHash of (symbol, word): seeded at PushFrame, stepped
    /// per appended child, equal to WordHash::Mix at the end tag.
    uint64_t word_hash = 0;
    std::string text;
    bool has_text = false;
    bool collect_text = false;
    uint32_t attr_first = 0;
    uint32_t attr_count = 0;
  };

  /// A staged text sample for this document (end-tag order, matching the
  /// order the commit loop used to add them one Completed record at a
  /// time).
  struct SampleRecord {
    Symbol symbol = kInvalidSymbol;
    uint32_t sample_index = 0;
  };
  /// An attribute-bearing occurrence; kept separately so the commit loop
  /// only visits occurrences that actually carried attributes.
  struct AttrRecord {
    Symbol symbol = kInvalidSymbol;
    uint32_t attr_first = 0;
    uint32_t attr_count = 0;
  };

  // ---- Legacy oracle cache (CONDTD_LEGACY_DEDUP; one release) -------
  struct WordKey {
    Symbol element;
    Word word;
  };
  /// Borrowed key for heterogeneous lookup (no Word copy per probe).
  struct WordKeyRef {
    Symbol element;
    const Word* word;
  };
  struct WordKeyHash {
    using is_transparent = void;
    static size_t Mix(Symbol element, const Word& word) {
      return WordHash::Mix(element, word.data(), word.size());
    }
    size_t operator()(const WordKey& key) const {
      return Mix(key.element, key.word);
    }
    size_t operator()(const WordKeyRef& key) const {
      return Mix(key.element, *key.word);
    }
  };
  struct WordKeyEq {
    using is_transparent = void;
    bool operator()(const WordKey& a, const WordKey& b) const {
      return a.element == b.element && a.word == b.word;
    }
    bool operator()(const WordKeyRef& a, const WordKey& b) const {
      return a.element == b.element && *a.word == b.word;
    }
    bool operator()(const WordKey& a, const WordKeyRef& b) const {
      return a.element == b.element && a.word == *b.word;
    }
  };
  using WordCounts =
      std::unordered_map<WordKey, int64_t, WordKeyHash, WordKeyEq>;
  /// Legacy-cache entries in first-occurrence order (map nodes are
  /// pointer-stable). The map alone iterates in hash order, which would
  /// fold flushed words in a different order than the flat cache and the
  /// DOM path — the DTD would still match, but SaveState (SOA state
  /// insertion order) would not, and the whole point of keeping the
  /// legacy cache is byte-level differential comparison.
  std::vector<const WordCounts::value_type*> legacy_flush_order_;

  /// Dense symbol-indexed cache of store entries, lazily filled — the
  /// fold hot path does one per-occurrence lookup here instead of a
  /// `std::map` search. Returns null while the element has no summary
  /// yet (Find never creates one: dedup-mode transactionality requires
  /// that a failed document leaves the store untouched). Map nodes are
  /// pointer-stable, so cached entries stay valid across inserts.
  ElementSummary* FindState(Symbol symbol);
  /// As FindState but creates (and caches) the entry — commit/eager
  /// paths only.
  ElementSummary& EnsureState(Symbol symbol);

  Frame& PushFrame(Symbol symbol);
  void HandleText(std::string_view text);
  /// Closes the innermost open element: records its word and stats.
  void CompleteTop();
  void CommitDocument();
  void ResetDocument();
  void FoldWeighted(Symbol element, const Word& word, int64_t count);

  DtdInferrer* inferrer_;
  SummaryStore* store_;
  Options options_;

  // Document-scoped state (reset per AddXml).
  std::vector<Frame> stack_;
  size_t depth_ = 0;
  Symbol root_symbol_ = kInvalidSymbol;
  bool root_seen_ = false;
  std::vector<std::string_view> attr_keys_;  // views into the document
  /// Whitespace-stripped text samples staged this document — views into
  /// arena_, promoted to owned strings only for the few the summaries
  /// actually retain at commit.
  std::vector<std::string_view> doc_samples_;
  /// Bump storage for doc_samples_; rewound between documents so
  /// steady-state sample staging does no heap allocation.
  Arena arena_;
  /// Reused across documents (Reset keeps scratch capacity), so lexing
  /// a corpus performs no per-document allocation either.
  SaxLexer lexer_;
  /// Dense per-document occurrence aggregation: instead of one staged
  /// record per completed element (the commit loop then paying an
  /// EnsureState + increment per occurrence), occurrences and has_text
  /// are summed per symbol during the parse and committed once per
  /// distinct symbol. doc_touched_ lists the symbols with nonzero
  /// counts, in first-completion order; samples and attribute-bearing
  /// occurrences — the rare cases — keep per-occurrence records.
  std::vector<int64_t> doc_occurrences_;
  std::vector<uint8_t> doc_has_text_;
  std::vector<Symbol> doc_touched_;
  std::vector<SampleRecord> doc_sample_records_;
  std::vector<AttrRecord> doc_attr_records_;
  /// One entry per word folded this document. Flat cache: the stable
  /// entry index whose count it incremented. Legacy cache: a pointer to
  /// the unordered_map value (map nodes are pointer-stable). Cleared on
  /// commit; decremented back on parse failure — a rolled-back first
  /// occurrence leaves a zero-count cache entry behind, which Flush()
  /// skips (and which a later clean document can reuse).
  std::vector<uint32_t> word_journal_;
  std::vector<int64_t*> legacy_word_journal_;
  /// Child symbols first observed this document; the store's
  /// seen-as-child marks are applied only on commit.
  std::vector<Symbol> doc_new_children_;

  // Cross-document dedup cache. Completed words probe it directly with
  // the frame's incrementally built hash (one table probe per
  // occurrence, no rehash, no per-document staging map).
  FlatWordCache cache_;
  WordCounts legacy_cache_;  ///< oracle; see Options::legacy_dedup_cache
  std::vector<ElementSummary*> state_cache_;
  /// Scratch for Flush(): materializes each flat-cache entry's word once
  /// per flush without reallocating.
  Word flush_word_;

  int64_t documents_folded_ = 0;
  int64_t words_folded_ = 0;
  int64_t weighted_folds_ = 0;
  int64_t dedup_hits_ = 0;
  int64_t dedup_misses_ = 0;
  int64_t dedup_flushes_ = 0;
  /// probe_steps() already published to obs (delta reported per commit).
  int64_t probe_steps_published_ = 0;
};

}  // namespace condtd

#endif  // CONDTD_INFER_STREAMING_H_
