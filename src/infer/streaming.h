#ifndef CONDTD_INFER_STREAMING_H_
#define CONDTD_INFER_STREAMING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alphabet/alphabet.h"
#include "base/arena.h"
#include "base/status.h"
#include "infer/inferrer.h"
#include "infer/summary.h"
#include "xml/sax.h"

namespace condtd {

/// Streaming fold driver: parses XML with the zero-copy `SaxLexer` and
/// folds each element the moment its end tag is seen into the owning
/// `DtdInferrer`'s SummaryStore — no `XmlElement` tree, no per-node
/// allocation. An explicit stack of open frames accumulates each
/// element's child-`Symbol` word (names interned directly into the
/// inferrer's alphabet, in start-tag order — the same order the DOM path
/// interns in, which is what keeps the two paths byte-identical);
/// attribute and text handling is reduced to the counts and capped
/// samples the summaries actually retain. Strict or tag-soup-lenient
/// parsing follows the inferrer's `lenient_xml` option.
///
/// Word-multiset deduplication (`Options::dedup_words`, on by default):
/// real corpora repeat the same child sequence thousands of times, so
/// completed words are hash-consed into a multiplicity cache and applied
/// as weighted folds (`ElementSummary::AddChildWord` with a count)
/// instead of being replayed — `Flush()` (idempotent, also run by the
/// destructor) drains the cache, and must happen before the inferrer's
/// summaries are read. The weighted folds are exact, so flush timing
/// never changes the inferred DTD.
///
/// Document transactionality: with dedup on, a document that fails to
/// parse contributes nothing to the summaries (matching the DOM path's
/// parse-then-fold behavior); only alphabet interning of names seen
/// before the error persists, which cannot affect any all-clean corpus.
/// With dedup off, words fold eagerly per end tag, so a failed document
/// may leave its completed elements behind — that mode exists for
/// benchmarking the dedup contribution.
///
/// Text-sample caveat (same as ParallelDtdInferrer's): which capped text
/// snippets are retained can differ from the DOM path (samples are taken
/// in end-tag rather than start-tag order), so XSD datatype picks may
/// differ on heterogeneous text; the inferred DTD never does.
class StreamingFolder {
 public:
  struct Options {
    /// Hash-cons completed words and fold them weighted at Flush().
    bool dedup_words = true;
    /// Flush the dedup cache early when it holds this many distinct
    /// (element, word) pairs — bounds memory on adversarial corpora
    /// where words never repeat.
    size_t max_distinct_words = 1u << 20;
  };

  explicit StreamingFolder(DtdInferrer* inferrer);
  StreamingFolder(DtdInferrer* inferrer, Options options);
  ~StreamingFolder();

  StreamingFolder(const StreamingFolder&) = delete;
  StreamingFolder& operator=(const StreamingFolder&) = delete;

  /// Parses and folds one document (strict or lenient per the owning
  /// inferrer's options). On error the document's summaries are
  /// discarded (see class comment for the dedup-off caveat).
  Status AddXml(std::string_view xml);

  /// Applies all cached weighted folds to the summaries. Idempotent.
  /// Must be called (or the folder destroyed) before the inferrer's
  /// summaries are read.
  void Flush();

  /// Abandons the document currently in flight (if any): rolls back its
  /// dedup-cache increments and clears the open-frame stack, exactly as
  /// a parse failure would. For callers that interrupt `AddXml` from the
  /// outside — the parallel worker pool calls this after containing an
  /// exception thrown mid-ingestion, so the failed document cannot leak
  /// half-folded words into the shard at the next Flush().
  void AbortDocument() { ResetDocument(); }

  /// Ingestion counters (for benchmarks and tests).
  int64_t documents_folded() const { return documents_folded_; }
  int64_t words_folded() const { return words_folded_; }
  int64_t weighted_folds_applied() const { return weighted_folds_; }
  int64_t distinct_words_cached() const {
    return static_cast<int64_t>(cache_.size());
  }

 private:
  /// An open element: accumulates the child word and the text the
  /// summaries will retain. Frames are pooled (depth_ marks the live
  /// prefix of stack_) so their Word/string capacity is reused across
  /// elements and documents.
  struct Frame {
    Symbol symbol = kInvalidSymbol;
    Word word;
    std::string text;
    bool has_text = false;
    bool collect_text = false;
    uint32_t attr_first = 0;
    uint32_t attr_count = 0;
  };

  /// Per-document record of one completed element occurrence; applied to
  /// the store only when the whole document folded cleanly.
  struct Completed {
    Symbol symbol = kInvalidSymbol;
    bool has_text = false;
    bool has_sample = false;
    uint32_t sample_index = 0;
    uint32_t attr_first = 0;
    uint32_t attr_count = 0;
  };

  struct WordKey {
    Symbol element;
    Word word;
  };
  /// Borrowed key for heterogeneous lookup (no Word copy per probe).
  struct WordKeyRef {
    Symbol element;
    const Word* word;
  };
  struct WordKeyHash {
    using is_transparent = void;
    static size_t Mix(Symbol element, const Word& word);
    size_t operator()(const WordKey& key) const {
      return Mix(key.element, key.word);
    }
    size_t operator()(const WordKeyRef& key) const {
      return Mix(key.element, *key.word);
    }
  };
  struct WordKeyEq {
    using is_transparent = void;
    bool operator()(const WordKey& a, const WordKey& b) const {
      return a.element == b.element && a.word == b.word;
    }
    bool operator()(const WordKeyRef& a, const WordKey& b) const {
      return a.element == b.element && *a.word == b.word;
    }
    bool operator()(const WordKey& a, const WordKeyRef& b) const {
      return a.element == b.element && a.word == *b.word;
    }
  };
  using WordCounts =
      std::unordered_map<WordKey, int64_t, WordKeyHash, WordKeyEq>;

  /// Dense symbol-indexed cache of store entries, lazily filled — the
  /// fold hot path does one per-occurrence lookup here instead of a
  /// `std::map` search. Returns null while the element has no summary
  /// yet (Find never creates one: dedup-mode transactionality requires
  /// that a failed document leaves the store untouched). Map nodes are
  /// pointer-stable, so cached entries stay valid across inserts.
  ElementSummary* FindState(Symbol symbol);
  /// As FindState but creates (and caches) the entry — commit/eager
  /// paths only.
  ElementSummary& EnsureState(Symbol symbol);

  Frame& PushFrame(Symbol symbol);
  void HandleText(std::string_view text);
  /// Closes the innermost open element: records its word and stats.
  void CompleteTop();
  void CommitDocument();
  void ResetDocument();
  void FoldWeighted(Symbol element, const Word& word, int64_t count);

  DtdInferrer* inferrer_;
  SummaryStore* store_;
  Options options_;

  // Document-scoped state (reset per AddXml).
  std::vector<Frame> stack_;
  size_t depth_ = 0;
  Symbol root_symbol_ = kInvalidSymbol;
  bool root_seen_ = false;
  std::vector<Completed> completed_;
  std::vector<std::string_view> attr_keys_;  // views into the document
  /// Whitespace-stripped text samples staged this document — views into
  /// arena_, promoted to owned strings only for the few the summaries
  /// actually retain at commit.
  std::vector<std::string_view> doc_samples_;
  /// Bump storage for doc_samples_; rewound between documents so
  /// steady-state sample staging does no heap allocation.
  Arena arena_;
  /// Reused across documents (Reset keeps scratch capacity), so lexing
  /// a corpus performs no per-document allocation either.
  SaxLexer lexer_;
  /// One entry per word folded this document, pointing at the cache_
  /// count it incremented (unordered_map values are pointer-stable).
  /// Cleared on commit; decremented back on parse failure — a
  /// rolled-back first occurrence leaves a zero-count cache entry
  /// behind, which Flush() skips (and which a later clean document can
  /// reuse).
  std::vector<int64_t*> word_journal_;
  /// Child symbols first observed this document; the store's
  /// seen-as-child marks are applied only on commit.
  std::vector<Symbol> doc_new_children_;

  // Cross-document dedup cache. Completed words probe it directly (one
  // hash lookup per occurrence, no per-document staging map).
  WordCounts cache_;
  std::vector<ElementSummary*> state_cache_;

  int64_t documents_folded_ = 0;
  int64_t words_folded_ = 0;
  int64_t weighted_folds_ = 0;
};

}  // namespace condtd

#endif  // CONDTD_INFER_STREAMING_H_
