#include "infer/inferrer.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <utility>

#include "base/strings.h"
#include "infer/streaming.h"
#include "obs/metrics.h"
#include "regex/properties.h"
#include "xml/parser.h"
#include "xsd/numeric.h"

namespace condtd {

namespace {

std::string_view ResolvedLearnerName(const InferenceOptions& options) {
  return options.learner.empty() ? LearnerNameOf(options.algorithm)
                                 : std::string_view(options.learner);
}

LearnOptions MakeLearnOptions(const InferenceOptions& options) {
  LearnOptions out;
  out.noise_symbol_threshold = options.noise_symbol_threshold;
  out.auto_idtd_min_words = options.auto_idtd_min_words;
  out.idtd = options.idtd;
  out.xtract = options.xtract;
  return out;
}

SummaryLimits MakeLimits(const InferenceOptions& options,
                         const Learner* learner) {
  SummaryLimits limits;
  limits.max_text_samples = options.max_text_samples;
  // Reservoir headroom: max_strings + 2 keeps the ε word plus exactly
  // enough non-empty words for XtractInfer to report its own documented
  // over-budget failure; anything beyond trips the overflow flag.
  limits.max_retained_words =
      learner != nullptr && learner->needs_full_words()
          ? options.xtract.max_strings + 2
          : 0;
  return limits;
}

}  // namespace

std::string_view LearnerNameOf(InferenceAlgorithm algorithm) {
  switch (algorithm) {
    case InferenceAlgorithm::kAuto:
      return "auto";
    case InferenceAlgorithm::kIdtd:
      return "idtd";
    case InferenceAlgorithm::kCrx:
      return "crx";
    case InferenceAlgorithm::kRewriteOnly:
      return "rewrite";
  }
  return "auto";
}

DtdInferrer::DtdInferrer(InferenceOptions options)
    : options_(std::move(options)),
      learn_options_(MakeLearnOptions(options_)),
      learner_(LearnerRegistry::Global().Find(ResolvedLearnerName(options_))),
      store_(MakeLimits(options_, learner_)) {}

Status DtdInferrer::AddXml(std::string_view xml) {
  obs::CounterAdd(obs::Counter::kBytesIngested,
                  static_cast<int64_t>(xml.size()));
  Result<XmlDocument> doc = [&] {
    obs::StageSpan span(obs::Stage::kLexParse);
    return options_.lenient_xml ? ParseXmlLenient(xml) : ParseXml(xml);
  }();
  if (!doc.ok()) {
    obs::CounterAdd(obs::Counter::kDocumentsFailed, 1);
    return doc.status();
  }
  AddDocument(doc.value());
  obs::CounterAdd(obs::Counter::kDocumentsIngested, 1);
  return Status::OK();
}

void DtdInferrer::AddDocument(const XmlDocument& doc) {
  if (doc.root == nullptr) return;
  store_.AddRoot(alphabet_.Intern(doc.root->name()));

  // Depth-first traversal collecting each element's child-name word.
  // Each name is interned immediately before its subtree is entered, so
  // the alphabet grows in document (start-tag) order — the same order the
  // streaming SAX path interns in, which is what keeps the two ingestion
  // paths' symbol ids (and therefore their tie-breaks and inferred DTDs)
  // identical.
  struct VisitFrame {
    const XmlElement* element;
    Symbol symbol;
    size_t next_child = 0;
    Word word;
  };
  std::vector<VisitFrame> stack;
  auto open = [&](const XmlElement* element, Symbol symbol) {
    ElementSummary& summary = store_.Ensure(symbol);
    ++summary.occurrences;
    if (element->HasSignificantText()) {
      summary.has_text = true;
      summary.AddTextSample(std::string(StripWhitespace(element->text())),
                            store_.limits());
    }
    if (options_.infer_attributes) {
      for (const auto& [key, value] : element->attributes()) {
        ++summary.attribute_counts[key];
      }
    }
    stack.push_back({element, symbol, 0, {}});
    stack.back().word.reserve(element->children().size());
  };
  open(doc.root.get(), alphabet_.Intern(doc.root->name()));
  while (!stack.empty()) {
    VisitFrame& frame = stack.back();
    const auto& children = frame.element->children();
    if (frame.next_child < children.size()) {
      const XmlElement* child = children[frame.next_child++].get();
      Symbol cs = alphabet_.Intern(child->name());
      frame.word.push_back(cs);
      store_.MarkSeenAsChild(cs);
      open(child, cs);  // invalidates `frame`; not used again this round
    } else {
      obs::CounterAdd(obs::Counter::kWordsFolded, 1);
      store_.Ensure(frame.symbol)
          .AddChildWord(frame.word, 1, store_.limits());
      stack.pop_back();
    }
  }
}

Status DtdInferrer::AddXmlStreaming(std::string_view xml) {
  StreamingFolder folder(this);
  CONDTD_RETURN_IF_ERROR(folder.AddXml(xml));
  folder.Flush();
  return Status::OK();
}

void DtdInferrer::AddWords(Symbol element, const std::vector<Word>& words) {
  ElementSummary& summary = store_.Ensure(element);
  for (const Word& word : words) {
    ++summary.occurrences;
    summary.AddChildWord(word, 1, store_.limits());
    for (Symbol s : word) store_.MarkSeenAsChild(s);
  }
}

void DtdInferrer::MergeFrom(const DtdInferrer& other) {
  // Translate other's symbol ids into ours, interning names as needed.
  std::vector<Symbol> remap(other.alphabet_.size());
  for (Symbol s = 0; s < static_cast<Symbol>(remap.size()); ++s) {
    remap[s] = alphabet_.Intern(other.alphabet_.Name(s));
  }
  store_.MergeFrom(other.store_, remap);
}

int64_t DtdInferrer::WordCount(Symbol element) const {
  const ElementSummary* summary = store_.Find(element);
  return summary == nullptr ? 0 : summary->occurrences;
}

std::vector<Symbol> DtdInferrer::Elements() const {
  std::vector<Symbol> out;
  out.reserve(store_.elements().size());
  for (const auto& [symbol, summary] : store_.elements()) {
    out.push_back(symbol);
  }
  return out;
}

Result<ReRef> DtdInferrer::LearnRegex(const ElementSummary& summary) const {
  if (learner_ == nullptr) {
    return Status::InvalidArgument(
        "unknown learner '" + std::string(ResolvedLearnerName(options_)) +
        "' (registered: " +
        LearnerRegistry::Global().NamesForDisplay(", ") + ")");
  }
  obs::StageSpan span(obs::Stage::kLearn);
  Result<ReRef> result = LearnWithMetrics(*learner_, summary, learn_options_);
  if (result.ok()) obs::CounterAdd(obs::Counter::kElementsLearned, 1);
  return result;
}

Result<ContentModel> DtdInferrer::InferContentModel(Symbol element) const {
  const ElementSummary* summary = store_.Find(element);
  if (summary == nullptr) {
    return Status::NotFound("element never observed: " +
                            alphabet_.NameOrPlaceholder(element));
  }
  ContentModel model;
  const bool any_children = summary->crx.num_distinct_histograms() > 0;
  if (!any_children) {
    model.kind =
        summary->has_text ? ContentKind::kPcdataOnly : ContentKind::kEmpty;
    return model;
  }
  if (summary->has_text) {
    // Mixed content: DTDs can only express (#PCDATA | a | b)*.
    model.kind = ContentKind::kMixed;
    for (int q = 0; q < summary->soa.NumStates(); ++q) {
      if (options_.noise_symbol_threshold > 0 &&
          summary->soa.StateSupport(q) < options_.noise_symbol_threshold) {
        continue;
      }
      model.mixed_symbols.push_back(summary->soa.LabelOf(q));
    }
    std::sort(model.mixed_symbols.begin(), model.mixed_symbols.end());
    return model;
  }
  Result<ReRef> re = LearnRegex(*summary);
  if (!re.ok()) return re.status();
  model.kind = ContentKind::kChildren;
  model.regex = re.value();
  // Elements that sometimes appear empty need a nullable model; the
  // learners already account for it (the ε word is part of the SOA and
  // of the CRX histograms), so this is just a sanity fallback.
  if (summary->soa.accepts_empty() && !Nullable(model.regex)) {
    model.regex = Re::Opt(model.regex);
  }
  return model;
}

Result<Dtd> DtdInferrer::InferDtd(int num_threads) const {
  if (store_.empty()) {
    return Status::FailedPrecondition("no documents have been added");
  }
  Dtd dtd;
  // Root: prefer the observed document root(s); with direct AddWords
  // usage, fall back to an element never seen as a child.
  if (!store_.root_counts().empty()) {
    int64_t best = -1;
    for (const auto& [symbol, count] : store_.root_counts()) {
      if (count > best) {
        best = count;
        dtd.root = symbol;
      }
    }
  } else {
    for (const auto& [symbol, summary] : store_.elements()) {
      if (!store_.SeenAsChild(symbol)) {
        dtd.root = symbol;
        break;
      }
    }
    if (dtd.root == kInvalidSymbol) {
      dtd.root = store_.elements().begin()->first;
    }
  }
  // Per-element learner calls are fully independent (pure reads of this
  // inferrer), so they fan out across threads; results are collected by
  // index and assembled in ascending-symbol order, making the DTD — and
  // which error wins when several elements fail — identical to the
  // sequential run.
  std::vector<Symbol> symbols = Elements();
  std::vector<Result<ContentModel>> models(
      symbols.size(), Result<ContentModel>(Status::Internal("unset")));
  int jobs = std::clamp(num_threads, 1, static_cast<int>(symbols.size()));
  if (jobs > 1) {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (int t = 0; t < jobs; ++t) {
      workers.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < symbols.size();
             i = next.fetch_add(1)) {
          models[i] = InferContentModel(symbols[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (size_t i = 0; i < symbols.size(); ++i) {
      models[i] = InferContentModel(symbols[i]);
    }
  }
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (!models[i].ok()) return models[i].status();
    dtd.elements[symbols[i]] = std::move(models[i].value());
  }
  if (options_.infer_attributes) {
    for (const auto& [symbol, summary] : store_.elements()) {
      for (const auto& [name, count] : summary.attribute_counts) {
        Dtd::AttributeDef def;
        def.name = name;
        def.type = "CDATA";
        def.default_decl =
            count == summary.occurrences ? "#REQUIRED" : "#IMPLIED";
        dtd.attributes[symbol].push_back(std::move(def));
      }
    }
  }
  return dtd;
}

std::string DtdInferrer::SaveState() const { return store_.Save(alphabet_); }

Status DtdInferrer::LoadState(std::string_view serialized) {
  return store_.Load(serialized, &alphabet_);
}

Result<std::string> DtdInferrer::InferXsd(bool numeric_predicates,
                                          int num_threads) const {
  Result<Dtd> dtd = InferDtd(num_threads);
  if (!dtd.ok()) return dtd.status();
  std::map<Symbol, XsdElementExtras> extras;
  for (const auto& [symbol, summary] : store_.elements()) {
    XsdElementExtras extra;
    if (numeric_predicates) {
      auto model = dtd.value().elements.find(symbol);
      if (model != dtd.value().elements.end() &&
          model->second.kind == ContentKind::kChildren) {
        extra.numeric = AnnotateNumericFromHistograms(
            model->second.regex, summary.crx.histograms(),
            summary.crx.empty_count());
      }
    }
    if (summary.has_text) {
      extra.text_type = InferSimpleType(summary.text_samples);
    }
    extras[symbol] = std::move(extra);
  }
  obs::StageSpan span(obs::Stage::kEmit);
  return WriteXsd(dtd.value(), alphabet_, extras);
}

}  // namespace condtd
